package tcpdemux

import (
	"os"
	"sync/atomic"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/parallel"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/telemetry"
	"tcpdemux/internal/tpca"
)

// TestTelemetryOverhead is the ISSUE's instrumentation-cost acceptance:
// the telemetry-wrapped BenchmarkParallelTPCA workload must run within
// 5% of the bare one. It re-measures both sides with testing.Benchmark,
// so it is a real wall-clock comparison and runs only when asked for
// (TELEMETRY_OVERHEAD=1), keeping make test stable on noisy machines.
func TestTelemetryOverhead(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD") == "" {
		t.Skip("set TELEMETRY_OVERHEAD=1 to measure instrumentation overhead")
	}
	parallelStream.once.Do(func() {
		parallelStream.stream, parallelStream.err = parallel.TPCAStream(1000, 4, 7)
	})
	if parallelStream.err != nil {
		t.Fatal(parallelStream.err)
	}
	stream := parallelStream.stream
	const users = 1000
	const readFraction = 0.99

	// The workload is the BenchmarkParallelTPCA perpacket body verbatim
	// (rng draw per op, 1% connection churn, per-packet Lookup) so the
	// measured ratio is the regression the acceptance criterion names.
	workload := func(instrumented bool) func(b *testing.B) {
		return func(b *testing.B) {
			shared, m, err := newParallelBenchDemux("rcu-sequent", instrumented)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < users; i++ {
				if err := shared.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
					b.Fatal(err)
				}
			}
			var worker atomic.Int64
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				d := shared
				if m != nil {
					ld := telemetry.InstrumentLocal(shared, m)
					defer ld.Flush()
					d = ld
				}
				w := int(worker.Add(1)) - 1
				src := rng.New(uint64(w)*7919 + 42)
				pos := (w * 65537) % len(stream)
				churnBase := users + 100 + w*32
				for pb.Next() {
					if src.Float64() >= readFraction {
						k := tpca.UserKey(churnBase + src.Intn(32))
						if !d.Remove(k) {
							_ = d.Insert(core.NewPCB(k))
						}
						continue
					}
					op := stream[pos]
					pos++
					if pos == len(stream) {
						pos = 0
					}
					d.Lookup(op.Key, op.Dir)
				}
			})
		}
	}

	// Interleave the two sides round by round and take each side's best,
	// the same drift defense benchjson uses: a background slowdown then
	// hits both sides instead of biasing whichever ran last. The first
	// round is a discarded warmup.
	testing.Benchmark(workload(false))
	bare, instr := 0.0, 0.0
	for i := 0; i < 5; i++ {
		b := float64(testing.Benchmark(workload(false)).NsPerOp())
		n := float64(testing.Benchmark(workload(true)).NsPerOp())
		if bare == 0 || b < bare {
			bare = b
		}
		if instr == 0 || n < instr {
			instr = n
		}
	}
	ratio := instr / bare
	t.Logf("bare %.1f ns/op, instrumented %.1f ns/op, ratio %.4f", bare, instr, ratio)
	if ratio > 1.05 {
		t.Errorf("telemetry overhead %.1f%% exceeds the 5%% budget", (ratio-1)*100)
	}
}
