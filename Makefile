# tcpdemux build targets. Everything is pure Go with no dependencies;
# these targets just name the common invocations.

GO ?= go

.PHONY: all build vet test race bench bench-json fuzz figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test is the tier-1 gate: vet, the full test suite, and the race
# detector over the concurrent packages plus the timer-driven engine.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/parallel ./internal/rcu ./internal/engine ./internal/timer

race:
	$(GO) test -race ./internal/parallel ./internal/rcu ./internal/engine ./internal/timer

bench:
	$(GO) test -bench=. -benchmem .

# bench-json measures the three locking disciplines head-to-head on the
# read-heavy TPC/A mix and writes BENCH_parallel.json. The default
# operating point oversubscribes the scheduler (workers >> GOMAXPROCS)
# so lock-holder preemption — the effect RCU's lock-free read path is
# immune to — is visible even on small hosts; see cmd/benchjson -h.
bench-json:
	$(GO) run ./cmd/benchjson -gomaxprocs 32 -workers 384 -rounds 5 -ops 8000 -n 6000 -out BENCH_parallel.json

# Short fuzz pass over the wire parsers (CI-sized; raise -fuzztime locally).
fuzz:
	$(GO) test -fuzz=FuzzParseSegment -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzExtractTuple -fuzztime=30s ./internal/wire

figures:
	$(GO) run ./cmd/figures -fig 4
	$(GO) run ./cmd/figures -fig 13
	$(GO) run ./cmd/figures -fig 14
	$(GO) run ./cmd/figures -fig 15

clean:
	$(GO) clean ./...
