# tcpdemux build targets. Everything is pure Go with no dependencies;
# these targets just name the common invocations.

GO ?= go

.PHONY: all build vet test race bench fuzz figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel ./internal/engine

bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz pass over the wire parsers (CI-sized; raise -fuzztime locally).
fuzz:
	$(GO) test -fuzz=FuzzParseSegment -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzExtractTuple -fuzztime=30s ./internal/wire

figures:
	$(GO) run ./cmd/figures -fig 4
	$(GO) run ./cmd/figures -fig 13
	$(GO) run ./cmd/figures -fig 14
	$(GO) run ./cmd/figures -fig 15

clean:
	$(GO) clean ./...
