# tcpdemux build targets. Everything is pure Go with no dependencies;
# these targets just name the common invocations.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet lint lint-fixtures test race chaos shard failover live demuxd demuxload bench bench-json bench-json-adversarial bench-json-cache bench-json-shard bench-json-failover bench-gate fuzz figures clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint builds the repository's own analyzer suite (cmd/demuxvet, built on
# internal/lint) and runs it under the go vet driver over every package,
# examples/ included. It mechanically enforces the determinism, RCU,
# hot-path, and concurrency-contract invariants documented in DESIGN.md
# §9 and §14. lint-fixtures runs first so a broken analyzer fails loudly
# on its fixture corpus instead of silently passing the real tree.
lint: lint-fixtures bin/demuxvet
	$(GO) vet -vettool=$(CURDIR)/bin/demuxvet ./...

# lint-fixtures exercises each analyzer against the flagged-and-waived
# corpus under internal/lint/testdata before the suite is trusted on the
# repository itself.
lint-fixtures:
	$(GO) test -short ./internal/lint

bin/demuxvet: FORCE
	$(GO) build -o bin/demuxvet ./cmd/demuxvet

FORCE:

# test is the tier-1 gate: vet, the invariant analyzers, the full test
# suite, the race detector over the concurrent packages plus the
# timer-driven engine and the telemetry stripes, and the demuxsim
# -metrics endpoint smoke test.
test: vet lint
	$(GO) test ./...
	$(GO) test -race ./internal/parallel ./internal/rcu ./internal/flat ./internal/engine ./internal/timer ./internal/telemetry
	$(GO) test -run 'TestMetricsEndpoint|TestAdversarialSnapshotUnified' -count=1 ./cmd/demuxsim

race:
	$(GO) test -race ./internal/parallel ./internal/rcu ./internal/flat ./internal/engine ./internal/timer ./internal/telemetry

# chaos runs the adversarial conformance suite under the race detector:
# collision attacks with online rekey (overload), scripted link faults
# (chaos), and the SYN-cookie flood tests in the engine.
chaos:
	$(GO) test -race -count=1 ./internal/overload ./internal/chaos
	$(GO) test -race -count=1 -run 'SynCookies|SynFlood|Adversarial' ./internal/engine ./cmd/demuxsim

# shard is the cross-shard conformance gate: the full multi-queue engine
# suite (SPSC rings, generation-checked directory, RSS steering, rekey
# migration, lossy/chaos conformance against the single-shard engine)
# plus the Extract/Adopt migration primitives, all under the race
# detector.
shard:
	$(GO) test -race -count=1 ./internal/shard
	$(GO) test -race -count=1 -run 'ExtractAdopt|AdoptRearms' ./internal/engine

# failover is the shard failure-domain conformance gate: chaos-driven
# crash/stall/wedge/slow faults against the multi-queue engine, the
# health watchdog's live drain, the inbox backpressure ordering
# regression, and the CLI failover workload — all under the race
# detector, all held to byte-identical delivery and a balanced
# conservation ledger.
failover:
	$(GO) test -race -count=1 -run 'Failover|FailOver|Wedge|Stall|Backpressure|StaleGeneration|DirectoryFull|ShardSetMetrics' ./internal/shard ./internal/telemetry
	$(GO) test -race -count=1 -run 'TestShard' ./internal/chaos
	$(GO) test -race -count=1 -run 'TestRunFailover' ./cmd/demuxsim ./cmd/benchjson

# live is the real-socket frontend gate: the in-process loopback
# integration suite (demuxd's server core + demuxload's generator) under
# the race detector — ≥1000 concurrent kernel TCP connections with
# byte-verified TPC/A responses, graceful-shutdown draining with a
# balanced connection conservation ledger, goroutine-leak checks, and
# the live metrics endpoint.
live:
	$(GO) test -race -count=1 -run 'TestLive' ./internal/server ./cmd/demuxd

# demuxd / demuxload build the server and load-generator binaries.
demuxd:
	$(GO) build -o bin/demuxd ./cmd/demuxd

demuxload:
	$(GO) build -o bin/demuxload ./cmd/demuxload

bench:
	$(GO) test -bench=. -benchmem .

# bench-json measures the three locking disciplines head-to-head on the
# read-heavy TPC/A mix and writes BENCH_parallel.json. The default
# operating point oversubscribes the scheduler (workers >> GOMAXPROCS)
# so lock-holder preemption — the effect RCU's lock-free read path is
# immune to — is visible even on small hosts; see cmd/benchjson -h.
bench-json:
	$(GO) run ./cmd/benchjson -gomaxprocs 32 -workers 384 -rounds 5 -ops 8000 -n 6000 -out BENCH_parallel.json

# bench-json-adversarial measures the collision-attack / rekey / SYN-cookie
# story (demuxsim -workload adversarial, but machine-readable) and embeds
# the full telemetry registry snapshot in the document.
bench-json-adversarial:
	$(GO) run ./cmd/benchjson -workload adversarial -ops 200000 -out BENCH_adversarial.json

# bench-json-cache measures the cache-conscious flat tables (hopscotch,
# bucketized cuckoo) against the chained disciplines, per-packet and in
# prefetch-pipelined batches across depths k, and writes BENCH_cache.json
# with internal/cachesim stall estimates embedded (EXP-CACHE).
bench-json-cache:
	$(GO) run ./cmd/benchjson -workload cache -gomaxprocs 4 -workers 16 -rounds 5 -ops 20000 -n 6000 -out BENCH_cache.json

# bench-json-shard sweeps the multi-queue engine's shard count (1, 2, 4,
# max) on the TPC/A mix and writes BENCH_shard.json (EXP-SHARD). The
# chain count stays fixed across the sweep, so each shard's private
# table holds ~1/N of the PCBs and the partition effect C(N) shows up
# directly in examined-per-lookup — a speedup source that pays even on
# a single-core host, before core parallelism multiplies on top.
bench-json-shard:
	$(GO) run ./cmd/benchjson -workload shard -rounds 5 -ops 200000 -n 6000 -out BENCH_shard.json

# bench-json-failover measures the shard failure domains under virtual
# time (EXP-FAILOVER): crash and stall the busiest of 4 shards mid-run
# under 20% drop / 10% dup and record watchdog detection latency, drain
# recovery, and windowed goodput. The numbers are virtual-time ticks —
# deterministic for a given seed, so the gate tolerance has no jitter to
# absorb.
bench-json-failover:
	$(GO) run ./cmd/benchjson -workload failover -out BENCH_failover.json

# bench-gate is the perf regression gate: it remeasures the cache and
# parallel workloads at the committed artifacts' operating points and
# fails if any shared configuration's best nsPerOp regressed beyond the
# tolerance — or if a configuration the committed artifact measured is
# missing from the remeasurement (a renamed discipline must not empty
# the gate). The default tolerance is deliberately generous because CI
# hosts differ from the host that produced the committed artifacts —
# the gate exists to catch algorithmic blowups, not single-digit drift.
BENCH_TOLERANCE ?= 1.0
bench-gate:
	@mkdir -p bin
	$(GO) run ./cmd/benchjson -workload cache -gomaxprocs 4 -workers 16 -rounds 3 -ops 20000 -n 6000 -out bin/BENCH_cache.head.json
	$(GO) run ./cmd/benchjson -compare BENCH_cache.json bin/BENCH_cache.head.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -workload parallel -gomaxprocs 32 -workers 384 -rounds 3 -ops 8000 -n 6000 -out bin/BENCH_parallel.head.json
	$(GO) run ./cmd/benchjson -compare BENCH_parallel.json bin/BENCH_parallel.head.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -workload shard -rounds 3 -ops 60000 -n 6000 -out bin/BENCH_shard.head.json
	$(GO) run ./cmd/benchjson -compare BENCH_shard.json bin/BENCH_shard.head.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -workload failover -out bin/BENCH_failover.head.json
	$(GO) run ./cmd/benchjson -compare BENCH_failover.json bin/BENCH_failover.head.json -tolerance $(BENCH_TOLERANCE)

# Short fuzz pass over the wire parsers and the full receive path
# (CI-sized; raise FUZZTIME locally).
fuzz:
	$(GO) test -fuzz=FuzzParseSegment -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz=FuzzExtractTuple -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz=FuzzDeliver -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -fuzz=FuzzFlatOps -fuzztime=$(FUZZTIME) ./internal/flat

figures:
	$(GO) run ./cmd/figures -fig 4
	$(GO) run ./cmd/figures -fig 13
	$(GO) run ./cmd/figures -fig 14
	$(GO) run ./cmd/figures -fig 15

clean:
	$(GO) clean ./...
	rm -rf bin
