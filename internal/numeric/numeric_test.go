package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestIntegratePolynomial(t *testing.T) {
	// ∫_0^1 x^2 dx = 1/3 — Simpson is exact for cubics, so this must be
	// correct to machine precision.
	v, err := Integrate(func(x float64) float64 { return x * x }, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1.0/3, 1e-14, "∫x²")
}

func TestIntegrateSin(t *testing.T) {
	v, err := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 2, 1e-10, "∫sin over [0,π]")
}

func TestIntegrateReversedLimits(t *testing.T) {
	fwd, _ := Integrate(math.Exp, 0, 1, 0)
	rev, _ := Integrate(math.Exp, 1, 0, 0)
	approx(t, rev, -fwd, 1e-12, "reversed limits")
}

func TestIntegrateEmptyInterval(t *testing.T) {
	v, err := Integrate(math.Exp, 2, 2, 0)
	if err != nil || v != 0 {
		t.Fatalf("empty interval: %v, %v", v, err)
	}
}

func TestIntegrateSharpPeak(t *testing.T) {
	// Narrow Gaussian centered mid-interval: adaptive subdivision must find
	// it. ∫ e^{-(x-0.5)²/2σ²} dx ≈ σ√(2π) for σ << interval.
	const sigma = 1e-3
	f := func(x float64) float64 {
		d := (x - 0.5) / sigma
		return math.Exp(-d * d / 2)
	}
	v, err := Integrate(f, 0, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, sigma*math.Sqrt(2*math.Pi), 1e-9, "sharp peak")
}

func TestIntegrateToInfExponential(t *testing.T) {
	// ∫_0^∞ a e^{-a x} dx = 1 for any a > 0.
	for _, a := range []float64{0.01, 0.1, 1, 10} {
		f := func(x float64) float64 { return a * math.Exp(-a*x) }
		v, err := IntegrateToInf(f, 0, a, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, v, 1, 1e-9, "∫ae^{-ax}")
	}
}

func TestIntegrateToInfMean(t *testing.T) {
	// ∫_0^∞ x·a·e^{-ax} dx = 1/a.
	const a = 0.1
	f := func(x float64) float64 { return x * a * math.Exp(-a*x) }
	v, err := IntegrateToInf(f, 0, a/2, 1e-12) // decay slower than a because of the x factor
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1/a, 1e-7, "exponential mean")
}

func TestIntegrateToInfShiftedLower(t *testing.T) {
	// ∫_R^∞ a e^{-a x} dx = e^{-aR}.
	const a, R = 0.1, 2.0
	f := func(x float64) float64 { return a * math.Exp(-a*x) }
	v, err := IntegrateToInf(f, R, a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, math.Exp(-a*R), 1e-9, "shifted tail")
}

func TestIntegrateToInfBadRate(t *testing.T) {
	if _, err := IntegrateToInf(math.Exp, 0, 0, 0); err == nil {
		t.Fatal("expected error for zero rate")
	}
}

func TestLogChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, -1), -1) || !math.IsInf(LogChoose(5, 6), -1) {
		t.Fatal("out-of-range LogChoose should be -Inf")
	}
}

func TestLogChoosePascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for moderate n.
	for n := 2; n <= 60; n++ {
		for k := 1; k < n; k++ {
			lhs := math.Exp(LogChoose(n, k))
			rhs := math.Exp(LogChoose(n-1, k-1)) + math.Exp(LogChoose(n-1, k))
			if math.Abs(lhs-rhs)/rhs > 1e-9 {
				t.Fatalf("Pascal fails at C(%d,%d): %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestBinomialTermSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 50, 500, 2000} {
		for _, p := range []float64{0, 0.01, 0.3, 0.5, 0.99, 1} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialTerm(n, k, p)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("n=%d p=%v: Σ terms = %v", n, p, sum)
			}
		}
	}
}

func TestBinomialMeanClosedForm(t *testing.T) {
	// The paper writes Eq. 3 as a weighted sum; its value is n·p. Verify the
	// explicit sum equals the closed form up to N=2000, the paper's scale.
	for _, n := range []int{1, 10, 100, 1999} {
		for _, p := range []float64{0, 0.001, 0.1, 0.5, 0.9, 1} {
			got := BinomialMean(n, p)
			want := float64(n) * p
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Errorf("BinomialMean(%d,%v) = %v, want %v", n, p, got, want)
			}
		}
	}
}

func TestBinomialMeanQuick(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)%200 + 1
		p := float64(pRaw) / 65536.0
		got := BinomialMean(n, p)
		want := float64(n) * p
		return math.Abs(got-want) <= 1e-8*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 10, 11)
	if len(v) != 11 || v[0] != 0 || v[10] != 10 || v[5] != 5 {
		t.Fatalf("Linspace wrong: %v", v)
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Linspace(0,1,1) should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, root, math.Sqrt2, 1e-10, "bisect √2")
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err == nil {
		t.Fatal("expected bracket error")
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || root != 0 {
		t.Fatalf("endpoint root: %v, %v", root, err)
	}
}

func BenchmarkIntegrateToInf(b *testing.B) {
	const a = 0.1
	f := func(x float64) float64 { return x * a * math.Exp(-a*x) }
	for i := 0; i < b.N; i++ {
		if _, err := IntegrateToInf(f, 0, a/2, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIntegrateOffCenterNeedle is the regression for the failure mode the
// renewal-model work exposed: a narrow compact-support integrand far from
// the interval midpoint. Pure adaptive Simpson's initial probes miss it
// and converge instantly to zero; the composite pre-pass must not.
func TestIntegrateOffCenterNeedle(t *testing.T) {
	// Unit-area box on [9.5, 10.5] inside [0, 40].
	f := func(x float64) float64 {
		if x < 9.5 || x > 10.5 {
			return 0
		}
		return 1
	}
	v, err := Integrate(f, 0, 40, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1, 1e-6, "off-center box")
}

func TestIntegrateToInfOffCenterNeedle(t *testing.T) {
	f := func(x float64) float64 {
		if x < 9.5 || x > 10.5 {
			return 0
		}
		return 1
	}
	v, err := IntegrateToInf(f, 0, 0.5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1, 1e-5, "semi-infinite off-center box")
}
