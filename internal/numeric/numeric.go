// Package numeric supplies the small numerical toolkit the analytic model
// needs: adaptive Simpson quadrature on finite intervals, semi-infinite
// integrals of exponentially decaying integrands, and numerically stable
// binomial terms evaluated in log space.
//
// The paper's equations (McKenney & Dove 1992, Eqs. 3, 5, 6, 10, 13) involve
// integrals of the form ∫ a·e^{-aT}·g(T) dT over [0,R] and [R,∞), and
// binomial sums with N up to 10,000 whose terms overflow float64 if computed
// naively. This package keeps that machinery out of the model code.
package numeric

import (
	"errors"
	"math"
)

// DefaultTol is the default relative tolerance for the quadrature routines.
const DefaultTol = 1e-10

// ErrMaxDepth is returned when adaptive subdivision exceeds its depth limit
// without reaching the requested tolerance.
var ErrMaxDepth = errors.New("numeric: adaptive quadrature exceeded maximum recursion depth")

// simpson returns the Simpson's-rule estimate of ∫f over [a,b] given
// precomputed endpoint and midpoint values.
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// integratePanels is the number of equal panels Integrate seeds before
// adapting. Pure adaptive Simpson converges instantly to zero when its
// three initial probes all miss a narrow integrand; a fixed composite
// pre-pass bounds how narrow a feature can hide (width > (b-a)/32 is
// always sampled).
const integratePanels = 16

// Integrate computes ∫_a^b f(x) dx by composite adaptive Simpson
// quadrature with the given relative tolerance (DefaultTol if tol <= 0):
// the interval is split into integratePanels equal panels, each refined
// adaptively. It returns ErrMaxDepth if the integrand is too wild to
// resolve within 60 levels of subdivision.
func Integrate(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if b < a {
		a, b = b, a
		sign = -1
	}
	// Coarse pass to scale the error budget.
	width := (b - a) / integratePanels
	type panel struct{ a, m, b, fa, fm, fb, est float64 }
	panels := make([]panel, integratePanels)
	coarse := 0.0
	fPrev := f(a)
	for i := range panels {
		pa := a + float64(i)*width
		pb := pa + width
		if i == integratePanels-1 {
			pb = b
		}
		pm := (pa + pb) / 2
		fm, fb := f(pm), f(pb)
		est := simpson(pa, pb, fPrev, fm, fb)
		panels[i] = panel{pa, pm, pb, fPrev, fm, fb, est}
		coarse += est
		fPrev = fb
	}
	eps := tol * math.Max(1, math.Abs(coarse)) / integratePanels
	total := 0.0
	var firstErr error
	for _, p := range panels {
		v, err := adapt(f, p.a, p.b, p.fa, p.fm, p.fb, p.est, eps, 60)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		total += v
	}
	return sign * total, firstErr
}

// adapt is the recursive worker for Integrate. eps is an absolute error
// budget for this interval; it is halved on each split (the classic
// Richardson-style budget division).
func adapt(f func(float64) float64, a, b, fa, fm, fb, whole, eps float64, depth int) (float64, error) {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if diff := left + right - whole; math.Abs(diff) <= 15*eps {
		// Richardson extrapolation: Simpson error shrinks 16x per halving.
		return left + right + diff/15, nil
	}
	if depth <= 0 {
		return left + right, ErrMaxDepth
	}
	lv, lerr := adapt(f, a, m, fa, flm, fm, left, eps/2, depth-1)
	rv, rerr := adapt(f, m, b, fm, frm, fb, right, eps/2, depth-1)
	if lerr != nil {
		return lv + rv, lerr
	}
	return lv + rv, rerr
}

// IntegrateToInf computes ∫_a^∞ f(x) dx for integrands that decay at least
// exponentially with rate at least `rate` (that is, |f(x)| ≲ C·e^{-rate·x}).
// It substitutes x = a - ln(u)/s with s = rate/2, mapping (0,1] onto [a,∞):
//
//	∫_a^∞ f(x) dx = (1/s) ∫_0^1 f(a - ln u / s) / u du
//
// Using half the stated decay rate makes the transformed integrand vanish
// continuously at u = 0 (f/u ≲ C·e^{-rate(x-a)/2} → 0), so the adaptive
// quadrature sees a smooth function even when f decays exactly at `rate`.
// rate must be positive.
func IntegrateToInf(f func(float64) float64, a, rate, tol float64) (float64, error) {
	if rate <= 0 {
		return 0, errors.New("numeric: IntegrateToInf needs a positive decay rate")
	}
	s := rate / 2
	g := func(u float64) float64 {
		if u <= 0 {
			return 0 // limit: f decays strictly faster than 1/u grows
		}
		x := a - math.Log(u)/s
		return f(x) / u
	}
	v, err := Integrate(g, 0, 1, tol)
	return v / s, err
}

// LogChoose returns ln C(n, k) using log-gamma, valid for n up to the
// float64 range. It returns -Inf for k < 0 or k > n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1)
}

// BinomialTerm returns C(n,k) p^k (1-p)^{n-k} computed in log space so that
// n in the thousands does not overflow. p must be in [0,1].
func BinomialTerm(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	switch p {
	case 0:
		if k == 0 {
			return 1
		}
		return 0
	case 1:
		if k == n {
			return 1
		}
		return 0
	}
	logTerm := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logTerm)
}

// BinomialMean returns Σ_{k=0}^{n} k·C(n,k)p^k(1-p)^{n-k} by direct
// summation. Analytically this is n·p; the explicit sum exists so the model
// code can property-test its closed forms against the paper's literal
// formulas (Eq. 3 is written as this sum).
func BinomialMean(n int, p float64) float64 {
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += float64(k) * BinomialTerm(n, k, p)
	}
	return sum
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Bisect finds a root of f in [a,b] to within xtol, assuming f(a) and f(b)
// bracket a sign change. It is used by calibration helpers (e.g. solving
// for the H that achieves a target search cost).
func Bisect(f func(float64) float64, a, b, xtol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, errors.New("numeric: Bisect endpoints do not bracket a root")
	}
	for i := 0; i < 200 && b-a > xtol; i++ {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, nil
}
