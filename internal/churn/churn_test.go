package churn

import (
	"testing"

	"tcpdemux/internal/core"
)

func run(t *testing.T, algo string, cfg Config) *Result {
	t.Helper()
	d, err := core.New(algo, core.Config{Chains: 19})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTimeWaitCrowdAccumulates(t *testing.T) {
	// 100 live sessions, 5 txns each (~52 s lifetime), 60 s linger:
	// the standing TIME_WAIT crowd should be comparable to the live
	// population, so the mean total population clearly exceeds it.
	cfg := Config{Sessions: 100, MeasuredSessions: 600, Seed: 1}
	r := run(t, "map", cfg)
	if r.Population.Mean() < 130 {
		t.Fatalf("population %.1f shows no TIME_WAIT crowd", r.Population.Mean())
	}
	if r.TimeWait.Mean() < 30 {
		t.Fatalf("mean TIME_WAIT %.1f too small", r.TimeWait.Mean())
	}
	if r.SessionsCompleted < 600 {
		t.Fatalf("completed %d sessions", r.SessionsCompleted)
	}
}

func TestZeroLingerNoCrowd(t *testing.T) {
	cfg := Config{Sessions: 50, MeasuredSessions: 300, TimeWaitLinger: 1e-9, Seed: 2}
	r := run(t, "map", cfg)
	if r.TimeWait.Mean() > 1 {
		t.Fatalf("TIME_WAIT crowd %.2f despite instant reaping", r.TimeWait.Mean())
	}
	// Population ≈ live sessions.
	if r.Population.Mean() > float64(cfg.Sessions)+5 {
		t.Fatalf("population %.1f exceeds live sessions", r.Population.Mean())
	}
}

// TestTimeWaitCrowdAgesOutOfBSDHitPath pins a subtle and real property of
// head-inserted lists under churn: live connections are always younger
// than the TIME_WAIT PCBs that closed before they opened, so the dead
// crowd drifts toward the back of the list and the *hit* path's mean cost
// tracks roughly half the live population, not half the bloated total.
// The bloat is paid by the deep scans — the per-lookup maximum approaches
// the full population — and by memory.
func TestTimeWaitCrowdAgesOutOfBSDHitPath(t *testing.T) {
	cfg := Config{Sessions: 100, MeasuredSessions: 500, Seed: 3}
	d := core.NewBSDList()
	bsd, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := float64(cfg.Sessions)
	if m := bsd.Examined.Mean(); m < live/2*0.8 || m > bsd.Population.Mean()/2*1.2 {
		t.Fatalf("BSD hit-path mean %.1f outside (live/2=%.0f, total/2=%.0f) band",
			m, live/2, bsd.Population.Mean()/2)
	}
	// Deep scans still traverse the dead crowd.
	if max := float64(d.Stats().MaxExamined); max < bsd.Population.Mean()*0.8 {
		t.Fatalf("max scan %v never reached the bloated population %.0f",
			max, bsd.Population.Mean())
	}
}

// TestSequentStillFarAheadUnderChurn: churn or not, the order-of-magnitude
// gap holds.
func TestSequentStillFarAheadUnderChurn(t *testing.T) {
	cfg := Config{Sessions: 100, MeasuredSessions: 500, Seed: 3}
	bsd := run(t, "bsd", cfg)
	seq := run(t, "sequent", cfg)
	if ratio := bsd.Examined.Mean() / seq.Examined.Mean(); ratio < 8 {
		t.Fatalf("Sequent advantage only %.1fx under churn", ratio)
	}
}

func TestChurnExercisesInsertRemove(t *testing.T) {
	cfg := Config{Sessions: 20, MeasuredSessions: 200, Seed: 4}
	d := core.NewSequentHash(19, nil)
	r, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SessionsCompleted < 200 {
		t.Fatalf("completed %d", r.SessionsCompleted)
	}
	// After the run drains, only the sessions still mid-flight or in
	// TIME_WAIT remain; the table must be far below total-ever-inserted.
	if d.Len() > 3*cfg.Sessions+int(r.TimeWait.Max()) {
		t.Fatalf("table leaked: %d PCBs", d.Len())
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := Run(core.NewMapDemux(), Config{}); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if _, err := Run(core.NewMapDemux(), Config{Sessions: 1, RTT: -1}); err == nil {
		t.Fatal("negative RTT accepted")
	}
}

func TestChurnDeterministic(t *testing.T) {
	cfg := Config{Sessions: 10, MeasuredSessions: 50, Seed: 5}
	a := run(t, "sr", cfg)
	b := run(t, "sr", cfg)
	if a.Examined.Mean() != b.Examined.Mean() || a.SessionsCompleted != b.SessionsCompleted {
		t.Fatal("same seed diverged")
	}
}

func TestSessionKeysDistinctWithinRun(t *testing.T) {
	seen := map[core.Key]bool{}
	for i := 0; i < 100000; i++ {
		k := sessionKey(i)
		if seen[k] {
			t.Fatalf("key collision at session %d", i)
		}
		seen[k] = true
	}
}
