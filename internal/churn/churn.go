// Package churn measures demultiplexing under connection turnover. The
// paper's TPC/A analysis holds the connection population fixed; real OLTP
// front ends also open and close connections, and every closed connection
// lingers in TIME_WAIT for two maximum segment lifetimes, still occupying
// its place in the PCB table. On a busy server the lookup structures carry
// a standing crowd of dead PCBs — pure chain-lengthening load that the
// one-entry caches can never hit.
//
// The workload keeps a target number of live sessions; each session opens
// a fresh connection (insert), runs a few transaction cycles (lookups),
// closes, lingers in TIME_WAIT (still inserted), and is reaped (remove).
// A replacement session with a new ephemeral port starts immediately, so
// the live population stays constant while the total PCB population
// carries the TIME_WAIT tail on top.
package churn

import (
	"errors"
	"fmt"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/sim"
	"tcpdemux/internal/stats"
	"tcpdemux/internal/wire"
)

// Config parameterizes a churn run.
type Config struct {
	// Sessions is the steady-state number of live connections.
	Sessions int
	// TxnsPerSession is how many transaction cycles each connection runs
	// before closing (default 5).
	TxnsPerSession int
	// ThinkMean is the per-transaction think time mean in seconds
	// (default 10, exponential — short sessions, TPC/A-style pacing).
	ThinkMean float64
	// ResponseTime is R (default 0.2 s).
	ResponseTime float64
	// RTT is D (default 1 ms).
	RTT float64
	// TimeWaitLinger is how long a closed PCB stays in the table before
	// the reaper removes it (default 60 s ≈ 2MSL of the era).
	TimeWaitLinger float64
	// MeasuredSessions is how many completed sessions to measure
	// (default 10 per steady-state slot).
	MeasuredSessions int
	// Seed seeds the RNG.
	Seed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TxnsPerSession == 0 {
		c.TxnsPerSession = 5
	}
	if c.ThinkMean == 0 {
		c.ThinkMean = 10
	}
	if c.ResponseTime == 0 {
		c.ResponseTime = 0.2
	}
	if c.RTT == 0 {
		c.RTT = 0.001
	}
	if c.TimeWaitLinger == 0 {
		c.TimeWaitLinger = 60
	}
	if c.MeasuredSessions == 0 {
		c.MeasuredSessions = 10 * c.Sessions
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sessions < 1 {
		return errors.New("churn: need at least one session")
	}
	if c.ThinkMean < 0 || c.ResponseTime < 0 || c.RTT < 0 || c.TimeWaitLinger < 0 {
		return errors.New("churn: negative timing parameter")
	}
	return nil
}

// Result carries the measurements.
type Result struct {
	Algorithm string
	Config    Config
	// Examined aggregates PCBs examined per inbound packet.
	Examined stats.Summary
	// Population samples the total PCB count (live + TIME_WAIT) at each
	// transaction arrival.
	Population stats.Summary
	// TimeWait samples the TIME_WAIT share of the population.
	TimeWait stats.Summary
	// SessionsCompleted counts sessions that ran to reaping.
	SessionsCompleted uint64
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s: live=%d mean-examined=%.1f population=%.0f (%.0f in TIME_WAIT)",
		r.Algorithm, r.Config.Sessions, r.Examined.Mean(), r.Population.Mean(), r.TimeWait.Mean())
}

// sessionKey returns the key for the id-th session ever started: a
// rotating ephemeral port space over a pool of client addresses, as a
// front-end farm would produce.
func sessionKey(id int) core.Key {
	return core.Key{
		LocalAddr:  wire.MakeAddr(10, 0, 0, 1),
		LocalPort:  1521,
		RemoteAddr: wire.MakeAddr(10, 4, byte(id/61000>>8), byte(id/61000)),
		RemotePort: uint16(1024 + id%61000),
	}
}

// Run drives the demuxer with the churn workload.
func Run(d core.Demuxer, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	res := &Result{Algorithm: d.Name(), Config: cfg}

	var (
		kernel    sim.Sim
		nextID    int
		completed uint64
		target    = uint64(cfg.MeasuredSessions)
		timeWait  int
		schedErr  error
	)
	schedule := func(delay float64, ev sim.Event) {
		if schedErr != nil {
			return
		}
		if _, err := kernel.After(delay, ev); err != nil {
			schedErr = err
		}
	}

	var startSession func() sim.Event
	startSession = func() sim.Event {
		id := nextID
		nextID++
		key := sessionKey(id)
		pcb := core.NewPCB(key)
		return func(now float64) {
			if completed >= target {
				return
			}
			if err := d.Insert(pcb); err != nil {
				schedErr = fmt.Errorf("churn: session %d: %w", id, err)
				return
			}
			var txn func(remaining int) sim.Event
			txn = func(remaining int) sim.Event {
				return func(float64) {
					if schedErr != nil {
						return
					}
					// Transaction arrival.
					r := d.Lookup(key, core.DirData)
					if r.PCB != pcb {
						schedErr = fmt.Errorf("churn: session %d lost its PCB", id)
						return
					}
					res.Examined.Add(float64(r.Examined))
					res.Population.Add(float64(d.Len()))
					res.TimeWait.Add(float64(timeWait))
					d.NotifySend(pcb) // query ack
					schedule(cfg.ResponseTime, func(float64) {
						d.NotifySend(pcb) // response
						schedule(cfg.RTT, func(float64) {
							ar := d.Lookup(key, core.DirAck)
							if ar.PCB != pcb {
								schedErr = fmt.Errorf("churn: session %d lost its PCB on ack", id)
								return
							}
							res.Examined.Add(float64(ar.Examined))
							if remaining > 1 {
								schedule(src.Exp(cfg.ThinkMean), txn(remaining-1))
								return
							}
							// Close: PCB lingers in TIME_WAIT, a fresh
							// session takes the live slot immediately.
							pcb.State = core.StateTimeWait
							timeWait++
							schedule(cfg.TimeWaitLinger, func(float64) {
								d.Remove(key)
								timeWait--
								completed++
							})
							schedule(src.Exp(cfg.ThinkMean), startSession())
						})
					})
				}
			}
			schedule(src.Exp(cfg.ThinkMean), txn(cfg.TxnsPerSession))
		}
	}

	for i := 0; i < cfg.Sessions; i++ {
		schedule(src.Float64()*cfg.ThinkMean, startSession())
	}
	kernel.Run()
	if schedErr != nil {
		return nil, schedErr
	}
	res.SessionsCompleted = completed
	return res, nil
}
