package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
)

// Op is one inbound packet event of a recorded lookup stream: the key the
// server demultiplexes on and whether the packet was a transaction (data)
// or a pure acknowledgement.
type Op struct {
	Key core.Key
	Dir core.Direction
}

// TPCAStream records the server-side inbound packet stream of one TPC/A
// simulation run — the realistic read-mostly key sequence the paper's
// workload produces, response-interval locality included — for replay by
// MeasureThroughput. users and txnsPerUser size the run; the stream holds
// two inbound packets (transaction, ack) per transaction, warm-up
// included.
func TPCAStream(users, txnsPerUser int, seed uint64) ([]Op, error) {
	var stream []Op
	cfg := tpca.Config{
		Users: users, ResponseTime: 0.2, RTT: 0.001, Seed: seed,
		MeasuredTxns: txnsPerUser * users,
		Observer: func(_ float64, key core.Key, send, ack bool) {
			if send {
				return // outbound: not a demultiplexing event
			}
			dir := core.DirData
			if ack {
				dir = core.DirAck
			}
			stream = append(stream, Op{Key: key, Dir: dir})
		},
	}
	if _, err := tpca.Run(core.NewMapDemux(), cfg); err != nil {
		return nil, err
	}
	return stream, nil
}

// ThroughputConfig parameterizes one MeasureThroughput run.
type ThroughputConfig struct {
	// Workers is the number of concurrent goroutines (>= 1).
	Workers int
	// OpsPerWorker is the number of operations each worker performs.
	OpsPerWorker int
	// Stream is the lookup key sequence. Workers replay it from evenly
	// spaced starting offsets, wrapping around.
	Stream []Op
	// ReadFraction is the probability an operation is a lookup; the
	// remainder churn (remove + reinsert) keys from the worker's private
	// ChurnKeys slice. 0 means 1.0 (pure lookups).
	ReadFraction float64
	// ChurnKeys[w] are worker w's private churn keys. Required when
	// ReadFraction < 1; keeping the slices disjoint keeps the final PCB
	// set deterministic.
	ChurnKeys [][]core.Key
	// Batch > 1 drives lookups through LookupBatch in trains of this
	// size (a churn operation flushes the pending train first).
	Batch int
	// Seed seeds the per-worker operation-mix RNGs.
	Seed uint64
}

func (c ThroughputConfig) validate() error {
	switch {
	case c.Workers < 1:
		return errors.New("parallel: need at least one worker")
	case c.OpsPerWorker < 1:
		return errors.New("parallel: need at least one op per worker")
	case len(c.Stream) == 0:
		return errors.New("parallel: empty lookup stream")
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("parallel: read fraction %v out of range", c.ReadFraction)
	case c.ReadFraction != 0 && c.ReadFraction < 1 && len(c.ChurnKeys) < c.Workers:
		return errors.New("parallel: churn requires per-worker churn keys")
	}
	return nil
}

// ThroughputResult reports one measured run.
type ThroughputResult struct {
	// Ops is the total operations completed (lookups + churn mutations).
	Ops int
	// Elapsed is the wall-clock time of the measured section.
	Elapsed time.Duration
	// NsPerOp and OpsPerSec are the derived rates.
	NsPerOp   float64
	OpsPerSec float64
	// Stats is the demuxer's statistics snapshot after the run.
	Stats core.Stats
}

// MeasureThroughput drives d with cfg.Workers goroutines replaying the
// recorded stream and returns the aggregate operation rate. The demuxer
// must already be populated with the stream's PCBs; lookups that miss are
// fine (they exercise the listener path) but are still counted as one op.
func MeasureThroughput(d ConcurrentDemuxer, cfg ThroughputConfig) (ThroughputResult, error) {
	if err := cfg.validate(); err != nil {
		return ThroughputResult{}, err
	}
	read := cfg.ReadFraction
	if read == 0 {
		read = 1
	}
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(cfg.Seed + uint64(w)*7919 + 1)
			pos := (w * len(cfg.Stream)) / cfg.Workers
			var churn []core.Key
			if read < 1 {
				churn = cfg.ChurnKeys[w]
			}
			var (
				keys    []core.Key
				dir     core.Direction
				results []core.Result
			)
			flush := func() {
				if len(keys) > 0 {
					results = d.LookupBatch(keys, dir, results)
					keys = keys[:0]
				}
			}
			<-start
			for i := 0; i < cfg.OpsPerWorker; i++ {
				if read < 1 && src.Float64() >= read {
					flush()
					k := churn[src.Intn(len(churn))]
					if !d.Remove(k) {
						_ = d.Insert(core.NewPCB(k))
					}
					continue
				}
				op := cfg.Stream[pos]
				pos++
				if pos == len(cfg.Stream) {
					pos = 0
				}
				if cfg.Batch > 1 {
					dir = op.Dir
					keys = append(keys, op.Key)
					if len(keys) >= cfg.Batch {
						flush()
					}
				} else {
					d.Lookup(op.Key, op.Dir)
				}
			}
			flush()
		}(w)
	}
	t0 := time.Now() //demux:wallclock throughput is the one legitimate wall-clock consumer: it reports real elapsed time, not virtual time
	close(start)
	wg.Wait()
	elapsed := time.Since(t0) //demux:wallclock closes the measured section opened at t0 above
	ops := cfg.Workers * cfg.OpsPerWorker
	res := ThroughputResult{
		Ops:     ops,
		Elapsed: elapsed,
		Stats:   d.Snapshot(),
	}
	if elapsed > 0 {
		res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
		res.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	return res, nil
}
