package parallel

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rcu"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
)

// both returns one instance of each locking discipline for conformance
// runs: global lock, per-chain locks, and the lock-free-read RCU table.
func both() []ConcurrentDemuxer {
	return []ConcurrentDemuxer{
		NewLocked(core.NewBSDList()),
		NewLocked(core.NewSequentHash(19, nil)),
		NewShardedSequent(19, nil),
		rcu.New(19, nil),
	}
}

func TestConcurrentConformance(t *testing.T) {
	const n = 300
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			pcbs := make([]*core.PCB, n)
			for i := range pcbs {
				pcbs[i] = core.NewPCB(tpca.UserKey(i))
				if err := d.Insert(pcbs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Insert(core.NewPCB(tpca.UserKey(0))); err != core.ErrDuplicateKey {
				t.Fatalf("duplicate insert: %v", err)
			}
			if d.Len() != n {
				t.Fatalf("Len = %d", d.Len())
			}
			for i, p := range pcbs {
				if r := d.Lookup(p.Key, core.DirData); r.PCB != p {
					t.Fatalf("lookup %d failed", i)
				}
			}
			if !d.Remove(pcbs[0].Key) || d.Remove(pcbs[0].Key) {
				t.Fatal("remove semantics wrong")
			}
			if r := d.Lookup(pcbs[0].Key, core.DirData); r.PCB != nil {
				t.Fatal("removed PCB still found")
			}
			st := d.Snapshot()
			if st.Lookups != n+1 || st.Misses != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestConcurrentWildcardFallback(t *testing.T) {
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			listener := core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))
			if err := d.Insert(listener); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(core.NewListenPCB(listener.Key)); err != core.ErrDuplicateKey {
				t.Fatalf("duplicate listener: %v", err)
			}
			r := d.Lookup(tpca.UserKey(5), core.DirData)
			if r.PCB != listener || !r.Wildcard {
				t.Fatalf("listener fallback failed: %+v", r)
			}
			if !d.Remove(listener.Key) {
				t.Fatal("listener remove failed")
			}
			if d.Remove(listener.Key) {
				t.Fatal("double listener remove succeeded")
			}
		})
	}
}

// TestShardedMatchesSequentCosts drives identical single-threaded
// sequences through core.SequentHash and ShardedSequent and asserts
// identical examination accounting — the sharded version must be the same
// algorithm, only locked differently.
func TestShardedMatchesSequentCosts(t *testing.T) {
	const n = 500
	plain := core.NewSequentHash(19, nil)
	shard := NewShardedSequent(19, nil)
	for i := 0; i < n; i++ {
		if err := plain.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			t.Fatal(err)
		}
		if err := shard.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	src := rng.New(3)
	for i := 0; i < 20000; i++ {
		k := tpca.UserKey(src.Intn(n))
		a := plain.Lookup(k, core.DirData)
		b := shard.Lookup(k, core.DirData)
		if a.Examined != b.Examined || a.CacheHit != b.CacheHit {
			t.Fatalf("lookup %d diverged: plain (%d,%v) vs sharded (%d,%v)",
				i, a.Examined, a.CacheHit, b.Examined, b.CacheHit)
		}
	}
	ps, ss := plain.Stats(), shard.Snapshot()
	if ps.Examined != ss.Examined || ps.Hits != ss.Hits {
		t.Fatalf("aggregate stats diverged: %+v vs %+v", ps, ss)
	}
}

// TestParallelStress hammers each wrapper from many goroutines doing
// mixed lookups and churn; run with -race this is the data-race check.
func TestParallelStress(t *testing.T) {
	const n = 400
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			for i := 0; i < n; i++ {
				if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
					t.Fatal(err)
				}
			}
			workers := runtime.GOMAXPROCS(0) * 2
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					src := rng.New(seed)
					for i := 0; i < 5000; i++ {
						switch src.Intn(20) {
						case 0: // churn: remove + reinsert a high key
							k := tpca.UserKey(n + src.Intn(50))
							if !d.Remove(k) {
								_ = d.Insert(core.NewPCB(k))
							}
						default:
							k := tpca.UserKey(src.Intn(n))
							if r := d.Lookup(k, core.DirData); r.PCB == nil {
								t.Errorf("stable PCB %v vanished", k)
								return
							}
						}
					}
				}(uint64(w) + 1)
			}
			wg.Wait()
			st := d.Snapshot()
			if st.Lookups == 0 || st.Examined == 0 {
				t.Fatalf("no work recorded: %+v", st)
			}
			// The n stable PCBs must all still be present.
			for i := 0; i < n; i++ {
				if r := d.Lookup(tpca.UserKey(i), core.DirData); r.PCB == nil {
					t.Fatalf("PCB %d lost after stress", i)
				}
			}
		})
	}
}

// TestWalkSnapshot checks the Walk half of the Demuxer/ConcurrentDemuxer
// symmetry fix: every discipline must enumerate exactly the inserted PCB
// set (listeners included) and honor early termination.
func TestWalkSnapshot(t *testing.T) {
	const n = 120
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			want := make(map[*core.PCB]bool, n+1)
			listener := core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))
			if err := d.Insert(listener); err != nil {
				t.Fatal(err)
			}
			want[listener] = true
			for i := 0; i < n; i++ {
				p := core.NewPCB(tpca.UserKey(i))
				if err := d.Insert(p); err != nil {
					t.Fatal(err)
				}
				want[p] = true
			}
			got := make(map[*core.PCB]bool, n+1)
			d.Walk(func(p *core.PCB) bool {
				if got[p] {
					t.Fatalf("walk visited %v twice", p.Key)
				}
				got[p] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("walk saw %d PCBs, want %d", len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("walk missed %v", p.Key)
				}
			}
			seen := 0
			d.Walk(func(*core.PCB) bool { seen++; return seen < 5 })
			if seen != 5 {
				t.Fatalf("early termination walked %d PCBs", seen)
			}
		})
	}
}

// TestDisciplineRegistry exercises the name-based constructor the
// command-line tools use.
func TestDisciplineRegistry(t *testing.T) {
	names := Disciplines()
	if !sort.StringsAreSorted(names) || len(names) < 4 {
		t.Fatalf("disciplines: %v", names)
	}
	for _, name := range names {
		d, err := New(name, core.Config{Chains: 19})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Insert(core.NewPCB(tpca.UserKey(1))); err != nil {
			t.Fatal(err)
		}
		if r := d.Lookup(tpca.UserKey(1), core.DirData); r.PCB == nil {
			t.Fatalf("%s: lookup failed", name)
		}
	}
	if _, err := New("nonesuch", core.Config{}); err == nil {
		t.Fatal("unknown discipline accepted")
	}
}

// TestMeasureThroughput smoke-tests the shared throughput harness on every
// discipline, batched and not, with a sliver of churn.
func TestMeasureThroughput(t *testing.T) {
	stream, err := TPCAStream(60, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("empty stream")
	}
	const workers = 4
	churn := make([][]core.Key, workers)
	for w := range churn {
		for i := 0; i < 8; i++ {
			churn[w] = append(churn[w], tpca.UserKey(1000+w*8+i))
		}
	}
	for _, name := range Disciplines() {
		for _, batch := range []int{0, 16} {
			d, err := New(name, core.Config{Chains: 19})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 60; i++ {
				if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
					t.Fatal(err)
				}
			}
			res, err := MeasureThroughput(d, ThroughputConfig{
				Workers: workers, OpsPerWorker: 2000, Stream: stream,
				ReadFraction: 0.95, ChurnKeys: churn, Batch: batch, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != workers*2000 || res.OpsPerSec <= 0 {
				t.Fatalf("%s batch=%d: implausible result %+v", name, batch, res)
			}
			if res.Stats.Lookups == 0 || res.Stats.Lookups > uint64(res.Ops) {
				t.Fatalf("%s batch=%d: implausible stats %+v", name, batch, res.Stats)
			}
		}
	}
	if _, err := MeasureThroughput(NewShardedSequent(19, nil), ThroughputConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestShardedParallelThroughputScales is a coarse sanity check that the
// per-chain locks actually remove contention relative to a global lock:
// with many goroutines, sharded throughput should comfortably beat the
// globally locked BSD list. (The precise numbers live in the bench
// harness; this guards against accidentally serializing the fast path.)
func TestShardedParallelThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism")
	}
	const n = 1000
	const opsPerWorker = 30000
	workers := runtime.GOMAXPROCS(0)

	measure := func(d ConcurrentDemuxer) float64 {
		for i := 0; i < n; i++ {
			if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				src := rng.New(seed)
				<-start
				for i := 0; i < opsPerWorker; i++ {
					d.Lookup(tpca.UserKey(src.Intn(n)), core.DirData)
				}
			}(uint64(w) + 1)
		}
		t0 := nowNanos()
		close(start)
		wg.Wait()
		return float64(workers*opsPerWorker) / (float64(nowNanos()-t0) / 1e9)
	}

	locked := measure(NewLocked(core.NewBSDList()))
	sharded := measure(NewShardedSequent(64, nil))
	if sharded < locked {
		t.Fatalf("sharded throughput %.0f ops/s below global-lock BSD %.0f ops/s", sharded, locked)
	}
	t.Logf("global-lock BSD: %.0f ops/s; sharded Sequent: %.0f ops/s (%.1fx)",
		locked, sharded, sharded/locked)
}
