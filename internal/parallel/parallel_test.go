package parallel

import (
	"runtime"
	"sync"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
)

// both returns one instance of each concurrent wrapper for conformance
// runs.
func both() []ConcurrentDemuxer {
	return []ConcurrentDemuxer{
		NewLocked(core.NewBSDList()),
		NewLocked(core.NewSequentHash(19, nil)),
		NewShardedSequent(19, nil),
	}
}

func TestConcurrentConformance(t *testing.T) {
	const n = 300
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			pcbs := make([]*core.PCB, n)
			for i := range pcbs {
				pcbs[i] = core.NewPCB(tpca.UserKey(i))
				if err := d.Insert(pcbs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Insert(core.NewPCB(tpca.UserKey(0))); err != core.ErrDuplicateKey {
				t.Fatalf("duplicate insert: %v", err)
			}
			if d.Len() != n {
				t.Fatalf("Len = %d", d.Len())
			}
			for i, p := range pcbs {
				if r := d.Lookup(p.Key, core.DirData); r.PCB != p {
					t.Fatalf("lookup %d failed", i)
				}
			}
			if !d.Remove(pcbs[0].Key) || d.Remove(pcbs[0].Key) {
				t.Fatal("remove semantics wrong")
			}
			if r := d.Lookup(pcbs[0].Key, core.DirData); r.PCB != nil {
				t.Fatal("removed PCB still found")
			}
			st := d.Snapshot()
			if st.Lookups != n+1 || st.Misses != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestConcurrentWildcardFallback(t *testing.T) {
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			listener := core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))
			if err := d.Insert(listener); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(core.NewListenPCB(listener.Key)); err != core.ErrDuplicateKey {
				t.Fatalf("duplicate listener: %v", err)
			}
			r := d.Lookup(tpca.UserKey(5), core.DirData)
			if r.PCB != listener || !r.Wildcard {
				t.Fatalf("listener fallback failed: %+v", r)
			}
			if !d.Remove(listener.Key) {
				t.Fatal("listener remove failed")
			}
			if d.Remove(listener.Key) {
				t.Fatal("double listener remove succeeded")
			}
		})
	}
}

// TestShardedMatchesSequentCosts drives identical single-threaded
// sequences through core.SequentHash and ShardedSequent and asserts
// identical examination accounting — the sharded version must be the same
// algorithm, only locked differently.
func TestShardedMatchesSequentCosts(t *testing.T) {
	const n = 500
	plain := core.NewSequentHash(19, nil)
	shard := NewShardedSequent(19, nil)
	for i := 0; i < n; i++ {
		if err := plain.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			t.Fatal(err)
		}
		if err := shard.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	src := rng.New(3)
	for i := 0; i < 20000; i++ {
		k := tpca.UserKey(src.Intn(n))
		a := plain.Lookup(k, core.DirData)
		b := shard.Lookup(k, core.DirData)
		if a.Examined != b.Examined || a.CacheHit != b.CacheHit {
			t.Fatalf("lookup %d diverged: plain (%d,%v) vs sharded (%d,%v)",
				i, a.Examined, a.CacheHit, b.Examined, b.CacheHit)
		}
	}
	ps, ss := plain.Stats(), shard.Snapshot()
	if ps.Examined != ss.Examined || ps.Hits != ss.Hits {
		t.Fatalf("aggregate stats diverged: %+v vs %+v", ps, ss)
	}
}

// TestParallelStress hammers each wrapper from many goroutines doing
// mixed lookups and churn; run with -race this is the data-race check.
func TestParallelStress(t *testing.T) {
	const n = 400
	for _, d := range both() {
		t.Run(d.Name(), func(t *testing.T) {
			for i := 0; i < n; i++ {
				if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
					t.Fatal(err)
				}
			}
			workers := runtime.GOMAXPROCS(0) * 2
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					src := rng.New(seed)
					for i := 0; i < 5000; i++ {
						switch src.Intn(20) {
						case 0: // churn: remove + reinsert a high key
							k := tpca.UserKey(n + src.Intn(50))
							if !d.Remove(k) {
								_ = d.Insert(core.NewPCB(k))
							}
						default:
							k := tpca.UserKey(src.Intn(n))
							if r := d.Lookup(k, core.DirData); r.PCB == nil {
								t.Errorf("stable PCB %v vanished", k)
								return
							}
						}
					}
				}(uint64(w) + 1)
			}
			wg.Wait()
			st := d.Snapshot()
			if st.Lookups == 0 || st.Examined == 0 {
				t.Fatalf("no work recorded: %+v", st)
			}
			// The n stable PCBs must all still be present.
			for i := 0; i < n; i++ {
				if r := d.Lookup(tpca.UserKey(i), core.DirData); r.PCB == nil {
					t.Fatalf("PCB %d lost after stress", i)
				}
			}
		})
	}
}

// TestShardedParallelThroughputScales is a coarse sanity check that the
// per-chain locks actually remove contention relative to a global lock:
// with many goroutines, sharded throughput should comfortably beat the
// globally locked BSD list. (The precise numbers live in the bench
// harness; this guards against accidentally serializing the fast path.)
func TestShardedParallelThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism")
	}
	const n = 1000
	const opsPerWorker = 30000
	workers := runtime.GOMAXPROCS(0)

	measure := func(d ConcurrentDemuxer) float64 {
		for i := 0; i < n; i++ {
			if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				src := rng.New(seed)
				<-start
				for i := 0; i < opsPerWorker; i++ {
					d.Lookup(tpca.UserKey(src.Intn(n)), core.DirData)
				}
			}(uint64(w) + 1)
		}
		t0 := nowNanos()
		close(start)
		wg.Wait()
		return float64(workers*opsPerWorker) / (float64(nowNanos()-t0) / 1e9)
	}

	locked := measure(NewLocked(core.NewBSDList()))
	sharded := measure(NewShardedSequent(64, nil))
	if sharded < locked {
		t.Fatalf("sharded throughput %.0f ops/s below global-lock BSD %.0f ops/s", sharded, locked)
	}
	t.Logf("global-lock BSD: %.0f ops/s; sharded Sequent: %.0f ops/s (%.1fx)",
		locked, sharded, sharded/locked)
}
