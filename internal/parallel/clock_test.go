package parallel

import "time"

// nowNanos isolates the wall clock so the throughput test reads clearly.
func nowNanos() int64 { return time.Now().UnixNano() }
