// Package parallel adds the concurrency dimension the paper's algorithm
// actually shipped in: Sequent's TCP ran inside a parallelized STREAMS
// framework on SMP hardware [Dov90, Gar90], where the hashed PCB table's
// second virtue — after shorter scans — is that each chain can carry its
// own lock, so packets for different chains demultiplex concurrently.
//
// Three locking disciplines are provided, in increasing read-path
// concurrency:
//
//   - Locked: any core.Demuxer behind one mutex — the global-lock
//     discipline a single linear list forces, since every lookup walks the
//     same structure.
//   - ShardedSequent: the Sequent design with one lock per hash chain plus
//     a listener lock; lookups for different chains never contend.
//   - rcu.Demuxer (package tcpdemux/internal/rcu): the read-mostly end
//     state — lookups take no locks at all, chains are published
//     copy-on-write through atomic pointers, and only writers serialize.
//
// The registry also carries the cache-conscious open-addressing tables of
// package tcpdemux/internal/flat (flat-hopscotch, flat-cuckoo), wrapped in
// flat.Concurrent's read-write lock: a different trade — shared readers
// rather than lock-free ones, but probes that touch one or two contiguous
// probe groups instead of walking a chain, plus a prefetch-pipelined
// LookupBatch.
//
// All of them satisfy ConcurrentDemuxer; New builds any of them by name. The
// throughput benches in bench_test.go (BenchmarkParallel) and the
// MeasureThroughput harness quantify the contention gap under goroutine
// load.
//
// # Statistics-snapshot contract
//
// Unlike core.Demuxer, whose Stats pointer is live, a ConcurrentDemuxer
// returns statistics by value: Snapshot folds whatever per-chain or
// per-stripe counters the discipline maintains into one core.Stats at the
// moment of the call. A snapshot taken while lookups are in flight is a
// consistent total — every completed lookup is counted exactly once — but
// two counters read nanoseconds apart may straddle an update; callers must
// not expect cross-field identities (Hits+Misses == Lookups, say) to hold
// exactly until the demuxer is quiescent. Snapshots are monotonic: a later
// quiescent snapshot includes everything an earlier one did.
//
// Walk has the same snapshot flavor: it observes a PCB set that was
// current at some instant per chain, never a torn chain, but concurrent
// inserts and removes may or may not be visible.
package parallel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tcpdemux/internal/core"
	"tcpdemux/internal/flat"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rcu"
)

// ConcurrentDemuxer is the goroutine-safe variant of core.Demuxer. Stats
// are returned by value (a snapshot) rather than by live pointer; see the
// package comment for the snapshot contract.
type ConcurrentDemuxer interface {
	Name() string
	Insert(p *core.PCB) error
	Remove(k core.Key) bool
	Lookup(k core.Key, dir core.Direction) core.Result

	// LookupBatch resolves a train of keys in one call, writing one
	// Result per key (in key order) into out, which is reused when it has
	// capacity. The Result sequence and statistics are identical to
	// calling Lookup per key in order; disciplines are free to amortize
	// locking or pointer-chasing across the train.
	LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result

	NotifySend(p *core.PCB)
	Len() int
	Snapshot() core.Stats

	// Walk calls fn for every inserted PCB (listeners included) until fn
	// returns false, with per-chain snapshot semantics: fn never sees a
	// torn chain, but mutations concurrent with the walk may or may not
	// be visible. fn must not call back into the demuxer (lock-based
	// disciplines hold their chain lock across the callback).
	Walk(fn func(*core.PCB) bool)
}

// Locked wraps a plain demuxer with a single mutex.
type Locked struct {
	mu sync.Mutex
	d  core.Demuxer
}

// NewLocked wraps d. The wrapped demuxer must not be used directly
// afterwards.
func NewLocked(d core.Demuxer) *Locked { return &Locked{d: d} }

// Name implements ConcurrentDemuxer.
func (l *Locked) Name() string { return "locked-" + l.d.Name() }

// Insert implements ConcurrentDemuxer.
func (l *Locked) Insert(p *core.PCB) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.Insert(p)
}

// Remove implements ConcurrentDemuxer.
func (l *Locked) Remove(k core.Key) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.Remove(k)
}

// Lookup implements ConcurrentDemuxer.
//
//demux:hotpath
func (l *Locked) Lookup(k core.Key, dir core.Direction) core.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.Lookup(k, dir)
}

// NotifySend implements ConcurrentDemuxer.
func (l *Locked) NotifySend(p *core.PCB) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.d.NotifySend(p)
}

// Len implements ConcurrentDemuxer.
func (l *Locked) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.d.Len()
}

// Snapshot implements ConcurrentDemuxer.
func (l *Locked) Snapshot() core.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return *l.d.Stats()
}

// LookupBatch implements ConcurrentDemuxer: the whole train is resolved
// under one lock acquisition — the only amortization a global lock offers.
//
//demux:hotpath
func (l *Locked) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	if cap(out) < len(keys) {
		out = make([]core.Result, len(keys)) //demux:allowalloc amortized: grows the caller-owned result buffer once, then reused across trains
	}
	out = out[:len(keys)]
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, k := range keys {
		out[i] = l.d.Lookup(k, dir)
	}
	return out
}

// Walk implements ConcurrentDemuxer, delegating under the global lock.
func (l *Locked) Walk(fn func(*core.PCB) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.d.Walk(fn)
}

// ShardedSequent is the Sequent hashed demultiplexer with per-chain
// locking: the hash is computed outside any lock, then only the target
// chain's mutex is taken. Each chain keeps its own one-entry cache and its
// own linear list, exactly as in core.SequentHash; the listener table has
// a separate lock, taken only on an exact-match miss.
//
// Statistics are kept per chain and merged on Snapshot, so the hot path
// shares no cache lines between chains beyond the (read-only) hash
// function and chain table. Examination counting matches core.SequentHash.
type ShardedSequent struct {
	chains []shard
	hash   hashfn.Func

	listenMu sync.Mutex
	listen   []*core.PCB

	// misses and wildcardHits are updated on the (rare) listener path.
	misses       atomic.Uint64 //demux:atomic
	wildcardHits atomic.Uint64 //demux:atomic
}

// shard is one chain plus its lock and statistics. The stats padding is a
// deliberate false-sharing guard: each shard's counters live on their own
// cache line region.
type shard struct {
	mu    sync.Mutex
	pcbs  []*core.PCB // front = most recently inserted
	cache *core.PCB

	lookups  uint64
	hits     uint64
	examined uint64
	maxExam  int

	_ [32]byte // pad to keep neighbouring shards off one line
}

// NewShardedSequent builds a per-chain-locked Sequent demultiplexer with h
// chains (core.DefaultChains if h <= 0) and the given hash (multiplicative
// if nil).
func NewShardedSequent(h int, fn hashfn.Func) *ShardedSequent {
	if h <= 0 {
		h = core.DefaultChains
	}
	if fn == nil {
		fn = hashfn.Multiplicative{}
	}
	return &ShardedSequent{chains: make([]shard, h), hash: fn}
}

// Name implements ConcurrentDemuxer.
func (d *ShardedSequent) Name() string {
	return fmt.Sprintf("sharded-sequent-%d", len(d.chains))
}

// NumChains returns H.
func (d *ShardedSequent) NumChains() int { return len(d.chains) }

// chainFor hashes the key to its shard.
func (d *ShardedSequent) chainFor(k core.Key) *shard {
	idx := hashfn.ChainIndex(d.hash.Hash(k.Tuple()), len(d.chains))
	return &d.chains[idx]
}

// Insert implements ConcurrentDemuxer.
func (d *ShardedSequent) Insert(p *core.PCB) error {
	if p.Key.IsWildcard() {
		d.listenMu.Lock()
		defer d.listenMu.Unlock()
		for _, l := range d.listen {
			if l.Key == p.Key {
				return core.ErrDuplicateKey
			}
		}
		d.listen = append([]*core.PCB{p}, d.listen...)
		return nil
	}
	s := d.chainFor(p.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, q := range s.pcbs {
		if q.Key == p.Key {
			return core.ErrDuplicateKey
		}
	}
	s.pcbs = append([]*core.PCB{p}, s.pcbs...)
	return nil
}

// Remove implements ConcurrentDemuxer.
func (d *ShardedSequent) Remove(k core.Key) bool {
	if k.IsWildcard() {
		d.listenMu.Lock()
		defer d.listenMu.Unlock()
		for i, l := range d.listen {
			if l.Key == k {
				d.listen = append(d.listen[:i], d.listen[i+1:]...)
				return true
			}
		}
		return false
	}
	s := d.chainFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.pcbs {
		if q.Key == k {
			s.pcbs = append(s.pcbs[:i], s.pcbs[i+1:]...)
			if s.cache == q {
				s.cache = nil
			}
			return true
		}
	}
	return false
}

// Lookup implements ConcurrentDemuxer: probe the chain cache, scan the
// chain, and only on a complete miss consult the listener table.
//
//demux:hotpath
func (d *ShardedSequent) Lookup(k core.Key, _ core.Direction) core.Result {
	s := d.chainFor(k)
	var r core.Result
	s.mu.Lock()
	if s.cache != nil {
		r.Examined++
		if s.cache.Key == k {
			r.PCB = s.cache
			r.CacheHit = true
			s.record(r)
			s.mu.Unlock()
			return r
		}
	}
	for _, q := range s.pcbs {
		r.Examined++
		if q.Key == k {
			r.PCB = q
			s.cache = q
			s.record(r)
			s.mu.Unlock()
			return r
		}
	}
	s.record(r) // records the failed chain walk's cost
	s.mu.Unlock()

	// Listener fallback outside the chain lock.
	d.listenMu.Lock()
	best := -1
	for _, l := range d.listen {
		r.Examined++
		if score := core.Match(l.Key, k); score > best {
			best = score
			r.PCB = l
		}
	}
	d.listenMu.Unlock()
	if r.PCB != nil {
		r.Wildcard = true
		d.wildcardHits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return r
}

// record updates the shard's counters; the caller holds s.mu. The listener
// portion of a miss's examinations is accounted globally, not per shard.
//
//demux:hotpath
func (s *shard) record(r core.Result) {
	s.lookups++
	s.examined += uint64(r.Examined)
	if r.Examined > s.maxExam {
		s.maxExam = r.Examined
	}
	if r.CacheHit {
		s.hits++
	}
}

// LookupBatch implements ConcurrentDemuxer. Each key takes its own
// chain lock: per-chain locking already confines contention, and grouping
// a train by chain would buy only lock-coalescing the rcu discipline gets
// for free — the head-to-head benches keep that contrast visible.
//
//demux:hotpath
func (d *ShardedSequent) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	if cap(out) < len(keys) {
		out = make([]core.Result, len(keys)) //demux:allowalloc amortized: grows the caller-owned result buffer once, then reused across trains
	}
	out = out[:len(keys)]
	for i, k := range keys {
		out[i] = d.Lookup(k, dir)
	}
	return out
}

// Walk implements ConcurrentDemuxer: chains in index order, each under its
// own lock (per-chain snapshot semantics), then the listeners. fn must not
// call back into the demuxer.
func (d *ShardedSequent) Walk(fn func(*core.PCB) bool) {
	for i := range d.chains {
		s := &d.chains[i]
		s.mu.Lock()
		for _, p := range s.pcbs {
			if !fn(p) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
	d.listenMu.Lock()
	defer d.listenMu.Unlock()
	for _, l := range d.listen {
		if !fn(l) {
			return
		}
	}
}

// NotifySend implements ConcurrentDemuxer; Sequent ignores transmissions.
func (d *ShardedSequent) NotifySend(*core.PCB) {}

// Len implements ConcurrentDemuxer.
func (d *ShardedSequent) Len() int {
	n := 0
	for i := range d.chains {
		s := &d.chains[i]
		s.mu.Lock()
		n += len(s.pcbs)
		s.mu.Unlock()
	}
	d.listenMu.Lock()
	n += len(d.listen)
	d.listenMu.Unlock()
	return n
}

// Snapshot implements ConcurrentDemuxer, merging per-shard counters.
func (d *ShardedSequent) Snapshot() core.Stats {
	var st core.Stats
	for i := range d.chains {
		s := &d.chains[i]
		s.mu.Lock()
		st.Lookups += s.lookups
		st.Hits += s.hits
		st.Examined += s.examined
		if s.maxExam > st.MaxExamined {
			st.MaxExamined = s.maxExam
		}
		s.mu.Unlock()
	}
	st.Misses = d.misses.Load()
	st.WildcardHits = d.wildcardHits.Load()
	return st
}

// disciplines maps locking-discipline names to constructors, mirroring
// core's algorithm registry so the command-line tools can build any of
// the three head-to-head variants by name.
var disciplines = map[string]func(core.Config) ConcurrentDemuxer{
	"locked-bsd":     func(core.Config) ConcurrentDemuxer { return NewLocked(core.NewBSDList()) },
	"locked-sequent": func(c core.Config) ConcurrentDemuxer { return NewLocked(core.NewSequentHash(c.Chains, c.Hash)) },
	"sharded-sequent": func(c core.Config) ConcurrentDemuxer {
		return NewShardedSequent(c.Chains, c.Hash)
	},
	"rcu-sequent": func(c core.Config) ConcurrentDemuxer { return rcu.New(c.Chains, c.Hash) },
	"flat-hopscotch": func(c core.Config) ConcurrentDemuxer {
		return flat.NewConcurrent(flat.NewHopscotch(0, c.Hash))
	},
	"flat-cuckoo": func(c core.Config) ConcurrentDemuxer {
		return flat.NewConcurrent(flat.NewCuckoo(0, c.Hash))
	},
}

// New constructs a concurrent demuxer by locking-discipline name. Valid
// names are listed by Disciplines.
func New(name string, cfg core.Config) (ConcurrentDemuxer, error) {
	b, ok := disciplines[name]
	if !ok {
		return nil, fmt.Errorf("parallel: unknown discipline %q (have %s)",
			name, strings.Join(Disciplines(), ", "))
	}
	return b(cfg), nil
}

// Disciplines returns the registered discipline names, sorted.
func Disciplines() []string {
	names := make([]string, 0, len(disciplines))
	for n := range disciplines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
