package plot

import (
	"strings"
	"testing"
)

func TestRenderContainsMarkersAndLabels(t *testing.T) {
	c := New("test chart", 40, 10)
	if err := c.Add(Series{Label: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "linear") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("default marker missing")
	}
}

func TestRenderCornerPlacement(t *testing.T) {
	c := New("", 21, 7)
	if err := c.Add(Series{Label: "d", X: []float64{0, 10}, Y: []float64{0, 10}, Marker: 'Q'}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(c.Render(), "\n")
	// First grid row holds the max-Y point at the far right; the last grid
	// row holds the min at the far left.
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 7 {
		t.Fatalf("grid rows = %d", len(gridLines))
	}
	top, bottom := gridLines[0], gridLines[6]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "Q|") {
		t.Errorf("top-right corner not marked: %q", top)
	}
	if !strings.Contains(bottom, "|Q") {
		t.Errorf("bottom-left corner not marked: %q", bottom)
	}
}

func TestAddLengthMismatch(t *testing.T) {
	c := New("", 30, 8)
	if err := c.Add(Series{Label: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRenderEmptyChart(t *testing.T) {
	c := New("empty", 30, 8)
	out := c.Render()
	if out == "" || !strings.Contains(out, "empty") {
		t.Fatal("empty chart failed to render")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate Y range must not divide by zero.
	c := New("", 30, 8)
	if err := c.Add(Series{Label: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}); err != nil {
		t.Fatal(err)
	}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestMarkersCycle(t *testing.T) {
	c := New("", 30, 8)
	for i := 0; i < 3; i++ {
		if err := c.Add(Series{Label: "s", X: []float64{0}, Y: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	out := c.Render()
	for _, m := range []string{"*", "+", "o"} {
		if !strings.Contains(out, m) {
			t.Errorf("marker %s missing", m)
		}
	}
}

func TestMinimumDimensionsEnforced(t *testing.T) {
	c := New("", 1, 1)
	if c.Width < 20 || c.Height < 5 {
		t.Fatal("minimum dimensions not enforced")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5000:    "5000",
		12345:   "1.2e+04",
		0.5:     "0.50",
		0.001:   "0.001",
		42:      "42",
		-100000: "-1e+05",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
