// Package plot renders simple ASCII line charts for the figure-regeneration
// tools. It is deliberately small: fixed-size character grid, one rune per
// series, linear axes with rounded tick labels — enough to eyeball the
// curve shapes of Figures 4, 13 and 14 in a terminal and compare them with
// the paper.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Label  string
	X, Y   []float64
	Marker rune
}

// defaultMarkers cycles when a series has no explicit marker.
var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart is an ASCII chart under construction.
type Chart struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int
	series        []Series
}

// New returns a chart with the given dimensions (interior plot area).
// Sensible minimums are enforced.
func New(title string, width, height int) *Chart {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Chart{Title: title, Width: width, Height: height}
}

// Add appends a series. X and Y must have equal length.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d xs but %d ys", s.Label, len(s.X), len(s.Y))
	}
	if s.Marker == 0 {
		s.Marker = defaultMarkers[len(c.series)%len(defaultMarkers)]
	}
	c.series = append(c.series, s)
	return nil
}

// bounds returns the data extent across all series, padding degenerate
// ranges so the projection stays finite.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) { // no data at all
		return 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return
}

// Render draws the chart.
func (c *Chart) Render() string {
	xmin, xmax, ymin, ymax := c.bounds()
	grid := make([][]rune, c.Height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", c.Width))
	}
	for _, s := range c.series {
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(c.Width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(c.Height-1)))
			row = c.Height - 1 - row // origin at bottom-left
			if col >= 0 && col < c.Width && row >= 0 && row < c.Height {
				grid[row][col] = s.Marker
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo, yHi := fmtTick(ymin), fmtTick(ymax)
	labelWidth := max(len(yLo), len(yHi))
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = pad(yHi, labelWidth)
		case c.Height - 1:
			label = pad(yLo, labelWidth)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", c.Width))
	xLo, xHi := fmtTick(xmin), fmtTick(xmax)
	gap := c.Width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", gap), xHi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelWidth), c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", labelWidth), s.Marker, s.Label)
	}
	return b.String()
}

// fmtTick formats an axis extreme compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.01:
		return fmt.Sprintf("%.2g", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// pad right-aligns s to width.
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

// max returns the larger int. (kept local; this package targets go1.22
// toolchains without assuming builtin generics helpers in scope)
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
