package engine

import (
	"errors"

	"tcpdemux/internal/wire"
)

// Ephemeral port range (the IANA dynamic range).
const (
	ephemeralLo = 49152
	ephemeralHi = 65535
)

// ErrPortsExhausted is returned when no ephemeral port is free.
var ErrPortsExhausted = errors.New("engine: ephemeral ports exhausted")

// allocEphemeral finds a free local port, starting from a random rotating
// offset so sequential connections land on distinct ports (and therefore
// distinct hash chains). The stack's own bookkeeping — not demultiplexer
// probing — decides occupancy, so allocation does not distort lookup
// statistics. The caller holds s.mu.
func (s *Stack) allocEphemeral() (uint16, error) {
	if s.usedPorts == nil {
		s.usedPorts = make(map[uint16]bool)
	}
	const span = ephemeralHi - ephemeralLo + 1
	start := s.src.Intn(span)
	for i := 0; i < span; i++ {
		port := uint16(ephemeralLo + (start+i)%span)
		if !s.usedPorts[port] {
			s.usedPorts[port] = true
			return port, nil
		}
	}
	return 0, ErrPortsExhausted
}

// releasePort returns an ephemeral port to the pool. Explicitly bound
// ports (outside the dynamic range or never allocated) are ignored.
// The caller holds s.mu.
func (s *Stack) releasePort(port uint16) {
	delete(s.usedPorts, port)
}

// ConnectEphemeral is Connect with an automatically allocated local port,
// the way connect(2) behaves when the socket is unbound. The port returns
// to the pool when the connection fully closes (teardown or TIME_WAIT
// reaping).
func (s *Stack) ConnectEphemeral(remote wire.Addr, remotePort uint16, h Handler) (*Conn, error) {
	s.mu.Lock()
	port, err := s.allocEphemeral()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	conn, err := s.Connect(remote, remotePort, port, h)
	if err != nil {
		s.mu.Lock()
		s.releasePort(port)
		s.mu.Unlock()
		return nil, err
	}
	return conn, nil
}
