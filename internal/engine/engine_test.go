package engine

import (
	"bytes"
	"errors"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/frag"
	"tcpdemux/internal/wire"
)

var (
	serverAddr = wire.MakeAddr(10, 0, 0, 1)
	clientAddr = wire.MakeAddr(10, 0, 0, 2)
)

// pair builds a connected server/client stack pair with the given server
// demuxer; the client uses a plain map demuxer.
func pair(t *testing.T, serverDemux core.Demuxer) (*Stack, *Stack) {
	t.Helper()
	server := NewStack(serverAddr, serverDemux, 1)
	client := NewStack(clientAddr, core.NewMapDemux(), 2)
	return server, client
}

// echoUpper is a server handler returning the payload uppercased (ASCII).
func echoUpper(_ *Conn, payload []byte) []byte {
	out := make([]byte, len(payload))
	for i, b := range payload {
		if 'a' <= b && b <= 'z' {
			b -= 32
		}
		out[i] = b
	}
	return out
}

func TestHandshakeAndEcho(t *testing.T) {
	server, client := pair(t, core.NewBSDList())
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}
	var accepted *Conn
	server.OnAccept = func(c *Conn) { accepted = c }

	conn, err := client.Connect(serverAddr, 1521, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("client state = %v", conn.State())
	}
	if accepted == nil || accepted.State() != core.StateEstablished {
		t.Fatalf("server accept missing or wrong state: %v", accepted)
	}

	if err := conn.Send([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if got := conn.LastReceived(); !bytes.Equal(got, []byte("HELLO WORLD")) {
		t.Fatalf("echo response = %q", got)
	}
	// Demultiplexer on the server saw the SYN (listener), the handshake
	// ACK, and the data segment.
	if server.Demuxer().Stats().Lookups < 3 {
		t.Fatalf("server lookups = %d", server.Demuxer().Stats().Lookups)
	}
}

func TestHandshakeAcrossAllAlgorithms(t *testing.T) {
	for _, name := range core.Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := core.New(name, core.Config{Chains: 19})
			if err != nil {
				t.Fatal(err)
			}
			server, client := pair(t, d)
			if err := server.Listen(80, echoUpper); err != nil {
				t.Fatal(err)
			}
			conn, err := client.Connect(serverAddr, 80, 41000, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Pump(client, server); err != nil {
				t.Fatal(err)
			}
			if err := conn.Send([]byte("abc")); err != nil {
				t.Fatal(err)
			}
			if _, err := Pump(client, server); err != nil {
				t.Fatal(err)
			}
			if got := conn.LastReceived(); !bytes.Equal(got, []byte("ABC")) {
				t.Fatalf("response %q", got)
			}
		})
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	d := core.NewSequentHash(19, nil)
	server, client := pair(t, d)
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}
	const n = 100
	conns := make([]*Conn, n)
	for i := range conns {
		c, err := client.Connect(serverAddr, 1521, uint16(42000+i), nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	// n connection PCBs + 1 listener on the server.
	if got := server.Demuxer().Len(); got != n+1 {
		t.Fatalf("server PCB count = %d, want %d", got, n+1)
	}
	for i, c := range conns {
		if c.State() != core.StateEstablished {
			t.Fatalf("conn %d state %v", i, c.State())
		}
		msg := []byte{byte('a' + i%26)}
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		want := byte('A' + i%26)
		if got := c.LastReceived(); len(got) != 1 || got[0] != want {
			t.Fatalf("conn %d echoed %q", i, got)
		}
	}
}

func TestConnectionRefusedRST(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	// No listener registered.
	conn, err := client.Connect(serverAddr, 9999, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateClosed {
		t.Fatalf("refused connection state = %v", conn.State())
	}
	if client.Demuxer().Len() != 0 {
		t.Fatal("client PCB not torn down after RST")
	}
}

func TestClose(t *testing.T) {
	server, client := pair(t, core.NewBSDList())
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	serverPCBs := server.Demuxer().Len()
	clientPCBs := client.Demuxer().Len()
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	// Active closer lands in TIME_WAIT; its PCB lingers in the demuxer.
	if conn.State() != core.StateTimeWait {
		t.Fatalf("state after close = %v", conn.State())
	}
	if err := conn.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if got := server.Demuxer().Len(); got != serverPCBs-1 {
		t.Fatalf("server PCBs after close = %d, want %d", got, serverPCBs-1)
	}
	if got := client.Demuxer().Len(); got != clientPCBs {
		t.Fatalf("client PCB reaped early: %d, want %d", got, clientPCBs)
	}
	// The 2MSL timer fires.
	if n := client.TimeWaitCount(); n != 1 {
		t.Fatalf("TIME_WAIT count = %d", n)
	}
	if n := client.ReapTimeWait(); n != 1 {
		t.Fatalf("reaped %d", n)
	}
	if conn.State() != core.StateClosed {
		t.Fatalf("state after reap = %v", conn.State())
	}
	if got := client.Demuxer().Len(); got != clientPCBs-1 {
		t.Fatalf("client PCBs after reap = %d", got)
	}
}

func TestCloseManyThenReap(t *testing.T) {
	server, client := pair(t, core.NewSequentHash(19, nil))
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	const n = 40
	conns := make([]*Conn, n)
	for i := range conns {
		c, err := client.Connect(serverAddr, 80, uint16(45000+i), nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if got := client.TimeWaitCount(); got != n {
		t.Fatalf("TIME_WAIT population = %d, want %d", got, n)
	}
	// Server side fully closed: only the listener remains.
	if got := server.Demuxer().Len(); got != 1 {
		t.Fatalf("server PCBs = %d, want 1", got)
	}
	if reaped := client.ReapTimeWait(); reaped != n {
		t.Fatalf("reaped %d", reaped)
	}
	if got := client.Demuxer().Len(); got != 0 {
		t.Fatalf("client PCBs after reap = %d", got)
	}
}

func TestListenPortInUse(t *testing.T) {
	server := NewStack(serverAddr, core.NewMapDemux(), 1)
	if err := server.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	if err := server.Listen(80, nil); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeliverWrongDestination(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	if _, err := client.Connect(wire.MakeAddr(9, 9, 9, 9), 80, 40000, nil); err != nil {
		t.Fatal(err)
	}
	frames := client.Drain()
	if len(frames) != 1 {
		t.Fatalf("expected 1 SYN, got %d", len(frames))
	}
	if _, err := server.Deliver(frames[0]); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeliverGarbage(t *testing.T) {
	server := NewStack(serverAddr, core.NewMapDemux(), 1)
	if _, err := server.Deliver([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

func TestAckClassification(t *testing.T) {
	// The demuxer must see DirAck for the pure handshake ACK: verify
	// through SRCache's direction-sensitive probe accounting by checking
	// the data path works end to end (behavioral, not structural).
	d := core.NewSRCache()
	server, client := pair(t, d)
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40001, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Hits == 0 {
		t.Fatalf("SR caches never hit during handshake+data: %v", st)
	}
}

func TestPCBCountersAdvance(t *testing.T) {
	server, client := pair(t, core.NewBSDList())
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("counters")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	pcb := conn.pcb
	if pcb.TxSegments == 0 || pcb.RxSegments == 0 || pcb.TxBytes != 8 || pcb.RxBytes != 8 {
		t.Fatalf("counters: tx=%d rx=%d txB=%d rxB=%d",
			pcb.TxSegments, pcb.RxSegments, pcb.TxBytes, pcb.RxBytes)
	}
}

func TestReceiveQueue(t *testing.T) {
	server, client := pair(t, core.NewBSDList())
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"one", "two", "three"} {
		if err := conn.Send([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		if _, err := Pump(client, server); err != nil {
			t.Fatal(err)
		}
	}
	if n := conn.Pending(); n != 3 {
		t.Fatalf("pending = %d", n)
	}
	for _, want := range []string{"ONE", "TWO", "THREE"} {
		if got := string(conn.Receive()); got != want {
			t.Fatalf("Receive = %q, want %q", got, want)
		}
	}
	if conn.Receive() != nil {
		t.Fatal("empty queue returned data")
	}
	if conn.Pending() != 0 {
		t.Fatal("pending after drain")
	}
}

func TestReceiveQueueBounded(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	if err := server.Listen(80, nil); err != nil { // no handler: no responses
		t.Fatal(err)
	}
	var accepted *Conn
	server.OnAccept = func(c *Conn) { accepted = c }
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rxQueueMax+50; i++ {
		if err := conn.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if accepted == nil {
		t.Fatal("no accept")
	}
	if n := accepted.Pending(); n != rxQueueMax {
		t.Fatalf("queue grew to %d, cap is %d", n, rxQueueMax)
	}
	// The oldest 50 were dropped: the head is payload 50.
	if got := accepted.Receive(); len(got) != 1 || got[0] != 50 {
		t.Fatalf("head after overflow = %v", got)
	}
}

func TestNetstat(t *testing.T) {
	server, client := pair(t, core.NewSequentHash(19, nil))
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := client.Connect(serverAddr, 1521, uint16(30000+i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	rows := server.Netstat()
	if len(rows) != n+1 {
		t.Fatalf("netstat rows = %d, want %d", len(rows), n+1)
	}
	// Sorted: the listener (wildcard remote port 0) first, then the
	// connections by remote port.
	if rows[0].State != core.StateListen {
		t.Fatalf("first row = %v", rows[0])
	}
	for i := 1; i <= n; i++ {
		if rows[i].State != core.StateEstablished {
			t.Fatalf("row %d state = %v", i, rows[i].State)
		}
		if rows[i].Key.RemotePort != uint16(30000+i-1) {
			t.Fatalf("row %d out of order: %v", i, rows[i].Key)
		}
		if rows[i].RxSegments == 0 {
			t.Fatalf("row %d has no traffic", i)
		}
		if rows[i].String() == "" {
			t.Fatal("empty row rendering")
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	d := core.NewBSDList()
	for i := 0; i < 10; i++ {
		if err := d.Insert(core.NewPCB(core.Key{
			LocalAddr: serverAddr, LocalPort: 80,
			RemoteAddr: clientAddr, RemotePort: uint16(1000 + i),
		})); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	d.Walk(func(*core.PCB) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("walk visited %d, want 3", seen)
	}
}

// TestFragmentedDataReassembled sends one oversized data segment as IP
// fragments; the stack must reassemble and deliver it like any other.
func TestFragmentedDataReassembled(t *testing.T) {
	server, client := pair(t, core.NewSequentHash(19, nil))
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("abcdefgh"), 400) // 3200 bytes
	if err := conn.Send(big); err != nil {
		t.Fatal(err)
	}
	frames := client.Drain()
	if len(frames) != 1 {
		t.Fatalf("expected one frame, got %d", len(frames))
	}
	frags, err := frag.Fragment(frames[0], 576)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 5 {
		t.Fatalf("only %d fragments", len(frags))
	}
	for i, f := range frags {
		r, err := server.Deliver(f)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		// Only the completing fragment triggers a lookup.
		if i < len(frags)-1 && r.PCB != nil {
			t.Fatalf("fragment %d resolved a PCB early", i)
		}
	}
	// The echo comes back to the client (unfragmented: in-memory wire).
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	want := bytes.ToUpper(big)
	if got := conn.LastReceived(); !bytes.Equal(got, want) {
		t.Fatalf("echo of fragmented send: %d bytes, want %d", len(got), len(want))
	}
}

func TestConnectEphemeral(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	const n = 50
	seen := map[uint16]bool{}
	conns := make([]*Conn, n)
	for i := range conns {
		c, err := client.ConnectEphemeral(serverAddr, 80, nil)
		if err != nil {
			t.Fatal(err)
		}
		port := c.Key().LocalPort
		if port < ephemeralLo {
			t.Fatalf("port %d below dynamic range", port)
		}
		if seen[port] {
			t.Fatalf("port %d allocated twice", port)
		}
		seen[port] = true
		conns[i] = c
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		if c.State() != core.StateEstablished {
			t.Fatalf("conn %d: %v", i, c.State())
		}
	}
	// Closing and reaping releases ports back to the pool.
	for _, c := range conns {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	client.ReapTimeWait()
	c, err := client.ConnectEphemeral(serverAddr, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key().LocalPort < ephemeralLo {
		t.Fatal("post-reap allocation broken")
	}
}

// TestStaleFragmentsReaped drives the frame-count reassembly clock far
// enough that an abandoned partial datagram is expired rather than held
// forever.
func TestStaleFragmentsReaped(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	// Send a large segment, deliver only its first fragment.
	if err := conn.Send(bytes.Repeat([]byte("z"), 3000)); err != nil {
		t.Fatal(err)
	}
	frames := client.Drain()
	frags, err := frag.Fragment(frames[0], 576)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(frags[0]); err != nil {
		t.Fatal(err)
	}
	// Resync the client (its retransmission will complete the stream
	// later); for now flood > 4096+512 unrelated frames to advance the
	// reassembly clock past the TTL.
	keepalive, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
		wire.TCPHeader{SrcPort: 40000, DstPort: 80,
			Seq: conn.pcb.SndNxt, Ack: conn.pcb.RcvNxt, Flags: wire.FlagACK},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5200; i++ {
		if _, err := server.Deliver(keepalive); err != nil {
			t.Fatal(err)
		}
	}
	server.Drain()
	// The stale partial must be gone; a retransmitted whole segment
	// completes the exchange.
	if server.reasm.Pending() != 0 {
		t.Fatalf("stale partial datagram survived: %d pending", server.reasm.Pending())
	}
	if n := client.Retransmit(); n != 1 {
		t.Fatalf("retransmit queued %d", n)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if got := conn.LastReceived(); len(got) != 3000 {
		t.Fatalf("echo length %d after reap+retransmit", len(got))
	}
}
