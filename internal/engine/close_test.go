package engine

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// connect builds an established pair and returns both Conn ends.
func connect(t *testing.T) (server, client *Stack, serverConn, clientConn *Conn) {
	t.Helper()
	server, client = pair(t, core.NewMapDemux())
	if err := server.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	server.OnAccept = func(c *Conn) { serverConn = c }
	var err error
	clientConn, err = client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if serverConn == nil || clientConn.State() != core.StateEstablished {
		t.Fatal("setup failed")
	}
	return
}

// TestSimultaneousClose drives both ends through Close before either FIN
// is delivered: FIN_WAIT_1 x2 → CLOSING → TIME_WAIT on both sides.
func TestSimultaneousClose(t *testing.T) {
	server, client, serverConn, clientConn := connect(t)
	if err := clientConn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := serverConn.Close(); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() != core.StateFinWait1 || serverConn.State() != core.StateFinWait1 {
		t.Fatalf("states before exchange: %v / %v", clientConn.State(), serverConn.State())
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() != core.StateTimeWait {
		t.Fatalf("client state = %v, want TIME_WAIT", clientConn.State())
	}
	if serverConn.State() != core.StateTimeWait {
		t.Fatalf("server state = %v, want TIME_WAIT", serverConn.State())
	}
	if client.ReapTimeWait() != 1 || server.ReapTimeWait() != 1 {
		t.Fatal("reaping after simultaneous close failed")
	}
}

// TestFinRetransmitGetsReAcked: a TIME_WAIT endpoint must re-acknowledge a
// retransmitted FIN (our final ACK was presumed lost).
func TestFinRetransmitGetsReAcked(t *testing.T) {
	server, client, serverConn, clientConn := connect(t)
	if err := clientConn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() != core.StateTimeWait {
		t.Fatalf("client state = %v", clientConn.State())
	}
	_ = serverConn
	// Craft the server's FIN again (as if its final exchange was lost):
	// seq must be one before the client's RcvNxt.
	k := clientConn.Key()
	fin, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: k.RemoteAddr, Dst: k.LocalAddr},
		wire.TCPHeader{
			SrcPort: k.RemotePort, DstPort: k.LocalPort,
			Seq: clientConn.pcb.RcvNxt - 1, Ack: clientConn.pcb.SndNxt,
			Flags: wire.FlagFIN | wire.FlagACK,
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deliver(fin); err != nil {
		t.Fatal(err)
	}
	replies := client.Drain()
	if len(replies) != 1 {
		t.Fatalf("retransmitted FIN drew %d replies, want 1 ACK", len(replies))
	}
	seg, err := wire.ParseSegment(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if seg.TCP.Flags&wire.FlagACK == 0 || seg.TCP.Flags&wire.FlagFIN != 0 {
		t.Fatalf("reply flags = %s, want pure ACK", wire.FlagNames(seg.TCP.Flags))
	}
	if clientConn.State() != core.StateTimeWait {
		t.Fatalf("state changed to %v", clientConn.State())
	}
}

// TestHalfCloseServerSide: the passive closer's combined FIN|ACK and the
// final ACK complete without the active side lingering on the server.
func TestServerSideClosesFirst(t *testing.T) {
	server, client, serverConn, clientConn := connect(t)
	if err := serverConn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	// Active closer (server) parks in TIME_WAIT; passive closer (client)
	// is fully gone.
	if serverConn.State() != core.StateTimeWait {
		t.Fatalf("server conn state = %v", serverConn.State())
	}
	if clientConn.State() != core.StateClosed {
		t.Fatalf("client conn state = %v", clientConn.State())
	}
	if client.Demuxer().Len() != 0 {
		t.Fatal("client PCB lingered")
	}
	if server.TimeWaitCount() != 1 {
		t.Fatalf("server TIME_WAIT = %d", server.TimeWaitCount())
	}
}

// TestStaleRSTIgnoredInTimeWait: a reset at the wrong sequence number must
// not evict a TIME_WAIT PCB (RFC 5961 discipline extends to closing
// states).
func TestStaleRSTIgnoredInTimeWait(t *testing.T) {
	_, client, _, clientConn := connect(t)
	if err := clientConn.Close(); err != nil {
		t.Fatal(err)
	}
	// Don't pump to the server; instead inject a forged RST with a stale
	// sequence number directly.
	k := clientConn.Key()
	rst, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: k.RemoteAddr, Dst: k.LocalAddr},
		wire.TCPHeader{
			SrcPort: k.RemotePort, DstPort: k.LocalPort,
			Seq: clientConn.pcb.RcvNxt + 9999, Flags: wire.FlagRST,
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deliver(rst); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() == core.StateClosed {
		t.Fatal("stale RST tore down a closing connection")
	}
}

// TestDataAfterCloseRejected: sending on a closing connection errors.
func TestDataAfterCloseRejected(t *testing.T) {
	_, _, _, clientConn := connect(t)
	if err := clientConn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := clientConn.Send([]byte("late")); err == nil {
		// Send during FIN_WAIT_1 would emit data past our FIN.
		t.Log("note: engine permits send in FIN_WAIT_1 (half-close semantics)")
	}
}
