package engine

import (
	"bytes"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
)

// lossyPump shuttles frames between stacks like Pump, but drops each frame
// with the given probability. It retransmits after every quiescent round
// and gives up after maxRounds.
func lossyPump(t *testing.T, a, b *Stack, dropProb float64, src *rng.Source, maxRounds int) {
	t.Helper()
	for round := 0; round < maxRounds; round++ {
		moved := false
		deliver := func(from, to *Stack) {
			for _, frame := range from.Drain() {
				if src.Float64() < dropProb {
					continue // the wire ate it
				}
				if _, err := to.Deliver(frame); err != nil {
					t.Fatal(err)
				}
				moved = true
			}
		}
		deliver(a, b)
		deliver(b, a)
		if !moved {
			// Quiet: either done or everything in flight was dropped.
			if a.Retransmit()+b.Retransmit() == 0 {
				return
			}
		}
	}
	t.Fatal("lossy pump did not converge")
}

// TestRetransmitRecoversFromLoss runs the handshake and an echo exchange
// over a 25%-loss link; retransmission must carry it through.
func TestRetransmitRecoversFromLoss(t *testing.T) {
	server, client := pair(t, core.NewSequentHash(19, nil))
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	src := rng.New(1234)
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	lossyPump(t, client, server, 0.25, src, 200)
	if conn.State() != core.StateEstablished {
		t.Fatalf("handshake did not survive loss: %v", conn.State())
	}
	if err := conn.Send([]byte("lossy hello")); err != nil {
		t.Fatal(err)
	}
	lossyPump(t, client, server, 0.25, src, 200)
	if got := conn.LastReceived(); !bytes.Equal(got, []byte("LOSSY HELLO")) {
		t.Fatalf("echo over lossy link = %q", got)
	}
}

// TestRetransmitNoopWhenAcked: after a clean exchange nothing should be
// queued for retransmission.
func TestRetransmitNoopWhenAcked(t *testing.T) {
	server, client := pair(t, core.NewBSDList())
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if n := client.Retransmit() + server.Retransmit(); n != 0 {
		t.Fatalf("retransmit queued %d frames on a lossless link", n)
	}
}

// TestRetransmitDuplicateIsHarmless: retransmitting an already-delivered
// segment must not double-deliver data.
func TestRetransmitDuplicateIsHarmless(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	if err := server.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	var accepted *Conn
	server.OnAccept = func(c *Conn) { accepted = c }
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("once")); err != nil {
		t.Fatal(err)
	}
	// Deliver the data frame twice before any ACK reaches the client.
	frames := client.Drain()
	if len(frames) != 1 {
		t.Fatalf("expected 1 data frame, got %d", len(frames))
	}
	for i := 0; i < 2; i++ {
		if _, err := server.Deliver(frames[0]); err != nil {
			t.Fatal(err)
		}
	}
	server.Drain() // discard acks
	if accepted == nil {
		t.Fatal("no accept")
	}
	if n := accepted.Pending(); n != 1 {
		t.Fatalf("duplicate delivered data %d times", n)
	}
}
