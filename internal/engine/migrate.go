// Connection migration between Stacks. The sharded multi-queue engine
// (internal/shard) moves a live connection from one shard's Stack to
// another when a steering rekey changes its flow assignment: the old
// shard Extracts the PCB — out of its demultiplexer, timers quenched,
// accounting unwound, but nothing torn down — hands it across an SPSC
// ring, and the new shard Adopts it, re-inserting and re-arming on its
// own wheel. The pair is also usable alone (tests move connections
// between two plain Stacks), but the contract is written for the shard
// engine: both stacks share one address and one virtual clock, and the
// caller guarantees no frame for the connection is delivered between
// Extract and Adopt.
package engine

import (
	"tcpdemux/internal/core"
)

// Extract removes the connection identified by k from the stack without
// tearing it down: the PCB leaves the demultiplexer, its lifecycle
// timers are canceled, and its listener-backlog or TIME_WAIT accounting
// is unwound, but its TCP state, sequence numbers, receive queue, and
// retransmission buffer all survive intact for a subsequent Adopt.
// Listening (wildcard) PCBs cannot be extracted — every shard owns its
// own listener — and an unknown key returns false.
//
// An ephemeral local port stays allocated on this stack: migration is a
// server-side affair and the port namespace belongs to the stack that
// allocated it.
func (s *Stack) Extract(k core.Key) (*core.PCB, bool) {
	if k.IsWildcard() {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var pcb *core.PCB
	// Walk, not Lookup: a control-plane find must not perturb the lookup
	// statistics or the move-to-front / cache state under study.
	s.demux.Walk(func(p *core.PCB) bool {
		if p.Key == k {
			pcb = p
			return false
		}
		return true
	})
	if pcb == nil || pcb.State == core.StateClosed {
		return nil, false
	}
	if !s.demux.Remove(k) {
		return nil, false
	}
	if cd, ok := pcb.UserData.(*connData); ok {
		cd.rtx.Cancel()
		cd.rtx = nil
		cd.life.Cancel()
		cd.life = nil
	}
	switch pcb.State {
	case core.StateSynRcvd:
		s.releaseHalfOpen(pcb)
	case core.StateTimeWait:
		s.unTimeWait(pcb)
	}
	return pcb, true
}

// Adopt inserts a previously Extracted PCB into this stack, taking over
// every responsibility the old stack released: the connection's Conn
// re-homes here (its Send/Close/Receive now run against this stack),
// half-open and TIME_WAIT accounting resume, and lifecycle timers are
// re-armed on this stack's wheel. Re-arming restarts each timer's full
// interval — a migrated half-open connection gets a fresh SYN_RCVD
// give-up clock, a TIME_WAIT linger restarts its 2MSL — which only ever
// lengthens a deadline, never expires one early. A retransmission timer
// re-arms at the backoff interval its retry count had reached.
func (s *Stack) Adopt(pcb *core.PCB) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.demux.Insert(pcb); err != nil {
		return err
	}
	cd, ok := pcb.UserData.(*connData)
	if ok {
		cd.conn.stack = s
	}
	switch pcb.State {
	case core.StateSynRcvd:
		s.halfOpen[pcb.Key.LocalPort]++
		s.armSynRcvdExpiry(pcb)
	case core.StateTimeWait:
		s.timeWait = append(s.timeWait, pcb)
		s.armTimeWait(pcb)
	}
	if ok && cd.unacked != nil {
		s.armRetransmit(pcb, cd)
	}
	return nil
}

// SetTimers configures the lifecycle timer overrides in one call (zero
// values keep the engine defaults). It exists so any LossyServer — a
// single Stack or a sharded set fanning the values to every shard — can
// be configured uniformly by the lossy harness.
func (s *Stack) SetTimers(rto float64, maxRetries int, msl float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.RTO = rto
	s.MaxRetries = maxRetries
	s.MSL = msl
}

// SetBacklog sets the per-listener half-open limit (zero or negative
// restores DefaultBacklog).
func (s *Stack) SetBacklog(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Backlog = n
}

// LifecycleCounters returns the stack's timer-driven lifecycle totals.
func (s *Stack) LifecycleCounters() (retransmits, aborts, synExpired, timeWaitExpired uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Retransmits, s.Aborts, s.SynExpired, s.TimeWaitExpired
}
