// Package engine glues the substrates into a runnable endpoint: raw
// IPv4/TCP frames go in, PCB demultiplexing locates the connection, a
// minimal TCP state machine advances it, and reply frames come out. The
// examples use two linked Stacks to run realistic client/server traffic
// through whichever demultiplexer is under study.
//
// The TCP machinery is deliberately small — enough for passive/active
// open, in-order data exchange with acknowledgements, reset generation,
// and close — because the paper's subject is the lookup step, not
// congestion control or retransmission.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tcpdemux/internal/core"
	"tcpdemux/internal/frag"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/telemetry"
	"tcpdemux/internal/timer"
	"tcpdemux/internal/wire"
)

// Errors reported by the engine.
var (
	ErrPortInUse = errors.New("engine: port already has a listener")
	ErrClosed    = errors.New("engine: connection is closed")
	ErrNoRoute   = errors.New("engine: frame is not addressed to this stack")
)

// Handler consumes application data arriving on an accepted connection and
// optionally returns a response payload to transmit on the same
// connection.
type Handler func(c *Conn, payload []byte) (response []byte)

// DefaultBacklog bounds half-open (SYN_RCVD) connections per listener.
// Without it a SYN flood manufactures PCBs without limit, bloating exactly
// the lookup structures this repo measures.
const DefaultBacklog = 128

// Conn is the application's view of one connection.
type Conn struct {
	stack *Stack
	pcb   *core.PCB
}

// Key returns the connection's demultiplexing key.
func (c *Conn) Key() core.Key { return c.pcb.Key }

// State returns the connection's TCP state.
func (c *Conn) State() core.State { return c.pcb.State }

// Send transmits payload on the connection.
func (c *Conn) Send(payload []byte) error {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	return c.stack.send(c.pcb, payload, wire.FlagACK|wire.FlagPSH)
}

// Close starts the active close: FIN is sent and the connection walks
// FIN_WAIT_1 → FIN_WAIT_2 → TIME_WAIT as the peer responds. The PCB stays
// in the demultiplexer through TIME_WAIT (lengthening lookup chains, as on
// a real server) until the 2MSL timer fires under Stack.Tick or
// Stack.ReapTimeWait collects it.
//
// Closing a connection that has not completed its handshake tears it down
// directly: there is no established peer state to dissolve, so no FIN is
// sent (and a SYN_RCVD close releases its listener backlog slot).
func (c *Conn) Close() error {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	switch c.pcb.State {
	case core.StateClosed, core.StateTimeWait, core.StateFinWait1,
		core.StateFinWait2, core.StateClosing, core.StateLastAck:
		return ErrClosed
	case core.StateSynSent:
		c.stack.teardown(c.pcb)
		return nil
	case core.StateSynRcvd:
		c.stack.releaseHalfOpen(c.pcb)
		c.stack.teardown(c.pcb)
		return nil
	case core.StateCloseWait:
		// Passive close: our FIN answers the peer's.
		if err := c.stack.send(c.pcb, nil, wire.FlagFIN|wire.FlagACK); err != nil {
			return err
		}
		c.pcb.State = core.StateLastAck
		return nil
	}
	if err := c.stack.send(c.pcb, nil, wire.FlagFIN|wire.FlagACK); err != nil {
		return err
	}
	c.pcb.State = core.StateFinWait1
	return nil
}

// connData is the engine's per-PCB state hung off PCB.UserData.
type connData struct {
	conn    *Conn
	handler Handler
	// lastRx holds the most recent data payload for polling clients.
	lastRx []byte
	// rxQueue holds received payloads not yet taken with Receive. It is
	// bounded to rxQueueMax; beyond that the oldest payloads are dropped
	// (the engine has no flow control, so an unread queue means the
	// application abandoned the data).
	rxQueue [][]byte
	// unacked retains the frame of the most recent sequence-consuming
	// segment until the peer acknowledges it, for the retransmission
	// timer and Stack.Retransmit. The engine is stop-and-wait per
	// connection: a second send before the first is acknowledged replaces
	// the retransmission buffer.
	unacked    []byte
	unackedEnd uint32
	// rtx is the pending retransmission timer for unacked; retries counts
	// consecutive timer-driven retransmissions of the same segment (reset
	// on acknowledgement) and drives exponential backoff and the
	// max-retry abort.
	rtx     *timer.Timer
	retries int
	// life is the connection-lifecycle timer: SYN_RCVD give-up while half
	// open, the 2MSL clock once in TIME_WAIT.
	life *timer.Timer
}

// rxQueueMax bounds the per-connection receive queue.
const rxQueueMax = 1024

// Stack is one host endpoint. Its methods are safe for concurrent use.
type Stack struct {
	mu       sync.Mutex
	addr     wire.Addr
	demux    core.Demuxer
	src      *rng.Source
	outbox   [][]byte
	handlers map[uint16]Handler
	timeWait []*core.PCB
	// halfOpen counts SYN_RCVD PCBs per listening port, against Backlog.
	halfOpen map[uint16]int
	// Backlog overrides DefaultBacklog when positive.
	Backlog int
	// SynDrops counts SYNs refused because the backlog was full.
	SynDrops uint64
	// SynCookies enables stateless SYN|ACKs once the backlog fills, so
	// legitimate clients can complete handshakes during a flood; see
	// cookies.go.
	SynCookies bool
	// seed is retained for deriving independent secrets (the cookie key)
	// without disturbing src's deterministic draw sequence.
	seed uint64
	// cookie is the lazily derived SYN-cookie secret.
	cookie     hashfn.Keyed
	cookieInit bool
	// tel holds the per-reason drop, cookie, and lifecycle counters on a
	// telemetry registry (a private one until SetTelemetry re-homes them);
	// Stats() renders them as a StackStats view.
	tel    *telemetry.StackMetrics
	reasm  *frag.Reassembler
	frames uint64 // delivered-frame counter, the reassembly clock
	// usedPorts tracks ephemeral allocations (see ports.go).
	usedPorts map[uint16]bool
	// OnAccept, if set, is invoked (with the lock held) when a passive
	// open completes.
	OnAccept func(*Conn)
	// egress, when set via SetEgressTap, receives every outbound frame
	// the instant it is queued, instead of the frame landing on the
	// outbox for Drain. Invoked with the lock held; see SetEgressTap.
	egress func(frame []byte)

	// wheel and now are the stack's virtual-time lifecycle clock; see
	// timers.go. Tick(now) advances them.
	wheel *timer.Wheel
	now   float64
	// RTO, MaxRetries, MSL, and SynRcvdTimeout override the lifecycle
	// timer defaults when positive; see timers.go.
	RTO            float64
	MaxRetries     int
	MSL            float64
	SynRcvdTimeout float64
	// Timer-driven lifecycle counters.
	Retransmits     uint64 // segments re-queued by the retransmission timer
	Aborts          uint64 // connections dropped at the max-retry limit
	SynExpired      uint64 // half-open PCBs reaped by the SYN_RCVD timer
	TimeWaitExpired uint64 // PCBs reaped by the 2MSL timer
}

// NewStack builds a host endpoint at addr that demultiplexes with d.
func NewStack(addr wire.Addr, d core.Demuxer, seed uint64) *Stack {
	return &Stack{
		addr:     addr,
		demux:    d,
		src:      rng.New(seed),
		seed:     seed,
		handlers: make(map[uint16]Handler),
		halfOpen: make(map[uint16]int),
		reasm:    frag.New(64),
		wheel:    timer.New(timerTick),
		tel:      telemetry.NewStackMetrics(telemetry.NewRegistry()),
	}
}

// SetTelemetry re-homes the stack's counters on reg, so its drops,
// cookies, and timer fires appear in the same snapshot as the demux and
// overload metrics. Call it before delivering traffic: counts already
// accumulated on the previous registry are not carried over.
func (s *Stack) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = telemetry.NewStackMetrics(reg)
}

// Telemetry returns the stack's counter bundle (for tests and direct
// snapshot access).
func (s *Stack) Telemetry() *telemetry.StackMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel
}

// Addr returns the stack's address.
func (s *Stack) Addr() wire.Addr { return s.addr }

// Demuxer exposes the underlying demultiplexer (for stats inspection).
func (s *Stack) Demuxer() core.Demuxer { return s.demux }

// Listen registers a handler for a local port and inserts the listening
// PCB.
func (s *Stack) Listen(port uint16, h Handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[port]; dup {
		return ErrPortInUse
	}
	pcb := core.NewListenPCB(core.ListenKey(s.addr, port))
	if err := s.demux.Insert(pcb); err != nil {
		return err
	}
	s.handlers[port] = h
	return nil
}

// Connect begins an active open to remote:port from the given local port,
// queueing the SYN. The returned Conn becomes Established once the peer's
// SYN|ACK is delivered.
func (s *Stack) Connect(remote wire.Addr, remotePort, localPort uint16, h Handler) (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := core.Key{
		LocalAddr: s.addr, LocalPort: localPort,
		RemoteAddr: remote, RemotePort: remotePort,
	}
	pcb := core.NewPCB(k)
	pcb.State = core.StateSynSent
	pcb.SndNxt = uint32(s.src.Uint64()) // ISS
	conn := &Conn{stack: s, pcb: pcb}
	pcb.UserData = &connData{conn: conn, handler: h}
	if err := s.demux.Insert(pcb); err != nil {
		return nil, err
	}
	if err := s.send(pcb, nil, wire.FlagSYN); err != nil {
		s.demux.Remove(k)
		return nil, err
	}
	return conn, nil
}

// Drain returns the queued outbound frames and clears the outbox.
func (s *Stack) Drain() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.outbox
	s.outbox = nil
	return out
}

// SetEgressTap routes outbound frames to fn as they are produced instead
// of queuing them on the outbox — the serving frontend's path, where a
// frame's destination socket is known the moment the frame exists and a
// Drain poll per delivery would rescan every shard. fn runs with the
// stack lock held, so it must not call back into this Stack (or any
// re-locking public method); append to a caller-owned queue and process
// after Deliver/Tick returns. Passing nil restores outbox queuing.
func (s *Stack) SetEgressTap(fn func(frame []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.egress = fn
}

// emit hands one outbound frame to the egress tap, or queues it on the
// outbox when no tap is installed. The caller holds s.mu.
func (s *Stack) emit(frame []byte) {
	if s.egress != nil {
		s.egress(frame)
		return
	}
	s.outbox = append(s.outbox, frame)
}

// send builds and queues one segment on pcb. SYN and FIN consume one
// sequence number; data consumes its length. The caller holds s.mu.
func (s *Stack) send(pcb *core.PCB, payload []byte, flags uint8) error {
	if pcb.State == core.StateClosed {
		return ErrClosed
	}
	ip := wire.IPv4Header{
		TTL: 64,
		Src: pcb.Key.LocalAddr, Dst: pcb.Key.RemoteAddr,
	}
	tcp := wire.TCPHeader{
		SrcPort: pcb.Key.LocalPort, DstPort: pcb.Key.RemotePort,
		Seq: pcb.SndNxt, Ack: pcb.RcvNxt,
		Flags: flags, Window: 65535,
	}
	if flags&wire.FlagACK == 0 && flags&wire.FlagSYN == 0 && flags&wire.FlagRST == 0 {
		tcp.Flags |= wire.FlagACK
	}
	frame, err := wire.BuildSegment(ip, tcp, payload)
	if err != nil {
		return err
	}
	pcb.SndNxt += uint32(len(payload))
	if flags&(wire.FlagSYN|wire.FlagFIN) != 0 {
		pcb.SndNxt++
	}
	pcb.TxSegments++
	pcb.TxBytes += uint64(len(payload))
	if len(payload) > 0 || flags&(wire.FlagSYN|wire.FlagFIN) != 0 {
		if cd, ok := pcb.UserData.(*connData); ok {
			cd.unacked = frame
			cd.unackedEnd = pcb.SndNxt
			cd.retries = 0
			s.armRetransmit(pcb, cd)
		}
	}
	s.demux.NotifySend(pcb)
	s.emit(frame)
	return nil
}

// sendRST queues a reset for an unmatched segment, following RFC 793's
// reset-generation rules: if the offending segment carries an ACK, the
// reset takes its sequence number from that ACK field; otherwise the
// reset has sequence number zero and acknowledges the segment's SEG.LEN
// (payload length plus one for each of SYN and FIN) so the sender can
// match it.
func (s *Stack) sendRST(seg *wire.Segment) {
	ip := wire.IPv4Header{TTL: 64, Src: seg.IP.Dst, Dst: seg.IP.Src}
	tcp := wire.TCPHeader{
		SrcPort: seg.TCP.DstPort, DstPort: seg.TCP.SrcPort,
		Flags: wire.FlagRST, Window: 0,
	}
	if seg.TCP.Flags&wire.FlagACK != 0 {
		tcp.Seq = seg.TCP.Ack
	} else {
		segLen := uint32(len(seg.Payload))
		if seg.TCP.Flags&wire.FlagSYN != 0 {
			segLen++
		}
		if seg.TCP.Flags&wire.FlagFIN != 0 {
			segLen++
		}
		tcp.Seq = 0
		tcp.Ack = seg.TCP.Seq + segLen
		tcp.Flags |= wire.FlagACK
	}
	if frame, err := wire.BuildSegment(ip, tcp, nil); err == nil {
		s.emit(frame)
	}
}

// teardown removes the PCB from the demultiplexer and marks it closed,
// canceling its lifecycle timers and releasing its ephemeral port if it
// had one. The caller holds s.mu.
func (s *Stack) teardown(pcb *core.PCB) {
	if cd, ok := pcb.UserData.(*connData); ok {
		cd.rtx.Cancel()
		cd.rtx = nil
		cd.life.Cancel()
		cd.life = nil
	}
	s.demux.Remove(pcb.Key)
	pcb.State = core.StateClosed
	s.releasePort(pcb.Key.LocalPort)
}

// classify picks the lookup direction for an inbound segment: pure
// acknowledgements probe send-side caches first (paper footnote 5).
func classify(seg *wire.Segment) core.Direction {
	if len(seg.Payload) == 0 && seg.TCP.Flags&(wire.FlagSYN|wire.FlagFIN|wire.FlagRST) == 0 {
		return core.DirAck
	}
	return core.DirData
}

// Deliver processes one inbound frame: parse, demultiplex, advance the
// state machine, queue any replies. It returns the lookup result so
// callers can account examination costs.
func (s *Stack) Deliver(frame []byte) (core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	s.frames++
	// Stale partial datagrams expire on a frame-count clock: any datagram
	// still incomplete ~4096 delivered frames after its first fragment is
	// abandoned (the RFC 791 reassembly timer, with frames for seconds).
	if s.frames%512 == 0 {
		s.reasm.Reap(float64(s.frames), 4096)
	}
	seg, err := wire.ParseSegment(frame)
	if errors.Is(err, wire.ErrFragmented) {
		// Absorb the fragment; if it completes a datagram, process the
		// rebuilt frame, otherwise we are done for now.
		whole, ferr := s.reasm.Add(frame, float64(s.frames))
		if ferr != nil {
			return core.Result{}, ferr
		}
		if whole == nil {
			return core.Result{}, nil
		}
		seg, err = wire.ParseSegment(whole)
	}
	if err != nil {
		if errors.Is(err, wire.ErrTCPBadChecksum) || errors.Is(err, wire.ErrIPv4BadChecksum) {
			s.tel.DroppedBadChecksum.Inc()
		} else {
			s.tel.DroppedBadFrame.Inc()
		}
		return core.Result{}, err
	}
	if seg.IP.Dst != s.addr {
		s.tel.DroppedNoRoute.Inc()
		return core.Result{}, ErrNoRoute
	}
	key := core.KeyFromTuple(seg.Tuple())
	res := s.demux.Lookup(key, classify(seg))
	pcb := res.PCB
	if pcb == nil {
		if seg.TCP.Flags&wire.FlagRST == 0 {
			s.tel.DroppedNoListener.Inc()
			s.sendRST(seg)
		} else {
			// RFC 793: never reset a reset.
			s.tel.DroppedRST.Inc()
		}
		return res, nil
	}
	pcb.RxSegments++
	pcb.RxBytes += uint64(len(seg.Payload))
	// Any acknowledgement covering the retransmission buffer releases it
	// and quenches the retransmission timer.
	if seg.TCP.Flags&wire.FlagACK != 0 {
		if cd, ok := pcb.UserData.(*connData); ok && cd.unacked != nil && seg.TCP.Ack == cd.unackedEnd {
			cd.unacked = nil
			cd.retries = 0
			cd.rtx.Cancel()
			cd.rtx = nil
		}
	}

	switch pcb.State {
	case core.StateListen:
		s.handleListen(pcb, seg, key)
	case core.StateSynSent:
		s.handleSynSent(pcb, seg)
	case core.StateSynRcvd:
		s.handleSynRcvd(pcb, seg)
	case core.StateEstablished:
		s.handleEstablished(pcb, seg)
	case core.StateCloseWait, core.StateLastAck:
		if seg.TCP.Flags&wire.FlagACK != 0 && seg.TCP.Ack == pcb.SndNxt {
			s.teardown(pcb)
		}
	case core.StateFinWait1, core.StateFinWait2, core.StateClosing, core.StateTimeWait:
		s.handleClosing(pcb, seg)
	default:
		// Closed, or states the engine does not model further.
	}
	return res, nil
}

// handleClosing advances the active-close states.
func (s *Stack) handleClosing(pcb *core.PCB, seg *wire.Segment) {
	f := seg.TCP.Flags
	if f&wire.FlagRST != 0 {
		if seg.TCP.Seq == pcb.RcvNxt {
			// Capture the state before teardown forces it to CLOSED: only
			// a PCB that was actually lingering in TIME_WAIT is on the
			// time-wait list, so only then is the O(n) scrub warranted.
			wasTimeWait := pcb.State == core.StateTimeWait
			s.teardown(pcb)
			if wasTimeWait {
				s.unTimeWait(pcb)
			}
		}
		return
	}
	finAcked := f&wire.FlagACK != 0 && seg.TCP.Ack == pcb.SndNxt
	finHere := f&wire.FlagFIN != 0 && seg.TCP.Seq+uint32(len(seg.Payload)) == pcb.RcvNxt
	// A data segment below the window is a retransmission whose original
	// acknowledgement was lost; re-acknowledge so the peer can release its
	// buffer instead of backing off to an abort.
	staleData := len(seg.Payload) > 0 && seg.TCP.Seq+uint32(len(seg.Payload)) == pcb.RcvNxt

	switch pcb.State {
	case core.StateFinWait1:
		switch {
		case finHere && finAcked:
			pcb.RcvNxt++
			s.enterTimeWait(pcb)
			_ = s.send(pcb, nil, wire.FlagACK)
		case finHere:
			// Simultaneous close.
			pcb.RcvNxt++
			pcb.State = core.StateClosing
			_ = s.send(pcb, nil, wire.FlagACK)
		case finAcked:
			pcb.State = core.StateFinWait2
			if staleData {
				_ = s.send(pcb, nil, wire.FlagACK)
			}
		case staleData:
			_ = s.send(pcb, nil, wire.FlagACK)
		}
	case core.StateFinWait2:
		if finHere {
			pcb.RcvNxt++
			s.enterTimeWait(pcb)
			_ = s.send(pcb, nil, wire.FlagACK)
		} else if staleData {
			_ = s.send(pcb, nil, wire.FlagACK)
		}
	case core.StateClosing:
		if finAcked {
			s.enterTimeWait(pcb)
		}
	case core.StateTimeWait:
		// A retransmitted FIN sits one octet below RcvNxt — we already
		// consumed it once; the peer evidently lost our final ACK. Re-ack
		// and restart the 2MSL clock, as RFC 793 prescribes.
		if f&wire.FlagFIN != 0 && seg.TCP.Seq+uint32(len(seg.Payload)) == pcb.RcvNxt-1 {
			_ = s.send(pcb, nil, wire.FlagACK)
			s.armTimeWait(pcb)
		}
	}
}

// enterTimeWait parks the PCB in TIME_WAIT. It remains in the
// demultiplexer — and therefore keeps lengthening its chain — until the
// 2MSL timer fires under Stack.Tick (or ReapTimeWait forces the issue),
// modeling the 2MSL linger of a real stack.
func (s *Stack) enterTimeWait(pcb *core.PCB) {
	pcb.State = core.StateTimeWait
	s.timeWait = append(s.timeWait, pcb)
	s.armTimeWait(pcb)
}

// unTimeWait drops a torn-down PCB from the TIME_WAIT list.
func (s *Stack) unTimeWait(pcb *core.PCB) {
	for i, p := range s.timeWait {
		if p == pcb {
			s.timeWait = append(s.timeWait[:i], s.timeWait[i+1:]...)
			return
		}
	}
}

// TimeWaitCount returns the number of PCBs lingering in TIME_WAIT.
func (s *Stack) TimeWaitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timeWait)
}

// ReapTimeWait removes every TIME_WAIT PCB from the demultiplexer
// immediately — forcing every 2MSL timer, wherever it stands — and
// returns how many were collected. Under Stack.Tick the same collection
// happens automatically as each PCB's own 2MSL deadline passes; this
// manual sweep remains for tests and clock-less callers.
func (s *Stack) ReapTimeWait() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.timeWait)
	for _, pcb := range s.timeWait {
		s.teardown(pcb)
	}
	s.timeWait = nil
	return n
}

// handleListen performs the passive open: a SYN to a listener spawns a
// connection PCB in SYN_RCVD and answers SYN|ACK.
func (s *Stack) handleListen(listener *core.PCB, seg *wire.Segment, key core.Key) {
	f := seg.TCP.Flags
	if f&wire.FlagSYN == 0 || f&wire.FlagACK != 0 {
		// Not an initial SYN. With cookies enabled, a pure ACK may be the
		// third step of a stateless handshake — validate it against the
		// cookie it must echo.
		if s.SynCookies && f&wire.FlagACK != 0 && f&(wire.FlagSYN|wire.FlagRST|wire.FlagFIN) == 0 {
			s.acceptCookieACK(seg, key)
			return
		}
		if f&wire.FlagRST == 0 {
			s.sendRST(seg)
		}
		return
	}
	backlog := s.Backlog
	if backlog <= 0 {
		backlog = DefaultBacklog
	}
	if s.halfOpen[key.LocalPort] >= backlog {
		s.SynDrops++
		s.tel.SynDrops.Inc()
		if s.SynCookies {
			// Backlog full: answer statelessly instead of shedding the
			// SYN, so a legitimate client can still complete — the whole
			// point of cookies.
			s.sendCookieSynAck(seg)
			return
		}
		// Backlog full: drop the SYN silently, as listen(2) queues do —
		// the client's retransmission will retry after the flood ebbs.
		s.tel.DroppedBacklogFull.Inc()
		return
	}
	pcb := core.NewPCB(key)
	pcb.State = core.StateSynRcvd
	pcb.RcvNxt = seg.TCP.Seq + 1
	pcb.SndNxt = uint32(s.src.Uint64()) // ISS
	conn := &Conn{stack: s, pcb: pcb}
	pcb.UserData = &connData{conn: conn, handler: s.handlers[key.LocalPort]}
	if err := s.demux.Insert(pcb); err != nil {
		// Simultaneous duplicate SYN; drop.
		return
	}
	s.halfOpen[key.LocalPort]++
	if err := s.send(pcb, nil, wire.FlagSYN|wire.FlagACK); err != nil {
		// Release the backlog slot we just took, or a transient send
		// failure permanently shrinks the listener's accept capacity.
		s.releaseHalfOpen(pcb)
		s.teardown(pcb)
		return
	}
	s.armSynRcvdExpiry(pcb)
}

// releaseHalfOpen decrements the listener's half-open count when a
// SYN_RCVD PCB either completes or dies. The caller holds s.mu.
func (s *Stack) releaseHalfOpen(pcb *core.PCB) {
	if n := s.halfOpen[pcb.Key.LocalPort]; n > 0 {
		s.halfOpen[pcb.Key.LocalPort] = n - 1
	}
}

// handleSynSent completes the active open on SYN|ACK.
func (s *Stack) handleSynSent(pcb *core.PCB, seg *wire.Segment) {
	f := seg.TCP.Flags
	if f&wire.FlagRST != 0 {
		s.teardown(pcb)
		return
	}
	if f&wire.FlagSYN == 0 || f&wire.FlagACK == 0 || seg.TCP.Ack != pcb.SndNxt {
		return
	}
	pcb.RcvNxt = seg.TCP.Seq + 1
	pcb.State = core.StateEstablished
	if err := s.send(pcb, nil, wire.FlagACK); err != nil {
		s.teardown(pcb)
	}
}

// handleSynRcvd completes the passive open on the third-step ACK.
func (s *Stack) handleSynRcvd(pcb *core.PCB, seg *wire.Segment) {
	f := seg.TCP.Flags
	if f&wire.FlagRST != 0 {
		s.releaseHalfOpen(pcb)
		s.teardown(pcb)
		return
	}
	if f&wire.FlagACK == 0 || seg.TCP.Ack != pcb.SndNxt {
		return
	}
	s.releaseHalfOpen(pcb)
	pcb.State = core.StateEstablished
	if cd, ok := pcb.UserData.(*connData); ok {
		// Handshake complete: the SYN_RCVD give-up timer no longer applies.
		cd.life.Cancel()
		cd.life = nil
		if s.OnAccept != nil {
			s.OnAccept(cd.conn)
		}
	}
	// The handshake ACK may already carry data.
	if len(seg.Payload) > 0 {
		s.handleEstablished(pcb, seg)
	}
}

// handleEstablished consumes data and FIN on an open connection.
func (s *Stack) handleEstablished(pcb *core.PCB, seg *wire.Segment) {
	if seg.TCP.Flags&wire.FlagRST != 0 {
		// RFC 5961-style strictness: a reset is honoured only at exactly
		// the next expected sequence number, so stale or forged resets
		// cannot tear the connection down.
		if seg.TCP.Seq == pcb.RcvNxt {
			s.teardown(pcb)
		}
		return
	}
	// A duplicate handshake segment (retransmitted SYN|ACK whose ACK we
	// lost) or out-of-order data gets a pure ACK so the peer can release
	// its retransmission buffer — RFC 793's "send an acknowledgment" rule
	// for unacceptable segments.
	if seg.TCP.Flags&wire.FlagSYN != 0 ||
		(len(seg.Payload) > 0 && seg.TCP.Seq != pcb.RcvNxt) {
		if err := s.send(pcb, nil, wire.FlagACK); err != nil {
			s.teardown(pcb)
		}
		return
	}
	cd, _ := pcb.UserData.(*connData)
	if n := len(seg.Payload); n > 0 && seg.TCP.Seq == pcb.RcvNxt {
		pcb.RcvNxt += uint32(n)
		var response []byte
		if cd != nil {
			cd.lastRx = append(cd.lastRx[:0], seg.Payload...)
			cd.rxQueue = append(cd.rxQueue, append([]byte(nil), seg.Payload...))
			if len(cd.rxQueue) > rxQueueMax {
				cd.rxQueue = cd.rxQueue[len(cd.rxQueue)-rxQueueMax:]
			}
			if cd.handler != nil {
				response = cd.handler(cd.conn, seg.Payload)
			}
		}
		if response != nil {
			if err := s.send(pcb, response, wire.FlagACK|wire.FlagPSH); err != nil {
				s.teardown(pcb)
				return
			}
		} else {
			// Pure window-update acknowledgement.
			if err := s.send(pcb, nil, wire.FlagACK); err != nil {
				s.teardown(pcb)
				return
			}
		}
	}
	if seg.TCP.Flags&wire.FlagFIN != 0 {
		// Honour a FIN only in order: its sequence number (after any
		// payload in the same segment) must be the next expected octet.
		if seg.TCP.Seq+uint32(len(seg.Payload)) != pcb.RcvNxt {
			return
		}
		pcb.RcvNxt++
		pcb.State = core.StateLastAck
		if err := s.send(pcb, nil, wire.FlagFIN|wire.FlagACK); err == nil {
			// Peer's final ACK will complete teardown in Deliver.
			return
		}
		s.teardown(pcb)
	}
}

// Receive pops the oldest unread data payload from the connection's
// receive queue, or returns nil when nothing is pending. Every inbound
// data segment is queued regardless of whether a Handler also saw it.
func (c *Conn) Receive() []byte {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	cd, ok := c.pcb.UserData.(*connData)
	if !ok || len(cd.rxQueue) == 0 {
		return nil
	}
	head := cd.rxQueue[0]
	cd.rxQueue = cd.rxQueue[1:]
	return head
}

// Pending returns the number of received payloads waiting in the queue.
func (c *Conn) Pending() int {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	if cd, ok := c.pcb.UserData.(*connData); ok {
		return len(cd.rxQueue)
	}
	return 0
}

// LastReceived returns the most recent data payload delivered on the
// connection, for polling clients in tests and examples.
func (c *Conn) LastReceived() []byte {
	c.stack.mu.Lock()
	defer c.stack.mu.Unlock()
	if cd, ok := c.pcb.UserData.(*connData); ok && cd.lastRx != nil {
		out := make([]byte, len(cd.lastRx))
		copy(out, cd.lastRx)
		return out
	}
	return nil
}

// Pump shuttles frames between two endpoints until both outboxes are
// empty, returning the number of frames delivered. It is the examples'
// in-memory "wire". Frames that fail to parse or route return an error.
func Pump(a, b Endpoint) (int, error) {
	delivered := 0
	for rounds := 0; ; rounds++ {
		if rounds > 10000 {
			return delivered, fmt.Errorf("engine: pump did not quiesce after %d frames", delivered)
		}
		moved := false
		for _, frame := range a.Drain() {
			if _, err := b.Deliver(frame); err != nil {
				return delivered, err
			}
			delivered++
			moved = true
		}
		for _, frame := range b.Drain() {
			if _, err := a.Deliver(frame); err != nil {
				return delivered, err
			}
			delivered++
			moved = true
		}
		if !moved {
			return delivered, nil
		}
	}
}

// ConnInfo is one row of the stack's connection table, as a netstat-style
// tool would print it.
type ConnInfo struct {
	Key        core.Key
	State      core.State
	RxSegments uint64
	TxSegments uint64
}

// String renders the row.
func (ci ConnInfo) String() string {
	return fmt.Sprintf("%-42s %-12s rx=%d tx=%d", ci.Key, ci.State, ci.RxSegments, ci.TxSegments)
}

// Netstat returns a snapshot of every PCB in the stack's demultiplexer,
// sorted by local port, then remote address and port, so output is stable
// across demultiplexer implementations.
func (s *Stack) Netstat() []ConnInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ConnInfo
	s.demux.Walk(func(p *core.PCB) bool {
		out = append(out, ConnInfo{
			Key: p.Key, State: p.State,
			RxSegments: p.RxSegments, TxSegments: p.TxSegments,
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.LocalPort != b.LocalPort {
			return a.LocalPort < b.LocalPort
		}
		if a.RemoteAddr != b.RemoteAddr {
			return string(a.RemoteAddr[:]) < string(b.RemoteAddr[:])
		}
		return a.RemotePort < b.RemotePort
	})
	return out
}

// Retransmit re-queues every connection's unacknowledged segment and
// returns how many were queued. It is the manual, sweep-everything face
// of the per-connection retransmission timers that Stack.Tick drives:
// callers without a clock use it when a link may have dropped frames
// (see examples/netpipe); on a lossless in-memory link it is a no-op by
// the time Pump quiesces. A manual sweep does not advance any timer's
// backoff or retry count.
func (s *Stack) Retransmit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	s.demux.Walk(func(p *core.PCB) bool {
		if cd, ok := p.UserData.(*connData); ok && cd.unacked != nil && p.State != core.StateClosed {
			s.requeueUnacked(p, cd)
			n++
		}
		return true
	})
	return n
}
