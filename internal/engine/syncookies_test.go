package engine

import (
	"bytes"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// TestSynCookiesAdmitClientDuringFlood is the acceptance check for the
// stateless handshake path: under a 5000-SYN spoofed flood a legitimate
// client must complete its handshake WHILE the flood is still running —
// the backlog stays full the whole time — and the per-reason counters
// must show where every shed segment went.
func TestSynCookiesAdmitClientDuringFlood(t *testing.T) {
	d := core.NewSequentHash(19, nil)
	server := NewStack(serverAddr, d, 1)
	server.Backlog = 64
	server.SynCookies = true
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}

	const flood = 5000
	spoof := func(i int) {
		src := wire.MakeAddr(198, 51, byte(i>>8), byte(i))
		if _, err := server.Deliver(synFrom(t, src, uint16(1024+i%60000))); err != nil {
			t.Fatal(err)
		}
		server.Drain() // SYN|ACKs to spoofed hosts go nowhere
	}

	// First half of the flood: fills the backlog, then goes stateless.
	for i := 0; i < flood/2; i++ {
		spoof(i)
	}
	if got := d.Len(); got != 1+64 {
		t.Fatalf("table grew to %d PCBs under flood, want %d", got, 1+64)
	}

	// Mid-flood: a real client connects. Its SYN meets a full backlog, so
	// the server must answer with a cookie SYN|ACK and admit the ACK.
	client := NewStack(clientAddr, core.NewMapDemux(), 2)
	conn, err := client.Connect(serverAddr, 1521, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("legitimate client stuck in %v during flood", conn.State())
	}
	// The server side must be a full connection too, created directly in
	// ESTABLISHED with no backlog slot consumed.
	r := d.Lookup(core.Key{
		LocalAddr: serverAddr, RemoteAddr: clientAddr,
		LocalPort: 1521, RemotePort: 40000,
	}, core.DirData)
	if r.PCB == nil || r.PCB.State != core.StateEstablished {
		t.Fatalf("server has no established PCB for the cookie client: %+v", r.PCB)
	}

	// Second half of the flood, then prove the connection actually works
	// while the attack continues.
	for i := flood / 2; i < flood; i++ {
		spoof(i)
	}
	if err := conn.Send([]byte("mid-flood ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if got := conn.LastReceived(); !bytes.Equal(got, []byte("MID-FLOOD PING")) {
		t.Fatalf("echo over cookie connection = %q", got)
	}

	st := server.Stats()
	// 64 SYNs took backlog slots; the rest of the flood plus the client's
	// SYN were answered statelessly.
	if want := uint64(flood - 64 + 1); st.CookiesSent != want {
		t.Fatalf("CookiesSent = %d, want %d", st.CookiesSent, want)
	}
	if st.CookiesAccepted != 1 {
		t.Fatalf("CookiesAccepted = %d, want 1", st.CookiesAccepted)
	}
	// SynDrops keeps counting backlog refusals for comparability with the
	// no-cookie experiments, but nothing was shed unanswered.
	if want := uint64(flood - 64 + 1); st.SynDrops != want {
		t.Fatalf("SynDrops = %d, want %d", st.SynDrops, want)
	}
	if st.DroppedBacklogFull != 0 {
		t.Fatalf("DroppedBacklogFull = %d with cookies enabled", st.DroppedBacklogFull)
	}

	// A forged third-step ACK (guessing the cookie) must be rejected,
	// counted, and answered with RST — never admitted.
	forged, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: wire.MakeAddr(203, 0, 113, 9), Dst: serverAddr},
		wire.TCPHeader{SrcPort: 31337, DstPort: 1521, Seq: 7001, Ack: 0xdeadbeef, Flags: wire.FlagACK, Window: 1024},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(forged); err != nil {
		t.Fatal(err)
	}
	st = server.Stats()
	if st.DroppedBadCookie != 1 {
		t.Fatalf("DroppedBadCookie = %d, want 1", st.DroppedBadCookie)
	}
	if st.CookiesAccepted != 1 {
		t.Fatalf("forged ACK changed CookiesAccepted to %d", st.CookiesAccepted)
	}
	out := server.Drain()
	if len(out) != 1 {
		t.Fatalf("forged ACK produced %d frames, want 1 RST", len(out))
	}
	seg, err := wire.ParseSegment(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if seg.TCP.Flags&wire.FlagRST == 0 {
		t.Fatal("forged ACK not answered with RST")
	}
}

// TestSynCookiesValidACKWithPayload: the validating ACK may carry data
// (the client is allowed to pipeline its first request); the payload must
// be delivered to the handler, not lost.
func TestSynCookiesValidACKWithPayload(t *testing.T) {
	d := core.NewSequentHash(19, nil)
	server := NewStack(serverAddr, d, 1)
	server.Backlog = 1
	server.SynCookies = true
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	// Fill the single backlog slot so the next SYN goes stateless.
	filler, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: wire.MakeAddr(198, 51, 0, 1), Dst: serverAddr},
		wire.TCPHeader{SrcPort: 2048, DstPort: 80, Seq: 1, Flags: wire.FlagSYN, Window: 1024},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(filler); err != nil {
		t.Fatal(err)
	}
	server.Drain()

	// Hand-roll the client side so we can attach data to the third ACK.
	src := wire.MakeAddr(203, 0, 113, 77)
	syn, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: src, Dst: serverAddr},
		wire.TCPHeader{SrcPort: 5555, DstPort: 80, Seq: 100, Flags: wire.FlagSYN, Window: 1024},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(syn); err != nil {
		t.Fatal(err)
	}
	out := server.Drain()
	if len(out) != 1 {
		t.Fatalf("SYN produced %d frames", len(out))
	}
	synack, err := wire.ParseSegment(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if synack.TCP.Flags != wire.FlagSYN|wire.FlagACK {
		t.Fatalf("expected SYN|ACK, got flags %#x", synack.TCP.Flags)
	}
	ack, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: src, Dst: serverAddr},
		wire.TCPHeader{
			SrcPort: 5555, DstPort: 80,
			Seq: 101, Ack: synack.TCP.Seq + 1,
			Flags: wire.FlagACK, Window: 1024,
		},
		[]byte("get index"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(ack); err != nil {
		t.Fatal(err)
	}
	reply := server.Drain()
	if len(reply) != 1 {
		t.Fatalf("piggybacked request produced %d frames", len(reply))
	}
	seg, err := wire.ParseSegment(reply[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seg.Payload, []byte("GET INDEX")) {
		t.Fatalf("handler reply = %q", seg.Payload)
	}
	if st := server.Stats(); st.CookiesAccepted != 1 {
		t.Fatalf("CookiesAccepted = %d", st.CookiesAccepted)
	}
}
