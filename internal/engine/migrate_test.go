package engine

import (
	"bytes"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// establishVia opens a client connection through srv and completes the
// handshake plus one echo transaction, returning the client conn and the
// server-side key.
func establishVia(t *testing.T, client, srv *Stack, port uint16) (*Conn, core.Key) {
	t.Helper()
	conn, err := client.ConnectEphemeral(srv.Addr(), port, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, srv); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("client state %v after pump", conn.State())
	}
	return conn, core.Key{
		LocalAddr: srv.Addr(), LocalPort: port,
		RemoteAddr: client.Addr(), RemotePort: conn.Key().LocalPort,
	}
}

// TestExtractAdoptMovesLiveConnection migrates an established connection
// from one stack to another mid-exchange and checks the conversation
// continues seamlessly on the new home.
func TestExtractAdoptMovesLiveConnection(t *testing.T) {
	addr := wire.MakeAddr(10, 0, 0, 9)
	s1 := NewStack(addr, core.NewMapDemux(), 1)
	s2 := NewStack(addr, core.NewMapDemux(), 2)
	client := NewStack(wire.MakeAddr(10, 0, 0, 10), core.NewMapDemux(), 3)
	echo := func(_ *Conn, p []byte) []byte { return append([]byte("r:"), p...) }
	for _, s := range []*Stack{s1, s2} {
		if err := s.Listen(80, echo); err != nil {
			t.Fatal(err)
		}
	}

	conn, skey := establishVia(t, client, s1, 80)
	if err := conn.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, s1); err != nil {
		t.Fatal(err)
	}
	if got := conn.Receive(); !bytes.Equal(got, []byte("r:one")) {
		t.Fatalf("pre-migration response %q", got)
	}

	// Control-plane sanity: a listener and an unknown key don't extract.
	if _, ok := s1.Extract(core.ListenKey(addr, 80)); ok {
		t.Fatal("extracted a listener")
	}
	if _, ok := s1.Extract(core.Key{LocalAddr: addr, LocalPort: 81}); ok {
		t.Fatal("extracted an unknown key")
	}

	before := s1.Demuxer().Len()
	pcb, ok := s1.Extract(skey)
	if !ok {
		t.Fatal("Extract failed for the live connection")
	}
	if got := s1.Demuxer().Len(); got != before-1 {
		t.Fatalf("old stack demux len %d after extract, want %d", got, before-1)
	}
	if pcb.State != core.StateEstablished {
		t.Fatalf("extracted PCB state %v", pcb.State)
	}
	if err := s2.Adopt(pcb); err != nil {
		t.Fatal(err)
	}
	// A second adoption of the same key must refuse, not corrupt.
	if err := s2.Adopt(pcb); err == nil {
		t.Fatal("duplicate Adopt succeeded")
	}

	// The conversation continues against the new stack only.
	if err := conn.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, s2); err != nil {
		t.Fatal(err)
	}
	if got := conn.Receive(); !bytes.Equal(got, []byte("r:two")) {
		t.Fatalf("post-migration response %q", got)
	}
	// The old stack no longer knows the connection; a stray frame for it
	// there now draws a reset, which is exactly why the shard engine's
	// directory generation-checks handoffs.
	if s1.Demuxer().Len() != 1 {
		t.Fatalf("old stack demux len %d, want 1 (listener only)", s1.Demuxer().Len())
	}
}

// TestAdoptRearmsRetransmission checks that a migrated connection's
// unacknowledged segment is retransmitted by the new stack's timer
// wheel: the frame was lost while homed on the old stack, and the new
// home's clock must recover it.
func TestAdoptRearmsRetransmission(t *testing.T) {
	addr := wire.MakeAddr(10, 0, 0, 11)
	s1 := NewStack(addr, core.NewMapDemux(), 4)
	s2 := NewStack(addr, core.NewMapDemux(), 5)
	client := NewStack(wire.MakeAddr(10, 0, 0, 12), core.NewMapDemux(), 6)
	var srvConn *Conn
	s1.OnAccept = func(c *Conn) { srvConn = c }
	for _, s := range []*Stack{s1, s2} {
		if err := s.Listen(80, nil); err != nil {
			t.Fatal(err)
		}
	}

	conn, skey := establishVia(t, client, s1, 80)
	if srvConn == nil {
		t.Fatal("accept hook never fired")
	}

	// The server pushes data whose frame the wire then loses.
	if err := srvConn.Send([]byte("push")); err != nil {
		t.Fatal(err)
	}
	if frames := s1.Drain(); len(frames) != 1 {
		t.Fatalf("expected the push frame queued, got %d frames", len(frames))
	}

	pcb, ok := s1.Extract(skey)
	if !ok {
		t.Fatal("Extract failed")
	}
	if err := s2.Adopt(pcb); err != nil {
		t.Fatal(err)
	}

	// Only the new stack's clock runs; its wheel must own the timer now.
	s1.Tick(10)
	if s1.Retransmits != 0 {
		t.Fatal("old stack retransmitted a migrated connection's segment")
	}
	s2.Tick(DefaultRTO + 0.1)
	if s2.Retransmits != 1 {
		t.Fatalf("new stack Retransmits = %d, want 1", s2.Retransmits)
	}
	for _, f := range s2.Drain() {
		if _, err := client.Deliver(f); err != nil {
			t.Fatal(err)
		}
	}
	if got := conn.Receive(); !bytes.Equal(got, []byte("push")) {
		t.Fatalf("recovered payload %q, want \"push\"", got)
	}
}
