package engine

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// synFrom crafts a raw SYN from the given spoofed source.
func synFrom(t *testing.T, src wire.Addr, sport uint16) []byte {
	t.Helper()
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: src, Dst: serverAddr},
		wire.TCPHeader{SrcPort: sport, DstPort: 1521, Seq: 1, Flags: wire.FlagSYN, Window: 1024},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestSynFloodBoundedByBacklog fires thousands of spoofed SYNs (whose
// handshakes never complete) at a listener: the PCB table must stop
// growing at the backlog, the excess must be counted as drops, and a
// legitimate client must still connect once there is room.
func TestSynFloodBoundedByBacklog(t *testing.T) {
	d := core.NewSequentHash(19, nil)
	server := NewStack(serverAddr, d, 1)
	server.Backlog = 64
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}
	const flood = 5000
	for i := 0; i < flood; i++ {
		src := wire.MakeAddr(198, 51, byte(i>>8), byte(i))
		if _, err := server.Deliver(synFrom(t, src, uint16(1024+i%60000))); err != nil {
			t.Fatal(err)
		}
		server.Drain() // discard SYN|ACKs to nowhere
	}
	// Table: 1 listener + at most Backlog half-open PCBs.
	if got := d.Len(); got != 1+64 {
		t.Fatalf("table grew to %d PCBs under flood, want %d", got, 1+64)
	}
	if server.SynDrops != flood-64 {
		t.Fatalf("SynDrops = %d, want %d", server.SynDrops, flood-64)
	}

	// A real client cannot get in while the backlog is full...
	client := NewStack(clientAddr, core.NewMapDemux(), 2)
	conn, err := client.Connect(serverAddr, 1521, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() == core.StateEstablished {
		t.Fatal("connected through a full backlog")
	}
	// ...but succeeds after the half-open crowd is torn down (simulate the
	// SYN_RCVD timer by resetting them).
	reaped := 0
	var stale []core.Key
	d.Walk(func(p *core.PCB) bool {
		if p.State == core.StateSynRcvd {
			stale = append(stale, p.Key)
		}
		return true
	})
	for _, k := range stale {
		r := d.Lookup(k, core.DirData)
		if r.PCB == nil {
			continue
		}
		server.mu.Lock()
		server.releaseHalfOpen(r.PCB)
		server.teardown(r.PCB)
		server.mu.Unlock()
		reaped++
	}
	if reaped != 64 {
		t.Fatalf("reaped %d half-open PCBs", reaped)
	}
	// The client's SYN is still in its retransmission buffer.
	if n := client.Retransmit(); n != 1 {
		t.Fatalf("client retransmit queued %d", n)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("legitimate client still blocked: %v", conn.State())
	}
}

// TestBacklogReleasedOnCompletion: normal handshakes must not consume
// backlog permanently.
func TestBacklogReleasedOnCompletion(t *testing.T) {
	server, client := pair(t, core.NewMapDemux())
	server.Backlog = 4
	if err := server.Listen(80, echoUpper); err != nil {
		t.Fatal(err)
	}
	// 20 sequential connects through a backlog of 4: each completes before
	// the next begins, so none should drop.
	for i := 0; i < 20; i++ {
		c, err := client.ConnectEphemeral(serverAddr, 80, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Pump(client, server); err != nil {
			t.Fatal(err)
		}
		if c.State() != core.StateEstablished {
			t.Fatalf("conn %d state %v", i, c.State())
		}
	}
	if server.SynDrops != 0 {
		t.Fatalf("dropped %d SYNs without a flood", server.SynDrops)
	}
}
