package engine

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// TestDeliverMutatedFramesNeverPanics connects a client, then fires
// thousands of bit-flipped copies of legitimate frames at the server.
// Every delivery must return normally (error or clean drop), the stack
// must stay consistent, and the surviving connection must keep working.
func TestDeliverMutatedFramesNeverPanics(t *testing.T) {
	d := core.NewSequentHash(19, nil)
	server := NewStack(serverAddr, d, 1)
	client := NewStack(clientAddr, core.NewMapDemux(), 2)
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Connect(serverAddr, 1521, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}

	// Template frames: a data segment and a SYN. The data frame is copied
	// and then actually delivered so the live connection's sequence space
	// stays in sync; mutants are therefore stale duplicates.
	if err := conn.Send([]byte("template")); err != nil {
		t.Fatal(err)
	}
	var templates [][]byte
	for _, f := range client.Drain() {
		templates = append(templates, append([]byte(nil), f...))
		if _, err := server.Deliver(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	syn, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
		wire.TCPHeader{SrcPort: 41000, DstPort: 1521, Seq: 1, Flags: wire.FlagSYN},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	templates = append(templates, syn)

	// Single-bit flips: a lone flip can never cancel in the RFC 1071
	// one's-complement sum, so every mutant must be rejected and the
	// connection must survive. (Multi-bit mutants can reconstruct valid
	// frames — indistinguishable from forgery — and are exercised by
	// TestDeliverRandomGarbage for the no-panic property only.)
	src := rng.New(5)
	for i := 0; i < 20000; i++ {
		tmpl := templates[src.Intn(len(templates))]
		mut := append([]byte(nil), tmpl...)
		mut[src.Intn(len(mut))] ^= byte(1 << src.Intn(8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Deliver panicked on mutation %d: %v", i, r)
				}
			}()
			_, _ = server.Deliver(mut)
		}()
		server.Drain() // discard any RSTs
	}

	// The original connection must still work end to end.
	if err := conn.Send([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if got := string(conn.LastReceived()); got != "STILL ALIVE" {
		t.Fatalf("connection broken after mutation storm: %q", got)
	}
}

// TestDeliverRandomGarbage fires pure random bytes (valid-looking lengths)
// at the server.
func TestDeliverRandomGarbage(t *testing.T) {
	server := NewStack(serverAddr, core.NewBSDList(), 1)
	if err := server.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	for i := 0; i < 5000; i++ {
		n := src.Intn(120)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(src.Uint64())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage %d: %v", i, r)
				}
			}()
			_, _ = server.Deliver(buf)
		}()
	}
	if server.Demuxer().Len() != 1 {
		t.Fatalf("garbage changed the PCB table: %d", server.Demuxer().Len())
	}
}

// TestRSTStorm verifies that unmatched segments draw RSTs and that RSTs
// themselves do not draw counter-RSTs (no packet storms).
func TestRSTStorm(t *testing.T) {
	server := NewStack(serverAddr, core.NewMapDemux(), 1)
	stray, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
		wire.TCPHeader{SrcPort: 5555, DstPort: 6666, Seq: 9, Flags: wire.FlagACK},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(stray); err != nil {
		t.Fatal(err)
	}
	replies := server.Drain()
	if len(replies) != 1 {
		t.Fatalf("expected 1 RST, got %d frames", len(replies))
	}
	seg, err := wire.ParseSegment(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if seg.TCP.Flags&wire.FlagRST == 0 {
		t.Fatalf("reply is not RST: %s", wire.FlagNames(seg.TCP.Flags))
	}
	// Bounce the RST back (as if reflected): must not produce another.
	reflected, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
		wire.TCPHeader{SrcPort: 5555, DstPort: 6666, Seq: 10, Flags: wire.FlagRST},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(reflected); err != nil {
		t.Fatal(err)
	}
	if extra := server.Drain(); len(extra) != 0 {
		t.Fatalf("RST drew %d reply frames", len(extra))
	}
}
