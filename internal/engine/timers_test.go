package engine

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// TestRetransmitTimerBackoffAndAbort: a SYN into the void must be
// re-queued by the retransmission timer at exponentially backed-off
// intervals and the connection aborted at the retry limit — all driven by
// Tick alone.
func TestRetransmitTimerBackoffAndAbort(t *testing.T) {
	d := core.NewMapDemux()
	client := NewStack(clientAddr, d, 7)
	client.RTO = 0.1
	client.MaxRetries = 3
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(client.Drain()); n != 1 {
		t.Fatalf("initial SYN: %d frames", n)
	}

	// Backoff doubles each round: fires at 0.1, 0.3, 0.7 re-queue the SYN;
	// the fourth firing (1.5) hits the retry limit and aborts.
	for i, at := range []float64{0.15, 0.35, 0.75} {
		client.Tick(at)
		if n := len(client.Drain()); n != 1 {
			t.Fatalf("tick %d (t=%v): %d frames queued, want 1", i, at, n)
		}
		if conn.State() != core.StateSynSent {
			t.Fatalf("tick %d: state %v", i, conn.State())
		}
	}
	if client.Retransmits != 3 {
		t.Fatalf("Retransmits = %d, want 3", client.Retransmits)
	}

	client.Tick(1.0) // between retransmission 3 (0.7) and the abort (1.5)
	if n := len(client.Drain()); n != 0 {
		t.Fatalf("spurious frames between backoff deadlines: %d", n)
	}
	client.Tick(1.6)
	if conn.State() != core.StateClosed {
		t.Fatalf("state after retry limit = %v, want Closed", conn.State())
	}
	if client.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", client.Aborts)
	}
	if d.Len() != 0 {
		t.Fatalf("aborted PCB still in demuxer (len %d)", d.Len())
	}
	if client.PendingTimers() != 0 {
		t.Fatalf("timers leaked after abort: %d", client.PendingTimers())
	}
}

// TestAckQuenchesRetransmitTimer: once the peer acknowledges, ticking far
// past every backoff deadline must produce no retransmissions.
func TestAckQuenchesRetransmitTimer(t *testing.T) {
	server, client, _, clientConn := connect(t)
	if err := clientConn.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	client.Tick(1000)
	server.Tick(1000)
	if n := len(client.Drain()) + len(server.Drain()); n != 0 {
		t.Fatalf("%d frames retransmitted after everything was acked", n)
	}
	if client.Retransmits != 0 || server.Retransmits != 0 {
		t.Fatalf("retransmit counters moved: client=%d server=%d",
			client.Retransmits, server.Retransmits)
	}
}

// TestSynRcvdExpiryRecoversBacklog is the backlog-leak regression test:
// a flood of half-open connections must be reaped by the SYN_RCVD timer,
// releasing every backlog slot so a legitimate client can connect — with
// no manual teardown calls.
func TestSynRcvdExpiryRecoversBacklog(t *testing.T) {
	d := core.NewSequentHash(19, nil)
	server := NewStack(serverAddr, d, 1)
	server.Backlog = 4
	server.SynRcvdTimeout = 5
	server.RTO = 1000 // keep SYN|ACK retransmissions out of the picture
	if err := server.Listen(1521, echoUpper); err != nil {
		t.Fatal(err)
	}
	const flood = 10
	for i := 0; i < flood; i++ {
		src := wire.MakeAddr(198, 51, 100, byte(i+1))
		if _, err := server.Deliver(synFrom(t, src, uint16(2048+i))); err != nil {
			t.Fatal(err)
		}
		server.Drain() // discard SYN|ACKs to nowhere
	}
	if got := d.Len(); got != 1+4 {
		t.Fatalf("table = %d PCBs, want listener + backlog 4", got)
	}
	if server.SynDrops != flood-4 {
		t.Fatalf("SynDrops = %d, want %d", server.SynDrops, flood-4)
	}

	// A legitimate client is shut out while the flood squats the backlog.
	client := NewStack(clientAddr, core.NewMapDemux(), 2)
	conn, err := client.Connect(serverAddr, 1521, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() == core.StateEstablished {
		t.Fatal("connected through a full backlog")
	}

	// The SYN_RCVD give-up timer reaps the abandoned half-opens.
	server.Tick(6)
	if server.SynExpired != 4 {
		t.Fatalf("SynExpired = %d, want 4", server.SynExpired)
	}
	if got := d.Len(); got != 1 {
		t.Fatalf("table = %d PCBs after expiry, want just the listener", got)
	}

	// Every slot was released: the client's retransmitted SYN now lands.
	if n := client.Retransmit(); n != 1 {
		t.Fatalf("client retransmit queued %d", n)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("client blocked after backlog recovery: %v", conn.State())
	}
}

// TestTimeWaitAutoExpiry: the 2MSL clock alone must collect a TIME_WAIT
// PCB, with ReapTimeWait never called.
func TestTimeWaitAutoExpiry(t *testing.T) {
	server, client, _, clientConn := connect(t)
	client.MSL = 1
	if err := clientConn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client, server); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() != core.StateTimeWait {
		t.Fatalf("state after close = %v", clientConn.State())
	}
	if client.TimeWaitCount() != 1 {
		t.Fatalf("TimeWaitCount = %d", client.TimeWaitCount())
	}

	client.Tick(1.9) // inside the 2MSL window
	if clientConn.State() != core.StateTimeWait {
		t.Fatalf("left TIME_WAIT early: %v", clientConn.State())
	}
	client.Tick(2.1)
	if clientConn.State() != core.StateClosed {
		t.Fatalf("state after 2MSL = %v, want Closed", clientConn.State())
	}
	if client.TimeWaitExpired != 1 {
		t.Fatalf("TimeWaitExpired = %d", client.TimeWaitExpired)
	}
	if client.TimeWaitCount() != 0 {
		t.Fatalf("TimeWaitCount = %d after expiry", client.TimeWaitCount())
	}
	if client.PendingTimers() != 0 {
		t.Fatalf("timers leaked: %d", client.PendingTimers())
	}
}

// TestCloseSynSentTearsDown: closing a connection whose SYN was never
// answered must tear it down directly — no FIN, no FIN_WAIT_1.
func TestCloseSynSentTearsDown(t *testing.T) {
	d := core.NewMapDemux()
	client := NewStack(clientAddr, d, 3)
	conn, err := client.Connect(serverAddr, 80, 40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Drain() // the unanswered SYN
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateClosed {
		t.Fatalf("state = %v, want Closed", conn.State())
	}
	if d.Len() != 0 {
		t.Fatalf("PCB left in demuxer")
	}
	if n := len(client.Drain()); n != 0 {
		t.Fatalf("close of SYN_SENT queued %d frames, want none", n)
	}
	if client.PendingTimers() != 0 {
		t.Fatalf("timers leaked: %d", client.PendingTimers())
	}
}

// TestCloseSynRcvdReleasesBacklog: closing a half-open server connection
// must free its backlog slot, not walk the FIN states.
func TestCloseSynRcvdReleasesBacklog(t *testing.T) {
	d := core.NewMapDemux()
	server := NewStack(serverAddr, d, 1)
	server.Backlog = 1
	if err := server.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src := wire.MakeAddr(203, 0, 113, byte(i+1))
		if _, err := server.Deliver(synFrom2(t, src, 5000, 80)); err != nil {
			t.Fatal(err)
		}
		server.Drain()
		var half *core.PCB
		d.Walk(func(p *core.PCB) bool {
			if p.State == core.StateSynRcvd {
				half = p
			}
			return true
		})
		if half == nil {
			t.Fatalf("round %d: SYN through a free backlog spawned nothing (leaked slot)", i)
		}
		cd := half.UserData.(*connData)
		if err := cd.conn.Close(); err != nil {
			t.Fatalf("round %d: close: %v", i, err)
		}
		if half.State != core.StateClosed {
			t.Fatalf("round %d: state = %v, want Closed", i, half.State)
		}
		if n := len(server.Drain()); n != 0 {
			t.Fatalf("round %d: close of SYN_RCVD queued %d frames", i, n)
		}
	}
}

// synFrom2 is synFrom with an explicit destination port.
func synFrom2(t *testing.T, src wire.Addr, sport, dport uint16) []byte {
	t.Helper()
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: src, Dst: serverAddr},
		wire.TCPHeader{SrcPort: sport, DstPort: dport, Seq: 9, Flags: wire.FlagSYN, Window: 1024},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestSendRSTAckRules checks both reset-generation arms of RFC 793: an
// offending segment with ACK yields Seq=SEG.ACK and no ACK flag; one
// without ACK yields Seq=0, ACK set, Ack=SEG.SEQ+SEG.LEN (with SYN and
// FIN each counting one).
func TestSendRSTAckRules(t *testing.T) {
	server := NewStack(serverAddr, core.NewMapDemux(), 1)

	// ACK-bearing stray segment (no listener, no connection).
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
		wire.TCPHeader{SrcPort: 4000, DstPort: 81, Seq: 500, Ack: 7777,
			Flags: wire.FlagACK, Window: 1024},
		[]byte("xyz"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Deliver(frame); err != nil {
		t.Fatal(err)
	}
	out := server.Drain()
	if len(out) != 1 {
		t.Fatalf("ACK stray drew %d replies", len(out))
	}
	rst, err := wire.ParseSegment(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if rst.TCP.Flags != wire.FlagRST {
		t.Fatalf("flags = %s, want bare RST", wire.FlagNames(rst.TCP.Flags))
	}
	if rst.TCP.Seq != 7777 {
		t.Fatalf("RST seq = %d, want the stray's Ack 7777", rst.TCP.Seq)
	}

	// ACK-less segments: SEG.LEN counts payload plus SYN and FIN.
	cases := []struct {
		flags   uint8
		payload []byte
		wantAck uint32
	}{
		{wire.FlagSYN, nil, 501},                           // bare SYN: +1
		{wire.FlagSYN | wire.FlagFIN, []byte("abcd"), 506}, // 4 data +2
	}
	for _, tc := range cases {
		frame, err := wire.BuildSegment(
			wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
			wire.TCPHeader{SrcPort: 4001, DstPort: 81, Seq: 500,
				Flags: tc.flags, Window: 1024},
			tc.payload,
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := server.Deliver(frame); err != nil {
			t.Fatal(err)
		}
		out := server.Drain()
		if len(out) != 1 {
			t.Fatalf("flags %s: %d replies", wire.FlagNames(tc.flags), len(out))
		}
		rst, err := wire.ParseSegment(out[0])
		if err != nil {
			t.Fatal(err)
		}
		if rst.TCP.Flags != wire.FlagRST|wire.FlagACK {
			t.Fatalf("flags %s: reply flags = %s, want RST|ACK",
				wire.FlagNames(tc.flags), wire.FlagNames(rst.TCP.Flags))
		}
		if rst.TCP.Seq != 0 {
			t.Fatalf("flags %s: RST seq = %d, want 0", wire.FlagNames(tc.flags), rst.TCP.Seq)
		}
		if rst.TCP.Ack != tc.wantAck {
			t.Fatalf("flags %s: RST ack = %d, want %d",
				wire.FlagNames(tc.flags), rst.TCP.Ack, tc.wantAck)
		}
	}
}

// TestRSTTeardownScrubsTimeWaitOnly: an in-window RST tears down a
// FIN_WAIT_1 PCB without touching the time-wait list, and evicts a
// TIME_WAIT PCB from it.
func TestRSTTeardownScrubsTimeWaitOnly(t *testing.T) {
	rstFor := func(t *testing.T, c *Conn) []byte {
		t.Helper()
		k := c.Key()
		frame, err := wire.BuildSegment(
			wire.IPv4Header{TTL: 64, Src: k.RemoteAddr, Dst: k.LocalAddr},
			wire.TCPHeader{SrcPort: k.RemotePort, DstPort: k.LocalPort,
				Seq: c.pcb.RcvNxt, Flags: wire.FlagRST, Window: 0},
			nil,
		)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	// RST in FIN_WAIT_1 (FIN sent, nothing pumped).
	_, client, _, clientConn := connect(t)
	if err := clientConn.Close(); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() != core.StateFinWait1 {
		t.Fatalf("state = %v", clientConn.State())
	}
	if _, err := client.Deliver(rstFor(t, clientConn)); err != nil {
		t.Fatal(err)
	}
	if clientConn.State() != core.StateClosed {
		t.Fatalf("state after RST = %v", clientConn.State())
	}
	if client.TimeWaitCount() != 0 {
		t.Fatalf("TimeWaitCount = %d for a never-TIME_WAIT conn", client.TimeWaitCount())
	}

	// RST in TIME_WAIT must also scrub the time-wait list.
	server2, client2, _, clientConn2 := connect(t)
	if err := clientConn2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(client2, server2); err != nil {
		t.Fatal(err)
	}
	if clientConn2.State() != core.StateTimeWait || client2.TimeWaitCount() != 1 {
		t.Fatalf("setup: state %v, timeWait %d", clientConn2.State(), client2.TimeWaitCount())
	}
	if _, err := client2.Deliver(rstFor(t, clientConn2)); err != nil {
		t.Fatal(err)
	}
	if clientConn2.State() != core.StateClosed {
		t.Fatalf("state after RST = %v", clientConn2.State())
	}
	if client2.TimeWaitCount() != 0 {
		t.Fatalf("RST-torn PCB still on the time-wait list")
	}
}

// TestTickBackwardsIsNoOp: the virtual clock never runs backwards.
func TestTickBackwardsIsNoOp(t *testing.T) {
	s := NewStack(clientAddr, core.NewMapDemux(), 1)
	s.Tick(10)
	s.Tick(5)
	if got := s.Now(); got != 10 {
		t.Fatalf("Now = %v after backwards tick, want 10", got)
	}
}
