// SYN cookies and per-reason drop accounting.
//
// The engine's listener backlog (DefaultBacklog) bounds half-open PCBs so
// a SYN flood cannot bloat the demultiplexer — but bounding alone means a
// flooded listener refuses every newcomer, legitimate or not, until the
// flood ebbs. SYN cookies (Bernstein's 1996 defense) close that gap: when
// the backlog is full the listener answers the SYN *statelessly*, encoding
// the would-be connection's identity in its own initial sequence number
//
//	ISS = SipHash(secret, tuple, client-ISN)   (truncated to 32 bits)
//
// and allocating nothing. A real client answers with the third-step ACK
// carrying exactly ISS+1; the listener recomputes the keyed hash from the
// ACK itself, and only that validation — not any stored state — admits the
// connection, which is created directly in ESTABLISHED. A spoofed SYN
// yields only a SYN|ACK to a host that never asked for it; the flood costs
// the listener no memory at all.
//
// The same file centralizes the per-reason drop counters, so flood
// handling is observable: a stack under attack shows exactly where
// segments died instead of silently shedding them.
package engine

import (
	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// StackStats is a snapshot of the stack's segment-disposition counters.
// Dropped* name the reason a delivered frame produced no connection
// progress; Cookies* trace the stateless handshake path.
type StackStats struct {
	// DroppedBadChecksum counts frames rejected by IPv4 or TCP checksum
	// verification.
	DroppedBadChecksum uint64
	// DroppedBadFrame counts frames rejected by the parser for any other
	// reason (truncation, bad version, bad header lengths...).
	DroppedBadFrame uint64
	// DroppedNoRoute counts well-formed frames addressed to another host.
	DroppedNoRoute uint64
	// DroppedNoListener counts segments that matched no PCB at all and
	// were answered with RST.
	DroppedNoListener uint64
	// DroppedRST counts inbound RSTs that matched no PCB; RFC 793 forbids
	// resetting a reset, so they die silently.
	DroppedRST uint64
	// DroppedBacklogFull counts SYNs shed because the listener's half-open
	// backlog was full and SYN cookies were disabled.
	DroppedBacklogFull uint64
	// DroppedBadCookie counts listener ACKs that failed cookie validation
	// (with cookies enabled) and were answered with RST.
	DroppedBadCookie uint64
	// CookiesSent counts stateless SYN|ACKs issued while the backlog was
	// full.
	CookiesSent uint64
	// CookiesAccepted counts connections established by a valid cookie
	// ACK.
	CookiesAccepted uint64
	// SynDrops mirrors Stack.SynDrops: every SYN refused statefully
	// because of backlog pressure (the pre-cookie counter, kept for
	// comparability across experiments).
	SynDrops uint64
}

// Stats returns a snapshot of the drop and cookie counters. It is a
// thin view over the stack's telemetry counters (see Stack.SetTelemetry)
// kept for existing callers and reports.
func (s *Stack) Stats() StackStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tel
	return StackStats{
		DroppedBadChecksum: t.DroppedBadChecksum.Value(),
		DroppedBadFrame:    t.DroppedBadFrame.Value(),
		DroppedNoRoute:     t.DroppedNoRoute.Value(),
		DroppedNoListener:  t.DroppedNoListener.Value(),
		DroppedRST:         t.DroppedRST.Value(),
		DroppedBacklogFull: t.DroppedBacklogFull.Value(),
		DroppedBadCookie:   t.DroppedBadCookie.Value(),
		CookiesSent:        t.CookiesSent.Value(),
		CookiesAccepted:    t.CookiesAccepted.Value(),
		SynDrops:           s.SynDrops,
	}
}

// cookieSecretSalt separates the cookie key's derivation from every other
// consumer of the stack's seed, so enabling cookies does not perturb the
// deterministic ISS sequence existing tests pin down.
const cookieSecretSalt = 0x5c00c1e5ec2e7000

// cookieKey lazily derives the stack's cookie secret. The caller holds
// s.mu.
func (s *Stack) cookieKey() hashfn.Keyed {
	if !s.cookieInit {
		s.cookie = hashfn.KeyedFromRNG(rng.New(s.seed ^ cookieSecretSalt))
		s.cookieInit = true
	}
	return s.cookie
}

// cookieISS computes the stateless initial sequence number for a SYN with
// client ISN isn on the given inbound tuple.
func (s *Stack) cookieISS(t wire.Tuple, isn uint32) uint32 {
	return uint32(s.cookieKey().Sum64Salted(t, uint64(isn)))
}

// sendCookieSynAck answers a SYN statelessly: the SYN|ACK's sequence
// number is the cookie, and nothing is allocated or inserted. The caller
// holds s.mu.
func (s *Stack) sendCookieSynAck(seg *wire.Segment) {
	iss := s.cookieISS(seg.Tuple(), seg.TCP.Seq)
	ip := wire.IPv4Header{TTL: 64, Src: seg.IP.Dst, Dst: seg.IP.Src}
	tcp := wire.TCPHeader{
		SrcPort: seg.TCP.DstPort, DstPort: seg.TCP.SrcPort,
		Seq: iss, Ack: seg.TCP.Seq + 1,
		Flags: wire.FlagSYN | wire.FlagACK, Window: 65535,
	}
	frame, err := wire.BuildSegment(ip, tcp, nil)
	if err != nil {
		return
	}
	s.tel.CookiesSent.Inc()
	s.emit(frame)
}

// acceptCookieACK validates a pure ACK arriving at a listener against the
// cookie it must echo, and on success creates the connection directly in
// ESTABLISHED — reconstructing from the segment alone the state a normal
// handshake would have accumulated in SYN_RCVD. The caller holds s.mu.
func (s *Stack) acceptCookieACK(seg *wire.Segment, key core.Key) {
	// The client ISN is one below the ACK's sequence number (its SYN
	// consumed one octet), and a valid ACK acknowledges cookie+1.
	isn := seg.TCP.Seq - 1
	if s.cookieISS(seg.Tuple(), isn)+1 != seg.TCP.Ack {
		s.tel.DroppedBadCookie.Inc()
		s.sendRST(seg)
		return
	}
	pcb := core.NewPCB(key)
	pcb.State = core.StateEstablished
	pcb.RcvNxt = seg.TCP.Seq
	pcb.SndNxt = seg.TCP.Ack
	conn := &Conn{stack: s, pcb: pcb}
	pcb.UserData = &connData{conn: conn, handler: s.handlers[key.LocalPort]}
	if err := s.demux.Insert(pcb); err != nil {
		// A connection PCB with this key appeared between the lookup and
		// now (duplicate ACK racing itself); drop.
		return
	}
	s.tel.CookiesAccepted.Inc()
	pcb.RxSegments++
	pcb.RxBytes += uint64(len(seg.Payload))
	if s.OnAccept != nil {
		s.OnAccept(conn)
	}
	// The validating ACK may already carry the first transaction.
	if len(seg.Payload) > 0 {
		s.handleEstablished(pcb, seg)
	}
}
