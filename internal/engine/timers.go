// Connection-lifecycle timers. Each Stack owns a virtual-time timer
// wheel (internal/timer) keyed on the same float64 clock the frag and
// sim packages use, and Stack.Tick(now) advances it. Three timer
// families hang off the wheel:
//
//   - Retransmission: every sequence-consuming send arms a per-connection
//     timer; on expiry the retained frame is re-queued and the timeout
//     doubles (exponential backoff, capped), until an acknowledgement
//     quenches it or the max-retry limit aborts the connection.
//   - SYN_RCVD give-up: a passive open that never completes its handshake
//     is reaped after SynRcvdTimeout, releasing its listener backlog slot
//     — the flood defence that keeps abandoned half-open PCBs from
//     squatting in the lookup structures forever.
//   - TIME_WAIT 2MSL: the active closer's linger expires on its own,
//     removing the PCB from the demultiplexer without a manual
//     ReapTimeWait sweep.
//
// Timer callbacks run inside Tick with the stack lock held, so they may
// use every internal helper but must never call public Stack/Conn
// methods that re-lock.
package engine

import (
	"tcpdemux/internal/core"
)

// Lifecycle timer defaults, overridable per Stack via the corresponding
// exported fields. Values are virtual seconds.
const (
	// timerTick is the wheel granularity: 1 ms, fine enough to resolve
	// the engine's smallest RTO against the coarse 2MSL clock.
	timerTick = 1e-3
	// DefaultRTO is the initial retransmission timeout.
	DefaultRTO = 1.0
	// DefaultMaxRetries bounds consecutive unacknowledged retransmissions
	// of one segment before the connection is aborted.
	DefaultMaxRetries = 8
	// DefaultMSL is the maximum segment lifetime; TIME_WAIT lingers 2×MSL
	// (RFC 793 suggests 2 minutes per MSL; simulations want it shorter).
	DefaultMSL = 30.0
	// DefaultSynRcvdTimeout is how long a half-open (SYN_RCVD) PCB may
	// wait for the handshake-completing ACK — BSD's classic 75 s
	// connection-establishment timer.
	DefaultSynRcvdTimeout = 75.0
	// rtoBackoffCap bounds the exponential backoff shift, so the longest
	// interval is RTO × 2^rtoBackoffCap.
	rtoBackoffCap = 6
)

func (s *Stack) rto() float64 {
	if s.RTO > 0 {
		return s.RTO
	}
	return DefaultRTO
}

func (s *Stack) maxRetries() int {
	if s.MaxRetries > 0 {
		return s.MaxRetries
	}
	return DefaultMaxRetries
}

func (s *Stack) msl() float64 {
	if s.MSL > 0 {
		return s.MSL
	}
	return DefaultMSL
}

func (s *Stack) synRcvdTimeout() float64 {
	if s.SynRcvdTimeout > 0 {
		return s.SynRcvdTimeout
	}
	return DefaultSynRcvdTimeout
}

// Tick advances the stack's virtual clock to now, firing every lifecycle
// timer whose deadline has passed: due retransmissions are re-queued on
// the outbox (collect them with Drain), expired half-open PCBs release
// their backlog slots, and TIME_WAIT PCBs past 2MSL leave the
// demultiplexer. Ticking backwards is a no-op. Safe for concurrent use.
func (s *Stack) Tick(now float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now <= s.now {
		return
	}
	// Advance before publishing s.now: while callbacks run, clock() must
	// read the wheel's in-progress tick (the fire time), not the target,
	// or every timer rearmed from a callback would drift late.
	s.wheel.Advance(now)
	s.now = now
}

// clock returns the stack's current virtual time as timer callbacks and
// packet handlers should see it: the wheel's position while an Advance is
// in progress, the last Tick otherwise. The caller holds s.mu.
func (s *Stack) clock() float64 {
	if w := s.wheel.Now(); w > s.now {
		return w
	}
	return s.now
}

// Heartbeat arms a self-rearming timer on the stack's lifecycle wheel:
// fn fires every interval virtual seconds for as long as the stack's
// clock keeps advancing. Because the beat lives on the stack's own
// wheel, it stops exactly when the stack stops Ticking — which is what
// lets a supervisor (the internal/shard watchdog) distinguish a crashed
// shard, whose clock froze, from an idle one, whose clock still beats.
// Like every lifecycle timer, fn runs inside Tick with the stack lock
// held: it may not call public Stack/Conn methods that re-lock.
func (s *Stack) Heartbeat(interval float64, fn func(now float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var arm func()
	arm = func() {
		s.wheel.Schedule(s.clock()+interval, func(now float64) {
			fn(now)
			arm()
		})
	}
	arm()
}

// Now returns the stack's current virtual time (the last Tick).
func (s *Stack) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// PendingTimers returns the number of live lifecycle timers, for tests
// and instrumentation.
func (s *Stack) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wheel.Pending()
}

// requeueUnacked puts the connection's retained frame back on the outbox.
// The caller holds s.mu.
func (s *Stack) requeueUnacked(pcb *core.PCB, cd *connData) {
	s.emit(cd.unacked)
	pcb.TxSegments++
	s.demux.NotifySend(pcb)
}

// armRetransmit (re)schedules the retransmission timer for the
// connection's retained segment at the current backoff interval. The
// caller holds s.mu.
func (s *Stack) armRetransmit(pcb *core.PCB, cd *connData) {
	cd.rtx.Cancel()
	shift := cd.retries
	if shift > rtoBackoffCap {
		shift = rtoBackoffCap
	}
	delay := s.rto() * float64(uint64(1)<<shift)
	cd.rtx = s.wheel.Schedule(s.clock()+delay, func(float64) {
		cd.rtx = nil
		s.retransmitExpired(pcb, cd)
	})
}

// retransmitExpired is the retransmission timer body: re-queue and back
// off, or abort at the retry limit. Runs under s.mu (from Tick).
func (s *Stack) retransmitExpired(pcb *core.PCB, cd *connData) {
	if cd.unacked == nil || pcb.State == core.StateClosed {
		return
	}
	if cd.retries >= s.maxRetries() {
		s.Aborts++
		s.tel.Aborts.Inc()
		s.tel.TimerFires.Inc()
		s.abortPCB(pcb)
		return
	}
	cd.retries++
	s.Retransmits++
	s.tel.Retransmits.Inc()
	s.tel.TimerFires.Inc()
	s.requeueUnacked(pcb, cd)
	s.armRetransmit(pcb, cd)
}

// abortPCB drops a connection the way a timeout does: whatever state it
// is in, its accounting (listener backlog, TIME_WAIT list) is unwound
// before teardown. The caller holds s.mu.
func (s *Stack) abortPCB(pcb *core.PCB) {
	switch pcb.State {
	case core.StateSynRcvd:
		s.releaseHalfOpen(pcb)
	case core.StateTimeWait:
		s.unTimeWait(pcb)
	}
	s.teardown(pcb)
}

// armSynRcvdExpiry starts the half-open give-up clock on a freshly
// spawned SYN_RCVD PCB. If the handshake has not completed when it
// fires, the PCB is reaped and its backlog slot released. The caller
// holds s.mu.
func (s *Stack) armSynRcvdExpiry(pcb *core.PCB) {
	cd, ok := pcb.UserData.(*connData)
	if !ok {
		return
	}
	cd.life.Cancel()
	cd.life = s.wheel.Schedule(s.clock()+s.synRcvdTimeout(), func(float64) {
		cd.life = nil
		if pcb.State != core.StateSynRcvd {
			return
		}
		s.SynExpired++
		s.tel.SynExpired.Inc()
		s.tel.TimerFires.Inc()
		s.releaseHalfOpen(pcb)
		s.teardown(pcb)
	})
}

// armTimeWait starts (or restarts, for a re-acknowledged FIN) the 2MSL
// clock on a TIME_WAIT PCB. When it fires the PCB leaves both the
// time-wait list and the demultiplexer. The caller holds s.mu.
func (s *Stack) armTimeWait(pcb *core.PCB) {
	cd, ok := pcb.UserData.(*connData)
	if !ok {
		return
	}
	cd.life.Cancel()
	cd.life = s.wheel.Schedule(s.clock()+2*s.msl(), func(float64) {
		cd.life = nil
		if pcb.State != core.StateTimeWait {
			return
		}
		s.TimeWaitExpired++
		s.tel.TimeWaitExpired.Inc()
		s.tel.TimerFires.Inc()
		s.unTimeWait(pcb)
		s.teardown(pcb)
	})
}
