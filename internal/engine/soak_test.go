package engine

import (
	"fmt"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/frag"
	"tcpdemux/internal/rng"
)

// TestSoak is the cross-module endurance run: for thousands of steps it
// randomly opens connections (bound and ephemeral ports), exchanges data
// (sometimes fragmented, sometimes corrupted, sometimes dropped), closes,
// reaps TIME_WAIT, and retransmits — against every demultiplexer — then
// checks the final state is coherent. It exists to catch interactions no
// focused test provokes.
func TestSoak(t *testing.T) {
	for _, algo := range []string{"bsd", "sequent", "auto-sequent", "map"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			d, err := core.New(algo, core.Config{Chains: 7})
			if err != nil {
				t.Fatal(err)
			}
			server := NewStack(serverAddr, d, 1)
			client := NewStack(clientAddr, core.NewMapDemux(), 2)
			if err := server.Listen(1521, echoUpper); err != nil {
				t.Fatal(err)
			}
			src := rng.New(0x50ac ^ uint64(len(algo)))

			var open []*Conn
			// alive picks a random established connection without evicting
			// conns that are merely mid-handshake or mid-close.
			alive := func() *Conn {
				if len(open) == 0 {
					return nil
				}
				start := src.Intn(len(open))
				for i := 0; i < len(open); i++ {
					c := open[(start+i)%len(open)]
					if c.State() == core.StateEstablished {
						return c
					}
				}
				return nil
			}

			const steps = 4000
			for step := 0; step < steps; step++ {
				switch src.Intn(10) {
				case 0, 1: // open a connection
					c, err := client.ConnectEphemeral(serverAddr, 1521, nil)
					if err != nil {
						t.Fatal(err)
					}
					open = append(open, c)
				case 2: // close one
					if c := alive(); c != nil {
						if err := c.Close(); err != nil {
							t.Fatal(err)
						}
					}
				case 3: // reap
					client.ReapTimeWait()
					server.ReapTimeWait()
				case 4: // corrupted frame at the server
					junk := make([]byte, 20+src.Intn(60))
					for i := range junk {
						junk[i] = byte(src.Uint64())
					}
					_, _ = server.Deliver(junk)
					server.Drain()
				case 5: // fragmented send
					if c := alive(); c != nil {
						if err := c.Send([]byte(fmt.Sprintf("frag-%04d-%s", step, string(make([]byte, 1200))))); err != nil {
							t.Fatal(err)
						}
						for _, f := range client.Drain() {
							pieces, err := frag.Fragment(f, 576)
							if err != nil {
								t.Fatal(err)
							}
							for _, p := range pieces {
								if src.Intn(10) == 0 {
									continue // drop a fragment sometimes
								}
								if _, err := server.Deliver(p); err != nil {
									t.Fatal(err)
								}
							}
						}
						if _, err := Pump(client, server); err != nil {
							t.Fatal(err)
						}
						// The engine is stop-and-wait: recover any segment
						// whose fragments were dropped before sending more,
						// or the next send overwrites the retransmission
						// buffer and the stream desynchronizes for good.
						if client.Retransmit() > 0 {
							if _, err := Pump(client, server); err != nil {
								t.Fatal(err)
							}
						}
					}
				case 6: // retransmit sweep
					client.Retransmit()
					server.Retransmit()
					if _, err := Pump(client, server); err != nil {
						t.Fatal(err)
					}
				default: // ordinary exchange
					if c := alive(); c != nil {
						msg := fmt.Sprintf("step-%d", step)
						if err := c.Send([]byte(msg)); err != nil {
							t.Fatal(err)
						}
						if _, err := Pump(client, server); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			// Final coherence: one last retransmit round flushes dropped
			// fragments' segments, then every still-open connection echoes.
			client.Retransmit()
			server.Retransmit()
			if _, err := Pump(client, server); err != nil {
				t.Fatal(err)
			}
			checked := 0
			for _, c := range open {
				if c.State() != core.StateEstablished {
					continue
				}
				if err := c.Send([]byte("final check")); err != nil {
					t.Fatal(err)
				}
				if _, err := Pump(client, server); err != nil {
					t.Fatal(err)
				}
				if got := string(c.LastReceived()); got != "FINAL CHECK" {
					t.Fatalf("conn %v broken after soak: %q", c.Key(), got)
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("soak ended with no live connections to verify")
			}
			// The server's table must hold exactly: 1 listener + live conns
			// + its own TIME_WAIT residue.
			live := 0
			for _, c := range open {
				if c.State() == core.StateEstablished {
					live++
				}
			}
			want := 1 + live + server.TimeWaitCount()
			if got := server.Demuxer().Len(); got != want {
				tally := map[string]int{}
				for _, row := range server.Netstat() {
					tally[row.State.String()]++
				}
				t.Fatalf("server table %d PCBs, want %d (1 listener + %d live + %d time-wait); states: %v",
					got, want, live, server.TimeWaitCount(), tally)
			}
			t.Logf("%s: %d steps, %d live at end, server stats: %v",
				algo, steps, live, server.Demuxer().Stats())
		})
	}
}
