// Lossy-link harness: a deterministic, seeded in-memory "wire" between
// two Stacks that drops, duplicates, and jitter-reorders frames, with
// both endpoints driven solely by Stack.Tick. It replaces Pump for
// robustness scenarios: Pump assumes every frame arrives exactly once,
// which makes the engine's retransmission machinery dead code; the Link
// makes that machinery load-bearing, and RunLossyExchange proves an
// application exchange survives it byte for byte.
package engine

import (
	"fmt"
	"sort"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// LinkConfig parameterizes the lossy wire. Zero values mean a perfect
// link with DefaultLinkLatency delay.
type LinkConfig struct {
	// Seed drives the loss process; the same seed replays the same fate
	// for every frame.
	Seed uint64
	// DropRate is the probability an in-flight frame vanishes.
	DropRate float64
	// DupRate is the probability a surviving frame is delivered twice.
	DupRate float64
	// Latency is the one-way delay in virtual seconds
	// (DefaultLinkLatency if zero).
	Latency float64
	// Jitter adds a uniform [0, Jitter) extra delay per copy, reordering
	// frames that were sent close together.
	Jitter float64
	// PadTo, when positive, pads every delivered frame with trailing
	// zeros to at least PadTo bytes, the way Ethernet pads small frames
	// to its 60-byte minimum. The IP total length bounds parsing, so the
	// padding must be invisible to the receiving stack.
	PadTo int
	// Chaos, when non-nil, is consulted for every launched frame before
	// the probabilistic loss model; it implements scripted scenarios
	// (partitions, stalls, targeted corruption) on top of the background
	// loss process. See the chaos package for a rule-driven implementation.
	Chaos ChaosFunc
}

// ChaosDir identifies a frame's direction across the link.
type ChaosDir int

const (
	// DirAB is a frame traveling from the link's first stack to its
	// second (client → server in RunLossyExchange).
	DirAB ChaosDir = iota
	// DirBA is the reverse direction.
	DirBA
)

// ChaosVerdict is a scenario's ruling on one frame.
type ChaosVerdict struct {
	// Drop discards the frame (counted in Link.Dropped).
	Drop bool
	// Dup delivers an extra copy (counted in Link.Duplicated).
	Dup bool
	// Corrupt flips one byte of the frame before delivery, so the
	// receiver's checksums must catch it.
	Corrupt bool
	// ExtraDelay is added to every surviving copy's delivery time
	// (virtual seconds) — a stall.
	ExtraDelay float64
}

// ChaosFunc judges one frame about to cross the link. It must be
// deterministic in its own state: the Link calls it exactly once per
// launched frame, in launch order.
type ChaosFunc func(frame []byte, dir ChaosDir, now float64) ChaosVerdict

// Endpoint is the frame-moving face of a stack as the Link sees it:
// something that emits queued frames and absorbs delivered ones. A
// single Stack is one; so is the sharded multi-queue engine, which is
// the point of the abstraction — the identical loss process can drive
// either, and the conformance tests compare their application-level
// output byte for byte.
type Endpoint interface {
	Deliver(frame []byte) (core.Result, error)
	Drain() [][]byte
}

// LossyServer is the server end RunLossyExchange drives: an Endpoint
// plus the lifecycle surface the harness needs to configure it, run its
// clock, and report its timer activity. *Stack implements it; the
// sharded engine implements it by fanning each call to its shards.
type LossyServer interface {
	Endpoint
	Listen(port uint16, h Handler) error
	Tick(now float64)
	Addr() wire.Addr
	SetTimers(rto float64, maxRetries int, msl float64)
	SetBacklog(n int)
	LifecycleCounters() (retransmits, aborts, synExpired, timeWaitExpired uint64)
}

// DefaultLinkLatency is the one-way delay when LinkConfig.Latency is
// zero: 10 ms of virtual time.
const DefaultLinkLatency = 0.01

// flight is one frame copy in transit.
type flight struct {
	frame []byte
	to    Endpoint
	at    float64 // delivery time
	seq   uint64  // tie-break: launch order
}

// Link is the lossy wire between two endpoints. Drive it by alternating
// Shuttle (collect + deliver) with advancing virtual time; Idle reports
// when nothing remains in transit.
type Link struct {
	a, b Endpoint
	cfg  LinkConfig
	src  *rng.Source
	// inflight holds undelivered frame copies, unsorted; Shuttle delivers
	// the due ones in (at, seq) order.
	inflight []flight
	seq      uint64

	// Delivered, Dropped, and Duplicated count frame fates, for
	// reporting. Rejected counts delivered frames the receiving stack
	// refused (corrupted copies shed by its checksums).
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Rejected   uint64
}

// NewLink wires two endpoints together through the loss model.
func NewLink(a, b Endpoint, cfg LinkConfig) *Link {
	if cfg.Latency <= 0 {
		cfg.Latency = DefaultLinkLatency
	}
	return &Link{a: a, b: b, cfg: cfg, src: rng.New(cfg.Seed)}
}

// Idle reports whether the wire has no frame copies in transit.
func (l *Link) Idle() bool { return len(l.inflight) == 0 }

// launch decides one drained frame's fate and schedules its copies.
func (l *Link) launch(frame []byte, to Endpoint, now float64) {
	var verdict ChaosVerdict
	if l.cfg.Chaos != nil {
		dir := DirAB
		if to == l.a {
			dir = DirBA
		}
		verdict = l.cfg.Chaos(frame, dir, now)
	}
	if verdict.Drop || l.src.Float64() < l.cfg.DropRate {
		l.Dropped++
		return
	}
	if l.cfg.PadTo > len(frame) {
		padded := make([]byte, l.cfg.PadTo)
		copy(padded, frame)
		frame = padded
	}
	if verdict.Corrupt && len(frame) > 0 {
		// Flip one byte on a copy: the sender's retransmission buffer must
		// keep the pristine frame.
		mangled := make([]byte, len(frame))
		copy(mangled, frame)
		mangled[int(l.src.Uint64()%uint64(len(mangled)))] ^= 0xff
		frame = mangled
	}
	copies := 1
	if verdict.Dup || l.src.Float64() < l.cfg.DupRate {
		l.Duplicated++
		copies = 2
	}
	for c := 0; c < copies; c++ {
		at := now + l.cfg.Latency + verdict.ExtraDelay
		if l.cfg.Jitter > 0 {
			at += l.src.Float64() * l.cfg.Jitter
		}
		l.inflight = append(l.inflight, flight{frame: frame, to: to, at: at, seq: l.seq})
		l.seq++
	}
}

// Inject schedules a raw frame onto the wire as if a third party sent it
// (toB chooses the receiving stack). The frame bypasses the loss model
// and chaos rules: attack traffic is not subject to the defender's luck.
func (l *Link) Inject(frame []byte, toB bool, now float64) {
	to := l.a
	if toB {
		to = l.b
	}
	l.inflight = append(l.inflight, flight{frame: frame, to: to, at: now + l.cfg.Latency, seq: l.seq})
	l.seq++
}

// Shuttle collects both stacks' outboxes through the loss model, then
// delivers every frame copy due by now, in arrival order. Callers
// alternate Shuttle with Stack.Tick on both ends to run the clock.
func (l *Link) Shuttle(now float64) error {
	for _, frame := range l.a.Drain() {
		l.launch(frame, l.b, now)
	}
	for _, frame := range l.b.Drain() {
		l.launch(frame, l.a, now)
	}
	due := l.inflight[:0]
	var deliver []flight
	for _, f := range l.inflight {
		if f.at <= now {
			deliver = append(deliver, f)
		} else {
			due = append(due, f)
		}
	}
	l.inflight = due
	sort.Slice(deliver, func(i, j int) bool {
		if deliver[i].at != deliver[j].at {
			return deliver[i].at < deliver[j].at
		}
		return deliver[i].seq < deliver[j].seq
	})
	for _, f := range deliver {
		if _, err := f.to.Deliver(f.frame); err != nil {
			// Under a chaos scenario, mangled or spoofed frames are the
			// point: the receiver sheds them (its drop counters say why)
			// and the exchange must recover. Without one, every frame on
			// the wire is harness-built and an error is a harness bug.
			if l.cfg.Chaos == nil {
				return fmt.Errorf("lossy deliver: %w", err)
			}
			l.Rejected++
			continue
		}
		l.Delivered++
	}
	return nil
}

// LossyConfig parameterizes RunLossyExchange.
type LossyConfig struct {
	// Clients is the number of concurrent client connections.
	Clients int
	// Txns is the number of request/response transactions per client.
	Txns int
	// Link is the loss model.
	Link LinkConfig
	// Seed feeds the stacks' ISS generators (the Link has its own).
	Seed uint64
	// RTO, MaxRetries, MSL configure both endpoints' lifecycle timers
	// (engine defaults if zero). Lossy runs want a small RTO and a
	// generous retry budget.
	RTO        float64
	MaxRetries int
	MSL        float64
	// Server, when non-nil, is the server endpoint to drive instead of a
	// freshly built single Stack (in which case the Demuxer argument to
	// RunLossyExchange is ignored). The harness configures its backlog
	// and timers and registers the exchange handler itself, so a sharded
	// engine and a single Stack run the exact same application protocol.
	Server LossyServer
	// Step is the virtual-time stride between Shuttle/Tick rounds
	// (defaults to half the link latency).
	Step float64
	// MaxVirtualTime aborts a run that fails to complete (default 1000
	// virtual seconds).
	MaxVirtualTime float64
}

// LossyResult reports one exchange.
type LossyResult struct {
	// Completed is true when every client collected every response and
	// finished its close handshake.
	Completed bool
	// Responses holds each client's concatenated response bytes in
	// application order — the conformance artifact: it must not depend on
	// the loss process.
	Responses [][]byte
	// VirtualTime is when the exchange completed (or gave up).
	VirtualTime float64

	// Wire and lifecycle counters.
	Delivered, Dropped, Duplicated uint64
	Retransmits, Aborts            uint64
	SynExpired, TimeWaitExpired    uint64
}

// lossyPort is the server's listening port for the exchange.
const lossyPort = 1521

// lossyHandler is the server side of the exchange: a deterministic
// response computed from the request alone, so two runs under different
// loss processes must produce identical bytes.
func lossyHandler(_ *Conn, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+4)
	out = append(out, "ok<"...)
	out = append(out, payload...)
	return append(out, '>')
}

// lossyRequest builds client c's transaction t request payload.
func lossyRequest(c, t int) []byte {
	return []byte(fmt.Sprintf("txn c%02d t%03d debit 100", c, t))
}

// RunLossyExchange drives Clients request/response conversations through
// a lossy wire between a client stack and a server stack demultiplexing
// with d, using only Stack.Tick for retransmission and lifecycle — no
// manual Retransmit or ReapTimeWait calls. Each client opens a
// connection, performs Txns stop-and-wait transactions, then closes.
func RunLossyExchange(d core.Demuxer, cfg LossyConfig) (*LossyResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 1
	}
	if cfg.Step <= 0 {
		lat := cfg.Link.Latency
		if lat <= 0 {
			lat = DefaultLinkLatency
		}
		cfg.Step = lat / 2
	}
	if cfg.MaxVirtualTime <= 0 {
		cfg.MaxVirtualTime = 1000
	}

	var server LossyServer = cfg.Server
	if server == nil {
		server = NewStack(serverAddrLossy, d, cfg.Seed|1)
	}
	client := NewStack(clientAddrLossy, core.NewMapDemux(), cfg.Seed+2)
	// Room for every client to open at once: backlog pressure is its own
	// scenario (see the SYN-flood tests); this exchange studies loss.
	server.SetBacklog(cfg.Clients)
	server.SetTimers(cfg.RTO, cfg.MaxRetries, cfg.MSL)
	client.SetTimers(cfg.RTO, cfg.MaxRetries, cfg.MSL)
	if err := server.Listen(lossyPort, lossyHandler); err != nil {
		return nil, err
	}
	link := NewLink(client, server, cfg.Link)

	// Per-client conversation state, advanced by poll().
	type clientState struct {
		conn    *Conn
		txn     int    // next transaction to send
		sent    bool   // request for txn is outstanding
		got     []byte // concatenated responses
		closing bool   // all transactions collected, Close issued
		done    bool   // close handshake reached TIME_WAIT (or torn down)
	}
	conv := make([]*clientState, cfg.Clients)
	for i := range conv {
		c, err := client.ConnectEphemeral(server.Addr(), lossyPort, nil)
		if err != nil {
			return nil, err
		}
		conv[i] = &clientState{conn: c}
	}

	poll := func(cs *clientState) error {
		if cs.done {
			return nil
		}
		switch cs.conn.State() {
		case core.StateClosed:
			// Aborted before finishing, or fully collected after close.
			cs.done = true
			return nil
		case core.StateTimeWait:
			// The peer's FIN arrived: the close handshake completed under
			// loss; only the 2MSL linger remains.
			cs.done = cs.closing
			return nil
		case core.StateEstablished:
		default:
			// Handshake or close still in flight; the timers drive it.
			return nil
		}
		if resp := cs.conn.Receive(); resp != nil {
			cs.got = append(cs.got, resp...)
			cs.sent = false
			cs.txn++
		}
		if cs.sent {
			return nil // stop-and-wait: one outstanding request
		}
		if cs.txn >= cfg.Txns {
			cs.closing = true
			return cs.conn.Close()
		}
		if err := cs.conn.Send(lossyRequest(int(cs.conn.Key().LocalPort), cs.txn)); err != nil {
			return err
		}
		cs.sent = true
		return nil
	}

	res := &LossyResult{}
	now := 0.0
	for {
		allDone := true
		for _, cs := range conv {
			if err := poll(cs); err != nil {
				return nil, err
			}
			if !cs.done {
				allDone = false
			}
		}
		if allDone && link.Idle() {
			res.Completed = true
			break
		}
		if now >= cfg.MaxVirtualTime {
			break
		}
		now += cfg.Step
		if err := link.Shuttle(now); err != nil {
			return nil, err
		}
		client.Tick(now)
		server.Tick(now)
	}

	res.VirtualTime = now
	for _, cs := range conv {
		res.Responses = append(res.Responses, cs.got)
		if cs.txn < cfg.Txns {
			res.Completed = false
		}
	}
	res.Delivered = link.Delivered
	res.Dropped = link.Dropped
	res.Duplicated = link.Duplicated
	srvRtx, srvAborts, srvSynExp, srvTW := server.LifecycleCounters()
	res.Retransmits = client.Retransmits + srvRtx
	res.Aborts = client.Aborts + srvAborts
	res.SynExpired = srvSynExp
	res.TimeWaitExpired = client.TimeWaitExpired + srvTW
	return res, nil
}

// Exchange endpoints (distinct names so test files can keep their own).
var (
	serverAddrLossy = wire.MakeAddr(10, 0, 0, 1)
	clientAddrLossy = wire.MakeAddr(10, 0, 0, 2)
)
