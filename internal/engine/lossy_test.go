package engine

import (
	"bytes"
	"testing"

	"tcpdemux/internal/core"
)

// lossyCfg builds the exchange configuration for a given drop/dup rate.
// Small RTO and a generous retry budget keep the virtual-time run short
// even when a transaction needs several attempts; MSL is shortened the
// same way a test kernel would.
func lossyCfg(drop, dup float64) LossyConfig {
	return LossyConfig{
		Clients: 4,
		Txns:    12,
		Seed:    99,
		Link: LinkConfig{
			Seed:     1234,
			DropRate: drop,
			DupRate:  dup,
			Latency:  0.01,
			Jitter:   0.004,
		},
		RTO:            0.25,
		MaxRetries:     40,
		MSL:            0.5,
		MaxVirtualTime: 900,
	}
}

// TestLossyConformanceAcrossAlgorithms is the tentpole's acceptance
// test: under seeded 20% drop plus 10% duplication, every registered
// demultiplexer discipline must complete the client/server exchange with
// application bytes identical to the lossless run — retransmission and
// lifecycle driven solely by Stack.Tick.
func TestLossyConformanceAcrossAlgorithms(t *testing.T) {
	for _, name := range core.Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			build := func() core.Demuxer {
				d, err := core.New(name, core.Config{Chains: 19})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			clean, err := RunLossyExchange(build(), lossyCfg(0, 0))
			if err != nil {
				t.Fatal(err)
			}
			if !clean.Completed {
				t.Fatalf("lossless run did not complete (t=%v)", clean.VirtualTime)
			}
			if clean.Dropped != 0 || clean.Retransmits != 0 {
				t.Fatalf("lossless run dropped %d / retransmitted %d", clean.Dropped, clean.Retransmits)
			}

			lossy, err := RunLossyExchange(build(), lossyCfg(0.20, 0.10))
			if err != nil {
				t.Fatal(err)
			}
			if !lossy.Completed {
				t.Fatalf("lossy run did not complete (t=%v, retransmits=%d, aborts=%d)",
					lossy.VirtualTime, lossy.Retransmits, lossy.Aborts)
			}
			if lossy.Dropped == 0 {
				t.Fatal("20%% drop rate dropped nothing — loss model inert")
			}
			if lossy.Retransmits == 0 {
				t.Fatal("drops recovered without any timer-driven retransmission")
			}
			if len(clean.Responses) != len(lossy.Responses) {
				t.Fatalf("client counts differ: %d vs %d", len(clean.Responses), len(lossy.Responses))
			}
			for i := range clean.Responses {
				if len(clean.Responses[i]) == 0 {
					t.Fatalf("client %d: lossless run produced no bytes", i)
				}
				if !bytes.Equal(clean.Responses[i], lossy.Responses[i]) {
					t.Fatalf("client %d: payloads diverge under loss:\nclean: %q\nlossy: %q",
						i, clean.Responses[i], lossy.Responses[i])
				}
			}
		})
	}
}

// TestLossyPaddedFrames: an exchange whose every frame is padded to the
// Ethernet 60-byte minimum (on top of 20% loss) must still produce the
// lossless, unpadded bytes — link padding is invisible end to end.
func TestLossyPaddedFrames(t *testing.T) {
	build := func() core.Demuxer {
		d, err := core.New("bsd", core.Config{Chains: 19})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	clean, err := RunLossyExchange(build(), lossyCfg(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := lossyCfg(0.20, 0.10)
	cfg.Link.PadTo = 60
	padded, err := RunLossyExchange(build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !padded.Completed {
		t.Fatalf("padded lossy run did not complete (t=%v)", padded.VirtualTime)
	}
	for i := range clean.Responses {
		if !bytes.Equal(clean.Responses[i], padded.Responses[i]) {
			t.Fatalf("client %d: padding changed application bytes", i)
		}
	}
}

// TestLossyDeterministicReplay: the same seeds must reproduce the same
// wire fates and the same result counters, bit for bit.
func TestLossyDeterministicReplay(t *testing.T) {
	run := func() *LossyResult {
		d, err := core.New("bsd", core.Config{Chains: 19})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLossyExchange(d, lossyCfg(0.20, 0.10))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Dropped != b.Dropped ||
		a.Duplicated != b.Duplicated || a.Retransmits != b.Retransmits ||
		a.VirtualTime != b.VirtualTime {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Responses {
		if !bytes.Equal(a.Responses[i], b.Responses[i]) {
			t.Fatalf("client %d bytes differ between identical runs", i)
		}
	}
}

// TestLinkPerfectIsLossless: a zero-rate link is just Pump with latency.
func TestLinkPerfectIsLossless(t *testing.T) {
	d, err := core.New("sequent", core.Config{Chains: 19})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLossyExchange(d, LossyConfig{
		Clients: 2, Txns: 5, Seed: 7,
		Link: LinkConfig{Seed: 1},
		RTO:  0.25, MSL: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("perfect link did not complete (t=%v)", res.VirtualTime)
	}
	if res.Dropped != 0 || res.Duplicated != 0 || res.Aborts != 0 {
		t.Fatalf("perfect link counters: %+v", res)
	}
}
