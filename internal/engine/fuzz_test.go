package engine

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// FuzzDeliver drives arbitrary frames through the full receive path —
// parser, demultiplexer, listener state machine (with SYN cookies armed),
// and the established-connection handlers. The stack must never panic,
// and its counters must stay coherent: every delivered frame either
// progresses a connection or lands in exactly one drop bucket.
func FuzzDeliver(f *testing.F) {
	mustBuild := func(tcp wire.TCPHeader, payload []byte) []byte {
		frame, err := wire.BuildSegment(
			wire.IPv4Header{TTL: 64, Src: clientAddr, Dst: serverAddr},
			tcp, payload,
		)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	// Seeds mirror the mutation-test templates: a SYN to the listener, a
	// plausible cookie ACK, a data segment, a bare RST, and garbage.
	f.Add(mustBuild(wire.TCPHeader{SrcPort: 40000, DstPort: 1521, Seq: 1, Flags: wire.FlagSYN, Window: 1024}, nil))
	f.Add(mustBuild(wire.TCPHeader{SrcPort: 40000, DstPort: 1521, Seq: 2, Ack: 99, Flags: wire.FlagACK, Window: 1024}, nil))
	f.Add(mustBuild(wire.TCPHeader{SrcPort: 40000, DstPort: 1521, Seq: 2, Ack: 99, Flags: wire.FlagACK | wire.FlagPSH, Window: 1024}, []byte("query")))
	f.Add(mustBuild(wire.TCPHeader{SrcPort: 40000, DstPort: 1521, Seq: 5, Flags: wire.FlagRST, Window: 0}, nil))
	f.Add(mustBuild(wire.TCPHeader{SrcPort: 40000, DstPort: 9999, Seq: 1, Flags: wire.FlagSYN | wire.FlagFIN, Window: 1024}, nil))
	f.Add([]byte{})
	f.Add([]byte{0x45, 0x00, 0x00, 0x14})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := core.NewSequentHash(19, nil)
		server := NewStack(serverAddr, d, 1)
		server.Backlog = 2
		server.SynCookies = true
		if err := server.Listen(1521, echoUpper); err != nil {
			t.Fatal(err)
		}
		// An established connection gives the fuzzer a live PCB to hit.
		client := NewStack(clientAddr, core.NewMapDemux(), 2)
		conn, err := client.Connect(serverAddr, 1521, 40000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Pump(client, server); err != nil {
			t.Fatal(err)
		}
		if conn.State() != core.StateEstablished {
			t.Fatal("setup handshake failed")
		}

		if _, err := server.Deliver(data); err != nil {
			// Rejection is fine; only a panic or a wedged table is a bug.
			_ = err
		}
		server.Drain()

		// The table must still answer for the established connection.
		serverKey := core.Key{
			LocalAddr: serverAddr, RemoteAddr: clientAddr,
			LocalPort: conn.Key().RemotePort, RemotePort: conn.Key().LocalPort,
		}
		r := d.Lookup(serverKey, core.DirData)
		if r.PCB == nil {
			// The fuzzer may legitimately tear the connection down (a
			// valid RST for the right tuple); that is correct behavior,
			// not a failure — but the listener must survive anything.
			lr := d.Lookup(core.Key{LocalAddr: serverAddr, LocalPort: 1521,
				RemoteAddr: wire.MakeAddr(1, 2, 3, 4), RemotePort: 7}, core.DirData)
			if lr.PCB == nil || lr.PCB.State != core.StateListen {
				t.Fatal("listener destroyed by fuzzed frame")
			}
		}
	})
}
