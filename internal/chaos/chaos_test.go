package chaos

import (
	"bytes"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/engine"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/wire"
)

// TestInjectorDeterminism: the same rules and seed must rule identically
// on the same frame sequence — replayability is what makes chaos runs
// debuggable.
func TestInjectorDeterminism(t *testing.T) {
	rules := []Rule{
		{Fault: Drop, From: 0, Until: Forever, P: 0.3, Both: true},
		{Fault: Dup, From: 1, Until: 5, P: 0.5, Dir: engine.DirBA},
		{Fault: Stall, From: 0, Until: Forever, P: 0.2, Both: true, Delay: 0.1},
	}
	a := NewInjector(42, rules...)
	b := NewInjector(42, rules...)
	fa, fb := a.Func(), b.Func()
	frame := []byte{1, 2, 3}
	for i := 0; i < 2000; i++ {
		dir := engine.ChaosDir(i % 2)
		now := float64(i) * 0.01
		va, vb := fa(frame, dir, now), fb(frame, dir, now)
		if va != vb {
			t.Fatalf("verdicts diverged at frame %d: %+v vs %+v", i, va, vb)
		}
	}
	if a.Inflicted != b.Inflicted {
		t.Fatalf("counters diverged: %v vs %v", a.Inflicted, b.Inflicted)
	}
	if a.Count(Drop) == 0 || a.Count(Dup) == 0 || a.Count(Stall) == 0 {
		t.Fatalf("expected every probabilistic rule to fire: %s", a.Summary())
	}
}

// TestRuleWindowAndDirection: rules fire only inside their window and
// direction; Partition ignores P and always drops.
func TestRuleWindowAndDirection(t *testing.T) {
	in := NewInjector(7, Rule{Fault: Partition, From: 2, Until: 4, Dir: engine.DirAB, P: 0.0001})
	f := in.Func()
	cases := []struct {
		dir  engine.ChaosDir
		now  float64
		drop bool
	}{
		{engine.DirAB, 1.9, false}, // before window
		{engine.DirAB, 2.0, true},  // window start inclusive
		{engine.DirAB, 3.9, true},
		{engine.DirAB, 4.0, false}, // window end exclusive
		{engine.DirBA, 3.0, false}, // wrong direction
	}
	for _, c := range cases {
		if got := f(nil, c.dir, c.now).Drop; got != c.drop {
			t.Errorf("dir=%v now=%v: drop=%v, want %v", c.dir, c.now, got, c.drop)
		}
	}
	if in.Count(Partition) != 2 {
		t.Fatalf("partition fired %d times, want 2", in.Count(Partition))
	}
}

// chaosCfg is the base exchange configuration for scenario runs.
func chaosCfg() engine.LossyConfig {
	return engine.LossyConfig{
		Clients:        4,
		Txns:           10,
		Seed:           99,
		Link:           engine.LinkConfig{Seed: 1234, Latency: 0.01, Jitter: 0.004},
		RTO:            0.25,
		MaxRetries:     60,
		MSL:            0.5,
		MaxVirtualTime: 900,
	}
}

// TestScenariosPreserveApplicationBytes is the chaos conformance check:
// a mid-exchange partition, a corruption burst, and a reply stall must
// each (and all together) leave the application byte stream identical to
// the undisturbed run — TCP's job is to make chaos invisible above it.
func TestScenariosPreserveApplicationBytes(t *testing.T) {
	clean, err := engine.RunLossyExchange(core.NewMapDemux(), chaosCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Completed {
		t.Fatalf("clean run did not complete (t=%v)", clean.VirtualTime)
	}

	scenarios := []struct {
		name  string
		rules []Rule
		check func(t *testing.T, in *Injector)
	}{
		{
			name:  "partition",
			rules: []Rule{{Fault: Partition, From: 0.05, Until: 0.3, Both: true}},
			check: func(t *testing.T, in *Injector) {
				if in.Count(Partition) == 0 {
					t.Fatal("partition never severed anything")
				}
			},
		},
		{
			name:  "corrupt-burst",
			rules: []Rule{{Fault: Corrupt, From: 0, Until: 0.4, P: 0.25, Both: true}},
			check: func(t *testing.T, in *Injector) {
				if in.Count(Corrupt) == 0 {
					t.Fatal("corruption never fired")
				}
			},
		},
		{
			name:  "reply-stall",
			rules: []Rule{{Fault: Stall, From: 0.02, Until: 0.4, P: 0.5, Dir: engine.DirBA, Delay: 0.4}},
			check: func(t *testing.T, in *Injector) {
				if in.Count(Stall) == 0 {
					t.Fatal("stall never fired")
				}
			},
		},
		{
			name: "combined",
			rules: []Rule{
				{Fault: Partition, From: 0.05, Until: 0.4, Both: true},
				{Fault: Drop, From: 0, Until: Forever, P: 0.1, Both: true},
				{Fault: Dup, From: 0, Until: Forever, P: 0.1, Both: true},
				{Fault: Corrupt, From: 0.25, Until: 0.6, P: 0.2, Dir: engine.DirAB},
				{Fault: Stall, From: 0, Until: Forever, P: 0.1, Both: true, Delay: 0.2},
			},
			check: func(t *testing.T, in *Injector) {
				for _, f := range []Fault{Partition, Drop, Dup, Corrupt, Stall} {
					if in.Count(f) == 0 {
						t.Fatalf("fault %s never fired (%s)", f, in.Summary())
					}
				}
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			in := NewInjector(77, sc.rules...)
			cfg := chaosCfg()
			cfg.Link.Chaos = in.Func()
			res, err := engine.RunLossyExchange(core.NewMapDemux(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("exchange did not survive %s (t=%v, retransmits=%d, aborts=%d, %s)",
					sc.name, res.VirtualTime, res.Retransmits, res.Aborts, in.Summary())
			}
			sc.check(t, in)
			if len(res.Responses) != len(clean.Responses) {
				t.Fatalf("client counts differ: %d vs %d", len(res.Responses), len(clean.Responses))
			}
			for i := range clean.Responses {
				if !bytes.Equal(res.Responses[i], clean.Responses[i]) {
					t.Fatalf("client %d bytes diverged under %s", i, sc.name)
				}
			}
		})
	}
}

// TestSynFloodFrames: the generated flood must parse back as exactly the
// SYNs for the attack tuples — valid enough to exercise the listener, not
// malformed junk the parser would shed for free.
func TestSynFloodFrames(t *testing.T) {
	tuples, err := hashfn.AttackPopulation(hashfn.Multiplicative{}, 64, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := SynFloodFrames(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(tuples) {
		t.Fatalf("%d frames for %d tuples", len(frames), len(tuples))
	}
	for i, frame := range frames {
		seg, err := wire.ParseSegment(frame)
		if err != nil {
			t.Fatalf("frame %d unparseable: %v", i, err)
		}
		if seg.Tuple() != tuples[i] {
			t.Fatalf("frame %d tuple %v, want %v", i, seg.Tuple(), tuples[i])
		}
		if seg.TCP.Flags != wire.FlagSYN {
			t.Fatalf("frame %d flags %#x, want SYN", i, seg.TCP.Flags)
		}
	}
}
