// Package chaos is a rule-driven scenario injector for the engine's lossy
// link. Where LinkConfig's DropRate/DupRate model *background* noise — a
// memoryless process applied uniformly forever — chaos rules model
// *events*: a partition from t=2 to t=4, a burst of corruption in one
// direction, a stall that holds every server reply for 500 ms, a spoofed
// SYN flood injected mid-exchange. Each rule names a fault, a time
// window, a direction, and a probability; the injector folds the active
// rules into a single engine.ChaosFunc and counts what it inflicted, so
// a test can assert both that the scenario actually fired and that the
// exchange survived it.
//
// Everything is seeded and deterministic: the same rules and seed replay
// the same fate for every frame, which is what lets conformance tests
// demand byte-identical application output under and without chaos.
package chaos

import (
	"fmt"

	"tcpdemux/internal/engine"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// Fault names one kind of injected failure.
type Fault int

const (
	// Drop discards matching frames with probability P.
	Drop Fault = iota
	// Dup delivers an extra copy of matching frames with probability P.
	Dup
	// Corrupt flips one byte of matching frames with probability P; the
	// receiver's checksums must reject the mangled copy and the sender's
	// retransmission must repair the loss.
	Corrupt
	// Stall adds Delay virtual seconds to matching frames with
	// probability P — latency spikes and head-of-line blocking.
	Stall
	// Partition drops every matching frame unconditionally for the rule's
	// whole window (P is ignored): a severed cable, not a noisy one.
	Partition

	numFaults
)

// String names the fault for reports.
func (f Fault) String() string {
	switch f {
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Corrupt:
		return "corrupt"
	case Stall:
		return "stall"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Rule is one scheduled fault. The zero window [0, 0) never matches;
// Until = 0 with From set means "from From onward" is NOT implied — use
// Forever for open-ended rules.
type Rule struct {
	// Fault is what to inflict.
	Fault Fault
	// From and Until bound the active window in virtual seconds:
	// active when From <= now < Until.
	From, Until float64
	// P is the per-frame probability in (0, 1]; 0 means 1 (always).
	// Ignored by Partition, which always fires.
	P float64
	// Dir restricts the rule to one direction unless Both is set.
	Dir engine.ChaosDir
	// Both applies the rule to both directions.
	Both bool
	// Delay is the Stall fault's added latency in virtual seconds.
	Delay float64
}

// Forever is an Until value safely past any exchange's MaxVirtualTime.
const Forever = 1e18

// active reports whether the rule applies to a frame crossing in dir at
// time now.
func (r Rule) active(dir engine.ChaosDir, now float64) bool {
	if !r.Both && dir != r.Dir {
		return false
	}
	return now >= r.From && now < r.Until
}

// Injector folds a rule set into an engine.ChaosFunc, counting every
// fault it inflicts.
type Injector struct {
	rules []Rule
	src   *rng.Source
	// Inflicted counts fired faults by kind (indexed by Fault).
	Inflicted [numFaults]uint64
}

// NewInjector builds an injector over the given rules. The seed drives
// the per-frame coin flips; rules fire in the order given, and their
// effects combine (a frame can be both stalled and duplicated).
func NewInjector(seed uint64, rules ...Rule) *Injector {
	return &Injector{rules: rules, src: rng.New(seed)}
}

// Count returns how many times the given fault fired.
func (in *Injector) Count(f Fault) uint64 {
	if f < 0 || f >= numFaults {
		return 0
	}
	return in.Inflicted[f]
}

// Summary renders the inflicted-fault counters in Fault order.
func (in *Injector) Summary() string {
	out := ""
	for f := Fault(0); f < numFaults; f++ {
		if in.Inflicted[f] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", f, in.Inflicted[f])
	}
	if out == "" {
		return "none"
	}
	return out
}

// Func returns the ChaosFunc to install as LinkConfig.Chaos. The
// returned closure is not safe for concurrent use — the Link calls it
// from a single goroutine, in launch order, which keeps the coin-flip
// sequence reproducible.
func (in *Injector) Func() engine.ChaosFunc {
	return func(_ []byte, dir engine.ChaosDir, now float64) engine.ChaosVerdict {
		var v engine.ChaosVerdict
		for _, r := range in.rules {
			if !r.active(dir, now) {
				continue
			}
			if r.Fault == Partition {
				in.Inflicted[Partition]++
				v.Drop = true
				continue
			}
			p := r.P
			if p <= 0 {
				p = 1
			}
			if p < 1 && in.src.Float64() >= p {
				continue
			}
			in.Inflicted[r.Fault]++
			switch r.Fault {
			case Drop:
				v.Drop = true
			case Dup:
				v.Dup = true
			case Corrupt:
				v.Corrupt = true
			case Stall:
				v.ExtraDelay += r.Delay
			}
		}
		return v
	}
}

// SynFloodFrames builds one spoofed SYN per tuple, ready to feed to a
// stack's Deliver or a Link's Inject. Combined with
// hashfn.AttackPopulation this turns an algorithmic-complexity attack
// population into wire traffic: a tuple-collision flood.
func SynFloodFrames(tuples []wire.Tuple) ([][]byte, error) {
	frames := make([][]byte, 0, len(tuples))
	for i, tu := range tuples {
		frame, err := wire.BuildSegment(
			wire.IPv4Header{TTL: 64, Src: tu.SrcAddr, Dst: tu.DstAddr},
			wire.TCPHeader{
				SrcPort: tu.SrcPort, DstPort: tu.DstPort,
				Seq: uint32(i), Flags: wire.FlagSYN, Window: 1024,
			},
			nil,
		)
		if err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
	return frames, nil
}
