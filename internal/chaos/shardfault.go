// Shard-level fault rules: where chaos.Rule scripts faults on the wire
// (frames dropped, corrupted, stalled in flight), ShardRule scripts
// faults in the endpoint itself — one queue of the multi-queue engine
// crashing, stalling, wedging its rings, or limping — under the same
// virtual-time windowing. The injector folds the active rules into a
// shard.FaultFunc, the StackSet's injection surface, and counts what it
// inflicted so a test can assert the scenario actually fired.
package chaos

import (
	"fmt"

	"tcpdemux/internal/shard"
)

// ShardFault names one kind of injected shard failure.
type ShardFault int

const (
	// ShardCrash freezes the shard: its virtual clock (and so its
	// heartbeat) stops, and nothing is consumed. The watchdog detects
	// the stale heartbeat and drains the shard.
	ShardCrash ShardFault = iota
	// ShardStall keeps the shard's clock running but stops its consumer;
	// the watchdog detects the stuck progress counter instead.
	ShardStall
	// ShardWedge makes the shard's rings refuse pushes: frames and
	// handoffs aimed at it shed (counted), but the shard itself stays
	// alive — degradation, not failure.
	ShardWedge
	// ShardSlow caps the shard's consumption at MaxConsume frames per
	// delivery — backlog growth and backpressure without death.
	ShardSlow

	numShardFaults
)

// String names the fault for reports.
func (f ShardFault) String() string {
	switch f {
	case ShardCrash:
		return "crash"
	case ShardStall:
		return "stall"
	case ShardWedge:
		return "wedge"
	case ShardSlow:
		return "slow"
	}
	return fmt.Sprintf("shardfault(%d)", int(f))
}

// ShardRule is one scheduled shard fault. As with Rule, the zero window
// [0, 0) never matches; use Forever for open-ended rules.
type ShardRule struct {
	// Fault is what to inflict.
	Fault ShardFault
	// Shard is the target queue index.
	Shard int
	// From and Until bound the active window in virtual seconds:
	// active when From <= now < Until.
	From, Until float64
	// MaxConsume is ShardSlow's per-delivery consumption cap (<= 0
	// means 1, the slowest non-dead consumer).
	MaxConsume int
}

// active reports whether the rule applies to a shard at time now.
func (r ShardRule) active(sh int, now float64) bool {
	return sh == r.Shard && now >= r.From && now < r.Until
}

// ShardInjector folds a shard-rule set into a shard.FaultFunc, counting
// every evaluation on which each fault was in force.
type ShardInjector struct {
	rules []ShardRule
	// Inflicted counts rule applications by kind (indexed by
	// ShardFault): one count per fault per event the verdict shaped.
	Inflicted [numShardFaults]uint64
}

// NewShardInjector builds an injector over the given rules. Rules
// combine: a shard can be both wedged and slow; Crash and Stall
// dominate Slow (a dead consumer has no rate).
func NewShardInjector(rules ...ShardRule) *ShardInjector {
	return &ShardInjector{rules: rules}
}

// Count returns how many events the given fault shaped.
func (in *ShardInjector) Count(f ShardFault) uint64 {
	if f < 0 || f >= numShardFaults {
		return 0
	}
	return in.Inflicted[f]
}

// Summary renders the inflicted-fault counters in ShardFault order.
func (in *ShardInjector) Summary() string {
	out := ""
	for f := ShardFault(0); f < numShardFaults; f++ {
		if in.Inflicted[f] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", f, in.Inflicted[f])
	}
	if out == "" {
		return "none"
	}
	return out
}

// Func returns the FaultFunc to install via StackSet.SetFaultFunc. Like
// Injector.Func, the closure is driven from the set's single control
// goroutine and is not safe for concurrent use.
func (in *ShardInjector) Func() shard.FaultFunc {
	return func(sh int, now float64) shard.FaultVerdict {
		var v shard.FaultVerdict
		for _, r := range in.rules {
			if !r.active(sh, now) {
				continue
			}
			in.Inflicted[r.Fault]++
			switch r.Fault {
			case ShardCrash:
				v.Crash = true
			case ShardStall:
				v.Stall = true
			case ShardWedge:
				v.Wedge = true
			case ShardSlow:
				mc := r.MaxConsume
				if mc <= 0 {
					mc = 1
				}
				if v.MaxConsume == 0 || mc < v.MaxConsume {
					v.MaxConsume = mc
				}
			}
		}
		return v
	}
}
