package chaos

import (
	"strings"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/engine"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/shard"
	"tcpdemux/internal/wire"
)

// TestShardRuleWindowsAndCombination pins the injector's window and
// fold semantics: rules apply only to their shard inside [From, Until),
// independent faults on one shard combine, and overlapping Slow rules
// take the tighter consumption cap.
func TestShardRuleWindowsAndCombination(t *testing.T) {
	in := NewShardInjector(
		ShardRule{Fault: ShardCrash, Shard: 1, From: 1, Until: 2},
		ShardRule{Fault: ShardWedge, Shard: 1, From: 1.5, Until: Forever},
		ShardRule{Fault: ShardSlow, Shard: 0, From: 0, Until: Forever, MaxConsume: 3},
		ShardRule{Fault: ShardSlow, Shard: 0, From: 2, Until: 3}, // MaxConsume unset: 1
		ShardRule{Fault: ShardStall, Shard: 2, From: 0, Until: 1},
	)
	f := in.Func()

	cases := []struct {
		shard int
		now   float64
		want  shard.FaultVerdict
	}{
		{1, 0.5, shard.FaultVerdict{}},                         // before the window
		{1, 1.0, shard.FaultVerdict{Crash: true}},              // From is inclusive
		{1, 1.7, shard.FaultVerdict{Crash: true, Wedge: true}}, // faults combine
		{1, 2.0, shard.FaultVerdict{Wedge: true}},              // Until is exclusive
		{0, 0.5, shard.FaultVerdict{MaxConsume: 3}},            // slow alone
		{0, 2.5, shard.FaultVerdict{MaxConsume: 1}},            // tighter cap wins
		{2, 0.0, shard.FaultVerdict{Stall: true}},              // zero From matches
		{2, 1.0, shard.FaultVerdict{}},                         // window closed
		{3, 1.5, shard.FaultVerdict{}},                         // untargeted shard
	}
	for _, c := range cases {
		if got := f(c.shard, c.now); got != c.want {
			t.Fatalf("verdict(shard=%d, now=%v) = %+v, want %+v", c.shard, c.now, got, c.want)
		}
	}

	if in.Count(ShardCrash) != 2 || in.Count(ShardWedge) != 2 ||
		in.Count(ShardSlow) != 3 || in.Count(ShardStall) != 1 {
		t.Fatalf("inflicted counts: %s", in.Summary())
	}
	sum := in.Summary()
	for _, want := range []string{"crash=2", "wedge=2", "slow=3", "stall=1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	if in.Count(ShardFault(99)) != 0 {
		t.Fatal("out-of-range fault counted")
	}
}

// TestShardRuleZeroWindowNeverFires matches the wire-chaos Rule
// contract: the zero value's [0, 0) window is inert.
func TestShardRuleZeroWindowNeverFires(t *testing.T) {
	in := NewShardInjector(ShardRule{Fault: ShardCrash})
	f := in.Func()
	for _, now := range []float64{0, 0.5, 1e9} {
		if got := f(0, now); got != (shard.FaultVerdict{}) {
			t.Fatalf("zero-window rule fired at %v: %+v", now, got)
		}
	}
	if in.Summary() != "none" {
		t.Fatalf("summary = %q, want none", in.Summary())
	}
}

// TestShardFaultString names every fault.
func TestShardFaultString(t *testing.T) {
	want := map[ShardFault]string{
		ShardCrash: "crash", ShardStall: "stall", ShardWedge: "wedge", ShardSlow: "slow",
	}
	for f, s := range want {
		if f.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(f), f.String(), s)
		}
	}
	if ShardFault(42).String() != "shardfault(42)" {
		t.Fatalf("fallback String: %q", ShardFault(42).String())
	}
}

// TestShardInjectorDrivesDrain is the end-to-end wiring check: an
// injector-scripted crash installed on a live StackSet must trip the
// health watchdog and drain the crashed shard, while the exchange
// completes conformantly on the survivors.
func TestShardInjectorDrivesDrain(t *testing.T) {
	set, err := shard.NewStackSet(wire.MakeAddr(10, 0, 0, 1), shard.Config{
		Shards: 4,
		NewDemuxer: func(int) core.Demuxer {
			return core.NewSequentHash(0, hashfn.Multiplicative{})
		},
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := NewShardInjector(ShardRule{Fault: ShardCrash, Shard: 2, From: 1, Until: Forever})
	set.SetFaultFunc(in.Func())

	res, err := engine.RunLossyExchange(nil, engine.LossyConfig{
		Clients: 8,
		Txns:    12,
		Seed:    99,
		Link: engine.LinkConfig{
			Seed: 1234, DropRate: 0.20, DupRate: 0.10, Latency: 0.01, Jitter: 0.004,
		},
		RTO: 0.25, MaxRetries: 40, MSL: 0.5, MaxVirtualTime: 2000,
		Server: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("exchange did not complete (t=%v)", res.VirtualTime)
	}
	if !set.Drained(2) {
		t.Fatalf("scripted crash not drained: health=%v drains=%d", set.Health(2), set.Drains)
	}
	if in.Count(ShardCrash) == 0 {
		t.Fatal("injector recorded no crash applications")
	}
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}
