// Package flat implements cache-conscious open-addressing demultiplexers:
// the first discipline family in this repository designed around the
// memory hierarchy rather than around the paper's list structures.
//
// The paper's disciplines (§3.1–3.4) and their descendants under
// internal/core, internal/parallel and internal/rcu all resolve a lookup
// by walking a chain — and every chain hop lands on a different cache
// line, so a lookup that examines E PCBs costs ~E cache lines of memory
// traffic. After the synchronization work of the earlier PRs, that memory
// behaviour is the dominant remaining cost (BENCH_parallel.json measures
// the locked Sequent baseline at ~395 mean examined PCBs per lookup at
// 6,000 users over 19 chains). This package removes the pointer chase
// entirely, following the cache-aware forwarding-table layout of Yegorov
// and the pipelined lookup architecture of Jiang et al. (PAPERS.md):
//
//   - Entries are 24-byte fixed-size cells — the 12-byte connection key,
//     its full 32-bit hash as a scan fingerprint, and a generation-checked
//     index into a PCB slab — packed contiguously, so one probe group is
//     one or two sequential cache lines instead of one line per hop, and
//     a scan never dereferences a PCB until the fingerprint and key both
//     match.
//   - Hopscotch keeps every key within a fixed H-slot neighborhood of its
//     home slot, so a lookup scans one bounded contiguous window.
//   - Cuckoo (bucketized, 4 slots per bucket) gives every key exactly two
//     candidate buckets, so a lookup probes at most two groups.
//   - LookupBatch software-pipelines a train: while packet i's probe
//     group is being resolved, the group packet i+k will need is
//     prefetched (portable shim, see prefetch.go), hiding the memory
//     latency the per-packet path pays serially.
//
// Both tables implement core.Demuxer (single-goroutine, like the core
// algorithms); Concurrent wraps either in a read-write lock with striped
// statistics and implements parallel.ConcurrentDemuxer, mirroring
// rcu.Demuxer's LookupBatch contract so it drops into the existing batch
// drivers. Neither table keeps the chained disciplines' one-entry caches:
// a probe group costs about as much as a cache probe would, so Result.
// CacheHit is always false and Stats.Hits stays zero.
//
// Deletions need no tombstones in either scheme — a hopscotch lookup
// scans its fixed neighborhood and a cuckoo lookup its two buckets
// whether or not holes intervene — so a delete just empties the slot and
// returns the PCB's slab cell (generation bumped) to the free list.
package flat

import (
	"sync"
	"unsafe"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
)

// entry is one 24-byte cell of an open-addressing table: the connection
// key inlined next to its full 32-bit hash (the scan fingerprint — a
// probe compares one word and touches the 12-byte key only on a
// fingerprint match) and a generation-checked reference into the PCB
// slab. slot is the slab index plus one so the zero entry means an empty
// cell; gen must match the slab cell's current generation, which guards
// a stale reference after the cell is recycled the same way DirectIndex
// (§3.5) guards reused connection IDs.
type entry struct {
	key  core.Key
	hash uint32
	slot uint32 // slab index + 1; 0 = empty cell
	gen  uint32
}

// The 24-byte entry size is load-bearing for the probe-group layout;
// refuse to compile if padding or a key change grows it.
const (
	entryBytes = 24
	_          = uint(entryBytes - unsafe.Sizeof(entry{}))
	_          = uint(unsafe.Sizeof(entry{}) - entryBytes)
)

// slab owns the PCB pointers the table entries index into. Cells are
// recycled through a free list; release bumps the cell's generation so a
// dangling entry written against the old generation can never resolve to
// the new occupant.
type slab struct {
	pcbs []*core.PCB
	gens []uint32
	// free is mutated only by the alloc/release pair (the slabmut role);
	// the lookup path reads pcbs and gens but never the free list.
	free []uint32 //demux:singlewriter(owner=slabmut)
}

// alloc stores p in a free (or fresh) cell and returns its index and
// current generation.
//
//demux:owner(slabmut)
func (s *slab) alloc(p *core.PCB) (idx, gen uint32) {
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		s.pcbs[idx] = p
		return idx, s.gens[idx]
	}
	s.pcbs = append(s.pcbs, p)
	s.gens = append(s.gens, 0)
	return uint32(len(s.pcbs) - 1), 0
}

// release empties cell idx, advances its generation, and queues it for
// reuse.
//
//demux:owner(slabmut)
func (s *slab) release(idx uint32) {
	s.pcbs[idx] = nil
	s.gens[idx]++
	s.free = append(s.free, idx)
}

// at resolves a generation-checked reference; nil if the cell has been
// recycled since the reference was written.
//
//demux:hotpath
func (s *slab) at(idx, gen uint32) *core.PCB {
	if s.gens[idx] != gen {
		return nil
	}
	return s.pcbs[idx]
}

// lentry is one wildcard listener. Listeners are matched by wildcard
// scoring, not equality, so they live outside the packed tables in a
// small front-inserted slice, exactly as in the chained disciplines.
type lentry struct {
	key core.Key
	pcb *core.PCB
}

// DefaultPrefetchDepth is the batch pipeline depth k: while packet i is
// resolved, packet i+k's probe group is prefetched. Four groups keeps
// the pipeline ahead of a load-to-use latency of a few hundred cycles at
// ~50–100 cycles per resolution without thrashing L1 on short trains.
const DefaultPrefetchDepth = 4

// tableCommon is the state the two open-addressing variants share: hash
// selection, the PCB slab, the listener table, statistics, and the batch
// pipeline scratch.
type tableCommon struct {
	hash hashfn.Func
	// mult short-circuits hashOf to the concrete (inlinable)
	// multiplicative hash when hash is the default, as in the rcu table:
	// an interface call per packet is a real fraction of a one-group
	// probe.
	mult bool

	slab   slab
	listen []lentry
	n      int // occupied table cells (listeners excluded)

	depth int // prefetch pipeline depth k; 0 disables
	stats core.Stats

	// scratch pools the per-batch hash buffer and prefetch sink so
	// concurrent readers of the Concurrent wrapper never share one.
	scratch sync.Pool
}

func (c *tableCommon) init(fn hashfn.Func) {
	if fn == nil {
		fn = hashfn.Multiplicative{}
	}
	c.hash = fn
	_, c.mult = fn.(hashfn.Multiplicative)
	c.depth = DefaultPrefetchDepth
}

// hashOf computes an exact key's full hash, used for slot selection and
// as the entry fingerprint.
//
//demux:hotpath
func (c *tableCommon) hashOf(k core.Key) uint32 {
	if c.mult {
		return hashfn.Multiplicative{}.Hash(k.Tuple())
	}
	return c.hash.Hash(k.Tuple())
}

// SetPrefetchDepth sets the batch pipeline depth k (clamped at 0): while
// packet i resolves, packet i+k's probe group is prefetched. 0 disables
// the pipeline; results are identical either way.
func (c *tableCommon) SetPrefetchDepth(k int) {
	if k < 0 {
		k = 0
	}
	c.depth = k
}

// PrefetchDepth returns the current batch pipeline depth.
func (c *tableCommon) PrefetchDepth() int { return c.depth }

// listenInsert registers a wildcard listener, newest first.
func (c *tableCommon) listenInsert(p *core.PCB) error {
	for i := range c.listen {
		if c.listen[i].key == p.Key {
			return core.ErrDuplicateKey
		}
	}
	c.listen = append(c.listen, lentry{})
	copy(c.listen[1:], c.listen)
	c.listen[0] = lentry{key: p.Key, pcb: p}
	return nil
}

// listenRemove deletes the listener with exactly key k.
func (c *tableCommon) listenRemove(k core.Key) bool {
	for i := range c.listen {
		if c.listen[i].key == k {
			c.listen = append(c.listen[:i], c.listen[i+1:]...)
			return true
		}
	}
	return false
}

// listenScan finds the best wildcard listener for packet key k after an
// exact-match miss, most specific first-wins, with the same scoring and
// examination accounting as the chained disciplines.
//
//demux:hotpath
func (c *tableCommon) listenScan(k core.Key, r *core.Result) {
	best := -1
	for i := range c.listen {
		r.Examined++
		if score := core.Match(c.listen[i].key, k); score > best {
			best = score
			r.PCB = c.listen[i].pcb
		}
	}
	r.Wildcard = r.PCB != nil
}

// listenWalk iterates the listeners, newest first, for Walk.
func (c *tableCommon) listenWalk(fn func(*core.PCB) bool) bool {
	for i := range c.listen {
		if !fn(c.listen[i].pcb) {
			return false
		}
	}
	return true
}

// record folds one per-packet lookup into the table's statistics.
//
//demux:hotpath
func (c *tableCommon) record(r core.Result) { c.stats.Record(r) }

// merge folds a batch's accumulated statistics into the table's
// statistics, equivalently to recording each result individually.
func (c *tableCommon) merge(st core.Stats) {
	c.stats.Lookups += st.Lookups
	c.stats.Examined += st.Examined
	c.stats.Hits += st.Hits
	c.stats.Misses += st.Misses
	c.stats.WildcardHits += st.WildcardHits
	if st.MaxExamined > c.stats.MaxExamined {
		c.stats.MaxExamined = st.MaxExamined
	}
}

// Stats implements core.Demuxer; the pointer stays live.
func (c *tableCommon) Stats() *core.Stats { return &c.stats }

// NotifySend implements core.Demuxer; the flat tables ignore
// transmissions.
func (c *tableCommon) NotifySend(*core.PCB) {}

// Len implements core.Demuxer.
func (c *tableCommon) Len() int { return c.n + len(c.listen) }

// batchScratch is the pooled per-batch state: the precomputed hash of
// every key in the train and the prefetch sink the shim stores into so
// the early loads cannot be optimized away.
type batchScratch struct {
	hash []uint32
	sink uint64
}

// scratchFor fetches (or builds) a scratch sized for n keys.
func (c *tableCommon) scratchFor(n int) *batchScratch {
	s, _ := c.scratch.Get().(*batchScratch)
	if s == nil {
		s = &batchScratch{}
	}
	if cap(s.hash) < n {
		s.hash = make([]uint32, n)
	}
	s.hash = s.hash[:n]
	return s
}

// releaseScratch returns the scratch to the pool.
func (c *tableCommon) releaseScratch(s *batchScratch) { c.scratch.Put(s) }

// roundPow2 rounds n up to a power of two, at least min.
func roundPow2(n, min int) int {
	size := min
	for size < n {
		size <<= 1
	}
	return size
}

// Table is the interface both open-addressing variants satisfy: a
// core.Demuxer plus the raw (statistics-free) probes the Concurrent
// wrapper builds on and the prefetch-depth control the benchmark drivers
// sweep. Only this package's tables implement it (the batch hook is
// unexported).
type Table interface {
	core.Demuxer

	// LookupRaw is Lookup without the statistics fold: a pure read of
	// the table, safe for concurrent readers while no writer runs.
	LookupRaw(k core.Key, dir core.Direction) core.Result

	// SetPrefetchDepth and PrefetchDepth control the batch pipeline
	// depth k.
	SetPrefetchDepth(k int)
	PrefetchDepth() int

	// lookupBatch resolves a train without touching the table's own
	// statistics, returning the batch's accumulated stats for the caller
	// to fold wherever it accounts lookups.
	lookupBatch(keys []core.Key, dir core.Direction, out []core.Result) ([]core.Result, core.Stats)
}
