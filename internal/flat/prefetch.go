//go:build !flat_noprefetch

package flat

// prefetchSpan is the portable prefetch shim: it warms the cache lines
// holding a probe group before the batch pipeline needs them.
//
// Go has no prefetch intrinsic, so this issues early demand loads of the
// group's first and last entries (a probe group is at most 192 bytes, so
// two touches cover its span to within one line) and folds the loaded
// words into an accumulator the caller keeps live. The store is what
// makes the shim work: a compiler may not elide a load whose value
// reaches memory, so the lines are in flight — and, unlike a speculative
// hardware prefetch, already being fetched — while the pipeline resolves
// the k packets ahead of this one. On a port with a real prefetch
// intrinsic this function is the single indirection to replace; building
// with -tags flat_noprefetch swaps in the no-op variant (prefetch_off.go)
// to measure the pipeline's contribution.
//
//demux:hotpath
func prefetchSpan(group []entry, sink *uint64) {
	n := len(group)
	if n == 0 {
		return
	}
	*sink += uint64(group[0].hash) + uint64(group[n-1].hash)
}
