package flat

import (
	"sync"

	"tcpdemux/internal/core"
	"tcpdemux/internal/stripestat"
)

// Concurrent makes a flat table goroutine-safe with a read-write lock:
// lookups (per-packet and batched) run concurrently under the read lock
// against the raw, statistics-free probes, while inserts, removes and
// the table growth they trigger serialize under the write lock.
// Statistics move out of the table into striped per-goroutine-ish slots
// (stripestat), so concurrent readers never contend on a counter line —
// the inner table's own Stats stay zero.
//
// This is deliberately the middle of the concurrency ladder: more
// permissive than parallel.Locked (readers share), less than
// rcu.Demuxer (an RWMutex still bounces its reader count between CPUs).
// What the flat disciplines buy back is the probe itself — one or two
// contiguous probe groups instead of a chain walk — and the batch
// prefetch pipeline, which amortizes both the lock acquisition and the
// memory latency across a train. It satisfies
// parallel.ConcurrentDemuxer, snapshot contract included.
type Concurrent struct {
	mu    sync.RWMutex
	t     Table
	stats stripestat.Stripes
}

// NewConcurrent wraps a flat table (Hopscotch or Cuckoo). The wrapped
// table must not be used directly afterwards.
func NewConcurrent(t Table) *Concurrent {
	c := &Concurrent{t: t}
	c.stats.Init()
	return c
}

// Name implements parallel.ConcurrentDemuxer; the wrapper is transparent
// in reports, like the inner tables' own names.
func (c *Concurrent) Name() string { return c.t.Name() }

// Insert implements parallel.ConcurrentDemuxer.
func (c *Concurrent) Insert(p *core.PCB) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Insert(p)
}

// Remove implements parallel.ConcurrentDemuxer.
func (c *Concurrent) Remove(k core.Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Remove(k)
}

// Lookup implements parallel.ConcurrentDemuxer: a raw probe under the
// read lock, folded into the wrapper's stripes outside it.
//
//demux:hotpath
func (c *Concurrent) Lookup(k core.Key, dir core.Direction) core.Result {
	c.mu.RLock()
	r := c.t.LookupRaw(k, dir)
	c.mu.RUnlock()
	c.stats.Record(r)
	return r
}

// LookupBatch implements parallel.ConcurrentDemuxer: the whole train
// resolves under one read-lock acquisition with the prefetch pipeline
// running, and the batch's statistics fold into a stripe with one set of
// atomic adds. Results and statistics are identical to per-key Lookup.
//
//demux:hotpath
func (c *Concurrent) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out = ensureOut(out, len(keys))
	c.mu.RLock()
	out, st := c.t.lookupBatch(keys, dir, out)
	c.mu.RUnlock()
	c.stats.RecordBatch(st)
	return out
}

// SetPrefetchDepth adjusts the inner table's batch pipeline depth. It
// takes the write lock: depth is read by in-flight batches.
func (c *Concurrent) SetPrefetchDepth(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t.SetPrefetchDepth(k)
}

// PrefetchDepth returns the inner table's batch pipeline depth.
func (c *Concurrent) PrefetchDepth() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.PrefetchDepth()
}

// NotifySend implements parallel.ConcurrentDemuxer; the flat tables
// ignore transmissions.
func (c *Concurrent) NotifySend(*core.PCB) {}

// Len implements parallel.ConcurrentDemuxer.
func (c *Concurrent) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Len()
}

// Snapshot implements parallel.ConcurrentDemuxer, folding the stripes.
func (c *Concurrent) Snapshot() core.Stats { return c.stats.Fold() }

// Walk implements parallel.ConcurrentDemuxer under the read lock; fn
// must not call back into the demuxer.
func (c *Concurrent) Walk(fn func(*core.PCB) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.Walk(fn)
}
