package flat

import (
	"sync"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
)

// buildPair populates two identical instances of one variant (one will
// run per-packet lookups, the other batched) plus the packet stream:
// exact hits, listener hits, repeats, and total misses.
func buildPair(t *testing.T, mk func() Table) (per, bat Table, stream []core.Key) {
	t.Helper()
	per, bat = mk(), mk()
	src := rng.New(7)
	const conns = 900
	// The same PCB objects go into both instances so Results compare
	// pointer-for-pointer.
	for i := 0; i < conns; i++ {
		p := core.NewPCB(connKey(i))
		for _, d := range []Table{per, bat} {
			if err := d.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	l := core.NewListenPCB(core.ListenKey(connKey(0).LocalAddr, 80))
	for _, d := range []Table{per, bat} {
		if err := d.Insert(l); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		switch src.Intn(10) {
		case 0: // miss on another port
			k := connKey(src.Intn(conns))
			k.LocalPort = 9999
			stream = append(stream, k)
		case 1: // listener hit: right port, unknown remote
			stream = append(stream, connKey(conns+src.Intn(conns)))
		default: // exact hit, Zipf-ish repeats
			stream = append(stream, connKey(src.Intn(conns)))
		}
	}
	return per, bat, stream
}

// TestBatchMatchesPerPacket is the package-local twin of the
// cross-discipline batch conformance test: for every variant, every
// batch size and every prefetch depth (including 0, the pipeline off),
// LookupBatch's Result sequence and folded statistics must be identical
// to per-packet Lookup.
func TestBatchMatchesPerPacket(t *testing.T) {
	makers := map[string]func() Table{
		"flat-hopscotch": func() Table { return NewHopscotch(0, nil) },
		"flat-cuckoo":    func() Table { return NewCuckoo(0, nil) },
	}
	type batcher interface {
		LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result
	}
	for name, mk := range makers {
		for _, depth := range []int{0, 1, 2, 4, 8, 16} {
			t.Run(name, func(t *testing.T) {
				per, bat, stream := buildPair(t, mk)
				bat.SetPrefetchDepth(depth)
				if bat.PrefetchDepth() != depth {
					t.Fatalf("PrefetchDepth=%d want %d", bat.PrefetchDepth(), depth)
				}
				var out []core.Result
				for _, size := range []int{1, 3, 16, 64, 257} {
					for lo := 0; lo < len(stream); lo += size {
						hi := lo + size
						if hi > len(stream) {
							hi = len(stream)
						}
						out = bat.(batcher).LookupBatch(stream[lo:hi], core.DirData, out)
						for i, k := range stream[lo:hi] {
							want := per.Lookup(k, core.DirData)
							if out[i] != want {
								t.Fatalf("depth %d size %d key %d: batch %+v, per-packet %+v",
									depth, size, lo+i, out[i], want)
							}
						}
					}
				}
				if ps, bs := *per.Stats(), *bat.Stats(); ps != bs {
					t.Fatalf("depth %d: stats diverge: per-packet %+v, batch %+v", depth, ps, bs)
				}
			})
		}
	}
}

// TestBatchEdgeCases: empty batches, nil out, and out reuse when
// capacity suffices.
func TestBatchEdgeCases(t *testing.T) {
	d := NewHopscotch(0, nil)
	if err := d.Insert(core.NewPCB(connKey(1))); err != nil {
		t.Fatal(err)
	}
	out := d.LookupBatch(nil, core.DirData, nil)
	if len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	big := make([]core.Result, 64)
	out = d.LookupBatch([]core.Key{connKey(1)}, core.DirData, big)
	if len(out) != 1 || &out[0] != &big[:1][0] {
		t.Fatal("batch did not reuse caller's buffer")
	}
	if out[0].PCB == nil {
		t.Fatal("batch missed an inserted key")
	}
}

// TestConcurrentWrapper checks the RWMutex wrapper end to end: results
// against the raw table, snapshot equality between the per-packet and
// batched paths, and Len/Walk/NotifySend passthrough.
func TestConcurrentWrapper(t *testing.T) {
	for _, mk := range []func() Table{
		func() Table { return NewHopscotch(0, nil) },
		func() Table { return NewCuckoo(0, nil) },
	} {
		per, bat, stream := buildPair(t, mk)
		cper, cbat := NewConcurrent(per), NewConcurrent(bat)
		var out []core.Result
		for lo := 0; lo < len(stream); lo += 32 {
			hi := lo + 32
			if hi > len(stream) {
				hi = len(stream)
			}
			out = cbat.LookupBatch(stream[lo:hi], core.DirData, out)
			for i, k := range stream[lo:hi] {
				if want := cper.Lookup(k, core.DirData); out[i] != want {
					t.Fatalf("%s: concurrent batch diverges at %d: %+v vs %+v",
						cper.Name(), lo+i, out[i], want)
				}
			}
		}
		if ps, bs := cper.Snapshot(), cbat.Snapshot(); ps != bs {
			t.Fatalf("%s: snapshots diverge: %+v vs %+v", cper.Name(), ps, bs)
		}
		if cper.Snapshot().Lookups != uint64(len(stream)) {
			t.Fatalf("%s: snapshot lookups=%d want %d", cper.Name(), cper.Snapshot().Lookups, len(stream))
		}
		// The inner table's own stats must stay untouched under the wrapper.
		if st := *per.Stats(); st.Lookups != 0 {
			t.Fatalf("%s: inner stats leaked: %+v", cper.Name(), st)
		}
		if cper.Len() != per.Len() {
			t.Fatalf("Len passthrough broken")
		}
	}
}

// TestConcurrentReaders is the -race smoke: concurrent batched and
// per-packet readers against a writer churning inserts/removes and a
// snapshotter, on both variants.
func TestConcurrentReaders(t *testing.T) {
	for _, mk := range []func() Table{
		func() Table { return NewHopscotch(0, nil) },
		func() Table { return NewCuckoo(0, nil) },
	} {
		c := NewConcurrent(mk())
		const conns = 512
		for i := 0; i < conns; i++ {
			if err := c.Insert(core.NewPCB(connKey(i))); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		const perReader = 1500
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				src := rng.New(seed)
				keys := make([]core.Key, 16)
				var out []core.Result
				for n := 0; n < perReader; n++ {
					if src.Intn(2) == 0 {
						for i := range keys {
							keys[i] = connKey(src.Intn(conns))
						}
						out = c.LookupBatch(keys, core.DirData, out)
						if len(out) != len(keys) {
							panic("short batch")
						}
					} else {
						c.Lookup(connKey(src.Intn(conns)), core.DirAck)
					}
				}
			}(uint64(g + 1))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := rng.New(99)
			for i := 0; i < 4000; i++ {
				k := connKey(conns + src.Intn(conns))
				if src.Intn(2) == 0 {
					_ = c.Insert(core.NewPCB(k))
				} else {
					c.Remove(k)
				}
				if i%64 == 0 {
					c.Snapshot()
					c.Len()
				}
			}
		}()
		wg.Wait()
		st := c.Snapshot()
		// Every reader iteration recorded at least one lookup; readers
		// never probed churn keys, so hits stay zero and totals balance.
		if st.Lookups < 4*perReader || st.Hits != 0 {
			t.Fatalf("implausible snapshot %+v", st)
		}
	}
}
