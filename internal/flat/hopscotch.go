package flat

import (
	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
)

// hopRange is the hopscotch neighborhood H: every key lives within H
// slots of its home slot, so a lookup scans one contiguous H-entry
// window — at 24 bytes per entry, 192 bytes spanning at most four cache
// lines, usually two or three.
const hopRange = 8

// Hopscotch is an open-addressing demultiplexer with hopscotch hashing
// [Herlihy, Shavit & Tzafrir 2008]: linear probing's contiguous scan,
// but with every key guaranteed to sit within hopRange slots of its
// home. Insertion displaces entries backward toward their own homes to
// open a slot inside the neighborhood; when it cannot, the table doubles.
// Lookups therefore probe exactly one bounded window regardless of load,
// which is what makes the batch prefetch pipeline effective: one
// prefetch covers everything packet i+k's resolution will touch.
//
// The table slice carries hopRange-1 spillover slots past the last home
// so no window ever wraps — windows are always one contiguous range.
//
// Not safe for concurrent use; wrap in Concurrent for that.
type Hopscotch struct {
	tableCommon
	entries []entry // len = size + hopRange - 1
	mask    uint32  // size - 1; home = hash & mask
	size    int
}

// NewHopscotch builds a hopscotch demultiplexer sized for about capacity
// connections (a small default if <= 0) and the given hash function
// (multiplicative if nil). The table grows itself; capacity is only the
// initial sizing hint.
func NewHopscotch(capacity int, fn hashfn.Func) *Hopscotch {
	t := &Hopscotch{}
	t.init(fn)
	t.sizeTo(roundPow2(capacity, 32))
	return t
}

// sizeTo (re)allocates the table at the given power-of-two size.
func (t *Hopscotch) sizeTo(size int) {
	t.size = size
	t.mask = uint32(size - 1)
	t.entries = make([]entry, size+hopRange-1)
}

// Name implements core.Demuxer.
func (t *Hopscotch) Name() string { return "flat-hopscotch" }

// window returns the probe window for hash h: the hopRange contiguous
// entries starting at h's home slot. Every live key with this home is in
// here — the hopscotch invariant.
//
//demux:hotpath
func (t *Hopscotch) window(h uint32) []entry {
	home := int(h & t.mask)
	return t.entries[home : home+hopRange : home+hopRange]
}

// lookupHashed resolves one packet key whose hash is already computed —
// the shared probe behind the per-packet and batched paths, so their
// results and examination accounting are identical by construction.
// Occupied cells probed count as examined (empty cells are free to skip
// over — no PCB is touched); a full-window miss falls through to the
// listener scan.
//
//demux:hotpath
func (t *Hopscotch) lookupHashed(k core.Key, h uint32) core.Result {
	var r core.Result
	w := t.window(h)
	for i := range w {
		if w[i].slot == 0 {
			continue
		}
		r.Examined++
		if w[i].hash == h && w[i].key == k {
			r.PCB = t.slab.at(w[i].slot-1, w[i].gen)
			return r
		}
	}
	t.listenScan(k, &r)
	return r
}

// Lookup implements core.Demuxer.
//
//demux:hotpath
func (t *Hopscotch) Lookup(k core.Key, _ core.Direction) core.Result {
	r := t.lookupHashed(k, t.hashOf(k))
	t.record(r)
	return r
}

// LookupRaw implements Table: Lookup without the statistics fold.
//
//demux:hotpath
func (t *Hopscotch) LookupRaw(k core.Key, _ core.Direction) core.Result {
	return t.lookupHashed(k, t.hashOf(k))
}

// Insert implements core.Demuxer. Wildcard keys register listeners;
// exact keys are placed within their home window, displacing neighbors
// or doubling the table as needed.
func (t *Hopscotch) Insert(p *core.PCB) error {
	if p.Key.IsWildcard() {
		return t.listenInsert(p)
	}
	h := t.hashOf(p.Key)
	w := t.window(h)
	for i := range w {
		if w[i].slot != 0 && w[i].hash == h && w[i].key == p.Key {
			return core.ErrDuplicateKey
		}
	}
	idx, gen := t.slab.alloc(p)
	e := entry{key: p.Key, hash: h, slot: idx + 1, gen: gen}
	// Grow ahead of the load wall: past ~7/8 occupancy displacement
	// chains lengthen and windows fill, which costs lookups (more
	// occupied cells per window) before it costs inserts.
	if 8*(t.n+1) > 7*t.size {
		t.grow()
	}
	for !t.place(e) {
		t.grow()
	}
	t.n++
	return nil
}

// place tries to put e into its home window, hopscotch-displacing
// entries to open a slot if needed. It reports failure (caller grows)
// rather than growing itself so the rebuild path can reuse it.
func (t *Hopscotch) place(e entry) bool {
	home := int(e.hash & t.mask)
	// Find the first free slot at or after home.
	free := -1
	for i := home; i < len(t.entries); i++ {
		if t.entries[i].slot == 0 {
			free = i
			break
		}
	}
	if free < 0 {
		return false
	}
	// Hop the free slot backward until it is inside e's window: find an
	// entry below it whose own window still covers the free slot, move
	// it up, and continue from its old position.
	for free >= home+hopRange {
		moved := false
		for j := free - hopRange + 1; j < free; j++ {
			if t.entries[j].slot == 0 {
				continue
			}
			if int(t.entries[j].hash&t.mask)+hopRange > free {
				t.entries[free] = t.entries[j]
				t.entries[j] = entry{}
				free = j
				moved = true
				break
			}
		}
		if !moved {
			return false
		}
	}
	t.entries[free] = e
	return true
}

// grow doubles the table (again if a pathological rebuild still cannot
// place some entry) and re-places every live entry against the new mask.
// Entries carry their full hash, so no key is rehashed.
func (t *Hopscotch) grow() {
	old := t.entries
	size := t.size
	for {
		size *= 2
		t.sizeTo(size)
		ok := true
		for i := range old {
			if old[i].slot == 0 {
				continue
			}
			if !t.place(old[i]) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
}

// Remove implements core.Demuxer. The emptied cell needs no tombstone —
// lookups scan the whole window regardless — and the PCB's slab cell is
// recycled with its generation bumped.
func (t *Hopscotch) Remove(k core.Key) bool {
	if k.IsWildcard() {
		return t.listenRemove(k)
	}
	h := t.hashOf(k)
	home := int(h & t.mask)
	for i := home; i < home+hopRange; i++ {
		if t.entries[i].slot != 0 && t.entries[i].hash == h && t.entries[i].key == k {
			t.slab.release(t.entries[i].slot - 1)
			t.entries[i] = entry{}
			t.n--
			return true
		}
	}
	return false
}

// Walk implements core.Demuxer: table cells in slot order, then
// listeners — deterministic for a given operation history.
func (t *Hopscotch) Walk(fn func(*core.PCB) bool) {
	for i := range t.entries {
		if t.entries[i].slot == 0 {
			continue
		}
		if p := t.slab.at(t.entries[i].slot-1, t.entries[i].gen); p != nil {
			if !fn(p) {
				return
			}
		}
	}
	t.listenWalk(fn)
}

// TableSize returns the current home-slot count (power of two), exposed
// for the cache-model estimator and tests.
func (t *Hopscotch) TableSize() int { return t.size }

func init() {
	core.Register("flat-hopscotch", func(c core.Config) core.Demuxer {
		return NewHopscotch(0, c.Hash)
	})
}

var _ Table = (*Hopscotch)(nil)
