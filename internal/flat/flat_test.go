package flat

import (
	"testing"
	"unsafe"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// tables builds one fresh instance of each open-addressing variant,
// deliberately tiny so churn tests cross several growth doublings.
func tables() []Table {
	return []Table{NewHopscotch(0, nil), NewCuckoo(0, nil)}
}

func connKey(i int) core.Key {
	return core.Key{
		LocalAddr:  wire.MakeAddr(10, 0, 0, 1),
		LocalPort:  80,
		RemoteAddr: wire.MakeAddr(192, 168, byte(i>>8), byte(i)),
		RemotePort: uint16(1024 + i%40000),
	}
}

func TestEntryIs24Bytes(t *testing.T) {
	if s := unsafe.Sizeof(entry{}); s != entryBytes {
		t.Fatalf("entry is %d bytes, want %d", s, entryBytes)
	}
}

// TestOracleChurn drives both tables through an insert/lookup/remove
// churn long enough to force several growth doublings, slab-cell reuse
// and (for cuckoo) kick chains, checking every lookup against a map
// oracle.
func TestOracleChurn(t *testing.T) {
	for _, d := range tables() {
		t.Run(d.Name(), func(t *testing.T) {
			src := rng.New(42)
			oracle := make(map[core.Key]*core.PCB)
			live := make([]core.Key, 0, 4096)
			const keyspace = 3000
			for op := 0; op < 60000; op++ {
				i := src.Intn(keyspace)
				k := connKey(i)
				switch src.Intn(4) {
				case 0: // insert
					p := core.NewPCB(k)
					err := d.Insert(p)
					if _, dup := oracle[k]; dup {
						if err != core.ErrDuplicateKey {
							t.Fatalf("op %d: duplicate insert of %v: err=%v", op, k, err)
						}
					} else {
						if err != nil {
							t.Fatalf("op %d: insert %v: %v", op, k, err)
						}
						oracle[k] = p
						live = append(live, k)
					}
				case 1: // remove
					removed := d.Remove(k)
					if _, ok := oracle[k]; ok != removed {
						t.Fatalf("op %d: remove %v = %v, oracle has=%v", op, k, removed, ok)
					}
					delete(oracle, k)
				default: // lookup (twice as likely, read-mostly like the workload)
					r := d.Lookup(k, core.DirData)
					if want := oracle[k]; r.PCB != want {
						t.Fatalf("op %d: lookup %v = %p, want %p", op, k, r.PCB, want)
					}
					if r.PCB != nil && (r.Wildcard || r.Examined < 1) {
						t.Fatalf("op %d: exact hit flagged wildcard=%v examined=%d", op, r.Wildcard, r.Examined)
					}
					if r.CacheHit {
						t.Fatalf("op %d: flat tables have no one-entry cache", op)
					}
				}
				if d.Len() != len(oracle) {
					t.Fatalf("op %d: Len=%d oracle=%d", op, d.Len(), len(oracle))
				}
			}
			// Every surviving key resolves; every dead key misses.
			for _, k := range live {
				r := d.Lookup(k, core.DirAck)
				if r.PCB != oracle[k] {
					t.Fatalf("final lookup %v = %p, want %p", k, r.PCB, oracle[k])
				}
			}
			st := d.Stats()
			if st.Hits != 0 {
				t.Fatalf("flat table recorded %d cache hits", st.Hits)
			}
			if st.Lookups == 0 || st.Examined == 0 {
				t.Fatalf("statistics not recorded: %+v", st)
			}
		})
	}
}

// TestBoundedProbes pins the structural guarantee the probe-group layout
// exists for: a fully populated table still examines at most hopRange
// (hopscotch) or 2*bucketSlots (cuckoo) cells on an exact hit.
func TestBoundedProbes(t *testing.T) {
	bounds := map[string]int{
		"flat-hopscotch": hopRange,
		"flat-cuckoo":    2 * bucketSlots,
	}
	for _, d := range tables() {
		t.Run(d.Name(), func(t *testing.T) {
			const n = 20000
			for i := 0; i < n; i++ {
				if err := d.Insert(core.NewPCB(connKey(i))); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			bound := bounds[d.Name()]
			for i := 0; i < n; i++ {
				r := d.Lookup(connKey(i), core.DirData)
				if r.PCB == nil {
					t.Fatalf("lookup %d missed", i)
				}
				if r.Examined > bound {
					t.Fatalf("lookup %d examined %d cells, bound %d", i, r.Examined, bound)
				}
			}
			if max := d.Stats().MaxExamined; max > bound {
				t.Fatalf("MaxExamined=%d exceeds bound %d", max, bound)
			}
		})
	}
}

// TestGenerationGuard exercises slab-cell reuse: after a remove, the
// freed cell is recycled by the next insert, and the generation bump
// must keep any stale reference from resolving.
func TestGenerationGuard(t *testing.T) {
	for _, d := range tables() {
		t.Run(d.Name(), func(t *testing.T) {
			a, b := connKey(1), connKey(2)
			pa := core.NewPCB(a)
			if err := d.Insert(pa); err != nil {
				t.Fatal(err)
			}
			if !d.Remove(a) {
				t.Fatal("remove failed")
			}
			pb := core.NewPCB(b)
			if err := d.Insert(pb); err != nil {
				t.Fatal(err)
			}
			if r := d.Lookup(a, core.DirData); r.PCB != nil {
				t.Fatalf("removed key resolved to %v", r.PCB.Key)
			}
			if r := d.Lookup(b, core.DirData); r.PCB != pb {
				t.Fatalf("reused slab cell did not resolve to new PCB")
			}
			// Reinsert the removed key: a fresh PCB, found under the new
			// generation.
			pa2 := core.NewPCB(a)
			if err := d.Insert(pa2); err != nil {
				t.Fatal(err)
			}
			if r := d.Lookup(a, core.DirData); r.PCB != pa2 {
				t.Fatalf("reinserted key resolved to %p, want %p", r.PCB, pa2)
			}
		})
	}
}

// TestListeners checks the wildcard path: scoring, specificity
// precedence, miss accounting and listener removal — same semantics as
// the chained disciplines.
func TestListeners(t *testing.T) {
	for _, d := range tables() {
		t.Run(d.Name(), func(t *testing.T) {
			anyIf := core.NewListenPCB(core.ListenKey(wire.Addr{}, 80))
			oneIf := core.NewListenPCB(core.ListenKey(wire.MakeAddr(10, 0, 0, 1), 80))
			if err := d.Insert(anyIf); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(oneIf); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(core.NewListenPCB(oneIf.Key)); err != core.ErrDuplicateKey {
				t.Fatalf("duplicate listener: %v", err)
			}
			k := connKey(7)
			r := d.Lookup(k, core.DirData)
			if r.PCB != oneIf || !r.Wildcard {
				t.Fatalf("want specific listener, got %+v", r)
			}
			// An established connection shadows the listeners.
			p := core.NewPCB(k)
			if err := d.Insert(p); err != nil {
				t.Fatal(err)
			}
			if r := d.Lookup(k, core.DirData); r.PCB != p || r.Wildcard {
				t.Fatalf("exact match did not shadow listener: %+v", r)
			}
			// Local port must match: a packet for another port misses both.
			other := k
			other.LocalPort = 81
			if r := d.Lookup(other, core.DirData); r.PCB != nil {
				t.Fatalf("port 81 resolved to %v", r.PCB.Key)
			}
			if d.Stats().Misses != 1 {
				t.Fatalf("miss not recorded: %+v", d.Stats())
			}
			if !d.Remove(oneIf.Key) || !d.Remove(anyIf.Key) {
				t.Fatal("listener removal failed")
			}
			if d.Len() != 1 {
				t.Fatalf("Len=%d after listener removal", d.Len())
			}
		})
	}
}

// TestWalk checks Walk coverage (every live PCB exactly once, listeners
// included) and early termination.
func TestWalk(t *testing.T) {
	for _, d := range tables() {
		t.Run(d.Name(), func(t *testing.T) {
			want := make(map[*core.PCB]bool)
			for i := 0; i < 500; i++ {
				p := core.NewPCB(connKey(i))
				if err := d.Insert(p); err != nil {
					t.Fatal(err)
				}
				want[p] = false
			}
			l := core.NewListenPCB(core.ListenKey(wire.MakeAddr(10, 0, 0, 1), 80))
			if err := d.Insert(l); err != nil {
				t.Fatal(err)
			}
			want[l] = false
			for i := 0; i < 250; i++ {
				if !d.Remove(connKey(i)) {
					t.Fatal("remove failed")
				}
			}
			seen := 0
			d.Walk(func(p *core.PCB) bool {
				visited, ok := want[p]
				if !ok && p.Key.IsWildcard() == false {
					// Removed PCBs must not appear.
					for i := 0; i < 250; i++ {
						if p.Key == connKey(i) {
							t.Fatalf("walk visited removed PCB %v", p.Key)
						}
					}
				}
				if visited {
					t.Fatalf("walk visited %v twice", p.Key)
				}
				want[p] = true
				seen++
				return true
			})
			if seen != d.Len() {
				t.Fatalf("walk visited %d PCBs, Len=%d", seen, d.Len())
			}
			n := 0
			d.Walk(func(*core.PCB) bool { n++; return false })
			if n != 1 {
				t.Fatalf("early-terminated walk visited %d", n)
			}
		})
	}
}

// TestRegistry checks that both variants are reachable through core's
// name registry (registered from this package's init).
func TestRegistry(t *testing.T) {
	for _, name := range []string{"flat-hopscotch", "flat-cuckoo"} {
		d, err := core.New(name, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != name {
			t.Fatalf("Name=%q want %q", d.Name(), name)
		}
	}
}

// FuzzFlatOps feeds a byte-coded operation stream to both tables and
// cross-checks every lookup against a map oracle — the fuzz-shaped twin
// of TestOracleChurn, minus the determinism of its fixed seed.
func FuzzFlatOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 1, 1, 2, 2})
	f.Add([]byte{0, 10, 0, 11, 0, 12, 1, 10, 0, 13, 2, 11})
	f.Fuzz(func(t *testing.T, ops []byte) {
		for _, d := range tables() {
			oracle := make(map[core.Key]*core.PCB)
			for i := 0; i+1 < len(ops); i += 2 {
				k := connKey(int(ops[i+1]))
				switch ops[i] % 3 {
				case 0:
					p := core.NewPCB(k)
					err := d.Insert(p)
					if _, dup := oracle[k]; dup {
						if err != core.ErrDuplicateKey {
							t.Fatalf("%s: dup insert err=%v", d.Name(), err)
						}
					} else if err != nil {
						t.Fatalf("%s: insert: %v", d.Name(), err)
					} else {
						oracle[k] = p
					}
				case 1:
					removed := d.Remove(k)
					if _, ok := oracle[k]; ok != removed {
						t.Fatalf("%s: remove=%v oracle=%v", d.Name(), removed, ok)
					}
					delete(oracle, k)
				case 2:
					if r := d.Lookup(k, core.DirData); r.PCB != oracle[k] {
						t.Fatalf("%s: lookup %v = %p, want %p", d.Name(), k, r.PCB, oracle[k])
					}
				}
				if d.Len() != len(oracle) {
					t.Fatalf("%s: Len=%d oracle=%d", d.Name(), d.Len(), len(oracle))
				}
			}
		}
	})
}
