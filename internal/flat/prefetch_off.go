//go:build flat_noprefetch

package flat

// prefetchSpan is the no-op variant selected by -tags flat_noprefetch:
// the batch pipeline still precomputes hashes and runs the same loop,
// but issues no early loads. Benchmarking with and without the tag
// isolates the prefetch contribution from the rest of the batch path.
//
//demux:hotpath
func prefetchSpan(group []entry, sink *uint64) {}
