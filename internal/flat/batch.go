package flat

import (
	"tcpdemux/internal/core"
	"tcpdemux/internal/stripestat"
)

// This file is the software-pipelined batch lookup path. The per-packet
// path resolves a packet and only then computes the next packet's hash —
// so every probe-group load sits on the critical path, and the CPU
// stalls for the full memory latency of any group not already cached.
// The batch path breaks that serialization the way Jiang et al.'s
// pipelined hash tables do (PAPERS.md): pass 1 hashes the whole train
// (pure arithmetic, no memory dependence), then the resolution loop
// issues a prefetch for the probe group packet i+k will need before
// resolving packet i. By the time the pipeline reaches packet i+k its
// window is (ideally) already in cache, overlapping k resolutions with
// each group's memory latency.
//
// The contract mirrors rcu.Demuxer.LookupBatch exactly: the Result
// sequence and the statistics it folds are identical to calling Lookup
// once per key in order — the cross-discipline batch conformance test
// asserts this byte for byte, and it holds by construction because both
// paths resolve through the same lookupHashed.

// ensureOut grows the caller's result buffer to n results when needed.
//
//demux:hotpath
func ensureOut(out []core.Result, n int) []core.Result {
	if cap(out) < n {
		out = make([]core.Result, n) //demux:allowalloc amortized: grows the caller-owned result buffer once, then reused across trains
	}
	return out[:n]
}

// lookupBatch implements Table for Hopscotch: resolve the train with the
// probe pipeline, accumulating statistics batch-locally for the caller
// to fold.
//
//demux:hotpath
func (t *Hopscotch) lookupBatch(keys []core.Key, dir core.Direction, out []core.Result) ([]core.Result, core.Stats) {
	out = ensureOut(out, len(keys))
	var st core.Stats
	if len(keys) == 0 {
		return out, st
	}
	s := t.scratchFor(len(keys))
	for i, k := range keys {
		s.hash[i] = t.hashOf(k)
	}
	d := t.depth
	for i := range keys {
		if j := i + d; d > 0 && j < len(keys) {
			prefetchSpan(t.window(s.hash[j]), &s.sink)
		}
		r := t.lookupHashed(keys[i], s.hash[i])
		stripestat.Accumulate(&st, r)
		out[i] = r
	}
	t.releaseScratch(s)
	return out, st
}

// LookupBatch demultiplexes a train of inbound keys in one call,
// returning one Result per key in key order, with the probe group for
// packet i+k prefetched while packet i resolves (k = PrefetchDepth; 0
// disables the pipeline). Results and statistics are identical to
// calling Lookup once per key. out is reused when it has capacity.
//
//demux:hotpath
func (t *Hopscotch) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out, st := t.lookupBatch(keys, dir, out)
	t.merge(st)
	return out
}

// lookupBatch implements Table for Cuckoo. The pipeline prefetches the
// first candidate bucket — the bucket that terminates the probe for
// every present key that has not been kicked, i.e. most of them.
//
//demux:hotpath
func (t *Cuckoo) lookupBatch(keys []core.Key, dir core.Direction, out []core.Result) ([]core.Result, core.Stats) {
	out = ensureOut(out, len(keys))
	var st core.Stats
	if len(keys) == 0 {
		return out, st
	}
	s := t.scratchFor(len(keys))
	for i, k := range keys {
		s.hash[i] = t.hashOf(k)
	}
	d := t.depth
	for i := range keys {
		if j := i + d; d > 0 && j < len(keys) {
			prefetchSpan(t.bucket(s.hash[j]&t.mask), &s.sink)
		}
		r := t.lookupHashed(keys[i], s.hash[i])
		stripestat.Accumulate(&st, r)
		out[i] = r
	}
	t.releaseScratch(s)
	return out, st
}

// LookupBatch demultiplexes a train of inbound keys in one call — see
// Hopscotch.LookupBatch for the contract; the cuckoo pipeline prefetches
// each key's first candidate bucket.
//
//demux:hotpath
func (t *Cuckoo) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out, st := t.lookupBatch(keys, dir, out)
	t.merge(st)
	return out
}
