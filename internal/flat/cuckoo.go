package flat

import (
	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
)

const (
	// bucketSlots is the cuckoo bucket width. Four 24-byte entries are 96
	// bytes — a bucket straddles at most two cache lines, and the
	// four-way choice keeps insertion viable to ~95% load.
	bucketSlots = 4

	// maxKicks bounds the eviction chain before the insert gives up and
	// doubles the table. Generous: at sane loads chains are short, and a
	// long chain is itself the signal the table is too full.
	maxKicks = 128
)

// Cuckoo is an open-addressing demultiplexer with bucketized cuckoo
// hashing [Pagh & Rodler 2004; the 4-slot bucket form popularized by
// cuckoo filters]: every key has exactly two candidate buckets derived
// from its hash, so a lookup probes at most two 4-entry groups — a hard
// worst case of 8 occupied cells examined before the listener scan, no
// matter the load or the operation history. Insertion relocates ("kicks")
// entries between their two buckets to make room, doubling the table if
// an eviction chain runs too long.
//
// The alternate bucket is home XOR a nonzero odd mix of the hash, an
// involution computable from any entry in place — a kicked entry's other
// bucket needs no stored metadata beyond the hash fingerprint the entry
// already carries.
//
// Kick victims rotate through a deterministic counter (no randomness:
// demuxvet's seededrand rule and the repo's determinism discipline apply
// to table maintenance as much as to simulation). Not safe for
// concurrent use; wrap in Concurrent for that.
type Cuckoo struct {
	tableCommon
	entries []entry // len = nbuckets * bucketSlots, bucket-major
	mask    uint32  // nbuckets - 1
	kick    uint32  // round-robin victim-slot counter
}

// NewCuckoo builds a bucketized-cuckoo demultiplexer sized for about
// capacity connections (a small default if <= 0) and the given hash
// function (multiplicative if nil). The table grows itself; capacity is
// only the initial sizing hint.
func NewCuckoo(capacity int, fn hashfn.Func) *Cuckoo {
	t := &Cuckoo{}
	t.init(fn)
	t.sizeTo(roundPow2((capacity+bucketSlots-1)/bucketSlots, 8))
	return t
}

// sizeTo (re)allocates the table at the given power-of-two bucket count.
func (t *Cuckoo) sizeTo(nbuckets int) {
	t.mask = uint32(nbuckets - 1)
	t.entries = make([]entry, nbuckets*bucketSlots)
}

// Name implements core.Demuxer.
func (t *Cuckoo) Name() string { return "flat-cuckoo" }

// altBucket maps a bucket index to the key's other candidate bucket.
// The XOR'd term depends only on the hash and is forced odd, so the map
// is an involution (altBucket(altBucket(b)) == b) and never a fixed
// point (an odd value masked by nbuckets-1 keeps its set low bit, so the
// XOR always flips something).
//
//demux:hotpath
func (t *Cuckoo) altBucket(b, h uint32) uint32 {
	return b ^ (((h>>16)*0x5bd1e995)|1)&t.mask
}

// bucket returns bucket b's bucketSlots contiguous entries.
//
//demux:hotpath
func (t *Cuckoo) bucket(b uint32) []entry {
	i := int(b) * bucketSlots
	return t.entries[i : i+bucketSlots : i+bucketSlots]
}

// probe scans one bucket for (k, h), counting occupied cells into
// r.Examined. It reports whether the key was found (r.PCB set).
//
//demux:hotpath
func (t *Cuckoo) probe(bk []entry, k core.Key, h uint32, r *core.Result) bool {
	for i := range bk {
		if bk[i].slot == 0 {
			continue
		}
		r.Examined++
		if bk[i].hash == h && bk[i].key == k {
			r.PCB = t.slab.at(bk[i].slot-1, bk[i].gen)
			return true
		}
	}
	return false
}

// lookupHashed resolves one packet key whose hash is already computed —
// the shared probe behind the per-packet and batched paths. First
// candidate bucket, then the alternate, then the listener scan.
//
//demux:hotpath
func (t *Cuckoo) lookupHashed(k core.Key, h uint32) core.Result {
	var r core.Result
	b1 := h & t.mask
	if t.probe(t.bucket(b1), k, h, &r) {
		return r
	}
	if t.probe(t.bucket(t.altBucket(b1, h)), k, h, &r) {
		return r
	}
	t.listenScan(k, &r)
	return r
}

// Lookup implements core.Demuxer.
//
//demux:hotpath
func (t *Cuckoo) Lookup(k core.Key, _ core.Direction) core.Result {
	r := t.lookupHashed(k, t.hashOf(k))
	t.record(r)
	return r
}

// LookupRaw implements Table: Lookup without the statistics fold.
//
//demux:hotpath
func (t *Cuckoo) LookupRaw(k core.Key, _ core.Direction) core.Result {
	return t.lookupHashed(k, t.hashOf(k))
}

// Insert implements core.Demuxer. Wildcard keys register listeners;
// exact keys go into either candidate bucket, kicking residents along
// their alternate buckets — and doubling the table if a chain runs past
// maxKicks — until a slot opens.
func (t *Cuckoo) Insert(p *core.PCB) error {
	if p.Key.IsWildcard() {
		return t.listenInsert(p)
	}
	h := t.hashOf(p.Key)
	b1 := h & t.mask
	b2 := t.altBucket(b1, h)
	if t.contains(t.bucket(b1), p.Key, h) || t.contains(t.bucket(b2), p.Key, h) {
		return core.ErrDuplicateKey
	}
	idx, gen := t.slab.alloc(p)
	e := entry{key: p.Key, hash: h, slot: idx + 1, gen: gen}
	// Grow ahead of the load wall: past ~15/16 occupancy eviction chains
	// lengthen sharply.
	if 16*(t.n+1) > 15*len(t.entries) {
		t.grow()
	}
	for {
		// A failed place has still swapped entries along its kick chain:
		// the table holds everything except the returned homeless entry,
		// so after growing it is that entry — not the original — that
		// still needs a slot.
		homeless, ok := t.place(e)
		if ok {
			break
		}
		e = homeless
		t.grow()
	}
	t.n++
	return nil
}

// contains reports whether bucket bk holds exactly key k.
func (t *Cuckoo) contains(bk []entry, k core.Key, h uint32) bool {
	for i := range bk {
		if bk[i].slot != 0 && bk[i].hash == h && bk[i].key == k {
			return true
		}
	}
	return false
}

// place tries to insert e, kicking residents between their candidate
// buckets for at most maxKicks displacements. It reports failure (caller
// grows) rather than growing itself so the rebuild path can reuse it.
// On failure the kick chain's swaps have already happened; the returned
// entry is the one left homeless (the last evicted victim), which the
// caller must re-place after growing — retrying the original would
// duplicate it and lose the victim.
func (t *Cuckoo) place(e entry) (entry, bool) {
	b := e.hash & t.mask
	for kicks := 0; kicks <= maxKicks; kicks++ {
		bk := t.bucket(b)
		for i := range bk {
			if bk[i].slot == 0 {
				bk[i] = e
				return entry{}, true
			}
		}
		if kicks == maxKicks {
			break
		}
		// Bucket full: evict a rotating victim and continue from its
		// alternate bucket carrying the victim.
		v := &bk[t.kick%bucketSlots]
		t.kick++
		e, *v = *v, e
		b = t.altBucket(b, e.hash)
	}
	return e, false
}

// grow doubles the bucket count (again if a pathological rebuild still
// fails) and re-places every live entry against the new mask. Entries
// carry their full hash, so no key is rehashed.
func (t *Cuckoo) grow() {
	old := t.entries
	nbuckets := int(t.mask) + 1
	for {
		nbuckets *= 2
		t.sizeTo(nbuckets)
		ok := true
		for i := range old {
			if old[i].slot == 0 {
				continue
			}
			// The homeless entry of a failed rebuild needs no rescue: the
			// half-built table is discarded wholesale and every entry is
			// re-placed from the untouched old snapshot at the next size.
			if _, placed := t.place(old[i]); !placed {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
}

// Remove implements core.Demuxer: empty the cell (no tombstone — lookups
// probe both buckets regardless) and recycle the slab cell with its
// generation bumped.
func (t *Cuckoo) Remove(k core.Key) bool {
	if k.IsWildcard() {
		return t.listenRemove(k)
	}
	h := t.hashOf(k)
	b1 := h & t.mask
	if t.removeFrom(t.bucket(b1), k, h) || t.removeFrom(t.bucket(t.altBucket(b1, h)), k, h) {
		t.n--
		return true
	}
	return false
}

// removeFrom deletes exactly key k from one bucket if present.
func (t *Cuckoo) removeFrom(bk []entry, k core.Key, h uint32) bool {
	for i := range bk {
		if bk[i].slot != 0 && bk[i].hash == h && bk[i].key == k {
			t.slab.release(bk[i].slot - 1)
			bk[i] = entry{}
			return true
		}
	}
	return false
}

// Walk implements core.Demuxer: table cells in bucket order, then
// listeners — deterministic for a given operation history.
func (t *Cuckoo) Walk(fn func(*core.PCB) bool) {
	for i := range t.entries {
		if t.entries[i].slot == 0 {
			continue
		}
		if p := t.slab.at(t.entries[i].slot-1, t.entries[i].gen); p != nil {
			if !fn(p) {
				return
			}
		}
	}
	t.listenWalk(fn)
}

// NumBuckets returns the current bucket count (power of two), exposed
// for the cache-model estimator and tests.
func (t *Cuckoo) NumBuckets() int { return int(t.mask) + 1 }

func init() {
	core.Register("flat-cuckoo", func(c core.Config) core.Demuxer {
		return NewCuckoo(0, c.Hash)
	})
}

var _ Table = (*Cuckoo)(nil)
