package analytic

import (
	"errors"
	"math"
	"testing"
)

func TestSequentBinomialExceedsEvenChains(t *testing.T) {
	// Randomly hashed chains cost slightly more than perfectly balanced
	// ones; the gap should be well under one examination.
	p := paper200TPS(0.2, 0, 19)
	even, err := SequentTxn(p)
	if err != nil {
		t.Fatal(err)
	}
	binom, err := SequentBinomial(p)
	if err != nil {
		t.Fatal(err)
	}
	if binom <= even {
		t.Fatalf("binomial correction %v not above even-chain %v", binom, even)
	}
	if binom-even > 1 {
		t.Fatalf("correction too large: %v vs %v", binom, even)
	}
}

func TestSequentBinomialDegenerate(t *testing.T) {
	v, err := SequentBinomial(Params{N: 1, R: 0.2, H: 5})
	if err != nil || v != 1 {
		t.Fatalf("single PCB: %v, %v", v, err)
	}
	if _, err := SequentBinomial(Params{N: 10}); err != ErrNeedH {
		t.Fatalf("missing H: %v", err)
	}
}

func TestSequentWithImbalanceOrdering(t *testing.T) {
	p := paper200TPS(0.2, 0, 19)
	plain, err := Sequent(p)
	if err != nil {
		t.Fatal(err)
	}
	corrected, err := SequentWithImbalance(p)
	if err != nil {
		t.Fatal(err)
	}
	if corrected <= plain {
		t.Fatalf("imbalance-corrected %v not above plain %v", corrected, plain)
	}
	// The simulation measured 53.5 at these parameters; the corrected
	// model should sit between Eq 22 (53.0) and the measurement + noise.
	if corrected < 53.0 || corrected > 54.5 {
		t.Fatalf("corrected model %v outside plausible band", corrected)
	}
}

func TestChainsForTargetPaperExample(t *testing.T) {
	// §3.5: going from 19 to 100 chains drops the cost from 53 to < 9, so
	// the minimal H for a cost of 9 must be at most 100 and more than 51
	// (which yields 18.3).
	p := paper200TPS(0.2, 0, 0)
	h, err := ChainsForTarget(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 51 || h > 100 {
		t.Fatalf("H for cost 9 = %d, expected in (51, 100]", h)
	}
	// The returned H must actually meet the target, and H-1 must not.
	at := func(h int) float64 {
		v, err := Sequent(Params{N: 2000, R: 0.2, H: h})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if at(h) > 9 {
		t.Fatalf("cost at H=%d is %v > 9", h, at(h))
	}
	if at(h-1) <= 9 {
		t.Fatalf("H=%d is not minimal (H-1 gives %v)", h, at(h-1))
	}
}

func TestChainsForTargetBounds(t *testing.T) {
	p := paper200TPS(0.2, 0, 0)
	if _, err := ChainsForTarget(p, 0.5); !errors.Is(err, ErrUnreachableTarget) {
		t.Fatalf("sub-1 target: %v", err)
	}
	// A generous target is met by a single chain.
	h, err := ChainsForTarget(p, 2000)
	if err != nil || h != 1 {
		t.Fatalf("loose target: H=%d err=%v", h, err)
	}
	// Cost 1 is reachable at H = N (every chain holds at most one PCB).
	h, err = ChainsForTarget(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h > 2000 {
		t.Fatalf("H for cost 1 = %d", h)
	}
}

func TestMemoryForChains(t *testing.T) {
	if MemoryForChains(19, 16) != 304 {
		t.Fatal("19 chains at 16B should be 304B")
	}
	if MemoryForChains(-1, 16) != 0 || MemoryForChains(19, -1) != 0 {
		t.Fatal("negative inputs should yield 0")
	}
}

func TestCrowcroftEntryGeneralReproducesExponential(t *testing.T) {
	p := paper200TPS(0.5, 0, 0)
	a := DefaultRate
	f := func(t float64) float64 { return a * math.Exp(-a*t) }
	got, err := CrowcroftEntryGeneral(p, f, a)
	if err != nil {
		t.Fatal(err)
	}
	want := CrowcroftEntry(p)
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("general integrator %v vs closed form %v", got, want)
	}
}

func TestCrowcroftEntryGeneralUniformThink(t *testing.T) {
	// Uniform think time on [5, 15] (same 10 s mean): more regular than
	// exponential, so more users overtake between a given user's
	// transactions and the entry cost must exceed the exponential case,
	// approaching the deterministic worst case from below.
	p := paper200TPS(0.2, 0, 0)
	lo, hi := 5.0, 15.0
	f := func(t float64) float64 {
		if t < lo || t > hi {
			return 0
		}
		return 1 / (hi - lo)
	}
	// The density has bounded support; any positive decay bound works for
	// the tail transform since f vanishes beyond 15.
	got, err := CrowcroftEntryGeneral(p, f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	expCase := CrowcroftEntry(p)
	det := CrowcroftDeterministic(p.N)
	if got <= expCase || got >= det {
		t.Fatalf("uniform-think entry %v not between exponential %v and deterministic %v",
			got, expCase, det)
	}
}

func TestChainSweep(t *testing.T) {
	series, err := ChainSweep(paper200TPS(0.2, 0, 0), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) != 150 {
		t.Fatalf("series shape wrong: %d/%d", len(series), len(series[0].Points))
	}
	even := series[0].Points
	// Monotone non-increasing in H; pinned paper values at H=19 and 100.
	prev := math.Inf(1)
	for _, pt := range even {
		if pt.Y > prev+1e-9 {
			t.Fatalf("cost increased at H=%v", pt.X)
		}
		prev = pt.Y
	}
	if v := even[18].Y; math.Abs(v-53.0) > 0.1 {
		t.Fatalf("H=19 point = %v", v)
	}
	if v := even[99].Y; v >= 9 {
		t.Fatalf("H=100 point = %v", v)
	}
	// Binomial correction sits above the even-chain curve everywhere H<N.
	for i := range even {
		if series[1].Points[i].Y < even[i].Y {
			t.Fatalf("correction below even-chain model at H=%v", even[i].X)
		}
	}
}

func TestCrowcroftEntryRenewalRecoversPoisson(t *testing.T) {
	// With exponential survival the renewal form must land on Eq. 5's
	// closed form (within the documented <0.1% window approximation).
	p := paper200TPS(0.2, 0, 0)
	a := DefaultRate
	f := func(t float64) float64 { return a * math.Exp(-a*t) }
	got, err := CrowcroftEntryRenewal(p, f, StationarySurvivalExp(a), a)
	if err != nil {
		t.Fatal(err)
	}
	want := CrowcroftEntry(p)
	if math.Abs(got-want)/want > 0.002 {
		t.Fatalf("renewal-with-exp %v vs Eq 5 %v", got, want)
	}
}

func TestStationarySurvivalUniformShape(t *testing.T) {
	s := StationarySurvivalUniform(5, 15, 0.201)
	if v := s(0); math.Abs(v-1) > 1e-12 {
		t.Fatalf("S(0) = %v", v)
	}
	if v := s(20); v != 0 {
		t.Fatalf("S(beyond max) = %v", v)
	}
	// Monotone non-increasing.
	prev := 2.0
	for w := 0.0; w <= 16; w += 0.25 {
		v := s(w)
		if v > prev+1e-12 || v < 0 {
			t.Fatalf("survival not monotone at w=%v", w)
		}
		prev = v
	}
}

// TestRenewalModelSpansPaperEndpoints: the renewal generalization must
// recover both of the paper's §3.2 data points — exponential think times
// (Eq. 5) and deterministic think times (full scan) — from one formula.
func TestRenewalModelSpansPaperEndpoints(t *testing.T) {
	p := paper200TPS(0.2, 0.001, 0)
	a := DefaultRate

	// Exponential endpoint.
	fExp := func(tt float64) float64 { return a * math.Exp(-a*tt) }
	expCost, err := CrowcroftEntryRenewal(p, fExp, StationarySurvivalExp(a), a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(expCost-CrowcroftEntry(p))/CrowcroftEntry(p) > 0.002 {
		t.Fatalf("exponential endpoint %v vs Eq 5 %v", expCost, CrowcroftEntry(p))
	}

	// Near-deterministic endpoint: think uniform on [9.5, 10.5] against a
	// perfectly regular peer cycle of 10 + R + D seconds. (A true delta
	// density is invisible to quadrature; a unit-width needle approaches
	// the same limit.) The cost must land within ~2% of the full scan and
	// clearly above the exponential case.
	const c = 10.0
	fDet := func(tt float64) float64 {
		if tt < c-0.5 || tt > c+0.5 {
			return 0
		}
		return 1.0
	}
	detCost, err := CrowcroftEntryRenewal(p, fDet, StationarySurvivalConst(c+p.R+p.D), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := CrowcroftDeterministic(p.N)
	if detCost < 0.97*want || detCost > want {
		t.Fatalf("near-deterministic endpoint %v vs full scan %v", detCost, want)
	}
	if detCost < 1.5*expCost {
		t.Fatalf("regularity did not dominate: %v vs exponential %v", detCost, expCost)
	}
}
