// Package analytic implements the closed-form performance model of
// McKenney & Dove, "Efficient Demultiplexing of Incoming TCP Packets"
// (SQN TR92-01, 1992): the expected number of protocol control blocks (PCBs)
// examined per inbound packet for four demultiplexing algorithms driven by
// TPC/A-style traffic.
//
// Equation numbers in the comments refer to the paper. For each quantity
// the package provides the closed form the paper derives and, where the
// paper presents the expression as an integral or binomial sum (Eqs. 3, 5,
// 10, 13), a direct numerical evaluation of the literal form. Tests verify
// the two agree, and then that the closed forms reproduce every number the
// paper quotes.
//
// Conventions: the Crowcroft expressions follow the paper in reporting the
// expected number of PCBs *preceding* the target on the list (the paper
// calls this the "search length"); BSD, SR and Sequent expressions include
// the examined caches and the target itself, again following the paper.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"tcpdemux/internal/numeric"
)

// DefaultRate is the TPC/A per-user transaction rate: think times average
// at least ten seconds, so each user enters at most a = 0.1 transactions
// per second (paper §2, §3.2).
const DefaultRate = 0.1

// Params carries the model parameters shared by all four algorithms.
type Params struct {
	// N is the number of TPC/A users; the benchmark's scaling rules force
	// one TCP connection per user, so N is also the PCB population.
	N int
	// A is the per-user average transaction rate in transactions/second
	// (0.1 for TPC/A). Zero means DefaultRate.
	A float64
	// R is the transaction response time in seconds.
	R float64
	// D is the network round-trip delay in seconds (SR cache and train
	// analyses only).
	D float64
	// H is the number of hash chains (Sequent only).
	H int
}

// rate returns the effective per-user transaction rate.
func (p Params) rate() float64 {
	if p.A == 0 {
		return DefaultRate
	}
	return p.A
}

// Validate reports whether the parameters are in the model's domain.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("analytic: N = %d, need at least one user", p.N)
	case p.A < 0:
		return fmt.Errorf("analytic: negative rate %v", p.A)
	case p.R < 0:
		return fmt.Errorf("analytic: negative response time %v", p.R)
	case p.D < 0:
		return fmt.Errorf("analytic: negative round-trip %v", p.D)
	case p.H < 0:
		return fmt.Errorf("analytic: negative hash chain count %d", p.H)
	}
	return nil
}

// ErrNeedH is returned by Sequent expressions when H is zero.
var ErrNeedH = errors.New("analytic: Sequent model needs H >= 1 hash chains")

// ---------------------------------------------------------------------------
// §3.1 BSD: linear list with a one-entry cache.

// BSD returns the expected PCBs examined per packet for the BSD algorithm
// (Eq. 1):
//
//	C_BSD(N) = 1 + (N²-1)/(2N)
//
// One examination hits the cache with probability 1/N; a miss (probability
// (N-1)/N) scans (N+1)/2 further PCBs on average. Approaches N/2 for
// large N; 1001 for the paper's 2,000-user benchmark.
func BSD(n int) float64 {
	if n < 1 {
		return 0
	}
	nf := float64(n)
	return 1 + (nf*nf-1)/(2*nf)
}

// BSDHitRate returns the one-entry cache hit rate under TPC/A, 1/N
// (0.05% at N=2000, §3.1).
func BSDHitRate(n int) float64 {
	if n < 1 {
		return 0
	}
	return 1 / float64(n)
}

// BSDTrainProb returns the probability that the transaction packet and the
// later transport-level acknowledgement form a packet train — that no other
// user's packet arrives at the server during the response interval R
// (footnote 4): e^{-2aR(N-1)}, each of the other N-1 users generating
// server-bound packets at rate 2a (a transaction and an acknowledgement per
// cycle).
//
// At N=2000, R=0.2 this is ≈1.9×10⁻³⁵. (The scanned paper text reads
// "1.9×10⁻³"; the exponent lost its second digit in reproduction — footnote
// 4 calls the chance "indeed remote" and the §3.4 text requires the BSD
// value to be vastly below Sequent's 1.5%, both consistent only with
// 10⁻³⁵.)
func BSDTrainProb(p Params) float64 {
	if p.N <= 1 {
		return 1
	}
	return math.Exp(-2 * p.rate() * p.R * float64(p.N-1))
}

// ---------------------------------------------------------------------------
// §3.2 Crowcroft: linear list with move-to-front.

// NT returns N(T), the expected number of other users entering at least one
// transaction during an interval of length T (Eq. 3). The paper writes it
// as a binomial sum; the sum is the mean of a Binomial(N-1, 1-e^{-aT})
// distribution, so
//
//	N(T) = (N-1)·(1 - e^{-aT})
//
// This is the curve of Figure 4.
func NT(p Params, t float64) float64 {
	if p.N <= 1 || t <= 0 {
		return 0
	}
	return float64(p.N-1) * -math.Expm1(-p.rate()*t)
}

// NTSum evaluates Eq. 3 as the literal weighted binomial sum, term by term
// in log space. It exists to validate NT's closed form and to honor the
// paper's presentation; NT is what callers should use.
func NTSum(p Params, t float64) float64 {
	if p.N <= 1 || t <= 0 {
		return 0
	}
	prob := -math.Expm1(-p.rate() * t)
	return numeric.BinomialMean(p.N-1, prob)
}

// CrowcroftEntry returns the expected number of PCBs preceding a user's PCB
// when his transaction entry arrives (Eq. 5). Substituting the binomial
// mean into the two think-time integrals and integrating yields the closed
// form
//
//	E = (N-1)·(2/3 - e^{-3aR}/6)
//
// (1,019 / 1,045 / 1,086 / 1,150 PCBs for R = 0.2/0.5/1.0/2.0 s at
// N = 2000 — slightly worse than BSD's 1,001.)
func CrowcroftEntry(p Params) float64 {
	if p.N <= 1 {
		return 0
	}
	a := p.rate()
	return float64(p.N-1) * (2.0/3.0 - math.Exp(-3*a*p.R)/6)
}

// CrowcroftEntryIntegral evaluates Eq. 5 by direct quadrature of the two
// literal integrals:
//
//	∫_0^R a e^{-aT}·N(2T) dT  +  ∫_R^∞ a e^{-aT}·N(T+R) dT
//
// It exists as a cross-check on CrowcroftEntry.
func CrowcroftEntryIntegral(p Params) (float64, error) {
	if p.N <= 1 {
		return 0, nil
	}
	a := p.rate()
	inner := func(t float64) float64 { return a * math.Exp(-a*t) * NT(p, 2*t) }
	head, err := numeric.Integrate(inner, 0, p.R, 0)
	if err != nil {
		return 0, err
	}
	tailFn := func(t float64) float64 { return a * math.Exp(-a*t) * NT(p, t+p.R) }
	tail, err := numeric.IntegrateToInf(tailFn, p.R, a, 0)
	if err != nil {
		return 0, err
	}
	return head + tail, nil
}

// CrowcroftAck returns the expected PCBs preceding the target when the
// transport-level acknowledgement to the response arrives: N(2R), because
// transactions arriving in the R' interval before the response produce
// acknowledgements during R (Figure 7). 78 / 190 / 362 / 659 PCBs for
// R = 0.2/0.5/1.0/2.0 s at N = 2000.
func CrowcroftAck(p Params) float64 {
	return NT(p, 2*p.R)
}

// Crowcroft returns the overall expected search length for the
// move-to-front algorithm (Eq. 6): the average of the entry and
// acknowledgement costs, since half the inbound packets are each.
// 549 / 618 / 724 / 904 PCBs for R = 0.2/0.5/1.0/2.0 s at N = 2000.
func Crowcroft(p Params) float64 {
	return (CrowcroftEntry(p) + CrowcroftAck(p)) / 2
}

// CrowcroftDeterministic returns the search length when think times are
// deterministic rather than exponential (the point-of-sale polling scenario
// of §3.2): every other user cycles between any two of the given user's
// transactions, so each entry scans the full list of N-1 other PCBs.
func CrowcroftDeterministic(n int) float64 {
	if n < 1 {
		return 0
	}
	return float64(n - 1)
}

// ---------------------------------------------------------------------------
// §3.3 Partridge/Pink: last-sent/last-received cache.

// srHit is the cost when the cache survives: a single examination (both
// cache sides hold the target PCB). srMiss(N) is the miss cost: both cache
// entries plus half the chain, (N+5)/2.
func srMiss(n int) float64 { return (float64(n) + 5) / 2 }

// SRN1 returns N₁ (Eq. 11), the contribution from transaction receptions
// whose think time exceeds R+D:
//
//	N₁ = (N+5)/2·e^{-a(R+D)} - (N+3)/(2N)·e^{-a(R+D)(2N-1)}
func SRN1(p Params) float64 {
	n := float64(p.N)
	a := p.rate()
	rd := p.R + p.D
	return (n+5)/2*math.Exp(-a*rd) - (n+3)/(2*n)*math.Exp(-a*rd*(2*n-1))
}

// SRN1Integral evaluates Eq. 10, the literal integral behind SRN1:
//
//	∫_{R+D}^∞ a e^{-aT} [p₁ + (1-p₁)(N+5)/2] dT,  p₁ = e^{-a(T+R+D)(N-1)}
func SRN1Integral(p Params) (float64, error) {
	n := float64(p.N)
	a := p.rate()
	rd := p.R + p.D
	f := func(t float64) float64 {
		p1 := math.Exp(-a * (t + rd) * (n - 1))
		return a * math.Exp(-a*t) * (p1 + (1-p1)*srMiss(p.N))
	}
	return numeric.IntegrateToInf(f, rd, a, 0)
}

// SRN2 returns N₂ (Eq. 14), the contribution from transaction receptions
// whose think time is at most R+D:
//
//	N₂ = (N+5)/2·(1-e^{-a(R+D)}) - (N+3)/(2(2N-1))·(1-e^{-a(R+D)(2N-1)})
func SRN2(p Params) float64 {
	n := float64(p.N)
	a := p.rate()
	rd := p.R + p.D
	return (n+5)/2*-math.Expm1(-a*rd) - (n+3)/(2*(2*n-1))*-math.Expm1(-a*rd*(2*n-1))
}

// SRN2Integral evaluates Eq. 13, the literal integral behind SRN2:
//
//	∫_0^{R+D} a e^{-aT} [p₂ + (1-p₂)(N+5)/2] dT,  p₂ = e^{-2aT(N-1)}
func SRN2Integral(p Params) (float64, error) {
	n := float64(p.N)
	a := p.rate()
	f := func(t float64) float64 {
		p2 := math.Exp(-2 * a * t * (n - 1))
		return a * math.Exp(-a*t) * (p2 + (1-p2)*srMiss(p.N))
	}
	return numeric.Integrate(f, 0, p.R+p.D, 0)
}

// SRNa returns N_a (Eq. 16), the cost of demultiplexing transport-level
// acknowledgements. The flusher has two windows of duration D (Eq. 15 gives
// the survival probability e^{-2aD(N-1)}):
//
//	N_a = (N+5)/2 - (N+3)/2·e^{-2aD(N-1)}
func SRNa(p Params) float64 {
	n := float64(p.N)
	a := p.rate()
	return (n+5)/2 - (n+3)/2*math.Exp(-2*a*p.D*(n-1))
}

// SR returns the overall expected PCBs examined per packet for the
// last-sent/last-received cache (Eqs. 7 and 17): half the packets are
// transactions (cases 1 and 2 are mutually exclusive and sum) and half are
// acknowledgements:
//
//	N = (N₁ + N₂ + N_a)/2
//
// 667 / 993 / 1002 PCBs for D = 1/10/100 ms at N = 2000 (insensitive to R).
func SR(p Params) float64 {
	return (SRN1(p) + SRN2(p) + SRNa(p)) / 2
}

// ---------------------------------------------------------------------------
// §3.4 Sequent: hashed chains, each with a one-entry cache.

// chainLen returns the average population of one hash chain, N/H, floored
// at 1: with more chains than PCBs each occupied chain holds a single PCB
// and every lookup costs one examination.
func chainLen(p Params) float64 {
	m := float64(p.N) / float64(p.H)
	if m < 1 {
		return 1
	}
	return m
}

// SequentTxn returns the expected examinations for a transaction packet
// (Eq. 18): cache hit rate H/N, miss penalty (N/H + 1)/2 beyond the cache
// probe:
//
//	C = 1 + (N-H)/N · (N/H + 1)/2
func SequentTxn(p Params) (float64, error) {
	if p.H < 1 {
		return 0, ErrNeedH
	}
	m := chainLen(p)
	missProb := 1 - math.Min(1, float64(p.H)/float64(p.N))
	return 1 + missProb*(m+1)/2, nil
}

// SequentApprox returns Eq. 19's approximation: the Sequent algorithm
// behaves like BSD run over a chain of N/H PCBs,
//
//	C_SQNT(N,H) ≈ C_BSD(N/H)
//
// 53.6 for the paper's N=2000, H=19 (1% above the exact 53.0).
func SequentApprox(p Params) (float64, error) {
	if p.H < 1 {
		return 0, ErrNeedH
	}
	m := chainLen(p)
	return 1 + (m*m-1)/(2*m), nil
}

// SequentSurvival returns Eq. 20: the probability that no packet for
// another PCB on the same chain arrives during the response-time interval,
// leaving the per-chain cache holding the right PCB when the
// acknowledgement arrives:
//
//	p = e^{-2aR(N/H - 1)}
//
// ≈1.5% for H=19 and ≈21% for H=51 at N=2000, R=0.2 — versus 1.9×10⁻³⁵
// for the single-chain BSD cache.
func SequentSurvival(p Params) (float64, error) {
	if p.H < 1 {
		return 0, ErrNeedH
	}
	return math.Exp(-2 * p.rate() * p.R * (chainLen(p) - 1)), nil
}

// SequentAck returns Eq. 21, the expected examinations for a
// transport-level acknowledgement:
//
//	p·1 + (1-p)·(N/H + 1)/2,  p from Eq. 20
func SequentAck(p Params) (float64, error) {
	surv, err := SequentSurvival(p)
	if err != nil {
		return 0, err
	}
	m := chainLen(p)
	return surv + (1-surv)*(m+1)/2, nil
}

// Sequent returns Eq. 22, the overall expected PCBs examined per packet:
// with negligible loss half the packets are transactions (Eq. 18) and half
// acknowledgements (Eq. 21). 53.0 for N=2000, H=19, R=0.2 s.
func Sequent(p Params) (float64, error) {
	txn, err := SequentTxn(p)
	if err != nil {
		return 0, err
	}
	ack, err := SequentAck(p)
	if err != nil {
		return 0, err
	}
	return (txn + ack) / 2, nil
}

// ---------------------------------------------------------------------------
// Figure series.

// Point is one (x, y) sample of a model curve.
type Point struct{ X, Y float64 }

// Figure4 returns the N(T) curve of Figure 4: expected number of other
// users entering transactions versus the given user's think time, for a
// population of n users, sampled at `points` evenly spaced T values on
// [0, maxT].
func Figure4(n int, maxT float64, points int) []Point {
	p := Params{N: n}
	out := make([]Point, points)
	for i, t := range numeric.Linspace(0, maxT, points) {
		out[i] = Point{X: t, Y: NT(p, t)}
	}
	return out
}

// Series identifies one line of Figures 13/14.
type Series struct {
	Label  string
	Points []Point
}

// ComparisonFigure returns the model curves of Figure 13 (maxN=10000) and
// Figure 14 (maxN=1000): expected PCB search cost versus the number of
// TPC/A connections for BSD, Crowcroft move-to-front at response times
// mtfR, the send/receive cache at round-trip delays srD (with response time
// r), and Sequent with h hash chains (response time r).
func ComparisonFigure(maxN, step int, mtfR, srD []float64, r float64, h int) []Series {
	var ns []int
	for n := step; n <= maxN; n += step {
		ns = append(ns, n)
	}
	var out []Series

	bsd := Series{Label: "BSD"}
	for _, n := range ns {
		bsd.Points = append(bsd.Points, Point{float64(n), BSD(n)})
	}
	out = append(out, bsd)

	for _, rr := range mtfR {
		s := Series{Label: fmt.Sprintf("MTF %.1f", rr)}
		for _, n := range ns {
			s.Points = append(s.Points, Point{float64(n), Crowcroft(Params{N: n, R: rr})})
		}
		out = append(out, s)
	}

	for _, d := range srD {
		s := Series{Label: fmt.Sprintf("SR %g", d*1000)}
		for _, n := range ns {
			s.Points = append(s.Points, Point{float64(n), SR(Params{N: n, R: r, D: d})})
		}
		out = append(out, s)
	}

	seq := Series{Label: fmt.Sprintf("SEQUENT H=%d", h)}
	for _, n := range ns {
		v, err := Sequent(Params{N: n, R: r, H: h})
		if err != nil {
			// h >= 1 is guaranteed by callers; an error here is a bug.
			panic(err)
		}
		seq.Points = append(seq.Points, Point{float64(n), v})
	}
	out = append(out, seq)
	return out
}

// Figure13 returns the curves of the paper's Figure 13: BSD, MTF at
// R ∈ {1.0, 0.5, 0.2} s, SR at D = 1 ms, and Sequent with 19 chains, for
// N up to 10,000.
func Figure13() []Series {
	return ComparisonFigure(10000, 100, []float64{1.0, 0.5, 0.2}, []float64{0.001}, 0.2, 19)
}

// Figure14 returns the curves of the paper's Figure 14 (the detail view):
// N up to 1,000, adding the SR 10 ms line.
func Figure14() []Series {
	return ComparisonFigure(1000, 10, []float64{1.0, 0.5, 0.2}, []float64{0.001, 0.010}, 0.2, 19)
}
