package analytic_test

import (
	"fmt"

	"tcpdemux/internal/analytic"
)

// The paper's running example: a 200 TPC/A TPS benchmark with 2,000 users.
func Example() {
	p := analytic.Params{N: 2000, R: 0.2, D: 0.001, H: 19}
	seq, err := analytic.Sequent(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("BSD:       %.0f PCBs/packet\n", analytic.BSD(p.N))
	fmt.Printf("Crowcroft: %.0f\n", analytic.Crowcroft(p))
	fmt.Printf("SR cache:  %.0f\n", analytic.SR(p))
	fmt.Printf("Sequent:   %.1f\n", seq)
	// Output:
	// BSD:       1001 PCBs/packet
	// Crowcroft: 549
	// SR cache:  667
	// Sequent:   53.0
}

func ExampleBSD() {
	fmt.Printf("%.1f\n", analytic.BSD(2000))
	// Output: 1001.0
}

func ExampleChainsForTarget() {
	h, err := analytic.ChainsForTarget(analytic.Params{N: 2000, R: 0.2}, 9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("H=%d (%d bytes of chain headers)\n", h, analytic.MemoryForChains(h, 16))
	// Output: H=96 (1536 bytes of chain headers)
}

func ExampleNT() {
	// Figure 4's curve at one mean think time: about 63% of the other
	// 1,999 users will have entered a transaction.
	fmt.Printf("%.0f\n", analytic.NT(analytic.Params{N: 2000}, 10))
	// Output: 1264
}
