package analytic

import (
	"errors"
	"math"

	"tcpdemux/internal/numeric"
)

// This file extends the paper's model along the directions §3.4–3.5 gesture
// at but do not work out: the effect of uneven hash chains, and choosing H
// for a target cost ("the system administrator may increase the value of H
// in order to get even better performance, at the expense of a small
// increase in the memory used for the hash chain headers").

// SequentBinomial refines Eq. 18 by dropping the assumption that every
// chain holds exactly N/H PCBs. Under a uniform hash each PCB lands on a
// chain independently, so the number of *other* PCBs sharing the target's
// chain is Binomial(N-1, 1/H) with mean (N-1)/H. The expected scan cost on
// a cache miss is (E[L]+1)/2 where L = 1 + Binomial(N-1, 1/H) is the
// size-biased chain length, giving
//
//	C = 1 + (1 - H/N) · ((N-1)/H + 2) / 2
//
// which exceeds Eq. 18's (N/H + 1)/2 term by roughly 1/2 examination —
// the price of hashing's randomness relative to perfectly balanced chains.
// (The variance of the binomial does not enter: the expected scan length
// is linear in the chain population.)
func SequentBinomial(p Params) (float64, error) {
	if p.H < 1 {
		return 0, ErrNeedH
	}
	n, h := float64(p.N), float64(p.H)
	if n <= 1 {
		return 1, nil
	}
	missProb := 1 - math.Min(1, h/n)
	scan := ((n-1)/h + 2) / 2
	return 1 + missProb*scan, nil
}

// SequentWithImbalance returns the Eq. 22 overall cost with the binomial
// occupancy correction applied to both the transaction and the
// acknowledgement terms.
func SequentWithImbalance(p Params) (float64, error) {
	txn, err := SequentBinomial(p)
	if err != nil {
		return 0, err
	}
	surv, err := SequentSurvival(p)
	if err != nil {
		return 0, err
	}
	n, h := float64(p.N), float64(p.H)
	scan := ((n-1)/h + 2) / 2
	if n <= 1 {
		scan = 1
	}
	ack := surv + (1-surv)*scan
	return (txn + ack) / 2, nil
}

// ErrUnreachableTarget is returned by ChainsForTarget when even one PCB
// per chain cannot reach the requested cost.
var ErrUnreachableTarget = errors.New("analytic: target cost below 1 examination is unreachable")

// ChainsForTarget returns the smallest chain count H for which the Eq. 22
// cost model meets the target expected examinations per packet. It answers
// the §3.5 sizing question quantitatively: e.g. at N=2000, R=0.2 a target
// of 9 examinations needs 96 chains.
func ChainsForTarget(p Params, target float64) (int, error) {
	if target < 1 {
		return 0, ErrUnreachableTarget
	}
	cost := func(h int) float64 {
		ph := p
		ph.H = h
		v, err := Sequent(ph)
		if err != nil {
			return math.Inf(1)
		}
		return v
	}
	// Cost is non-increasing in H and reaches 1 by H >= N (each occupied
	// chain holds one PCB). Binary-search the integer domain.
	lo, hi := 1, p.N
	if p.N < 1 {
		return 0, errors.New("analytic: need at least one user")
	}
	if cost(lo) <= target {
		return lo, nil
	}
	if cost(hi) > target {
		return 0, ErrUnreachableTarget
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if cost(mid) <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// MemoryForChains returns the chain-header memory in bytes for H chains
// given a per-header size (head pointer + cache pointer; 8 bytes each on
// the paper's 32-bit machines would be 8, on modern 64-bit 16). It
// quantifies the "small increase in the memory used for the hash chain
// headers" that more chains cost.
func MemoryForChains(h, headerBytes int) int {
	if h < 0 || headerBytes < 0 {
		return 0
	}
	return h * headerBytes
}

// CrowcroftEntryGeneral computes the move-to-front entry cost for an
// arbitrary think-time density instead of the exponential law: it
// evaluates the paper's Eq. 5 structure
//
//	∫_0^R f(T)·N(2T) dT + ∫_R^∞ f(T)·N(T+R) dT
//
// by quadrature, where f is the think-time probability density with the
// given decay rate bound for the tail substitution. With
// f(T) = a·e^{-aT} it reproduces CrowcroftEntry; with other densities it
// answers what the paper's deterministic-think-time aside generalizes to.
func CrowcroftEntryGeneral(p Params, f func(float64) float64, decayRate float64) (float64, error) {
	if p.N <= 1 {
		return 0, nil
	}
	head, err := numeric.Integrate(func(t float64) float64 { return f(t) * NT(p, 2*t) }, 0, p.R, 0)
	if err != nil {
		return 0, err
	}
	tail, err := numeric.IntegrateToInf(func(t float64) float64 { return f(t) * NT(p, t+p.R) }, p.R, decayRate, 0)
	if err != nil {
		return 0, err
	}
	return head + tail, nil
}

// ChainSweep returns the Sequent cost as a function of the chain count H
// at fixed N — the §3.5 sizing curve ("the system administrator may
// increase the value of H"). Both the even-chain Eq. 22 model and the
// binomial-occupancy correction are returned as separate series.
func ChainSweep(p Params, maxH int) ([]Series, error) {
	even := Series{Label: "Eq 22 (even chains)"}
	binom := Series{Label: "binomial occupancy"}
	for h := 1; h <= maxH; h++ {
		ph := p
		ph.H = h
		e, err := Sequent(ph)
		if err != nil {
			return nil, err
		}
		b, err := SequentWithImbalance(ph)
		if err != nil {
			return nil, err
		}
		even.Points = append(even.Points, Point{float64(h), e})
		binom.Points = append(binom.Points, Point{float64(h), b})
	}
	return []Series{even, binom}, nil
}

// CrowcroftEntryGeneral's caveat, made explicit by the renewal variant
// below: it keeps the paper's Poisson model for the *other* users and only
// generalizes the tagged user's think density. When every user changes
// law, the other users' transaction processes become renewal processes
// whose regularity matters enormously (a regular process almost certainly
// fires inside a mean-length window; a Poisson one misses it 37% of the
// time).

// CrowcroftEntryRenewal computes the move-to-front entry cost when all
// users draw think times from the same general law. f is the think-time
// density of the tagged user; survival(w) is the stationary-renewal
// probability that one other user's transaction process produces no
// arrival in a window of length w, i.e. E[(X−w)⁺]/E[X] for cycle length
// X = think + R + D. The expected PCBs preceding the tagged user's entry
// is then
//
//	∫_0^∞ f(T) · (N−1) · (1 − survival(T+R)) dT
//
// (the paper's T>R window form applied throughout; for the exponential law
// this differs from the exact Eq. 5 by under 0.1% at TPC/A parameters,
// and thinking times shorter than R have negligible mass for every law
// this repo models). decayRate bounds f's tail for the quadrature.
func CrowcroftEntryRenewal(p Params, f func(float64) float64, survival func(float64) float64, decayRate float64) (float64, error) {
	if p.N <= 1 {
		return 0, nil
	}
	n := float64(p.N - 1)
	integrand := func(t float64) float64 {
		return f(t) * n * (1 - survival(t+p.R))
	}
	return numeric.IntegrateToInf(integrand, 0, decayRate, 0)
}

// StationarySurvivalUniform returns the survival function for a renewal
// process whose cycle is Uniform[lo,hi] plus a deterministic shift
// (response time + round trip): S(w) = E[(X−w)⁺]/E[X].
func StationarySurvivalUniform(lo, hi, shift float64) func(float64) float64 {
	a, b := lo+shift, hi+shift
	mean := (a + b) / 2
	return func(w float64) float64 {
		switch {
		case w <= a:
			return (mean - w) / mean
		case w >= b:
			return 0
		default:
			// E[(X-w)+] = (b-w)²/(2(b-a))
			return (b - w) * (b - w) / (2 * (b - a) * mean)
		}
	}
}

// StationarySurvivalExp returns the survival function for Poisson arrivals
// at rate a: S(w) = e^{−aw}, recovering the paper's model.
func StationarySurvivalExp(a float64) func(float64) float64 {
	return func(w float64) float64 { return math.Exp(-a * w) }
}

// StationarySurvivalConst returns the survival function for a perfectly
// regular (deterministic) cycle of length c: S(w) = max(0, (c−w))/c. With
// it, CrowcroftEntryRenewal reproduces the paper's deterministic
// worst case — every other user fires within any full-cycle window, so
// each entry scans the whole list (§3.2's point-of-sale aside).
func StationarySurvivalConst(c float64) func(float64) float64 {
	return func(w float64) float64 {
		if w >= c {
			return 0
		}
		return (c - w) / c
	}
}
