package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// near asserts got is within tol of want.
func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

// paper200TPS is the paper's running example: a 200 TPC/A TPS benchmark
// with 2,000 users at the default 0.1 txn/s per-user rate.
func paper200TPS(r, d float64, h int) Params {
	return Params{N: 2000, R: r, D: d, H: h}
}

// --- §3.1 BSD -------------------------------------------------------------

func TestBSDPaperValue(t *testing.T) {
	// "This equation yields an average cost of a linear scan of 1,001 PCBs
	// for a 200 TPC/A TPS benchmark."
	near(t, BSD(2000), 1001, 0.5, "C_BSD(2000)")
}

func TestBSDSmallN(t *testing.T) {
	near(t, BSD(1), 1, 1e-12, "C_BSD(1)") // cache always hits with one PCB
	near(t, BSD(2), 1+3.0/4, 1e-12, "C_BSD(2)")
	if BSD(0) != 0 {
		t.Error("C_BSD(0) should be 0")
	}
}

func TestBSDApproachesHalfN(t *testing.T) {
	// "approaching N/2 for large N."
	for _, n := range []int{1000, 10000, 100000} {
		ratio := BSD(n) / (float64(n) / 2)
		if math.Abs(ratio-1) > 0.01 {
			t.Errorf("BSD(%d)/(N/2) = %v, want ~1", n, ratio)
		}
	}
}

func TestBSDHitRatePaperValue(t *testing.T) {
	// "The hit rate for the PCB cache is 1/N, which is 0.05% for a 200
	// TPC/A TPS benchmark."
	near(t, BSDHitRate(2000), 0.0005, 1e-12, "BSD hit rate")
}

func TestBSDTrainProb(t *testing.T) {
	// Footnote 4: a given user stays silent in a 200 ms window with
	// probability 96%; all 1,999 others staying silent is "indeed remote".
	p := paper200TPS(0.2, 0, 0)
	oneUser := math.Exp(-2 * 0.1 * 0.2)
	near(t, oneUser, 0.96, 0.001, "single-user silence probability")
	got := BSDTrainProb(p)
	near(t, got, 1.9e-35, 0.1e-35, "BSD train probability")
	if BSDTrainProb(Params{N: 1, R: 5}) != 1 {
		t.Error("single user always forms trains")
	}
}

// --- §3.2 Crowcroft -------------------------------------------------------

func TestNTClosedFormMatchesSum(t *testing.T) {
	// Eq. 3's literal binomial sum must equal (N-1)(1-e^{-aT}).
	for _, n := range []int{2, 10, 100, 2000} {
		for _, tt := range []float64{0.1, 1, 10, 50} {
			p := Params{N: n}
			closed := NT(p, tt)
			sum := NTSum(p, tt)
			if math.Abs(closed-sum) > 1e-6*math.Max(1, closed) {
				t.Errorf("N=%d T=%v: closed %v vs sum %v", n, tt, closed, sum)
			}
		}
	}
}

func TestNTFigure4Shape(t *testing.T) {
	// Figure 4: monotone rise from 0 toward N-1 = 1999; about half the
	// users precede after one mean think time (T=10 → 1-1/e ≈ 0.632).
	p := Params{N: 2000}
	if NT(p, 0) != 0 {
		t.Error("N(0) must be 0")
	}
	near(t, NT(p, 10), 1999*(1-math.Exp(-1)), 1e-9, "N(10)")
	near(t, NT(p, 50), 1999*(1-math.Exp(-5)), 1e-9, "N(50)")
	prev := -1.0
	for _, pt := range Figure4(2000, 50, 51) {
		if pt.Y < prev {
			t.Fatalf("Figure 4 curve not monotone at T=%v", pt.X)
		}
		prev = pt.Y
	}
}

func TestCrowcroftEntryPaperValues(t *testing.T) {
	// "The result for a 200 TPS benchmark is 1,019, 1,045, 1,086, and
	// 1,150 PCBs, corresponding to response times of 0.2, 0.5, 1.0, and
	// 2.0 seconds".
	want := map[float64]float64{0.2: 1019, 0.5: 1045, 1.0: 1086, 2.0: 1150}
	for r, w := range want {
		near(t, CrowcroftEntry(paper200TPS(r, 0, 0)), w, 1.0, "Crowcroft entry")
	}
}

func TestCrowcroftEntryIntegralMatchesClosedForm(t *testing.T) {
	for _, r := range []float64{0.2, 0.5, 1, 2, 5} {
		p := paper200TPS(r, 0, 0)
		integral, err := CrowcroftEntryIntegral(p)
		if err != nil {
			t.Fatal(err)
		}
		closed := CrowcroftEntry(p)
		if math.Abs(integral-closed) > 1e-4*closed {
			t.Errorf("R=%v: integral %v vs closed %v", r, integral, closed)
		}
	}
}

func TestCrowcroftAckPaperValues(t *testing.T) {
	// "The length of the PCB search is 78, 190, 362, and 659 PCBs, for
	// response times of 0.2, 0.5, 1.0, and 2.0 seconds".
	want := map[float64]float64{0.2: 78, 0.5: 190, 1.0: 362, 2.0: 659}
	for r, w := range want {
		near(t, CrowcroftAck(paper200TPS(r, 0, 0)), w, 1.0, "Crowcroft ack")
	}
}

func TestCrowcroftOverallPaperValues(t *testing.T) {
	// "average search lengths of 549, 618, 724, and 904 PCBs".
	want := map[float64]float64{0.2: 549, 0.5: 618, 1.0: 724, 2.0: 904}
	for r, w := range want {
		near(t, Crowcroft(paper200TPS(r, 0, 0)), w, 1.0, "Crowcroft overall")
	}
}

func TestCrowcroftBeatsBSDAndImprovesWithFasterResponses(t *testing.T) {
	// §3.2: "a significant improvement over the search length of 1,001";
	// Figure 13: MTF improves as response time decreases.
	prev := BSD(2000)
	for _, r := range []float64{2.0, 1.0, 0.5, 0.2} {
		c := Crowcroft(paper200TPS(r, 0, 0))
		if c >= prev {
			t.Fatalf("Crowcroft R=%v cost %v did not improve on %v", r, c, prev)
		}
		prev = c
	}
}

func TestCrowcroftDeterministicWorstCase(t *testing.T) {
	// "if the think times were deterministic ... Crowcroft's algorithm
	// would look through all 2,000 PCBs on each transaction entry."
	near(t, CrowcroftDeterministic(2000), 1999, 1e-12, "deterministic MTF")
	if CrowcroftDeterministic(0) != 0 {
		t.Error("empty population should cost 0")
	}
}

func TestCrowcroftDegenerate(t *testing.T) {
	if Crowcroft(Params{N: 1, R: 1}) != 0 {
		t.Error("single user has nothing preceding it")
	}
	if NT(Params{N: 2000}, -1) != 0 {
		t.Error("negative interval should yield 0")
	}
}

// --- §3.3 SR cache ----------------------------------------------------------

func TestSRPaperValues(t *testing.T) {
	// "Solving this numerically for 2,000 users and round-trip delays of
	// 1, 10, and 100 milliseconds gives average search lengths of 667,
	// 993, and 1002 PCBs, respectively."
	want := map[float64]float64{0.001: 667, 0.010: 993, 0.100: 1002}
	for d, w := range want {
		near(t, SR(paper200TPS(0.2, d, 0)), w, 1.0, "SR overall")
	}
}

func TestSRInsensitiveToR(t *testing.T) {
	// "The algorithm is extremely insensitive to the value of R for large
	// values of N."
	base := SR(paper200TPS(0.2, 0.001, 0))
	for _, r := range []float64{0.5, 1.0, 2.0} {
		v := SR(paper200TPS(r, 0.001, 0))
		if math.Abs(v-base)/base > 0.02 {
			t.Errorf("SR at R=%v is %v, far from %v", r, v, base)
		}
	}
}

func TestSRN1IntegralMatchesClosedForm(t *testing.T) {
	for _, d := range []float64{0.001, 0.01, 0.1} {
		p := paper200TPS(0.2, d, 0)
		integral, err := SRN1Integral(p)
		if err != nil {
			t.Fatal(err)
		}
		closed := SRN1(p)
		if math.Abs(integral-closed) > 1e-5*closed {
			t.Errorf("D=%v: N1 integral %v vs closed %v", d, integral, closed)
		}
	}
}

func TestSRN2IntegralMatchesClosedForm(t *testing.T) {
	for _, d := range []float64{0.001, 0.01, 0.1} {
		p := paper200TPS(0.2, d, 0)
		integral, err := SRN2Integral(p)
		if err != nil {
			t.Fatal(err)
		}
		closed := SRN2(p)
		if math.Abs(integral-closed) > 1e-5*math.Max(1, closed) {
			t.Errorf("D=%v: N2 integral %v vs closed %v", d, integral, closed)
		}
	}
}

func TestSRNaLimits(t *testing.T) {
	// §3.3.3: as D and N increase the expression approaches (N+5)/2; as D→0
	// or N→1 it approaches one (the send-side cache probe).
	big := paper200TPS(0.2, 10, 0)
	near(t, SRNa(big), (2000.0+5)/2, 0.01, "Na large D")
	near(t, SRNa(paper200TPS(0.2, 0, 0)), 1, 1e-9, "Na zero D")
	near(t, SRNa(Params{N: 1, R: 0.2, D: 0.5}), 1, 1e-9, "Na single user")
}

func TestSRApproachesBSDForLargeN(t *testing.T) {
	// Figure 13: "asymptotically approaches the BSD algorithm's
	// performance for large numbers of users." At N=10000, D=1ms the SR
	// curve sits within a few percent of BSD; the miss penalty overhead
	// ((N+5)/2 vs (N+1)/2) keeps it slightly above.
	sr := SR(Params{N: 10000, R: 0.2, D: 0.001})
	bsd := BSD(10000)
	if sr < bsd*0.7 || sr > bsd*1.05 {
		t.Errorf("SR(10000) = %v not near BSD %v", sr, bsd)
	}
}

func TestSRGoodForSmallN(t *testing.T) {
	// Figure 14: "significantly better than the stock BSD algorithm for
	// small numbers of users".
	sr := SR(Params{N: 100, R: 0.2, D: 0.001})
	bsd := BSD(100)
	if sr > 0.6*bsd {
		t.Errorf("SR(100) = %v, expected well under BSD %v", sr, bsd)
	}
}

// --- §3.4 Sequent -----------------------------------------------------------

func TestSequentApproxPaperValue(t *testing.T) {
	// "Equation 19 predicts 53.6".
	v, err := SequentApprox(paper200TPS(0.2, 0, 19))
	if err != nil {
		t.Fatal(err)
	}
	near(t, v, 53.6, 0.1, "Sequent Eq 19")
}

func TestSequentExactPaperValue(t *testing.T) {
	// "This equation yields an average cost of a linear scan of 53.0 PCBs
	// for a 200 TPC/A TPS benchmark with 19 hash chains and a
	// 200-millisecond response time."
	v, err := Sequent(paper200TPS(0.2, 0, 19))
	if err != nil {
		t.Fatal(err)
	}
	near(t, v, 53.0, 0.1, "Sequent Eq 22")
}

func TestSequentApproxErrorAbout1Percent(t *testing.T) {
	// "In contrast, Equation 19 predicts 53.6 for a little more than 1%
	// error."
	p := paper200TPS(0.2, 0, 19)
	exact, _ := Sequent(p)
	approx, _ := SequentApprox(p)
	errPct := (approx - exact) / exact * 100
	if errPct < 0.8 || errPct > 2 {
		t.Errorf("approximation error = %v%%, want ~1%%", errPct)
	}
}

func TestSequentApproxErrorGrowsWith51Chains(t *testing.T) {
	// "The error gets larger ... exceeding 10% if 51 hash chains are
	// substituted into the previous example."
	p := paper200TPS(0.2, 0, 51)
	exact, _ := Sequent(p)
	approx, _ := SequentApprox(p)
	if errPct := (approx - exact) / exact * 100; errPct <= 10 {
		t.Errorf("51-chain approximation error = %v%%, want > 10%%", errPct)
	}
}

func TestSequentSurvivalPaperValues(t *testing.T) {
	// "This probability is about 1.5% for a 2000-user benchmark with a
	// 200-millisecond response time and 19 hash chains ... if the number
	// of hash chains is increased to 51, the probability increases to
	// almost 21%."
	p19, _ := SequentSurvival(paper200TPS(0.2, 0, 19))
	near(t, p19, 0.0155, 0.001, "survival H=19")
	p51, _ := SequentSurvival(paper200TPS(0.2, 0, 51))
	near(t, p51, 0.215, 0.005, "survival H=51")
}

func TestSequent100ChainsUnder9(t *testing.T) {
	// §3.5: "if the number of hash chains in the above example is
	// increased from 19 to 100, the average number of PCBs searched drops
	// from 53 to less than 9."
	v, err := Sequent(paper200TPS(0.2, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if v >= 9 {
		t.Errorf("Sequent H=100 = %v, want < 9", v)
	}
	if v < 5 {
		t.Errorf("Sequent H=100 = %v, implausibly low", v)
	}
}

func TestSequentOrderOfMagnitudeBetter(t *testing.T) {
	// "Either equation predicts an order of magnitude improvement over the
	// BSD algorithm, Crowcroft's ... or Partridge's and Pink's".
	p := paper200TPS(0.2, 0.001, 19)
	seq, _ := Sequent(p)
	for name, other := range map[string]float64{
		"BSD":       BSD(2000),
		"Crowcroft": Crowcroft(p),
		"SR":        SR(p),
	} {
		if other/seq < 10 {
			t.Errorf("Sequent improvement over %s is only %.1fx", name, other/seq)
		}
	}
}

func TestSequentNeedsH(t *testing.T) {
	for _, f := range []func(Params) (float64, error){
		Sequent, SequentApprox, SequentTxn, SequentAck, SequentSurvival,
	} {
		if _, err := f(Params{N: 10}); err != ErrNeedH {
			t.Errorf("expected ErrNeedH, got %v", err)
		}
	}
}

func TestSequentMoreChainsThanPCBs(t *testing.T) {
	// With H >= N every chain holds at most one PCB; cost degenerates to a
	// single examination.
	v, err := Sequent(Params{N: 10, R: 0.2, H: 100})
	if err != nil {
		t.Fatal(err)
	}
	near(t, v, 1, 1e-9, "Sequent H>N")
}

func TestSequentSingleChainIsBSDApprox(t *testing.T) {
	// H=1 reduces Eq. 19 to Eq. 1 exactly.
	v, err := SequentApprox(Params{N: 2000, R: 0.2, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	near(t, v, BSD(2000), 1e-9, "Sequent H=1 vs BSD")
}

// --- §3.5 comparison / figures ----------------------------------------------

func TestCombiningMTFWorseThanMoreChains(t *testing.T) {
	// "This factor-of-five improvement [19→100 chains] compares favorably
	// with the best-case factor-of-two improvement that would be obtained
	// by adding move-to-front."
	p19 := paper200TPS(0.2, 0, 19)
	p100 := paper200TPS(0.2, 0, 100)
	c19, _ := Sequent(p19)
	c100, _ := Sequent(p100)
	gain := c19 / c100
	if gain < 5 {
		t.Errorf("19→100 chains gain = %.2fx, want ≥ 5x", gain)
	}
}

func TestFigure13SeriesShapes(t *testing.T) {
	series := Figure13()
	byLabel := map[string][]Point{}
	for _, s := range series {
		byLabel[s.Label] = s.Points
	}
	bsd := byLabel["BSD"]
	if len(bsd) != 100 {
		t.Fatalf("BSD series has %d points", len(bsd))
	}
	last := bsd[len(bsd)-1]
	near(t, last.Y, 5001, 1, "BSD at N=10000") // ≈ N/2 + 1
	// Ordering at N=10000: Sequent << MTF 0.2 < MTF 0.5 < MTF 1.0 < BSD ~ SR.
	at := func(label string) float64 {
		pts := byLabel[label]
		return pts[len(pts)-1].Y
	}
	if !(at("SEQUENT H=19") < at("MTF 0.2") && at("MTF 0.2") < at("MTF 0.5") &&
		at("MTF 0.5") < at("MTF 1.0") && at("MTF 1.0") < at("BSD")) {
		t.Errorf("Figure 13 ordering violated: seq=%v mtf02=%v mtf05=%v mtf10=%v bsd=%v",
			at("SEQUENT H=19"), at("MTF 0.2"), at("MTF 0.5"), at("MTF 1.0"), at("BSD"))
	}
	if sr := at("SR 1"); math.Abs(sr-at("BSD"))/at("BSD") > 0.2 {
		t.Errorf("SR 1 at N=10000 = %v should approach BSD %v", sr, at("BSD"))
	}
}

func TestFigure14HasSR10(t *testing.T) {
	series := Figure14()
	found := false
	for _, s := range series {
		if s.Label == "SR 10" {
			found = true
			if s.Points[len(s.Points)-1].X != 1000 {
				t.Errorf("Figure 14 should stop at N=1000, got %v", s.Points[len(s.Points)-1].X)
			}
		}
	}
	if !found {
		t.Fatal("Figure 14 missing SR 10 series")
	}
}

// --- validation / properties -------------------------------------------------

func TestValidate(t *testing.T) {
	good := Params{N: 10, R: 0.1, D: 0.01, H: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Params{
		{N: 0}, {N: 5, A: -1}, {N: 5, R: -1}, {N: 5, D: -1}, {N: 5, H: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

func TestDefaultRateApplied(t *testing.T) {
	implicit := Crowcroft(Params{N: 2000, R: 0.2})
	explicit := Crowcroft(Params{N: 2000, A: 0.1, R: 0.2})
	if implicit != explicit {
		t.Fatal("zero rate should default to 0.1")
	}
}

func TestCostsWithinPopulationQuick(t *testing.T) {
	// All models must report costs in [0, N+2] (the +2 allows the SR
	// cache's two probes on top of a full-chain scan).
	f := func(nRaw uint16, rRaw, dRaw uint8, hRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		r := float64(rRaw) / 64.0
		d := float64(dRaw) / 256.0
		h := int(hRaw)%64 + 1
		p := Params{N: n, R: r, D: d, H: h}
		limit := float64(n) + 2
		vals := []float64{BSD(n), Crowcroft(p), CrowcroftEntry(p), CrowcroftAck(p), SR(p)}
		seq, err := Sequent(p)
		if err != nil {
			return false
		}
		vals = append(vals, seq)
		for _, v := range vals {
			if v < 0 || v > limit || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentMonotoneInH(t *testing.T) {
	// More chains never hurts under the model.
	prev := math.Inf(1)
	for _, h := range []int{1, 2, 5, 10, 19, 51, 100, 500} {
		v, err := Sequent(paper200TPS(0.2, 0, h))
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-9 {
			t.Fatalf("Sequent cost increased at H=%d: %v > %v", h, v, prev)
		}
		prev = v
	}
}

func TestBSDMonotoneInN(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 2000; n += 7 {
		v := BSD(n)
		if v < prev {
			t.Fatalf("BSD cost decreased at N=%d", n)
		}
		prev = v
	}
}
