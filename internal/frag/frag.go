// Package frag implements IPv4 fragmentation and reassembly (RFC 791).
// Demultiplexing needs it because only the first fragment of a datagram
// carries the TCP ports: the wire package refuses to extract a tuple from
// any fragment, and this package turns fragment streams back into whole
// frames that the normal receive path can handle.
//
// Reassembly state is bounded (a DoS guard) and timed out by an explicit
// caller-driven clock, consistent with the repo's virtual-time simulations.
package frag

import (
	"errors"
	"fmt"

	"tcpdemux/internal/wire"
)

// Limits.
const (
	// maxDatagram is the largest reassembled IP datagram (16-bit total
	// length).
	maxDatagram = 0xffff
	// fragmentUnit is the fragment offset granularity in bytes.
	fragmentUnit = 8
)

// Errors reported by the reassembler.
var (
	ErrTableFull    = errors.New("frag: too many datagrams under reassembly")
	ErrOversize     = errors.New("frag: fragment extends past the 64 KiB datagram limit")
	ErrBadFragment  = errors.New("frag: malformed fragment")
	ErrMTUTooSmall  = errors.New("frag: MTU cannot hold the IP header plus one fragment unit")
	ErrCannotSplit  = errors.New("frag: datagram has DF set")
	ErrNotFragments = errors.New("frag: frame is not a fragment")
)

// key identifies one datagram under reassembly (RFC 791: source,
// destination, protocol, identification).
type key struct {
	src, dst wire.Addr
	id       uint16
	proto    uint8
}

// pending is one partially reassembled datagram.
type pending struct {
	header   wire.IPv4Header // from the offset-0 fragment
	haveHead bool
	buf      []byte
	covered  []bool
	total    int // payload length, -1 until the last fragment arrives
	arrived  float64
}

// complete reports whether all payload bytes are present.
func (p *pending) complete() bool {
	if !p.haveHead || p.total < 0 || len(p.covered) < p.total {
		return false
	}
	for _, c := range p.covered[:p.total] {
		if !c {
			return false
		}
	}
	return true
}

// Reassembler collects fragments until datagrams complete.
type Reassembler struct {
	maxPending int
	table      map[key]*pending
	// Completed and Expired count outcomes.
	Completed uint64
	Expired   uint64
}

// New returns a reassembler holding at most maxPending datagrams
// (64 if maxPending <= 0).
func New(maxPending int) *Reassembler {
	if maxPending <= 0 {
		maxPending = 64
	}
	return &Reassembler{maxPending: maxPending, table: make(map[key]*pending)}
}

// Pending returns the number of datagrams under reassembly.
func (r *Reassembler) Pending() int { return len(r.table) }

// Add consumes one frame at virtual time now. Non-fragments are returned
// unchanged. A fragment is absorbed; when it completes its datagram, the
// rebuilt whole frame is returned. Otherwise Add returns (nil, nil).
func (r *Reassembler) Add(frame []byte, now float64) ([]byte, error) {
	var hdr wire.IPv4Header
	hlen, err := hdr.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	if !hdr.IsFragment() {
		return frame, nil
	}
	payload := frame[hlen:hdr.TotalLen]
	off := int(hdr.FragOff) * fragmentUnit
	if off+len(payload) > maxDatagram {
		return nil, ErrOversize
	}
	mf := hdr.Flags&0x1 != 0
	if mf && len(payload)%fragmentUnit != 0 {
		// All fragments but the last must be a multiple of 8 bytes.
		return nil, ErrBadFragment
	}

	k := key{src: hdr.Src, dst: hdr.Dst, id: hdr.ID, proto: hdr.Protocol}
	p, ok := r.table[k]
	if !ok {
		if len(r.table) >= r.maxPending {
			return nil, ErrTableFull
		}
		p = &pending{total: -1, arrived: now}
		r.table[k] = p
	}
	if off == 0 {
		p.header = hdr
		p.haveHead = true
	}
	if !mf {
		p.total = off + len(payload)
	}
	if need := off + len(payload); need > len(p.buf) {
		grown := make([]byte, need)
		copy(grown, p.buf)
		p.buf = grown
		coveredGrown := make([]bool, need)
		copy(coveredGrown, p.covered)
		p.covered = coveredGrown
	}
	copy(p.buf[off:], payload)
	for i := off; i < off+len(payload); i++ {
		p.covered[i] = true
	}

	if !p.complete() {
		return nil, nil
	}
	delete(r.table, k)
	r.Completed++
	return rebuild(p)
}

// rebuild serializes the completed datagram back into a frame.
func rebuild(p *pending) ([]byte, error) {
	hdr := p.header
	hdr.Flags &^= 0x1 // clear MF
	hdr.FragOff = 0
	total := hdr.HeaderLen() + p.total
	if total > maxDatagram {
		return nil, ErrOversize
	}
	hdr.TotalLen = uint16(total)
	out, err := hdr.Marshal(make([]byte, 0, total))
	if err != nil {
		return nil, fmt.Errorf("frag: rebuilding header: %w", err)
	}
	return append(out, p.buf[:p.total]...), nil
}

// Reap expires datagrams older than ttl seconds at virtual time now,
// returning how many were dropped (RFC 791's reassembly timer).
func (r *Reassembler) Reap(now, ttl float64) int {
	n := 0
	//demux:orderinvariant each entry is tested and deleted independently; the drop count is commutative
	for k, p := range r.table {
		if now-p.arrived > ttl {
			delete(r.table, k)
			n++
		}
	}
	r.Expired += uint64(n)
	return n
}

// Fragment splits a whole frame into valid fragments no longer than mtu
// bytes each. The original header (with its options) is carried on every
// fragment, as RFC 791 requires for the options this repo models (all
// copied). Frames with DF set are refused.
func Fragment(frame []byte, mtu int) ([][]byte, error) {
	var hdr wire.IPv4Header
	hlen, err := hdr.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	if hdr.IsFragment() {
		return nil, ErrBadFragment
	}
	if hdr.Flags&0x2 != 0 {
		return nil, ErrCannotSplit
	}
	payload := frame[hlen:hdr.TotalLen]
	if hlen+len(payload) <= mtu {
		return [][]byte{frame}, nil
	}
	per := (mtu - hlen) / fragmentUnit * fragmentUnit
	if per <= 0 {
		return nil, ErrMTUTooSmall
	}
	var out [][]byte
	for off := 0; off < len(payload); off += per {
		end := off + per
		last := end >= len(payload)
		if last {
			end = len(payload)
		}
		fh := hdr
		fh.FragOff = uint16(off / fragmentUnit)
		if !last {
			fh.Flags |= 0x1
		}
		fh.TotalLen = uint16(hlen + end - off)
		frameOut, err := fh.Marshal(make([]byte, 0, int(fh.TotalLen)))
		if err != nil {
			return nil, err
		}
		out = append(out, append(frameOut, payload[off:end]...))
	}
	return out, nil
}
