package frag

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// buildFrame makes a whole TCP/IPv4 frame with a payload of n patterned
// bytes.
func buildFrame(t testing.TB, n int, id uint16) []byte {
	t.Helper()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, ID: id,
			Src: wire.MakeAddr(10, 1, 0, 5), Dst: wire.MakeAddr(10, 0, 0, 1)},
		wire.TCPHeader{SrcPort: 31005, DstPort: 1521, Flags: wire.FlagACK | wire.FlagPSH},
		payload,
	)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestFragmentThenReassemble(t *testing.T) {
	orig := buildFrame(t, 3000, 7)
	frags, err := Fragment(orig, 576) // classic minimum-MTU path
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 5 {
		t.Fatalf("3020-byte datagram split into only %d fragments at MTU 576", len(frags))
	}
	// Each fragment must itself be a valid IP packet and refuse tuple
	// extraction.
	for i, f := range frags {
		var h wire.IPv4Header
		if _, err := h.Unmarshal(f); err != nil {
			t.Fatalf("fragment %d invalid: %v", i, err)
		}
		if _, err := wire.ExtractTuple(f); !errors.Is(err, wire.ErrFragmented) {
			t.Fatalf("fragment %d yielded a tuple: %v", i, err)
		}
	}
	r := New(8)
	var whole []byte
	for _, f := range frags {
		out, err := r.Add(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			whole = out
		}
	}
	if whole == nil {
		t.Fatal("datagram never completed")
	}
	if !bytes.Equal(whole, orig) {
		t.Fatalf("reassembly mismatch: %d vs %d bytes", len(whole), len(orig))
	}
	// And the reassembled frame parses end to end.
	seg, err := wire.ParseSegment(whole)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Payload) != 3000 {
		t.Fatalf("payload length %d", len(seg.Payload))
	}
	if r.Pending() != 0 || r.Completed != 1 {
		t.Fatalf("reassembler state: pending=%d completed=%d", r.Pending(), r.Completed)
	}
}

func TestReassembleOutOfOrderAndDuplicates(t *testing.T) {
	orig := buildFrame(t, 2000, 9)
	frags, err := Fragment(orig, 600)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	r := New(8)
	// Shuffle and duplicate every fragment.
	sequence := append(append([][]byte(nil), frags...), frags...)
	src.Shuffle(len(sequence), func(i, j int) { sequence[i], sequence[j] = sequence[j], sequence[i] })
	var whole []byte
	for _, f := range sequence {
		out, err := r.Add(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil && whole == nil {
			whole = out
		}
	}
	if whole == nil || !bytes.Equal(whole, orig) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestPassThroughWholeFrames(t *testing.T) {
	orig := buildFrame(t, 100, 1)
	r := New(4)
	out, err := r.Add(orig, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, orig) {
		t.Fatal("whole frame modified by pass-through")
	}
	if r.Pending() != 0 {
		t.Fatal("pass-through left state")
	}
}

func TestInterleavedDatagrams(t *testing.T) {
	a := buildFrame(t, 1500, 100)
	b := buildFrame(t, 1500, 101)
	fa, _ := Fragment(a, 600)
	fb, _ := Fragment(b, 600)
	r := New(4)
	done := map[uint16][]byte{}
	for i := 0; i < len(fa) || i < len(fb); i++ {
		for _, f := range [][]byte{pick(fa, i), pick(fb, i)} {
			if f == nil {
				continue
			}
			out, err := r.Add(f, 0)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				var h wire.IPv4Header
				if _, err := h.Unmarshal(out); err != nil {
					t.Fatal(err)
				}
				done[h.ID] = out
			}
		}
	}
	if !bytes.Equal(done[100], a) || !bytes.Equal(done[101], b) {
		t.Fatal("interleaved datagrams mixed up")
	}
}

func pick(frags [][]byte, i int) []byte {
	if i < len(frags) {
		return frags[i]
	}
	return nil
}

func TestReapExpiresStalePartials(t *testing.T) {
	orig := buildFrame(t, 1500, 5)
	frags, _ := Fragment(orig, 600)
	r := New(4)
	if _, err := r.Add(frags[0], 10.0); err != nil {
		t.Fatal(err)
	}
	if n := r.Reap(15.0, 30.0); n != 0 {
		t.Fatalf("reaped %d too early", n)
	}
	if n := r.Reap(50.0, 30.0); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	if r.Pending() != 0 || r.Expired != 1 {
		t.Fatal("reap accounting wrong")
	}
	// Late fragments after expiry restart reassembly rather than complete.
	out, err := r.Add(frags[1], 51.0)
	if err != nil || out != nil {
		t.Fatalf("late fragment: %v, %v", out, err)
	}
}

func TestTableBound(t *testing.T) {
	r := New(2)
	for id := uint16(0); id < 2; id++ {
		frags, _ := Fragment(buildFrame(t, 1500, id), 600)
		if _, err := r.Add(frags[0], 0); err != nil {
			t.Fatal(err)
		}
	}
	frags, _ := Fragment(buildFrame(t, 1500, 99), 600)
	if _, err := r.Add(frags[0], 0); !errors.Is(err, ErrTableFull) {
		t.Fatalf("third datagram accepted: %v", err)
	}
}

func TestFragmentRefusesDF(t *testing.T) {
	orig := buildFrame(t, 2000, 3)
	orig[6] |= 0x40 // set DF
	// Re-fix the header checksum.
	orig[10], orig[11] = 0, 0
	cs := wire.Checksum(orig[:20])
	orig[10], orig[11] = byte(cs>>8), byte(cs)
	if _, err := Fragment(orig, 600); !errors.Is(err, ErrCannotSplit) {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentMTUTooSmall(t *testing.T) {
	orig := buildFrame(t, 2000, 3)
	if _, err := Fragment(orig, 24); !errors.Is(err, ErrMTUTooSmall) {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentNoSplitNeeded(t *testing.T) {
	orig := buildFrame(t, 100, 3)
	frags, err := Fragment(orig, 1500)
	if err != nil || len(frags) != 1 || !bytes.Equal(frags[0], orig) {
		t.Fatalf("small frame was split: %d, %v", len(frags), err)
	}
}

func TestAddArbitraryBytesNeverPanics(t *testing.T) {
	r := New(4)
	f := func(data []byte) bool {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("panic: %v", rec)
			}
		}()
		_, _ = r.Add(data, 0)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(sizeRaw uint16, mtuRaw uint16, id uint16) bool {
		size := int(sizeRaw)%8000 + 1
		mtu := int(mtuRaw)%1400 + 68 // RFC 791 minimum MTU
		orig := buildFrame(t, size, id)
		frags, err := Fragment(orig, mtu)
		if err != nil {
			return false
		}
		r := New(4)
		var whole []byte
		for _, fr := range frags {
			out, err := r.Add(fr, 0)
			if err != nil {
				return false
			}
			if out != nil {
				whole = out
			}
		}
		return bytes.Equal(whole, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
