package timer

import (
	"math"
	"sort"
	"testing"

	"tcpdemux/internal/rng"
)

func TestFiresAtDeadline(t *testing.T) {
	w := New(0.001)
	var fired []float64
	w.Schedule(0.050, func(now float64) { fired = append(fired, now) })
	w.Advance(0.049)
	if len(fired) != 0 {
		t.Fatalf("fired %v before deadline", fired)
	}
	w.Advance(0.051)
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}
	if fired[0] < 0.050 {
		t.Fatalf("fired at %v, before deadline", fired[0])
	}
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after fire", w.Pending())
	}
}

// TestBucketRollover schedules timers whose deltas land in every wheel
// level — including across level boundaries and in the overflow list —
// and verifies each fires exactly once, never early, and within one tick
// of its deadline.
func TestBucketRollover(t *testing.T) {
	const tick = 0.01
	w := New(tick)
	// Deltas in ticks: within level 0, at the 64 boundary, level 1, at
	// the 4096 boundary, level 2, at the 64^3 boundary, level 3, and past
	// the 64^4 horizon into overflow.
	deltas := []uint64{1, 2, 63, 64, 65, 100, 4095, 4096, 4097, 262143, 262144, 262145, horizonTicks - 1, horizonTicks, horizonTicks + 7}
	fireAt := make([]float64, len(deltas))
	for i, d := range deltas {
		i, d := i, d
		w.Schedule(float64(d)*tick, func(now float64) { fireAt[i] = now })
	}
	if w.Pending() != len(deltas) {
		t.Fatalf("pending = %d, want %d", w.Pending(), len(deltas))
	}
	w.Advance(float64(horizonTicks+10) * tick)
	for i, d := range deltas {
		deadline := float64(d) * tick
		if fireAt[i] == 0 {
			t.Fatalf("timer %d (delta %d ticks) never fired", i, d)
		}
		if fireAt[i] < deadline-1e-9 {
			t.Fatalf("timer %d fired at %v, before deadline %v", i, fireAt[i], deadline)
		}
		if fireAt[i] > deadline+2*tick {
			t.Fatalf("timer %d fired at %v, way past deadline %v", i, fireAt[i], deadline)
		}
	}
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after all fired", w.Pending())
	}
}

func TestCancel(t *testing.T) {
	w := New(0.001)
	ran := false
	tm := w.Schedule(0.5, func(float64) { ran = true })
	if !tm.Pending() {
		t.Fatal("scheduled timer not pending")
	}
	if !tm.Cancel() {
		t.Fatal("cancel of pending timer reported false")
	}
	if tm.Cancel() {
		t.Fatal("double cancel reported true")
	}
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after cancel", w.Pending())
	}
	w.Advance(1.0)
	if ran {
		t.Fatal("canceled timer fired")
	}
}

// TestCancelVsFireWithReinsertion exercises the races the engine relies
// on: a callback canceling a same-tick timer scheduled after it, a
// callback rescheduling itself (periodic reinsertion), and a callback
// scheduling new work at the current instant.
func TestCancelVsFireWithReinsertion(t *testing.T) {
	w := New(0.001)

	// Same-tick cancel: a fires first (earlier schedule order at the same
	// deadline) and cancels b.
	var bRan bool
	var b *Timer
	w.Schedule(0.010, func(float64) { b.Cancel() })
	b = w.Schedule(0.010, func(float64) { bRan = true })
	w.Advance(0.020)
	if bRan {
		t.Fatal("timer canceled by same-tick peer still fired")
	}

	// Periodic reinsertion: a self-rearming timer ticks a fixed cadence.
	var fires []float64
	var rearm func(now float64)
	rearm = func(now float64) {
		fires = append(fires, now)
		if len(fires) < 5 {
			w.Schedule(now+0.100, rearm)
		}
	}
	w.Schedule(0.100, rearm)
	w.Advance(1.0)
	if len(fires) != 5 {
		t.Fatalf("periodic timer fired %d times, want 5", len(fires))
	}
	for i := 1; i < len(fires); i++ {
		if fires[i] <= fires[i-1] {
			t.Fatalf("periodic fires not increasing: %v", fires)
		}
	}

	// Reinsertion at the current instant fires within the same Advance.
	nested := 0
	w.Schedule(1.5, func(now float64) {
		w.Schedule(now, func(float64) { nested++ })
	})
	w.Advance(2.0)
	if nested != 1 {
		t.Fatalf("same-instant reinsertion fired %d times", nested)
	}
}

// TestCancelFromEarlierCallbackAcrossTicks: a timer canceled by a
// callback that fires on an earlier tick of the same Advance must not
// run.
func TestCancelFromEarlierCallbackAcrossTicks(t *testing.T) {
	w := New(0.001)
	var victim *Timer
	vRan := false
	w.Schedule(0.010, func(float64) { victim.Cancel() })
	victim = w.Schedule(0.900, func(float64) { vRan = true })
	w.Advance(2.0)
	if vRan {
		t.Fatal("victim fired despite cancellation mid-Advance")
	}
	if w.Pending() != 0 {
		t.Fatalf("pending = %d", w.Pending())
	}
}

func TestPastDeadlineFiresNext(t *testing.T) {
	w := New(0.001)
	w.Advance(5.0)
	var at float64
	w.Schedule(1.0, func(now float64) { at = now }) // already past
	w.Advance(5.0)                                  // no time motion needed
	if at != 5.0 {
		t.Fatalf("past-deadline timer fired at %v, want clamped to 5.0", at)
	}
}

func TestZeroTickDefaults(t *testing.T) {
	w := New(0)
	if w.Tick() != DefaultTick {
		t.Fatalf("tick = %v", w.Tick())
	}
	ran := false
	w.Schedule(0.002, func(float64) { ran = true })
	w.Advance(0.010)
	if !ran {
		t.Fatal("default-tick wheel did not fire")
	}
}

// TestFireOrderNondecreasing is the property test: random deadlines
// (including duplicates and already-past ones), advanced in random
// increments, must fire exactly once each, in nondecreasing virtual
// time, never before their deadline, and with the observed fire times
// themselves nondecreasing.
func TestFireOrderNondecreasing(t *testing.T) {
	src := rng.New(0x71e5)
	for trial := 0; trial < 20; trial++ {
		w := New(0.01)
		type rec struct {
			deadline float64
			firedAt  float64
			order    int
		}
		n := 50 + src.Intn(200)
		recs := make([]*rec, n)
		fired := 0
		horizon := 0.0
		for i := range recs {
			r := &rec{firedAt: -1}
			// Mix of scales so every level gets traffic; some duplicates.
			switch src.Intn(4) {
			case 0:
				r.deadline = src.Float64() * 0.5
			case 1:
				r.deadline = src.Float64() * 50
			case 2:
				r.deadline = src.Float64() * 5000
			default:
				r.deadline = math.Floor(src.Float64()*20) * 0.25 // duplicates
			}
			if r.deadline > horizon {
				horizon = r.deadline
			}
			recs[i] = r
			r2 := r
			w.Schedule(r.deadline, func(now float64) {
				r2.firedAt = now
				r2.order = fired
				fired++
			})
		}
		now := 0.0
		for now < horizon+1 {
			now += src.Float64() * (horizon / 10)
			w.Advance(now)
		}
		if fired != n {
			t.Fatalf("trial %d: fired %d of %d", trial, fired, n)
		}
		byOrder := append([]*rec(nil), recs...)
		sort.Slice(byOrder, func(i, j int) bool { return byOrder[i].order < byOrder[j].order })
		last := math.Inf(-1)
		for i, r := range byOrder {
			if r.firedAt < r.deadline-1e-9 {
				t.Fatalf("trial %d: timer fired at %v before deadline %v", trial, r.firedAt, r.deadline)
			}
			if r.firedAt < last {
				t.Fatalf("trial %d: fire time regressed at position %d: %v after %v", trial, i, r.firedAt, last)
			}
			last = r.firedAt
		}
	}
}

// TestDeterministicTieBreak: equal deadlines fire in schedule order.
func TestDeterministicTieBreak(t *testing.T) {
	w := New(0.001)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		w.Schedule(0.5, func(float64) { order = append(order, i) })
	}
	w.Advance(1.0)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestPendingCountThroughChurn(t *testing.T) {
	w := New(0.001)
	src := rng.New(9)
	var live []*Timer
	for i := 0; i < 1000; i++ {
		live = append(live, w.Schedule(src.Float64()*100, func(float64) {}))
	}
	canceled := 0
	for _, tm := range live {
		if src.Intn(2) == 0 && tm.Cancel() {
			canceled++
		}
	}
	if w.Pending() != 1000-canceled {
		t.Fatalf("pending = %d, want %d", w.Pending(), 1000-canceled)
	}
	w.Advance(200)
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after drain", w.Pending())
	}
	if int(w.Fired) != 1000-canceled {
		t.Fatalf("fired = %d, want %d", w.Fired, 1000-canceled)
	}
}

func BenchmarkScheduleAdvance(b *testing.B) {
	w := New(0.001)
	src := rng.New(1)
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Schedule(now+src.Float64(), func(float64) {})
		if i%64 == 0 {
			now += 0.032
			w.Advance(now)
		}
	}
}
