// Package timer implements a hierarchical timer wheel on the same
// float64 virtual clock the frag and sim packages use. It is the
// engine's connection-lifecycle clockwork: retransmission timeouts,
// SYN_RCVD give-up, and TIME_WAIT's 2MSL linger all hang off one wheel
// that the owner advances explicitly with Advance (the engine's
// Stack.Tick), so every run stays deterministic and simulation-speed.
//
// The design is the classic kernel wheel (Varghese & Lauck): virtual
// time is quantized into ticks, each of the four levels holds 64 slots,
// and a slot at level l spans 64^l ticks. Insertion and cancellation are
// O(1); advancing does O(1) amortized work per tick plus a cascade when
// a level wraps. Timers beyond the top level's horizon (64^4 ticks) wait
// in an overflow list that is reconsidered at each top-level wrap.
//
// Within one tick, timers fire ordered by (deadline, schedule order), so
// firing order is globally deterministic and fire times are
// nondecreasing. A timer never fires early: deadlines are rounded up to
// the next tick boundary.
//
// The wheel is not safe for concurrent use; the engine serializes all
// access under its stack lock.
package timer

import (
	"math"
	"sort"
)

// Wheel geometry.
const (
	slotBits = 6
	numSlots = 1 << slotBits // 64 slots per level
	slotMask = numSlots - 1
	levels   = 4
	// horizonTicks is the largest delta (exclusive) the wheel proper can
	// hold; anything farther out waits in the overflow list.
	horizonTicks = 1 << (slotBits * levels)
)

// DefaultTick is the wheel granularity used when none is given: 1 ms of
// virtual time, three orders of magnitude below the engine's coarsest
// timer (2MSL) and fine enough for sub-RTT retransmission timeouts.
const DefaultTick = 1e-3

// Timer is one scheduled callback. It is returned by Schedule and is
// valid to Cancel until it fires.
type Timer struct {
	deadline float64
	fn       func(now float64)
	seq      uint64
	wheel    *Wheel
	state    timerState
	overflow bool // currently parked in the overflow list
}

type timerState uint8

const (
	statePending timerState = iota
	stateFired
	stateCanceled
)

// Deadline returns the virtual time the timer was scheduled for.
func (t *Timer) Deadline() float64 { return t.deadline }

// Pending reports whether the timer is still waiting to fire.
func (t *Timer) Pending() bool { return t != nil && t.state == statePending }

// Cancel prevents a pending timer from firing and reports whether it was
// still pending. Canceling a fired or already-canceled timer is a no-op.
// The timer's slot entry is reclaimed lazily when its bucket is next
// visited, so Cancel is O(1).
func (t *Timer) Cancel() bool {
	if t == nil || t.state != statePending {
		return false
	}
	t.state = stateCanceled
	t.wheel.pending--
	if t.overflow {
		t.wheel.overflowLive--
	}
	return true
}

// Wheel is the timer wheel. Use New; the zero value is not ready.
type Wheel struct {
	tick float64
	cur  uint64 // current tick number (floor(now / tick))
	seq  uint64 // schedule order, breaks deadline ties deterministically

	slots [levels][numSlots][]*Timer
	// due holds timers scheduled at or before the current tick; they fire
	// on the next Advance (or during the current one, for reinsertions).
	due []*Timer
	// overflowQ holds timers beyond horizonTicks.
	overflowQ []*Timer

	pending      int // live timers anywhere
	overflowLive int // live timers in overflowQ

	// Fired counts timers that have run, for instrumentation.
	Fired uint64
}

// New builds a wheel with the given tick granularity in virtual seconds
// (DefaultTick if tick <= 0). The clock starts at zero.
func New(tick float64) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Wheel{tick: tick}
}

// Tick returns the wheel granularity in virtual seconds.
func (w *Wheel) Tick() float64 { return w.tick }

// Now returns the wheel's current virtual time.
func (w *Wheel) Now() float64 { return float64(w.cur) * w.tick }

// Pending returns the number of live (scheduled, unfired, uncanceled)
// timers.
func (w *Wheel) Pending() int { return w.pending }

// Schedule registers fn to run when virtual time reaches at. A deadline
// at or before the current time fires on the next Advance. The callback
// receives the effective fire time, which is never before at.
func (w *Wheel) Schedule(at float64, fn func(now float64)) *Timer {
	t := &Timer{deadline: at, fn: fn, seq: w.seq, wheel: w}
	w.seq++
	w.pending++
	w.place(t)
	return t
}

// tickOf converts a deadline to its tick number, rounding up so a timer
// never fires before its deadline.
func (w *Wheel) tickOf(at float64) uint64 {
	if at <= 0 {
		return 0
	}
	return uint64(math.Ceil(at / w.tick))
}

// place files a live timer into the structure appropriate for its
// distance from the current tick.
func (w *Wheel) place(t *Timer) {
	tk := w.tickOf(t.deadline)
	if tk <= w.cur {
		w.due = append(w.due, t)
		return
	}
	delta := tk - w.cur
	if delta >= horizonTicks {
		t.overflow = true
		w.overflowLive++
		w.overflowQ = append(w.overflowQ, t)
		return
	}
	level := 0
	for delta >= numSlots<<(uint(level)*slotBits) {
		level++
	}
	slot := (tk >> (uint(level) * slotBits)) & slotMask
	w.slots[level][slot] = append(w.slots[level][slot], t)
}

// Advance moves virtual time forward to 'to', firing every timer whose
// deadline has been reached, in nondecreasing (deadline, schedule order).
// Callbacks run synchronously inside Advance and may schedule or cancel
// other timers, including reinsertion at the current time. Advancing
// backwards is a no-op.
func (w *Wheel) Advance(to float64) {
	target := uint64(to / w.tick)
	w.fireDue()
	for w.cur < target {
		if w.pending == 0 {
			// Empty wheel: jump the clock.
			w.cur = target
			break
		}
		if w.pending == w.overflowLive {
			// Everything live is beyond the horizon: skip empty ticks up
			// to the next top-level wrap (where overflow is reconsidered)
			// or the target, whichever is nearer.
			next := (w.cur/horizonTicks + 1) * horizonTicks
			if next-1 < target {
				w.cur = next - 1
			} else {
				w.cur = target
				break
			}
		}
		w.cur++
		if w.cur&slotMask == 0 {
			w.cascade()
		}
		w.fireSlot()
		w.fireDue()
	}
	w.fireDue()
}

// cascade redistributes the buckets that the just-incremented tick
// exposes at each wrapped level, innermost first. At a top-level wrap the
// overflow list is reconsidered too.
func (w *Wheel) cascade() {
	for level := 1; level < levels; level++ {
		shift := uint(level) * slotBits
		slot := (w.cur >> shift) & slotMask
		batch := w.slots[level][slot]
		w.slots[level][slot] = nil
		for _, t := range batch {
			if t.state == statePending {
				w.place(t)
			}
		}
		if (w.cur>>shift)&slotMask != 0 {
			break
		}
	}
	if w.cur&(horizonTicks-1) == 0 {
		batch := w.overflowQ
		w.overflowQ = nil
		for _, t := range batch {
			if t.state != statePending {
				continue
			}
			t.overflow = false
			w.overflowLive--
			w.place(t)
		}
	}
}

// fireSlot runs the level-0 bucket for the current tick.
func (w *Wheel) fireSlot() {
	slot := w.cur & slotMask
	batch := w.slots[0][slot]
	if len(batch) == 0 {
		return
	}
	w.slots[0][slot] = nil
	w.fireBatch(batch)
}

// fireDue drains the due list, which callbacks may refill (a reinsertion
// at or before the current time fires within the same Advance).
func (w *Wheel) fireDue() {
	for len(w.due) > 0 {
		batch := w.due
		w.due = nil
		w.fireBatch(batch)
	}
}

// fireBatch runs one bucket's live timers in (deadline, seq) order. All
// deadlines in a bucket fall within one tick, and ticks are processed in
// order, so sorting here makes global fire order nondecreasing.
func (w *Wheel) fireBatch(batch []*Timer) {
	live := batch[:0]
	for _, t := range batch {
		if t.state == statePending {
			live = append(live, t)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].deadline != live[j].deadline {
			return live[i].deadline < live[j].deadline
		}
		return live[i].seq < live[j].seq
	})
	now := w.Now()
	for _, t := range live {
		if t.state != statePending {
			continue // canceled by an earlier callback in this batch
		}
		t.state = stateFired
		w.pending--
		w.Fired++
		at := t.deadline
		if at < now {
			at = now // scheduled in the past: fires "now"
		}
		t.fn(at)
	}
}
