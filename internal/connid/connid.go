// Package connid implements the protocol alternative §3.5 weighs against
// hashing: explicit connection identifiers in the packet header, as in
// TP4, X.25 and XTP. Peers negotiate a small integer per connection; data
// packets carry it, and the receiver indexes a PCB array directly —
// "completely eliminating the need to search."
//
// TCP has no such field, so this package grafts one on as a TCP option
// (kind 253, the RFC 4727 experimental codepoint) holding the receiver's
// 32-bit connection ID. The Table type performs the negotiation
// bookkeeping and the O(1) receive path, including a zero-allocation
// option scan straight off the raw frame.
//
// The paper's verdict — hashing is cheap enough to make this machinery
// unnecessary — is exactly what BenchmarkConnID quantifies: the option
// scan plus array index against the hash plus short chain walk.
package connid

import (
	"errors"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// OptKind is the TCP option kind used for the connection ID (experimental
// codepoint per RFC 4727).
const OptKind = 253

// optLen is the wire length of the option: kind, length, 4-byte ID.
const optLen = 6

// Errors reported by the receive path.
var (
	ErrNoID      = errors.New("connid: segment carries no connection-ID option")
	ErrUnknownID = errors.New("connid: no connection with this ID")
)

// Option builds the TCP option carrying id.
func Option(id uint32) wire.TCPOption {
	return wire.TCPOption{
		Kind: OptKind,
		Data: []byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)},
	}
}

// FromOptions extracts the connection ID from parsed TCP options.
func FromOptions(opts []wire.TCPOption) (uint32, bool) {
	for _, o := range opts {
		if o.Kind == OptKind && len(o.Data) == 4 {
			return uint32(o.Data[0])<<24 | uint32(o.Data[1])<<16 |
				uint32(o.Data[2])<<8 | uint32(o.Data[3]), true
		}
	}
	return 0, false
}

// ExtractID pulls the connection ID out of a raw IPv4/TCP frame without
// full parsing or validation — the fast path a TP4-style receiver runs
// before touching any PCB. It performs no allocation.
func ExtractID(frame []byte) (uint32, error) {
	if len(frame) < wire.IPv4HeaderLen {
		return 0, wire.ErrIPv4Truncated
	}
	ihl := int(frame[0]&0x0f) * 4
	if frame[0]>>4 != 4 || ihl < wire.IPv4HeaderLen {
		return 0, wire.ErrIPv4Version
	}
	if len(frame) < ihl+wire.TCPHeaderLen {
		return 0, wire.ErrTCPTruncated
	}
	tcp := frame[ihl:]
	off := int(tcp[12]>>4) * 4
	if off < wire.TCPHeaderLen || len(tcp) < off {
		return 0, wire.ErrTCPBadOffset
	}
	opts := tcp[wire.TCPHeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of list
			return 0, ErrNoID
		case 1: // nop
			opts = opts[1:]
		case OptKind:
			if len(opts) >= optLen && opts[1] == optLen {
				return uint32(opts[2])<<24 | uint32(opts[3])<<16 |
					uint32(opts[4])<<8 | uint32(opts[5]), nil
			}
			return 0, wire.ErrTCPBadOptions
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return 0, wire.ErrTCPBadOptions
			}
			opts = opts[opts[1]:]
		}
	}
	return 0, ErrNoID
}

// Table is the receiver-side connection-ID table: negotiation bookkeeping
// over a core.DirectIndex. The zero value is not usable; call NewTable.
type Table struct {
	di *core.DirectIndex
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{di: core.NewDirectIndex()} }

// Open registers a new connection (the SYN path, where the tuple must
// still be used) and returns its PCB and the ID the peer must echo in
// every subsequent segment.
func (t *Table) Open(k core.Key) (*core.PCB, uint32, error) {
	pcb := core.NewPCB(k)
	if err := t.di.Insert(pcb); err != nil {
		return nil, 0, err
	}
	return pcb, uint32(pcb.ID), nil
}

// Close releases the connection and recycles its ID.
func (t *Table) Close(k core.Key) bool { return t.di.Remove(k) }

// Len returns the number of open connections.
func (t *Table) Len() int { return t.di.Len() }

// Stats exposes the underlying lookup statistics.
func (t *Table) Stats() *core.Stats { return t.di.Stats() }

// DemuxFrame is the full receive path: scan the raw frame for the
// connection-ID option and index the PCB array. Exactly one PCB is
// examined. Frames without the option (e.g. a SYN) fall back to the tuple
// lookup, which for a DirectIndex is also O(1).
func (t *Table) DemuxFrame(frame []byte) (*core.PCB, error) {
	id, err := ExtractID(frame)
	if err == nil {
		r := t.di.LookupID(int(id))
		if r.PCB == nil {
			return nil, ErrUnknownID
		}
		return r.PCB, nil
	}
	if !errors.Is(err, ErrNoID) {
		return nil, err
	}
	tuple, err := wire.ExtractTuple(frame)
	if err != nil {
		return nil, err
	}
	r := t.di.Lookup(core.KeyFromTuple(tuple), core.DirData)
	if r.PCB == nil {
		return nil, ErrUnknownID
	}
	return r.PCB, nil
}
