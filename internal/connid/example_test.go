package connid_test

import (
	"fmt"

	"tcpdemux/internal/connid"
	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// The TP4/X.25/XTP pattern §3.5 describes: negotiate an ID at open, carry
// it in every data packet, demultiplex by array index.
func ExampleTable() {
	tbl := connid.NewTable()
	k := core.Key{
		LocalAddr: wire.MakeAddr(10, 0, 0, 1), LocalPort: 1521,
		RemoteAddr: wire.MakeAddr(10, 1, 0, 5), RemotePort: 31005,
	}
	_, id, err := tbl.Open(k)
	if err != nil {
		panic(err)
	}

	// The peer echoes the negotiated ID as a TCP option on every segment.
	tu := k.Tuple()
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: tu.SrcAddr, Dst: tu.DstAddr},
		wire.TCPHeader{
			SrcPort: tu.SrcPort, DstPort: tu.DstPort,
			Flags:   wire.FlagACK | wire.FlagPSH,
			Options: []wire.TCPOption{connid.Option(id)},
		},
		[]byte("SELECT 1"),
	)
	if err != nil {
		panic(err)
	}
	pcb, err := tbl.DemuxFrame(frame)
	if err != nil {
		panic(err)
	}
	fmt.Println(pcb != nil, tbl.Stats().MeanExamined())
	// Output: true 1
}
