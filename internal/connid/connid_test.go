package connid

import (
	"errors"
	"testing"
	"testing/quick"

	"tcpdemux/internal/core"
	"tcpdemux/internal/tpca"
	"tcpdemux/internal/wire"
)

// frameFor builds a data frame for key k carrying the given ID option.
func frameFor(t testing.TB, k core.Key, id uint32, withOpt bool) []byte {
	t.Helper()
	tu := k.Tuple()
	tcp := wire.TCPHeader{
		SrcPort: tu.SrcPort, DstPort: tu.DstPort,
		Seq: 100, Ack: 200, Flags: wire.FlagACK | wire.FlagPSH,
	}
	if withOpt {
		tcp.Options = []wire.TCPOption{Option(id)}
	}
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: tu.SrcAddr, Dst: tu.DstAddr},
		tcp, []byte("query"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestOptionRoundTrip(t *testing.T) {
	f := func(id uint32) bool {
		got, ok := FromOptions([]wire.TCPOption{Option(id)})
		return ok && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromOptionsAbsent(t *testing.T) {
	if _, ok := FromOptions([]wire.TCPOption{wire.MSSOption(1460)}); ok {
		t.Fatal("found an ID in an MSS option")
	}
	if _, ok := FromOptions(nil); ok {
		t.Fatal("found an ID in no options")
	}
}

func TestExtractIDFromWire(t *testing.T) {
	k := tpca.UserKey(3)
	frame := frameFor(t, k, 0xdeadbeef, true)
	id, err := ExtractID(frame)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xdeadbeef {
		t.Fatalf("id = %#x", id)
	}
	// Cross-check against the full parser.
	seg, err := wire.ParseSegment(frame)
	if err != nil {
		t.Fatal(err)
	}
	full, ok := FromOptions(seg.TCP.Options)
	if !ok || full != id {
		t.Fatalf("full parse id = %#x, %v", full, ok)
	}
}

func TestExtractIDSkipsOtherOptions(t *testing.T) {
	k := tpca.UserKey(4)
	tu := k.Tuple()
	tcp := wire.TCPHeader{
		SrcPort: tu.SrcPort, DstPort: tu.DstPort, Flags: wire.FlagACK,
		Options: []wire.TCPOption{wire.MSSOption(1460), Option(42)},
	}
	frame, err := wire.BuildSegment(
		wire.IPv4Header{TTL: 64, Src: tu.SrcAddr, Dst: tu.DstAddr}, tcp, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ExtractID(frame)
	if err != nil || id != 42 {
		t.Fatalf("id = %d, err = %v", id, err)
	}
}

func TestExtractIDErrors(t *testing.T) {
	k := tpca.UserKey(5)
	noOpt := frameFor(t, k, 0, false)
	if _, err := ExtractID(noOpt); !errors.Is(err, ErrNoID) {
		t.Fatalf("no-option frame: %v", err)
	}
	if _, err := ExtractID(noOpt[:10]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestExtractIDNoAlloc(t *testing.T) {
	frame := frameFor(t, tpca.UserKey(6), 7, true)
	n := testing.AllocsPerRun(100, func() {
		if _, err := ExtractID(frame); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("ExtractID allocates %v per run", n)
	}
}

func TestExtractIDNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v", r)
			}
		}()
		_, _ = ExtractID(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTableEndToEnd(t *testing.T) {
	tbl := NewTable()
	const n = 2000
	ids := make([]uint32, n)
	pcbs := make([]*core.PCB, n)
	for i := 0; i < n; i++ {
		pcb, id, err := tbl.Open(tpca.UserKey(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i], pcbs[i] = id, pcb
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Data frames carrying the negotiated ID demux in exactly one
	// examination regardless of the 2,000-connection population.
	for i := 0; i < n; i += 97 {
		frame := frameFor(t, tpca.UserKey(i), ids[i], true)
		pcb, err := tbl.DemuxFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if pcb != pcbs[i] {
			t.Fatalf("frame %d demuxed to wrong PCB", i)
		}
	}
	if m := tbl.Stats().MeanExamined(); m != 1 {
		t.Fatalf("mean examined = %v, want exactly 1", m)
	}
	// A SYN-like frame without the option falls back to the tuple path.
	pcb, err := tbl.DemuxFrame(frameFor(t, tpca.UserKey(0), 0, false))
	if err != nil || pcb != pcbs[0] {
		t.Fatalf("fallback path: %v, %v", pcb, err)
	}
}

func TestTableUnknownID(t *testing.T) {
	tbl := NewTable()
	if _, _, err := tbl.Open(tpca.UserKey(0)); err != nil {
		t.Fatal(err)
	}
	frame := frameFor(t, tpca.UserKey(0), 999, true)
	if _, err := tbl.DemuxFrame(frame); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown ID: %v", err)
	}
}

func TestTableCloseRecyclesIDs(t *testing.T) {
	tbl := NewTable()
	_, id0, err := tbl.Open(tpca.UserKey(0))
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Close(tpca.UserKey(0)) {
		t.Fatal("close failed")
	}
	// A stale frame carrying the dead ID must not resolve.
	if _, err := tbl.DemuxFrame(frameFor(t, tpca.UserKey(0), id0, true)); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("stale ID resolved: %v", err)
	}
	_, id1, err := tbl.Open(tpca.UserKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id0 {
		t.Fatalf("ID not recycled: %d vs %d", id1, id0)
	}
}
