// Package discipline is the one place a demultiplexing discipline is
// resolved from its command-line name. demuxd, demuxsim, and benchjson
// all accept `-discipline`/`-algos` + `-hash` + `-chains` flags; before
// this package each binary paired hashfn.ByName with core.New (or
// parallel.New, or a hard-coded constructor) on its own, which is
// exactly how the sharded workloads drifted into hard-coding
// sequent-multiplicative regardless of the flags. Selecting through one
// helper keeps the three binaries' name spaces identical and makes a
// per-shard factory (what shard.Config consumes) derivable from the
// same validated selection as a single table.
//
// Importing this package also guarantees the flat disciplines are
// registered: internal/flat registers flat-hopscotch and flat-cuckoo
// from an init hook, so a binary that resolved names through core.New
// alone would silently lack them unless something else imported flat.
package discipline

import (
	"fmt"
	"strings"

	"tcpdemux/internal/core"
	_ "tcpdemux/internal/flat" // register flat-hopscotch / flat-cuckoo with core
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/parallel"
)

// Selection is a validated (discipline, hash, chains) triple. Zero value
// is invalid; build one with Select.
type Selection struct {
	Name   string
	Chains int
	Hash   hashfn.Func
}

// Select resolves a discipline name and a hash-function name into a
// Selection, validating both eagerly: the discipline must be registered
// with core (flat's registrations included) and the hash must be known
// to hashfn.ByName. Surrounding whitespace on the discipline name is
// trimmed so comma-separated flag lists split cleanly.
func Select(name, hashName string, chains int) (Selection, error) {
	hashFn, err := hashfn.ByName(hashName)
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{Name: strings.TrimSpace(name), Chains: chains, Hash: hashFn}
	if _, err := sel.New(); err != nil {
		return Selection{}, err
	}
	return sel, nil
}

// New constructs a fresh single-writer demuxer instance of the selected
// discipline. Each call returns an independent table.
func (sel Selection) New() (core.Demuxer, error) {
	return core.New(sel.Name, core.Config{Chains: sel.Chains, Hash: sel.Hash})
}

// PerShard returns the per-shard factory a shard.Config consumes: every
// shard gets its own instance so no lookup state is shared. The
// selection was validated by Select, so a construction failure here is
// a programming error and panics rather than forcing an error path into
// every shard.Config literal.
func (sel Selection) PerShard() func(shard int) core.Demuxer {
	return func(int) core.Demuxer {
		d, err := sel.New()
		if err != nil {
			panic(fmt.Sprintf("discipline: validated selection %q failed to construct: %v", sel.Name, err))
		}
		return d
	}
}

// Concurrent constructs the selected discipline as a locking-discipline
// concurrent demuxer (parallel.New's registry: locked, sharded, rcu,
// the flat tables, ...). The two registries share names where a
// discipline exists in both forms.
func (sel Selection) Concurrent() (parallel.ConcurrentDemuxer, error) {
	return parallel.New(sel.Name, core.Config{Chains: sel.Chains, Hash: sel.Hash})
}

// SelectConcurrent is Select against the locking-discipline registry
// instead of the single-writer one: names like locked-sequent or
// rcu-sequent exist only there, so Select's eager core.New validation
// would wrongly reject them. Construction is side-effect free in both
// registries, so trial construction is safe here too.
func SelectConcurrent(name, hashName string, chains int) (Selection, error) {
	hashFn, err := hashfn.ByName(hashName)
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{Name: strings.TrimSpace(name), Chains: chains, Hash: hashFn}
	if _, err := sel.Concurrent(); err != nil {
		return Selection{}, err
	}
	return sel, nil
}

// Names returns the single-writer registry's discipline names, sorted.
func Names() []string { return core.Algorithms() }

// ConcurrentNames returns the locking-discipline registry's names,
// sorted.
func ConcurrentNames() []string { return parallel.Disciplines() }
