package discipline

import "testing"

func TestSelectValidatesEagerly(t *testing.T) {
	if _, err := Select("no-such-discipline", "multiplicative", 64); err == nil {
		t.Error("unknown discipline accepted")
	}
	if _, err := Select("sequent", "no-such-hash", 64); err == nil {
		t.Error("unknown hash accepted")
	}
	sel, err := Select(" sequent ", "multiplicative", 64)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if sel.Name != "sequent" {
		t.Errorf("name not trimmed: %q", sel.Name)
	}
}

// Importing this package must guarantee the flat registrations — the
// exact gap that let the sharded workloads drift to hard-coded sequent.
func TestFlatNamesRegistered(t *testing.T) {
	for _, name := range []string{"flat-hopscotch", "flat-cuckoo"} {
		sel, err := Select(name, "multiplicative", 64)
		if err != nil {
			t.Fatalf("Select(%s): %v", name, err)
		}
		if _, err := sel.New(); err != nil {
			t.Errorf("New(%s): %v", name, err)
		}
	}
}

func TestPerShardReturnsIndependentTables(t *testing.T) {
	sel, err := Select("sequent", "multiplicative", 64)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	mk := sel.PerShard()
	a, b := mk(0), mk(1)
	if a == b {
		t.Fatal("PerShard returned a shared instance")
	}
}

func TestSelectConcurrentUsesParallelRegistry(t *testing.T) {
	// rcu-sequent exists only in the locking-discipline registry.
	if _, err := Select("rcu-sequent", "multiplicative", 64); err == nil {
		t.Error("single-writer Select accepted a parallel-only name")
	}
	sel, err := SelectConcurrent("rcu-sequent", "multiplicative", 64)
	if err != nil {
		t.Fatalf("SelectConcurrent: %v", err)
	}
	if _, err := sel.Concurrent(); err != nil {
		t.Errorf("Concurrent: %v", err)
	}
	if _, err := SelectConcurrent("no-such", "multiplicative", 64); err == nil {
		t.Error("unknown concurrent discipline accepted")
	}
}

func TestNamesNonEmpty(t *testing.T) {
	if len(Names()) == 0 || len(ConcurrentNames()) == 0 {
		t.Fatalf("empty registries: %v / %v", Names(), ConcurrentNames())
	}
}
