package tpca

import (
	"math"
	"testing"

	"tcpdemux/internal/analytic"
	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
)

// run executes the workload against a fresh demuxer built by name.
func run(t *testing.T, algo string, cfg Config, dcfg core.Config) *Result {
	t.Helper()
	d, err := core.New(algo, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// within asserts |got-want|/want <= frac.
func within(t *testing.T, got, want, frac float64, what string) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", what)
	}
	if math.Abs(got-want)/math.Abs(want) > frac {
		t.Errorf("%s = %v, want %v ± %.0f%%", what, got, want, frac*100)
	}
}

func baseCfg(users int) Config {
	return Config{Users: users, ResponseTime: 0.2, RTT: 0.001, Seed: 42}
}

// --- simulation vs analytic model (EXP-SIM) ---------------------------------

func TestSimMatchesBSDModel(t *testing.T) {
	const n = 200
	r := run(t, "bsd", baseCfg(n), core.Config{})
	within(t, r.Overall.Mean(), analytic.BSD(n), 0.05, "BSD mean examined")
	// Cache hit rate ~ 1/N (§3.1). Wide tolerance: it is a small number.
	if hr := r.CacheHitRate; hr > 5.0/n {
		t.Errorf("BSD hit rate = %v, expected ~1/N = %v", hr, 1.0/n)
	}
}

func TestSimMatchesCrowcroftModel(t *testing.T) {
	const n = 200
	cfg := baseCfg(n)
	cfg.MeasuredTxns = 60 * n
	r := run(t, "mtf", cfg, core.Config{})
	p := analytic.Params{N: n, R: cfg.ResponseTime}
	// The paper reports PCBs *preceding* the target; the simulator counts
	// the target too, hence the +1.
	within(t, r.Txn.Mean(), analytic.CrowcroftEntry(p)+1, 0.05, "MTF entry")
	within(t, r.Ack.Mean(), analytic.CrowcroftAck(p)+1, 0.10, "MTF ack")
	within(t, r.Overall.Mean(), analytic.Crowcroft(p)+1, 0.05, "MTF overall")
}

func TestSimMatchesSRModel(t *testing.T) {
	const n = 200
	cfg := baseCfg(n)
	cfg.MeasuredTxns = 60 * n
	r := run(t, "sr", cfg, core.Config{})
	p := analytic.Params{N: n, R: cfg.ResponseTime, D: cfg.RTT}
	within(t, r.Overall.Mean(), analytic.SR(p), 0.07, "SR overall")
	within(t, r.Ack.Mean(), analytic.SRNa(p), 0.15, "SR ack")
}

func TestSimMatchesSequentModel(t *testing.T) {
	const n = 200
	cfg := baseCfg(n)
	cfg.MeasuredTxns = 60 * n
	r := run(t, "sequent", cfg, core.Config{Chains: 19})
	want, err := analytic.Sequent(analytic.Params{N: n, R: cfg.ResponseTime, H: 19})
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 22 assumes perfectly even chains; hashing gives binomial spread,
	// so allow a wider band.
	within(t, r.Overall.Mean(), want, 0.20, "Sequent overall")
	// Survival probability: ack lookups hitting the chain cache.
	surv, _ := analytic.SequentSurvival(analytic.Params{N: n, R: cfg.ResponseTime, H: 19})
	if r.CacheHitRate < surv/4 {
		t.Errorf("cache hit rate %v implausibly low vs survival %v", r.CacheHitRate, surv)
	}
}

// TestSimOrderingMatchesPaper reruns the headline comparison at a scale
// tests can afford: the paper's ranking Sequent << MTF < BSD <= (SR at
// large N) must emerge from the simulation itself.
func TestSimOrderingMatchesPaper(t *testing.T) {
	const n = 300
	cfg := baseCfg(n)
	results := map[string]float64{}
	for _, algo := range []string{"bsd", "mtf", "sr", "sequent"} {
		results[algo] = run(t, algo, cfg, core.Config{Chains: 19}).Overall.Mean()
	}
	if !(results["sequent"] < results["sr"] && results["sequent"] < results["mtf"] &&
		results["mtf"] < results["bsd"] && results["sr"] < results["bsd"]) {
		t.Fatalf("ordering violated: %v", results)
	}
	if results["bsd"]/results["sequent"] < 8 {
		t.Errorf("Sequent advantage only %.1fx at N=%d", results["bsd"]/results["sequent"], n)
	}
}

// --- point-of-sale polling (EXP-POS) ------------------------------------------

func TestDeterministicThinkTimeIsMTFWorstCase(t *testing.T) {
	const n = 150
	cfg := Config{
		Users: n, ResponseTime: 0.2, RTT: 0.001, Seed: 7,
		Think: rng.ConstDist{V: 10},
	}
	r := run(t, "mtf", cfg, core.Config{})
	// §3.2: "Crowcroft's algorithm would look through all 2,000 PCBs on
	// each transaction entry."
	if r.Txn.Mean() < float64(n)*0.98 {
		t.Errorf("deterministic think: MTF entry cost %v, want ≈ %d", r.Txn.Mean(), n)
	}
	// BSD is indifferent to the think-time law.
	rb := run(t, "bsd", cfg, core.Config{})
	within(t, rb.Overall.Mean(), analytic.BSD(n), 0.06, "BSD under polling")
}

// --- mechanics ------------------------------------------------------------------

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := baseCfg(50)
	a := run(t, "sequent", cfg, core.Config{Chains: 19})
	b := run(t, "sequent", cfg, core.Config{Chains: 19})
	if a.Overall.Mean() != b.Overall.Mean() || a.Transactions != b.Transactions {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	cfg.Seed = 43
	c := run(t, "sequent", cfg, core.Config{Chains: 19})
	if c.Overall.Mean() == a.Overall.Mean() && c.Overall.Var() == a.Overall.Var() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunMeasuredCounts(t *testing.T) {
	cfg := baseCfg(20)
	cfg.WarmupTxns = 40
	cfg.MeasuredTxns = 200
	r := run(t, "map", cfg, core.Config{})
	if r.Transactions != 200 {
		t.Fatalf("measured %d transactions, want 200", r.Transactions)
	}
	// Each measured transaction contributes a txn lookup; acks may spill
	// past the horizon slightly but must be close.
	if r.Txn.N() != 200 {
		t.Fatalf("txn samples = %d", r.Txn.N())
	}
	if r.Ack.N() < 150 {
		t.Fatalf("ack samples = %d, expected most of 200", r.Ack.N())
	}
	if r.SimTime <= 0 {
		t.Fatal("non-positive measured sim time")
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Users: 0},
		{Users: 5, ResponseTime: -1},
		{Users: 5, RTT: -1},
	}
	for _, cfg := range bad {
		if _, err := Run(core.NewMapDemux(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRunRejectsPrepopulatedDuplicates(t *testing.T) {
	d := core.NewMapDemux()
	if err := d.Insert(core.NewPCB(UserKey(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, baseCfg(5)); err == nil {
		t.Fatal("duplicate PCB not reported")
	}
}

func TestUserKeysDistinct(t *testing.T) {
	seen := map[core.Key]bool{}
	for i := 0; i < 20000; i++ {
		k := UserKey(i)
		if seen[k] {
			t.Fatalf("duplicate key at user %d", i)
		}
		seen[k] = true
	}
}

func TestTPSAndScaling(t *testing.T) {
	cfg := Config{Users: 2000, ResponseTime: 0.2, RTT: 0.001}
	tps := cfg.TPS()
	// 2000 users cycling every ~10.2s ≈ 196 TPS, the paper's "200 TPC/A
	// TPS benchmark must have at least 2,000 simulated users".
	if tps < 180 || tps > 200 {
		t.Fatalf("TPS = %v, want ≈196", tps)
	}
	if !cfg.ScalingOK() {
		t.Fatal("TPC/A-conformant config flagged as violating scaling rule")
	}
	fast := cfg
	fast.Think = rng.ConstDist{V: 1} // users hammering once a second
	if fast.ScalingOK() {
		t.Fatal("1s think time should violate the 10x scaling rule")
	}
}

func TestRunAlgorithms(t *testing.T) {
	rs, err := RunAlgorithms([]string{"bsd", "map"}, core.Config{}, baseCfg(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Algorithm != "bsd" || rs[1].Algorithm != "map" {
		t.Fatalf("results: %v", rs)
	}
	if _, err := RunAlgorithms([]string{"nope"}, core.Config{}, baseCfg(5)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMapDemuxIsFlatInN(t *testing.T) {
	// The modern baseline: cost 1 per lookup regardless of population.
	small := run(t, "map", baseCfg(20), core.Config{})
	large := run(t, "map", baseCfg(400), core.Config{})
	if small.Overall.Mean() != 1 || large.Overall.Mean() != 1 {
		t.Fatalf("map cost not flat: %v vs %v", small.Overall.Mean(), large.Overall.Mean())
	}
}

func TestDirectIndexIsFlatInN(t *testing.T) {
	r := run(t, "direct-index", baseCfg(300), core.Config{})
	if r.Overall.Mean() != 1 {
		t.Fatalf("direct-index mean = %v", r.Overall.Mean())
	}
}

// TestWireLevelMatchesFastPath: driving lookups from packet bytes must
// yield bit-identical cost statistics — the frames only add decode work.
func TestWireLevelMatchesFastPath(t *testing.T) {
	cfg := baseCfg(80)
	fast := run(t, "sequent", cfg, core.Config{Chains: 19})
	cfg.WireLevel = true
	wired := run(t, "sequent", cfg, core.Config{Chains: 19})
	if fast.Overall.Mean() != wired.Overall.Mean() ||
		fast.Transactions != wired.Transactions ||
		fast.CacheHitRate != wired.CacheHitRate {
		t.Fatalf("wire mode diverged: %v vs %v", fast, wired)
	}
}

func TestRunReplicated(t *testing.T) {
	build := func() (core.Demuxer, error) { return core.NewSequentHash(19, nil), nil }
	rep, err := RunReplicated(build, baseCfg(100), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerSeed.N() != 5 {
		t.Fatalf("replications = %d", rep.PerSeed.N())
	}
	if rep.CI95() <= 0 {
		t.Fatal("zero CI across distinct seeds")
	}
	if rep.Mean() <= 1 {
		t.Fatalf("implausible mean %v", rep.Mean())
	}
	if _, err := RunReplicated(build, baseCfg(10), 0); err == nil {
		t.Fatal("zero reps accepted")
	}
}

// TestUniformThinkMatchesGeneralModel validates the CrowcroftEntryGeneral
// extension against simulation: uniform-[5,15] think times drive the MTF
// entry cost well above the exponential case, and the quadrature model
// predicts the measured value.
func TestUniformThinkMatchesGeneralModel(t *testing.T) {
	const n = 200
	cfg := Config{
		Users: n, ResponseTime: 0.2, RTT: 0.001, Seed: 11,
		Think:        rng.UniformDist{Lo: 5, Hi: 15},
		MeasuredTxns: 40 * n,
	}
	r := run(t, "mtf", cfg, core.Config{})
	lo, hi := 5.0, 15.0
	f := func(tt float64) float64 {
		if tt < lo || tt > hi {
			return 0
		}
		return 1 / (hi - lo)
	}
	// The tagged user's density alone (CrowcroftEntryGeneral) underpredicts
	// because the other users' processes are also regular; the renewal form
	// with the uniform survival function is the correct model.
	survival := analytic.StationarySurvivalUniform(lo, hi, cfg.ResponseTime+cfg.RTT)
	model, err := analytic.CrowcroftEntryRenewal(analytic.Params{N: n, R: 0.2}, f, survival, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	within(t, r.Txn.Mean(), model+1, 0.03, "uniform-think MTF entry")
	poissonPeers, err := analytic.CrowcroftEntryGeneral(analytic.Params{N: n, R: 0.2}, f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if poissonPeers >= model {
		t.Fatalf("Poisson-peer model %v should underpredict renewal %v", poissonPeers, model)
	}
}
