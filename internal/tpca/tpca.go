// Package tpca implements the TPC/A communications workload of paper §2
// as a discrete-event simulation and drives any core.Demuxer with it.
//
// Each of N simulated users cycles forever through:
//
//  1. a transaction packet arrives at the server (demux lookup, data);
//     the server immediately transmits the transport-level
//     acknowledgement for the query (send notification),
//  2. R seconds later the server transmits the response (send
//     notification),
//  3. D seconds after that the client's transport-level acknowledgement
//     for the response arrives (demux lookup, ack),
//  4. the user thinks for a truncated-negative-exponential time T and the
//     next transaction arrives.
//
// That is the paper's four-packets-per-transaction model (§3): two inbound
// packets require PCB lookups, two outbound packets touch only the
// send-side cache. The paper's analysis was validated against this
// simulation, which the paper itself did not have ("these approximations
// have been qualitatively confirmed by benchmarks").
package tpca

import (
	"errors"
	"fmt"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/sim"
	"tcpdemux/internal/stats"
	"tcpdemux/internal/wire"
)

// TPC/A defaults (paper §2).
const (
	// DefaultThinkMean is the minimum mean think time the benchmark
	// allows, and the value the paper's analysis assumes.
	DefaultThinkMean = 10.0
	// DefaultThinkMaxFactor caps the truncated distribution at ten times
	// the mean, the benchmark's minimum maximum.
	DefaultThinkMaxFactor = 10.0
)

// Config parameterizes one simulation run.
type Config struct {
	// Users is N, the number of simulated users (one TCP connection each).
	Users int
	// ResponseTime is R in seconds.
	ResponseTime float64
	// RTT is the network round-trip delay D in seconds.
	RTT float64
	// Think overrides the think-time distribution. Nil selects the TPC/A
	// truncated negative exponential with ThinkMean.
	Think rng.Dist
	// ThinkMean overrides the think-time mean (DefaultThinkMean if zero).
	// Ignored when Think is set.
	ThinkMean float64
	// Seed seeds the deterministic RNG.
	Seed uint64
	// WarmupTxns is the number of transactions to run before statistics
	// collection starts (defaults to 3 per user).
	WarmupTxns int
	// MeasuredTxns is the number of transactions measured after warm-up
	// (defaults to 25 per user).
	MeasuredTxns int
	// WireLevel, when set, drives every inbound lookup from real packet
	// bytes: each arrival is a serialized IPv4/TCP frame whose tuple is
	// extracted on the zero-allocation fast path before the PCB lookup,
	// exercising the full receive path inside the simulation. Costs are
	// identical to the fast path; only wall-clock time differs.
	WireLevel bool
	// Observer, if non-nil, receives every server-side packet event —
	// inbound arrivals and outbound transmissions, warm-up included — in
	// virtual-time order. The trace package uses this to record runs for
	// later replay.
	Observer func(t float64, key core.Key, send, ack bool)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ThinkMean == 0 {
		c.ThinkMean = DefaultThinkMean
	}
	if c.Think == nil {
		c.Think = rng.TruncExpDist{M: c.ThinkMean, Max: DefaultThinkMaxFactor * c.ThinkMean}
	}
	if c.WarmupTxns == 0 {
		c.WarmupTxns = 3 * c.Users
	}
	if c.MeasuredTxns == 0 {
		c.MeasuredTxns = 25 * c.Users
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Users < 1:
		return errors.New("tpca: need at least one user")
	case c.ResponseTime < 0:
		return errors.New("tpca: negative response time")
	case c.RTT < 0:
		return errors.New("tpca: negative round-trip time")
	}
	return nil
}

// TPS returns the nominal transaction rate of the configuration,
// Users/(mean cycle time).
func (c Config) TPS() float64 {
	c = c.withDefaults()
	cycle := c.Think.Mean() + c.ResponseTime + c.RTT
	return float64(c.Users) / cycle
}

// ScalingOK reports whether the configuration satisfies the TPC/A scaling
// rule that the user population be at least ten times the transaction rate.
func (c Config) ScalingOK() bool {
	return float64(c.Users) >= 10*c.TPS()
}

// Result carries the measured statistics of one run.
type Result struct {
	// Algorithm is the demuxer's Name.
	Algorithm string
	// Config echoes the (defaulted) run parameters.
	Config Config
	// Overall aggregates PCBs examined per inbound packet.
	Overall stats.Summary
	// Txn aggregates examinations for transaction (data) packets only.
	Txn stats.Summary
	// Ack aggregates examinations for response acknowledgements only.
	Ack stats.Summary
	// CacheHitRate is the fraction of measured lookups satisfied by a
	// one-entry cache.
	CacheHitRate float64
	// Transactions is the number of measured transactions.
	Transactions uint64
	// Hist is the distribution of per-lookup examination counts over the
	// measured phase, for tail quantiles (Quantile method).
	Hist *stats.Histogram
	// SimTime is the virtual duration of the measured phase in seconds.
	SimTime float64
}

// Quantile returns the q-th quantile of the per-lookup examination count
// over the measured phase.
func (r *Result) Quantile(q float64) float64 {
	if r.Hist == nil {
		return 0
	}
	return r.Hist.Quantile(q)
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s: N=%d R=%gs D=%gs mean=%.1f (txn %.1f, ack %.1f) hit=%.2f%% txns=%d",
		r.Algorithm, r.Config.Users, r.Config.ResponseTime, r.Config.RTT,
		r.Overall.Mean(), r.Txn.Mean(), r.Ack.Mean(), r.CacheHitRate*100, r.Transactions)
}

// ServerAddr is the database server's address and listening port used for
// all generated connections.
var ServerAddr = struct {
	Addr wire.Addr
	Port uint16
}{wire.MakeAddr(10, 0, 0, 1), 1521}

// UserKey returns the connection key for user i: terminal addresses are
// assigned sequentially across /16s with ephemeral ports from a counter,
// the structured population a real terminal farm produces.
func UserKey(i int) core.Key {
	return core.Key{
		LocalAddr:  ServerAddr.Addr,
		LocalPort:  ServerAddr.Port,
		RemoteAddr: wire.MakeAddr(10, byte(1+i>>16), byte(i>>8), byte(i)),
		RemotePort: uint16(1024 + i%60000),
	}
}

// user is the per-user simulation state.
type user struct {
	pcb *core.PCB
	key core.Key
	// txnFrame and ackFrame are the serialized inbound packets used in
	// wire-level mode.
	txnFrame []byte
	ackFrame []byte
}

// buildFrames serializes the user's two inbound packet shapes.
func (u *user) buildFrames() error {
	tu := u.key.Tuple()
	ip := wire.IPv4Header{TTL: 64, Src: tu.SrcAddr, Dst: tu.DstAddr}
	txn, err := wire.BuildSegment(ip, wire.TCPHeader{
		SrcPort: tu.SrcPort, DstPort: tu.DstPort,
		Flags: wire.FlagACK | wire.FlagPSH, Window: 8192,
	}, []byte("BEGIN; UPDATE accounts ...; COMMIT"))
	if err != nil {
		return err
	}
	ack, err := wire.BuildSegment(ip, wire.TCPHeader{
		SrcPort: tu.SrcPort, DstPort: tu.DstPort,
		Flags: wire.FlagACK, Window: 8192,
	}, nil)
	if err != nil {
		return err
	}
	u.txnFrame, u.ackFrame = txn, ack
	return nil
}

// wireKey runs the receive fast path over a stored frame.
func wireKey(frame []byte) (core.Key, error) {
	tu, err := wire.ExtractTuple(frame)
	if err != nil {
		return core.Key{}, err
	}
	return core.KeyFromTuple(tu), nil
}

// Run drives the demuxer with the TPC/A workload and returns the measured
// statistics. The demuxer should be empty; Run inserts one PCB per user.
func Run(d core.Demuxer, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	src := rng.New(cfg.Seed)
	users := make([]*user, cfg.Users)
	for i := range users {
		u := &user{key: UserKey(i)}
		u.pcb = core.NewPCB(u.key)
		if cfg.WireLevel {
			if err := u.buildFrames(); err != nil {
				return nil, fmt.Errorf("tpca: building frames for user %d: %w", i, err)
			}
		}
		if err := d.Insert(u.pcb); err != nil {
			return nil, fmt.Errorf("tpca: inserting PCB %d: %w", i, err)
		}
		users[i] = u
	}

	res := &Result{Algorithm: d.Name(), Config: cfg}
	// One bucket per examination count up to the worst case (full table
	// plus cache probes), capped to bound memory at large N.
	buckets := cfg.Users + 3
	if buckets > 4096 {
		buckets = 4096
	}
	res.Hist = stats.NewHistogram(0, float64(cfg.Users+3), buckets)
	var (
		kernel     sim.Sim
		measuring  bool
		txnsTotal  uint64
		measureEnd = cfg.WarmupTxns + cfg.MeasuredTxns
		startTime  float64
		schedErr   error
	)

	schedule := func(delay float64, ev sim.Event) {
		if schedErr != nil {
			return
		}
		if _, err := kernel.After(delay, ev); err != nil {
			schedErr = err
		}
	}

	var txnArrive func(u *user) sim.Event
	txnArrive = func(u *user) sim.Event {
		return func(now float64) {
			if int(txnsTotal) >= measureEnd {
				return // drain: stop regenerating work
			}
			txnsTotal++
			if !measuring && int(txnsTotal) > cfg.WarmupTxns {
				measuring = true
				startTime = now
				d.Stats().Reset()
			}
			// Inbound transaction packet.
			if cfg.Observer != nil {
				cfg.Observer(now, u.key, false, false)
			}
			lookupKey := u.key
			if cfg.WireLevel {
				var err error
				if lookupKey, err = wireKey(u.txnFrame); err != nil {
					schedErr = err
					return
				}
			}
			r := d.Lookup(lookupKey, core.DirData)
			if r.PCB != u.pcb {
				schedErr = fmt.Errorf("tpca: lookup for %v returned wrong PCB", u.key)
				return
			}
			if measuring {
				res.Overall.Add(float64(r.Examined))
				res.Txn.Add(float64(r.Examined))
				res.Hist.Add(float64(r.Examined))
				res.Transactions++
			}
			u.pcb.RxSegments++
			// Transport-level acknowledgement for the query goes out now.
			if cfg.Observer != nil {
				cfg.Observer(now, u.key, true, true)
			}
			d.NotifySend(u.pcb)
			u.pcb.TxSegments++
			// Response transmitted R later.
			schedule(cfg.ResponseTime, func(sendTime float64) {
				if cfg.Observer != nil {
					cfg.Observer(sendTime, u.key, true, false)
				}
				d.NotifySend(u.pcb)
				u.pcb.TxSegments++
				// Client's ack arrives D after the response left.
				schedule(cfg.RTT, func(ackTime float64) {
					if cfg.Observer != nil {
						cfg.Observer(ackTime, u.key, false, true)
					}
					ackKey := u.key
					if cfg.WireLevel {
						var err error
						if ackKey, err = wireKey(u.ackFrame); err != nil {
							schedErr = err
							return
						}
					}
					ar := d.Lookup(ackKey, core.DirAck)
					if ar.PCB != u.pcb {
						schedErr = fmt.Errorf("tpca: ack lookup for %v returned wrong PCB", u.key)
						return
					}
					if measuring {
						res.Overall.Add(float64(ar.Examined))
						res.Ack.Add(float64(ar.Examined))
						res.Hist.Add(float64(ar.Examined))
					}
					u.pcb.RxSegments++
					// Think, then enter the next transaction.
					schedule(cfg.Think.Draw(src), txnArrive(u))
				})
			})
		}
	}

	// Stagger initial arrivals across one mean cycle so the system starts
	// near steady state; warm-up absorbs the residual transient.
	cycle := cfg.Think.Mean() + cfg.ResponseTime + cfg.RTT
	for _, u := range users {
		schedule(src.Float64()*cycle, txnArrive(u))
	}
	kernel.Run()
	if schedErr != nil {
		return nil, schedErr
	}
	res.SimTime = kernel.Now() - startTime
	st := d.Stats()
	if st.Lookups > 0 {
		res.CacheHitRate = st.HitRate()
	}
	return res, nil
}

// RunAlgorithms runs the same configuration against freshly constructed
// instances of the named algorithms, returning results in order.
func RunAlgorithms(names []string, dcfg core.Config, cfg Config) ([]*Result, error) {
	out := make([]*Result, 0, len(names))
	for _, n := range names {
		d, err := core.New(n, dcfg)
		if err != nil {
			return nil, err
		}
		r, err := Run(d, cfg)
		if err != nil {
			return nil, fmt.Errorf("tpca: running %s: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Replicated aggregates per-seed means from repeated runs of the same
// configuration, giving an honest confidence interval over independent
// replications (each run's internal samples are correlated; across-seed
// variation is not).
type Replicated struct {
	Algorithm string
	// PerSeed holds one overall mean per replication.
	PerSeed stats.Summary
}

// Mean returns the grand mean across replications.
func (r *Replicated) Mean() float64 { return r.PerSeed.Mean() }

// CI95 returns the 95% half-width across replications.
func (r *Replicated) CI95() float64 { return r.PerSeed.CI95() }

// RunReplicated runs the configuration reps times with consecutive seeds
// against fresh demuxers built by the constructor.
func RunReplicated(build func() (core.Demuxer, error), cfg Config, reps int) (*Replicated, error) {
	if reps < 1 {
		return nil, errors.New("tpca: need at least one replication")
	}
	out := &Replicated{}
	for i := 0; i < reps; i++ {
		d, err := build()
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1000003 // decorrelate streams
		res, err := Run(d, c)
		if err != nil {
			return nil, err
		}
		out.Algorithm = res.Algorithm
		out.PerSeed.Add(res.Overall.Mean())
	}
	return out, nil
}
