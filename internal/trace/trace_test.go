package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"

	"tcpdemux/internal/core"
	"tcpdemux/internal/tpca"
	"tcpdemux/internal/wire"
)

func sampleEvent(i int) Event {
	return Event{
		Time:  float64(i) * 0.125,
		Tuple: tpca.UserKey(i).Tuple(),
		Send:  i%2 == 0,
		Ack:   i%3 == 0,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.Write(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Fatalf("writer count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e != sampleEvent(i) {
			t.Fatalf("event %d = %+v, want %+v", i, e, sampleEvent(i))
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Count() != n {
		t.Fatalf("reader count = %d", r.Count())
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(tsec float64, src, dst [4]byte, sport, dport uint16, send, ack bool) bool {
		if math.IsNaN(tsec) {
			tsec = 0
		}
		e := Event{
			Time: tsec,
			Tuple: wire.Tuple{
				SrcAddr: src, DstAddr: dst, SrcPort: sport, DstPort: dport,
			},
			Send: send, Ack: ack,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.Write(e); err != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE0000"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("TDTR\xff\x00\x00\x00"))); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("TD"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReaderTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(sampleEvent(1)); err != nil || w.Flush() != nil {
		t.Fatal("write failed")
	}
	data := buf.Bytes()[:buf.Len()-3] // chop the final event
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestEventDir(t *testing.T) {
	if (Event{Ack: true}).Dir() != core.DirAck || (Event{}).Dir() != core.DirData {
		t.Fatal("Dir mapping wrong")
	}
}

// TestRecordReplayTPCA is the end-to-end use case: record a TPC/A run via
// the tpca Observer hook, replay it through a fresh demuxer of the same
// algorithm, and check the replayed cost statistics land near the original
// run's. (Exact equality is not expected: the recording's PCBs insert on
// first appearance, while the live run pre-inserts all users.)
func TestRecordReplayTPCA(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	cfg := tpca.Config{
		Users: n, ResponseTime: 0.2, RTT: 0.001, Seed: 9,
		WarmupTxns: 3 * n, MeasuredTxns: 20 * n,
		Observer: func(ts float64, key core.Key, send, ack bool) {
			if err := w.Write(Event{Time: ts, Tuple: key.Tuple(), Send: send, Ack: ack}); err != nil {
				t.Fatal(err)
			}
		},
	}
	live, err := tpca.Run(core.NewSequentHash(19, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// 4 packets per transaction (2 in, 2 out), warm-up + measured + drain.
	if w.Count() < uint64(4*(cfg.WarmupTxns+cfg.MeasuredTxns)) {
		t.Fatalf("recorded only %d events", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(core.NewSequentHash(19, nil), r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Connections != n {
		t.Fatalf("replay saw %d connections, want %d", rep.Connections, n)
	}
	if rep.Arrivals == 0 || rep.Events != w.Count() {
		t.Fatalf("replay consumed %d/%d events, %d arrivals", rep.Events, w.Count(), rep.Arrivals)
	}
	// Replay includes warm-up, so compare loosely against the live
	// measured mean.
	if rep.MeanExamined < live.Overall.Mean()*0.7 || rep.MeanExamined > live.Overall.Mean()*1.3 {
		t.Fatalf("replay mean %v far from live %v", rep.MeanExamined, live.Overall.Mean())
	}
}

// TestReplayDeterministic replays the same bytes twice through the same
// algorithm and demands identical statistics.
func TestReplayDeterministic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		ev := Event{Time: float64(i), Tuple: tpca.UserKey(i % 40).Tuple(), Ack: i%2 == 1}
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	run := func() *ReplayResult {
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(core.NewBSDList(), r)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanExamined != b.MeanExamined || a.Stats != b.Stats {
		t.Fatalf("replay nondeterministic: %+v vs %+v", a, b)
	}
}

func TestReplayAcrossAlgorithmsAgreeOnMembership(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 500; i++ {
		if err := w.Write(Event{Time: float64(i), Tuple: tpca.UserKey(i % 25).Tuple()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, algo := range core.Algorithms() {
		d, err := core.New(algo, core.Config{Chains: 7})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(d, r)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Connections != 25 || res.Arrivals != 500 {
			t.Fatalf("%s: %+v", algo, res)
		}
	}
}
