// Package trace records and replays server-side packet event streams in a
// compact binary format. Recording decouples workload generation from
// measurement: a TPC/A or packet-train run can be captured once and then
// replayed deterministically against every demultiplexer, the way the
// paper's benchmarks replayed identical terminal load against different
// kernels.
//
// Format (little-endian):
//
//	header:  magic "TDTR" | u16 version | u16 reserved
//	event:   f64 time | 4B srcAddr | 4B dstAddr | u16 srcPort | u16 dstPort | u8 flags
//
// flags bit 0: outbound transmission (send) rather than inbound arrival;
// flags bit 1: pure acknowledgement (DirAck) rather than data.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"tcpdemux/internal/core"
	"tcpdemux/internal/wire"
)

// Format constants.
const (
	magic   = "TDTR"
	version = 1

	flagSend = 1 << 0
	flagAck  = 1 << 1
)

// Errors reported by the codec.
var (
	ErrBadMagic   = errors.New("trace: not a trace file (bad magic)")
	ErrBadVersion = errors.New("trace: unsupported version")
)

// Event is one packet event at the server.
type Event struct {
	// Time is the virtual timestamp in seconds.
	Time float64
	// Tuple identifies the connection as seen on the wire (inbound
	// orientation: src = remote peer).
	Tuple wire.Tuple
	// Send marks an outbound transmission; false is an inbound arrival.
	Send bool
	// Ack marks a pure acknowledgement.
	Ack bool
}

// Dir returns the demultiplexing direction for an inbound event.
func (e Event) Dir() core.Direction {
	if e.Ack {
		return core.DirAck
	}
	return core.DirData
}

// eventSize is the encoded size of one event.
const eventSize = 8 + 4 + 4 + 2 + 2 + 1

// Writer streams events to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one event.
func (w *Writer) Write(e Event) error {
	var buf [eventSize]byte
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(e.Time))
	copy(buf[8:12], e.Tuple.SrcAddr[:])
	copy(buf[12:16], e.Tuple.DstAddr[:])
	binary.LittleEndian.PutUint16(buf[16:], e.Tuple.SrcPort)
	binary.LittleEndian.PutUint16(buf[18:], e.Tuple.DstPort)
	var fl byte
	if e.Send {
		fl |= flagSend
	}
	if e.Ack {
		fl |= flagAck
	}
	buf[20] = fl
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered events to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams events from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	count uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return &Reader{r: br}, nil
}

// Next returns the next event, or io.EOF at a clean end of stream. A
// truncated final event is reported as ErrUnexpectedEOF.
func (r *Reader) Next() (Event, error) {
	var buf [eventSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	var e Event
	e.Time = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
	copy(e.Tuple.SrcAddr[:], buf[8:12])
	copy(e.Tuple.DstAddr[:], buf[12:16])
	e.Tuple.SrcPort = binary.LittleEndian.Uint16(buf[16:])
	e.Tuple.DstPort = binary.LittleEndian.Uint16(buf[18:])
	e.Send = buf[20]&flagSend != 0
	e.Ack = buf[20]&flagAck != 0
	r.count++
	return e, nil
}

// Count returns the number of events read so far.
func (r *Reader) Count() uint64 { return r.count }

// ReplayResult summarizes a replay.
type ReplayResult struct {
	// Events is the number of events consumed.
	Events uint64
	// Arrivals is the number of inbound lookups performed.
	Arrivals uint64
	// Connections is the number of distinct tuples seen.
	Connections int
	// MeanExamined is the average PCBs examined per inbound packet.
	MeanExamined float64
	// Stats is the demuxer's final counter snapshot.
	Stats core.Stats
}

// Replay feeds a recorded stream through a demultiplexer: a PCB is
// inserted the first time a tuple appears (so the population grows exactly
// as it did during recording), inbound events perform lookups, and send
// events raise NotifySend. The demuxer should start empty.
func Replay(d core.Demuxer, r *Reader) (*ReplayResult, error) {
	pcbs := make(map[wire.Tuple]*core.PCB)
	res := &ReplayResult{}
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Events++
		pcb, ok := pcbs[e.Tuple]
		if !ok {
			pcb = core.NewPCB(core.KeyFromTuple(e.Tuple))
			if err := d.Insert(pcb); err != nil {
				return nil, fmt.Errorf("trace: inserting PCB for %v: %w", e.Tuple, err)
			}
			pcbs[e.Tuple] = pcb
		}
		if e.Send {
			d.NotifySend(pcb)
			continue
		}
		res.Arrivals++
		if lr := d.Lookup(pcb.Key, e.Dir()); lr.PCB != pcb {
			return nil, fmt.Errorf("trace: replay lookup for %v found wrong PCB", e.Tuple)
		}
	}
	res.Connections = len(pcbs)
	res.Stats = *d.Stats()
	res.MeanExamined = res.Stats.MeanExamined()
	return res, nil
}
