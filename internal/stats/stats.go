// Package stats provides the descriptive statistics used across the
// simulation and hash-evaluation experiments: streaming mean/variance,
// percentiles, fixed-width histograms, confidence intervals, and a
// chi-square uniformity test for hash chain balance.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming statistics using Welford's algorithm, which
// stays numerically stable over the hundreds of millions of samples a long
// simulation run produces.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records an observation that occurred count times.
func (s *Summary) AddN(x float64, count int64) {
	for i := int64(0); i < count; i++ {
		s.Add(x)
	}
}

// Merge folds another summary into s (Chan et al. parallel combination),
// allowing per-goroutine accumulators to be combined after a parallel run.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	d := o.mean - s.mean
	n := s.n + o.n
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with no observations).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean. For the sample sizes this repo uses (≥ thousands)
// the z approximation is indistinguishable from Student's t.
func (s *Summary) CI95() float64 { return 1.959964 * s.StdErr() }

// String formats the summary for log output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (95%% CI) min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.CI95(), s.min, s.max, s.StdDev())
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of data using linear
// interpolation between closest ranks. data is sorted in place.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	sort.Float64s(data)
	if len(data) == 1 {
		return data[0]
	}
	rank := p / 100 * float64(len(data)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return data[lo]
	}
	frac := rank - float64(lo)
	return data[lo]*(1-frac) + data[hi]*frac
}

// Histogram is a fixed-width histogram over [Lo, Hi) with overflow and
// underflow buckets.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int64
	Under     int64
	Over      int64
	width     float64
	totalObs  int64
	sumValues float64
}

// NewHistogram creates a histogram with n equal buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.totalObs++
	h.sumValues += x
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.width)
		if idx >= len(h.Buckets) { // guard against floating rounding at Hi
			idx = len(h.Buckets) - 1
		}
		h.Buckets[idx]++
	}
}

// Total returns the number of observations, including under/overflow.
func (h *Histogram) Total() int64 { return h.totalObs }

// Mean returns the mean of all added observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.totalObs == 0 {
		return 0
	}
	return h.sumValues / float64(h.totalObs)
}

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// ChiSquareUniform computes the chi-square statistic for the hypothesis
// that counts are draws from a uniform distribution over the buckets, and
// returns the statistic together with the degrees of freedom. The caller
// compares against a critical value (see ChiSquareCritical95).
func ChiSquareUniform(counts []int64) (stat float64, dof int) {
	if len(counts) < 2 {
		return 0, 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, len(counts) - 1
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1
}

// ChiSquareCritical95 returns the approximate 95th percentile of the
// chi-square distribution with k degrees of freedom, using the
// Wilson-Hilferty cube approximation, which is accurate to a fraction of a
// percent for k ≥ 3 and adequate for the k ≥ 10 uses in this repo.
func ChiSquareCritical95(k int) float64 {
	if k <= 0 {
		return 0
	}
	const z95 = 1.6448536269514722 // Φ⁻¹(0.95)
	kf := float64(k)
	t := 1 - 2/(9*kf) + z95*math.Sqrt(2/(9*kf))
	return kf * t * t * t
}

// CoefficientOfVariation returns stddev/mean for a set of counts — the
// chain-balance metric used by the hash-function comparison (a perfectly
// balanced hash has CV → 0; heavy skew pushes CV toward √B).
func CoefficientOfVariation(counts []int64) float64 {
	var s Summary
	for _, c := range counts {
		s.Add(float64(c))
	}
	if s.Mean() == 0 {
		return 0
	}
	return s.StdDev() / s.Mean()
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) estimated from the
// histogram by linear interpolation within the containing bucket.
// Underflow observations count at Lo, overflow at Hi. It returns 0 for an
// empty histogram and panics on q outside [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if h.totalObs == 0 {
		return 0
	}
	target := q * float64(h.totalObs)
	cum := float64(h.Under)
	if target <= cum {
		return h.Lo
	}
	for i, c := range h.Buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.Hi
}
