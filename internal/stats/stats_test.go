package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tcpdemux/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatalf("single-sample summary wrong: %v", s.String())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	for i := 0; i < 5; i++ {
		a.Add(2)
	}
	b.AddN(2, 5)
	if a.Mean() != b.Mean() || a.N() != b.N() || a.Var() != b.Var() {
		t.Fatal("AddN disagrees with repeated Add")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	src := rng.New(1)
	var whole, left, right Summary
	for i := 0; i < 10000; i++ {
		x := src.Norm(10, 3)
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Var()-whole.Var()) > 1e-6 {
		t.Fatalf("merged var %v vs %v", left.Var(), whole.Var())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	saved := a
	a.Merge(b) // merging empty changes nothing
	if a != saved {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b != saved {
		t.Fatal("merge into empty did not copy")
	}
}

func TestSummaryMergeQuick(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = float64(i)
			}
			// Clamp to a physically plausible range; at 1e308 the merge
			// identity drowns in float cancellation, which is not the
			// property under test.
			xs[i] = math.Mod(x, 1e6)
		}
		var whole, a, b Summary
		cut := 0
		if len(xs) > 0 {
			cut = int(split) % (len(xs) + 1)
		}
		for i, x := range xs {
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return math.Abs(a.Mean()-whole.Mean()) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := rng.New(2)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(src.Norm(0, 1))
	}
	for i := 0; i < 10000; i++ {
		large.Add(src.Norm(0, 1))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{15, 20, 35, 40, 50}
	if got := Percentile(append([]float64(nil), data...), 50); got != 35 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(append([]float64(nil), data...), 0); got != 15 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(append([]float64(nil), data...), 100); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	// Interpolated value: p25 over 5 points → rank 1.0 exactly → 20.
	if got := Percentile(append([]float64(nil), data...), 25); got != 20 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("single percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p>100")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)  // under
	h.Add(10)  // over (Hi is exclusive)
	h.Add(100) // over
	for i, c := range h.Buckets {
		if c != 1 {
			t.Fatalf("bucket %d = %d", i, c)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 13 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBucketMid(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.BucketMid(0) != 0.5 || h.BucketMid(9) != 9.5 {
		t.Fatalf("mids: %v %v", h.BucketMid(0), h.BucketMid(9))
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 100, 4)
	h.Add(10)
	h.Add(20)
	h.Add(30)
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestChiSquareUniformExact(t *testing.T) {
	stat, dof := ChiSquareUniform([]int64{10, 10, 10, 10})
	if stat != 0 || dof != 3 {
		t.Fatalf("uniform counts: stat=%v dof=%d", stat, dof)
	}
}

func TestChiSquareSkewDetected(t *testing.T) {
	// All mass in one bucket of 20: stat should vastly exceed the critical
	// value for 19 dof.
	counts := make([]int64, 20)
	counts[0] = 1000
	stat, dof := ChiSquareUniform(counts)
	if stat <= ChiSquareCritical95(dof) {
		t.Fatalf("skew not detected: stat=%v crit=%v", stat, ChiSquareCritical95(dof))
	}
}

func TestChiSquareUniformRandomPasses(t *testing.T) {
	// Balanced random assignment should usually pass at 95%: run with a
	// fixed seed known to pass, asserting the machinery, not luck.
	src := rng.New(6)
	counts := make([]int64, 20)
	for i := 0; i < 20000; i++ {
		counts[src.Intn(20)]++
	}
	stat, dof := ChiSquareUniform(counts)
	if stat > ChiSquareCritical95(dof) {
		t.Fatalf("uniform sample rejected: stat=%v crit=%v", stat, ChiSquareCritical95(dof))
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	if stat, dof := ChiSquareUniform(nil); stat != 0 || dof != 0 {
		t.Fatal("nil counts should be (0,0)")
	}
	if stat, dof := ChiSquareUniform([]int64{0, 0}); stat != 0 || dof != 1 {
		t.Fatal("zero counts should be (0, k-1)")
	}
}

func TestChiSquareCritical95KnownValues(t *testing.T) {
	// Reference values from standard tables.
	cases := []struct {
		k    int
		want float64
	}{
		{10, 18.307}, {19, 30.144}, {50, 67.505}, {100, 124.342},
	}
	for _, c := range cases {
		got := ChiSquareCritical95(c.k)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("crit95(%d) = %v, want ≈%v", c.k, got, c.want)
		}
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]int64{5, 5, 5, 5}); cv != 0 {
		t.Fatalf("balanced CV = %v", cv)
	}
	if cv := CoefficientOfVariation([]int64{0, 0, 0, 100}); cv < 1 {
		t.Fatalf("skewed CV = %v, want > 1", cv)
	}
	if cv := CoefficientOfVariation([]int64{0, 0}); cv != 0 {
		t.Fatalf("all-zero CV = %v", cv)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5) // one observation per bucket
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	if q := h.Quantile(0.95); math.Abs(q-95) > 1.5 {
		t.Fatalf("p95 = %v", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); math.Abs(q-100) > 1.5 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(100) // all overflow
	}
	if q := h.Quantile(0.9); q != 10 {
		t.Fatalf("overflow quantile = %v, want Hi", q)
	}
}

func TestHistogramQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 1, 2).Quantile(1.5)
}

func TestHistogramQuantileSkewed(t *testing.T) {
	// 99 cheap lookups, 1 expensive: p50 cheap, p99+ expensive — the
	// shape of a cache-dominated demuxer under packet trains.
	h := NewHistogram(0, 1000, 1000)
	for i := 0; i < 990; i++ {
		h.Add(1)
	}
	for i := 0; i < 10; i++ {
		h.Add(900)
	}
	if q := h.Quantile(0.5); q > 3 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0.995); q < 800 {
		t.Fatalf("p99.5 = %v", q)
	}
}
