package overload

import (
	"sync"
	"sync/atomic"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/parallel"
)

// RCUGuarded must satisfy the concurrent-demuxer contract so the
// parallel harness and demuxsim can drive it interchangeably with the
// rcu and sharded disciplines. (Asserted here, not in the package proper,
// to keep overload free of a parallel import.)
var _ parallel.ConcurrentDemuxer = (*RCUGuarded)(nil)

func TestRCUGuardedAttackRecovery(t *testing.T) {
	g := NewRCUGuarded(attackChains, hashfn.Multiplicative{}, 1, Config{})
	runAttackRecovery(t, g,
		g.Snapshot,
		func() int { g.mu.Lock(); defer g.mu.Unlock(); return g.Rekeys })
	if g.MigratedPCBs == 0 {
		t.Error("no PCBs migrated incrementally")
	}
}

// TestRCUGuardedLookupBatch checks the batch path against the scalar one.
func TestRCUGuardedLookupBatch(t *testing.T) {
	g := NewRCUGuarded(attackChains, nil, 3, Config{})
	tuples := hashfn.RandomClients(100, 9)
	keys := make([]core.Key, len(tuples))
	pcbs := make([]*core.PCB, len(tuples))
	for i, tu := range tuples {
		keys[i] = core.KeyFromTuple(tu)
		pcbs[i] = core.NewPCB(keys[i])
		if err := g.Insert(pcbs[i]); err != nil {
			t.Fatal(err)
		}
	}
	out := g.LookupBatch(keys, core.DirData, nil)
	if len(out) != len(keys) {
		t.Fatalf("batch returned %d results for %d keys", len(out), len(keys))
	}
	for i := range out {
		if out[i].PCB != pcbs[i] {
			t.Fatalf("batch result %d wrong PCB", i)
		}
	}
}

// TestRCUGuardedConcurrentReadersDuringRekey is the no-stop-the-world
// check under the race detector: reader goroutines hammer lookups for
// keys known to be inserted while the writer injects the collision
// attack, the watchdog trips, and the incremental migration republishes
// the table pair. Every reader lookup for a stable key must resolve to
// the exact same PCB throughout — any torn table state would surface as a
// nil or wrong result (or a race report).
func TestRCUGuardedConcurrentReadersDuringRekey(t *testing.T) {
	g := NewRCUGuarded(attackChains, hashfn.Multiplicative{}, 1, Config{})
	if err := g.Insert(core.NewListenPCB(core.ListenKey(hashfn.ServerEndpoint.Addr, hashfn.ServerEndpoint.Port))); err != nil {
		t.Fatal(err)
	}
	stable := hashfn.RandomClients(200, 7)
	stableKeys := make([]core.Key, len(stable))
	stablePCBs := make([]*core.PCB, len(stable))
	for i, tu := range stable {
		stableKeys[i] = core.KeyFromTuple(tu)
		stablePCBs[i] = core.NewPCB(stableKeys[i])
		if err := g.Insert(stablePCBs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var bad atomic.Int64
	var spins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := stableKeys[(i*7+w)%len(stableKeys)]
				if r := g.Lookup(k, core.DirData); r.PCB != stablePCBs[(i*7+w)%len(stableKeys)] {
					bad.Add(1)
					return
				}
				spins.Add(1)
			}
		}(w)
	}
	// Let the readers get going before the flood so the lookup stream
	// demonstrably overlaps the rekey and migration.
	for spins.Load() < 1000 {
	}

	attack := mustAttack(t, 2000)
	for _, tu := range attack {
		if err := g.Insert(core.NewPCB(core.KeyFromTuple(tu))); err != nil {
			t.Fatal(err)
		}
	}
	for guard := 0; g.Migrating(); guard++ {
		if guard > 10000 {
			t.Fatal("migration never completed")
		}
		g.Advance(1)
	}
	stop.Store(true)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d reader lookups resolved wrong during rekey", bad.Load())
	}
	g.mu.Lock()
	rekeys := g.Rekeys
	g.mu.Unlock()
	if rekeys == 0 {
		t.Fatal("watchdog never tripped under concurrent load")
	}
	st := g.Snapshot()
	if st.Lookups == 0 || st.Examined < st.Lookups {
		t.Fatalf("implausible stats after concurrent run: %+v", st)
	}
}
