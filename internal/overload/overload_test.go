package overload

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rcu"
	"tcpdemux/internal/wire"
)

func TestSkewed(t *testing.T) {
	cfg := Config{SkewFactor: 8, MinPopulation: 64}
	flat := make([]int64, 64)
	for i := range flat {
		flat[i] = 4
	}
	if Skewed(flat, cfg) {
		t.Error("flat table flagged as skewed")
	}
	spiked := make([]int64, 64)
	spiked[17] = 256
	if !Skewed(spiked, cfg) {
		t.Error("one-chain table not flagged")
	}
	tiny := make([]int64, 64)
	tiny[0] = 32 // heavy skew but below MinPopulation
	if Skewed(tiny, cfg) {
		t.Error("tiny population flagged")
	}
	if Skewed(nil, cfg) {
		t.Error("empty sample flagged")
	}
}

func TestChainsFor(t *testing.T) {
	cfg := Config{}.withDefaults()
	if got := chainsFor(4500, 64, cfg); got != 563 {
		t.Errorf("chainsFor(4500, 64) = %d, want 563", got)
	}
	if got := chainsFor(10, 64, cfg); got != 64 {
		t.Errorf("table shrank: chainsFor(10, 64) = %d", got)
	}
	if got := chainsFor(1<<30, 64, cfg); got != cfg.MaxChains {
		t.Errorf("cap ignored: %d", got)
	}
	if got := chainsFor(0, 0, cfg); got < 1 {
		t.Errorf("degenerate sizing: %d", got)
	}
}

// TestConstructorChainGuards is the satellite regression test: every
// constructor in the demux family clamps a non-positive chain count
// instead of building a table that divides by zero on the packet path.
func TestConstructorChainGuards(t *testing.T) {
	for _, h := range []int{0, -7} {
		if got := core.NewSequentHash(h, nil).NumChains(); got != core.DefaultChains {
			t.Errorf("NewSequentHash(%d) chains = %d", h, got)
		}
		if got := rcu.New(h, nil).NumChains(); got != core.DefaultChains {
			t.Errorf("rcu.New(%d) chains = %d", h, got)
		}
		if got := NewGuarded(h, nil, 1, Config{}).NumChains(); got != core.DefaultChains {
			t.Errorf("NewGuarded(%d) chains = %d", h, got)
		}
		g := NewRCUGuarded(h, nil, 1, Config{})
		if got := g.state.Load().cur.NumChains(); got != core.DefaultChains {
			t.Errorf("NewRCUGuarded(%d) chains = %d", h, got)
		}
		// The clamped tables must actually work.
		p := core.NewPCB(core.KeyFromTuple(hashfn.SequentialClients(1)[0]))
		if err := g.Insert(p); err != nil {
			t.Fatalf("insert into clamped table: %v", err)
		}
		if r := g.Lookup(p.Key, core.DirData); r.PCB != p {
			t.Fatalf("lookup in clamped table missed")
		}
	}
}

// attackChains is the table geometry shared by the acceptance tests.
const attackChains = 64

// mustAttack builds the collision population against the unkeyed
// multiplicative hash.
func mustAttack(t *testing.T, n int) []wire.Tuple {
	t.Helper()
	pop, err := hashfn.AttackPopulation(hashfn.Multiplicative{}, attackChains, 5, n)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// TestAttackSkewsUndefendedSequent pins the premise of the acceptance
// criterion: the generated population drives >= 90% of all PCBs into one
// chain of an undefended table using the unkeyed hash, and the mean
// examinations per lookup degrade to list-scan territory.
func TestAttackSkewsUndefendedSequent(t *testing.T) {
	d := core.NewSequentHash(attackChains, hashfn.Multiplicative{})
	for _, tu := range hashfn.RandomClients(400, 7) {
		if err := d.Insert(core.NewPCB(core.KeyFromTuple(tu))); err != nil {
			t.Fatal(err)
		}
	}
	attack := mustAttack(t, 4100)
	for _, tu := range attack {
		if err := d.Insert(core.NewPCB(core.KeyFromTuple(tu))); err != nil {
			t.Fatal(err)
		}
	}
	lengths := d.ChainLengths()
	var total, max int64
	for _, n := range lengths {
		total += n
		if n > max {
			max = n
		}
	}
	if frac := float64(max) / float64(total); frac < 0.90 {
		t.Fatalf("attack concentrated only %.1f%% of %d PCBs on one chain", frac*100, total)
	}
	if !Skewed(lengths, Config{}) {
		t.Fatal("watchdog predicate does not flag the attacked table")
	}
	// A mid-chain victim costs thousands of examinations.
	r := d.Lookup(core.KeyFromTuple(attack[2000]), core.DirData)
	if r.PCB == nil || r.Examined < 1000 {
		t.Fatalf("expected degenerate scan, examined %d", r.Examined)
	}
}

// defended abstracts Guarded and RCUGuarded for the shared
// attack/recovery conformance driver.
type defended interface {
	Insert(*core.PCB) error
	Remove(k core.Key) bool
	Lookup(core.Key, core.Direction) core.Result
	Len() int
	Walk(func(*core.PCB) bool)
	Migrating() bool
	Advance(int)
	MaybeRekey()
}

// runAttackRecovery is the acceptance-criterion driver: benign phase to
// establish the baseline, collision attack against the initial (unkeyed)
// hash, watchdog detection, online migration with every lookup checked
// against the map-demux oracle while it runs, and a recovery phase whose
// mean examinations must come within 2x of the benign baseline.
func runAttackRecovery(t *testing.T, d defended, stats func() core.Stats, rekeys func() int) {
	t.Helper()
	oracle := core.NewMapDemux()
	insert := func(p *core.PCB) {
		t.Helper()
		if err := d.Insert(p); err != nil {
			t.Fatalf("insert %v: %v", p.Key, err)
		}
		if err := oracle.Insert(p); err != nil {
			t.Fatalf("oracle insert %v: %v", p.Key, err)
		}
	}
	insert(core.NewListenPCB(core.ListenKey(hashfn.ServerEndpoint.Addr, hashfn.ServerEndpoint.Port)))

	// Probe keys: one never-inserted client (listener match) and one
	// wrong-port tuple (full miss) ride along with every verification
	// sweep so wildcard and miss paths stay covered mid-migration.
	strangers := []core.Key{
		core.KeyFromTuple(wire.Tuple{SrcAddr: wire.MakeAddr(172, 16, 0, 9), DstAddr: hashfn.ServerEndpoint.Addr, SrcPort: 5555, DstPort: hashfn.ServerEndpoint.Port}),
		core.KeyFromTuple(wire.Tuple{SrcAddr: wire.MakeAddr(172, 16, 0, 9), DstAddr: hashfn.ServerEndpoint.Addr, SrcPort: 5555, DstPort: 9}),
	}
	verify := func(keys []core.Key) {
		t.Helper()
		for _, k := range append(keys, strangers...) {
			got := d.Lookup(k, core.DirData)
			want := oracle.Lookup(k, core.DirData)
			if got.PCB != want.PCB || got.Wildcard != want.Wildcard {
				t.Fatalf("lookup %v diverged from oracle: got (%v, wildcard=%v) want (%v, wildcard=%v) migrating=%v",
					k, got.PCB, got.Wildcard, want.PCB, want.Wildcard, d.Migrating())
			}
		}
	}
	mean := func(a, b core.Stats) float64 {
		if b.Lookups == a.Lookups {
			t.Fatal("no lookups in window")
		}
		return float64(b.Examined-a.Examined) / float64(b.Lookups-a.Lookups)
	}

	benign := hashfn.RandomClients(400, 7)
	benignKeys := make([]core.Key, len(benign))
	for i, tu := range benign {
		benignKeys[i] = core.KeyFromTuple(tu)
		insert(core.NewPCB(benignKeys[i]))
	}
	s0 := stats()
	for round := 0; round < 5; round++ {
		verify(benignKeys)
	}
	s1 := stats()
	baseline := mean(s0, s1)
	if rekeys() != 0 {
		t.Fatalf("benign population triggered %d rekeys", rekeys())
	}

	// Attack: the adversary knows the deployed unkeyed hash and floods
	// colliding connections. Verification sweeps interleave with the
	// inserts, so lookups demonstrably continue while the watchdog trips
	// and the migration runs.
	attack := mustAttack(t, 4100)
	attackKeys := make([]core.Key, len(attack))
	migratingVerifies := 0
	for i, tu := range attack {
		attackKeys[i] = core.KeyFromTuple(tu)
		insert(core.NewPCB(attackKeys[i]))
		// The moment a migration is in flight, interleave oracle-checked
		// lookups with it: this is the lookups-continue-throughout-
		// migration half of the acceptance criterion. (Migrations are
		// short — a stride per operation — so sample on every insert.)
		if d.Migrating() {
			migratingVerifies++
			verify(attackKeys[max(0, i-3) : i+1])
			verify(benignKeys[i%len(benignKeys) : i%len(benignKeys)+1])
		}
		if i%500 == 499 {
			verify(benignKeys[:50])
			verify(attackKeys[max(0, i-50) : i+1])
		}
	}
	if rekeys() == 0 {
		t.Fatal("watchdog never detected the collision attack")
	}

	// Drain any migration still in flight, verifying against the oracle
	// after every incremental step.
	allKeys := append(append([]core.Key{}, benignKeys...), attackKeys...)
	for guard := 0; d.Migrating(); guard++ {
		if guard > 10000 {
			t.Fatal("migration never completed")
		}
		migratingVerifies++
		off := (guard * 97) % len(allKeys)
		verify(allKeys[off:min(off+25, len(allKeys))])
		d.Advance(1)
	}
	if migratingVerifies == 0 {
		t.Fatal("test never verified a lookup during an in-flight migration")
	}

	// Recovery: the full population under the fresh key.
	s2 := stats()
	for round := 0; round < 3; round++ {
		verify(allKeys)
	}
	s3 := stats()
	recovered := mean(s2, s3)
	if recovered > 2*baseline {
		t.Fatalf("recovery mean %.2f exceeds 2x benign baseline %.2f", recovered, baseline)
	}
	if d.Len() != oracle.Len() {
		t.Fatalf("Len diverged: %d vs oracle %d", d.Len(), oracle.Len())
	}
	walked := 0
	d.Walk(func(*core.PCB) bool { walked++; return true })
	if walked != oracle.Len() {
		t.Fatalf("Walk visited %d PCBs, oracle holds %d", walked, oracle.Len())
	}

	// Removals after the rekey must still resolve, wherever the PCB ended
	// up, and a second rekey must not be pending.
	for _, k := range attackKeys[:100] {
		if !d.Remove(k) || !oracle.Remove(k) {
			t.Fatalf("remove %v failed after rekey", k)
		}
	}
	verify(allKeys[:200])
	t.Logf("baseline mean examined %.2f, recovered %.2f (%.2fx), rekeys %d", baseline, recovered, recovered/baseline, rekeys())
}

func TestGuardedAttackRecovery(t *testing.T) {
	g := NewGuarded(attackChains, hashfn.Multiplicative{}, 1, Config{CheckEvery: 64})
	runAttackRecovery(t, g,
		func() core.Stats { return *g.Stats() },
		func() int { return g.Rekeys })
	if g.MigratedPCBs == 0 {
		t.Error("no PCBs migrated incrementally")
	}
}

// TestGuardedDuplicateAcrossMigration pins the split-table duplicate
// check: a key still sitting in the draining table must be rejected when
// re-inserted mid-migration.
func TestGuardedDuplicateAcrossMigration(t *testing.T) {
	g := NewGuarded(attackChains, hashfn.Multiplicative{}, 1, Config{})
	keys := make([]core.Key, 0, 600)
	for _, tu := range mustAttack(t, 600) {
		k := core.KeyFromTuple(tu)
		keys = append(keys, k)
		if err := g.Insert(core.NewPCB(k)); err != nil {
			t.Fatal(err)
		}
		if g.Migrating() {
			break
		}
	}
	// The migration has just started: everything inserted so far is still
	// in the draining table, so a re-insert must be caught by the
	// cross-table duplicate check.
	if !g.Migrating() {
		t.Fatal("attack inserts did not start a migration")
	}
	if err := g.Insert(core.NewPCB(keys[0])); err != core.ErrDuplicateKey {
		t.Fatalf("duplicate across migration accepted: %v", err)
	}
	// A key inserted during the migration lands in the replacement table;
	// its duplicate must be rejected there too.
	fresh := core.KeyFromTuple(hashfn.FewClientsManyPorts(1)[0])
	if err := g.Insert(core.NewPCB(fresh)); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(core.NewPCB(fresh)); err != core.ErrDuplicateKey {
		t.Fatalf("fresh-table duplicate accepted: %v", err)
	}
	// And removal of a not-yet-migrated key must find it in the old half.
	if !g.Remove(keys[0]) {
		t.Fatal("remove of un-migrated key failed")
	}
	if r := g.Lookup(keys[0], core.DirData); r.PCB != nil && !r.Wildcard {
		t.Fatal("removed key still resolves exactly")
	}
}
