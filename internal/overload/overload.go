// Package overload defends the Sequent hashed PCB table against
// adversarial address populations.
//
// The paper's analysis (§3.5) assumes the hash spreads connections evenly
// — true for the benign OLTP populations it models, and false the moment
// an adversary who controls (srcAddr, srcPort) synthesizes tuples that
// collide under the (public, unkeyed) hash: every PCB lands on one chain
// and the winner degrades to the BSD linear list. hashfn.AttackPopulation
// builds exactly that population.
//
// The defense has two parts:
//
//   - A chain-length watchdog (Skewed) that samples per-chain depth and
//     flags a table whose fullest chain exceeds SkewFactor times the mean
//     — cheap enough to run every CheckEvery lookups.
//   - An online incremental rekey/rehash: when the watchdog trips, a new
//     table is allocated with a fresh secret SipHash key (and a chain
//     count resized to the live population), and PCBs migrate to it a few
//     chains per operation. Lookups continue throughout — each probes the
//     old table and then the new — so there is no stop-the-world rehash
//     pause, and the attacker must re-derive the (secret, unknowable) key
//     placement to re-skew the table.
//
// Guarded in this file wraps the locked (single-goroutine) SequentHash;
// rcuguard.go applies the same protocol to the lock-free rcu.Demuxer with
// COW table-pair republication.
package overload

import (
	"fmt"
	"math"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/telemetry"
)

// Config tunes the watchdog and the migration.
type Config struct {
	// SkewFactor trips the watchdog when the fullest chain exceeds this
	// multiple of the mean chain length. Default 8: a healthy keyed hash
	// stays under ~3x mean even at modest populations, while a collision
	// attack concentrates essentially everything on one chain.
	SkewFactor float64
	// MinPopulation suppresses the watchdog below this many chained PCBs;
	// tiny tables are legitimately lumpy. Default 64.
	MinPopulation int
	// CheckEvery is the lookup-count sampling period of the watchdog.
	// Default 256.
	CheckEvery int
	// Stride is the number of chains migrated per operation once a rekey
	// is in flight. Default 4.
	Stride int
	// TargetLoad sizes the replacement table: the new chain count is the
	// population divided by this load (never fewer chains than before).
	// Default 8, between core.DefaultMaxLoad's threshold regime and the
	// paper's "insignificant fraction" operating point.
	TargetLoad float64
	// GrowFactor trips the watchdog on plain overload — mean chain load
	// beyond GrowFactor times TargetLoad — so a balanced-but-swamped
	// table is rebuilt too (AutoSequent's growth rule, made incremental).
	// Default 2.
	GrowFactor float64
	// MaxChains caps the replacement table's chain count. Default 65536.
	MaxChains int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SkewFactor <= 0 {
		c.SkewFactor = 8
	}
	if c.MinPopulation <= 0 {
		c.MinPopulation = 64
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 256
	}
	if c.Stride <= 0 {
		c.Stride = 4
	}
	if c.TargetLoad <= 0 {
		c.TargetLoad = 8
	}
	if c.GrowFactor <= 0 {
		c.GrowFactor = 2
	}
	if c.MaxChains <= 0 {
		c.MaxChains = 1 << 16
	}
	return c
}

// Skewed reports whether a chain-length sample trips the watchdog: the
// population is at least MinPopulation and the fullest chain exceeds
// SkewFactor times the mean chain length.
func Skewed(lengths []int64, cfg Config) bool {
	cfg = cfg.withDefaults()
	if len(lengths) == 0 {
		return false
	}
	var pop, max int64
	for _, n := range lengths {
		pop += n
		if n > max {
			max = n
		}
	}
	if pop < int64(cfg.MinPopulation) {
		return false
	}
	mean := float64(pop) / float64(len(lengths))
	return float64(max) > cfg.SkewFactor*mean
}

// Overloaded reports whether the sample trips the watchdog's growth rule:
// at least MinPopulation PCBs and a mean chain load beyond
// GrowFactor x TargetLoad. A collision flood that is *not* defeated by
// hash quality (the attacker keeps pouring connections in) eventually
// presents as overload rather than skew once the table is keyed; this
// rule keeps resizing it incrementally.
func Overloaded(lengths []int64, cfg Config) bool {
	cfg = cfg.withDefaults()
	if len(lengths) == 0 {
		return false
	}
	var pop int64
	for _, n := range lengths {
		pop += n
	}
	if pop < int64(cfg.MinPopulation) {
		return false
	}
	return float64(pop) > cfg.GrowFactor*cfg.TargetLoad*float64(len(lengths))
}

// chainsFor sizes the replacement table for a live population: enough
// chains to hold pop at TargetLoad, never shrinking below cur, capped at
// MaxChains.
func chainsFor(pop, cur int, cfg Config) int {
	want := int(math.Ceil(float64(pop) / cfg.TargetLoad))
	if want < cur {
		want = cur
	}
	if want > cfg.MaxChains {
		want = cfg.MaxChains
	}
	if want < 1 {
		want = 1
	}
	return want
}

// Guarded wraps core.SequentHash with the watchdog and the online
// incremental rekey. It is a core.Demuxer: like every demuxer in core it
// is single-goroutine ("locked" in the parallel package's sense — wrap it
// there for concurrent use); the online property it provides is bounded
// per-operation work, never a stop-the-world rehash of the whole table.
//
// During a migration the PCB set is split between cur (not yet migrated)
// and next (migrated + newly inserted); every key lives in exactly one.
// Lookups probe cur then next and advance the migration by Stride chains,
// so the rehash cost is amortized across the very lookups the attack
// generates.
type Guarded struct {
	cfg  Config
	src  *rng.Source
	cur  *core.SequentHash
	next *core.SequentHash // nil unless a rekey is in flight
	// migrate is the next cur chain index to move.
	migrate int
	// sinceCheck counts lookups since the last watchdog sample.
	sinceCheck int
	stats      core.Stats

	// Rekeys counts watchdog-triggered rekey events.
	Rekeys int
	// MigratedPCBs counts PCBs moved by the incremental migration.
	MigratedPCBs uint64

	// tel mirrors the counters above (plus chain-skew gauges) onto a
	// telemetry registry; nil until SetTelemetry.
	tel *telemetry.OverloadMetrics
}

// SetTelemetry publishes the guard's rekey/migration counters and
// watchdog chain observations on m (nil disables).
func (g *Guarded) SetTelemetry(m *telemetry.OverloadMetrics) { g.tel = m }

// NewGuarded wraps a fresh SequentHash of h chains (core.DefaultChains if
// h <= 0) using fn as the initial hash — pass an unkeyed hash to model a
// legacy deployment, or nil for a secret key drawn from seed. Every rekey
// draws its replacement key from the seed's stream, so runs are
// deterministic per seed while chain placement stays unpredictable to a
// key-blind adversary. cfg zero fields take defaults.
func NewGuarded(h int, fn hashfn.Func, seed uint64, cfg Config) *Guarded {
	src := rng.New(seed)
	if fn == nil {
		fn = hashfn.KeyedFromRNG(src)
	}
	return &Guarded{
		cfg: cfg.withDefaults(),
		src: src,
		cur: core.NewSequentHash(h, fn),
	}
}

// Name implements core.Demuxer.
func (g *Guarded) Name() string {
	return fmt.Sprintf("guarded-sequent-%d", g.cur.NumChains())
}

// Migrating reports whether a rekey is in flight.
func (g *Guarded) Migrating() bool { return g.next != nil }

// NumChains returns the chain count of the table new inserts go to.
func (g *Guarded) NumChains() int {
	if g.next != nil {
		return g.next.NumChains()
	}
	return g.cur.NumChains()
}

// Insert implements core.Demuxer. During a migration new PCBs go straight
// to the replacement table (their final home); the duplicate check spans
// both tables.
func (g *Guarded) Insert(p *core.PCB) error {
	if g.next != nil {
		if !p.Key.IsWildcard() && g.containsExact(g.cur, p.Key) {
			return core.ErrDuplicateKey
		}
		// Listeners were moved to next when the rekey started, so
		// next.Insert alone checks listener duplicates.
		if err := g.next.Insert(p); err != nil {
			return err
		}
		g.step()
		return nil
	}
	if err := g.cur.Insert(p); err != nil {
		return err
	}
	g.maybeRekey()
	return nil
}

// containsExact scans the key's chain for an exact match without touching
// caches or statistics.
func (g *Guarded) containsExact(t *core.SequentHash, k core.Key) bool {
	found := false
	t.WalkChain(t.ChainIndexOf(k), func(p *core.PCB) bool {
		if p.Key == k {
			found = true
			return false
		}
		return true
	})
	return found
}

// Remove implements core.Demuxer.
func (g *Guarded) Remove(k core.Key) bool {
	if g.next != nil {
		ok := g.next.Remove(k) || g.cur.Remove(k)
		g.step()
		return ok
	}
	return g.cur.Remove(k)
}

// Lookup implements core.Demuxer. Outside a migration it is a plain
// SequentHash lookup; during one it probes cur then next (every key lives
// in exactly one) and charges the logical lookup — examinations summed
// across both probes — to its own statistics. Each lookup also advances
// the migration by one stride and feeds the watchdog sampler.
func (g *Guarded) Lookup(k core.Key, dir core.Direction) core.Result {
	r := g.cur.Lookup(k, dir)
	if g.next != nil {
		if r.PCB == nil || r.Wildcard {
			// No exact match in the old table; the answer — exact or
			// listener — lives in the replacement. (Listeners move at
			// rekey start, so cur cannot return a wildcard here, but the
			// combine stays defensive.)
			r2 := g.next.Lookup(k, dir)
			r2.Examined += r.Examined
			r = r2
		}
		g.step()
	} else if g.sinceCheck++; g.sinceCheck >= g.cfg.CheckEvery {
		g.sinceCheck = 0
		g.maybeRekey()
	}
	g.stats.Record(r)
	return r
}

// NotifySend implements core.Demuxer.
func (g *Guarded) NotifySend(p *core.PCB) {
	if g.next != nil {
		g.next.NotifySend(p)
	}
	g.cur.NotifySend(p)
}

// Len implements core.Demuxer.
func (g *Guarded) Len() int {
	if g.next != nil {
		return g.cur.Len() + g.next.Len()
	}
	return g.cur.Len()
}

// Stats implements core.Demuxer: the wrapper's own logical-lookup
// statistics, not the inner tables'. The pointer stays valid across
// rekeys.
func (g *Guarded) Stats() *core.Stats { return &g.stats }

// Walk implements core.Demuxer: the not-yet-migrated remainder first,
// then the replacement table.
func (g *Guarded) Walk(fn func(*core.PCB) bool) {
	done := false
	g.cur.Walk(func(p *core.PCB) bool {
		if !fn(p) {
			done = true
			return false
		}
		return true
	})
	if done || g.next == nil {
		return
	}
	g.next.Walk(fn)
}

// ChainLengths exposes the live table's chain populations (the
// replacement table's, once a rekey is in flight).
func (g *Guarded) ChainLengths() []int64 {
	if g.next != nil {
		return g.next.ChainLengths()
	}
	return g.cur.ChainLengths()
}

// MaybeRekey runs one watchdog check immediately (the sampled path does
// this every CheckEvery lookups).
func (g *Guarded) MaybeRekey() { g.maybeRekey() }

// maybeRekey samples chain lengths and starts a migration on skew.
func (g *Guarded) maybeRekey() {
	if g.next != nil {
		return
	}
	lengths := g.cur.ChainLengths()
	g.tel.ObserveChains(lengths)
	if !Skewed(lengths, g.cfg) && !Overloaded(lengths, g.cfg) {
		return
	}
	var pop int64
	for _, n := range lengths {
		pop += n
	}
	// Fresh secret key; resized table. The attacker's population was
	// built against the old placement, and without the new key it cannot
	// aim at the new one.
	g.next = core.NewSequentHash(chainsFor(int(pop), g.cur.NumChains(), g.cfg), hashfn.KeyedFromRNG(g.src))
	g.migrate = 0
	g.Rekeys++
	if g.tel != nil {
		g.tel.Rekeys.Inc()
	}
	// Listeners move immediately: there are few of them, and housing them
	// in one table keeps the lookup combine trivial.
	var listeners []*core.PCB
	g.cur.WalkListeners(func(p *core.PCB) bool {
		listeners = append(listeners, p)
		return true
	})
	for _, p := range listeners {
		g.cur.Remove(p.Key)
		if err := g.next.Insert(p); err != nil {
			panic("overload: rekey found duplicate listener: " + err.Error())
		}
	}
}

// Advance moves up to n chains of an in-flight migration — the hook for
// drivers that want migration progress independent of traffic (lookups
// and writes already advance one stride each).
func (g *Guarded) Advance(n int) { g.stepN(n) }

// step advances an in-flight migration by Stride chains.
func (g *Guarded) step() { g.stepN(g.cfg.Stride) }

func (g *Guarded) stepN(stride int) {
	if g.next == nil {
		return
	}
	for n := 0; n < stride && g.migrate < g.cur.NumChains(); n++ {
		var move []*core.PCB
		g.cur.WalkChain(g.migrate, func(p *core.PCB) bool {
			move = append(move, p)
			return true
		})
		for _, p := range move {
			g.cur.Remove(p.Key)
			if err := g.next.Insert(p); err != nil {
				panic("overload: migration found duplicate key: " + err.Error())
			}
			g.MigratedPCBs++
			if g.tel != nil {
				g.tel.Migrated.Inc()
			}
		}
		g.migrate++
	}
	if g.migrate >= g.cur.NumChains() && g.cur.Len() == 0 {
		g.cur = g.next
		g.next = nil
		g.sinceCheck = 0
	}
}

var _ core.Demuxer = (*Guarded)(nil)
