package overload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rcu"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/telemetry"
)

// tablePair is the atomically published view of the RCU migration: cur is
// the table being drained, next (nil outside a migration) the keyed
// replacement being filled. A published pair is immutable; starting and
// finishing a migration replace the pair wholesale.
type tablePair struct {
	cur  *rcu.Demuxer
	next *rcu.Demuxer
}

// ostats is RCUGuarded's own lookup accounting: one logical lookup per
// packet even when the probe touches both tables. A single shared bundle
// (not striped like rcu's) — the wrapper's tests and the simulator read
// it, nothing benchmarks it.
type ostats struct {
	lookups  atomic.Uint64 //demux:atomic
	examined atomic.Uint64 //demux:atomic
	hits     atomic.Uint64 //demux:atomic
	misses   atomic.Uint64 //demux:atomic
	wildcard atomic.Uint64 //demux:atomic
	maxExam  atomic.Int64  //demux:atomic
}

//demux:hotpath
func (s *ostats) record(r core.Result) {
	s.lookups.Add(1)
	s.examined.Add(uint64(r.Examined))
	switch {
	case r.PCB == nil:
		s.misses.Add(1)
	case r.CacheHit:
		s.hits.Add(1)
	}
	if r.PCB != nil && r.Wildcard {
		s.wildcard.Add(1)
	}
	for {
		cur := s.maxExam.Load()
		if int64(r.Examined) <= cur || s.maxExam.CompareAndSwap(cur, int64(r.Examined)) {
			return
		}
	}
}

func (s *ostats) fold() core.Stats {
	return core.Stats{
		Lookups:      s.lookups.Load(),
		Examined:     s.examined.Load(),
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		WildcardHits: s.wildcard.Load(),
		MaxExamined:  int(s.maxExam.Load()),
	}
}

// RCUGuarded applies the overload defense to the lock-free rcu.Demuxer.
// It keeps rcu's reader contract intact: Lookup takes no locks ever, even
// mid-migration — it loads the published table pair and probes cur then
// next. Writers (Insert/Remove/rekey/migration steps) serialize on one
// mutex and follow the COW republication discipline:
//
//   - startRekey copies listeners into the replacement *before*
//     publishing the pair, then removes them from cur after — so any
//     reader, on any interleaving, finds the listener set in at least one
//     table it probes.
//   - the migration moves each PCB by inserting it into next *before*
//     removing it from cur, the opposite of the reader's cur-then-next
//     probe order — a reader that misses the PCB in cur (already removed)
//     is guaranteed to find it in next (inserted earlier). A reader that
//     sees it in both gets the same *PCB either way.
//   - finishing publishes a pair holding only the replacement; the old
//     table becomes garbage once the last reader drops it (the GC is the
//     grace period, as everywhere in rcu).
//
// The watchdog runs on the writer side (every insert, plus the explicit
// MaybeRekey), so the reader fast path is never taxed with sampling.
type RCUGuarded struct {
	//demux:atomic
	state atomic.Pointer[tablePair]
	stats ostats
	cfg   Config

	// mu serializes writers, rekey decisions, and migration steps. Fields
	// below it are guarded by it.
	mu      sync.Mutex
	src     *rng.Source
	migrate int // next cur chain index to move

	// Rekeys counts watchdog-triggered rekey events (read under mu or
	// after writers quiesce).
	Rekeys int
	// MigratedPCBs counts PCBs moved by the incremental migration.
	MigratedPCBs uint64

	// tel mirrors the counters above (plus chain-skew gauges) onto a
	// telemetry registry; nil until SetTelemetry. Guarded by mu.
	tel *telemetry.OverloadMetrics
}

// SetTelemetry publishes the guard's rekey/migration counters and
// watchdog chain observations on m (nil disables).
func (d *RCUGuarded) SetTelemetry(m *telemetry.OverloadMetrics) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tel = m
}

// NewRCUGuarded wraps a fresh rcu.Demuxer of h chains (core.DefaultChains
// if h <= 0) using fn as the initial hash — an unkeyed hash models a
// legacy deployment, nil draws a secret key from seed. Every rekey draws
// its replacement key from the seed's stream. cfg zero fields take
// defaults.
func NewRCUGuarded(h int, fn hashfn.Func, seed uint64, cfg Config) *RCUGuarded {
	src := rng.New(seed)
	if fn == nil {
		fn = hashfn.KeyedFromRNG(src)
	}
	d := &RCUGuarded{cfg: cfg.withDefaults(), src: src}
	d.state.Store(&tablePair{cur: rcu.New(h, fn)})
	return d
}

// Name implements parallel.ConcurrentDemuxer.
func (d *RCUGuarded) Name() string {
	return fmt.Sprintf("rcu-guarded-%d", d.state.Load().cur.NumChains())
}

// Migrating reports whether a rekey is in flight.
func (d *RCUGuarded) Migrating() bool { return d.state.Load().next != nil }

// Lookup implements parallel.ConcurrentDemuxer, lock-free in every phase.
//
// An exact match is trusted unconditionally (the PCB was found; its
// identity does not depend on which generation of table held it). A miss
// or wildcard-only result is trusted only if the published pair did not
// change during the probe: a reader descheduled across a whole
// rekey-finish *and* the next rekey-start would otherwise scan two stale
// tables while its key migrated to a third it never probed. The re-load
// check detects exactly that interleaving and retries against the fresh
// pair — the same validate-and-retract idea as the chain caches' epoch
// check, applied at table granularity. Retries happen only when a rekey
// publication lands mid-probe, so the loop is effectively bounded by the
// (rare) rekey rate.
//
//demux:hotpath
func (d *RCUGuarded) Lookup(k core.Key, dir core.Direction) core.Result {
	wasted := 0
	for {
		pair := d.state.Load()
		r := pair.cur.LookupRaw(k, dir)
		if pair.next != nil && (r.PCB == nil || r.Wildcard) {
			// No exact match in the draining table: the connection (or
			// the best listener) may have moved already.
			r2 := pair.next.LookupRaw(k, dir)
			examined := r.Examined + r2.Examined
			switch {
			case r.PCB == nil:
				r = r2
			case r2.PCB != nil && !r2.Wildcard:
				r = r2
			case r2.PCB != nil && core.Match(r2.PCB.Key, k) > core.Match(r.PCB.Key, k):
				r = r2
			}
			r.Examined = examined
		}
		if (r.PCB != nil && !r.Wildcard) || d.state.Load() == pair {
			// Abandoned probes still touched PCBs; keep the figure of
			// merit honest.
			r.Examined += wasted
			d.stats.record(r)
			return r
		}
		wasted += r.Examined
	}
}

// LookupBatch implements parallel.ConcurrentDemuxer by looping Lookup;
// the wrapper adds no batching of its own.
func (d *RCUGuarded) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out = out[:0]
	for _, k := range keys {
		out = append(out, d.Lookup(k, dir))
	}
	return out
}

// containsExact scans the key's chain in t for an exact match, bypassing
// the one-entry cache (which may transiently hold a just-removed PCB).
func containsExact(t *rcu.Demuxer, k core.Key) bool {
	found := false
	t.WalkChain(t.ChainIndexOf(k), func(p *core.PCB) bool {
		if p.Key == k {
			found = true
			return false
		}
		return true
	})
	return found
}

// Insert implements parallel.ConcurrentDemuxer. During a migration new
// PCBs go straight to the replacement table; the duplicate check spans
// both. Each insert also runs the watchdog (or advances the migration).
func (d *RCUGuarded) Insert(p *core.PCB) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	pair := d.state.Load()
	if pair.next != nil {
		if !p.Key.IsWildcard() && containsExact(pair.cur, p.Key) {
			return core.ErrDuplicateKey
		}
		if err := pair.next.Insert(p); err != nil {
			return err
		}
		d.stepLocked(pair, d.cfg.Stride)
		return nil
	}
	if err := pair.cur.Insert(p); err != nil {
		return err
	}
	d.maybeRekeyLocked(pair)
	return nil
}

// Remove implements parallel.ConcurrentDemuxer.
func (d *RCUGuarded) Remove(k core.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	pair := d.state.Load()
	if pair.next != nil {
		ok := pair.next.Remove(k) || pair.cur.Remove(k)
		d.stepLocked(pair, d.cfg.Stride)
		return ok
	}
	return pair.cur.Remove(k)
}

// NotifySend implements parallel.ConcurrentDemuxer (ignored, as in rcu).
func (d *RCUGuarded) NotifySend(*core.PCB) {}

// Len implements parallel.ConcurrentDemuxer. Taken under mu so a PCB
// mid-move (present in both tables for an instant) is not double-counted.
func (d *RCUGuarded) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	pair := d.state.Load()
	if pair.next != nil {
		return pair.cur.Len() + pair.next.Len()
	}
	return pair.cur.Len()
}

// Snapshot implements parallel.ConcurrentDemuxer: the wrapper's own
// logical-lookup statistics.
func (d *RCUGuarded) Snapshot() core.Stats { return d.stats.fold() }

// Walk implements parallel.ConcurrentDemuxer. It holds mu, so the
// every-key-in-exactly-one-table invariant holds and no PCB is yielded
// twice.
func (d *RCUGuarded) Walk(fn func(*core.PCB) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pair := d.state.Load()
	done := false
	pair.cur.Walk(func(p *core.PCB) bool {
		if !fn(p) {
			done = true
			return false
		}
		return true
	})
	if done || pair.next == nil {
		return
	}
	pair.next.Walk(fn)
}

// ChainLengths samples the live table's chain populations (the
// replacement's, once a rekey is in flight).
func (d *RCUGuarded) ChainLengths() []int64 {
	pair := d.state.Load()
	if pair.next != nil {
		return pair.next.ChainLengths()
	}
	return pair.cur.ChainLengths()
}

// NumChains reports the live table's chain count (the replacement's,
// once a rekey is in flight).
func (d *RCUGuarded) NumChains() int {
	pair := d.state.Load()
	if pair.next != nil {
		return pair.next.NumChains()
	}
	return pair.cur.NumChains()
}

// MaybeRekey runs one watchdog check immediately.
func (d *RCUGuarded) MaybeRekey() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.maybeRekeyLocked(d.state.Load())
}

// Advance moves up to n chains of an in-flight migration — the hook for
// drivers that want migration progress independent of write traffic.
func (d *RCUGuarded) Advance(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pair := d.state.Load(); pair.next != nil {
		d.stepLocked(pair, n)
	}
}

// maybeRekeyLocked samples chain lengths and starts a migration on skew.
// Callers hold mu and pass the currently published pair.
func (d *RCUGuarded) maybeRekeyLocked(pair *tablePair) {
	if pair.next != nil {
		return
	}
	lengths := pair.cur.ChainLengths()
	d.tel.ObserveChains(lengths)
	if !Skewed(lengths, d.cfg) && !Overloaded(lengths, d.cfg) {
		return
	}
	var pop int64
	for _, n := range lengths {
		pop += n
	}
	next := rcu.New(chainsFor(int(pop), pair.cur.NumChains(), d.cfg), hashfn.KeyedFromRNG(d.src))
	// Copy listeners into the replacement before publishing it, remove
	// them from cur after: every reader interleaving finds the full
	// listener set in at least one probed table.
	var listeners []*core.PCB
	pair.cur.WalkListeners(func(p *core.PCB) bool {
		listeners = append(listeners, p)
		return true
	})
	for _, p := range listeners {
		if err := next.Insert(p); err != nil {
			panic("overload: rekey found duplicate listener: " + err.Error())
		}
	}
	d.state.Store(&tablePair{cur: pair.cur, next: next})
	for _, p := range listeners {
		pair.cur.Remove(p.Key)
	}
	d.migrate = 0
	d.Rekeys++
	if d.tel != nil {
		d.tel.Rekeys.Inc()
	}
}

// stepLocked advances the migration by up to n chains, publishing the
// finished single-table pair when the drain completes. Callers hold mu.
func (d *RCUGuarded) stepLocked(pair *tablePair, n int) {
	cur, next := pair.cur, pair.next
	for i := 0; i < n && d.migrate < cur.NumChains(); i++ {
		var move []*core.PCB
		cur.WalkChain(d.migrate, func(p *core.PCB) bool {
			move = append(move, p)
			return true
		})
		for _, p := range move {
			// Insert before remove — the inverse of the reader's
			// cur-then-next probe order, so no interleaving misses p.
			if err := next.Insert(p); err != nil {
				panic("overload: migration found duplicate key: " + err.Error())
			}
			cur.Remove(p.Key)
			d.MigratedPCBs++
			if d.tel != nil {
				d.tel.Migrated.Inc()
			}
		}
		d.migrate++
	}
	if d.migrate >= cur.NumChains() && cur.Len() == 0 {
		d.state.Store(&tablePair{cur: next})
	}
}
