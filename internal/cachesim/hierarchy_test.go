package cachesim

import (
	"testing"

	"tcpdemux/internal/rng"
)

func mustHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(Era1992, Era1992L2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := mustHierarchy(t)
	h.Access(0) // cold: memory
	if h.Cycles != 30 {
		t.Fatalf("cold access cost %v", h.Cycles)
	}
	h.Access(0) // L1 hit
	if h.Cycles != 31 {
		t.Fatalf("after L1 hit: %v", h.Cycles)
	}
	// Evict from tiny L1 by touching 16 KiB of conflicting lines; line 0
	// survives in the 256 KiB L2.
	for a := uint64(32); a < 16<<10; a += 32 {
		h.Access(a)
	}
	before := h.Cycles
	h.Access(0)
	if got := h.Cycles - before; got != h.L2Cycles {
		t.Fatalf("expected L2 hit (%v cycles), got %v", h.L2Cycles, got)
	}
}

func TestHierarchyBadConfigs(t *testing.T) {
	bad := CacheConfig{SizeBytes: 100, LineBytes: 32, Ways: 2}
	if _, err := NewHierarchy(bad, Era1992L2); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewHierarchy(Era1992, bad); err == nil {
		t.Fatal("bad L2 accepted")
	}
}

// TestScanCostsBracketedByLevels reproduces §3.1's claim hierarchy-wise:
// 2,000 PCBs (512 KiB) exceed even the off-chip cache, so a repeated full
// scan pays mostly L2-to-memory costs; 100 PCBs (25 KiB) fit in L2 and
// settle at L2 speed; 25 PCBs (6 KiB) fit on chip.
func TestScanCostsBracketedByLevels(t *testing.T) {
	src := rng.New(3)
	costPerPCB := func(n int) float64 {
		h := mustHierarchy(t)
		addrs := make([]uint64, n)
		perm := src.Perm(n)
		for i, p := range perm {
			addrs[i] = uint64(p) * 256
		}
		// Warm, then measure three full scans.
		h.WalkPCBs(addrs)
		total := 0.0
		for pass := 0; pass < 3; pass++ {
			total += h.WalkPCBs(addrs)
		}
		return total / float64(3*n)
	}
	small := costPerPCB(25)
	medium := costPerPCB(100)
	large := costPerPCB(2000)
	if small > 2 {
		t.Fatalf("on-chip scan cost %v, want ≈ L1", small)
	}
	if medium <= small || medium > 10 {
		t.Fatalf("L2-resident scan cost %v", medium)
	}
	if large <= medium {
		t.Fatalf("memory-bound scan cost %v not above L2-resident %v", large, medium)
	}
}

func TestCyclesPerAccess(t *testing.T) {
	h := mustHierarchy(t)
	if h.CyclesPerAccess() != 0 {
		t.Fatal("empty hierarchy should report 0")
	}
	h.Access(0)
	h.Access(0)
	if got := h.CyclesPerAccess(); got != 15.5 {
		t.Fatalf("mean = %v, want (30+1)/2", got)
	}
}
