// Package cachesim models the memory-hierarchy cost of PCB lookups to
// support the paper's figure-of-merit argument (§3): "Since memory speeds
// and bandwidths have been and are expected to continue increasing much
// more slowly than CPU speeds, moving the PCBs between main memory and the
// on-chip cache is and will continue to be the primary bottleneck. Hence,
// the number of PCBs examined is a very good surrogate for the time
// required to find the right PCB."
//
// It provides a set-associative LRU cache simulator and per-algorithm
// access-pattern generators that replay the PCB touch sequences of the BSD
// and Sequent lookups under the memoryless TPC/A approximation. EXP-MEM
// runs both through the same hierarchy and shows estimated stall cycles
// tracking the examined counts.
package cachesim

import (
	"errors"
	"fmt"

	"tcpdemux/internal/rng"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity. Must be a multiple of
	// LineBytes*Ways.
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Ways is the associativity.
	Ways int
}

// Era1992 approximates the on-chip data cache of a 1992 high-end CPU
// (e.g. i486/early RISC): 8 KiB, 32-byte lines, 2-way.
var Era1992 = CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Ways: 2}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return errors.New("cachesim: line size must be a positive power of two")
	case c.Ways <= 0:
		return errors.New("cachesim: associativity must be positive")
	case c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return errors.New("cachesim: size must be a positive multiple of line*ways")
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      CacheConfig
	sets     [][]uint64 // per-set tag stacks, MRU first; 0 = empty slot
	setMask  uint64
	lineBits uint
	// Accesses and Misses count calls to Access.
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache from the configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets&(nsets-1) != 0 {
		return nil, errors.New("cachesim: set count must be a power of two")
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	sets := make([][]uint64, nsets)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), lineBits: lineBits}, nil
}

// Access touches the byte at addr and reports whether it hit. Tags are
// stored +1 so that a zero slot means empty.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineBits
	set := c.sets[line&c.setMask]
	tag := line + 1
	for i, t := range set {
		if t == tag {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return true
		}
	}
	c.Misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[line&c.setMask] = set
	return false
}

// MissRate returns the observed miss fraction.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Accesses, c.Misses = 0, 0
}

// Model combines a cache with a latency model and a PCB memory layout.
type Model struct {
	// Cache is the simulated on-chip data cache.
	Cache *Cache
	// HitCycles and MissCycles are per-access costs. 1992-era defaults:
	// 1-cycle hit, ~20-cycle memory access.
	HitCycles, MissCycles float64
	// PCBBytes is the size of one PCB (the era's inpcb+tcpcb pair is a few
	// hundred bytes; keys sit in the first lines).
	PCBBytes int
	// LinesPerExam is the number of cache lines touched to examine one
	// PCB's demultiplexing key (1 for a compact key layout, more when key
	// fields straddle lines).
	LinesPerExam int
	// addrs maps PCB index to its (shuffled) base address: allocation
	// order is unrelated to list order, as with a real kernel allocator.
	addrs []uint64
	// Cycles accumulates estimated stall-inclusive cost.
	Cycles float64
	// Exams counts PCB examinations.
	Exams uint64
}

// NewModel builds a cost model with n PCBs laid out at shuffled addresses.
func NewModel(cfg CacheConfig, n int, seed uint64) (*Model, error) {
	c, err := NewCache(cfg)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Cache: c, HitCycles: 1, MissCycles: 20,
		PCBBytes: 256, LinesPerExam: 1,
	}
	src := rng.New(seed)
	perm := src.Perm(n)
	m.addrs = make([]uint64, n)
	for i, p := range perm {
		m.addrs[i] = uint64(p) * uint64(m.PCBBytes)
	}
	return m, nil
}

// ExaminePCB accounts one examination of PCB idx.
func (m *Model) ExaminePCB(idx int) {
	m.Exams++
	base := m.addrs[idx]
	for l := 0; l < m.LinesPerExam; l++ {
		addr := base + uint64(l*m.Cache.cfg.LineBytes)
		if m.Cache.Access(addr) {
			m.Cycles += m.HitCycles
		} else {
			m.Cycles += m.MissCycles
		}
	}
}

// Touch accounts one raw access to the byte at addr — no PCB indexing,
// no examination count. The flat-table replayers use it for probe-group
// entry lines, which live in a packed table region rather than in any
// PCB; the examination count for those probes is kept by the replayer,
// since what is examined there is a 24-byte entry, not a PCB.
func (m *Model) Touch(addr uint64) {
	if m.Cache.Access(addr) {
		m.Cycles += m.HitCycles
	} else {
		m.Cycles += m.MissCycles
	}
}

// CyclesPerExam returns the average estimated cycles per PCB examination.
func (m *Model) CyclesPerExam() float64 {
	if m.Exams == 0 {
		return 0
	}
	return m.Cycles / float64(m.Exams)
}

// String summarizes the model state.
func (m *Model) String() string {
	return fmt.Sprintf("exams=%d cycles=%.0f (%.2f/exam) miss-rate=%.1f%%",
		m.Exams, m.Cycles, m.CyclesPerExam(), m.Cache.MissRate()*100)
}

// --- per-algorithm access patterns -------------------------------------------

// LookupCost is the outcome of one modeled lookup.
type LookupCost struct {
	Examined int
	Cycles   float64
}

// BSDLookups replays `lookups` BSD lookups over n PCBs with uniformly
// random targets (the memoryless TPC/A approximation): one cache-PCB probe
// followed by a scan from the list head to the target. It returns the mean
// examined count and mean estimated cycles per lookup.
func BSDLookups(m *Model, n, lookups int, seed uint64) LookupCost {
	src := rng.New(seed)
	order := src.Perm(n) // list order, fixed at insertion
	cachePCB := order[0]
	var totalExam int
	startCycles := m.Cycles
	for i := 0; i < lookups; i++ {
		target := src.Intn(n)
		m.ExaminePCB(cachePCB) // one-entry cache probe
		totalExam++
		if cachePCB != target {
			for _, idx := range order {
				m.ExaminePCB(idx)
				totalExam++
				if idx == target {
					break
				}
			}
		}
		cachePCB = target
	}
	return LookupCost{
		Examined: totalExam / lookups,
		Cycles:   (m.Cycles - startCycles) / float64(lookups),
	}
}

// FlatLookups replays `lookups` flat-table (internal/flat) lookups over
// n connections with uniform targets: a bounded contiguous window of
// packed 24-byte entries is scanned from the target's home slot until
// the match. The placement is a simplified hopscotch — first free slot
// in the window, re-homing when a window is full, a stand-in for
// displacement that yields the same occupancy statistics — at the same
// ~3/4 pre-growth load factor the real table runs at.
//
// Two modeling points carry the comparison against the chained
// replayers: entries are contiguous, so one 32-byte line holds parts of
// two or three probes (the chained layouts pay at least a line per
// examined PCB, at shuffled addresses); and the probe never touches a
// PCB at all — the key and fingerprint are inline — so the PCB heap
// stays out of the cache entirely during demultiplexing.
func FlatLookups(m *Model, n, lookups int, seed uint64) LookupCost {
	const (
		entryBytes = 24
		window     = 8
	)
	src := rng.New(seed)
	size := 1
	for 4*n > 3*size {
		size <<= 1
	}
	slots := make([]int, size+window-1) // 0 = empty, else connection index + 1
	home := make([]int, n)
	for i := 0; i < n; i++ {
		for {
			h := src.Intn(size)
			placed := false
			for j := h; j < h+window; j++ {
				if slots[j] == 0 {
					slots[j] = i + 1
					home[i] = h
					placed = true
					break
				}
			}
			if placed {
				break
			}
		}
	}
	// The table region is disjoint from the PCB heap, as in the real
	// layout (entries in the table slice, PCBs behind the slab).
	entryBase := uint64(n*m.PCBBytes) + 4096
	var totalExam int
	startCycles := m.Cycles
	for i := 0; i < lookups; i++ {
		target := src.Intn(n)
		for j := home[target]; j < home[target]+window; j++ {
			if slots[j] == 0 {
				continue
			}
			totalExam++
			m.Exams++
			lo := entryBase + uint64(j*entryBytes)
			hi := lo + entryBytes - 1
			m.Touch(lo)
			if lo>>m.Cache.lineBits != hi>>m.Cache.lineBits {
				m.Touch(hi) // entry straddles a line boundary
			}
			if slots[j] == target+1 {
				break
			}
		}
	}
	return LookupCost{
		Examined: totalExam / lookups,
		Cycles:   (m.Cycles - startCycles) / float64(lookups),
	}
}

// SequentLookups replays `lookups` Sequent lookups over n PCBs spread
// round-robin across h chains, again with uniform targets: per-chain cache
// probe plus a scan of the target's chain.
func SequentLookups(m *Model, n, h, lookups int, seed uint64) LookupCost {
	src := rng.New(seed)
	perm := src.Perm(n)
	chains := make([][]int, h)
	for i, p := range perm {
		chains[i%h] = append(chains[i%h], p)
	}
	caches := make([]int, h) // cached PCB per chain, -1 = empty
	for i := range caches {
		caches[i] = -1
	}
	chainOf := make([]int, n)
	for ci, ch := range chains {
		for _, idx := range ch {
			chainOf[idx] = ci
		}
	}
	var totalExam int
	startCycles := m.Cycles
	for i := 0; i < lookups; i++ {
		target := src.Intn(n)
		ci := chainOf[target]
		if caches[ci] >= 0 {
			m.ExaminePCB(caches[ci])
			totalExam++
			if caches[ci] == target {
				continue
			}
		}
		for _, idx := range chains[ci] {
			m.ExaminePCB(idx)
			totalExam++
			if idx == target {
				break
			}
		}
		caches[ci] = target
	}
	return LookupCost{
		Examined: totalExam / lookups,
		Cycles:   (m.Cycles - startCycles) / float64(lookups),
	}
}
