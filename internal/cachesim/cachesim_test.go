package cachesim

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidate(t *testing.T) {
	if err := Era1992.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CacheConfig{
		{SizeBytes: 1024, LineBytes: 0, Ways: 1},
		{SizeBytes: 1024, LineBytes: 33, Ways: 1},
		{SizeBytes: 1000, LineBytes: 32, Ways: 2},
		{SizeBytes: 1024, LineBytes: 32, Ways: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	if !c.Access(31) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32) {
		t.Fatal("next line should cold-miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2 sets of 32-byte lines: lines 0,2,4 map to set 0.
	c := mustCache(t, CacheConfig{SizeBytes: 128, LineBytes: 32, Ways: 2})
	c.Access(0 * 32)
	c.Access(2 * 32)
	c.Access(0 * 32) // refresh line 0: LRU is now line 2
	c.Access(4 * 32) // evicts line 2
	if !c.Access(0 * 32) {
		t.Fatal("line 0 should have survived (was MRU)")
	}
	if c.Access(2 * 32) {
		t.Fatal("line 2 should have been evicted")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := mustCache(t, Era1992)
	// Touch 4 KiB twice: second pass must be all hits in an 8 KiB cache.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 32 {
			c.Access(a)
		}
	}
	if c.Misses != 128 {
		t.Fatalf("misses = %d, want 128 cold only", c.Misses)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	c := mustCache(t, Era1992)
	// Cyclically touch 64 KiB (8x capacity) with LRU: every access misses
	// after warm-up.
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 64<<10; a += 32 {
			c.Access(a)
		}
	}
	if c.MissRate() < 0.99 {
		t.Fatalf("cyclic over-capacity miss rate = %v", c.MissRate())
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, Era1992)
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("counters survive reset")
	}
	if c.Access(0) {
		t.Fatal("contents survive reset")
	}
}

func TestCacheQuickNoFalseHits(t *testing.T) {
	// A line never touched must miss; a line just touched must hit.
	c := mustCache(t, CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	f := func(addr uint32) bool {
		a := uint64(addr)
		c.Access(a)
		return c.Access(a) // immediate re-access always hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestModelCyclesAccumulate(t *testing.T) {
	m, err := NewModel(Era1992, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.ExaminePCB(5) // cold miss: 20 cycles
	if m.Cycles != 20 || m.Exams != 1 {
		t.Fatalf("after miss: cycles=%v exams=%d", m.Cycles, m.Exams)
	}
	m.ExaminePCB(5) // hit: +1
	if m.Cycles != 21 {
		t.Fatalf("after hit: cycles=%v", m.Cycles)
	}
	if m.CyclesPerExam() != 10.5 {
		t.Fatalf("cycles/exam = %v", m.CyclesPerExam())
	}
}

// TestFigureOfMeritClaim is EXP-MEM: with 2,000 PCBs (512 KiB of PCB data
// against an 8 KiB cache) the BSD scan's estimated cycle cost must exceed
// Sequent's by roughly the same order of magnitude as the examined counts —
// the paper's justification for counting PCBs instead of cycles.
func TestFigureOfMeritClaim(t *testing.T) {
	const n, lookups = 2000, 4000
	mb, err := NewModel(Era1992, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	bsd := BSDLookups(mb, n, lookups, 7)

	ms, err := NewModel(Era1992, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := SequentLookups(ms, n, 19, lookups, 7)

	examRatio := float64(bsd.Examined) / float64(seq.Examined)
	cycleRatio := bsd.Cycles / seq.Cycles
	if examRatio < 10 {
		t.Fatalf("exam ratio %v, expected order of magnitude", examRatio)
	}
	if cycleRatio < 5 {
		t.Fatalf("cycle ratio %v does not track exam ratio %v", cycleRatio, examRatio)
	}
	// Cycles per lookup should differ from a pure exam count by at most
	// the hit/miss spread; the correlation claim is ratio-based.
	t.Logf("BSD: %d exams %.0f cycles; Sequent: %d exams %.0f cycles",
		bsd.Examined, bsd.Cycles, seq.Examined, seq.Cycles)
}

func TestBSDLookupsMatchEq1Shape(t *testing.T) {
	const n, lookups = 500, 5000
	m, err := NewModel(Era1992, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := BSDLookups(m, n, lookups, 5)
	want := 1 + float64(n)/2 // Eq. 1 asymptote
	if float64(got.Examined) < want*0.9 || float64(got.Examined) > want*1.1 {
		t.Fatalf("modeled BSD examined %d, want ≈ %v", got.Examined, want)
	}
}

func TestSequentLookupsScaleWithChains(t *testing.T) {
	const n, lookups = 1900, 5000
	run := func(h int) LookupCost {
		m, err := NewModel(Era1992, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		return SequentLookups(m, n, h, lookups, 5)
	}
	c19, c100 := run(19), run(100)
	ratio := float64(c19.Examined) / float64(c100.Examined)
	if ratio < 3.5 || ratio > 6.5 {
		t.Fatalf("19→100 chains examined ratio = %v, want ≈ 5 (§3.5)", ratio)
	}
	if c100.Cycles >= c19.Cycles {
		t.Fatal("more chains did not reduce modeled cycles")
	}
}

// TestFlatLookupsBeatChained pins the EXP-CACHE claim at model level:
// at TPC/A-like population, the packed flat-table probe costs a small
// bounded number of examinations and far fewer modeled stall cycles per
// lookup than the chained Sequent scan over the same connection count —
// the examined window is at most 8 entries and the probe never touches
// a PCB line. Also checks determinism: same seed, same numbers.
func TestFlatLookupsBeatChained(t *testing.T) {
	const n, h, lookups = 1900, 19, 5000
	mkModel := func() *Model {
		m, err := NewModel(Era1992, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	seq := SequentLookups(mkModel(), n, h, lookups, 5)
	flat := FlatLookups(mkModel(), n, lookups, 5)
	if flat.Examined > 8 {
		t.Fatalf("flat examined %d > window bound 8", flat.Examined)
	}
	if flat.Examined < 1 {
		t.Fatalf("flat examined %d, want >= 1", flat.Examined)
	}
	if flat.Cycles*5 >= seq.Cycles {
		t.Fatalf("flat modeled cycles %.1f not well under sequent %.1f", flat.Cycles, seq.Cycles)
	}
	if again := FlatLookups(mkModel(), n, lookups, 5); again != flat {
		t.Fatalf("FlatLookups not deterministic: %+v vs %+v", again, flat)
	}
}

// TestModelTouch checks the raw-address accounting FlatLookups builds on.
func TestModelTouch(t *testing.T) {
	m, err := NewModel(Era1992, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Touch(1 << 20)
	if m.Cycles != m.MissCycles {
		t.Fatalf("cold touch cost %v cycles, want %v", m.Cycles, m.MissCycles)
	}
	m.Touch(1 << 20)
	if m.Cycles != m.MissCycles+m.HitCycles {
		t.Fatalf("warm touch cost %v cycles total, want %v", m.Cycles, m.MissCycles+m.HitCycles)
	}
	if m.Exams != 0 {
		t.Fatalf("Touch bumped Exams to %d", m.Exams)
	}
}

func TestNewModelBadConfig(t *testing.T) {
	if _, err := NewModel(CacheConfig{SizeBytes: 100, LineBytes: 32, Ways: 2}, 10, 1); err == nil {
		t.Fatal("bad cache config accepted")
	}
}
