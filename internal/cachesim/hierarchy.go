package cachesim

import "fmt"

// Hierarchy models a two-level cache in front of memory, refining the
// single-level Model: an access that misses L1 may still hit the off-chip
// L2 the paper mentions ("this scan will involve traffic at least to an
// off-chip cache. In many systems, the scan will require accesses to real
// memory", §3.1).
type Hierarchy struct {
	// L1 and L2 are the cache levels; L2 is inclusive of nothing (each
	// level tracks its own contents — a victim-style simplification).
	L1, L2 *Cache
	// L1Cycles, L2Cycles, MemCycles are the access costs per level.
	// 1992-era flavour: 1 / 8 / 30.
	L1Cycles, L2Cycles, MemCycles float64
	// Cycles accumulates the estimated cost.
	Cycles float64
	// Accesses counts line accesses.
	Accesses uint64
}

// Era1992L2 approximates an off-chip board cache of the era: 256 KiB,
// 32-byte lines, direct-mapped... generously 2-way.
var Era1992L2 = CacheConfig{SizeBytes: 256 << 10, LineBytes: 32, Ways: 2}

// NewHierarchy builds a two-level hierarchy.
func NewHierarchy(l1, l2 CacheConfig) (*Hierarchy, error) {
	c1, err := NewCache(l1)
	if err != nil {
		return nil, fmt.Errorf("cachesim: L1: %w", err)
	}
	c2, err := NewCache(l2)
	if err != nil {
		return nil, fmt.Errorf("cachesim: L2: %w", err)
	}
	return &Hierarchy{L1: c1, L2: c2, L1Cycles: 1, L2Cycles: 8, MemCycles: 30}, nil
}

// Access touches addr, charging the first level that hits (memory if
// none). Both levels are updated, as with an ordinary fill path.
func (h *Hierarchy) Access(addr uint64) {
	h.Accesses++
	if h.L1.Access(addr) {
		h.Cycles += h.L1Cycles
		// An L1 hit leaves L2 untouched (no back-invalidate modeling).
		return
	}
	if h.L2.Access(addr) {
		h.Cycles += h.L2Cycles
		return
	}
	h.Cycles += h.MemCycles
}

// CyclesPerAccess returns the average cost per line access.
func (h *Hierarchy) CyclesPerAccess() float64 {
	if h.Accesses == 0 {
		return 0
	}
	return h.Cycles / float64(h.Accesses)
}

// WalkPCBs charges a scan over the given PCB base addresses (one line
// each), returning the cycles this walk cost.
func (h *Hierarchy) WalkPCBs(addrs []uint64) float64 {
	before := h.Cycles
	for _, a := range addrs {
		h.Access(a)
	}
	return h.Cycles - before
}
