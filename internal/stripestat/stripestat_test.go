package stripestat

import (
	"sync"
	"sync/atomic"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
)

// TestDrainBoundary walks one slot's packed word up to the drain
// threshold and checks the exact hand-off into the spill counters: no
// drain below drainAt, a full transfer at it, and totals preserved
// through Fold on either side of the boundary.
func TestDrainBoundary(t *testing.T) {
	var s Stripes
	s.Init()
	sl := &s.slots[0]

	sl.add(1<<21, 3)
	if got := sl.packed.Load(); got != (1<<21)<<packShift+3 {
		t.Fatalf("packed after first add = %#x, want %#x", got, uint64(1<<21)<<packShift+3)
	}
	if sl.spillLookups.Load() != 0 || sl.spillExamined.Load() != 0 {
		t.Fatalf("spill counters drained below threshold: lookups=%d examined=%d",
			sl.spillLookups.Load(), sl.spillExamined.Load())
	}

	// One lookup short of the 2^22 threshold: still no drain.
	sl.add(1<<21-1, 5)
	if sl.spillLookups.Load() != 0 {
		t.Fatalf("spill drained one lookup below threshold")
	}
	if got := s.Fold(); got.Lookups != 1<<22-1 || got.Examined != 8 {
		t.Fatalf("pre-drain Fold = %+v, want Lookups=%d Examined=8", got, 1<<22-1)
	}

	// The add that reaches drainAt transfers the whole word.
	sl.add(1, 0)
	if got := sl.packed.Load(); got != 0 {
		t.Fatalf("packed not drained at threshold: %#x", got)
	}
	if l, e := sl.spillLookups.Load(), sl.spillExamined.Load(); l != 1<<22 || e != 8 {
		t.Fatalf("spills after drain = (%d, %d), want (%d, 8)", l, e, 1<<22)
	}
	if got := s.Fold(); got.Lookups != 1<<22 || got.Examined != 8 {
		t.Fatalf("post-drain Fold = %+v, want Lookups=%d Examined=8", got, 1<<22)
	}
}

// syntheticResults builds a deterministic mix of hit / miss / wildcard
// results with varying examination counts.
func syntheticResults(n int, seed uint64) []core.Result {
	src := rng.New(seed)
	pcb := core.NewPCB(core.Key{})
	out := make([]core.Result, n)
	for i := range out {
		r := core.Result{Examined: int(src.Uint64() % 37)}
		switch src.Uint64() % 4 {
		case 0: // miss
		case 1:
			r.PCB = pcb
			r.CacheHit = true
		case 2:
			r.PCB = pcb
			r.Wildcard = true
		case 3:
			r.PCB = pcb
		}
		out[i] = r
	}
	return out
}

// TestRecordBatchEquivalence checks that folding results one at a time
// with Record and in Accumulate/RecordBatch trains lands on identical
// statistics.
func TestRecordBatchEquivalence(t *testing.T) {
	results := syntheticResults(10_000, 99)

	var perRecord Stripes
	perRecord.Init()
	for _, r := range results {
		perRecord.Record(r)
	}

	var batched Stripes
	batched.Init()
	var acc core.Stats
	for i, r := range results {
		Accumulate(&acc, r)
		if (i+1)%16 == 0 {
			batched.RecordBatch(acc)
			acc = core.Stats{}
		}
	}
	batched.RecordBatch(acc)

	// An Accumulate-only fold must also match core.Stats.Record exactly.
	var oracle core.Stats
	for _, r := range results {
		oracle.Record(r)
	}

	a, b := perRecord.Fold(), batched.Fold()
	if a != b {
		t.Fatalf("Record fold %+v != RecordBatch fold %+v", a, b)
	}
	if a != oracle {
		t.Fatalf("striped fold %+v != core.Stats oracle %+v", a, oracle)
	}
}

// TestRecordBatchEmpty checks the zero-batch early return records
// nothing (not even a MaxExamined bump).
func TestRecordBatchEmpty(t *testing.T) {
	var s Stripes
	s.Init()
	s.RecordBatch(core.Stats{MaxExamined: 7})
	if got := s.Fold(); got != (core.Stats{}) {
		t.Fatalf("empty RecordBatch recorded %+v", got)
	}
}

// TestBumpMax checks the running maximum never decreases and lands on
// the true maximum regardless of arrival order.
func TestBumpMax(t *testing.T) {
	var s Stripes
	s.Init()
	sl := &s.slots[0]
	for _, v := range []int64{5, 3, 9, 9, 1} {
		sl.bumpMax(v)
	}
	if got := sl.maxExamined.Load(); got != 9 {
		t.Fatalf("bumpMax sequence folded to %d, want 9", got)
	}
	if got := s.Fold().MaxExamined; got != 9 {
		t.Fatalf("Fold MaxExamined = %d, want 9", got)
	}
}

// TestFoldVsDrainConcurrent races Fold against adds sized to drain
// every other call. Each concurrent snapshot must stay below the
// completed work plus one in-flight add — the old packed-before-spills
// load order could exceed that bound by a whole drained word (2^22
// lookups) when a drain landed between the two loads — and the final
// quiescent fold must be exact. Run with -race.
func TestFoldVsDrainConcurrent(t *testing.T) {
	var s Stripes
	s.Init()

	const (
		addLookups = 1 << 21 // two adds per drain
		adds       = 4096
	)
	var completed atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < adds; i++ {
			s.RecordBatch(core.Stats{Lookups: addLookups, Examined: 1})
			completed.Add(1)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for loop := true; loop; {
		select {
		case <-done:
			loop = false
		default:
		}
		snap := s.Fold()
		// Everything Fold saw was added by at most (completed-after + 1
		// in-flight) RecordBatch calls.
		upper := (completed.Load() + 1) * addLookups
		if snap.Lookups > upper {
			t.Fatalf("concurrent Fold counted %d lookups, bound %d (double-counted a drained word?)",
				snap.Lookups, upper)
		}
	}

	final := s.Fold()
	if want := uint64(adds * addLookups); final.Lookups != want {
		t.Fatalf("final Fold lookups = %d, want %d", final.Lookups, want)
	}
	if final.Examined != adds {
		t.Fatalf("final Fold examined = %d, want %d", final.Examined, adds)
	}
}
