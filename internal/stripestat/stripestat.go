// Package stripestat provides the striped, cache-line-padded statistics
// accumulator shared by the concurrent demultiplexers: the rcu package's
// lock-free Sequent table and the flat package's open-addressing tables
// both fold per-lookup core.Stats updates into per-goroutine-ish slots so
// the hot path never bounces a counter cache line between CPUs.
//
// The accumulator is exact in totals — every recorded lookup lands in
// exactly one slot — and heuristic only in spreading. Fold sums the slots
// into one core.Stats snapshot; a snapshot taken while lookups are in
// flight is consistent per counter but cross-field identities may lag, as
// documented by parallel.ConcurrentDemuxer's snapshot contract.
package stripestat

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"tcpdemux/internal/core"
)

// slot is one padded bundle of statistics counters. The layout keeps each
// slot on its own cache-line region (two 64-byte lines) so goroutines
// folding statistics into different slots never share a line — the same
// false-sharing guard parallel.ShardedSequent applies to its per-shard
// counters, here decoupled from the table entirely.
//
// The two counters every lookup must bump — lookups and examined PCBs —
// share one word (lookups in the top 24 bits, examined in the low 40) so
// the fast path pays a single atomic add; drain moves the word into the
// 64-bit spill counters long before either field can wrap. The remaining
// counters are bumped only on their (rarer) paths.
type slot struct {
	packed        atomic.Uint64 //demux:atomic
	spillLookups  atomic.Uint64 //demux:atomic
	spillExamined atomic.Uint64 //demux:atomic
	hits          atomic.Uint64 //demux:atomic
	misses        atomic.Uint64 //demux:atomic
	wildcardHits  atomic.Uint64 //demux:atomic
	maxExamined   atomic.Int64  //demux:atomic

	_ [72]byte
}

const (
	packShift = 40 // lookups above this bit, examined below
	packMask  = 1<<packShift - 1
	// drainAt triggers a drain once the packed lookup count reaches 2^22,
	// a factor 4 before the 24-bit field wraps and (at <= 2^18 mean
	// examinations per lookup — a population far beyond any workload
	// here) far before the examined field wraps.
	drainAt = uint64(1) << 62
)

// add folds one batch of (lookups, examined) with a single atomic add.
//
//demux:hotpath
func (sl *slot) add(lookups, examined uint64) {
	v := sl.packed.Add(lookups<<packShift + examined)
	if v >= drainAt {
		// Only the CAS winner transfers v; a racer's CAS fails harmlessly
		// and the next add re-triggers. Between the threshold and a
		// successful drain the field has 2^22 lookups of headroom.
		if sl.packed.CompareAndSwap(v, 0) {
			sl.spillLookups.Add(v >> packShift)
			sl.spillExamined.Add(v & packMask)
		}
	}
}

// bumpMax raises the slot's running maximum to at least v.
//
//demux:hotpath
func (sl *slot) bumpMax(v int64) {
	for {
		cur := sl.maxExamined.Load()
		if v <= cur || sl.maxExamined.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stripes is the striped statistics accumulator: a power-of-two array of
// slots, one (ideally) per P. The zero value is not usable; call Init.
type Stripes struct {
	slots []slot
	mask  uint32
}

// Init sizes the stripe array to the next power of two covering
// 4×GOMAXPROCS, bounding the collision probability of the per-goroutine
// hash without making Fold sum an unbounded array.
func (s *Stripes) Init() {
	n := 1
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	s.slots = make([]slot, n)
	s.mask = uint32(n - 1)
}

// slot picks the stripe for the calling goroutine. Go offers no portable
// P or goroutine identifier, so this hashes the address of a stack-local
// marker: goroutines occupy distinct stacks, which spreads concurrent
// recorders across slots and is stable for a goroutine between stack
// moves. The uintptr is used only as hash input, never converted back to
// a pointer. Correctness never depends on the spreading — any goroutine
// may fold into any slot — only contention does.
//
//demux:hotpath
func (s *Stripes) slot() *slot {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	h := uint32((p >> 6) ^ (p >> 16))
	return &s.slots[h&s.mask]
}

// Record folds one lookup result into the calling goroutine's stripe with
// the same classification rules as core.Stats.Record.
//
//demux:hotpath
func (s *Stripes) Record(r core.Result) {
	sl := s.slot()
	sl.add(1, uint64(r.Examined))
	switch {
	case r.PCB == nil:
		sl.misses.Add(1)
	case r.CacheHit:
		sl.hits.Add(1)
	}
	if r.PCB != nil && r.Wildcard {
		sl.wildcardHits.Add(1)
	}
	sl.bumpMax(int64(r.Examined))
}

// RecordBatch folds a pre-accumulated batch of lookups in one shot — the
// batched lookup paths count locally and pay these atomic adds once per
// train instead of once per packet.
//
//demux:hotpath
func (s *Stripes) RecordBatch(st core.Stats) {
	if st.Lookups == 0 {
		return
	}
	sl := s.slot()
	sl.add(st.Lookups, st.Examined)
	if st.Misses != 0 {
		sl.misses.Add(st.Misses)
	}
	if st.Hits != 0 {
		sl.hits.Add(st.Hits)
	}
	if st.WildcardHits != 0 {
		sl.wildcardHits.Add(st.WildcardHits)
	}
	sl.bumpMax(int64(st.MaxExamined))
}

// Fold sums every stripe into one core.Stats snapshot.
func (s *Stripes) Fold() core.Stats {
	var st core.Stats
	for i := range s.slots {
		sl := &s.slots[i]
		// Load the spill counters before re-reading packed. A drain in
		// slot.add runs CAS(packed→0) first and adds to the spills second,
		// so reading packed first could observe the pre-drain word and
		// then spills that already include that same word — a transient
		// double count of up to 2^22 lookups. In this order a drain landing
		// between the loads makes the word visible in neither counter for
		// one snapshot (a lag the snapshot contract permits), never twice.
		spillL := sl.spillLookups.Load()
		spillE := sl.spillExamined.Load()
		v := sl.packed.Load()
		st.Lookups += spillL + v>>packShift
		st.Examined += spillE + v&packMask
		st.Hits += sl.hits.Load()
		st.Misses += sl.misses.Load()
		st.WildcardHits += sl.wildcardHits.Load()
		if m := int(sl.maxExamined.Load()); m > st.MaxExamined {
			st.MaxExamined = m
		}
	}
	return st
}

// Accumulate folds one result into a batch-local core.Stats with the
// classification rules of core.Stats.Record — the per-train accumulator
// the batched lookup paths feed RecordBatch with.
//
//demux:hotpath
func Accumulate(st *core.Stats, r core.Result) {
	st.Lookups++
	st.Examined += uint64(r.Examined)
	if r.Examined > st.MaxExamined {
		st.MaxExamined = r.Examined
	}
	switch {
	case r.PCB == nil:
		st.Misses++
	case r.CacheHit:
		st.Hits++
	}
	if r.PCB != nil && r.Wildcard {
		st.WildcardHits++
	}
}
