package rcu_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rcu"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
)

// TestConformance mirrors the parallel package's conformance run: basic
// insert/lookup/remove/duplicate/stats semantics, single-threaded.
func TestConformance(t *testing.T) {
	const n = 300
	d := rcu.New(19, nil)
	pcbs := make([]*core.PCB, n)
	for i := range pcbs {
		pcbs[i] = core.NewPCB(tpca.UserKey(i))
		if err := d.Insert(pcbs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Insert(core.NewPCB(tpca.UserKey(0))); err != core.ErrDuplicateKey {
		t.Fatalf("duplicate insert: %v", err)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d", d.Len())
	}
	for i, p := range pcbs {
		if r := d.Lookup(p.Key, core.DirData); r.PCB != p {
			t.Fatalf("lookup %d failed", i)
		}
	}
	if !d.Remove(pcbs[0].Key) || d.Remove(pcbs[0].Key) {
		t.Fatal("remove semantics wrong")
	}
	if r := d.Lookup(pcbs[0].Key, core.DirData); r.PCB != nil {
		t.Fatal("removed PCB still found")
	}
	st := d.Snapshot()
	if st.Lookups != n+1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWildcardFallback checks the listener path: registration, duplicate
// detection, best-match fallback, removal.
func TestWildcardFallback(t *testing.T) {
	d := rcu.New(19, nil)
	listener := core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))
	if err := d.Insert(listener); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(core.NewListenPCB(listener.Key)); err != core.ErrDuplicateKey {
		t.Fatalf("duplicate listener: %v", err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	r := d.Lookup(tpca.UserKey(5), core.DirData)
	if r.PCB != listener || !r.Wildcard {
		t.Fatalf("listener fallback failed: %+v", r)
	}
	if st := d.Snapshot(); st.WildcardHits != 1 {
		t.Fatalf("wildcard stats: %+v", st)
	}
	if !d.Remove(listener.Key) || d.Remove(listener.Key) {
		t.Fatal("listener remove semantics wrong")
	}
}

// TestMatchesSequentCosts drives identical single-threaded sequences
// through core.SequentHash and the RCU table and asserts identical
// examination accounting — same algorithm, different synchronization.
func TestMatchesSequentCosts(t *testing.T) {
	const n = 500
	plain := core.NewSequentHash(19, nil)
	free := rcu.New(19, nil)
	for i := 0; i < n; i++ {
		p := core.NewPCB(tpca.UserKey(i))
		if err := plain.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := free.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	src := rng.New(3)
	for i := 0; i < 20000; i++ {
		k := tpca.UserKey(src.Intn(n))
		a := plain.Lookup(k, core.DirData)
		b := free.Lookup(k, core.DirData)
		if a != b {
			t.Fatalf("lookup %d diverged: plain %+v vs rcu %+v", i, a, b)
		}
	}
	ps, fs := plain.Stats(), free.Snapshot()
	if *ps != fs {
		t.Fatalf("aggregate stats diverged: %+v vs %+v", *ps, fs)
	}
}

// TestChainPlacementMatchesSequent inserts the same PCBs into
// core.SequentHash and the RCU table and compares chain by chain through
// the read-only chain-walk hooks: same hash, same chain count, same
// placement, same within-chain order.
func TestChainPlacementMatchesSequent(t *testing.T) {
	const n = 400
	plain := core.NewSequentHash(19, nil)
	free := rcu.New(19, nil)
	for i := 0; i < n; i++ {
		p := core.NewPCB(tpca.UserKey(i))
		if err := plain.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := free.Insert(p); err != nil {
			t.Fatal(err)
		}
		if a, b := plain.ChainIndexOf(p.Key), free.ChainIndexOf(p.Key); a != b {
			t.Fatalf("placement diverged for %v: %d vs %d", p.Key, a, b)
		}
	}
	// A few removals to exercise the copy-on-write path.
	src := rng.New(11)
	for i := 0; i < 50; i++ {
		k := tpca.UserKey(src.Intn(n))
		if plain.Remove(k) != free.Remove(k) {
			t.Fatalf("remove diverged for %v", k)
		}
	}
	if plain.Len() != free.Len() {
		t.Fatalf("Len diverged: %d vs %d", plain.Len(), free.Len())
	}
	for c := 0; c < plain.NumChains(); c++ {
		var a, b []*core.PCB
		plain.WalkChain(c, func(p *core.PCB) bool { a = append(a, p); return true })
		free.WalkChain(c, func(p *core.PCB) bool { b = append(b, p); return true })
		if len(a) != len(b) {
			t.Fatalf("chain %d length diverged: %d vs %d", c, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("chain %d position %d diverged: %v vs %v", c, i, a[i].Key, b[i].Key)
			}
		}
	}
	// Walk order must match too (chains first, then listeners).
	var a, b []*core.PCB
	plain.Walk(func(p *core.PCB) bool { a = append(a, p); return true })
	free.Walk(func(p *core.PCB) bool { b = append(b, p); return true })
	if len(a) != len(b) {
		t.Fatalf("walk lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk position %d diverged", i)
		}
	}
}

// TestRemovedPCBCannotStayCached is the regression test for the
// cache-staleness hazard the per-chain removal epoch exists to close: once
// Remove returns and all in-flight lookups have drained, no lookup may be
// served the removed PCB from a one-entry cache, no matter how the
// removal raced with readers that were about to publish it.
func TestRemovedPCBCannotStayCached(t *testing.T) {
	const rounds = 2000
	d := rcu.New(7, nil)
	// A crowd sharing chains so caches are actively exercised.
	for i := 0; i < 100; i++ {
		if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	hot := tpca.UserKey(100)
	var stop atomic.Bool
	var wg sync.WaitGroup
	readers := runtime.GOMAXPROCS(0) + 1
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rng.New(seed)
			for !stop.Load() {
				d.Lookup(hot, core.DirData)
				d.Lookup(tpca.UserKey(src.Intn(100)), core.DirData)
			}
		}(uint64(r) + 1)
	}
	for i := 0; i < rounds; i++ {
		if err := d.Insert(core.NewPCB(hot)); err != nil {
			t.Fatal(err)
		}
		d.Lookup(hot, core.DirData) // seed the cache with the victim
		if !d.Remove(hot) {
			t.Fatal("remove failed")
		}
	}
	stop.Store(true)
	wg.Wait()
	// Quiescent now: the hot key is removed and no lookups are in
	// flight, so it must miss.
	if r := d.Lookup(hot, core.DirData); r.PCB != nil {
		t.Fatalf("removed PCB still served from cache: %+v", r)
	}
}

// TestSequentialRemoveClearsCache is the single-threaded version: cache a
// PCB, remove it, and the next lookup must walk to a miss.
func TestSequentialRemoveClearsCache(t *testing.T) {
	d := rcu.New(19, nil)
	p := core.NewPCB(tpca.UserKey(1))
	if err := d.Insert(p); err != nil {
		t.Fatal(err)
	}
	if r := d.Lookup(p.Key, core.DirData); r.PCB != p {
		t.Fatal("lookup failed")
	}
	if r := d.Lookup(p.Key, core.DirData); !r.CacheHit {
		t.Fatal("second lookup should hit the chain cache")
	}
	if !d.Remove(p.Key) {
		t.Fatal("remove failed")
	}
	if r := d.Lookup(p.Key, core.DirData); r.PCB != nil {
		t.Fatalf("removed PCB still found: %+v", r)
	}
}

// TestSnapshotDuringLoad folds stripes while lookups are in flight; totals
// must be monotonic and exact once quiescent.
func TestSnapshotDuringLoad(t *testing.T) {
	const n = 200
	d := rcu.New(19, nil)
	for i := 0; i < n; i++ {
		if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	workers := runtime.GOMAXPROCS(0) * 2
	const ops = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rng.New(seed)
			for i := 0; i < ops; i++ {
				d.Lookup(tpca.UserKey(src.Intn(n)), core.DirData)
			}
		}(uint64(w) + 1)
	}
	var prev uint64
	for i := 0; i < 50; i++ {
		st := d.Snapshot()
		if st.Lookups < prev {
			t.Fatalf("snapshot went backwards: %d -> %d", prev, st.Lookups)
		}
		prev = st.Lookups
	}
	wg.Wait()
	st := d.Snapshot()
	if want := uint64(workers * ops); st.Lookups != want {
		t.Fatalf("lookups = %d, want %d", st.Lookups, want)
	}
	if st.Misses != 0 {
		t.Fatalf("unexpected misses: %+v", st)
	}
	if st.Hits+st.Misses > st.Lookups || st.Examined < st.Lookups {
		t.Fatalf("implausible totals: %+v", st)
	}
}
