package rcu

import (
	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/stripestat"
)

// batchScratch is the reusable grouping state for LookupBatch: an intrusive
// linked list of batch positions per chain. headOf/tailOf are sized to the
// chain count and reset lazily (only touched chains are cleaned), so a
// batch costs O(len(keys) + touched chains), not O(H).
type batchScratch struct {
	next    []int32  // next[i] = following batch position on i's chain
	hash    []uint32 // hash[i] = full hash of keys[i], reused as fingerprint
	headOf  []int32  // first batch position per chain, -1 when empty
	tailOf  []int32
	touched []int32 // chains with at least one key, in first-hit order
}

// scratchFor fetches (or builds) a scratch sized for this demuxer and n
// keys.
func (d *Demuxer) scratchFor(n int) *batchScratch {
	s, _ := d.scratch.Get().(*batchScratch)
	if s == nil {
		s = &batchScratch{
			headOf: make([]int32, len(d.chains)),
			tailOf: make([]int32, len(d.chains)),
		}
		for i := range s.headOf {
			s.headOf[i] = -1
		}
	}
	if cap(s.next) < n {
		s.next = make([]int32, n)
		s.hash = make([]uint32, n)
	}
	s.next = s.next[:n]
	s.hash = s.hash[:n]
	s.touched = s.touched[:0]
	return s
}

// release cleans the touched chains and returns the scratch to the pool.
func (d *Demuxer) release(s *batchScratch) {
	for _, c := range s.touched {
		s.headOf[c] = -1
	}
	d.scratch.Put(s)
}

// LookupBatch demultiplexes a train of inbound keys in one call, returning
// one Result per key in key order. The sequence of Results — PCB, Examined,
// CacheHit, Wildcard, and the statistics they fold into — is identical to
// calling Lookup once per key in order; the conformance tests assert this
// byte for byte.
//
// What batching buys is amortization across the train the paper's
// packet-train analysis ([JR86], internal/trains) assumes arrives clumped:
// keys are grouped by hash chain, so each touched chain's entry slice,
// cache word and removal epoch are loaded once, the slice is L1-warm for
// every key of the train that hashes there, the final cache state is
// published with one atomic store instead of one per found packet, and
// the whole batch's statistics fold into a stripe with one set of atomic
// adds instead of one per packet.
//
// out is reused when it has capacity; the returned slice has len(keys)
// results. Like Lookup, the call takes no locks.
//
//demux:hotpath
func (d *Demuxer) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	if cap(out) < len(keys) {
		out = make([]core.Result, len(keys)) //demux:allowalloc amortized: grows the caller-owned result buffer once, then reused across trains
	}
	out = out[:len(keys)]
	if len(keys) == 0 {
		return out
	}
	s := d.scratchFor(len(keys))
	defer d.release(s)

	// Pass 1: group batch positions by chain, preserving arrival order
	// within each chain (cache evolution is order-sensitive). The full
	// hash is kept for the resolution pass's fingerprint compares.
	for i, k := range keys {
		h := d.hashOf(k)
		s.hash[i] = h
		c := int32(hashfn.ChainIndex(h, len(d.chains)))
		s.next[i] = -1
		if s.headOf[c] < 0 {
			s.headOf[c] = int32(i)
			s.touched = append(s.touched, c) //demux:allowalloc touched reuses pooled scratch capacity; it grows only on the first batch per size class
		} else {
			s.next[s.tailOf[c]] = int32(i)
		}
		s.tailOf[c] = int32(i)
	}

	// Pass 2: resolve chain by chain. Listener state is loaded lazily on
	// the first exact-match miss and shared across the batch.
	var batchStats core.Stats
	var listeners []entry
	listenersLoaded := false
	for _, ci := range s.touched {
		c := &d.chains[ci]
		cache := c.cache.Load()
		epoch := c.epoch.Load()
		es := load(&c.pcbs)

		// Resolve this chain's train keys in arrival order. The first
		// key's scan pulls the chain's entry slice — ~24 bytes per
		// connection, contiguous — into L1; the rest of the train's scans
		// run out of cache, which is the locality the grouping exists to
		// create.
		dirty := false
		for i := s.headOf[ci]; i >= 0; i = s.next[i] {
			k := keys[i]
			h := s.hash[i]
			var r core.Result
			if cache != nil {
				r.Examined++
				if cache.Key == k {
					r.PCB = cache
					r.CacheHit = true
					accumulate(&batchStats, r)
					out[i] = r
					continue
				}
			}
			for j := range es {
				r.Examined++
				if es[j].hash == h && es[j].key == k {
					r.PCB = es[j].pcb
					cache = es[j].pcb
					dirty = true
					break
				}
			}
			if r.PCB == nil {
				if !listenersLoaded {
					listeners = load(&d.listen)
					listenersLoaded = true
				}
				best := -1
				for j := range listeners {
					r.Examined++
					if score := core.Match(listeners[j].key, k); score > best {
						best = score
						r.PCB = listeners[j].pcb
					}
				}
				r.Wildcard = r.PCB != nil
			}
			accumulate(&batchStats, r)
			out[i] = r
		}
		if dirty {
			// Publish the chain's final cache state once per train, with
			// the same removal-epoch retraction as the per-packet path.
			c.cache.Store(cache)
			if c.epoch.Load() != epoch {
				c.cache.CompareAndSwap(cache, nil)
			}
		}
	}
	d.stats.RecordBatch(batchStats)
	return out
}

// accumulate folds one result into the batch-local statistics with the
// classification rules of core.Stats.
//
//demux:hotpath
func accumulate(st *core.Stats, r core.Result) { stripestat.Accumulate(st, r) }
