// Package rcu implements the Sequent hashed PCB table with an RCU-style
// read-mostly synchronization discipline: the lookup fast path takes no
// locks at all.
//
// The design follows the lineage of the paper itself. The hashed PCB table
// of §3.4 shipped inside Sequent's parallelized STREAMS TCP [Dov90, Gar90],
// where each chain carried its own lock; the table's first author later
// invented RCU, the canonical read-mostly technique for exactly this kind
// of lookup-dominated structure. Under TPC/A traffic lookups outnumber
// inserts and removes by orders of magnitude, so this package moves the
// chains the rest of the way: readers traverse immutable chain snapshots
// published through atomic pointers, and only writers serialize (per
// chain).
//
// Synchronization invariants:
//
//   - Each hash chain is an immutable slice of (key, PCB) entries. A
//     published slice is never written again; every mutation builds a
//     fresh slice and replaces the chain wholesale — grace-period-safe
//     chain replacement. A reader that loads the chain pointer sees a
//     fully built chain: the old one or the new one, never a half-linked
//     hybrid. Go's memory model makes atomic operations sequentially
//     consistent, so the slice stores made before the pointer publication
//     are visible to any reader ordered after the pointer load.
//   - Grace periods are the garbage collector's job: a replaced chain
//     stays alive exactly as long as some reader still scans it and is
//     reclaimed only after every such reader has moved on. This is the
//     "RCU for free" property of a tracing-GC runtime — no epoch
//     bookkeeping is needed for reclamation.
//   - The entries inline the connection key next to the PCB pointer, so a
//     chain scan walks one contiguous array and dereferences no PCBs
//     until the match is found — the cache-aware layout that repays the
//     paper's examined-PCBs figure of merit in actual memory traffic. A
//     52-entry chain (2,000 users over 19 chains) occupies ~1.2 KB of
//     sequential memory instead of 52 scattered heap objects.
//   - The per-chain one-entry caches of §3.4 are atomic.Pointer[core.PCB]
//     values. Readers publish a newly found PCB with a plain store; a
//     remover clears the cache and bumps the chain's removal epoch, and a
//     reader that raced (found the PCB in an old snapshot, stored it after
//     the clear) detects the epoch change and retracts its own store. A
//     stale cache entry can therefore outlive a removal only for the
//     duration of one in-flight lookup — the same bounded staleness RCU
//     readers accept on the chains themselves — never indefinitely.
//   - Statistics are striped over padded per-P-ish slots updated with
//     atomic adds and folded on Snapshot, so the hot path never shares a
//     counter cache line across CPUs.
//
// Semantics under concurrency are the usual RCU contract: a Lookup
// concurrent with a Remove may return the PCB removed a moment ago, and a
// Lookup concurrent with an Insert may miss the PCB inserted a moment
// later — exactly as if the lookup had been ordered just before the
// writer. Sequential behavior (costs, statistics, placement) is
// bit-for-bit the behavior of core.SequentHash; the conformance tests
// assert this chain by chain.
package rcu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/stripestat"
)

// entry is one cell of a published chain: the connection key inlined next
// to its PCB so scans stay within the chain's own cache lines, plus the
// key's full 32-bit hash as a scan fingerprint — the chain walk compares
// one word and touches the 12-byte key only on a fingerprint match. The
// hash fits the alignment hole after the key, so the fingerprint is free:
// the entry is 24 bytes either way. Published entries are immutable.
// (Listener entries are matched by wildcard scoring, not equality; their
// hash field is unused.)
type entry struct {
	key  core.Key
	hash uint32
	pcb  *core.PCB
}

// chain is one hash bucket. Readers touch only pcbs, cache and epoch;
// writers serialize on mu. The padding keeps neighbouring chains' hot
// words off one cache line, as in parallel.ShardedSequent.
type chain struct {
	// pcbs points at the chain's current immutable entry slice
	// (front = most recently inserted); nil means empty.
	//demux:atomic
	pcbs  atomic.Pointer[[]entry]
	cache atomic.Pointer[core.PCB] //demux:atomic
	// epoch counts removals on this chain. Readers snapshot it before a
	// chain scan and retract their cache store if it moved — see Lookup.
	//demux:atomic
	epoch atomic.Uint64
	mu    sync.Mutex

	_ [64]byte
}

// Demuxer is the lock-free-read Sequent table. The zero value is not
// usable; construct with New.
type Demuxer struct {
	chains []chain
	hash   hashfn.Func
	// mult short-circuits hashOf to the concrete (inlinable)
	// multiplicative hash when hash is the default hashfn.Multiplicative;
	// an interface call in the lookup fast path costs a real fraction of
	// a chain scan once everything else is lock-free.
	mult bool

	// listen is the wildcard listener table: a COW slice like the chains,
	// with its own writer lock. Listeners have no one-entry cache (they
	// are consulted only after an exact-match miss).
	listenMu sync.Mutex
	listen   atomic.Pointer[[]entry] //demux:atomic

	// conns and listeners track Len without locking every chain.
	conns     atomic.Int64 //demux:atomic
	listeners atomic.Int64 //demux:atomic

	stats stripestat.Stripes

	// scratch pools the per-batch grouping state for LookupBatch.
	scratch sync.Pool
}

// New builds a lock-free-read Sequent demultiplexer with h chains
// (core.DefaultChains if h <= 0) and the given hash function
// (multiplicative if nil). It hashes identically to
// core.NewSequentHash(h, fn), so the two tables place every PCB on the
// same chain.
func New(h int, fn hashfn.Func) *Demuxer {
	if h <= 0 {
		h = core.DefaultChains
	}
	if fn == nil {
		fn = hashfn.Multiplicative{}
	}
	d := &Demuxer{chains: make([]chain, h), hash: fn}
	_, d.mult = fn.(hashfn.Multiplicative)
	d.stats.Init()
	return d
}

// Name implements parallel.ConcurrentDemuxer.
func (d *Demuxer) Name() string { return fmt.Sprintf("rcu-sequent-%d", len(d.chains)) }

// NumChains returns H.
func (d *Demuxer) NumChains() int { return len(d.chains) }

// hashOf computes an exact key's full hash, used both for chain selection
// and as the entry fingerprint.
//
//demux:hotpath
func (d *Demuxer) hashOf(k core.Key) uint32 {
	if d.mult {
		return hashfn.Multiplicative{}.Hash(k.Tuple())
	}
	return d.hash.Hash(k.Tuple())
}

// chainFor hashes an exact key to its chain index.
func (d *Demuxer) chainFor(k core.Key) int {
	return hashfn.ChainIndex(d.hashOf(k), len(d.chains))
}

// ChainIndexOf exposes the chain placement of an exact key, mirroring
// core.SequentHash.ChainIndexOf.
func (d *Demuxer) ChainIndexOf(k core.Key) int { return d.chainFor(k) }

// load returns the current snapshot of a published entry slice.
func load(p *atomic.Pointer[[]entry]) []entry {
	if s := p.Load(); s != nil {
		return *s
	}
	return nil
}

// prepend builds the COW slice with e at the front of old.
func prepend(e entry, old []entry) *[]entry {
	s := make([]entry, 0, len(old)+1)
	s = append(s, e)
	s = append(s, old...)
	return &s
}

// without builds the COW slice omitting position i of old (nil if that
// empties the chain).
func without(old []entry, i int) *[]entry {
	if len(old) == 1 {
		return nil
	}
	s := make([]entry, 0, len(old)-1)
	s = append(s, old[:i]...)
	s = append(s, old[i+1:]...)
	return &s
}

// Insert implements parallel.ConcurrentDemuxer. Wildcard keys register
// listeners; exact keys prepend to their chain. Only the relevant writer
// lock is taken; readers are never blocked.
func (d *Demuxer) Insert(p *core.PCB) error {
	if p.Key.IsWildcard() {
		d.listenMu.Lock()
		defer d.listenMu.Unlock()
		old := load(&d.listen)
		for i := range old {
			if old[i].key == p.Key {
				return core.ErrDuplicateKey
			}
		}
		// The new slice is fully built before the store, so a concurrent
		// reader sees either the old table or the complete new one.
		d.listen.Store(prepend(entry{key: p.Key, pcb: p}, old))
		d.listeners.Add(1)
		return nil
	}
	h := d.hashOf(p.Key)
	c := &d.chains[hashfn.ChainIndex(h, len(d.chains))]
	c.mu.Lock()
	defer c.mu.Unlock()
	old := load(&c.pcbs)
	for i := range old {
		if old[i].key == p.Key {
			return core.ErrDuplicateKey
		}
	}
	c.pcbs.Store(prepend(entry{p.Key, h, p}, old))
	d.conns.Add(1)
	return nil
}

// Remove implements parallel.ConcurrentDemuxer: copy-on-write chain
// replacement under the writer lock, then retraction of the chain's
// one-entry cache if it holds the victim.
func (d *Demuxer) Remove(k core.Key) bool {
	if k.IsWildcard() {
		d.listenMu.Lock()
		defer d.listenMu.Unlock()
		old := load(&d.listen)
		for i := range old {
			if old[i].key == k {
				d.listen.Store(without(old, i))
				d.listeners.Add(-1)
				return true
			}
		}
		return false
	}
	c := &d.chains[d.chainFor(k)]
	c.mu.Lock()
	defer c.mu.Unlock()
	old := load(&c.pcbs)
	for i := range old {
		if old[i].key == k {
			victim := old[i].pcb
			c.pcbs.Store(without(old, i))
			// Invalidate the cache: clear it if it currently holds the
			// victim, and bump the epoch so a reader that found the
			// victim in the old snapshot and stores it into the cache
			// after this point retracts its own store (see the epoch
			// re-check in Lookup).
			c.epoch.Add(1)
			c.cache.CompareAndSwap(victim, nil)
			d.conns.Add(-1)
			return true
		}
	}
	return false
}

// Lookup implements parallel.ConcurrentDemuxer. The fast path is entirely
// lock-free: probe the chain's one-entry cache, scan the immutable chain
// snapshot, and only on a complete miss consult the listener snapshot.
// Examination accounting matches core.SequentHash exactly.
//
//demux:hotpath
func (d *Demuxer) Lookup(k core.Key, _ core.Direction) core.Result {
	r := d.lookup(k)
	d.stats.Record(r)
	return r
}

// LookupRaw is Lookup without the statistics fold: same lock-free probe,
// same Result, nothing recorded in this table's stripes. Wrappers that
// layer their own accounting on top (overload.RCUGuarded probes two
// tables per packet during a migration) use it to count each *logical*
// lookup exactly once.
//
//demux:hotpath
func (d *Demuxer) LookupRaw(k core.Key, _ core.Direction) core.Result {
	return d.lookup(k)
}

// lookup is the shared lock-free probe behind Lookup and LookupRaw.
//
//demux:hotpath
func (d *Demuxer) lookup(k core.Key) core.Result {
	h := d.hashOf(k)
	c := &d.chains[hashfn.ChainIndex(h, len(d.chains))]
	var r core.Result
	if p := c.cache.Load(); p != nil {
		r.Examined++
		if p.Key == k {
			r.PCB = p
			r.CacheHit = true
			return r
		}
	}
	// Snapshot the removal epoch before loading the chain: if a removal
	// sneaks in during our scan, the epoch re-check below retracts the
	// cache store so a removed PCB cannot stay cached.
	epoch := c.epoch.Load()
	es := load(&c.pcbs)
	for i := range es {
		r.Examined++
		if es[i].hash == h && es[i].key == k {
			p := es[i].pcb
			r.PCB = p
			c.cache.Store(p)
			if c.epoch.Load() != epoch {
				c.cache.CompareAndSwap(p, nil)
			}
			return r
		}
	}
	// Exact-match miss: best wildcard listener, most specific first-wins,
	// same scoring as core's listen scan.
	best := -1
	ls := load(&d.listen)
	for i := range ls {
		r.Examined++
		if score := core.Match(ls[i].key, k); score > best {
			best = score
			r.PCB = ls[i].pcb
		}
	}
	r.Wildcard = r.PCB != nil
	return r
}

// NotifySend implements parallel.ConcurrentDemuxer; the Sequent algorithm
// ignores transmissions.
func (d *Demuxer) NotifySend(*core.PCB) {}

// Len implements parallel.ConcurrentDemuxer.
func (d *Demuxer) Len() int { return int(d.conns.Load() + d.listeners.Load()) }

// Snapshot implements parallel.ConcurrentDemuxer, folding the striped
// counters. Concurrent with updates it returns a consistent-enough sum:
// every counted lookup is in exactly one stripe.
func (d *Demuxer) Snapshot() core.Stats { return d.stats.Fold() }

// Walk implements parallel.ConcurrentDemuxer with snapshot semantics:
// it iterates the chain and listener slices as atomically loaded at the
// start of each chain, so fn sees a fully built view even while writers
// publish replacements. Order matches core.SequentHash.Walk: chains
// first, then listeners.
func (d *Demuxer) Walk(fn func(*core.PCB) bool) {
	for i := range d.chains {
		for _, e := range load(&d.chains[i].pcbs) {
			if !fn(e.pcb) {
				return
			}
		}
	}
	for _, e := range load(&d.listen) {
		if !fn(e.pcb) {
			return
		}
	}
}

// WalkChain is the read-only chain-walk hook mirroring
// core.SequentHash.WalkChain, over the chain's current snapshot.
func (d *Demuxer) WalkChain(i int, fn func(*core.PCB) bool) {
	if i < 0 || i >= len(d.chains) {
		return
	}
	for _, e := range load(&d.chains[i].pcbs) {
		if !fn(e.pcb) {
			return
		}
	}
}

// WalkListeners iterates the wildcard listener table's current snapshot,
// mirroring core.SequentHash.WalkListeners.
func (d *Demuxer) WalkListeners(fn func(*core.PCB) bool) {
	for _, e := range load(&d.listen) {
		if !fn(e.pcb) {
			return
		}
	}
}

// ChainLengths returns the current population of every chain (listeners
// excluded), each read from that chain's published snapshot — the skew
// signal the overload watchdog samples.
func (d *Demuxer) ChainLengths() []int64 {
	out := make([]int64, len(d.chains))
	for i := range d.chains {
		out[i] = int64(len(load(&d.chains[i].pcbs)))
	}
	return out
}
