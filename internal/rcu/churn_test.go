package rcu_test

import (
	"runtime"
	"sync"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/parallel"
	"tcpdemux/internal/rcu"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
)

// churnOp is one logged operation of the concurrent churn run, replayed
// later against the oracle.
type churnOp struct {
	kind byte // 'l' lookup, 'w' wildcard lookup, 'm' miss lookup, 'r' remove, 'i' insert, 's' notify-send
	key  core.Key
	pcb  *core.PCB // the object inserted, for 'i'
}

// TestConcurrentChurnMatchesOracle hammers the RCU demuxer with mixed
// Lookup/Insert/Remove/NotifySend goroutines, logging each goroutine's
// operations, then replays the logs through a Locked(SequentHash) oracle.
// Churned keys are private per goroutine, so the final PCB set is
// interleaving-independent and must match the oracle exactly, as must the
// deterministic statistics totals (lookups, misses, wildcard hits — cache
// hits and examination counts legitimately depend on interleaving, so
// those are only sanity-bounded).
func TestConcurrentChurnMatchesOracle(t *testing.T) {
	const (
		stable         = 300
		churnPerWorker = 40
		opsPerWorker   = 6000
	)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}

	d := rcu.New(19, nil)
	listener := core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))
	if err := d.Insert(listener); err != nil {
		t.Fatal(err)
	}
	stablePCBs := make([]*core.PCB, stable)
	for i := range stablePCBs {
		stablePCBs[i] = core.NewPCB(tpca.UserKey(i))
		if err := d.Insert(stablePCBs[i]); err != nil {
			t.Fatal(err)
		}
	}

	logs := make([][]churnOp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w)*104729 + 7)
			log := make([]churnOp, 0, opsPerWorker)
			// Private churn key range: disjoint across workers.
			churnBase := stable + 100 + w*churnPerWorker
			for i := 0; i < opsPerWorker; i++ {
				switch src.Intn(20) {
				case 0: // churn a private key
					k := tpca.UserKey(churnBase + src.Intn(churnPerWorker))
					if d.Remove(k) {
						log = append(log, churnOp{kind: 'r', key: k})
					} else {
						p := core.NewPCB(k)
						if err := d.Insert(p); err != nil {
							t.Errorf("insert %v: %v", k, err)
							return
						}
						log = append(log, churnOp{kind: 'i', key: k, pcb: p})
					}
				case 1: // wildcard fallback: unknown remote, listening port
					k := tpca.UserKey(10_000 + w)
					r := d.Lookup(k, core.DirData)
					if r.PCB != listener || !r.Wildcard {
						t.Errorf("wildcard lookup failed: %+v", r)
						return
					}
					log = append(log, churnOp{kind: 'w', key: k})
				case 2: // deterministic miss: a port nothing listens on
					k := tpca.UserKey(src.Intn(stable))
					k.LocalPort++
					if r := d.Lookup(k, core.DirData); r.PCB != nil {
						t.Errorf("miss lookup found %v", r.PCB.Key)
						return
					}
					log = append(log, churnOp{kind: 'm', key: k})
				case 3: // transmissions are ignored but must be race-free
					p := stablePCBs[src.Intn(stable)]
					d.NotifySend(p)
					log = append(log, churnOp{kind: 's', pcb: p})
				default: // stable lookup: always present
					k := tpca.UserKey(src.Intn(stable))
					r := d.Lookup(k, core.DirData)
					if r.PCB == nil {
						t.Errorf("stable PCB %v vanished", k)
						return
					}
					log = append(log, churnOp{kind: 'l', key: k})
				}
			}
			logs[w] = log
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Replay every goroutine's log, in goroutine order, against the
	// oracle. Within a goroutine the order is the real execution order;
	// across goroutines the operations commute (churn keys are private,
	// lookups don't mutate), so any serialization reproduces the final
	// state.
	oracle := parallel.NewLocked(core.NewSequentHash(19, nil))
	if err := oracle.Insert(listener); err != nil {
		t.Fatal(err)
	}
	for _, p := range stablePCBs {
		if err := oracle.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for w, log := range logs {
		for i, op := range log {
			switch op.kind {
			case 'l', 'w', 'm':
				oracle.Lookup(op.key, core.DirData)
			case 'r':
				if !oracle.Remove(op.key) {
					t.Fatalf("worker %d op %d: oracle remove of %v failed where rcu succeeded", w, i, op.key)
				}
			case 'i':
				if err := oracle.Insert(op.pcb); err != nil {
					t.Fatalf("worker %d op %d: oracle insert of %v: %v", w, i, op.key, err)
				}
			case 's':
				oracle.NotifySend(op.pcb)
			}
		}
	}

	// Final PCB sets must be identical, pointer for pointer.
	collect := func(d parallel.ConcurrentDemuxer) map[*core.PCB]bool {
		set := make(map[*core.PCB]bool)
		d.Walk(func(p *core.PCB) bool { set[p] = true; return true })
		return set
	}
	got, want := collect(d), collect(oracle)
	if len(got) != len(want) || d.Len() != oracle.Len() || len(got) != d.Len() {
		t.Fatalf("PCB set sizes diverged: rcu walk %d len %d, oracle walk %d len %d",
			len(got), d.Len(), len(want), oracle.Len())
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("oracle has %v, rcu lost it", p.Key)
		}
	}

	// Deterministic statistics totals must match; interleaving-dependent
	// ones (cache hits, examinations) are bounded, not equal.
	rs, os := d.Snapshot(), oracle.Snapshot()
	if rs.Lookups != os.Lookups {
		t.Fatalf("lookup totals diverged: rcu %d vs oracle %d", rs.Lookups, os.Lookups)
	}
	if rs.Misses != os.Misses {
		t.Fatalf("miss totals diverged: rcu %d vs oracle %d", rs.Misses, os.Misses)
	}
	if rs.WildcardHits != os.WildcardHits {
		t.Fatalf("wildcard totals diverged: rcu %d vs oracle %d", rs.WildcardHits, os.WildcardHits)
	}
	if rs.Hits > rs.Lookups || rs.Examined < rs.Lookups {
		t.Fatalf("implausible rcu totals: %+v", rs)
	}
}
