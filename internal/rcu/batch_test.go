package rcu_test

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/parallel"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
	"tcpdemux/internal/wire"
)

// batchStream builds a lookup stream that exercises every path: exact
// hits (with repeats for cache hits), listener-covered misses, and total
// misses.
func batchStream(n, length int, seed uint64) []core.Key {
	src := rng.New(seed)
	stream := make([]core.Key, length)
	for i := range stream {
		switch src.Intn(10) {
		case 0: // listener-covered: right port, unknown remote
			stream[i] = tpca.UserKey(n + 1 + src.Intn(50))
		case 1: // total miss: a local port nothing listens on
			k := tpca.UserKey(src.Intn(n))
			k.LocalPort++
			stream[i] = k
		case 2, 3, 4: // repeat a recent key: drives cache hits
			stream[i] = tpca.UserKey(src.Intn(1 + n/20))
		default:
			stream[i] = tpca.UserKey(src.Intn(n))
		}
	}
	return stream
}

// TestLookupBatchMatchesPerPacket is the batched-lookup conformance run
// the tentpole requires: for every locking discipline, LookupBatch must
// return a byte-identical Result sequence to per-packet Lookup over the
// same key stream — same PCB pointers, examination counts, cache-hit and
// wildcard flags — for every train length tried.
func TestLookupBatchMatchesPerPacket(t *testing.T) {
	const n = 400
	const streamLen = 4000
	for _, name := range parallel.Disciplines() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, batch := range []int{1, 3, 16, 64, 257} {
				perPacket, err := parallel.New(name, core.Config{Chains: 19})
				if err != nil {
					t.Fatal(err)
				}
				batched, err := parallel.New(name, core.Config{Chains: 19})
				if err != nil {
					t.Fatal(err)
				}
				// The same PCB objects go into both instances so Result
				// equality can compare pointers.
				listener := core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))
				pcbs := make([]*core.PCB, n)
				for i := range pcbs {
					pcbs[i] = core.NewPCB(tpca.UserKey(i))
				}
				for _, d := range []parallel.ConcurrentDemuxer{perPacket, batched} {
					if err := d.Insert(listener); err != nil {
						t.Fatal(err)
					}
					for _, p := range pcbs {
						if err := d.Insert(p); err != nil {
							t.Fatal(err)
						}
					}
				}
				stream := batchStream(n, streamLen, 17)
				want := make([]core.Result, len(stream))
				for i, k := range stream {
					want[i] = perPacket.Lookup(k, core.DirData)
				}
				var got []core.Result
				var out []core.Result
				for off := 0; off < len(stream); off += batch {
					end := off + batch
					if end > len(stream) {
						end = len(stream)
					}
					out = batched.LookupBatch(stream[off:end], core.DirData, out)
					if len(out) != end-off {
						t.Fatalf("batch %d: got %d results for %d keys", batch, len(out), end-off)
					}
					got = append(got, out...)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("batch=%d: result %d diverged: per-packet %+v vs batched %+v (key %v)",
							batch, i, want[i], got[i], stream[i])
					}
				}
				a, b := perPacket.Snapshot(), batched.Snapshot()
				if a != b {
					t.Fatalf("batch=%d: statistics diverged: %+v vs %+v", batch, a, b)
				}
			}
		})
	}
}

// TestLookupBatchEdgeCases covers the empty batch and output-slice reuse.
func TestLookupBatchEdgeCases(t *testing.T) {
	for _, name := range parallel.Disciplines() {
		d, err := parallel.New(name, core.Config{Chains: 19})
		if err != nil {
			t.Fatal(err)
		}
		p := core.NewPCB(tpca.UserKey(0))
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
		if out := d.LookupBatch(nil, core.DirData, nil); len(out) != 0 {
			t.Fatalf("%s: empty batch returned %d results", name, len(out))
		}
		// A too-small out slice must be replaced, a big one reused.
		big := make([]core.Result, 0, 128)
		keys := []core.Key{p.Key, p.Key, p.Key}
		out := d.LookupBatch(keys, core.DirData, big)
		if len(out) != len(keys) {
			t.Fatalf("%s: got %d results", name, len(out))
		}
		if &out[0] != &big[:1][0] {
			t.Errorf("%s: out slice with capacity was not reused", name)
		}
		for i, r := range out {
			if r.PCB != p {
				t.Fatalf("%s: result %d wrong PCB", name, i)
			}
		}
	}
}

// TestBatchWireTrain drives the batch path from real frames: a packet
// train is parsed tuple by tuple and demultiplexed in one LookupBatch,
// matching the per-frame path — the receive-side integration the wire
// bench measures.
func TestBatchWireTrain(t *testing.T) {
	const conns = 64
	d, err := parallel.New("rcu-sequent", core.Config{Chains: 19})
	if err != nil {
		t.Fatal(err)
	}
	single, err := parallel.New("rcu-sequent", core.Config{Chains: 19})
	if err != nil {
		t.Fatal(err)
	}
	pcbs := make([]*core.PCB, conns)
	frames := make([][]byte, conns)
	for i := range pcbs {
		k := tpca.UserKey(i)
		pcbs[i] = core.NewPCB(k)
		if err := d.Insert(pcbs[i]); err != nil {
			t.Fatal(err)
		}
		if err := single.Insert(pcbs[i]); err != nil {
			t.Fatal(err)
		}
		tu := k.Tuple()
		frame, err := wire.BuildSegment(
			wire.IPv4Header{TTL: 64, Src: tu.SrcAddr, Dst: tu.DstAddr},
			wire.TCPHeader{SrcPort: tu.SrcPort, DstPort: tu.DstPort, Flags: wire.FlagACK},
			nil,
		)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = frame
	}
	src := rng.New(5)
	keys := make([]core.Key, 0, 32)
	var order []int
	for len(keys) < 32 {
		i := src.Intn(conns)
		tu, err := wire.ExtractTuple(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, core.KeyFromTuple(tu))
		order = append(order, i)
	}
	out := d.LookupBatch(keys, core.DirAck, nil)
	for i, r := range out {
		want := single.Lookup(keys[i], core.DirAck)
		if r != want {
			t.Fatalf("frame %d diverged: %+v vs %+v", i, r, want)
		}
		if r.PCB != pcbs[order[i]] {
			t.Fatalf("frame %d resolved to the wrong PCB", i)
		}
	}
}
