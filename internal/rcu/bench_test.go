package rcu_test

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rcu"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/tpca"
)

// benchDemuxer builds a populated table: n exact connections plus one
// listener, the TPC/A shape the throughput benches use.
func benchDemuxer(b *testing.B, n int) *rcu.Demuxer {
	d := rcu.New(19, nil)
	if err := d.Insert(core.NewListenPCB(core.ListenKey(tpca.ServerAddr.Addr, tpca.ServerAddr.Port))); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := d.Insert(core.NewPCB(tpca.UserKey(i))); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// benchKeys is a uniform-random hit-only key stream over n connections.
func benchKeys(n, length int) []core.Key {
	src := rng.New(11)
	keys := make([]core.Key, length)
	for i := range keys {
		keys[i] = tpca.UserKey(src.Intn(n))
	}
	return keys
}

// BenchmarkLookup measures the lock-free per-packet fast path on a
// 1000-connection table (chains ~53 entries long at H=19).
func BenchmarkLookup(b *testing.B) {
	const n = 1000
	d := benchDemuxer(b, n)
	keys := benchKeys(n, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(keys[i&8191], core.DirData)
	}
}

// BenchmarkLookupBatch measures the batched path at several train
// lengths over the same table and key stream, for head-to-head ns/op
// with BenchmarkLookup.
func BenchmarkLookupBatch(b *testing.B) {
	const n = 1000
	for _, batch := range []int{16, 64, 256} {
		b.Run(bname(batch), func(b *testing.B) {
			d := benchDemuxer(b, n)
			keys := benchKeys(n, 8192)
			var out []core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				off := i & 8191
				end := off + batch
				if end > 8192 {
					end = 8192
				}
				out = d.LookupBatch(keys[off:end], core.DirData, out)
			}
		})
	}
}

func bname(batch int) string {
	switch batch {
	case 16:
		return "batch16"
	case 64:
		return "batch64"
	default:
		return "batch256"
	}
}
