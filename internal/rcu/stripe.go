package rcu

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"tcpdemux/internal/core"
)

// stripeSlot is one padded bundle of statistics counters. The layout keeps
// each slot on its own cache-line region (two 64-byte lines) so goroutines
// folding statistics into different slots never bounce a line between
// CPUs — the same false-sharing guard parallel.ShardedSequent applies to
// its per-shard counters, here decoupled from the chains entirely.
//
// The two counters every lookup must bump — lookups and examined PCBs —
// share one word (lookups in the top 24 bits, examined in the low 40) so
// the fast path pays a single atomic add; drain moves the word into the
// 64-bit spill counters long before either field can wrap. The remaining
// counters are bumped only on their (rarer) paths.
type stripeSlot struct {
	packed        atomic.Uint64 //demux:atomic
	spillLookups  atomic.Uint64 //demux:atomic
	spillExamined atomic.Uint64 //demux:atomic
	hits          atomic.Uint64 //demux:atomic
	misses        atomic.Uint64 //demux:atomic
	wildcardHits  atomic.Uint64 //demux:atomic
	maxExamined   atomic.Int64  //demux:atomic

	_ [72]byte
}

const (
	packShift = 40 // lookups above this bit, examined below
	packMask  = 1<<packShift - 1
	// drainAt triggers a drain once the packed lookup count reaches 2^22,
	// a factor 4 before the 24-bit field wraps and (at <= 2^18 mean
	// examinations per lookup — a population far beyond any workload
	// here) far before the examined field wraps.
	drainAt = uint64(1) << 62
)

// add folds one batch of (lookups, examined) with a single atomic add.
//
//demux:hotpath
func (sl *stripeSlot) add(lookups, examined uint64) {
	v := sl.packed.Add(lookups<<packShift + examined)
	if v >= drainAt {
		// Only the CAS winner transfers v; a racer's CAS fails harmlessly
		// and the next add re-triggers. Between the threshold and a
		// successful drain the field has 2^22 lookups of headroom.
		if sl.packed.CompareAndSwap(v, 0) {
			sl.spillLookups.Add(v >> packShift)
			sl.spillExamined.Add(v & packMask)
		}
	}
}

// stripes is the striped statistics accumulator: a power-of-two array of
// slots, one (ideally) per P. Totals are exact — every recorded lookup
// lands in exactly one slot — only the spreading is heuristic.
type stripes struct {
	slots []stripeSlot
	mask  uint32
}

// init sizes the stripe array to the next power of two covering
// 4×GOMAXPROCS, bounding the collision probability of the per-goroutine
// hash without making Snapshot fold an unbounded array.
func (s *stripes) init() {
	n := 1
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	s.slots = make([]stripeSlot, n)
	s.mask = uint32(n - 1)
}

// slot picks the stripe for the calling goroutine. Go offers no portable
// P or goroutine identifier, so this hashes the address of a stack-local
// marker: goroutines occupy distinct stacks, which spreads concurrent
// recorders across slots and is stable for a goroutine between stack
// moves. The uintptr is used only as hash input, never converted back to
// a pointer. Correctness never depends on the spreading — any goroutine
// may fold into any slot — only contention does.
//
//demux:hotpath
func (s *stripes) slot() *stripeSlot {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	h := uint32((p >> 6) ^ (p >> 16))
	return &s.slots[h&s.mask]
}

// record folds one lookup result into the calling goroutine's stripe with
// the same classification rules as core.Stats.record.
//
//demux:hotpath
func (s *stripes) record(r core.Result) {
	sl := s.slot()
	sl.add(1, uint64(r.Examined))
	switch {
	case r.PCB == nil:
		sl.misses.Add(1)
	case r.CacheHit:
		sl.hits.Add(1)
	}
	if r.PCB != nil && r.Wildcard {
		sl.wildcardHits.Add(1)
	}
	sl.bumpMax(int64(r.Examined))
}

// recordBatch folds a pre-accumulated batch of lookups in one shot — the
// batched lookup path counts locally and pays these atomic adds once per
// train instead of once per packet.
//
//demux:hotpath
func (s *stripes) recordBatch(st core.Stats) {
	if st.Lookups == 0 {
		return
	}
	sl := s.slot()
	sl.add(st.Lookups, st.Examined)
	if st.Misses != 0 {
		sl.misses.Add(st.Misses)
	}
	if st.Hits != 0 {
		sl.hits.Add(st.Hits)
	}
	if st.WildcardHits != 0 {
		sl.wildcardHits.Add(st.WildcardHits)
	}
	sl.bumpMax(int64(st.MaxExamined))
}

// bumpMax raises the slot's running maximum to at least v.
//
//demux:hotpath
func (sl *stripeSlot) bumpMax(v int64) {
	for {
		cur := sl.maxExamined.Load()
		if v <= cur || sl.maxExamined.CompareAndSwap(cur, v) {
			return
		}
	}
}

// fold sums every stripe into one core.Stats snapshot.
func (s *stripes) fold() core.Stats {
	var st core.Stats
	for i := range s.slots {
		sl := &s.slots[i]
		v := sl.packed.Load()
		st.Lookups += sl.spillLookups.Load() + v>>packShift
		st.Examined += sl.spillExamined.Load() + v&packMask
		st.Hits += sl.hits.Load()
		st.Misses += sl.misses.Load()
		st.WildcardHits += sl.wildcardHits.Load()
		if m := int(sl.maxExamined.Load()); m > st.MaxExamined {
			st.MaxExamined = m
		}
	}
	return st
}
