package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (the analyzers' policy matches on
	// it).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages from source with no toolchain
// dependencies beyond GOROOT: module-local packages are resolved under
// Root, everything else (the standard library) through go/importer's
// source importer. Loads are memoized, so a whole-repo run type-checks
// each package — and the stdlib behind it — once.
//
// Test files (*_test.go) are never loaded: the invariants demuxvet
// enforces protect the shipped simulation, while tests legitimately
// measure wall time and iterate maps.
type Loader struct {
	Fset *token.FileSet
	// Module is the module path mapped to Root; empty means GOPATH-style
	// resolution (any import path that names a directory under Root is
	// local), which the analyzer fixtures use.
	Module string
	Root   string
	// Tags are extra build tags considered satisfied when evaluating
	// //go:build constraints, mirroring `go build -tags`. A loader with
	// Tags ["race"] sees the same file set `make race` compiles, so the
	// analyzers can be pointed at race-only harness code too.
	Tags []string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at root for the given module path.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Module:  module,
		Root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor maps an import path to its directory under Root, if local.
func (l *Loader) dirFor(path string) (string, bool) {
	switch {
	case l.Module == "":
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	case path == l.Module:
		return l.Root, true
	case strings.HasPrefix(path, l.Module+"/"):
		rel := strings.TrimPrefix(path, l.Module+"/")
		return filepath.Join(l.Root, filepath.FromSlash(rel)), true
	}
	return "", false
}

// Import implements types.Importer, letting the type-checker resolve the
// imports of whatever package is being loaded.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// GoFiles lists the package's non-test Go source files in a directory,
// sorted for deterministic load order. tags are extra build tags treated
// as satisfied, as by `go build -tags`.
func GoFiles(dir string, tags ...string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		if !buildTagOK(full, tags) {
			continue
		}
		files = append(files, full)
	}
	sort.Strings(files)
	return files, nil
}

// buildTagOK reports whether the file's //go:build constraint (if any) is
// satisfied by the build configuration: host GOOS/GOARCH, the gc
// compiler, and the given extra tags. With no extra tags demuxvet
// analyzes each package as a plain `go build` would compile it, so
// alternate-implementation files selected by opt-in tags (flat's
// prefetch_off.go, say) don't collide with their default twins during
// type-checking; with Tags ["race"] the selection matches a `go build
// -race` run (which sets the race tag implicitly), so !race fallbacks
// drop out and their race-only twins load instead.
func buildTagOK(name string, tags []string) bool {
	data, err := os.ReadFile(name)
	if err != nil {
		return true // leave the error to the parser, which reports it better
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(func(tag string) bool {
					if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
						return true
					}
					for _, t := range tags {
						if tag == t {
							return true
						}
					}
					return false
				})
			}
			continue
		}
		break // reached the package clause: past the constraint preamble
	}
	return true
}

// Load parses and type-checks the package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %q is not under %s", path, l.Root)
	}
	names, err := GoFiles(dir, l.Tags...)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := Check(path, l.Fset, files, l)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Fset: l.Fset, Files: files, Types: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Check type-checks one package's files with the given importer,
// returning the package and a fully populated types.Info.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}
