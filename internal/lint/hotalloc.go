package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc returns the hotalloc analyzer: a function marked
// //demux:hotpath (the demuxer Lookup/LookupBatch paths) is meant to be
// allocation-free — the figure of merit counts memory touches, and a GC
// allocation in the lookup path would dwarf the chain scan it measures.
// Flagged constructs:
//
//   - calls into fmt (every verb allocates),
//   - make, new, and append (heap growth),
//   - string <-> []byte/[]rune conversions (copying allocations),
//   - composite literals stored into interface values (boxing escapes),
//   - the address of a composite literal (escapes to the heap),
//   - function literals (closure allocation).
//
// A deliberate, amortized allocation — growing a caller-owned result
// buffer once, pool-backed scratch — is waived with
// //demux:allowalloc <reason>.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flag allocating constructs in functions marked //demux:hotpath",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !funcIsHotpath(fn) {
					continue
				}
				checkHotFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

// report flags n unless an allowalloc waiver covers it.
func reportAlloc(pass *Pass, pos token.Pos, format string, args ...any) {
	if !pass.waived(pos, "allowalloc") {
		pass.Reportf(pos, format, args...)
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	results := fn.Type.Results
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			reportAlloc(pass, n.Pos(), "func literal allocates a closure on the hot path")
			return false
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				reportAlloc(pass, n.Pos(), "address of composite literal escapes to the heap on the hot path")
			}
		case *ast.CompositeLit:
			checkBoxing(pass, n, stack, results)
		}
		return true
	})
}

// checkHotCall flags allocating calls: fmt, the growing builtins, and
// copying string conversions.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := useOf(pass.Info, fun).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				reportAlloc(pass, call.Pos(), "append may grow its backing array on the hot path")
			case "make", "new":
				reportAlloc(pass, call.Pos(), "%s allocates on the hot path", b.Name())
			}
		}
	case *ast.SelectorExpr:
		if f, ok := useOf(pass.Info, fun.Sel).(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			reportAlloc(pass, call.Pos(), "fmt.%s allocates on the hot path", f.Name())
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.Info.TypeOf(call.Args[0])
		if copyingConversion(dst, src) {
			reportAlloc(pass, call.Pos(), "conversion between string and byte/rune slice copies on the hot path")
		}
	}
}

// copyingConversion reports whether a conversion from src to dst is a
// string <-> []byte/[]rune copy.
func copyingConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isCharSlice(src)) || (isCharSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isCharSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// checkBoxing flags a composite literal whose destination is an interface
// value: call argument, assignment, declaration, or return. Boxing copies
// the literal to the heap.
func checkBoxing(pass *Pass, lit *ast.CompositeLit, stack []ast.Node, results *ast.FieldList) {
	if types.IsInterface(pass.Info.TypeOf(lit)) || len(stack) < 2 {
		return
	}
	boxed := false
	switch p := stack[len(stack)-2].(type) {
	case *ast.CallExpr:
		boxed = interfaceParamFor(pass, p, lit)
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == lit && len(p.Lhs) == len(p.Rhs) {
				boxed = types.IsInterface(pass.Info.TypeOf(p.Lhs[i]))
			}
		}
	case *ast.ValueSpec:
		boxed = p.Type != nil && types.IsInterface(pass.Info.TypeOf(p.Type))
	case *ast.ReturnStmt:
		for i, res := range p.Results {
			if res == lit && results != nil && i < len(flattenFields(results)) {
				boxed = types.IsInterface(pass.Info.TypeOf(flattenFields(results)[i]))
			}
		}
	}
	if boxed {
		reportAlloc(pass, lit.Pos(), "composite literal is boxed into an interface on the hot path")
	}
}

// interfaceParamFor reports whether lit is passed to an interface-typed
// parameter (or converted straight to an interface type) in call.
func interfaceParamFor(pass *Pass, call *ast.CallExpr, lit *ast.CompositeLit) bool {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return types.IsInterface(tv.Type)
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	for i, arg := range call.Args {
		if arg != lit {
			continue
		}
		if i >= sig.Params().Len() {
			i = sig.Params().Len() - 1 // variadic tail
		}
		if i < 0 {
			return false
		}
		t := sig.Params().At(i).Type()
		if sig.Variadic() && i == sig.Params().Len()-1 && call.Ellipsis == token.NoPos {
			if s, ok := t.(*types.Slice); ok {
				t = s.Elem()
			}
		}
		return types.IsInterface(t)
	}
	return false
}

// flattenFields expands a result list into one type expression per value.
func flattenFields(fl *ast.FieldList) []ast.Expr {
	var out []ast.Expr
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, f.Type)
		}
	}
	return out
}
