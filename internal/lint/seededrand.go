package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand and math/rand/v2 package-level
// functions that build an explicitly seeded source or generator — the
// injected-RNG discipline internal/rng exists for. Everything else at
// package level draws from the process-global source, whose sequence is
// not reproducible across runs or releases.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// SeededRand returns the seededrand analyzer: every experiment must be
// replayable from its recorded seed, so the process-global math/rand
// source (rand.Intn, rand.Float64, rand.Shuffle, ...) is forbidden
// everywhere — draw from an injected internal/rng source instead.
// Constructing explicit sources (rand.New, rand.NewSource) and using
// their methods is fine. //demux:globalrand <reason> waives.
func SeededRand() *Analyzer {
	a := &Analyzer{
		Name: "seededrand",
		Doc:  "forbid the global math/rand source; require an injected, seeded RNG",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := useOf(pass.Info, id).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				if !pass.waived(id.Pos(), "globalrand") {
					pass.Reportf(id.Pos(), "%s.%s draws from the global math/rand source; inject a seeded source (internal/rng) so runs replay from their seed, or waive with //demux:globalrand <reason>", fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
		return nil
	}
	return a
}
