package lint

import (
	"path/filepath"
	"testing"
)

// TestGoFilesRaceTag checks the build-constraint evaluator against the
// race tag: by default the !race twin is selected, with Tags ["race"]
// the race twin is — matching `go build` versus `go build -race`.
func TestGoFilesRaceTag(t *testing.T) {
	dir := filepath.Join("testdata", "src", "rtag")
	cases := []struct {
		tags []string
		want []string
	}{
		{nil, []string{"norace.go", "rtag.go"}},
		{[]string{"race"}, []string{"race.go", "rtag.go"}},
	}
	for _, c := range cases {
		files, err := GoFiles(dir, c.tags...)
		if err != nil {
			t.Fatalf("GoFiles(%v): %v", c.tags, err)
		}
		var names []string
		for _, f := range files {
			names = append(names, filepath.Base(f))
		}
		if len(names) != len(c.want) {
			t.Fatalf("GoFiles(tags=%v) = %v, want %v", c.tags, names, c.want)
		}
		for i := range names {
			if names[i] != c.want[i] {
				t.Fatalf("GoFiles(tags=%v) = %v, want %v", c.tags, names, c.want)
			}
		}
	}
}

// TestLoaderRaceTag type-checks the rtag fixture under both
// configurations: race.go and norace.go declare the same constant, so a
// loader that picked both (or neither) would fail to check.
func TestLoaderRaceTag(t *testing.T) {
	for _, tags := range [][]string{nil, {"race"}} {
		loader := NewLoader(filepath.Join("testdata", "src"), "")
		loader.Tags = tags
		if _, err := loader.Load("rtag"); err != nil {
			t.Fatalf("loading rtag with tags %v: %v", tags, err)
		}
	}
}
