// Package lint is demuxvet: a family of static analyzers that
// mechanically enforce the repository's determinism, RCU, and hot-path
// invariants. The reproduction's figure of merit (PCBs examined per
// inbound packet) is trustworthy only because the simulation is
// deterministic — virtual time driven by Stack.Tick, seeded RNG via
// internal/rng, and lock-free reads in internal/rcu that are correct only
// if every chain/cache access goes through atomic publication. These
// invariants used to live in comments and reviewer memory; this package
// turns them into machine-checked rules.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers could be ported to the real driver
// verbatim; the module vendors no dependencies, so the framework is a
// small stdlib-only reimplementation and cmd/demuxvet provides both a
// standalone driver and a `go vet -vettool` unitchecker.
//
// Analyzers (see their files for details):
//
//	directive    — every //demux: comment parses and validates against the
//	               annotation grammar (no waiver: fix the directive)
//	virtualtime  — no wall clock in virtual-time packages (//demux:wallclock waives)
//	seededrand   — no global math/rand anywhere (//demux:globalrand waives)
//	mapiter      — no order-sensitive map iteration in result-feeding code
//	               (//demux:orderinvariant waives)
//	atomicpub    — fields marked //demux:atomic are touched only via atomic
//	               operations, and a pointer published through one is never
//	               written after the Store (//demux:atomicguarded waives)
//	singlewriter — fields marked //demux:singlewriter(owner=role) are only
//	               accessed from //demux:owner(role) functions
//	               (//demux:crossaccess waives)
//	spscring     — types marked //demux:spsc(producer=..., consumer=...)
//	               keep each side off the other side's //demux:owned
//	               fields, and cached peer indices are refreshed only via
//	               the peer's atomic Load (//demux:spscok waives)
//	hotalloc     — functions marked //demux:hotpath stay allocation-free
//	               (//demux:allowalloc waives)
//	stalewaiver  — waivers that suppressed no finding in the run are
//	               reported, so the waiver inventory cannot rot
//
// Every waiver directive requires a reason after the directive name; a
// reasonless waiver still suppresses the underlying finding but draws its
// own diagnostic, so each exception documents why it is safe. A waiver
// that suppresses nothing at all is itself a finding (stalewaiver), so
// deleting the code under a waiver forces deleting the waiver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it. It mirrors
// analysis.Analyzer from golang.org/x/tools.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through the pass.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer's Run function, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed syntax trees (test files excluded).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	dirs  *directives
	diags *[]Diagnostic
}

// A Diagnostic is one finding, resolved to a concrete position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// waived reports whether a //demux:<name> directive covers pos (same line
// or the line immediately above). A reasonless waiver still suppresses
// the underlying finding but draws its own diagnostic. Consulting a
// waiver marks it used, which is what keeps it off the stalewaiver
// report.
func (p *Pass) waived(pos token.Pos, name string) bool {
	d := p.dirs.at(p.Fset.Position(pos), name)
	if d == nil {
		return false
	}
	d.used = true
	if d.reason == "" {
		p.Reportf(pos, "//demux:%s waiver needs a reason", name)
	}
	return true
}

// Run applies every analyzer to the package and returns the diagnostics
// sorted by position then analyzer name, so output order never depends on
// analyzer-internal iteration order.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			dirs:     dirs,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// A PackageFilter restricts an analyzer to packages whose import path it
// accepts; a nil filter accepts every package the driver feeds in.
type PackageFilter func(pkgPath string) bool

// PathPrefixFilter accepts a package whose import path equals one of the
// prefixes or lives below one of them. The " [pkg.test]" suffix the go
// command appends to test variants is ignored.
func PathPrefixFilter(prefixes ...string) PackageFilter {
	return func(pkgPath string) bool {
		if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
			pkgPath = pkgPath[:i]
		}
		for _, p := range prefixes {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
}

// inspectStack walks root like ast.Inspect but hands fn the path of
// enclosing nodes (outermost first, n last). Returning false prunes the
// subtree under n.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, append(stack, n)) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// useOf resolves an identifier to the object it uses or defines.
func useOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isPkgFunc reports whether obj is the package-level function pkg.name
// for one of the given package paths.
func isPkgFunc(obj types.Object, names map[string]bool, pkgPaths ...string) bool {
	fn, ok := obj.(*types.Func)
	if ok && fn.Pkg() != nil && names[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
		for _, p := range pkgPaths {
			if fn.Pkg().Path() == p {
				return true
			}
		}
	}
	return false
}
