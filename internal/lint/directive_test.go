package lint

import (
	"go/ast"
	"reflect"
	"strings"
	"testing"
)

// TestParseDirective is the table-driven grammar test: every accepted
// shape decodes to the right fields, and every malformed shape is
// recorded with a parse error — never silently dropped, never silently
// accepted.
func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		skip   bool // not a directive at all
		name   string
		args   []string
		kv     map[string]string
		reason string
		errSub string // non-empty: expect a parse error containing this
	}{
		{text: "// an ordinary comment", skip: true},
		{text: "//go:build race", skip: true},
		{text: "//demux:hotpath", name: "hotpath"},
		{text: "//demux:wallclock throughput timing is the one legit consumer", name: "wallclock", reason: "throughput timing is the one legit consumer"},
		{text: "//demux:singlewriter(owner=localtier)", name: "singlewriter", kv: map[string]string{"owner": "localtier"}},
		{text: "//demux:spsc(producer=Push+TryPush, consumer=Pop)", name: "spsc", kv: map[string]string{"producer": "Push+TryPush", "consumer": "Pop"}},
		{text: "//demux:owned(producer, peer=head)", name: "owned", args: []string{"producer"}, kv: map[string]string{"peer": "head"}},
		{text: "//demux:owner(flush, drain) both tiers", name: "owner", args: []string{"flush", "drain"}, reason: "both tiers"},

		{text: "//demux:", name: "", errSub: "missing directive name"},
		{text: "//demux:Atomic", name: "", errSub: "missing directive name"},
		{text: "//demux:atomic(unclosed", name: "atomic", errSub: "unclosed"},
		{text: "//demux:spsc(producer=)", name: "spsc", errSub: "bad value"},
		{text: "//demux:owned(, peer=head)", name: "owned", errSub: "empty argument"},
		{text: "//demux:singlewriter(owner=1x)", name: "singlewriter", errSub: "bad value"},
		{text: "//demux:singlewriter(owner=a, owner=b)", name: "singlewriter", errSub: "duplicate key"},
		{text: "//demux:owner(9bad)", name: "owner", errSub: "bad positional argument"},
		{text: "//demux:spsc(pro ducer=x)", name: "spsc", errSub: "bad argument key"},
		{text: "//demux:atomic?junk", name: "atomic", errSub: "unexpected"},
	}
	for _, c := range cases {
		d, ok := parseDirective(&ast.Comment{Text: c.text})
		if c.skip {
			if ok {
				t.Errorf("parseDirective(%q) = %+v, want not-a-directive", c.text, d)
			}
			continue
		}
		if !ok {
			t.Errorf("parseDirective(%q): not recognized as a directive", c.text)
			continue
		}
		if c.errSub != "" {
			if d.err == "" || !strings.Contains(d.err, c.errSub) {
				t.Errorf("parseDirective(%q).err = %q, want containing %q", c.text, d.err, c.errSub)
			}
			continue
		}
		if d.err != "" {
			t.Errorf("parseDirective(%q): unexpected error %q", c.text, d.err)
			continue
		}
		if d.name != c.name || d.reason != c.reason ||
			!reflect.DeepEqual(d.args, c.args) ||
			!(len(d.kv) == 0 && len(c.kv) == 0 || reflect.DeepEqual(d.kv, c.kv)) {
			t.Errorf("parseDirective(%q) = {name:%q args:%v kv:%v reason:%q}, want {name:%q args:%v kv:%v reason:%q}",
				c.text, d.name, d.args, d.kv, d.reason, c.name, c.args, c.kv, c.reason)
		}
	}
}

// TestDirectiveFixture runs the grammar analyzer over dirbad: every
// malformed or misused directive draws a diagnostic at its comment.
func TestDirectiveFixture(t *testing.T) {
	p := loadFixture(t, "dirbad")
	diags, err := Run(p, []*Analyzer{Directive()})
	if err != nil {
		t.Fatal(err)
	}
	const f = "dirbad.go"
	line := func(needle string) int { return fixtureLine(t, "dirbad", f, needle) }
	assertDiags(t, diags, []diagWant{
		{line("//demux:atomic(foo)"), "directive", "takes no arguments"},
		{line("//demux:atomik"), "directive", "unknown directive //demux:atomik"},
		{line("extra=y"), "directive", "exactly one role"},
		{line("//demux:owned(middle)"), "directive", "(producer|consumer, peer=field)"},
		{line("//demux:atomic(unclosed"), "directive", "unclosed"},
		{line("owner=1x"), "directive", "bad value"},
		{line("g uint64 //demux:"), "directive", "missing directive name"},
		{line("h uint64 //demux:atomic"), "directive", "duplicate //demux:atomic on one field"},
		{line("//demux:spsc(producer=Push)"), "directive", "(producer=Methods, consumer=Methods)"},
		{line("//demux:owner"), "directive", "one or more positional roles"},
		{line("//demux:hotpath(fast)"), "directive", "takes no arguments"},
	})
}
