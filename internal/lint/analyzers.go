package lint

// VirtualTimePackages are the packages driven by the simulation's virtual
// clock: results they produce must be a pure function of configuration
// and seed, so the wall clock is off limits. internal/parallel and
// internal/shard are included because their lookup streams, churn
// schedules, and steering epochs must replay deterministically; each
// package's one legitimate wall-clock consumer — the throughput
// measurement itself — carries a //demux:wallclock waiver.
var VirtualTimePackages = []string{
	"tcpdemux/internal/sim",
	"tcpdemux/internal/engine",
	"tcpdemux/internal/timer",
	"tcpdemux/internal/tpca",
	"tcpdemux/internal/cachesim",
	"tcpdemux/internal/parallel",
	"tcpdemux/internal/shard",
}

// Default returns the demuxvet suite with the repository's policy, in the
// order diagnostics should be attributed. The order also encodes the two
// real constraints: directive runs first so grammar errors surface before
// the contract analyzers silently skip the malformed annotation, and
// stalewaiver runs last because "stale" is defined as "no earlier
// analyzer consumed this waiver". Everything else applies to every
// package the driver feeds in; the marker-driven analyzers are no-ops
// where nothing is annotated.
func Default() []*Analyzer {
	return []*Analyzer{
		Directive(),
		VirtualTime(PathPrefixFilter(VirtualTimePackages...)),
		SeededRand(),
		MapIter(nil),
		AtomicPub(),
		SingleWriter(),
		SPSCRing(),
		HotAlloc(),
		StaleWaiver(),
	}
}
