package lint

// VirtualTimePackages are the packages driven by the simulation's virtual
// clock: results they produce must be a pure function of configuration
// and seed, so the wall clock is off limits. internal/parallel is
// included because its lookup streams and churn schedules must replay
// deterministically; its one legitimate wall-clock consumer — the
// throughput measurement itself — carries a //demux:wallclock waiver.
var VirtualTimePackages = []string{
	"tcpdemux/internal/sim",
	"tcpdemux/internal/engine",
	"tcpdemux/internal/timer",
	"tcpdemux/internal/tpca",
	"tcpdemux/internal/cachesim",
	"tcpdemux/internal/parallel",
}

// Default returns the demuxvet suite with the repository's policy, in the
// order diagnostics should be attributed. mapiter, seededrand,
// atomicfield, and hotalloc apply to every package the driver feeds in
// (examples/ is exempt by path in the driver; the marker-driven analyzers
// are no-ops where nothing is marked).
func Default() []*Analyzer {
	return []*Analyzer{
		VirtualTime(PathPrefixFilter(VirtualTimePackages...)),
		SeededRand(),
		MapIter(nil),
		AtomicField(),
		HotAlloc(),
	}
}
