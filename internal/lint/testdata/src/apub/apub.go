// Package apub is the atomicpub ordering fixture: a pointer published
// through a //demux:atomic field (Store/Swap/CompareAndSwap) must be
// complete before the publish — writes through it afterward hand
// lock-free readers a half-built value.
package apub

import "sync/atomic"

type node struct {
	key  uint32
	next *node
}

type chain struct {
	head atomic.Pointer[node] //demux:atomic
}

// goodPublish builds the replacement node completely, then publishes:
// the COW shape internal/rcu uses.
func goodPublish(c *chain, key uint32) {
	n := &node{key: key}
	n.next = c.head.Load()
	c.head.Store(n)
}

func badStore(c *chain, key uint32) {
	n := &node{}
	c.head.Store(n)
	n.key = key  // want `published through //demux:atomic field head`
	n.next = nil // want `published through //demux:atomic field head`
}

func badSwap(c *chain, key uint32) *node {
	n := new(node)
	old := c.head.Swap(n)
	n.key = key // want `published through //demux:atomic field head`
	return old
}

func badCAS(c *chain, key uint32) {
	n := new(node)
	if c.head.CompareAndSwap(nil, n) {
		n.key = key // want `published through //demux:atomic field head`
	}
}

// reassignOK rebinds the variable after publishing; the published node
// itself is never written, and the new binding is a fresh value.
func reassignOK(c *chain, key uint32) *node {
	n := &node{key: key}
	c.head.Store(n)
	n = &node{key: key + 1}
	return n
}

type buf struct{ n int }

type holder struct {
	cur atomic.Pointer[buf] //demux:atomic
}

// badAddr publishes the address of a local and keeps writing the local:
// the same half-built-value hazard without an explicit pointer variable.
func badAddr(h *holder, v int) {
	var b buf
	h.cur.Store(&b)
	b.n = v // want `published through //demux:atomic field cur`
}

// waivedLate keeps a writer-private field current after the publish; the
// waiver documents why readers never look at it.
func waivedLate(c *chain, key uint32) {
	n := &node{key: key}
	c.head.Store(n)
	//demux:atomicguarded fixture: readers never follow next until the epoch flips
	n.next = nil
}
