// Package tmetric is the combined-analyzer fixture for telemetry-style
// metric code: striped atomic slots (atomicfield) observed by
// zero-alloc hot paths (hotalloc), checked by both analyzers in one
// pass the way demuxvet runs over internal/telemetry.
package tmetric

import "sync/atomic"

// slot is one stripe: a packed count<<40|sum word, padded to its own
// cache line.
type slot struct {
	packed atomic.Uint64 //demux:atomic
	_      [7]uint64
}

type hist struct {
	slots []slot
	mask  uint32
	name  string
}

// observe is the intended hot-path shape: stripe pick, one atomic add,
// no allocation, marked field touched only through atomic methods.
//
//demux:hotpath
func (h *hist) observe(v uint64) {
	sl := &h.slots[v&uint64(h.mask)]
	sl.packed.Add(1<<40 + v)
}

// observeSnapshotting allocates a result slice on the hot path — the
// snapshot belongs off the hot path, against the spill counters.
//
//demux:hotpath
func (h *hist) observeSnapshotting(v uint64) []uint64 {
	h.slots[0].packed.Add(v)
	out := make([]uint64, 1) // want `make allocates`
	out[0] = v
	return out
}

// rawRead bypasses the atomic API on a marked field.
func rawRead(sl *slot) uint64 {
	var w atomic.Uint64
	w = sl.packed // want `marked //demux:atomic`
	_ = w
	return 0
}

// snapshotLocked reads under the registry lock, waived with a reason.
func snapshotLocked(sl *slot) atomic.Uint64 {
	//demux:atomicguarded fixture: registry mutex held, no concurrent writers
	return sl.packed
}

// cold is unmarked: allocation is fine off the hot path.
func cold(h *hist) []slot {
	return append([]slot{}, h.slots...)
}
