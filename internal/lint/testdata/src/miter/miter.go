// Package miter is the mapiter analyzer fixture: ranging over a map in a
// result-feeding package is flagged unless the loop is provably
// order-insensitive or carries a waiver.
package miter

import "sort"

func bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

func badKeysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want `map iteration order is nondeterministic`
		ks = append(ks, k)
	}
	return ks
}

func waived(m map[string]int) int {
	total := 0
	//demux:orderinvariant fixture: summation is commutative
	for _, v := range m {
		total += v
	}
	return total
}

func reasonless(m map[string]int) int {
	total := 0
	//demux:orderinvariant
	for _, v := range m { // want `waiver needs a reason`
		total += v
	}
	return total
}

// collectThenSort is the one idiom accepted without a waiver: the body
// only gathers keys and the function sorts them before use.
func collectThenSort(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func collectThenSortSlice(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// keyless iteration binds nothing, so every iteration is identical.
func keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// slices and channels are not maps; never flagged.
func overSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
