//go:build !race

package rtag

const raceEnabled = false
