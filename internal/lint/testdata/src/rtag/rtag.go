// Package rtag is the build-tag fixture for the loader: race.go and
// norace.go declare the same constant under complementary constraints,
// so the package only type-checks if the loader picks exactly one of
// them — the !race twin by default, the race twin under Tags ["race"] —
// matching what `go build` and `go build -race` would compile.
package rtag

// Mode reports which build the loader selected.
func Mode() string {
	if raceEnabled {
		return "race"
	}
	return "norace"
}
