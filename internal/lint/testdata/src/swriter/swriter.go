// Package swriter is the singlewriter fixture: fields marked
// //demux:singlewriter(owner=role) may only be touched from functions
// marked //demux:owner(role), and the containing struct may not be
// copied by value outside an owner.
package swriter

// local mimics telemetry's LocalDemux: observation buffers private to
// one goroutine, plus an unrestricted identity field.
type local struct {
	counts [4]uint64 //demux:singlewriter(owner=localtier)
	sums   [4]uint64 //demux:singlewriter(owner=localtier)
	id     int
}

// newLocal constructs; composite literals are construction, not access.
func newLocal(id int) *local {
	return &local{id: id}
}

// observe is the owning tier's write path.
//
//demux:owner(localtier)
func observe(l *local, i int, v uint64) {
	l.counts[i&3]++
	l.sums[i&3] += v
}

// flush drains from the same role.
//
//demux:owner(localtier)
func flush(l *local) (c, s uint64) {
	for i := range l.counts {
		c += l.counts[i]
		s += l.sums[i]
		l.counts[i], l.sums[i] = 0, 0
	}
	return c, s
}

// snapshot is an owner, so copying its own state is legal.
//
//demux:owner(localtier)
func snapshot(l *local) local {
	return *l
}

func badMutate(l *local) {
	l.counts[0]++ // want `single-writer state owned by role "localtier"`
}

func badRead(l *local) uint64 {
	return l.sums[1] // want `single-writer state owned by role "localtier"`
}

func badEscape(l *local) *uint64 {
	return &l.counts[2] // want `single-writer state owned by role "localtier"`
}

func sink(v local) int { return v.id }

func badCopy(l *local) int {
	cp := *l // want `copying a local value`
	_ = cp
	return sink(*l) // want `copying a local value`
}

func waivedRead(l *local) uint64 {
	//demux:crossaccess fixture: harness reads after the owner goroutine has joined
	return l.sums[0]
}

func reasonlessWaiver(l *local) uint64 {
	//demux:crossaccess
	return l.counts[0] // want `waiver needs a reason`
}

// steered carries the marker at type level: every field is owned by the
// deliver role.
//
//demux:singlewriter(owner=deliver)
type steered struct {
	hits  uint64
	drops uint64
}

//demux:owner(deliver)
func bump(s *steered) {
	s.hits++
	s.drops += 0
}

func badPeek(s *steered) uint64 {
	return s.drops // want `single-writer state owned by role "deliver"`
}

// orphan's role names no function in the package: the contract itself is
// broken, reported at the field.
type orphan struct {
	//demux:singlewriter(owner=nobody)
	x uint64 // want `no function in this package is marked`
}

//demux:owner(nobody2)
func claimOrphan() {}
