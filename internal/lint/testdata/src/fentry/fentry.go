// Package fentry is the combined-analyzer fixture for flat-table code:
// packed probe-group entries scanned by zero-alloc hot paths (hotalloc)
// next to striped atomic statistics (atomicfield) — the idiom demuxvet
// applies to internal/flat, where the probe loop must never allocate and
// the only shared-mutable words are the stripe counters.
package fentry

import "sync/atomic"

// entry is the packed 24-byte cell: key bytes, hash fingerprint, slab
// reference. Plain fields — entries are guarded by the table lock, not
// atomics.
type entry struct {
	key  [12]byte
	hash uint32
	slot uint32
	gen  uint32
}

// stripe is one padded statistics slot, updated atomically by readers.
type stripe struct {
	packed atomic.Uint64 //demux:atomic
	_      [7]uint64
}

type table struct {
	entries []entry
	mask    uint32
	stats   []stripe
	scratch []uint32
}

// probe is the intended hot-path shape: fingerprint scan over one packed
// window, one atomic fold, no allocation.
//
//demux:hotpath
func (t *table) probe(key [12]byte, h uint32) int {
	home := int(h & t.mask)
	w := t.entries[home : home+8]
	for i := range w {
		if w[i].slot != 0 && w[i].hash == h && w[i].key == key {
			t.stats[0].packed.Add(1<<40 + uint64(i))
			return home + i
		}
	}
	return -1
}

// probeCollecting allocates the match list on the hot path — collection
// belongs in caller-owned scratch.
//
//demux:hotpath
func (t *table) probeCollecting(h uint32) []int {
	hits := make([]int, 0, 8) // want `make allocates`
	home := int(h & t.mask)
	for i := home; i < home+8; i++ {
		if t.entries[i].hash == h {
			hits = append(hits, i) // want `append may grow`
		}
	}
	return hits
}

// sizeScratch grows the pooled hash buffer, waived: the growth is
// amortized across every batch that reuses the scratch.
//
//demux:hotpath
func (t *table) sizeScratch(n int) []uint32 {
	if cap(t.scratch) < n {
		t.scratch = make([]uint32, n) //demux:allowalloc fixture: pooled scratch grows once per size class, then reused
	}
	return t.scratch[:n]
}

// rawStripeRead bypasses the atomic API on a marked counter.
func rawStripeRead(s *stripe) uint64 {
	var w atomic.Uint64
	w = s.packed // want `marked //demux:atomic`
	_ = w
	return 0
}

// drainQuiesced reads a stripe non-atomically under the writer lock,
// waived with a reason.
func drainQuiesced(s *stripe) atomic.Uint64 {
	//demux:atomicguarded fixture: write lock held, readers drained
	return s.packed
}

// rebuild is unmarked: table growth allocates freely off the hot path.
func rebuild(t *table, size int) {
	t.entries = make([]entry, size+7)
	t.mask = uint32(size - 1)
}
