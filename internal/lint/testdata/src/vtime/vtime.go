// Package vtime is the virtualtime analyzer fixture: it stands in for a
// virtual-clock package, so every wall-clock read must be flagged unless
// waived.
package vtime

import "time"

func bad() time.Time {
	time.Sleep(1)         // want `time\.Sleep reads the wall clock`
	_ = time.After(1)     // want `time\.After reads the wall clock`
	_ = time.Since(now()) // want `time\.Since reads the wall clock`
	f := time.Now         // want `time\.Now reads the wall clock`
	_ = time.NewTicker(1) // want `time\.NewTicker reads the wall clock`
	return f()
}

func now() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func waivedAbove() time.Time {
	//demux:wallclock fixture: measuring real elapsed time
	return time.Now()
}

func waivedTrailing() {
	time.Sleep(1) //demux:wallclock fixture: real sleep wanted here
}

func reasonless() {
	//demux:wallclock
	time.Sleep(1) // want `waiver needs a reason`
}

// durationMath shows what stays legal: the time types and arithmetic on
// them never read the clock.
func durationMath(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}
