// Package sring is the spscring fixture: a generic SPSC ring whose
// cached peer indices may only be touched by the annotated side, and
// only refreshed by reloading the peer's atomic index. The ring is
// generic on purpose — the analyzer must match fields of instantiated
// types (ring[int]) back to the annotated declaration.
package sring

import "sync/atomic"

//demux:spsc(producer=Push+Reserve, consumer=Pop+Drain)
type ring[T any] struct {
	buf  []T
	mask uint64

	head       atomic.Uint64
	cachedTail uint64 //demux:owned(consumer, peer=tail)

	tail       atomic.Uint64
	cachedHead uint64 //demux:owned(producer, peer=head)
}

func newRing[T any](n int) *ring[T] {
	return &ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Push is the producer fast path, with the documented cachedHead reload.
func (r *ring[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop is the consumer fast path, with the documented cachedTail reload.
func (r *ring[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.head.Store(h + 1)
	return v, true
}

// Drain is consumer-side and may read the consumer's cache.
func (r *ring[T]) Drain() int {
	n := 0
	for r.cachedTail != r.head.Load() {
		if _, ok := r.Pop(); !ok {
			break
		}
		n++
	}
	return n
}

// Reserve is producer-side but invents a consumer position instead of
// reloading it.
func (r *ring[T]) Reserve(n uint64) {
	r.cachedHead += n // want `may only be refreshed by reloading its peer`
}

// Len is listed on neither side, so the caches are off limits to it.
func (r *ring[T]) Len() uint64 {
	return r.tail.Load() - r.cachedTail // want `consumer-owned SPSC state`
}

// reset is not a method at all.
func reset[T any](r *ring[T]) {
	r.cachedHead = 0 // want `producer-owned SPSC state`
}

// peekInstantiated proves side isolation survives instantiation: the
// field of ring[int] is the same annotated declaration.
func peekInstantiated(r *ring[int]) uint64 {
	return r.cachedHead // want `producer-owned SPSC state`
}

// snapshotQuiesced reads both caches after the goroutines have joined;
// each access carries its waiver.
func snapshotQuiesced(r *ring[int]) (uint64, uint64) {
	//demux:spscok fixture: both sides have joined; the ring is quiesced
	h := r.cachedHead
	//demux:spscok fixture: both sides have joined; the ring is quiesced
	t := r.cachedTail
	return h, t
}

func reasonlessWaiver(r *ring[int]) uint64 {
	//demux:spscok
	return r.cachedTail // want `waiver needs a reason`
}
