// Package srand is the seededrand analyzer fixture: package-level
// math/rand draws come from the process-global source and are forbidden;
// explicitly constructed sources are fine.
package srand

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad() int {
	rand.Seed(1)            // want `global math/rand source`
	_ = rand.Float64()      // want `global math/rand source`
	_ = rand.Perm(3)        // want `global math/rand source`
	_ = v2.IntN(4)          // want `global math/rand source`
	shuffle := rand.Shuffle // want `global math/rand source`
	_ = shuffle
	return rand.Intn(4) // want `global math/rand source`
}

func seeded() int {
	r := rand.New(rand.NewSource(1))
	z := rand.NewZipf(r, 1.1, 1, 100)
	return r.Intn(4) + int(z.Uint64())
}

func seededV2() uint64 {
	r := v2.New(v2.NewPCG(1, 2))
	return r.Uint64()
}

func waived() float64 {
	return rand.Float64() //demux:globalrand fixture: demonstrating the waiver
}
