// Package dirbad holds malformed and misused //demux: directives. Each
// must draw a diagnostic from the directive analyzer at the comment —
// never a silent no-op, because the contract analyzers treat malformed
// directives as absent. The expectations live in directive_test.go
// because the diagnostics land on the directive comments themselves.
package dirbad

type s struct {
	a uint64 //demux:atomic(foo)
	b uint64 //demux:atomik
	c uint64 //demux:singlewriter(owner=x, extra=y)
	d uint64 //demux:owned(middle)
	e uint64 //demux:atomic(unclosed
	f uint64 //demux:singlewriter(owner=1x)
	g uint64 //demux:

	// h is doubly marked; only the doc-comment copy is consulted.
	//demux:atomic
	h uint64 //demux:atomic

	ok uint64 //demux:atomic
}

//demux:spsc(producer=Push)
type t struct {
	v uint64
}

//demux:owner
func orphanRole() {}

//demux:hotpath(fast)
func arged() {}
