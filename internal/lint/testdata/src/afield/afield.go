// Package afield is the atomicfield analyzer fixture: fields marked
// //demux:atomic may only be touched through atomic operations.
package afield

import "sync/atomic"

type counter struct {
	// n counts lock-free hits.
	//demux:atomic
	n uint64

	p atomic.Pointer[int] //demux:atomic

	// plain is unmarked; anything goes.
	plain int
}

func bad(c *counter) uint64 {
	c.n = 1 // want `marked //demux:atomic`
	c.n++   // want `marked //demux:atomic`
	var cp atomic.Pointer[int]
	cp = c.p // want `marked //demux:atomic`
	_ = cp
	return c.n // want `marked //demux:atomic`
}

func good(c *counter) uint64 {
	atomic.AddUint64(&c.n, 1)
	c.p.Store(new(int))
	if v := c.p.Load(); v != nil {
		return uint64(*v) + atomic.LoadUint64(&c.n)
	}
	c.plain = 3
	_ = c.plain
	return atomic.LoadUint64(&c.n)
}

func guarded(c *counter) uint64 {
	//demux:atomicguarded fixture: caller holds the table's writer lock
	return c.n
}

func reasonless(c *counter) uint64 {
	//demux:atomicguarded
	return c.n // want `waiver needs a reason`
}
