// Package halloc is the hotalloc analyzer fixture: functions marked
// //demux:hotpath must not allocate.
package halloc

import "fmt"

type item struct{ n int }

func sink(v any) { _ = v }

//demux:hotpath
func bad(xs []int, s string) string {
	fmt.Println(len(xs))           // want `fmt\.Println allocates`
	b := []byte(s)                 // want `conversion between string and byte/rune slice`
	xs = append(xs, 1)             // want `append may grow`
	m := make([]int, 4)            // want `make allocates`
	p := new(item)                 // want `new allocates`
	q := &item{n: 1}               // want `address of composite literal escapes`
	var i interface{} = item{n: 2} // want `boxed into an interface`
	sink(item{n: 3})               // want `boxed into an interface`
	_, _, _, _ = m, p, q, i
	return string(b) // want `conversion between string and byte/rune slice`
}

//demux:hotpath
func retBox() any {
	return item{n: 4} // want `boxed into an interface`
}

//demux:hotpath
func closure(f func()) func() {
	return func() { f() } // want `func literal allocates a closure`
}

//demux:hotpath
func waived(out []int) []int {
	if cap(out) < 8 {
		out = make([]int, 8) //demux:allowalloc fixture: amortized caller-owned buffer growth
	}
	return out
}

//demux:hotpath
func clean(c *item, xs []int) int {
	total := c.n
	for _, x := range xs {
		total += x
	}
	v := item{n: total} // composite literal to a concrete local: no boxing
	return v.n
}

// cold is unmarked: allocations are fine off the hot path.
func cold(xs []int) []int {
	fmt.Println(len(xs))
	return append(xs, 2)
}
