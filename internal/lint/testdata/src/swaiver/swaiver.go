// Package swaiver is the stalewaiver fixture: one waiver that earns its
// keep by suppressing a real finding, and one orphaned by a rewrite that
// removed the code it covered. The expectations live in
// stalewaiver_test.go because stalewaiver reports at the waiver comment
// itself.
package swaiver

import "math/rand"

// usedWaiver really does use the global RNG on the next line, so
// seededrand consults (and thereby uses) the waiver.
func usedWaiver() int {
	//demux:globalrand fixture: harness-only jitter, determinism not required here
	return rand.Int()
}

// orphanWaiver once covered a rand.Int call; the call was deleted and
// the waiver survived the rewrite.
func orphanWaiver() int {
	//demux:globalrand fixture: stale — the call below was deleted
	return 4
}
