// Package sringbad holds incoherent SPSC annotations: a method list
// naming a method that does not exist, an owned field whose peer is not
// a sibling field, and an owned field in a type that is not marked
// //demux:spsc. The spscring analyzer reports each at its directive;
// the expectations live in spscring_test.go because the diagnostics
// land on the directive comments themselves.
package sringbad

import "sync/atomic"

//demux:spsc(producer=Push, consumer=Take)
type rb struct {
	head       atomic.Uint64
	cachedHead uint64 //demux:owned(producer, peer=stale)
}

func (r *rb) Push(v int) {
	_ = v
}

type lone struct {
	cachedX uint64 //demux:owned(consumer, peer=head)
}
