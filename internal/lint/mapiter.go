package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter returns the mapiter analyzer: Go randomizes map iteration
// order, so a `range` over a map in a package whose output feeds results
// or figures is a nondeterminism hazard. A range is accepted when it is
// provably order-insensitive:
//
//   - it binds neither key nor value (`for range m` — every iteration is
//     indistinguishable), or
//   - its body only collects keys into a slice that the same function
//     later sorts (the collect-then-sort idiom of registry listings), or
//   - it carries a //demux:orderinvariant <reason> waiver asserting the
//     body is a commutative accumulation.
func MapIter(restrict PackageFilter) *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc:  "flag order-sensitive map iteration in result-feeding packages",
	}
	a.Run = func(pass *Pass) error {
		if restrict != nil && !restrict(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if blankOnly(rs.Key) && blankOnly(rs.Value) {
					return true
				}
				if collectsThenSorts(pass, rs, stack) {
					return true
				}
				if !pass.waived(rs.Pos(), "orderinvariant") {
					pass.Reportf(rs.Pos(), "map iteration order is nondeterministic; sort the keys, or waive a commutative accumulation with //demux:orderinvariant <reason>")
				}
				return true
			})
		}
		return nil
	}
	return a
}

// blankOnly reports whether a range binding is absent or the blank
// identifier.
func blankOnly(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// collectsThenSorts recognizes the one map-range idiom that is
// deterministic by construction: a body that is exactly
//
//	s = append(s, k)
//
// appending the range key to a slice, where the enclosing function also
// passes s to a sort or slices call. Anything fancier must sort
// explicitly or carry a waiver.
func collectsThenSorts(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || !blankOnly(rs.Value) {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	arg1, ok1 := call.Args[1].(*ast.Ident)
	if !ok || !ok1 ||
		useOf(pass.Info, arg0) != useOf(pass.Info, dst) ||
		useOf(pass.Info, arg1) != useOf(pass.Info, key) {
		return false
	}
	fnBody := enclosingFuncBody(stack)
	if fnBody == nil {
		return false
	}
	dstObj := useOf(pass.Info, dst)
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := useOf(pass.Info, pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && useOf(pass.Info, arg) == dstObj {
			sorted = true
		}
		return true
	})
	return sorted
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
