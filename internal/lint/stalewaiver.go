package lint

// StaleWaiver returns the stalewaiver analyzer, which keeps the waiver
// inventory honest. Every waiver in the suite exists to document one
// specific exception; when the code under it is rewritten or deleted, the
// waiver comment tends to survive — and a waiver that suppresses nothing
// is worse than dead weight, because it pre-authorizes the next violation
// someone writes on that line. This analyzer reports every well-formed
// waiver directive that no analyzer consumed during the run, so deleting
// the exceptional code forces deleting its paper trail.
//
// It must run after every analyzer that consults waivers (Default()
// orders it last): "consumed" is a flag Pass.waived sets, so running
// early would see nothing used and report everything. For the same
// reason a waiver is reported as stale when its analyzer never looked —
// a //demux:wallclock in a package virtualtime does not cover is stale
// by definition: it suppresses nothing there.
//
// There is deliberately no waiver for this analyzer. A stale waiver has
// exactly one fix: delete it.
func StaleWaiver() *Analyzer {
	a := &Analyzer{
		Name: "stalewaiver",
		Doc:  "report //demux: waivers that suppressed no finding in this run",
	}
	a.Run = func(pass *Pass) error {
		for _, d := range pass.dirs.all {
			if d.err != "" || d.used {
				continue
			}
			analyzer, isWaiver := waiverNames[d.name]
			if !isWaiver {
				continue
			}
			pass.Reportf(d.pos, "stale waiver: //demux:%s suppresses no %s finding here; delete it", d.name, analyzer)
		}
		return nil
	}
	return a
}
