package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// spscType is one ring type under the SPSC contract.
type spscType struct {
	name     string
	producer map[string]bool // method names allowed on the producer side
	consumer map[string]bool
	dir      *directive
}

// spscField is one //demux:owned cached-peer field.
type spscField struct {
	name string
	side string // "producer" or "consumer"
	peer string // the atomic index field this cache shadows
	typ  *spscType
}

// SPSCRing returns the spscring analyzer, which checks the
// single-producer / single-consumer ring discipline that shard.Ring's
// comments promise. A ring type is annotated
//
//	//demux:spsc(producer=Push, consumer=Pop)
//
// naming each side's methods ('+'-joined for more than one, e.g.
// producer=Push+TryPush). Its cached peer-index fields are annotated
//
//	cachedHead uint64 //demux:owned(producer, peer=head)
//	cachedTail uint64 //demux:owned(consumer, peer=tail)
//
// The analyzer then enforces three rules:
//
//  1. Side isolation: a producer-owned field is touched only by producer
//     methods, a consumer-owned field only by consumer methods. Neutral
//     methods (Len, Cap) and plain functions get neither — an unlisted
//     method that reads cachedHead is exactly the unsynchronized
//     cross-thread read the cache-line split exists to prevent.
//  2. Refresh protocol: the only write a side may make to its cached
//     field is the documented reload, a plain assignment from the peer's
//     atomic Load (r.cachedHead = r.head.Load()). Any other store —
//     r.cachedHead++, a constant, arithmetic on the stale cache — would
//     invent a peer position the peer never published.
//  3. Annotation coherence: every method listed in the spsc directive
//     must exist on the type, and every //demux:owned field must name a
//     real sibling field as its peer and live in a //demux:spsc type;
//     a misspelling here would silently un-check the contract.
//
// Construction in composite literals is exempt (the ring is not shared
// until the constructor returns). A deliberate violation — a test
// draining a quiesced ring from the wrong goroutine, say — is waived with
// //demux:spscok <reason>.
//
// Blind spot: the analyzer checks method bodies against roles; it cannot
// see which goroutine calls Push. The contract's "exactly one goroutine
// per side" half remains the caller's obligation (and -race's).
func SPSCRing() *Analyzer {
	a := &Analyzer{
		Name: "spscring",
		Doc:  "enforce producer/consumer side isolation on //demux:spsc ring types",
	}
	a.Run = func(pass *Pass) error {
		typesByPos := make(map[token.Pos]*spscType) // TypeSpec name pos → contract
		fields := make(map[token.Pos]*spscField)    // field decl pos → contract
		collectSPSC(pass, typesByPos, fields)
		if len(typesByPos) == 0 {
			return nil
		}
		methods := methodsByType(pass)
		//demux:orderinvariant Run sorts diagnostics by position before emitting
		for pos, st := range typesByPos {
			for _, side := range [2]string{"producer", "consumer"} {
				list := st.producer
				if side == "consumer" {
					list = st.consumer
				}
				//demux:orderinvariant Run sorts diagnostics by position before emitting
				for m := range list {
					if !methods[pos][m] {
						pass.Reportf(st.dir.pos, "//demux:spsc(%s=...) names method %s, but type %s has no such method", side, m, st.name)
					}
				}
			}
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkSPSCFunc(pass, fn, typesByPos, fields)
			}
		}
		return nil
	}
	return a
}

// collectSPSC gathers //demux:spsc types and //demux:owned fields,
// reporting owned fields whose contract is incoherent (outside an spsc
// type, or naming a nonexistent peer).
func collectSPSC(pass *Pass, out map[token.Pos]*spscType, fields map[token.Pos]*spscField) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				structType, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var st *spscType
				if d := typeSpecDirective(gd, ts, "spsc"); d != nil {
					st = &spscType{
						name:     ts.Name.Name,
						producer: splitMethodList(d.kv["producer"]),
						consumer: splitMethodList(d.kv["consumer"]),
						dir:      d,
					}
					if obj := pass.Info.Defs[ts.Name]; obj != nil {
						out[obj.Pos()] = st
					}
				}
				siblings := make(map[string]bool)
				for _, field := range structType.Fields.List {
					for _, name := range field.Names {
						siblings[name.Name] = true
					}
				}
				for _, field := range structType.Fields.List {
					d := fieldDirective(field, "owned")
					if d == nil {
						continue
					}
					side := ""
					if len(d.args) > 0 {
						side = d.args[0]
					}
					peer := d.kv["peer"]
					if st == nil {
						pass.Reportf(d.pos, "//demux:owned field in type %s, which is not marked //demux:spsc", ts.Name.Name)
						continue
					}
					if side != "producer" && side != "consumer" {
						// The directive analyzer reports the malformed side;
						// skip rather than guess.
						continue
					}
					if peer != "" && !siblings[peer] {
						pass.Reportf(d.pos, "//demux:owned names peer=%s, but %s has no field %s", peer, st.name, peer)
						peer = ""
					}
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							fields[obj.Pos()] = &spscField{name: name.Name, side: side, peer: peer, typ: st}
						}
					}
				}
			}
		}
	}
}

// splitMethodList decodes a '+'-joined method list from a directive value.
func splitMethodList(v string) map[string]bool {
	out := make(map[string]bool)
	if v == "" {
		return out
	}
	for _, m := range strings.Split(v, "+") {
		out[m] = true
	}
	return out
}

// methodsByType maps each type declaration position to the set of method
// names declared on it (any receiver form: T, *T, T[P], *T[P]).
func methodsByType(pass *Pass) map[token.Pos]map[string]bool {
	out := make(map[token.Pos]map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			pos, ok := recvTypePos(pass, fn)
			if !ok {
				continue
			}
			set := out[pos]
			if set == nil {
				set = make(map[string]bool)
				out[pos] = set
			}
			set[fn.Name.Name] = true
		}
	}
	return out
}

// recvTypePos resolves a method's receiver to the declaration position of
// its base named type, unwrapping pointers and type-parameter lists.
func recvTypePos(pass *Pass, fn *ast.FuncDecl) (token.Pos, bool) {
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			if obj := useOf(pass.Info, x); obj != nil {
				return obj.Pos(), true
			}
			return token.NoPos, false
		default:
			return token.NoPos, false
		}
	}
}

// checkSPSCFunc walks one function, flagging owned-field accesses from
// the wrong side and cached-field stores that are not the peer reload.
func checkSPSCFunc(pass *Pass, fn *ast.FuncDecl, spscTypes map[token.Pos]*spscType, fields map[token.Pos]*spscField) {
	// Determine which side, if any, this function is.
	var onType *spscType
	side := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if pos, ok := recvTypePos(pass, fn); ok {
			onType = spscTypes[pos]
		}
	}
	if onType != nil {
		switch {
		case onType.producer[fn.Name.Name]:
			side = "producer"
		case onType.consumer[fn.Name.Name]:
			side = "consumer"
		}
	}
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		fld, ok := fields[s.Obj().Pos()]
		if !ok {
			return true
		}
		if fld.side != side || fld.typ != onType {
			if !pass.waived(sel.Pos(), "spscok") {
				from := "a function outside the ring's methods"
				switch {
				case side != "" && onType == fld.typ:
					from = "the " + side + " side"
				case onType == fld.typ:
					from = "a method outside the " + fld.side + " list"
				}
				pass.Reportf(sel.Pos(), "field %s is %s-owned SPSC state of %s; touching it from %s races with the %s — waive a quiesced access with //demux:spscok <reason>", fld.name, fld.side, fld.typ.name, from, fld.side)
			}
			return true
		}
		checkOwnedStore(pass, sel, stack, fld)
		return true
	})
}

// checkOwnedStore verifies that a store to a cached peer field (by its
// own side) is exactly the documented reload: a plain assignment whose
// sole RHS is <recv>.<peer>.Load().
func checkOwnedStore(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, fld *spscField) {
	if len(stack) < 2 {
		return
	}
	var rhs ast.Expr
	switch p := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		isLHS := false
		for i, l := range p.Lhs {
			if l == sel {
				isLHS = true
				if p.Tok == token.ASSIGN && len(p.Rhs) == len(p.Lhs) {
					rhs = p.Rhs[i]
				}
			}
		}
		if !isLHS {
			return
		}
	case *ast.IncDecStmt:
		if p.X != sel {
			return
		}
	case *ast.UnaryExpr:
		if p.Op != token.AND {
			return
		}
		// &r.cachedHead escapes the cache word to code the analyzer
		// cannot follow; treat like a non-reload store.
	default:
		return
	}
	if rhs != nil && isPeerReload(rhs, fld.peer) {
		return
	}
	if !pass.waived(sel.Pos(), "spscok") {
		pass.Reportf(sel.Pos(), "cached peer index %s may only be refreshed by reloading its peer (%s = <ring>.%s.Load()); any other store invents a position the %s never published — waive with //demux:spscok <reason>", fld.name, fld.name, fld.peer, otherSide(fld.side))
	}
}

// isPeerReload matches the reload shape <expr>.<peer>.Load().
func isPeerReload(rhs ast.Expr, peer string) bool {
	if peer == "" {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	loadSel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || loadSel.Sel.Name != "Load" {
		return false
	}
	peerSel, ok := loadSel.X.(*ast.SelectorExpr)
	return ok && peerSel.Sel.Name == peer
}

// otherSide returns the opposite SPSC role.
func otherSide(side string) string {
	if side == "producer" {
		return "consumer"
	}
	return "producer"
}
