package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture's trailing
// `// want `+"`regex`"+` comment, analysistest-style.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// loadFixture loads one GOPATH-style fixture package from testdata/src.
func loadFixture(t *testing.T, pkg string) *Package {
	t.Helper()
	loader := NewLoader(filepath.Join("testdata", "src"), "")
	p, err := loader.Load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	return p
}

// parseWants collects the `// want` expectations of a loaded fixture.
func parseWants(t *testing.T, p *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isWantComment(c) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(c.Text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: // want comment without a `pattern`", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func isWantComment(c *ast.Comment) bool {
	const prefix = "// want "
	return len(c.Text) > len(prefix) && c.Text[:len(prefix)] == prefix
}

// runFixture runs one analyzer over a fixture package and checks its
// diagnostics against the package's // want expectations: every expected
// pattern must fire on its line, and nothing else may fire.
func runFixture(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	p := loadFixture(t, pkg)
	diags, err := Run(p, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}
	wants := parseWants(t, p)
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// runFixtureAll runs several analyzers together over one fixture — the
// way demuxvet runs the whole suite over a real package — and checks
// the combined diagnostics against the fixture's // want expectations.
func runFixtureAll(t *testing.T, as []*Analyzer, pkg string) {
	t.Helper()
	p := loadFixture(t, pkg)
	diags, err := Run(p, as)
	if err != nil {
		t.Fatalf("running %d analyzers on %s: %v", len(as), pkg, err)
	}
	wants := parseWants(t, p)
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unconsumed expectation matching the diagnostic.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// fixtureLine returns the 1-based line of the first occurrence of needle
// in a fixture file, for expectations that land on directive comments —
// where a trailing `// want` comment cannot be written because the
// directive already occupies the line's one comment.
func fixtureLine(t *testing.T, pkg, file, needle string) int {
	t.Helper()
	path := filepath.Join("testdata", "src", pkg, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	t.Fatalf("%s: no line contains %q", path, needle)
	return 0
}

// A diagWant is one expected diagnostic for assertDiags: the line it
// must land on, the analyzer it must come from, and a message substring.
type diagWant struct {
	line     int
	analyzer string
	sub      string
}

// assertDiags matches diagnostics against expectations one-to-one:
// every expectation must be met, and no diagnostic may go unclaimed.
func assertDiags(t *testing.T, diags []Diagnostic, wants []diagWant) {
	t.Helper()
	claimed := make([]bool, len(diags))
outer:
	for _, w := range wants {
		for i, d := range diags {
			if !claimed[i] && d.Pos.Line == w.line && d.Analyzer == w.analyzer && strings.Contains(d.Message, w.sub) {
				claimed[i] = true
				continue outer
			}
		}
		t.Errorf("missing diagnostic: line %d [%s] containing %q", w.line, w.analyzer, w.sub)
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// runSilent asserts an analyzer reports nothing on a fixture, used to
// prove package filters keep analyzers out of unrestricted packages.
func runSilent(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	p := loadFixture(t, pkg)
	diags, err := Run(p, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}
	for _, d := range diags {
		t.Errorf("expected silence from %s on %s, got: %s", a.Name, pkg, d)
	}
}
