package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicMethods are the method names of the sync/atomic wrapper types
// (atomic.Pointer, atomic.Uint64, ...) that constitute a legal touch of a
// marked field.
var atomicMethods = map[string]bool{
	"Load":           true,
	"Store":          true,
	"Add":            true,
	"And":            true,
	"Or":             true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// AtomicField returns the atomicfield analyzer, the guard on the RCU
// publication protocol: a struct field marked //demux:atomic may be
// touched only through atomic operations — a method call on a sync/atomic
// wrapper type (f.Load(), f.Store(x), ...) or its address passed to an
// atomic function (atomic.AddUint64(&s.f, 1)). Any plain read, write,
// increment, or copy of the field is flagged: one non-atomic access to a
// published chain pointer or cache word would break the lock-free reader
// contract silently. A writer-side access already serialized by the
// structure's lock can be waived with //demux:atomicguarded <reason>.
//
// Marked fields are unexported, so in-package analysis sees every access.
func AtomicField() *Analyzer {
	a := &Analyzer{
		Name: "atomicfield",
		Doc:  "require atomic access to fields marked //demux:atomic",
	}
	a.Run = func(pass *Pass) error {
		marked := make(map[types.Object]bool)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !fieldIsAtomic(field) {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							marked[obj] = true
						}
					}
				}
				return true
			})
		}
		if len(marked) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal || !marked[s.Obj()] {
					return true
				}
				if atomicAccess(sel, stack) {
					return true
				}
				if !pass.waived(sel.Pos(), "atomicguarded") {
					pass.Reportf(sel.Pos(), "field %s is marked //demux:atomic; access it with atomic operations (Load/Store/Add/Swap/CompareAndSwap or &%s passed to sync/atomic), or waive a lock-guarded access with //demux:atomicguarded <reason>", s.Obj().Name(), s.Obj().Name())
				}
				return true
			})
		}
		return nil
	}
	return a
}

// atomicAccess reports whether the marked-field selector (last node of
// stack) appears in a context that preserves the atomic protocol: as the
// receiver of an atomic-wrapper method call, or with its address taken
// (the pointer then flows into sync/atomic functions or Load/Store
// helpers, which enforce atomicity themselves).
func atomicAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.SelectorExpr:
		if p.X != sel || !atomicMethods[p.Sel.Name] {
			return false
		}
		if len(stack) < 3 {
			return false
		}
		call, ok := stack[len(stack)-3].(*ast.CallExpr)
		return ok && call.Fun == p
	}
	return false
}
