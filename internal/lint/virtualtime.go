package lint

import (
	"go/ast"
)

// wallclockFuncs are the package-level time functions that read or wait on
// the wall clock. Pure arithmetic on time.Duration and the time.Time type
// itself stay legal: the invariant is that simulated packages never ask
// the host what time it is.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// VirtualTime returns the virtualtime analyzer: packages whose results
// depend on the simulation's virtual clock (Stack.Tick, tpca.Run's event
// loop) must not consult the wall clock, or identical seeds would stop
// producing identical figures. restrict names the virtual-time packages;
// //demux:wallclock <reason> waives a deliberate wall-clock read (the
// throughput harness measuring real elapsed time is the one legitimate
// consumer).
func VirtualTime(restrict PackageFilter) *Analyzer {
	a := &Analyzer{
		Name: "virtualtime",
		Doc:  "forbid wall-clock reads (time.Now, time.Sleep, ...) in virtual-time packages",
	}
	a.Run = func(pass *Pass) error {
		if restrict != nil && !restrict(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || !isPkgFunc(useOf(pass.Info, id), wallclockFuncs, "time") {
					return true
				}
				if !pass.waived(id.Pos(), "wallclock") {
					pass.Reportf(id.Pos(), "time.%s reads the wall clock in virtual-time package %s; use the virtual clock or waive with //demux:wallclock <reason>", id.Name, pass.Pkg.Path())
				}
				return true
			})
		}
		return nil
	}
	return a
}
