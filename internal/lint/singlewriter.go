package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// swField is one field under the single-writer contract.
type swField struct {
	name string
	role string
}

// SingleWriter returns the singlewriter analyzer, the mechanical form of
// the "this state belongs to one goroutine" comments on the repository's
// fast paths: telemetry's LocalDemux observation buffers, the sharded
// engine's per-shard steering counters, the flat slab's free list. A
// struct field marked //demux:singlewriter(owner=role) — or every field
// of a struct whose type carries the marker — may be accessed only from
// functions marked //demux:owner(role). Everything else is flagged:
//
//   - mutations (assignment, compound assignment, ++/--) from a
//     non-owner, the textbook data race;
//   - reads from a non-owner, which race with owner writes just as
//     surely under the Go memory model;
//   - address escapes (&x.f from a non-owner), which launder the field
//     into code the analyzer cannot see;
//   - value copies of the whole struct outside an owner (x := *l,
//     passing the struct by value), which duplicate single-writer state
//     into a second, unsynchronized home.
//
// Composite literals of the marked struct type are construction, not
// access: a value being built has not been shared yet, so constructors
// need no role. A deliberate cross-role access (a quiesced control-plane
// read, say) is waived with //demux:crossaccess <reason>.
//
// Blind spots, by design of per-package analysis: accesses from other
// packages are invisible (keep single-writer fields unexported), and a
// function literal inherits its enclosing function's roles even if the
// closure is handed to another goroutine.
func SingleWriter() *Analyzer {
	a := &Analyzer{
		Name: "singlewriter",
		Doc:  "restrict //demux:singlewriter fields to //demux:owner functions",
	}
	a.Run = func(pass *Pass) error {
		marked := make(map[token.Pos]swField) // field decl pos → contract
		markedTypes := make(map[token.Pos]string)
		collectSingleWriter(pass, marked, markedTypes)
		if len(marked) == 0 {
			return nil
		}
		roles := ownerRoles(pass)
		reportMissingOwners(pass, marked, roles)
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkSingleWriterFunc(pass, fn, marked, markedTypes, roles[fn])
			}
		}
		return nil
	}
	return a
}

// collectSingleWriter gathers field-level and type-level markers. A
// type-level marker places every named field of the struct under the
// type's role; padding fields (_) are skipped.
func collectSingleWriter(pass *Pass, marked map[token.Pos]swField, markedTypes map[token.Pos]string) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				typeRole := ""
				if d := typeSpecDirective(gd, ts, "singlewriter"); d != nil {
					typeRole = d.arg("owner")
				}
				sawField := false
				for _, field := range st.Fields.List {
					role := typeRole
					if d := fieldDirective(field, "singlewriter"); d != nil {
						role = d.arg("owner")
					}
					if role == "" {
						continue
					}
					for _, name := range field.Names {
						if name.Name == "_" {
							continue
						}
						if obj := pass.Info.Defs[name]; obj != nil {
							marked[obj.Pos()] = swField{name: obj.Name(), role: role}
							sawField = true
						}
					}
				}
				if sawField {
					if obj := pass.Info.Defs[ts.Name]; obj != nil {
						markedTypes[obj.Pos()] = ts.Name.Name
					}
				}
			}
		}
	}
}

// typeSpecDirective finds a marker on a type declaration: on the
// GenDecl's doc (the usual `// Comment` block above `type T struct`), or
// on the TypeSpec's own doc/trailing comment inside a grouped decl.
func typeSpecDirective(gd *ast.GenDecl, ts *ast.TypeSpec, name string) *directive {
	if len(gd.Specs) == 1 {
		if d := commentGroupDirective(gd.Doc, name); d != nil {
			return d
		}
	}
	if d := commentGroupDirective(ts.Doc, name); d != nil {
		return d
	}
	return commentGroupDirective(ts.Comment, name)
}

// ownerRoles maps each function declaration to the set of roles its
// //demux:owner directives grant.
func ownerRoles(pass *Pass) map[*ast.FuncDecl]map[string]bool {
	out := make(map[*ast.FuncDecl]map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				d, ok := parseDirective(c)
				if !ok || d.name != "owner" || d.err != "" {
					continue
				}
				set := out[fn]
				if set == nil {
					set = make(map[string]bool)
					out[fn] = set
				}
				for _, role := range d.args {
					set[role] = true
				}
			}
		}
	}
	return out
}

// reportMissingOwners flags a marked field whose role no function in the
// package owns — a misspelled role would otherwise forbid the field to
// everyone and flag the real owner, which is noisy but not obviously a
// typo; this diagnostic points at the contract itself.
func reportMissingOwners(pass *Pass, marked map[token.Pos]swField, roles map[*ast.FuncDecl]map[string]bool) {
	have := make(map[string]bool)
	//demux:orderinvariant folding role sets into one set is commutative
	for _, set := range roles {
		//demux:orderinvariant set union is commutative
		for role := range set {
			have[role] = true
		}
	}
	//demux:orderinvariant Run sorts diagnostics by position before emitting
	for pos, fld := range marked {
		if !have[fld.role] {
			pass.Reportf(pos, "field %s is marked //demux:singlewriter(owner=%s) but no function in this package is marked //demux:owner(%s)", fld.name, fld.role, fld.role)
		}
	}
}

// checkSingleWriterFunc walks one function, flagging accesses to marked
// fields outside their role and value copies of marked structs.
func checkSingleWriterFunc(pass *Pass, fn *ast.FuncDecl, marked map[token.Pos]swField, markedTypes map[token.Pos]string, roles map[string]bool) {
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			s := pass.Info.Selections[n]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := marked[s.Obj().Pos()]
			if !ok || roles[fld.role] {
				return true
			}
			if !pass.waived(n.Pos(), "crossaccess") {
				pass.Reportf(n.Pos(), "field %s is single-writer state owned by role %q; only //demux:owner(%s) functions may touch it — waive a deliberate cross-role access with //demux:crossaccess <reason>", fld.name, fld.role, fld.role)
			}
		case ast.Expr:
			checkStructCopy(pass, n, stack, markedTypes, roles, marked)
		}
		return true
	})
}

// copyKinds are the expression shapes that can denote an existing struct
// value (a composite literal or call result is a fresh value, not shared
// state, so copying it is fine).
func copyableExpr(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// checkStructCopy flags value copies of a marked struct in a non-owner
// function: RHS of assignment or declaration, call argument, return
// value, or composite-literal element.
func checkStructCopy(pass *Pass, e ast.Expr, stack []ast.Node, markedTypes map[token.Pos]string, roles map[string]bool, marked map[token.Pos]swField) {
	if !copyableExpr(e) || len(stack) < 2 {
		return
	}
	named, ok := pass.Info.TypeOf(e).(*types.Named)
	if !ok {
		return
	}
	typeName, ok := markedTypes[named.Obj().Pos()]
	if !ok {
		return
	}
	if ownerOfAll(named, marked, roles) {
		return
	}
	copied := false
	switch p := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != e {
				continue
			}
			// _ = x discards the value; no second copy comes to exist.
			if len(p.Lhs) == len(p.Rhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
			}
			copied = true
		}
	case *ast.ValueSpec:
		for _, v := range p.Values {
			copied = copied || v == e
		}
	case *ast.CallExpr:
		for _, arg := range p.Args {
			copied = copied || arg == e
		}
	case *ast.ReturnStmt:
		for _, r := range p.Results {
			copied = copied || r == e
		}
	case *ast.CompositeLit:
		for _, el := range p.Elts {
			copied = copied || el == e
		}
	case *ast.KeyValueExpr:
		copied = p.Value == e
	}
	if !copied {
		return
	}
	if !pass.waived(e.Pos(), "crossaccess") {
		pass.Reportf(e.Pos(), "copying a %s value duplicates its single-writer fields into a second unsynchronized home; keep it behind a pointer, or waive with //demux:crossaccess <reason>", typeName)
	}
}

// ownerOfAll reports whether the current function's roles cover every
// single-writer field of the struct — an owner may copy its own state.
func ownerOfAll(named *types.Named, marked map[token.Pos]swField, roles map[string]bool) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if fld, ok := marked[st.Field(i).Pos()]; ok && !roles[fld.role] {
			return false
		}
	}
	return true
}
