package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// Directive returns the directive analyzer, the grammar gate for every
// //demux: comment. The rest of the suite treats a malformed directive as
// absent — a misspelled marker must not half-enable a check, and a
// malformed waiver must not suppress anything — so without this analyzer
// a typo would silently disable a contract. Here every //demux: comment
// is validated against the grammar in directive.go and the per-directive
// argument rules:
//
//	hotpath, atomic       no arguments
//	waivers               no arguments; free-text reason after the name
//	singlewriter          exactly one role: (owner=role) or (role)
//	owner                 one or more positional roles: (role, ...)
//	spsc                  exactly the keys producer= and consumer=
//	owned                 (producer|consumer, peer=field)
//
// Unknown directive names, parse errors (unclosed parens, bad identifier
// syntax, duplicate keys), and duplicate same-name directives on one line
// are all reported at the comment. There is no waiver: the fix for a bad
// directive is to write it correctly.
func Directive() *Analyzer {
	a := &Analyzer{
		Name: "directive",
		Doc:  "validate //demux: comments against the annotation grammar",
	}
	a.Run = func(pass *Pass) error {
		for _, d := range pass.dirs.all {
			checkDirective(pass, d)
		}
		reportFieldDuplicates(pass)
		return nil
	}
	return a
}

// checkDirective validates one parsed directive's name and arguments.
func checkDirective(pass *Pass, d *directive) {
	if d.err != "" {
		pass.Reportf(d.pos, "malformed //demux:%s directive: %s", d.name, d.err)
		return
	}
	_, isWaiver := waiverNames[d.name]
	if !isWaiver && !markerNames[d.name] {
		pass.Reportf(d.pos, "unknown directive //demux:%s (markers: %s; waivers: %s)", d.name, nameList(markerNames), nameList(waiverKeys()))
		return
	}
	nArgs := len(d.args) + len(d.kv)
	switch {
	case isWaiver, d.name == "hotpath", d.name == "atomic":
		if nArgs > 0 {
			pass.Reportf(d.pos, "//demux:%s takes no arguments", d.name)
		}
	case d.name == "singlewriter":
		_, hasOwner := d.kv["owner"]
		ok := (hasOwner && len(d.kv) == 1 && len(d.args) == 0) ||
			(len(d.kv) == 0 && len(d.args) == 1)
		if !ok {
			pass.Reportf(d.pos, "//demux:singlewriter needs exactly one role: (owner=role) or (role)")
		}
	case d.name == "owner":
		if len(d.args) == 0 || len(d.kv) > 0 {
			pass.Reportf(d.pos, "//demux:owner needs one or more positional roles: (role, ...)")
		}
	case d.name == "spsc":
		_, p := d.kv["producer"]
		_, c := d.kv["consumer"]
		if !p || !c || len(d.kv) != 2 || len(d.args) > 0 {
			pass.Reportf(d.pos, "//demux:spsc needs exactly (producer=Methods, consumer=Methods)")
		}
	case d.name == "owned":
		_, extra := d.kv["peer"]
		sideOK := len(d.args) == 1 && (d.args[0] == "producer" || d.args[0] == "consumer")
		kvOK := len(d.kv) == 0 || (extra && len(d.kv) == 1)
		if !sideOK || !kvOK {
			pass.Reportf(d.pos, "//demux:owned needs (producer|consumer, peer=field)")
		}
	}
}

// reportFieldDuplicates flags the same marker appearing twice on one
// struct field — once in its doc comment and once trailing — where the
// copies sit on different lines and escape reportDuplicates. Only the
// doc-comment copy is consulted (fieldDirective checks Doc first), so the
// trailing one is dead and its arguments, if different, are a trap.
func reportFieldDuplicates(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				seen := make(map[string]bool)
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						d, ok := parseDirective(c)
						if !ok || d.err != "" || !markerNames[d.name] {
							continue
						}
						if seen[d.name] {
							pass.Reportf(d.pos, "duplicate //demux:%s on one field; the doc-comment copy wins and this one is ignored", d.name)
							continue
						}
						seen[d.name] = true
					}
				}
			}
			return true
		})
	}
}

// nameList renders a directive-name set as a stable comma list.
func nameList(m map[string]bool) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// waiverKeys adapts waiverNames' keys to nameList's input shape.
func waiverKeys() map[string]bool {
	out := make(map[string]bool, len(waiverNames))
	//demux:orderinvariant building a set; nameList sorts before rendering
	for n := range waiverNames {
		out[n] = true
	}
	return out
}
