package lint

import "testing"

func TestVirtualTimeFixture(t *testing.T) {
	runFixture(t, VirtualTime(PathPrefixFilter("vtime")), "vtime")
}

// TestVirtualTimeFilter proves the package filter keeps the analyzer out
// of packages that are allowed to read the wall clock.
func TestVirtualTimeFilter(t *testing.T) {
	runSilent(t, VirtualTime(PathPrefixFilter("tcpdemux/internal/sim")), "vtime")
}

func TestSeededRandFixture(t *testing.T) {
	runFixture(t, SeededRand(), "srand")
}

func TestMapIterFixture(t *testing.T) {
	runFixture(t, MapIter(nil), "miter")
}

func TestMapIterFilter(t *testing.T) {
	runSilent(t, MapIter(PathPrefixFilter("tcpdemux/internal/core")), "miter")
}

func TestAtomicFieldFixture(t *testing.T) {
	runFixture(t, AtomicField(), "afield")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc(), "halloc")
}

// TestTelemetryMetricFixture runs atomicfield and hotalloc together over
// telemetry-idiom metric code (striped atomic slots observed by
// zero-alloc hot paths), the combination demuxvet applies to
// internal/telemetry.
func TestTelemetryMetricFixture(t *testing.T) {
	runFixtureAll(t, []*Analyzer{AtomicField(), HotAlloc()}, "tmetric")
}

// TestFlatEntryFixture runs atomicfield and hotalloc together over
// flat-table-idiom code (packed probe-group entries scanned by zero-alloc
// hot paths next to striped atomic counters), the combination demuxvet
// applies to internal/flat.
func TestFlatEntryFixture(t *testing.T) {
	runFixtureAll(t, []*Analyzer{AtomicField(), HotAlloc()}, "fentry")
}

// TestHotAllocSilentOffHotpath runs hotalloc on the allocation-heavy
// mapiter fixture, which has no //demux:hotpath markers: no diagnostics.
func TestHotAllocSilentOffHotpath(t *testing.T) {
	runSilent(t, HotAlloc(), "miter")
}

func TestPathPrefixFilter(t *testing.T) {
	f := PathPrefixFilter("tcpdemux/internal/sim", "tcpdemux/internal/engine")
	cases := []struct {
		path string
		want bool
	}{
		{"tcpdemux/internal/sim", true},
		{"tcpdemux/internal/sim/sub", true},
		{"tcpdemux/internal/sim [tcpdemux/internal/sim.test]", true},
		{"tcpdemux/internal/simulator", false},
		{"tcpdemux/internal/engine", true},
		{"tcpdemux/internal/core", false},
	}
	for _, c := range cases {
		if got := f(c.path); got != c.want {
			t.Errorf("PathPrefixFilter(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
