package lint

import "testing"

func TestVirtualTimeFixture(t *testing.T) {
	runFixture(t, VirtualTime(PathPrefixFilter("vtime")), "vtime")
}

// TestVirtualTimeFilter proves the package filter keeps the analyzer out
// of packages that are allowed to read the wall clock.
func TestVirtualTimeFilter(t *testing.T) {
	runSilent(t, VirtualTime(PathPrefixFilter("tcpdemux/internal/sim")), "vtime")
}

func TestSeededRandFixture(t *testing.T) {
	runFixture(t, SeededRand(), "srand")
}

func TestMapIterFixture(t *testing.T) {
	runFixture(t, MapIter(nil), "miter")
}

func TestMapIterFilter(t *testing.T) {
	runSilent(t, MapIter(PathPrefixFilter("tcpdemux/internal/core")), "miter")
}

// TestAtomicPubAccessFixture runs atomicpub over the access-discipline
// fixture inherited from the retired atomicfield analyzer: same marker,
// same rule, wider analyzer.
func TestAtomicPubAccessFixture(t *testing.T) {
	runFixture(t, AtomicPub(), "afield")
}

// TestAtomicPubOrderingFixture exercises the store-before-publish half:
// writes through a pointer after it was published via Store, Swap, or
// CompareAndSwap on a marked field.
func TestAtomicPubOrderingFixture(t *testing.T) {
	runFixture(t, AtomicPub(), "apub")
}

func TestSingleWriterFixture(t *testing.T) {
	runFixture(t, SingleWriter(), "swriter")
}

func TestSPSCRingFixture(t *testing.T) {
	runFixture(t, SPSCRing(), "sring")
}

// TestSPSCRingAnnotationCoherence checks the diagnostics that land on
// the annotation itself: a side list naming a nonexistent method, an
// owned field with a nonexistent peer, an owned field outside any
// //demux:spsc type.
func TestSPSCRingAnnotationCoherence(t *testing.T) {
	p := loadFixture(t, "sringbad")
	diags, err := Run(p, []*Analyzer{SPSCRing()})
	if err != nil {
		t.Fatal(err)
	}
	const f = "sringbad.go"
	assertDiags(t, diags, []diagWant{
		{fixtureLine(t, "sringbad", f, "consumer=Take"), "spscring", "names method Take"},
		{fixtureLine(t, "sringbad", f, "peer=stale"), "spscring", "has no field stale"},
		{fixtureLine(t, "sringbad", f, "cachedX"), "spscring", "not marked //demux:spsc"},
	})
}

// TestStaleWaiverFixture runs seededrand (which consults the one earned
// waiver) and stalewaiver together: only the orphaned waiver is
// reported, at its own comment.
func TestStaleWaiverFixture(t *testing.T) {
	p := loadFixture(t, "swaiver")
	diags, err := Run(p, []*Analyzer{SeededRand(), StaleWaiver()})
	if err != nil {
		t.Fatal(err)
	}
	assertDiags(t, diags, []diagWant{
		{fixtureLine(t, "swaiver", "swaiver.go", "stale — the call below was deleted"), "stalewaiver", "stale waiver"},
	})
}

// TestStaleWaiverUnconsulted pins the "never looked" rule: when the
// consuming analyzer does not run (here, seededrand), even the earned
// waiver suppresses nothing and both are stale.
func TestStaleWaiverUnconsulted(t *testing.T) {
	p := loadFixture(t, "swaiver")
	diags, err := Run(p, []*Analyzer{StaleWaiver()})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 stale waivers with no consuming analyzer, got %d: %v", len(diags), diags)
	}
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc(), "halloc")
}

// TestTelemetryMetricFixture runs atomicpub and hotalloc together over
// telemetry-idiom metric code (striped atomic slots observed by
// zero-alloc hot paths), the combination demuxvet applies to
// internal/telemetry.
func TestTelemetryMetricFixture(t *testing.T) {
	runFixtureAll(t, []*Analyzer{AtomicPub(), HotAlloc()}, "tmetric")
}

// TestFlatEntryFixture runs atomicpub and hotalloc together over
// flat-table-idiom code (packed probe-group entries scanned by zero-alloc
// hot paths next to striped atomic counters), the combination demuxvet
// applies to internal/flat.
func TestFlatEntryFixture(t *testing.T) {
	runFixtureAll(t, []*Analyzer{AtomicPub(), HotAlloc()}, "fentry")
}

// TestDefaultSuiteOnSRing runs the full nine-analyzer suite over the
// SPSC fixture the way demuxvet runs it over a real package: the
// spscring findings appear, the other analyzers stay silent, and the
// fixture's used waivers do not trip stalewaiver.
func TestDefaultSuiteOnSRing(t *testing.T) {
	runFixtureAll(t, Default(), "sring")
}

// TestDirectiveSilentOnWellFormed runs the grammar analyzer over a
// fixture whose directives are all valid.
func TestDirectiveSilentOnWellFormed(t *testing.T) {
	runSilent(t, Directive(), "afield")
}

// TestHotAllocSilentOffHotpath runs hotalloc on the allocation-heavy
// mapiter fixture, which has no //demux:hotpath markers: no diagnostics.
func TestHotAllocSilentOffHotpath(t *testing.T) {
	runSilent(t, HotAlloc(), "miter")
}

func TestPathPrefixFilter(t *testing.T) {
	f := PathPrefixFilter("tcpdemux/internal/sim", "tcpdemux/internal/engine")
	cases := []struct {
		path string
		want bool
	}{
		{"tcpdemux/internal/sim", true},
		{"tcpdemux/internal/sim/sub", true},
		{"tcpdemux/internal/sim [tcpdemux/internal/sim.test]", true},
		{"tcpdemux/internal/simulator", false},
		{"tcpdemux/internal/engine", true},
		{"tcpdemux/internal/core", false},
	}
	for _, c := range cases {
		if got := f(c.path); got != c.want {
			t.Errorf("PathPrefixFilter(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
