package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicMethods are the method names of the sync/atomic wrapper types
// (atomic.Pointer, atomic.Uint64, ...) that constitute a legal touch of a
// marked field.
var atomicMethods = map[string]bool{
	"Load":           true,
	"Store":          true,
	"Add":            true,
	"And":            true,
	"Or":             true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// publishMethods are the wrapper methods that make a value visible to
// lock-free readers; their final argument is the published value.
var publishMethods = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// AtomicPub returns the atomicpub analyzer, the guard on the atomic
// publication protocol. It subsumes the retired atomicfield analyzer and
// adds the ordering half of the contract:
//
//  1. Access discipline: a struct field marked //demux:atomic may be
//     touched only through atomic operations — a method call on a
//     sync/atomic wrapper type (f.Load(), f.Store(x), ...) or its address
//     passed to an atomic function (atomic.AddUint64(&s.f, 1)). Any plain
//     read, write, increment, or copy of the field is flagged: one
//     non-atomic access to a published chain pointer or cache word would
//     break the lock-free reader contract silently.
//  2. Store-before-publish ordering: once a pointer has been published
//     through a marked field (f.Store(p), f.Swap(p), the new value of
//     f.CompareAndSwap(_, p)), the publishing function must not keep
//     writing through it. The COW swap sites in internal/rcu and
//     internal/overload build the replacement chain or table pair
//     completely and then publish; a write after the Store would hand
//     lock-free readers a half-built value. The check is positional
//     within one function body — a write that textually follows the
//     publishing call and targets the published pointer is flagged.
//
// A writer-side access already serialized by the structure's lock can be
// waived with //demux:atomicguarded <reason>; the same waiver covers a
// deliberate post-publication write (e.g. writer-private bookkeeping in
// memory readers never follow).
//
// Marked fields are unexported, so in-package analysis sees every access.
func AtomicPub() *Analyzer {
	a := &Analyzer{
		Name: "atomicpub",
		Doc:  "require atomic access to //demux:atomic fields and store-before-publish ordering at their swap sites",
	}
	a.Run = func(pass *Pass) error {
		// Marked fields are matched by declaration position, not object
		// identity: in a generic type (shard.Ring[T]) the field objects
		// seen inside method bodies belong to the instantiated type, which
		// shares the origin's source position but not its *types.Var.
		marked := make(map[token.Pos]string)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !fieldIsAtomic(field) {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							marked[obj.Pos()] = obj.Name()
						}
					}
				}
				return true
			})
		}
		if len(marked) == 0 {
			return nil
		}
		for _, f := range pass.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				name, ok := marked[s.Obj().Pos()]
				if !ok {
					return true
				}
				if atomicAccess(sel, stack) {
					checkPublishOrdering(pass, sel, stack, name)
					return true
				}
				if !pass.waived(sel.Pos(), "atomicguarded") {
					pass.Reportf(sel.Pos(), "field %s is marked //demux:atomic; access it with atomic operations (Load/Store/Add/Swap/CompareAndSwap or &%s passed to sync/atomic), or waive a lock-guarded access with //demux:atomicguarded <reason>", name, name)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// atomicAccess reports whether the marked-field selector (last node of
// stack) appears in a context that preserves the atomic protocol: as the
// receiver of an atomic-wrapper method call, or with its address taken
// (the pointer then flows into sync/atomic functions or Load/Store
// helpers, which enforce atomicity themselves).
func atomicAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.SelectorExpr:
		if p.X != sel || !atomicMethods[p.Sel.Name] {
			return false
		}
		if len(stack) < 3 {
			return false
		}
		call, ok := stack[len(stack)-3].(*ast.CallExpr)
		return ok && call.Fun == p
	}
	return false
}

// checkPublishOrdering flags writes through a pointer after it was
// published via the marked field's Store/Swap/CompareAndSwap. sel is the
// marked-field selector; the stack ends [..., call, method-sel, sel].
func checkPublishOrdering(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, fieldName string) {
	if len(stack) < 3 {
		return
	}
	msel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || msel.X != sel || !publishMethods[msel.Sel.Name] {
		return
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok || call.Fun != msel || len(call.Args) == 0 {
		return
	}
	// The published value is the call's final argument. Two trackable
	// shapes: a pointer-typed local identifier (writes through it are
	// flagged) and &local (writes to the local itself are flagged).
	var (
		obj       types.Object
		derefOnly bool // only *p / p.f / p[i] writes count, not p = ...
	)
	switch arg := call.Args[len(call.Args)-1].(type) {
	case *ast.Ident:
		if o, okv := useOf(pass.Info, arg).(*types.Var); okv {
			if _, isPtr := o.Type().Underlying().(*types.Pointer); isPtr {
				obj, derefOnly = o, true
			}
		}
	case *ast.UnaryExpr:
		if id, okID := arg.X.(*ast.Ident); okID && arg.Op == token.AND {
			if o, okv := useOf(pass.Info, id).(*types.Var); okv {
				obj = o
			}
		}
	}
	if obj == nil {
		return
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return
	}
	after := call.End()
	ast.Inspect(body, func(n ast.Node) bool {
		var lhs []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			lhs = st.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{st.X}
		default:
			return true
		}
		for _, l := range lhs {
			if l.Pos() <= after {
				continue
			}
			id, indirect := rootOf(l)
			if id == nil || useOf(pass.Info, id) != obj {
				continue
			}
			if derefOnly && !indirect {
				continue // reassigning the pointer variable itself is fine
			}
			if !pass.waived(l.Pos(), "atomicguarded") {
				pass.Reportf(l.Pos(), "%s was published through //demux:atomic field %s above; writing it after the publish hands lock-free readers a half-built value — finish all stores first, or waive with //demux:atomicguarded <reason>", id.Name, fieldName)
			}
		}
		return true
	})
}

// rootOf unwraps an assignment target to its base identifier, reporting
// whether the path goes through a dereference, field, or index (i.e.
// writes memory the identifier points at or contains, not the variable
// binding itself).
func rootOf(e ast.Expr) (*ast.Ident, bool) {
	indirect := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indirect
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e, indirect = x.X, true
		case *ast.SelectorExpr:
			e, indirect = x.X, true
		case *ast.IndexExpr:
			e, indirect = x.X, true
		default:
			return nil, indirect
		}
	}
}
