package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every demuxvet control comment. Two kinds
// exist: markers, which opt a declaration into extra checking
// (//demux:hotpath on a function, //demux:atomic on a struct field), and
// waivers, which suppress one finding with a written reason
// (//demux:wallclock, //demux:globalrand, //demux:orderinvariant,
// //demux:atomicguarded, //demux:allowalloc).
const directivePrefix = "//demux:"

// A directive is one parsed //demux:<name> <reason> comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
}

// directives indexes a package's demux directives by file and line so
// analyzers can ask "is this node waived?" in O(1).
type directives struct {
	byLine map[string]map[int][]directive
}

// parseDirectives scans every comment of every file for demux directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{byLine: make(map[string]map[int][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseDirective(c)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				m := d.byLine[p.Filename]
				if m == nil {
					m = make(map[int][]directive)
					d.byLine[p.Filename] = m
				}
				m[p.Line] = append(m[p.Line], dir)
			}
		}
	}
	return d
}

// parseDirective decodes one comment as a demux directive.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return directive{}, false
	}
	name, reason, _ := strings.Cut(text, " ")
	return directive{name: name, reason: strings.TrimSpace(reason), pos: c.Pos()}, name != ""
}

// at returns the directive of the given name covering pos: on pos's own
// line (a trailing comment) or on the line immediately above it.
func (d *directives) at(pos token.Position, name string) *directive {
	m := d.byLine[pos.Filename]
	if m == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		ds := m[line]
		for i := range ds {
			if ds[i].name == name {
				return &ds[i]
			}
		}
	}
	return nil
}

// commentGroupHas reports whether any comment in the group is the named
// demux directive. Used for markers attached to declarations, where the
// directive may be any line of the doc comment.
func commentGroupHas(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if dir, ok := parseDirective(c); ok && dir.name == name {
			return true
		}
	}
	return false
}

// funcIsHotpath reports whether fn carries the //demux:hotpath marker.
func funcIsHotpath(fn *ast.FuncDecl) bool { return commentGroupHas(fn.Doc, "hotpath") }

// fieldIsAtomic reports whether a struct field carries the //demux:atomic
// marker, in its doc comment or as a trailing comment.
func fieldIsAtomic(f *ast.Field) bool {
	return commentGroupHas(f.Doc, "atomic") || commentGroupHas(f.Comment, "atomic")
}
