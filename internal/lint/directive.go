package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every demuxvet control comment. Three kinds
// exist: markers, which opt a declaration into extra checking
// (//demux:hotpath on a function, //demux:atomic on a struct field),
// parameterized markers, which also name roles or peers
// (//demux:singlewriter(owner=flush) on a field,
// //demux:spsc(producer=Push, consumer=Pop) on a ring type), and
// waivers, which suppress one finding with a written reason
// (//demux:wallclock, //demux:globalrand, //demux:orderinvariant,
// //demux:atomicguarded, //demux:allowalloc, //demux:crossaccess,
// //demux:spscok).
//
// Grammar:
//
//	//demux:NAME                      plain marker or waiver
//	//demux:NAME reason text          waiver with its reason
//	//demux:NAME(a, k=v, ...) reason  parameterized directive
//
// NAME is lowercase letters. Arguments are positional identifiers or
// key=value pairs; a value may be a single identifier or a list joined
// with '+' (producer=Push+TryPush). A directive that fails this grammar
// is not silently ignored: it is recorded with a parse error and the
// `directive` analyzer reports it at the comment.
const directivePrefix = "//demux:"

// waiverNames maps each waiver directive to the analyzer that consults
// it. stalewaiver uses the same table to report waivers no analyzer
// consumed.
var waiverNames = map[string]string{
	"wallclock":      "virtualtime",
	"globalrand":     "seededrand",
	"orderinvariant": "mapiter",
	"atomicguarded":  "atomicpub",
	"allowalloc":     "hotalloc",
	"crossaccess":    "singlewriter",
	"spscok":         "spscring",
}

// markerNames are the directives that opt a declaration into checking
// rather than waive a finding.
var markerNames = map[string]bool{
	"hotpath":      true,
	"atomic":       true,
	"singlewriter": true,
	"owner":        true,
	"spsc":         true,
	"owned":        true,
}

// A directive is one parsed //demux: comment.
type directive struct {
	name   string
	args   []string          // positional arguments inside (...)
	kv     map[string]string // key=value arguments inside (...)
	reason string            // free text after the name / argument list
	pos    token.Pos
	err    string // non-empty: malformed; reported by the directive analyzer
	used   bool   // set when an analyzer consumed this directive as a waiver
}

// arg returns the directive's single role-ish argument: kv[key] if
// present, else the first positional argument.
func (d *directive) arg(key string) string {
	if v, ok := d.kv[key]; ok {
		return v
	}
	if len(d.args) > 0 {
		return d.args[0]
	}
	return ""
}

// directives indexes a package's demux directives by file and line so
// analyzers can ask "is this node waived?" in O(1), and keeps the full
// list in source order for the directive and stalewaiver analyzers.
type directives struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

// parseDirectives scans every comment of every file for demux directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{byLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseDirective(c)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				m := d.byLine[p.Filename]
				if m == nil {
					m = make(map[int][]*directive)
					d.byLine[p.Filename] = m
				}
				m[p.Line] = append(m[p.Line], dir)
				d.all = append(d.all, dir)
			}
		}
	}
	return d
}

// isIdent reports whether s is a plain identifier ([A-Za-z_][A-Za-z0-9_]*).
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case '0' <= r && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isIdentList reports whether s is one identifier or a '+'-joined list.
func isIdentList(s string) bool {
	for _, part := range strings.Split(s, "+") {
		if !isIdent(part) {
			return false
		}
	}
	return true
}

// parseDirective decodes one comment as a demux directive. A comment
// carrying the //demux: prefix always yields a directive; grammar
// violations are recorded in err rather than dropped, so a typo cannot
// silently disable a contract.
func parseDirective(c *ast.Comment) (*directive, bool) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return nil, false
	}
	d := &directive{pos: c.Pos()}
	i := 0
	for i < len(text) && 'a' <= text[i] && text[i] <= 'z' {
		i++
	}
	d.name, text = text[:i], text[i:]
	if d.name == "" {
		d.err = "missing directive name after //demux:"
		return d, true
	}
	if strings.HasPrefix(text, "(") {
		close := strings.IndexByte(text, ')')
		if close < 0 {
			d.err = "unclosed '(' in argument list"
			return d, true
		}
		if err := d.parseArgs(text[1:close]); err != "" {
			d.err = err
			return d, true
		}
		text = text[close+1:]
	}
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		d.err = fmt.Sprintf("unexpected %q after directive name", text[:1])
		return d, true
	}
	d.reason = strings.TrimSpace(text)
	return d, true
}

// parseArgs decodes the comma-separated argument list between parens.
func (d *directive) parseArgs(inner string) string {
	for _, item := range strings.Split(inner, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return "empty argument in list"
		}
		if k, v, ok := strings.Cut(item, "="); ok {
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !isIdent(k) {
				return fmt.Sprintf("bad argument key %q", k)
			}
			if !isIdentList(v) {
				return fmt.Sprintf("bad value %q for key %q (identifier or '+'-joined list)", v, k)
			}
			if d.kv == nil {
				d.kv = make(map[string]string)
			}
			if _, dup := d.kv[k]; dup {
				return fmt.Sprintf("duplicate key %q", k)
			}
			d.kv[k] = v
		} else {
			if !isIdent(item) {
				return fmt.Sprintf("bad positional argument %q", item)
			}
			d.args = append(d.args, item)
		}
	}
	return ""
}

// at returns the directive of the given name covering pos: on pos's own
// line (a trailing comment) or on the line immediately above it.
// Malformed directives never match — a waiver with a grammar error
// suppresses nothing (and is reported by the directive analyzer).
func (d *directives) at(pos token.Position, name string) *directive {
	m := d.byLine[pos.Filename]
	if m == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, dir := range m[line] {
			if dir.name == name && dir.err == "" {
				return dir
			}
		}
	}
	return nil
}

// commentGroupDirective returns the first well-formed directive of the
// given name in the group, or nil. Used for markers attached to
// declarations, where the directive may be any line of the doc comment.
func commentGroupDirective(cg *ast.CommentGroup, name string) *directive {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if dir, ok := parseDirective(c); ok && dir.name == name && dir.err == "" {
			return dir
		}
	}
	return nil
}

// fieldDirective returns the named marker on a struct field, from its doc
// comment or its trailing comment.
func fieldDirective(f *ast.Field, name string) *directive {
	if d := commentGroupDirective(f.Doc, name); d != nil {
		return d
	}
	return commentGroupDirective(f.Comment, name)
}

// funcIsHotpath reports whether fn carries the //demux:hotpath marker.
func funcIsHotpath(fn *ast.FuncDecl) bool {
	return commentGroupDirective(fn.Doc, "hotpath") != nil
}

// fieldIsAtomic reports whether a struct field carries the //demux:atomic
// marker, in its doc comment or as a trailing comment.
func fieldIsAtomic(f *ast.Field) bool { return fieldDirective(f, "atomic") != nil }
