package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestRepoIsClean runs the default analyzer suite — all nine, including
// the concurrency-contract analyzers and stalewaiver — over every
// package in this module and asserts zero findings: the invariants the
// analyzers enforce must actually hold in the tree that ships them, and
// every waiver in the tree must still be earning its keep.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "tcpdemux")
	for _, pkg := range modulePackages(t, root) {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		diags, err := Run(p, Default())
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestRepoIsCleanUnderRaceTag repeats the repo-clean pin with the race
// build tag set, so the file set the analyzers see agrees with what
// `make race` compiles. Only packages that actually contain race-tagged
// files differ; today none do, and this test keeps the loader honest for
// the day one appears.
func TestRepoIsCleanUnderRaceTag(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "tcpdemux")
	loader.Tags = []string{"race"}
	for _, pkg := range modulePackages(t, root) {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("loading %s with race tag: %v", pkg, err)
		}
		diags, err := Run(p, Default())
		if err != nil {
			t.Fatalf("analyzing %s with race tag: %v", pkg, err)
		}
		for _, d := range diags {
			t.Errorf("race tag: %s", d)
		}
	}
}

// modulePackages lists the import paths of every buildable package under
// root, skipping only testdata and build-output directories — the same
// surface `make lint` covers, examples included.
func modulePackages(t *testing.T, root string) []string {
	t.Helper()
	var pkgs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "bin" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				pkgs = append(pkgs, "tcpdemux")
			} else {
				pkgs = append(pkgs, "tcpdemux/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(pkgs)
	if len(pkgs) == 0 {
		t.Fatal("found no packages under the module root")
	}
	return pkgs
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
