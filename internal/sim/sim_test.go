package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tt := range times {
		tt := tt
		if _, err := s.At(tt, func(now float64) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 || s.Now() != 5 {
		t.Fatalf("ran %d events, clock %v", len(got), s.Now())
	}
}

func TestTieBreakByInsertionOrder(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(1.0, func(float64) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order violated: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Sim
	var secondAt float64
	if _, err := s.At(2, func(now float64) {
		if _, err := s.After(3, func(n float64) { secondAt = n }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if secondAt != 5 {
		t.Fatalf("chained event at %v, want 5", secondAt)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	var s Sim
	if _, err := s.At(5, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, err := s.At(1, func(float64) {}); err != ErrTimeTravel {
		t.Fatalf("err = %v", err)
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	ran := false
	h, err := s.At(1, func(float64) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	h.Cancel() // double-cancel is fine
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if s.Processed() != 0 {
		t.Fatal("canceled event counted as processed")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var s Sim
	var ran []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		if _, err := s.At(tt, func(now float64) { ran = append(ran, now) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(3)
	if len(ran) != 3 {
		t.Fatalf("ran %d events by deadline 3", len(ran))
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.RunUntil(10)
	if len(ran) != 5 || s.Now() != 10 {
		t.Fatalf("after second run: %d events, clock %v", len(ran), s.Now())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	var s Sim
	s.RunUntil(7)
	if s.Now() != 7 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunCount(t *testing.T) {
	var s Sim
	count := 0
	// Self-rescheduling event: would run forever under Run().
	var tick func(float64)
	tick = func(float64) {
		count++
		if _, err := s.After(1, tick); err != nil {
			t.Error(err)
		}
	}
	if _, err := s.At(0, tick); err != nil {
		t.Fatal(err)
	}
	if ran := s.RunCount(100); ran != 100 || count != 100 {
		t.Fatalf("ran=%d count=%d", ran, count)
	}
}

func TestProcessedCount(t *testing.T) {
	var s Sim
	for i := 0; i < 20; i++ {
		if _, err := s.At(float64(i), func(float64) {}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if s.Processed() != 20 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestQuickOrdering(t *testing.T) {
	// Whatever times are scheduled (made non-negative), execution must be
	// sorted and complete.
	f := func(raw []float64) bool {
		var s Sim
		want := 0
		for _, r := range raw {
			tt := r
			if tt < 0 {
				tt = -tt
			}
			if tt != tt { // NaN
				continue
			}
			if _, err := s.At(tt, func(float64) {}); err != nil {
				return false
			}
			want++
		}
		var last float64 = -1
		ok := true
		// Re-schedule checker events interleaved? Simpler: verify count and
		// monotone clock by stepping manually.
		for s.step() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}
		return ok && int(s.Processed()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	var s Sim
	for i := 0; i < b.N; i++ {
		if _, err := s.After(float64(i%100), func(float64) {}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}
