// Package sim is a small discrete-event simulation kernel: a virtual clock
// and a binary-heap event queue. The TPC/A and packet-train workloads
// schedule packet arrivals on it and the demultiplexers under test are
// exercised by the event handlers.
//
// Determinism: ties in event time are broken by insertion order, so a run
// is fully reproducible given the workload's RNG seed.
package sim

import (
	"container/heap"
	"errors"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now float64)

// item is a scheduled event.
type item struct {
	at   float64
	seq  uint64 // insertion order, breaks time ties deterministically
	run  Event
	idx  int
	dead bool
}

// Handle cancels a scheduled event.
type Handle struct{ it *item }

// Cancel prevents the event from running. Canceling an already-run or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

// eventHeap orders items by (time, sequence).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// ErrTimeTravel is returned when an event is scheduled before the current
// virtual time.
var ErrTimeTravel = errors.New("sim: cannot schedule event in the past")

// Sim is the simulation kernel. The zero value is ready to use at time 0.
type Sim struct {
	now    float64
	events eventHeap
	seq    uint64
	ran    uint64
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events that have run.
func (s *Sim) Processed() uint64 { return s.ran }

// Pending returns the number of events currently scheduled (canceled
// events may still be counted until they surface).
func (s *Sim) Pending() int { return len(s.events) }

// At schedules ev to run at absolute virtual time t.
func (s *Sim) At(t float64, ev Event) (Handle, error) {
	if t < s.now {
		return Handle{}, ErrTimeTravel
	}
	it := &item{at: t, seq: s.seq, run: ev}
	s.seq++
	heap.Push(&s.events, it)
	return Handle{it}, nil
}

// After schedules ev to run delay seconds from now.
func (s *Sim) After(delay float64, ev Event) (Handle, error) {
	return s.At(s.now+delay, ev)
}

// step runs the earliest pending event. It reports whether any event ran.
func (s *Sim) step() bool {
	for len(s.events) > 0 {
		it := heap.Pop(&s.events).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		it.run(s.now)
		s.ran++
		return true
	}
	return false
}

// RunUntil processes events in time order until the queue empties or the
// next event would be after deadline. The clock is left at the last event
// processed (or deadline, if any event remained beyond it).
func (s *Sim) RunUntil(deadline float64) {
	for len(s.events) > 0 {
		// Peek: find the earliest live event.
		if s.events[0].dead {
			heap.Pop(&s.events)
			continue
		}
		if s.events[0].at > deadline {
			s.now = deadline
			return
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run processes all events until the queue is empty, leaving the clock at
// the time of the last event run.
func (s *Sim) Run() {
	for s.step() {
	}
}

// RunCount processes at most n events, returning how many ran. A safety
// valve for workloads that reschedule themselves forever.
func (s *Sim) RunCount(n uint64) uint64 {
	var ran uint64
	for ran < n && s.step() {
		ran++
	}
	return ran
}
