// Package rng provides a deterministic, seedable pseudo-random number
// generator and the probability distributions used by the TPC/A workload
// model: exponential, truncated exponential, uniform, and deterministic
// (degenerate) think-time laws.
//
// The simulator needs bit-for-bit reproducible runs across Go releases, so
// the generator is implemented here (xoshiro256**) rather than delegated to
// math/rand, whose default source has changed between releases. The
// implementation follows Blackman & Vigna's public-domain reference.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator. It has a period
// of 2^256-1, passes BigCrush, and is cheap enough (4 xor/rotate ops per
// draw) to disappear inside a discrete-event simulation.
//
// The zero value is not a valid generator; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single 64-bit seed. The four words of
// internal state are expanded from the seed with splitmix64, as recommended
// by the xoshiro authors, so that even seeds 0 and 1 produce uncorrelated
// streams.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator to the stream identified by seed.
func (s *Source) Seed(seed uint64) {
	// splitmix64 expansion; guarantees the all-zero state cannot occur.
	for i := range s.s {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17

	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)

	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids the modulo bias without
// a division in the common case.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	v := s.Uint64()
	// Fast path: for n far below 2^64 the bias of a plain multiply-shift is
	// at most n/2^64; reject to make it exact.
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo). Implemented
// manually so the package has no dependency beyond math.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Exp returns an exponentially distributed value with the given mean
// (i.e. rate 1/mean). It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	// Inverse-CDF method. 1-U is in (0,1], so Log never sees zero.
	return -mean * math.Log(1-s.Float64())
}

// TruncExp returns a value from a truncated negative-exponential
// distribution: exponential with the given mean, redrawn until the value is
// at most max. This matches the TPC/A think-time rule, which requires the
// distribution's maximum to be at least ten times its mean; values above
// the cap are resampled. With max = 10*mean only ~0.005% of draws repeat,
// matching the paper's observation that truncation is negligible.
func (s *Source) TruncExp(mean, max float64) float64 {
	if max <= 0 || mean <= 0 {
		panic("rng: TruncExp with non-positive parameter")
	}
	for {
		v := s.Exp(mean)
		if v <= max {
			return v
		}
	}
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the polar Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements by repeatedly calling swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Dist is a distribution of non-negative durations (in seconds). The TPC/A
// driver draws think times from a Dist so that the exponential law of the
// benchmark and the deterministic law of the point-of-sale polling scenario
// (paper §3.2) share one code path.
type Dist interface {
	// Draw returns the next sample using src for randomness.
	Draw(src *Source) float64
	// Mean returns the distribution's theoretical mean.
	Mean() float64
}

// ExpDist is an exponential distribution with the given mean.
type ExpDist struct{ M float64 }

// Draw implements Dist.
func (d ExpDist) Draw(src *Source) float64 { return src.Exp(d.M) }

// Mean implements Dist.
func (d ExpDist) Mean() float64 { return d.M }

// TruncExpDist is the TPC/A truncated negative-exponential law: exponential
// with mean M, resampled above Max.
type TruncExpDist struct {
	M   float64
	Max float64
}

// Draw implements Dist.
func (d TruncExpDist) Draw(src *Source) float64 { return src.TruncExp(d.M, d.Max) }

// Mean implements Dist. The mean of the resampled distribution is
// M - Max*q/(1-q) where q = e^{-Max/M} is the rejected tail mass; for the
// TPC/A cap of 10 means this differs from M by under 0.05%.
func (d TruncExpDist) Mean() float64 {
	q := math.Exp(-d.Max / d.M)
	return d.M - d.Max*q/(1-q)
}

// ConstDist always returns V: the deterministic think time of a central
// server polling its clients (paper §3.2, point-of-sale terminals).
type ConstDist struct{ V float64 }

// Draw implements Dist.
func (d ConstDist) Draw(*Source) float64 { return d.V }

// Mean implements Dist.
func (d ConstDist) Mean() float64 { return d.V }

// UniformDist is uniform on [Lo, Hi).
type UniformDist struct{ Lo, Hi float64 }

// Draw implements Dist.
func (d UniformDist) Draw(src *Source) float64 { return d.Lo + (d.Hi-d.Lo)*src.Float64() }

// Mean implements Dist.
func (d UniformDist) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// MixtureDist draws from one of several component distributions chosen by
// weight — heterogeneous user populations (e.g. a fast-typist pool mixed
// with occasional users) that the TPC/A scaling rules permit as long as
// the aggregate think-time mean stays above ten seconds.
type MixtureDist struct {
	Components []Dist
	Weights    []float64
}

// NewMixture builds a mixture; weights need not be normalized. It panics
// if the slices disagree in length, are empty, or the weights are not all
// positive.
func NewMixture(components []Dist, weights []float64) MixtureDist {
	if len(components) == 0 || len(components) != len(weights) {
		panic("rng: mixture needs matching non-empty components and weights")
	}
	for _, w := range weights {
		if w <= 0 {
			panic("rng: mixture weights must be positive")
		}
	}
	return MixtureDist{Components: components, Weights: weights}
}

// Draw implements Dist.
func (d MixtureDist) Draw(src *Source) float64 {
	total := 0.0
	for _, w := range d.Weights {
		total += w
	}
	x := src.Float64() * total
	for i, w := range d.Weights {
		if x < w || i == len(d.Weights)-1 {
			return d.Components[i].Draw(src)
		}
		x -= w
	}
	return d.Components[len(d.Components)-1].Draw(src)
}

// Mean implements Dist: the weighted average of component means.
func (d MixtureDist) Mean() float64 {
	total, sum := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		sum += w * d.Components[i].Mean()
	}
	return sum / total
}
