package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a := New(0)
	b := New(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 0 and 1 collided on %d of 1000 draws", same)
	}
}

func TestSeedReset(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if v := s.Uint64(); v != first[i] {
			t.Fatalf("after reseed, draw %d: got %d want %d", i, v, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(9)
	const n, draws = 10, 1000000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Quick(t *testing.T) {
	// Cross-check against 32x32 multiplication identity:
	// mul64(x, y) low word must equal x*y (wrapping).
	f := func(x, y uint64) bool {
		_, lo := mul64(x, y)
		return lo == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const mean, n = 10.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.15 {
		t.Fatalf("exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpMemoryless(t *testing.T) {
	// P(X > s+t | X > s) should equal P(X > t). Estimate both sides.
	s := New(17)
	const mean = 1.0
	var condCount, condTotal, baseCount, baseTotal int
	for i := 0; i < 400000; i++ {
		v := s.Exp(mean)
		baseTotal++
		if v > 0.5 {
			baseCount++
		}
		if v > 1.0 {
			condTotal++
			if v > 1.5 {
				condCount++
			}
		}
	}
	base := float64(baseCount) / float64(baseTotal)
	cond := float64(condCount) / float64(condTotal)
	if math.Abs(base-cond) > 0.01 {
		t.Fatalf("memoryless violated: P(X>0.5)=%v, P(X>1.5|X>1)=%v", base, cond)
	}
}

func TestTruncExpCap(t *testing.T) {
	s := New(19)
	const mean, max = 10.0, 100.0
	for i := 0; i < 100000; i++ {
		v := s.TruncExp(mean, max)
		if v < 0 || v > max {
			t.Fatalf("TruncExp out of [0,%v]: %v", max, v)
		}
	}
}

func TestTruncExpMeanNearExp(t *testing.T) {
	// With cap = 10*mean the truncated mean should be within 0.5% of mean,
	// matching the paper's negligibility argument (§3).
	d := TruncExpDist{M: 10, Max: 100}
	if m := d.Mean(); math.Abs(m-10)/10 > 0.005 {
		t.Fatalf("truncated mean %v too far from 10", m)
	}
	s := New(23)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Draw(s)
	}
	if got := sum / n; math.Abs(got-d.Mean()) > 0.15 {
		t.Fatalf("sample mean %v vs theoretical %v", got, d.Mean())
	}
}

func TestNorm(t *testing.T) {
	s := New(29)
	const mean, sd, n = 5.0, 2.0, 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(mean, sd)
		sum += v
		sq += v * v
	}
	m := sum / n
	v := sq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("norm mean %v", m)
	}
	if math.Abs(math.Sqrt(v)-sd) > 0.05 {
		t.Fatalf("norm stddev %v", math.Sqrt(v))
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(37)
	const n = 50
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, n)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
	}
}

func TestDistMeans(t *testing.T) {
	cases := []struct {
		d    Dist
		want float64
	}{
		{ExpDist{M: 10}, 10},
		{ConstDist{V: 3}, 3},
		{UniformDist{Lo: 2, Hi: 4}, 3},
	}
	for _, c := range cases {
		if got := c.d.Mean(); got != c.want {
			t.Errorf("%T mean = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestConstDistDraw(t *testing.T) {
	d := ConstDist{V: 1.5}
	s := New(41)
	for i := 0; i < 10; i++ {
		if v := d.Draw(s); v != 1.5 {
			t.Fatalf("ConstDist drew %v", v)
		}
	}
}

func TestUniformDistRange(t *testing.T) {
	d := UniformDist{Lo: 2, Hi: 4}
	s := New(43)
	for i := 0; i < 10000; i++ {
		v := d.Draw(s)
		if v < 2 || v >= 4 {
			t.Fatalf("uniform draw %v out of [2,4)", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Exp(10)
	}
	_ = sink
}

func TestMixtureDist(t *testing.T) {
	m := NewMixture(
		[]Dist{ConstDist{V: 2}, ConstDist{V: 10}},
		[]float64{1, 3},
	)
	if got := m.Mean(); got != 8 {
		t.Fatalf("mixture mean = %v, want 8", got)
	}
	src := New(51)
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Draw(src)]++
	}
	// Weight 1:3 split.
	if frac := float64(counts[2]) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("component fraction %v, want 0.25", frac)
	}
	sampleMean := (2*float64(counts[2]) + 10*float64(counts[10])) / n
	if math.Abs(sampleMean-8) > 0.1 {
		t.Fatalf("sample mean %v", sampleMean)
	}
}

func TestMixtureValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Dist{ConstDist{V: 1}}, []float64{1, 2}) },
		func() { NewMixture([]Dist{ConstDist{V: 1}}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMixtureExponentialComponents(t *testing.T) {
	// 80% regular users (mean 10 s), 20% heads-down operators (mean 4 s):
	// aggregate mean 8.8 s.
	m := NewMixture(
		[]Dist{ExpDist{M: 10}, ExpDist{M: 4}},
		[]float64{0.8, 0.2},
	)
	if math.Abs(m.Mean()-8.8) > 1e-12 {
		t.Fatalf("mean = %v", m.Mean())
	}
	src := New(53)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += m.Draw(src)
	}
	if got := sum / n; math.Abs(got-8.8) > 0.1 {
		t.Fatalf("sample mean = %v", got)
	}
}
