package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets. Run as ordinary seed-corpus tests under go test;
// run with -fuzz=FuzzParseSegment for continuous fuzzing.

// FuzzParseSegment asserts the parse-rebuild-reparse invariant: anything
// the parser accepts must rebuild into a frame the parser accepts again
// with identical header fields and payload.
func FuzzParseSegment(f *testing.F) {
	seed, err := BuildSegment(sampleIP(), sampleTCP(), []byte("seed payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x45}, 40))
	syn := sampleTCP()
	syn.Flags = FlagSYN
	syn.Options = []TCPOption{MSSOption(1460)}
	seed2, err := BuildSegment(sampleIP(), syn, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed2)

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ParseSegment(data)
		if err != nil {
			return // rejection is always acceptable
		}
		rebuilt, err := BuildSegment(seg.IP, seg.TCP, seg.Payload)
		if err != nil {
			t.Fatalf("accepted frame failed to rebuild: %v", err)
		}
		again, err := ParseSegment(rebuilt)
		if err != nil {
			t.Fatalf("rebuilt frame rejected: %v", err)
		}
		if again.Tuple() != seg.Tuple() {
			t.Fatalf("tuple changed: %v vs %v", again.Tuple(), seg.Tuple())
		}
		if again.TCP.Seq != seg.TCP.Seq || again.TCP.Ack != seg.TCP.Ack ||
			again.TCP.Flags != seg.TCP.Flags {
			t.Fatal("TCP header fields changed across rebuild")
		}
		if !bytes.Equal(again.Payload, seg.Payload) {
			t.Fatal("payload changed across rebuild")
		}
	})
}

// FuzzExtractTuple asserts the fast path agrees with the full parser on
// every frame the full parser accepts.
func FuzzExtractTuple(f *testing.F) {
	seed, err := BuildSegment(sampleIP(), sampleTCP(), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ParseSegment(data)
		if err != nil {
			_, _ = ExtractTuple(data) // must not panic either way
			return
		}
		fast, err := ExtractTuple(data)
		if err != nil {
			t.Fatalf("fast path rejected a frame the parser accepted: %v", err)
		}
		if fast != seg.Tuple() {
			t.Fatalf("fast path tuple %v vs parsed %v", fast, seg.Tuple())
		}
	})
}
