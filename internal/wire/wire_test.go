package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// --- checksum ---------------------------------------------------------------

func TestChecksumRFC1071Example(t *testing.T) {
	// The worked example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5,
	// 0xf6f7 sum to 0xddf2 with carries; checksum is its complement 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd byte is padded with zero on the right.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length padding wrong")
	}
}

func TestChecksumEmpty(t *testing.T) {
	if Checksum(nil) != 0xffff {
		t.Fatal("empty checksum should be ^0 = 0xffff")
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// Appending the checksum to the data makes the whole verify to 0.
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		cs := Checksum(data)
		withCS := append(append([]byte(nil), data...), byte(cs>>8), byte(cs))
		// One's-complement residue of data+checksum is 0 (i.e. Checksum
		// returns 0 or 0xffff, both representations of one's-complement 0).
		got := Checksum(withCS)
		return got == 0 || got == 0xffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPChecksumRoundTrip(t *testing.T) {
	src, dst := MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2)
	seg := make([]byte, TCPHeaderLen+5)
	for i := range seg {
		seg[i] = byte(i * 7)
	}
	seg[16], seg[17] = 0, 0 // zero checksum field
	cs := TCPChecksum(src, dst, seg)
	seg[16], seg[17] = byte(cs>>8), byte(cs)
	if !VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("checksum did not verify")
	}
	seg[4] ^= 0x40 // corrupt a sequence byte
	if VerifyTCPChecksum(src, dst, seg) {
		t.Fatal("corruption not detected")
	}
}

// --- IPv4 -------------------------------------------------------------------

func sampleIP() IPv4Header {
	return IPv4Header{
		TOS: 0x10, ID: 0x1234, Flags: 0x2, FragOff: 0,
		TTL: 64, Protocol: protoTCP,
		Src: MakeAddr(192, 168, 1, 10), Dst: MakeAddr(10, 0, 0, 1),
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := sampleIP()
	h.TotalLen = 40
	buf, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != IPv4HeaderLen {
		t.Fatalf("marshaled %d bytes", len(buf))
	}
	// Pad to TotalLen so Unmarshal's length check passes.
	buf = append(buf, make([]byte, 20)...)
	var g IPv4Header
	n, err := g.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv4HeaderLen {
		t.Fatalf("consumed %d", n)
	}
	if g.TOS != h.TOS || g.ID != h.ID || g.Flags != h.Flags || g.TTL != h.TTL ||
		g.Protocol != h.Protocol || g.Src != h.Src || g.Dst != h.Dst || g.TotalLen != 40 {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
}

func TestIPv4Options(t *testing.T) {
	h := sampleIP()
	h.Options = []byte{7, 4, 0, 0} // record-route-ish, padded to 4
	h.TotalLen = 24
	buf, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 24 {
		t.Fatalf("header with options is %d bytes", len(buf))
	}
	var g IPv4Header
	n, err := g.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 || !bytes.Equal(g.Options, h.Options) {
		t.Fatalf("options lost: %v", g.Options)
	}
}

func TestIPv4BadOptionLength(t *testing.T) {
	h := sampleIP()
	h.Options = []byte{1, 2, 3} // not a multiple of 4
	if _, err := h.Marshal(nil); !errors.Is(err, ErrIPv4BadIHL) {
		t.Fatalf("err = %v", err)
	}
}

func TestIPv4UnmarshalErrors(t *testing.T) {
	h := sampleIP()
	h.TotalLen = IPv4HeaderLen
	good, _ := h.Marshal(nil)

	if _, err := new(IPv4Header).Unmarshal(good[:10]); !errors.Is(err, ErrIPv4Truncated) {
		t.Errorf("truncated: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 6<<4 | 5 // IPv6 version nibble
	if _, err := new(IPv4Header).Unmarshal(bad); !errors.Is(err, ErrIPv4Version) {
		t.Errorf("version: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[0] = 4<<4 | 3 // IHL below 5
	if _, err := new(IPv4Header).Unmarshal(bad); !errors.Is(err, ErrIPv4BadIHL) {
		t.Errorf("ihl: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2], bad[3] = 0xff, 0xff // total length beyond buffer
	if _, err := new(IPv4Header).Unmarshal(bad); !errors.Is(err, ErrIPv4BadLength) {
		t.Errorf("length: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[8]++ // flip TTL, breaking the checksum
	if _, err := new(IPv4Header).Unmarshal(bad); !errors.Is(err, ErrIPv4BadChecksum) {
		t.Errorf("checksum: %v", err)
	}
}

func TestAddrString(t *testing.T) {
	if s := MakeAddr(192, 168, 0, 1).String(); s != "192.168.0.1" {
		t.Fatalf("addr string = %q", s)
	}
}

// --- TCP --------------------------------------------------------------------

func sampleTCP() TCPHeader {
	return TCPHeader{
		SrcPort: 49152, DstPort: 8080,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagACK | FlagPSH, Window: 65535, Urgent: 0,
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := sampleTCP()
	buf, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var g TCPHeader
	n, err := g.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != TCPHeaderLen {
		t.Fatalf("consumed %d", n)
	}
	if g.SrcPort != h.SrcPort || g.DstPort != h.DstPort || g.Seq != h.Seq ||
		g.Ack != h.Ack || g.Flags != h.Flags || g.Window != h.Window {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
}

func TestTCPOptionsRoundTrip(t *testing.T) {
	h := sampleTCP()
	h.Flags = FlagSYN
	h.Options = []TCPOption{
		MSSOption(1460),
		{Kind: OptWindowScale, Data: []byte{7}},
		{Kind: OptSACKPermit},
	}
	buf, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)%4 != 0 {
		t.Fatalf("header length %d not padded", len(buf))
	}
	var g TCPHeader
	if _, err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if len(g.Options) != 3 {
		t.Fatalf("got %d options", len(g.Options))
	}
	if g.Options[0].Kind != OptMSS || getU16(g.Options[0].Data) != 1460 {
		t.Fatalf("MSS option wrong: %+v", g.Options[0])
	}
	if g.Options[1].Kind != OptWindowScale || g.Options[1].Data[0] != 7 {
		t.Fatalf("wscale option wrong: %+v", g.Options[1])
	}
	if g.Options[2].Kind != OptSACKPermit || len(g.Options[2].Data) != 0 {
		t.Fatalf("sack-permit option wrong: %+v", g.Options[2])
	}
}

func TestTCPOptionsWithNOPPadding(t *testing.T) {
	// Hand-build a header using NOPs between options, as real stacks emit.
	raw := make([]byte, 24)
	putU16(raw[0:], 1000)
	putU16(raw[2:], 2000)
	raw[12] = 6 << 4 // 24-byte header
	raw[20] = OptNOP
	raw[21] = OptNOP
	raw[22] = OptWindowScale
	raw[23] = 0 // malformed: length 0
	var g TCPHeader
	if _, err := g.Unmarshal(raw); !errors.Is(err, ErrTCPBadOptions) {
		t.Fatalf("expected bad options, got %v", err)
	}
	raw[22] = OptNOP
	raw[23] = OptEnd
	if _, err := g.Unmarshal(raw); err != nil {
		t.Fatalf("NOP/End padding should parse: %v", err)
	}
	if len(g.Options) != 0 {
		t.Fatalf("padding produced options: %v", g.Options)
	}
}

func TestTCPRejectsOversizeOptions(t *testing.T) {
	h := sampleTCP()
	h.Options = []TCPOption{{Kind: 200, Data: make([]byte, 50)}}
	if _, err := h.Marshal(nil); !errors.Is(err, ErrTCPBadOffset) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRejectsExplicitPaddingKinds(t *testing.T) {
	h := sampleTCP()
	h.Options = []TCPOption{{Kind: OptNOP}}
	if _, err := h.Marshal(nil); !errors.Is(err, ErrTCPBadOptions) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnmarshalErrors(t *testing.T) {
	if _, err := new(TCPHeader).Unmarshal(make([]byte, 10)); !errors.Is(err, ErrTCPTruncated) {
		t.Errorf("truncated: %v", err)
	}
	raw := make([]byte, TCPHeaderLen)
	raw[12] = 4 << 4 // offset below 5
	if _, err := new(TCPHeader).Unmarshal(raw); !errors.Is(err, ErrTCPBadOffset) {
		t.Errorf("offset: %v", err)
	}
	raw[12] = 10 << 4 // offset says 40 bytes, buffer has 20
	if _, err := new(TCPHeader).Unmarshal(raw); !errors.Is(err, ErrTCPTruncated) {
		t.Errorf("options truncated: %v", err)
	}
}

func TestFlagNames(t *testing.T) {
	if s := FlagNames(FlagSYN | FlagACK); s != "SYN|ACK" {
		t.Fatalf("flags = %q", s)
	}
	if s := FlagNames(0); s != "none" {
		t.Fatalf("zero flags = %q", s)
	}
}

// --- segments ----------------------------------------------------------------

func TestBuildParseSegment(t *testing.T) {
	payload := []byte("SELECT balance FROM accounts WHERE id = 42")
	frame, err := BuildSegment(sampleIP(), sampleTCP(), payload)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ParseSegment(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seg.Payload, payload) {
		t.Fatalf("payload mismatch: %q", seg.Payload)
	}
	if seg.TCP.SrcPort != 49152 || seg.IP.Dst != MakeAddr(10, 0, 0, 1) {
		t.Fatal("header fields mismatch")
	}
}

func TestParseSegmentDetectsCorruption(t *testing.T) {
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), []byte("x"))
	frame[len(frame)-1] ^= 0xff
	if _, err := ParseSegment(frame); !errors.Is(err, ErrTCPBadChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseSegmentRejectsNonTCP(t *testing.T) {
	ip := sampleIP()
	ip.TotalLen = IPv4HeaderLen
	buf, _ := ip.Marshal(nil)
	buf[9] = 17 // UDP
	// Re-fix header checksum after the edit.
	buf[10], buf[11] = 0, 0
	cs := Checksum(buf)
	putU16(buf[10:], cs)
	if _, err := ParseSegment(buf); !errors.Is(err, ErrNotTCP) {
		t.Fatalf("err = %v", err)
	}
}

func TestSegmentTuple(t *testing.T) {
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), nil)
	seg, err := ParseSegment(frame)
	if err != nil {
		t.Fatal(err)
	}
	tu := seg.Tuple()
	want := Tuple{
		SrcAddr: MakeAddr(192, 168, 1, 10), DstAddr: MakeAddr(10, 0, 0, 1),
		SrcPort: 49152, DstPort: 8080,
	}
	if tu != want {
		t.Fatalf("tuple = %v", tu)
	}
	if tu.Reverse().Reverse() != tu {
		t.Fatal("double reverse should be identity")
	}
}

func TestExtractTupleMatchesFullParse(t *testing.T) {
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), []byte("hello"))
	fast, err := ExtractTuple(frame)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := ParseSegment(frame)
	if fast != seg.Tuple() {
		t.Fatalf("fast %v vs full %v", fast, seg.Tuple())
	}
}

func TestExtractTupleWithIPOptions(t *testing.T) {
	ip := sampleIP()
	ip.Options = []byte{7, 4, 0, 0}
	frame, err := BuildSegment(ip, sampleTCP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ExtractTuple(frame)
	if err != nil {
		t.Fatal(err)
	}
	if fast.SrcPort != 49152 || fast.DstPort != 8080 {
		t.Fatalf("ports misread with IP options: %v", fast)
	}
}

func TestExtractTupleErrors(t *testing.T) {
	if _, err := ExtractTuple(make([]byte, 8)); !errors.Is(err, ErrIPv4Truncated) {
		t.Errorf("short: %v", err)
	}
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), nil)
	bad := append([]byte(nil), frame...)
	bad[0] = 0x65
	if _, err := ExtractTuple(bad); !errors.Is(err, ErrIPv4Version) {
		t.Errorf("version: %v", err)
	}
	bad = append([]byte(nil), frame...)
	bad[9] = 17
	if _, err := ExtractTuple(bad); !errors.Is(err, ErrNotTCP) {
		t.Errorf("proto: %v", err)
	}
	if _, err := ExtractTuple(frame[:IPv4HeaderLen+2]); !errors.Is(err, ErrTCPTruncated) {
		t.Errorf("tcp short: %v", err)
	}
}

func TestExtractTupleNoAlloc(t *testing.T) {
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), nil)
	n := testing.AllocsPerRun(100, func() {
		if _, err := ExtractTuple(frame); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("ExtractTuple allocates %v times per run", n)
	}
}

func TestSegmentRoundTripQuick(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, sport, dport uint16, seq, ack uint32, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		ip := IPv4Header{TTL: 64, Src: srcIP, Dst: dstIP}
		tcp := TCPHeader{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: FlagACK}
		frame, err := BuildSegment(ip, tcp, payload)
		if err != nil {
			return false
		}
		seg, err := ParseSegment(frame)
		if err != nil {
			return false
		}
		return seg.TCP.SrcPort == sport && seg.TCP.DstPort == dport &&
			seg.TCP.Seq == seq && seg.TCP.Ack == ack &&
			seg.IP.Src == Addr(srcIP) && seg.IP.Dst == Addr(dstIP) &&
			bytes.Equal(seg.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtractTuple(b *testing.B) {
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), make([]byte, 100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractTuple(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSegment(b *testing.B) {
	frame, _ := BuildSegment(sampleIP(), sampleTCP(), make([]byte, 100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSegment(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSegmentSummary(t *testing.T) {
	tcp := sampleTCP()
	tcp.Flags = FlagSYN
	tcp.Options = []TCPOption{MSSOption(1460), {Kind: OptWindowScale, Data: []byte{7}}, {Kind: OptSACKPermit}}
	frame, err := BuildSegment(sampleIP(), tcp, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ParseSegment(frame)
	if err != nil {
		t.Fatal(err)
	}
	got := seg.Summary()
	for _, want := range []string{
		"192.168.1.10:49152 > 10.0.0.1:8080", "Flags [SYN]",
		"mss 1460", "wscale 7", "sackOK", "length 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
	// Pure-ack form includes the ack number.
	tcp2 := sampleTCP()
	frame2, _ := BuildSegment(sampleIP(), tcp2, nil)
	seg2, _ := ParseSegment(frame2)
	if s := seg2.Summary(); !strings.Contains(s, "ack 16909060") {
		t.Errorf("ack missing from %q", s)
	}
}
