package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// padTo returns frame extended with filler bytes to n, the way a link
// layer pads a minimum-size frame.
func padTo(frame []byte, n int, fill byte) []byte {
	out := append([]byte(nil), frame...)
	for len(out) < n {
		out = append(out, fill)
	}
	return out
}

// TestUnmarshalAcceptsLinkLayerPadding: the header parser must treat
// bytes beyond TotalLen as link padding, not a length error, while still
// rejecting buffers shorter than TotalLen (truncation).
func TestUnmarshalAcceptsLinkLayerPadding(t *testing.T) {
	frame, err := BuildSegment(sampleIP(), sampleTCP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A 40-byte ACK padded to the 60-byte Ethernet minimum, with a
	// nonzero filler so any parser that overreads TotalLen trips.
	padded := padTo(frame, 60, 0xAA)

	var h IPv4Header
	n, err := h.Unmarshal(padded)
	if err != nil {
		t.Fatalf("padded frame rejected: %v", err)
	}
	if int(h.TotalLen) != len(frame) {
		t.Fatalf("TotalLen = %d, want %d (padding must not leak in)", h.TotalLen, len(frame))
	}
	if n != IPv4HeaderLen {
		t.Fatalf("header length = %d", n)
	}

	// Truncation stays fatal: fewer bytes than TotalLen claims.
	if _, err := h.Unmarshal(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestParseSegmentPaddedEqualsUnpadded: a padded frame must parse to the
// exact same segment as its unpadded original — same payload, same
// checksum verdict, padding invisible.
func TestParseSegmentPaddedEqualsUnpadded(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte("q"), []byte("tiny req")} {
		frame, err := BuildSegment(sampleIP(), sampleTCP(), payload)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ParseSegment(frame)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseSegment(padTo(frame, 60, 0xFF))
		if err != nil {
			t.Fatalf("payload %q: padded frame rejected: %v", payload, err)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("payload %q: padded parse = %q", payload, got.Payload)
		}
		if !reflect.DeepEqual(got.TCP, want.TCP) || !reflect.DeepEqual(got.IP, want.IP) {
			t.Fatalf("payload %q: headers diverge with padding", payload)
		}
	}
}

// TestExtractTuplePaddedFrame: the interrupt-path tuple extraction must
// also be padding-blind.
func TestExtractTuplePaddedFrame(t *testing.T) {
	frame, err := BuildSegment(sampleIP(), sampleTCP(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExtractTuple(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractTuple(padTo(frame, 60, 0x55))
	if err != nil {
		t.Fatalf("padded frame rejected: %v", err)
	}
	if got != want {
		t.Fatalf("tuple = %+v, want %+v", got, want)
	}
}
