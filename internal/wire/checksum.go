// Package wire implements the IPv4 and TCP wire formats needed to drive the
// demultiplexer with real packet bytes: header parsing and serialization,
// the RFC 1071 Internet checksum, TCP options, and a zero-allocation fast
// path that extracts the demultiplexing key straight from a raw frame.
package wire

// Checksum computes the RFC 1071 Internet checksum of data: the one's
// complement of the one's-complement sum of the data viewed as big-endian
// 16-bit words, with an odd trailing byte padded with zero.
func Checksum(data []byte) uint16 {
	return finish(sum16(data, 0))
}

// sum16 adds data to an ongoing one's-complement accumulator. The
// accumulator is kept as uint32 and folded at the end, which is safe for
// any packet shorter than ~64 KiB of 0xffff words.
func sum16(data []byte, acc uint32) uint32 {
	for len(data) >= 2 {
		acc += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		acc += uint32(data[0]) << 8
	}
	return acc
}

// finish folds the 32-bit accumulator to 16 bits and complements it.
func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

// TCPChecksum computes the TCP checksum over the IPv4 pseudo-header
// (source, destination, protocol 6, TCP length) followed by the TCP segment
// (header plus payload). segment must have its checksum field zeroed or the
// result is the verification residue rather than the correct checksum.
func TCPChecksum(src, dst [4]byte, segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = protoTCP
	pseudo[10] = byte(len(segment) >> 8)
	pseudo[11] = byte(len(segment))
	acc := sum16(pseudo[:], 0)
	acc = sum16(segment, acc)
	return finish(acc)
}

// VerifyTCPChecksum reports whether segment (with its embedded checksum
// field intact) checksums to zero over the pseudo-header, i.e. is valid.
func VerifyTCPChecksum(src, dst [4]byte, segment []byte) bool {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = protoTCP
	pseudo[10] = byte(len(segment) >> 8)
	pseudo[11] = byte(len(segment))
	acc := sum16(pseudo[:], 0)
	acc = sum16(segment, acc)
	return finish(acc) == 0
}
