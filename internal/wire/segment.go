package wire

import (
	"errors"
	"fmt"
)

// Errors reported by the segment layer.
var (
	// ErrNotTCP is returned when a frame's IP protocol field is not TCP.
	ErrNotTCP = errors.New("wire: IP protocol is not TCP")
	// ErrFragmented is returned for IP fragments: only a reassembled
	// datagram carries a complete TCP header, so fragments cannot be
	// demultiplexed directly (see the frag package).
	ErrFragmented = errors.New("wire: IP datagram is fragmented")
)

// Segment is a fully parsed IPv4/TCP packet.
type Segment struct {
	IP      IPv4Header
	TCP     TCPHeader
	Payload []byte
}

// Tuple is the 96-bit demultiplexing tuple the paper describes: the source
// and destination IP addresses and TCP ports of an inbound segment. It is
// comparable and allocation-free.
type Tuple struct {
	SrcAddr Addr
	DstAddr Addr
	SrcPort uint16
	DstPort uint16
}

// String renders the tuple as "src:port > dst:port".
func (t Tuple) String() string {
	return fmt.Sprintf("%s:%d > %s:%d", t.SrcAddr, t.SrcPort, t.DstAddr, t.DstPort)
}

// Reverse returns the tuple as seen from the opposite direction.
func (t Tuple) Reverse() Tuple {
	return Tuple{SrcAddr: t.DstAddr, DstAddr: t.SrcAddr, SrcPort: t.DstPort, DstPort: t.SrcPort}
}

// BuildSegment serializes an IPv4/TCP segment into a fresh buffer: it fills
// in the IP total length, protocol, and both checksums. The given headers
// are not modified.
func BuildSegment(ip IPv4Header, tcp TCPHeader, payload []byte) ([]byte, error) {
	tcpLen, err := tcp.HeaderLen()
	if err != nil {
		return nil, err
	}
	ip.Protocol = protoTCP
	ipLen := ip.HeaderLen()
	total := ipLen + tcpLen + len(payload)
	if total > 0xffff {
		return nil, ErrIPv4BadLength
	}
	ip.TotalLen = uint16(total)

	buf := make([]byte, 0, total)
	buf, err = ip.Marshal(buf)
	if err != nil {
		return nil, err
	}
	buf, err = tcp.Marshal(buf)
	if err != nil {
		return nil, err
	}
	buf = append(buf, payload...)
	seg := buf[ipLen:]
	cs := TCPChecksum(ip.Src, ip.Dst, seg)
	putU16(seg[16:], cs)
	return buf, nil
}

// ParseSegment parses and validates a raw IPv4/TCP frame, checking both
// checksums. The returned Segment's Payload aliases frame.
func ParseSegment(frame []byte) (*Segment, error) {
	var seg Segment
	n, err := seg.IP.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	if seg.IP.Protocol != protoTCP {
		return nil, ErrNotTCP
	}
	if seg.IP.IsFragment() {
		return nil, ErrFragmented
	}
	body := frame[n:seg.IP.TotalLen]
	if !VerifyTCPChecksum(seg.IP.Src, seg.IP.Dst, body) {
		return nil, ErrTCPBadChecksum
	}
	m, err := seg.TCP.Unmarshal(body)
	if err != nil {
		return nil, err
	}
	seg.Payload = body[m:]
	return &seg, nil
}

// Tuple returns the segment's demultiplexing tuple.
func (s *Segment) Tuple() Tuple {
	return Tuple{
		SrcAddr: s.IP.Src, DstAddr: s.IP.Dst,
		SrcPort: s.TCP.SrcPort, DstPort: s.TCP.DstPort,
	}
}

// ExtractTuple pulls the demultiplexing tuple out of a raw frame without
// fully parsing or validating it — the fast path a receive interrupt would
// take before PCB lookup. It validates only what it must to find the ports:
// version, IHL, protocol, and length. It performs no allocation.
func ExtractTuple(frame []byte) (Tuple, error) {
	var t Tuple
	if len(frame) < IPv4HeaderLen {
		return t, ErrIPv4Truncated
	}
	if frame[0]>>4 != ipv4Version {
		return t, ErrIPv4Version
	}
	hlen := int(frame[0]&0x0f) * 4
	if hlen < IPv4HeaderLen {
		return t, ErrIPv4BadIHL
	}
	if frame[9] != protoTCP {
		return t, ErrNotTCP
	}
	// A non-first fragment has payload bytes, not a TCP header, where the
	// ports would be read; a first fragment (MF set) is incomplete. Either
	// way the datagram must be reassembled before demultiplexing.
	if ff := getU16(frame[6:]); ff&(ipFlagMF<<13|0x1fff) != 0 {
		return t, ErrFragmented
	}
	if len(frame) < hlen+4 { // need at least the TCP port words
		return t, ErrTCPTruncated
	}
	copy(t.SrcAddr[:], frame[12:16])
	copy(t.DstAddr[:], frame[16:20])
	t.SrcPort = getU16(frame[hlen:])
	t.DstPort = getU16(frame[hlen+2:])
	return t, nil
}
