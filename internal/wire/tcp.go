package wire

import (
	"errors"
	"fmt"
)

// Structural constants for the TCP header.
const (
	// TCPHeaderLen is the length of a TCP header without options.
	TCPHeaderLen = 20
	// TCPMaxHeaderLen is the largest encodable TCP header (offset=15).
	TCPMaxHeaderLen = 60
)

// TCP header flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Errors reported by the TCP codec.
var (
	ErrTCPTruncated   = errors.New("wire: buffer shorter than TCP header")
	ErrTCPBadOffset   = errors.New("wire: TCP data offset field invalid")
	ErrTCPBadOptions  = errors.New("wire: TCP options malformed")
	ErrTCPBadChecksum = errors.New("wire: TCP checksum mismatch")
)

// TCPHeader is the parsed form of a TCP header.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
	Options []TCPOption
}

// TCP option kinds used by this repo.
const (
	OptEnd          = 0
	OptNOP          = 1
	OptMSS          = 2
	OptWindowScale  = 3
	OptSACKPermit   = 4
	OptTimestamps   = 8
	optMSSLen       = 4
	optWScaleLen    = 3
	optSACKPermLen  = 2
	optTimestampLen = 10
)

// TCPOption is a single TCP option in kind/data form. NOP and End are
// handled by the codec and never appear in the parsed list.
type TCPOption struct {
	Kind uint8
	Data []byte
}

// FlagNames renders the flag bits for diagnostics, e.g. "SYN|ACK".
func FlagNames(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

// optionsWireLen returns the padded wire length of the options.
func (h *TCPHeader) optionsWireLen() (int, error) {
	raw := 0
	for _, o := range h.Options {
		switch o.Kind {
		case OptEnd, OptNOP:
			return 0, fmt.Errorf("%w: explicit kind %d not allowed", ErrTCPBadOptions, o.Kind)
		default:
			raw += 2 + len(o.Data)
		}
	}
	padded := (raw + 3) &^ 3
	if TCPHeaderLen+padded > TCPMaxHeaderLen {
		return 0, ErrTCPBadOffset
	}
	return padded, nil
}

// HeaderLen returns the encoded header length in bytes, or an error if the
// options do not fit.
func (h *TCPHeader) HeaderLen() (int, error) {
	opts, err := h.optionsWireLen()
	if err != nil {
		return 0, err
	}
	return TCPHeaderLen + opts, nil
}

// Marshal appends the encoded header to buf and returns the extended slice.
// The checksum field is left zero; compute it with TCPChecksum over the
// full segment once the payload is appended.
func (h *TCPHeader) Marshal(buf []byte) ([]byte, error) {
	hlen, err := h.HeaderLen()
	if err != nil {
		return nil, err
	}
	start := len(buf)
	buf = append(buf, make([]byte, hlen)...)
	b := buf[start:]
	putU16(b[0:], h.SrcPort)
	putU16(b[2:], h.DstPort)
	putU32(b[4:], h.Seq)
	putU32(b[8:], h.Ack)
	b[12] = uint8(hlen/4) << 4
	b[13] = h.Flags
	putU16(b[14:], h.Window)
	putU16(b[18:], h.Urgent)
	p := b[TCPHeaderLen:]
	off := 0
	for _, o := range h.Options {
		p[off] = o.Kind
		p[off+1] = uint8(2 + len(o.Data))
		copy(p[off+2:], o.Data)
		off += 2 + len(o.Data)
	}
	// Remaining bytes are already zero = OptEnd padding.
	return buf, nil
}

// Unmarshal parses a TCP header from b, returning the header length
// consumed. Options are decoded into the Options slice; NOP and End-of-list
// padding is skipped.
func (h *TCPHeader) Unmarshal(b []byte) (int, error) {
	if len(b) < TCPHeaderLen {
		return 0, ErrTCPTruncated
	}
	hlen := int(b[12]>>4) * 4
	if hlen < TCPHeaderLen {
		return 0, ErrTCPBadOffset
	}
	if len(b) < hlen {
		return 0, ErrTCPTruncated
	}
	h.SrcPort = getU16(b[0:])
	h.DstPort = getU16(b[2:])
	h.Seq = getU32(b[4:])
	h.Ack = getU32(b[8:])
	h.Flags = b[13]
	h.Window = getU16(b[14:])
	h.Urgent = getU16(b[18:])
	h.Options = h.Options[:0]
	opts := b[TCPHeaderLen:hlen]
	for len(opts) > 0 {
		switch opts[0] {
		case OptEnd:
			opts = nil
		case OptNOP:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return 0, ErrTCPBadOptions
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return 0, ErrTCPBadOptions
			}
			h.Options = append(h.Options, TCPOption{
				Kind: opts[0],
				Data: append([]byte(nil), opts[2:olen]...),
			})
			opts = opts[olen:]
		}
	}
	return hlen, nil
}

// MSSOption builds a maximum-segment-size option.
func MSSOption(mss uint16) TCPOption {
	data := make([]byte, 2)
	putU16(data, mss)
	return TCPOption{Kind: OptMSS, Data: data}
}
