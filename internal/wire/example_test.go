package wire_test

import (
	"fmt"

	"tcpdemux/internal/wire"
)

// Build a TCP/IPv4 frame, then demultiplex-extract its tuple without a
// full parse — the receive fast path.
func ExampleBuildSegment() {
	frame, err := wire.BuildSegment(
		wire.IPv4Header{
			TTL: 64,
			Src: wire.MakeAddr(10, 1, 0, 5),
			Dst: wire.MakeAddr(10, 0, 0, 1),
		},
		wire.TCPHeader{
			SrcPort: 31005, DstPort: 1521,
			Seq: 1000, Ack: 2000,
			Flags: wire.FlagACK | wire.FlagPSH, Window: 65535,
		},
		[]byte("BEGIN TRANSACTION"),
	)
	if err != nil {
		panic(err)
	}
	tuple, err := wire.ExtractTuple(frame)
	if err != nil {
		panic(err)
	}
	fmt.Println(tuple)

	seg, err := wire.ParseSegment(frame)
	if err != nil {
		panic(err)
	}
	fmt.Println(seg.Summary())
	// Output:
	// 10.1.0.5:31005 > 10.0.0.1:1521
	// 10.1.0.5:31005 > 10.0.0.1:1521: Flags [PSH|ACK], seq 1000, ack 2000, win 65535, length 17
}
