package wire

import (
	"fmt"
	"strings"
)

// Summary renders a parsed segment as a one-line, tcpdump-flavoured
// description for logs and diagnostics:
//
//	10.1.0.5:31005 > 10.0.0.1:1521: Flags [PSH|ACK], seq 1000, ack 2000, win 65535, length 43
func (s *Segment) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d > %s:%d: Flags [%s], seq %d",
		s.IP.Src, s.TCP.SrcPort, s.IP.Dst, s.TCP.DstPort,
		FlagNames(s.TCP.Flags), s.TCP.Seq)
	if s.TCP.Flags&FlagACK != 0 {
		fmt.Fprintf(&b, ", ack %d", s.TCP.Ack)
	}
	fmt.Fprintf(&b, ", win %d", s.TCP.Window)
	if len(s.TCP.Options) > 0 {
		names := make([]string, len(s.TCP.Options))
		for i, o := range s.TCP.Options {
			names[i] = optionName(o)
		}
		fmt.Fprintf(&b, ", options [%s]", strings.Join(names, ","))
	}
	fmt.Fprintf(&b, ", length %d", len(s.Payload))
	return b.String()
}

// optionName renders one TCP option compactly.
func optionName(o TCPOption) string {
	switch o.Kind {
	case OptMSS:
		if len(o.Data) == 2 {
			return fmt.Sprintf("mss %d", getU16(o.Data))
		}
		return "mss"
	case OptWindowScale:
		if len(o.Data) == 1 {
			return fmt.Sprintf("wscale %d", o.Data[0])
		}
		return "wscale"
	case OptSACKPermit:
		return "sackOK"
	case OptTimestamps:
		return "TS"
	default:
		return fmt.Sprintf("opt-%d", o.Kind)
	}
}
