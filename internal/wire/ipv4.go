package wire

import (
	"errors"
	"fmt"
)

// Protocol numbers and structural constants for the IPv4 header.
const (
	protoTCP = 6

	// IPv4HeaderLen is the length of an IPv4 header without options.
	IPv4HeaderLen = 20
	// IPv4MaxHeaderLen is the largest encodable IPv4 header (IHL=15).
	IPv4MaxHeaderLen = 60
	// ipv4Version is the version nibble for IPv4.
	ipv4Version = 4

	// ipFlagDF and ipFlagMF are the don't-fragment and more-fragments bits
	// within the 3-bit flags field.
	ipFlagDF = 0x2
	ipFlagMF = 0x1
)

// Errors reported by the IPv4 codec.
var (
	ErrIPv4Truncated   = errors.New("wire: buffer shorter than IPv4 header")
	ErrIPv4Version     = errors.New("wire: not an IPv4 packet")
	ErrIPv4BadIHL      = errors.New("wire: IPv4 header length field invalid")
	ErrIPv4BadLength   = errors.New("wire: IPv4 total length inconsistent with buffer")
	ErrIPv4BadChecksum = errors.New("wire: IPv4 header checksum mismatch")
)

// Addr is an IPv4 address in network byte order. A fixed array keeps keys
// comparable and allocation-free.
type Addr [4]byte

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// MakeAddr builds an Addr from four octets.
func MakeAddr(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// IPv4Header is the parsed form of an IPv4 header. Options are preserved
// verbatim; nothing in this repo interprets them, but a faithful codec must
// round-trip them.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      Addr
	Dst      Addr
	Options  []byte // multiple of 4 bytes, at most 40
}

// HeaderLen returns the encoded header length in bytes.
func (h *IPv4Header) HeaderLen() int { return IPv4HeaderLen + len(h.Options) }

// IsFragment reports whether this header describes a fragment: either a
// non-first piece (offset > 0) or a first piece with more to follow (MF).
func (h *IPv4Header) IsFragment() bool {
	return h.FragOff != 0 || h.Flags&ipFlagMF != 0
}

// Marshal appends the encoded header to buf and returns the extended slice.
// The header checksum is computed; TotalLen is written as provided so the
// caller controls payload accounting.
func (h *IPv4Header) Marshal(buf []byte) ([]byte, error) {
	if len(h.Options)%4 != 0 || len(h.Options) > IPv4MaxHeaderLen-IPv4HeaderLen {
		return nil, ErrIPv4BadIHL
	}
	hlen := h.HeaderLen()
	start := len(buf)
	buf = append(buf, make([]byte, hlen)...)
	b := buf[start:]
	b[0] = ipv4Version<<4 | uint8(hlen/4)
	b[1] = h.TOS
	putU16(b[2:], h.TotalLen)
	putU16(b[4:], h.ID)
	putU16(b[6:], uint16(h.Flags&0x7)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	copy(b[20:], h.Options)
	cs := Checksum(b[:hlen])
	putU16(b[10:], cs)
	return buf, nil
}

// Unmarshal parses an IPv4 header from b, validating version, IHL, total
// length, and the header checksum. It returns the header length consumed.
//
// b may be longer than the datagram: link layers pad small frames (an
// Ethernet payload is at least 46 bytes), so trailing bytes beyond
// TotalLen are legitimate and ignored — callers bound the datagram with
// the returned header's TotalLen, never len(b). Only the converse, a
// buffer holding fewer bytes than TotalLen claims, is rejected: that
// datagram is truncated and no parse can recover it.
func (h *IPv4Header) Unmarshal(b []byte) (int, error) {
	if len(b) < IPv4HeaderLen {
		return 0, ErrIPv4Truncated
	}
	if b[0]>>4 != ipv4Version {
		return 0, ErrIPv4Version
	}
	hlen := int(b[0]&0x0f) * 4
	if hlen < IPv4HeaderLen {
		return 0, ErrIPv4BadIHL
	}
	if len(b) < hlen {
		return 0, ErrIPv4Truncated
	}
	total := int(getU16(b[2:]))
	if total < hlen {
		// The datagram cannot be smaller than its own header.
		return 0, ErrIPv4BadLength
	}
	if total > len(b) {
		// Truncated capture: the buffer holds less than the datagram
		// claims. (len(b) > total is NOT an error — see above.)
		return 0, ErrIPv4BadLength
	}
	if Checksum(b[:hlen]) != 0 {
		return 0, ErrIPv4BadChecksum
	}
	h.TOS = b[1]
	h.TotalLen = uint16(total)
	h.ID = getU16(b[4:])
	ff := getU16(b[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if hlen > IPv4HeaderLen {
		h.Options = append(h.Options[:0], b[IPv4HeaderLen:hlen]...)
	} else {
		h.Options = nil
	}
	return hlen, nil
}

func putU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func getU16(b []byte) uint16    { return uint16(b[0])<<8 | uint16(b[1]) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
