package shard

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/parallel"
	"tcpdemux/internal/telemetry"
	"tcpdemux/internal/tpca"
)

// shardBenchInputs builds the TPC/A population and lookup stream the
// sharded throughput tests replay.
func shardBenchInputs(t *testing.T, users int) ([]parallel.Op, []core.Key) {
	t.Helper()
	stream, err := parallel.TPCAStream(users, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]core.Key, users)
	for i := range keys {
		keys[i] = tpca.UserKey(i)
	}
	return stream, keys
}

// TestMeasureShardedPartitionEffect is the deterministic half of the
// sharding claim: with a fixed number of chains per table, steering the
// population across 4 private tables leaves each chain ~4x shorter, so
// the same lookup stream examines ~4x fewer PCBs in total. This is the
// paper's C(N) argument and it holds on any host, independent of core
// count — wall-clock speedup (BENCH_shard.json) layers on top.
func TestMeasureShardedPartitionEffect(t *testing.T) {
	const users = 4000
	stream, keys := shardBenchInputs(t, users)
	run := func(shards int) ThroughputResult {
		res, err := MeasureSharded(ThroughputConfig{
			Shards:   shards,
			TotalOps: 40_000,
			Stream:   stream,
			Keys:     keys,
			NewDemuxer: func(int) core.Demuxer {
				return core.NewSequentHash(0, hashfn.Multiplicative{})
			},
			SteerKey: hashfn.NewKeyed(0xfeed, 0xf00d),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	single := run(1)
	quad := run(4)

	for _, res := range []ThroughputResult{single, quad} {
		gotPCBs, gotOps := 0, 0
		for i := range res.PerShardPCBs {
			gotPCBs += res.PerShardPCBs[i]
			gotOps += res.PerShardOps[i]
		}
		if gotPCBs != users {
			t.Fatalf("PerShardPCBs sums to %d, want %d", gotPCBs, users)
		}
		if gotOps != res.Ops {
			t.Fatalf("PerShardOps sums to %d, want %d", gotOps, res.Ops)
		}
		if res.Stats.Lookups != uint64(res.Ops) {
			t.Fatalf("Stats.Lookups = %d, want %d", res.Stats.Lookups, res.Ops)
		}
		if res.Stats.Misses != 0 {
			t.Fatalf("%d misses replaying the recorded stream", res.Stats.Misses)
		}
	}

	// Steering must have spread the population: no shard empty, none
	// holding more than half the users.
	for i, n := range quad.PerShardPCBs {
		if n == 0 || n > users/2 {
			t.Fatalf("shard %d holds %d/%d PCBs: steering unbalanced %v",
				i, n, users, quad.PerShardPCBs)
		}
	}

	meanSingle := single.Stats.MeanExamined()
	meanQuad := quad.Stats.MeanExamined()
	if ratio := meanSingle / meanQuad; ratio < 2.5 {
		t.Fatalf("partition effect too weak: examined/lookup %0.1f single vs %0.1f at 4 shards (%.2fx, want >= 2.5x)",
			meanSingle, meanQuad, ratio)
	}
}

// TestMeasureShardedBatchAndMetrics drives the batched train path under
// a LocalDemux observer and checks the observations land in the shared
// metrics after the per-worker flush.
func TestMeasureShardedBatchAndMetrics(t *testing.T) {
	const users = 512
	stream, keys := shardBenchInputs(t, users)
	reg := telemetry.NewRegistry()
	m := telemetry.NewDemuxMetrics(reg, "shard-test")
	res, err := MeasureSharded(ThroughputConfig{
		Shards:   2,
		TotalOps: 10_000,
		Stream:   stream,
		Keys:     keys,
		NewDemuxer: func(int) core.Demuxer {
			return core.NewSequentHash(0, hashfn.Multiplicative{})
		},
		Batch:    32,
		SteerKey: hashfn.NewKeyed(3, 5),
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Lookups != uint64(res.Ops) {
		t.Fatalf("batched Stats.Lookups = %d, want %d", res.Stats.Lookups, res.Ops)
	}
	if h := m.ExaminedSnapshot(); h.Count != uint64(res.Ops) {
		t.Fatalf("LocalDemux flushed %d observations, want %d", h.Count, res.Ops)
	}
}

// TestMeasureShardedRejectsBadConfig exercises the validation arms.
func TestMeasureShardedRejectsBadConfig(t *testing.T) {
	stream, keys := shardBenchInputs(t, 8)
	newDemux := func(int) core.Demuxer { return core.NewMapDemux() }
	bad := []ThroughputConfig{
		{Shards: 0, TotalOps: 1, Stream: stream, Keys: keys, NewDemuxer: newDemux},
		{Shards: 1, TotalOps: 0, Stream: stream, Keys: keys, NewDemuxer: newDemux},
		{Shards: 1, TotalOps: 1, Stream: nil, Keys: keys, NewDemuxer: newDemux},
		{Shards: 1, TotalOps: 1, Stream: stream, Keys: keys},
	}
	for i, cfg := range bad {
		if _, err := MeasureSharded(cfg); err == nil {
			t.Fatalf("config %d accepted, want error", i)
		}
	}
}
