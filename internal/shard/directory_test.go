package shard

import (
	"testing"

	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/wire"
)

func TestDirectoryAssignMoveRelease(t *testing.T) {
	d := NewDirectory(4)
	if d.Cap() != 4 || d.Len() != 0 {
		t.Fatalf("fresh directory Cap=%d Len=%d", d.Cap(), d.Len())
	}

	id, gen, ok := d.Assign(2)
	if !ok || gen != 1 {
		t.Fatalf("Assign = (%d, %d, %v), want gen 1", id, gen, ok)
	}
	if owner, g, ok := d.Owner(id); !ok || owner != 2 || g != gen {
		t.Fatalf("Owner = (%d, %d, %v), want (2, %d, true)", owner, g, ok, gen)
	}
	if !d.OwnedBy(id, gen, 2) {
		t.Fatal("OwnedBy rejected the live claim")
	}
	if d.OwnedBy(id, gen, 1) || d.OwnedBy(id, gen+1, 2) {
		t.Fatal("OwnedBy accepted a wrong owner or generation")
	}

	// Migration bumps the generation and invalidates the old claim.
	gen2, ok := d.Move(id, gen, 2, 0)
	if !ok || gen2 != gen+1 {
		t.Fatalf("Move = (%d, %v), want gen %d", gen2, ok, gen+1)
	}
	if d.OwnedBy(id, gen, 2) {
		t.Fatal("pre-move claim still validates after migration")
	}
	if !d.OwnedBy(id, gen2, 0) {
		t.Fatal("post-move claim does not validate")
	}
	// A second mover holding the stale generation must fail.
	if _, ok := d.Move(id, gen, 2, 1); ok {
		t.Fatal("Move succeeded with a stale generation")
	}

	// Release with a stale claim fails; with the live one it frees.
	if d.Release(id, gen, 2) {
		t.Fatal("Release succeeded with a stale claim")
	}
	if !d.Release(id, gen2, 0) {
		t.Fatal("Release failed with the live claim")
	}
	if _, _, ok := d.Owner(id); ok {
		t.Fatal("released slot still has an owner")
	}
	if d.Len() != 0 {
		t.Fatalf("Len after release = %d", d.Len())
	}
}

// TestDirectoryReuseBumpsGeneration checks that an ID released and
// reassigned never revalidates claims from its previous life — the
// property that makes late frames from a dead connection fail closed.
func TestDirectoryReuseBumpsGeneration(t *testing.T) {
	d := NewDirectory(1)
	id, gen1, ok := d.Assign(0)
	if !ok {
		t.Fatal("Assign failed")
	}
	if !d.Release(id, gen1, 0) {
		t.Fatal("Release failed")
	}
	id2, gen2, ok := d.Assign(1)
	if !ok || id2 != id {
		t.Fatalf("reassign = (%d, %v), want id %d", id2, ok, id)
	}
	if gen2 <= gen1 {
		t.Fatalf("reassigned generation %d did not advance past %d", gen2, gen1)
	}
	if d.OwnedBy(id, gen1, 0) {
		t.Fatal("claim from the previous tenancy validates against the new one")
	}
}

func TestDirectoryExhaustionAndBounds(t *testing.T) {
	d := NewDirectory(2)
	ids := map[int]bool{}
	for i := 0; i < 2; i++ {
		id, _, ok := d.Assign(0)
		if !ok || ids[id] {
			t.Fatalf("Assign %d = (%d, %v), ids %v", i, id, ok, ids)
		}
		ids[id] = true
	}
	if _, _, ok := d.Assign(0); ok {
		t.Fatal("Assign succeeded on a full directory")
	}
	if _, _, ok := d.Owner(-1); ok {
		t.Fatal("Owner(-1) succeeded")
	}
	if _, _, ok := d.Owner(2); ok {
		t.Fatal("Owner(out of range) succeeded")
	}
	if d.OwnedBy(-1, 0, 0) || d.OwnedBy(2, 0, 0) {
		t.Fatal("OwnedBy accepted out-of-range ids")
	}
	if _, ok := d.Move(9, 1, 0, 1); ok {
		t.Fatal("Move accepted an out-of-range id")
	}
	if d.Release(9, 1, 0) {
		t.Fatal("Release accepted an out-of-range id")
	}
}

func TestSteeringStableAndBounded(t *testing.T) {
	st := NewSteering(4, hashfn.DefaultKeyed)
	if st.Shards() != 4 {
		t.Fatalf("Shards = %d", st.Shards())
	}
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		tup := wire.Tuple{
			SrcAddr: wire.Addr{10, 0, byte(i >> 8), byte(i)},
			DstAddr: wire.Addr{10, 0, 0, 1},
			SrcPort: uint16(1024 + i%40000),
			DstPort: 1521,
		}
		s := st.Shard(tup)
		if s < 0 || s >= 4 {
			t.Fatalf("Shard out of range: %d", s)
		}
		if again := st.Shard(tup); again != s {
			t.Fatalf("steering not stable: %d then %d", s, again)
		}
		counts[s]++
	}
	// The keyed hash should spread a structured population roughly evenly;
	// allow a generous band around the 1024 mean.
	for i, c := range counts {
		if c < 512 || c > 1536 {
			t.Fatalf("shard %d got %d of 4096 tuples — steering badly skewed %v", i, c, counts)
		}
	}
	// A different key steers differently (the property rekey relies on).
	st2 := NewSteering(4, hashfn.NewKeyed(1, 2))
	moved := 0
	for i := 0; i < 4096; i++ {
		tup := wire.Tuple{
			SrcAddr: wire.Addr{10, 0, byte(i >> 8), byte(i)},
			DstAddr: wire.Addr{10, 0, 0, 1},
			SrcPort: uint16(1024 + i%40000),
			DstPort: 1521,
		}
		if st.Shard(tup) != st2.Shard(tup) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("rekeyed steering moved no tuples")
	}

	if NewSteering(0, hashfn.DefaultKeyed).Shards() != 1 {
		t.Fatal("NewSteering(0) did not clamp to 1")
	}
}
