package shard

import (
	"bytes"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/engine"
	"tcpdemux/internal/frag"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/wire"
)

// newSet builds an n-shard StackSet at the conformance address, each
// shard demultiplexing with its own Sequent hash table.
func newSet(t *testing.T, n int, seed uint64) *StackSet {
	t.Helper()
	set, err := NewStackSet(wire.MakeAddr(10, 0, 0, 1), Config{
		Shards: n,
		NewDemuxer: func(int) core.Demuxer {
			return core.NewSequentHash(0, hashfn.Multiplicative{})
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// lossyCfg is the conformance operating point from the issue: 20% drop,
// 10% duplication, jitter reordering, timers sized so the exchange
// completes well inside the virtual-time budget.
func lossyCfg(server engine.LossyServer) engine.LossyConfig {
	return engine.LossyConfig{
		Clients: 8,
		Txns:    12,
		Seed:    99,
		Link: engine.LinkConfig{
			Seed:     1234,
			DropRate: 0.20,
			DupRate:  0.10,
			Latency:  0.01,
			Jitter:   0.004,
		},
		RTO:            0.25,
		MaxRetries:     40,
		MSL:            0.5,
		MaxVirtualTime: 2000,
		Server:         server,
	}
}

// TestShardedConformanceLossy is the acceptance gate: the sharded engine
// and the single-shard engine, driven through the identical 20% drop /
// 10% dup link, must deliver byte-identical application-level responses
// to every client. The wire traces differ — outbox merge order changes
// which frames the loss process kills — but TCP's reliability plus the
// deterministic handler mean the application bytes cannot.
func TestShardedConformanceLossy(t *testing.T) {
	single, err := engine.RunLossyExchange(
		core.NewSequentHash(0, hashfn.Multiplicative{}), lossyCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !single.Completed {
		t.Fatalf("single-shard exchange did not complete (t=%v)", single.VirtualTime)
	}
	if single.Dropped == 0 || single.Duplicated == 0 {
		t.Fatalf("loss process inactive: %+v", single)
	}

	set := newSet(t, 4, 77)
	sharded, err := engine.RunLossyExchange(nil, lossyCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Completed {
		t.Fatalf("sharded exchange did not complete (t=%v)", sharded.VirtualTime)
	}

	if len(single.Responses) != len(sharded.Responses) {
		t.Fatalf("client counts differ: %d vs %d", len(single.Responses), len(sharded.Responses))
	}
	for i := range single.Responses {
		if !bytes.Equal(single.Responses[i], sharded.Responses[i]) {
			t.Fatalf("client %d responses differ:\nsingle:  %q\nsharded: %q",
				i, single.Responses[i], sharded.Responses[i])
		}
	}

	// The engine must actually have sharded the work: with 8 clients
	// steered by a keyed hash over 4 shards, at least two shards must
	// have seen traffic.
	busy := 0
	for _, n := range set.Steered {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("steering sent all traffic to one shard: %v", set.Steered)
	}
}

// TestShardedConformanceChaos layers a scripted chaos function — bursts
// of targeted drops, corruption the checksums must catch, and stalls —
// on top of the probabilistic loss, and demands the same byte-identical
// delivery.
func TestShardedConformanceChaos(t *testing.T) {
	chaos := func() engine.ChaosFunc {
		n := 0
		return func(frame []byte, dir engine.ChaosDir, now float64) engine.ChaosVerdict {
			n++
			var v engine.ChaosVerdict
			switch {
			case n%23 == 0:
				v.Corrupt = true
			case n%17 == 0:
				v.Drop = true
			case n%13 == 0:
				v.ExtraDelay = 0.05
			}
			return v
		}
	}
	mkCfg := func(server engine.LossyServer) engine.LossyConfig {
		cfg := lossyCfg(server)
		cfg.Link.DropRate = 0.10
		cfg.Link.DupRate = 0.05
		cfg.Link.Chaos = chaos() // fresh deterministic script per run
		return cfg
	}

	single, err := engine.RunLossyExchange(
		core.NewSequentHash(0, hashfn.Multiplicative{}), mkCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !single.Completed {
		t.Fatalf("single-shard chaos exchange did not complete (t=%v)", single.VirtualTime)
	}

	set := newSet(t, 3, 31)
	sharded, err := engine.RunLossyExchange(nil, mkCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Completed {
		t.Fatalf("sharded chaos exchange did not complete (t=%v)", sharded.VirtualTime)
	}
	for i := range single.Responses {
		if !bytes.Equal(single.Responses[i], sharded.Responses[i]) {
			t.Fatalf("client %d responses differ under chaos:\nsingle:  %q\nsharded: %q",
				i, single.Responses[i], sharded.Responses[i])
		}
	}
}

// TestRekeyMigratesMidExchange drives a sharded server directly (client
// stack + lossy link), rekeys the steering mid-conversation, and checks
// that migrated connections keep answering on their new shards with no
// application-visible seam — and that the migration really crossed the
// handoff rings with directory-validated claims.
func TestRekeyMigratesMidExchange(t *testing.T) {
	const (
		clients = 12
		port    = uint16(1521)
	)
	set := newSet(t, 4, 5)
	handler := func(_ *engine.Conn, p []byte) []byte {
		return append(append([]byte("ok<"), p...), '>')
	}
	if err := set.Listen(port, handler); err != nil {
		t.Fatal(err)
	}
	set.SetTimers(0.25, 40, 0.5)
	set.SetBacklog(clients)

	client := engine.NewStack(wire.MakeAddr(10, 0, 0, 2), core.NewMapDemux(), 8)
	client.SetTimers(0.25, 40, 0.5)
	link := engine.NewLink(client, set, engine.LinkConfig{
		Seed: 42, DropRate: 0.10, DupRate: 0.05, Latency: 0.01, Jitter: 0.004,
	})

	conns := make([]*engine.Conn, clients)
	for i := range conns {
		c, err := client.ConnectEphemeral(set.Addr(), port, nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}

	var got [clients][]byte
	sent := make([]bool, clients)
	txn := make([]int, clients)
	const txns = 10
	now := 0.0
	step := func() {
		now += 0.005
		if err := link.Shuttle(now); err != nil {
			t.Fatal(err)
		}
		client.Tick(now)
		set.Tick(now)
	}
	pump := func(c int) {
		if conns[c].State() != core.StateEstablished {
			return
		}
		if r := conns[c].Receive(); r != nil {
			got[c] = append(got[c], r...)
			sent[c] = false
			txn[c]++
		}
		if !sent[c] && txn[c] < txns {
			payload := []byte{byte('a' + c), byte('0' + txn[c])}
			if err := conns[c].Send(payload); err != nil {
				t.Fatal(err)
			}
			sent[c] = true
		}
	}

	rekeyed := false
	for iter := 0; iter < 200_000; iter++ {
		done := true
		for c := range conns {
			pump(c)
			if txn[c] < txns {
				done = false
			}
		}
		if done {
			break
		}
		// Halfway through, rekey between shuttle rounds (the quiesce
		// contract) until at least one connection actually migrates.
		if !rekeyed && minTxn(txn) >= txns/2 {
			for tries := 0; tries < 8 && set.Migrations == 0; tries++ {
				set.Rekey()
			}
			if set.Migrations == 0 {
				t.Fatal("no connection migrated across eight rekeys")
			}
			rekeyed = true
		}
		step()
	}

	if !rekeyed {
		t.Fatal("exchange finished before the rekey point")
	}
	for c := range conns {
		if txn[c] != txns {
			t.Fatalf("client %d finished only %d/%d transactions", c, txn[c], txns)
		}
		var want []byte
		for tx := 0; tx < txns; tx++ {
			want = append(want, "ok<"...)
			want = append(want, byte('a'+c), byte('0'+tx))
			want = append(want, '>')
		}
		if !bytes.Equal(got[c], want) {
			t.Fatalf("client %d delivery seam after migration:\ngot  %q\nwant %q", c, got[c], want)
		}
	}
	if set.StaleHandoffs != 0 {
		t.Fatalf("StaleHandoffs = %d during a quiesced rekey", set.StaleHandoffs)
	}
	if set.Rekeys == 0 || set.Migrations == 0 {
		t.Fatalf("rekey bookkeeping: rekeys=%d migrations=%d", set.Rekeys, set.Migrations)
	}
}

func minTxn(txn []int) int {
	m := txn[0]
	for _, v := range txn[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// TestStackSetFragmentsSteerAfterReassembly checks the software
// re-steer: a datagram split into fragments must demultiplex on the
// connection's home shard, because the set reassembles before steering.
func TestStackSetFragmentsSteerAfterReassembly(t *testing.T) {
	const port = uint16(1521)
	set := newSet(t, 4, 21)
	if err := set.Listen(port, func(_ *engine.Conn, p []byte) []byte {
		return append([]byte("got:"), p...)
	}); err != nil {
		t.Fatal(err)
	}
	client := engine.NewStack(wire.MakeAddr(10, 0, 0, 2), core.NewMapDemux(), 9)
	conn, err := client.ConnectEphemeral(set.Addr(), port, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("handshake did not complete: %v", conn.State())
	}

	// Send a data segment, then fragment the frame on its way in.
	payload := bytes.Repeat([]byte("x"), 64)
	if err := conn.Send(payload); err != nil {
		t.Fatal(err)
	}
	frames := client.Drain()
	if len(frames) != 1 {
		t.Fatalf("expected 1 data frame, got %d", len(frames))
	}
	frags, err := frag.Fragment(frames[0], 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("fragmentation produced %d pieces", len(frags))
	}
	for _, f := range frags {
		if _, err := set.Deliver(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	if got := conn.Receive(); !bytes.Equal(got, append([]byte("got:"), payload...)) {
		t.Fatalf("fragmented request response %q", got)
	}
}
