package shard

import (
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/wire"
)

// Steering maps a demultiplexing tuple to a shard index, RSS-style: the
// keyed SipHash of the tuple, folded to a shard number. Using the keyed
// hash (not one of the cheap unkeyed functions) matters here for the
// same reason it does inside the table: an adversary who could predict
// the steering function could aim its whole population at one shard and
// reduce the multi-queue engine to the single-queue one. The steering
// key is independent of any per-shard table key, so rekeying one layer
// never forces the other.
//
// Steering is an immutable value; a rekey builds a new Steering and the
// engine migrates the connections whose assignment changed.
type Steering struct {
	key hashfn.Keyed
	n   int
}

// NewSteering returns a steering function over n shards using the given
// keyed hash. n must be >= 1.
func NewSteering(n int, key hashfn.Keyed) Steering {
	if n < 1 {
		n = 1
	}
	return Steering{key: key, n: n}
}

// Shards returns the shard count.
func (s Steering) Shards() int { return s.n }

// Shard returns the shard index for a tuple. All frames of a connection
// carry the same tuple, so a connection's traffic lands on one shard for
// the lifetime of the steering key.
//
//demux:hotpath
func (s Steering) Shard(t wire.Tuple) int {
	return hashfn.ChainIndex(s.key.Hash(t), s.n)
}
