package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tcpdemux/internal/core"
	"tcpdemux/internal/engine"
	"tcpdemux/internal/frag"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// Handoff is one migrating connection crossing an SPSC ring between two
// shards. The (ID, Gen) claim was stamped by the directory Move that
// authorized the migration; the receiving shard re-validates it against
// the directory before adopting, so a handoff message that was overtaken
// by a later move or release is discarded instead of resurrecting a
// stale PCB.
type Handoff struct {
	PCB *core.PCB
	ID  int
	Gen uint32
}

// claim is the control plane's record of a connection's directory slot.
type claim struct {
	id    int
	gen   uint32
	owner int
}

// DefaultDirectoryCap bounds the connection-ID directory when the caller
// does not size it.
const DefaultDirectoryCap = 1 << 16

// inboxCap sizes each shard's frame inbox ring; handoffCap sizes each
// ordered shard pair's migration ring. Both are drained synchronously in
// this engine, so they only need to absorb one burst.
const (
	inboxCap   = 256
	handoffCap = 256
)

// Config parameterizes a StackSet.
type Config struct {
	// Shards is the number of queues (>= 1).
	Shards int
	// NewDemuxer builds shard i's private demultiplexer discipline. Any
	// core.Register'd algorithm works; each shard gets its own instance
	// so no lookup state is shared. Required.
	NewDemuxer func(shard int) core.Demuxer
	// Seed drives the steering key and each shard's ISS generator.
	Seed uint64
	// DirectoryCap bounds concurrent connections across all shards
	// (DefaultDirectoryCap if zero).
	DirectoryCap int
}

// StackSet is the sharded multi-queue endpoint: one address, N
// engine.Stacks behind an RSS-style steering function. Every inbound
// frame hashes its tuple with the keyed steering hash and lands on
// exactly one shard's private Stack — private demuxer, private timer
// wheel, private outbox — through that shard's SPSC inbox ring, so the
// packet path shares no mutable state between shards. Cross-shard
// traffic exists only on the control plane: Listen fans the listener out
// to every shard (accepted connections are distributed by where their
// SYN steered), and Rekey migrates connections whose assignment changed
// over per-pair SPSC handoff rings, each handoff carrying a
// generation-checked directory claim so a stale shard can never resolve
// a migrated PCB.
//
// StackSet implements engine.LossyServer, so the lossy-link conformance
// harness can drive it through the identical loss process as a single
// Stack and compare application-level delivery byte for byte.
//
// Frames and control messages are processed synchronously: Deliver
// pushes the frame onto the owning shard's inbox ring and immediately
// drains that ring. The rings are therefore load-bearing (everything
// crosses them) while keeping the engine deterministic under the
// virtual-time harnesses; a multi-core driver may instead pin one
// goroutine per shard and drain the same rings concurrently, which is
// what the throughput harness models.
type StackSet struct {
	addr   wire.Addr
	shards []*engine.Stack
	// steer is swapped atomically by Rekey so a concurrent reader of the
	// steering function never sees a torn value.
	steer atomic.Pointer[Steering] //demux:atomic
	src   *rng.Source
	dir   *Directory

	// inbox[i] carries frames steered to shard i; handoff[from][to]
	// carries migrating connections (nil on the diagonal).
	inbox   []*Ring[[]byte]
	handoff [][]*Ring[Handoff]

	// claimMu guards claims and is strictly a leaf lock: never held while
	// calling into a shard Stack (whose OnAccept hook calls back here
	// with its own lock held).
	claimMu sync.Mutex
	claims  map[core.Key]claim

	// reasm reassembles fragmented datagrams before steering, the
	// software re-steer real kernels apply after reassembly: a fragment
	// has no ports to hash, so the set reassembles first and steers the
	// whole datagram by its full tuple.
	reasmMu sync.Mutex
	reasm   *frag.Reassembler
	frames  uint64

	// Steered counts frames dispatched per shard; the remaining counters
	// describe the migration machinery. Steered is written only on the
	// Deliver path (the deliver role); external readers consume it after
	// the run, outside this package and hence outside the analyzer's
	// reach.
	Steered       []uint64 //demux:singlewriter(owner=deliver)
	Rekeys        uint64
	Migrations    uint64
	StaleHandoffs uint64
	DirExhausted  uint64
}

// NewStackSet builds a sharded endpoint at addr.
func NewStackSet(addr wire.Addr, cfg Config) (*StackSet, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("shard: need at least one shard")
	}
	if cfg.NewDemuxer == nil {
		return nil, errors.New("shard: Config.NewDemuxer is required")
	}
	dirCap := cfg.DirectoryCap
	if dirCap <= 0 {
		dirCap = DefaultDirectoryCap
	}
	set := &StackSet{
		addr:    addr,
		src:     rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
		dir:     NewDirectory(dirCap),
		claims:  make(map[core.Key]claim),
		reasm:   frag.New(64),
		Steered: make([]uint64, cfg.Shards),
	}
	st := NewSteering(cfg.Shards, hashfn.KeyedFromRNG(set.src))
	set.steer.Store(&st)
	set.shards = make([]*engine.Stack, cfg.Shards)
	set.inbox = make([]*Ring[[]byte], cfg.Shards)
	set.handoff = make([][]*Ring[Handoff], cfg.Shards)
	for i := range set.shards {
		i := i
		s := engine.NewStack(addr, cfg.NewDemuxer(i), cfg.Seed+uint64(i)*0x51_7c_c1+1)
		s.OnAccept = func(c *engine.Conn) { set.registerAccept(i, c) }
		set.shards[i] = s
		set.inbox[i] = NewRing[[]byte](inboxCap)
		set.handoff[i] = make([]*Ring[Handoff], cfg.Shards)
		for j := range set.handoff[i] {
			if j != i {
				set.handoff[i][j] = NewRing[Handoff](handoffCap)
			}
		}
	}
	return set, nil
}

// registerAccept records a freshly accepted connection's directory claim.
// Called from the owning shard's OnAccept hook (shard lock held), so it
// touches only the leaf claim lock.
func (set *StackSet) registerAccept(shard int, c *engine.Conn) {
	id, gen, ok := set.dir.Assign(shard)
	if !ok {
		// Directory full: the connection still works — it just cannot be
		// migrated on a future rekey. Count it; the sweep in Rekey will
		// not find a claim for it and will leave it homed where it is.
		set.DirExhausted++
		return
	}
	set.claimMu.Lock()
	set.claims[c.Key()] = claim{id: id, gen: gen, owner: shard}
	set.claimMu.Unlock()
}

// Shards returns the shard count.
func (set *StackSet) Shards() int { return len(set.shards) }

// Shard exposes shard i's Stack for inspection (stats, netstat).
func (set *StackSet) Shard(i int) *engine.Stack { return set.shards[i] }

// Steering returns the current steering function.
func (set *StackSet) Steering() Steering { return *set.steer.Load() }

// Addr implements engine.LossyServer.
func (set *StackSet) Addr() wire.Addr { return set.addr }

// Listen implements engine.LossyServer by fanning the listener out to
// every shard: each shard owns a private listener PCB, so a SYN is
// accepted wherever its tuple steers and the connection lives its whole
// life on that shard (until a rekey migrates it).
func (set *StackSet) Listen(port uint16, h engine.Handler) error {
	for i, s := range set.shards {
		if err := s.Listen(port, h); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// SetTimers implements engine.LossyServer, fanning to every shard.
func (set *StackSet) SetTimers(rto float64, maxRetries int, msl float64) {
	for _, s := range set.shards {
		s.SetTimers(rto, maxRetries, msl)
	}
}

// SetBacklog implements engine.LossyServer. Each shard receives the full
// backlog: steering decides which shard a SYN reaches, so a per-shard
// split would refuse bursts that happen to steer together.
func (set *StackSet) SetBacklog(n int) {
	for _, s := range set.shards {
		s.SetBacklog(n)
	}
}

// LifecycleCounters implements engine.LossyServer by summing the shards.
func (set *StackSet) LifecycleCounters() (retransmits, aborts, synExpired, timeWaitExpired uint64) {
	for _, s := range set.shards {
		r, a, se, tw := s.LifecycleCounters()
		retransmits += r
		aborts += a
		synExpired += se
		timeWaitExpired += tw
	}
	return
}

// steerFrame picks the owning shard for a raw frame: the keyed hash of
// its full tuple. Fragments carry no ports, so the set reassembles them
// first (under its own small lock — fragmentation is the rare path) and
// steers the rebuilt datagram; an undecodable frame goes to shard 0,
// whose Stack will account the parse error.
func (set *StackSet) steerFrame(frame []byte) (int, []byte) {
	tup, err := wire.ExtractTuple(frame)
	if err == nil {
		return set.steer.Load().Shard(tup), frame
	}
	if errors.Is(err, wire.ErrFragmented) {
		set.reasmMu.Lock()
		set.frames++
		if set.frames%512 == 0 {
			set.reasm.Reap(float64(set.frames), 4096)
		}
		whole, ferr := set.reasm.Add(frame, float64(set.frames))
		set.reasmMu.Unlock()
		if ferr != nil || whole == nil {
			// Malformed fragment or datagram still incomplete: shard 0
			// reports the former; the latter is simply absorbed.
			if ferr != nil {
				return 0, frame
			}
			return -1, nil
		}
		if tup, err = wire.ExtractTuple(whole); err == nil {
			return set.steer.Load().Shard(tup), whole
		}
		return 0, whole
	}
	return 0, frame
}

// Deliver implements engine.LossyServer: steer, enqueue on the owning
// shard's inbox ring, drain that ring into the shard's Stack. The
// returned Result is the shard demuxer's lookup result for this frame
// (zero for an absorbed fragment), so callers can account examination
// costs exactly as with a single Stack.
//
//demux:owner(deliver)
func (set *StackSet) Deliver(frame []byte) (core.Result, error) {
	idx, whole := set.steerFrame(frame)
	if idx < 0 {
		return core.Result{}, nil // fragment absorbed, datagram incomplete
	}
	set.Steered[idx]++
	if !set.inbox[idx].Push(whole) {
		// The synchronous drain below empties the ring every call, so a
		// full inbox means a concurrent driver outran the shard; deliver
		// directly rather than drop — backpressure, not loss.
		return set.shards[idx].Deliver(whole)
	}
	var last core.Result
	var lastErr error
	for {
		f, ok := set.inbox[idx].Pop()
		if !ok {
			break
		}
		last, lastErr = set.shards[idx].Deliver(f)
	}
	return last, lastErr
}

// Drain implements engine.LossyServer, concatenating every shard's
// outbox in shard order — the deterministic merge a single egress NIC
// queue would apply.
func (set *StackSet) Drain() [][]byte {
	var out [][]byte
	for _, s := range set.shards {
		out = append(out, s.Drain()...)
	}
	return out
}

// Tick implements engine.LossyServer: every shard's virtual clock
// advances together.
func (set *StackSet) Tick(now float64) {
	for _, s := range set.shards {
		s.Tick(now)
	}
}

// TimeWaitCount sums the shards' TIME_WAIT populations.
func (set *StackSet) TimeWaitCount() int {
	n := 0
	for _, s := range set.shards {
		n += s.TimeWaitCount()
	}
	return n
}

// Len sums the shards' demuxer populations (listeners included).
func (set *StackSet) Len() int {
	n := 0
	for _, s := range set.shards {
		n += s.Demuxer().Len()
	}
	return n
}

// Rekey draws a fresh steering key and migrates every connection whose
// shard assignment changed, over the handoff rings: for each moving
// connection the old shard Extracts the PCB, the directory Move bumps
// its generation to authorize exactly this transfer, the Handoff crosses
// the SPSC ring, and the new shard validates the claim against the
// directory before Adopting. It returns the number of connections
// migrated.
//
// Rekey is a control-plane quiesce point: the caller must not run it
// concurrently with Deliver (between Shuttle rounds in the lossy
// harness, between measurement windows in the benches). This is the same
// contract as the overload package's online rekey — steering changes are
// epoch transitions, not per-packet events.
func (set *StackSet) Rekey() int {
	n := len(set.shards)
	set.Rekeys++
	newSteer := NewSteering(n, hashfn.KeyedFromRNG(set.src))

	// Sweep the claim table against the live connections first: claims
	// whose connection has since closed release their directory slots.
	live := make(map[core.Key]bool)
	for _, s := range set.shards {
		for _, ci := range s.Netstat() {
			if !ci.Key.IsWildcard() {
				live[ci.Key] = true
			}
		}
	}
	type move struct {
		k  core.Key
		cl claim
	}
	var moves []move
	set.claimMu.Lock()
	for k, cl := range set.claims { //demux:orderinvariant releases and the collected move set are per-key independent; movers are sorted below
		if !live[k] {
			set.dir.Release(cl.id, cl.gen, cl.owner)
			delete(set.claims, k)
			continue
		}
		if to := newSteer.Shard(k.Tuple()); to != cl.owner {
			moves = append(moves, move{k, cl})
		}
	}
	set.claimMu.Unlock()
	// Deterministic migration order: ring-full fallbacks depend on the
	// order movers hit the handoff rings, so the launch sequence must not
	// inherit map iteration order.
	sort.Slice(moves, func(i, j int) bool { return keyLess(moves[i].k, moves[j].k) })

	// Extract each mover, authorize via the directory, and launch the
	// handoff. The steering swap happens after the extracts so the new
	// function never steers a frame at a shard that still owns nothing —
	// the caller's quiesce contract means no frames arrive mid-rekey
	// anyway, and the swap order keeps the invariant even if one does.
	migrated := 0
	for _, mv := range moves {
		k, cl := mv.k, mv.cl
		to := newSteer.Shard(k.Tuple())
		pcb, ok := set.shards[cl.owner].Extract(k)
		if !ok {
			continue // raced with a timer teardown between sweep and now
		}
		newGen, ok := set.dir.Move(cl.id, cl.gen, cl.owner, to)
		if !ok {
			// The claim was stale — someone else moved or released the
			// slot. Re-adopt locally: the connection must not be lost.
			set.StaleHandoffs++
			_ = set.shards[cl.owner].Adopt(pcb)
			continue
		}
		if !set.handoff[cl.owner][to].Push(Handoff{PCB: pcb, ID: cl.id, Gen: newGen}) {
			// Ring full: revert the move and keep the connection home.
			if g, ok := set.dir.Move(cl.id, newGen, to, cl.owner); ok {
				newGen = g
			}
			_ = set.shards[cl.owner].Adopt(pcb)
			set.claimMu.Lock()
			set.claims[k] = claim{id: cl.id, gen: newGen, owner: cl.owner}
			set.claimMu.Unlock()
			continue
		}
		set.claimMu.Lock()
		set.claims[k] = claim{id: cl.id, gen: newGen, owner: to}
		set.claimMu.Unlock()
	}
	set.steer.Store(&newSteer)

	// Each shard drains its incoming handoff rings and adopts what the
	// directory still says is its own.
	for to := range set.shards {
		migrated += set.adoptPending(to)
	}
	set.Migrations += uint64(migrated)
	return migrated
}

// keyLess is a total order over connection keys (local endpoint, then
// remote) so rekey migration launches in a reproducible sequence.
func keyLess(a, b core.Key) bool {
	if c := bytes.Compare(a.LocalAddr[:], b.LocalAddr[:]); c != 0 {
		return c < 0
	}
	if a.LocalPort != b.LocalPort {
		return a.LocalPort < b.LocalPort
	}
	if c := bytes.Compare(a.RemoteAddr[:], b.RemoteAddr[:]); c != 0 {
		return c < 0
	}
	return a.RemotePort < b.RemotePort
}

// adoptPending drains every handoff ring aimed at shard `to`, adopting
// each PCB whose directory claim still names this shard at exactly the
// handed-off generation. A claim that fails the check is stale — a later
// move or release overtook the message in flight — and is dropped
// without touching the PCB: whoever bumped the generation owns it now.
func (set *StackSet) adoptPending(to int) int {
	adopted := 0
	for from := range set.shards {
		ring := set.handoff[from][to]
		if ring == nil {
			continue
		}
		for {
			h, ok := ring.Pop()
			if !ok {
				break
			}
			if !set.dir.OwnedBy(h.ID, h.Gen, to) {
				set.StaleHandoffs++
				continue
			}
			if err := set.shards[to].Adopt(h.PCB); err != nil {
				// A duplicate key on the target shard means the connection
				// was re-established there while this handoff was in
				// flight; the stale copy loses.
				set.StaleHandoffs++
				continue
			}
			adopted++
		}
	}
	return adopted
}
