package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tcpdemux/internal/core"
	"tcpdemux/internal/engine"
	"tcpdemux/internal/frag"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/telemetry"
	"tcpdemux/internal/wire"
)

// Handoff is one migrating connection crossing an SPSC ring between two
// shards. The (ID, Gen) claim was stamped by the directory Move that
// authorized the migration; the receiving shard re-validates it against
// the directory before adopting, so a handoff message that was overtaken
// by a later move or release is discarded instead of resurrecting a
// stale PCB.
type Handoff struct {
	PCB *core.PCB
	ID  int
	Gen uint32
}

// claim is the control plane's record of a connection's directory slot.
type claim struct {
	id    int
	gen   uint32
	owner int
}

// DefaultDirectoryCap bounds the connection-ID directory when the caller
// does not size it.
const DefaultDirectoryCap = 1 << 16

// DefaultInboxCap sizes each shard's frame inbox ring and
// DefaultHandoffCap each ordered shard pair's migration ring. Both are
// drained synchronously in this engine, so they only need to absorb one
// burst — plus, since the failure-domain work, the backlog of a shard
// whose consumer died between watchdog checks.
const (
	DefaultInboxCap   = 256
	DefaultHandoffCap = 256
)

// Config parameterizes a StackSet.
type Config struct {
	// Shards is the number of queues (>= 1).
	Shards int
	// NewDemuxer builds shard i's private demultiplexer discipline. Any
	// core.Register'd algorithm works; each shard gets its own instance
	// so no lookup state is shared. Required.
	NewDemuxer func(shard int) core.Demuxer
	// Seed drives the steering key and each shard's ISS generator.
	Seed uint64
	// DirectoryCap bounds concurrent connections across all shards
	// (DefaultDirectoryCap if zero).
	DirectoryCap int
	// InboxCap and HandoffCap size the SPSC rings (defaults if zero);
	// tests shrink them to exercise the full edges.
	InboxCap   int
	HandoffCap int
	// HeartbeatInterval and StallThreshold tune the health watchdog;
	// HandoffRetries bounds the full-ring retry loops (defaults if
	// zero — see health.go).
	HeartbeatInterval float64
	StallThreshold    float64
	HandoffRetries    int
}

// StackSet is the sharded multi-queue endpoint: one address, N
// engine.Stacks behind an RSS-style steering function. Every inbound
// frame hashes its tuple with the keyed steering hash and lands on
// exactly one shard's private Stack — private demuxer, private timer
// wheel, private outbox — through that shard's SPSC inbox ring, so the
// packet path shares no mutable state between shards. Cross-shard
// traffic exists only on the control plane: Listen fans the listener out
// to every shard (accepted connections are distributed by where their
// SYN steered), and Rekey migrates connections whose assignment changed
// over per-pair SPSC handoff rings, each handoff carrying a
// generation-checked directory claim so a stale shard can never resolve
// a migrated PCB.
//
// StackSet implements engine.LossyServer, so the lossy-link conformance
// harness can drive it through the identical loss process as a single
// Stack and compare application-level delivery byte for byte.
//
// Frames and control messages are processed synchronously: Deliver
// pushes the frame onto the owning shard's inbox ring and immediately
// drains that ring. The rings are therefore load-bearing (everything
// crosses them) while keeping the engine deterministic under the
// virtual-time harnesses; a multi-core driver may instead pin one
// goroutine per shard and drain the same rings concurrently, which is
// what the throughput harness models.
type StackSet struct {
	addr   wire.Addr
	shards []*engine.Stack
	// steer is swapped atomically by Rekey so a concurrent reader of the
	// steering function never sees a torn value.
	steer atomic.Pointer[Steering] //demux:atomic
	src   *rng.Source
	dir   *Directory

	// inbox[i] carries frames steered to shard i; handoff[from][to]
	// carries migrating connections (nil on the diagonal).
	inbox   []*Ring[[]byte]
	handoff [][]*Ring[Handoff]

	// claimMu guards claims and is strictly a leaf lock: never held while
	// calling into a shard Stack (whose OnAccept hook calls back here
	// with its own lock held).
	claimMu sync.Mutex
	claims  map[core.Key]claim

	// reasm reassembles fragmented datagrams before steering, the
	// software re-steer real kernels apply after reassembly: a fragment
	// has no ports to hash, so the set reassembles first and steers the
	// whole datagram by its full tuple.
	reasmMu sync.Mutex
	reasm   *frag.Reassembler
	frames  uint64

	// fault is the injection surface and health the watchdog's per-shard
	// ledger (health.go); now is the set's virtual clock, advanced by
	// Tick so Deliver can evaluate fault windows. m is the telemetry
	// bundle, homed on a private registry until SetTelemetry re-homes it.
	fault       FaultFunc
	health      []shardHealth
	now         float64
	m           *telemetry.ShardSetMetrics
	hbInterval  float64
	stallThresh float64
	retryBudget int

	// Steered counts frames dispatched per shard; the remaining counters
	// describe the migration machinery. Steered is written only on the
	// Deliver path (the deliver role); external readers consume it after
	// the run, outside this package and hence outside the analyzer's
	// reach.
	Steered       []uint64 //demux:singlewriter(owner=deliver)
	Rekeys        uint64
	Migrations    uint64
	StaleHandoffs uint64
	DirExhausted  uint64

	// Conservation ledger (see Accounting in health.go) and the
	// failure-domain counters the drain and degradation paths maintain.
	// LastDrainAt / LastDrainRecovery describe the most recent drain in
	// virtual seconds (recovery = completion minus the sick shard's last
	// observed progress).
	FramesIn          uint64
	Absorbed          uint64
	InboxFullEvents   uint64
	HandoffFullEvents uint64
	ShedInboxFull     uint64
	ShedHandoffFull   uint64
	ShedDirectoryFull uint64
	ShedBacklogFull   uint64
	Drains            uint64
	DrainedConns      uint64
	SalvagedFrames    uint64
	LastDrainAt       float64
	LastDrainRecovery float64
}

// NewStackSet builds a sharded endpoint at addr.
func NewStackSet(addr wire.Addr, cfg Config) (*StackSet, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("shard: need at least one shard")
	}
	if cfg.NewDemuxer == nil {
		return nil, errors.New("shard: Config.NewDemuxer is required")
	}
	dirCap := cfg.DirectoryCap
	if dirCap <= 0 {
		dirCap = DefaultDirectoryCap
	}
	inboxCap := cfg.InboxCap
	if inboxCap <= 0 {
		inboxCap = DefaultInboxCap
	}
	handoffCap := cfg.HandoffCap
	if handoffCap <= 0 {
		handoffCap = DefaultHandoffCap
	}
	set := &StackSet{
		addr:        addr,
		src:         rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
		dir:         NewDirectory(dirCap),
		claims:      make(map[core.Key]claim),
		reasm:       frag.New(64),
		Steered:     make([]uint64, cfg.Shards),
		health:      make([]shardHealth, cfg.Shards),
		m:           telemetry.NewShardSetMetrics(telemetry.NewRegistry(), cfg.Shards),
		hbInterval:  cfg.HeartbeatInterval,
		stallThresh: cfg.StallThreshold,
		retryBudget: cfg.HandoffRetries,
	}
	st := NewSteering(cfg.Shards, hashfn.KeyedFromRNG(set.src))
	set.steer.Store(&st)
	set.shards = make([]*engine.Stack, cfg.Shards)
	set.inbox = make([]*Ring[[]byte], cfg.Shards)
	set.handoff = make([][]*Ring[Handoff], cfg.Shards)
	for i := range set.shards {
		i := i
		s := engine.NewStack(addr, cfg.NewDemuxer(i), cfg.Seed+uint64(i)*0x51_7c_c1+1)
		s.OnAccept = func(c *engine.Conn) { set.registerAccept(i, c) }
		set.shards[i] = s
		set.inbox[i] = NewRing[[]byte](inboxCap)
		set.handoff[i] = make([]*Ring[Handoff], cfg.Shards)
		for j := range set.handoff[i] {
			if j != i {
				set.handoff[i][j] = NewRing[Handoff](handoffCap)
			}
		}
	}
	return set, nil
}

// SetTelemetry re-homes the set's failure-domain metric bundle — and
// every shard Stack's engine bundle — on reg, so one snapshot carries
// the shed ledger, the health gauges, and the per-reason engine drops
// together.
func (set *StackSet) SetTelemetry(reg *telemetry.Registry) {
	set.m = telemetry.NewShardSetMetrics(reg, len(set.shards))
	for _, s := range set.shards {
		s.SetTelemetry(reg)
	}
}

// SetEgressTap fans an egress tap out to every shard Stack: outbound
// frames are handed to fn the instant they are produced instead of
// queuing on the per-shard outboxes for Drain — the serving frontend's
// path, which would otherwise rescan every shard's outbox per delivery.
// fn runs with the producing shard's stack lock held, so it must not
// call back into the set (append to a caller-owned queue and process
// after Deliver/Tick returns). Passing nil restores Drain queuing.
func (set *StackSet) SetEgressTap(fn func(frame []byte)) {
	for _, s := range set.shards {
		s.SetEgressTap(fn)
	}
}

// Release drops a closed connection's claim and frees its directory
// slot. The engine tears PCBs down on its own; claims are swept lazily
// by Rekey, which a long-running server may never call — a serving
// frontend instead calls Release when a session ends so the claims
// table and directory track the live population. Releasing a key with
// no claim is a no-op, and a late frame for the released tuple simply
// re-steers by hash (finding no PCB there).
//
// Like Rekey, Release is control-plane: call it from the same goroutine
// that drives Deliver/Tick, not concurrently with them.
func (set *StackSet) Release(key core.Key) {
	set.claimMu.Lock()
	cl, ok := set.claims[key]
	if ok {
		delete(set.claims, key)
	}
	set.claimMu.Unlock()
	if ok && cl.id >= 0 {
		set.dir.Release(cl.id, cl.gen, cl.owner)
	}
}

// registerAccept records a freshly accepted connection's directory claim.
// Called from the owning shard's OnAccept hook (shard lock held), so it
// touches only the leaf claim lock.
func (set *StackSet) registerAccept(shard int, c *engine.Conn) {
	id, gen, ok := set.dir.Assign(shard)
	if !ok {
		// Directory full: the connection still works — it is pinned to
		// the shard that accepted it and cannot be migrated by a future
		// rekey or drain. The slotless claim (id -1) records the home so
		// frames still find the connection after the steering function
		// moves on; what is shed here is the migration capability, and
		// the ledger attributes it to directory-full.
		set.DirExhausted++
		set.m.DirectoryFull.Inc()
		set.ShedDirectoryFull++
		set.m.ShedDirectoryFull.Inc()
		set.claimMu.Lock()
		set.claims[c.Key()] = claim{id: -1, owner: shard}
		set.claimMu.Unlock()
		return
	}
	set.claimMu.Lock()
	set.claims[c.Key()] = claim{id: id, gen: gen, owner: shard}
	set.claimMu.Unlock()
}

// Shards returns the shard count.
func (set *StackSet) Shards() int { return len(set.shards) }

// Shard exposes shard i's Stack for inspection (stats, netstat).
func (set *StackSet) Shard(i int) *engine.Stack { return set.shards[i] }

// Steering returns the current steering function.
func (set *StackSet) Steering() Steering { return *set.steer.Load() }

// Addr implements engine.LossyServer.
func (set *StackSet) Addr() wire.Addr { return set.addr }

// Listen implements engine.LossyServer by fanning the listener out to
// every shard: each shard owns a private listener PCB, so a SYN is
// accepted wherever its tuple steers and the connection lives its whole
// life on that shard (until a rekey migrates it).
func (set *StackSet) Listen(port uint16, h engine.Handler) error {
	for i, s := range set.shards {
		if err := s.Listen(port, h); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// SetTimers implements engine.LossyServer, fanning to every shard.
func (set *StackSet) SetTimers(rto float64, maxRetries int, msl float64) {
	for _, s := range set.shards {
		s.SetTimers(rto, maxRetries, msl)
	}
}

// SetBacklog implements engine.LossyServer. Each shard receives the full
// backlog: steering decides which shard a SYN reaches, so a per-shard
// split would refuse bursts that happen to steer together.
func (set *StackSet) SetBacklog(n int) {
	for _, s := range set.shards {
		s.SetBacklog(n)
	}
}

// LifecycleCounters implements engine.LossyServer by summing the shards.
func (set *StackSet) LifecycleCounters() (retransmits, aborts, synExpired, timeWaitExpired uint64) {
	for _, s := range set.shards {
		r, a, se, tw := s.LifecycleCounters()
		retransmits += r
		aborts += a
		synExpired += se
		timeWaitExpired += tw
	}
	return
}

// steerFrame picks the owning shard for a raw frame: the keyed hash of
// its full tuple. Fragments carry no ports, so the set reassembles them
// first (under its own small lock — fragmentation is the rare path) and
// steers the rebuilt datagram; an undecodable frame goes to shard 0,
// whose Stack will account the parse error. A keyed result also carries
// the frame's connection key so the delivery path can consult the
// claims table without re-parsing.
func (set *StackSet) steerFrame(frame []byte) (int, core.Key, bool, []byte) {
	tup, err := wire.ExtractTuple(frame)
	if err == nil {
		return set.steer.Load().Shard(tup), core.KeyFromTuple(tup), true, frame
	}
	if errors.Is(err, wire.ErrFragmented) {
		set.reasmMu.Lock()
		set.frames++
		if set.frames%512 == 0 {
			set.reasm.Reap(float64(set.frames), 4096)
		}
		whole, ferr := set.reasm.Add(frame, float64(set.frames))
		set.reasmMu.Unlock()
		if ferr != nil || whole == nil {
			// Malformed fragment or datagram still incomplete: shard 0
			// reports the former; the latter is simply absorbed.
			if ferr != nil {
				return 0, core.Key{}, false, frame
			}
			return -1, core.Key{}, false, nil
		}
		if tup, err = wire.ExtractTuple(whole); err == nil {
			return set.steer.Load().Shard(tup), core.KeyFromTuple(tup), true, whole
		}
		return 0, core.Key{}, false, whole
	}
	return 0, core.Key{}, false, frame
}

// homeOf resolves a keyed frame's true home shard. The steering hash is
// the fast default, but three control-plane events leave it pointing
// away from a connection's actual owner: a rekey whose handoff ring was
// full reverted the move, a directory-full accept pinned the connection
// where its SYN landed, and a drain rehomed a dead shard's connections.
// The claims table records the authoritative owner in all three cases.
// A frame whose steered shard is dead and that has no claim — a fresh
// SYN, or a handshake that was drained before it completed — re-steers
// by the rescue fold, the same choice the drain made, so both sides of
// the failover agree without extra rendezvous state.
func (set *StackSet) homeOf(idx int, key core.Key) int {
	set.claimMu.Lock()
	cl, ok := set.claims[key]
	set.claimMu.Unlock()
	if ok {
		return cl.owner
	}
	if !set.alive(idx) {
		if to, ok := set.rescueShard(key.Tuple()); ok {
			return to
		}
	}
	return idx
}

// pushInbox enqueues a frame on shard idx's inbox through the
// backpressure machinery: when the ring is full (or wedged by a fault),
// the push is retried a bounded number of times with a growing forced
// consumption between attempts — queued frames drain *before* the new
// one enqueues, so delivery order is preserved; the old direct-delivery
// fallback inverted it. A consumer that cannot make progress (crashed,
// stalled, wedged) exhausts the budget and the frame is shed, counted
// against inbox-full.
func (set *StackSet) pushInbox(idx int, frame []byte, v FaultVerdict) bool {
	if !v.Wedge && set.inbox[idx].Push(frame) {
		return true
	}
	set.InboxFullEvents++
	set.m.InboxFull.Inc()
	if !v.Wedge && !v.Crash && !v.Stall {
		force := 1
		for attempt := 0; attempt < set.handoffRetries(); attempt++ {
			set.consume(idx, force)
			if set.inbox[idx].Push(frame) {
				return true
			}
			force *= 2
		}
	}
	set.shedInboxFrame(idx)
	return false
}

// consume pops shard idx's inbox into its Stack, at most max frames
// (max <= 0 means drain fully), returning the last delivery's result.
func (set *StackSet) consume(idx int, max int) (core.Result, error) {
	var last core.Result
	var lastErr error
	for n := 0; max <= 0 || n < max; n++ {
		f, ok := set.inbox[idx].Pop()
		if !ok {
			break
		}
		set.health[idx].consumed++
		last, lastErr = set.shards[idx].Deliver(f)
	}
	return last, lastErr
}

// Deliver implements engine.LossyServer: steer, resolve the true home
// (claims table, then the rescue fold when the steered shard is dead),
// enqueue on the owning shard's inbox ring under backpressure, and
// drain that ring into the shard's Stack as the active fault verdict
// allows. The returned Result is the shard demuxer's lookup result for
// this frame (zero for an absorbed fragment or a frame left queued on a
// faulted shard), so callers can account examination costs exactly as
// with a single Stack.
//
//demux:owner(deliver)
func (set *StackSet) Deliver(frame []byte) (core.Result, error) {
	set.FramesIn++
	idx, key, keyed, whole := set.steerFrame(frame)
	if idx < 0 {
		set.Absorbed++
		return core.Result{}, nil // fragment absorbed, datagram incomplete
	}
	if keyed {
		idx = set.homeOf(idx, key)
	}
	set.Steered[idx]++
	if !set.alive(idx) {
		// A dead shard with no rescue: late frames for connections that
		// closed before the drain (their stale claim still names the
		// corpse), or a set with no survivors. Shed, attributed.
		set.shedInboxFrame(idx)
		return core.Result{}, nil
	}
	v := set.verdict(idx)
	if !set.pushInbox(idx, whole, v) {
		return core.Result{}, nil
	}
	if v.Crash || v.Stall {
		return core.Result{}, nil // queued; the consumer is not running
	}
	return set.consume(idx, v.MaxConsume)
}

// redeliver re-injects a frame salvaged from a drained shard's inbox:
// identical to Deliver except the frame was already counted into
// FramesIn (and Steered) when it first arrived.
func (set *StackSet) redeliver(frame []byte) {
	idx, key, keyed, whole := set.steerFrame(frame)
	if idx < 0 {
		set.Absorbed++
		return
	}
	if keyed {
		idx = set.homeOf(idx, key)
	}
	if !set.alive(idx) {
		set.shedInboxFrame(idx)
		return
	}
	v := set.verdict(idx)
	if !set.pushInbox(idx, whole, v) {
		return
	}
	if !v.Crash && !v.Stall {
		set.consume(idx, v.MaxConsume)
	}
}

// Drain implements engine.LossyServer, concatenating every shard's
// outbox in shard order — the deterministic merge a single egress NIC
// queue would apply.
func (set *StackSet) Drain() [][]byte {
	var out [][]byte
	for _, s := range set.shards {
		out = append(out, s.Drain()...)
	}
	return out
}

// Tick implements engine.LossyServer: every live shard's virtual clock
// advances together, each with its liveness heartbeat armed on its own
// wheel; a crashed shard's clock freezes (that is what the heartbeat
// detects) and a drained shard is decommissioned. After the clocks
// advance, any backlog a recovered or slow consumer left behind is
// drained, and the watchdog pass runs.
func (set *StackSet) Tick(now float64) {
	set.now = now
	for i, s := range set.shards {
		h := &set.health[i]
		if h.state == HealthDrained {
			continue
		}
		v := set.verdict(i)
		if v.Crash {
			// Frozen clock: no Tick, so no heartbeat. Baseline the beat at
			// first sighting so staleness is measured from here, not from
			// the epoch.
			if h.lastBeat == 0 {
				h.lastBeat = now
			}
			continue
		}
		set.ensureHeartbeat(i, now)
		s.Tick(now)
		if !v.Stall {
			set.consume(i, v.MaxConsume)
		}
	}
	set.checkHealth(now)
}

// TimeWaitCount sums the shards' TIME_WAIT populations.
func (set *StackSet) TimeWaitCount() int {
	n := 0
	for _, s := range set.shards {
		n += s.TimeWaitCount()
	}
	return n
}

// Len sums the shards' demuxer populations (listeners included).
func (set *StackSet) Len() int {
	n := 0
	for _, s := range set.shards {
		n += s.Demuxer().Len()
	}
	return n
}

// Rekey draws a fresh steering key and migrates every connection whose
// shard assignment changed, over the handoff rings: for each moving
// connection the old shard Extracts the PCB, the directory Move bumps
// its generation to authorize exactly this transfer, the Handoff crosses
// the SPSC ring, and the new shard validates the claim against the
// directory before Adopting. It returns the number of connections
// migrated.
//
// Rekey is a control-plane quiesce point: the caller must not run it
// concurrently with Deliver (between Shuttle rounds in the lossy
// harness, between measurement windows in the benches). This is the same
// contract as the overload package's online rekey — steering changes are
// epoch transitions, not per-packet events.
func (set *StackSet) Rekey() int {
	n := len(set.shards)
	set.Rekeys++
	newSteer := NewSteering(n, hashfn.KeyedFromRNG(set.src))

	// Sweep the claim table against the live connections first: claims
	// whose connection has since closed release their directory slots.
	live := make(map[core.Key]bool)
	for _, s := range set.shards {
		for _, ci := range s.Netstat() {
			if !ci.Key.IsWildcard() {
				live[ci.Key] = true
			}
		}
	}
	type move struct {
		k  core.Key
		cl claim
	}
	var moves []move
	set.claimMu.Lock()
	for k, cl := range set.claims { //demux:orderinvariant releases and the collected move set are per-key independent; movers are sorted below
		if !live[k] {
			if cl.id >= 0 {
				set.dir.Release(cl.id, cl.gen, cl.owner)
			}
			delete(set.claims, k)
			continue
		}
		if cl.id < 0 {
			continue // directory-full pin: works where it is, cannot migrate
		}
		if to := newSteer.Shard(k.Tuple()); to != cl.owner && set.alive(to) {
			moves = append(moves, move{k, cl})
		}
	}
	set.claimMu.Unlock()
	// Deterministic migration order: ring-full fallbacks depend on the
	// order movers hit the handoff rings, so the launch sequence must not
	// inherit map iteration order.
	sort.Slice(moves, func(i, j int) bool { return keyLess(moves[i].k, moves[j].k) })

	// Extract each mover, authorize via the directory, and launch the
	// handoff. The steering swap happens after the extracts so the new
	// function never steers a frame at a shard that still owns nothing —
	// the caller's quiesce contract means no frames arrive mid-rekey
	// anyway, and the swap order keeps the invariant even if one does.
	migrated := 0
	for _, mv := range moves {
		k, cl := mv.k, mv.cl
		to := newSteer.Shard(k.Tuple())
		pcb, ok := set.shards[cl.owner].Extract(k)
		if !ok {
			continue // raced with a timer teardown between sweep and now
		}
		newGen, ok := set.dir.Move(cl.id, cl.gen, cl.owner, to)
		if !ok {
			// The claim was stale — someone else moved or released the
			// slot. Re-adopt locally: the connection must not be lost.
			set.StaleHandoffs++
			_ = set.shards[cl.owner].Adopt(pcb)
			continue
		}
		// Bounded handoff retry: a full ring is drained into its target
		// between attempts (backoff by making room — virtual time only
		// advances in Tick). A ring that stays refused (wedged by a
		// fault, or the target cannot absorb) reverts the move: the
		// connection keeps working on its home shard and the forgone
		// migration is shed, attributed to handoff-full.
		pushed := false
		for attempt := 0; attempt < set.handoffRetries(); attempt++ {
			if set.pushHandoff(cl.owner, to, Handoff{PCB: pcb, ID: cl.id, Gen: newGen}) {
				pushed = true
				break
			}
			set.HandoffFullEvents++
			set.m.HandoffFull.Inc()
			migrated += set.adoptPending(to)
		}
		if !pushed {
			set.ShedHandoffFull++
			set.m.ShedHandoffFull.Inc()
			if g, ok := set.dir.Move(cl.id, newGen, to, cl.owner); ok {
				newGen = g
			}
			_ = set.shards[cl.owner].Adopt(pcb)
			set.claimMu.Lock()
			set.claims[k] = claim{id: cl.id, gen: newGen, owner: cl.owner}
			set.claimMu.Unlock()
			continue
		}
		set.claimMu.Lock()
		set.claims[k] = claim{id: cl.id, gen: newGen, owner: to}
		set.claimMu.Unlock()
	}
	set.steer.Store(&newSteer)

	// Each live shard drains its incoming handoff rings and adopts what
	// the directory still says is its own.
	for to := range set.shards {
		if set.alive(to) {
			migrated += set.adoptPending(to)
		}
	}
	set.Migrations += uint64(migrated)
	return migrated
}

// pushHandoff offers a migrating connection to the `from`->`to` handoff
// ring, honoring the destination's fault verdict: a wedged shard's
// rings refuse pushes just like its inbox does.
func (set *StackSet) pushHandoff(from, to int, h Handoff) bool {
	if set.verdict(to).Wedge {
		return false
	}
	return set.handoff[from][to].Push(h)
}

// keyLess is a total order over connection keys (local endpoint, then
// remote) so rekey migration launches in a reproducible sequence.
func keyLess(a, b core.Key) bool {
	if c := bytes.Compare(a.LocalAddr[:], b.LocalAddr[:]); c != 0 {
		return c < 0
	}
	if a.LocalPort != b.LocalPort {
		return a.LocalPort < b.LocalPort
	}
	if c := bytes.Compare(a.RemoteAddr[:], b.RemoteAddr[:]); c != 0 {
		return c < 0
	}
	return a.RemotePort < b.RemotePort
}

// adoptPending drains every handoff ring aimed at shard `to`, adopting
// each PCB whose directory claim still names this shard at exactly the
// handed-off generation. A claim that fails the check is stale — a later
// move or release overtook the message in flight — and is dropped
// without touching the PCB: whoever bumped the generation owns it now.
func (set *StackSet) adoptPending(to int) int {
	adopted := 0
	for from := range set.shards {
		ring := set.handoff[from][to]
		if ring == nil {
			continue
		}
		for {
			h, ok := ring.Pop()
			if !ok {
				break
			}
			if !set.dir.OwnedBy(h.ID, h.Gen, to) {
				set.StaleHandoffs++
				continue
			}
			if err := set.shards[to].Adopt(h.PCB); err != nil {
				// A duplicate key on the target shard means the connection
				// was re-established there while this handoff was in
				// flight; the stale copy loses.
				set.StaleHandoffs++
				continue
			}
			adopted++
		}
	}
	return adopted
}
