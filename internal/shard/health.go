// Shard failure domains: the fault-injection surface, the health
// watchdog, and the live drain that fails a sick shard over to the
// survivors.
//
// The paper's multi-queue cost model silently assumes every queue keeps
// consuming. This file is what happens when one stops. Four faults
// cover the ways a real per-CPU queue dies or limps:
//
//   - Crash: the shard's event loop is gone. Its virtual clock freezes
//     (StackSet.Tick skips it), so the heartbeat armed on its own timer
//     wheel stops beating — which is exactly how the watchdog tells a
//     crashed shard from an idle one.
//   - Stall: the clock still advances (heartbeats keep coming) but the
//     consumer never pops its inbox; queued frames age in place. The
//     watchdog catches this through the progress counter instead.
//   - Wedge: the shard's rings refuse pushes (a producer-side failure).
//     The shard itself is alive, so this degrades — sheds, counted —
//     rather than triggering a drain.
//   - Slow: the consumer pops at most MaxConsume frames per delivery;
//     backlog grows and the backpressure machinery starts shedding.
//
// Detection drives a live drain (FailOver): every PCB on the sick shard
// is walked through the generation-checked directory and Extract/Adopt
// into a survivor chosen by folding the steering hash over the live
// shards — the same fold Deliver's re-route applies, so both sides of
// the failover agree on each connection's rescue target without any
// shared "who moved where" table beyond the claims map. Frames still
// queued on the dead inbox are salvaged FIFO and re-delivered after the
// PCBs land. Connections are never lost by the control plane: every
// fallback (stale claim, wedged handoff ring) ends in a direct Adopt.
//
// Degradation is a ladder, not a cliff: full edges shed the single
// frame or forgo the single migration at hand, count it against exactly
// one reason (inbox-full, handoff-full, directory-full, backlog-full),
// and mark the shard Degraded until a check passes with no new sheds.
// The Accounting ledger proves conservation: every frame handed to
// Deliver is absorbed, consumed, shed-with-reason, or still queued.
package shard

import (
	"fmt"

	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/wire"
)

// HealthState is the watchdog's verdict on one shard. States only ever
// move up the ladder except Degraded, which clears when a health check
// passes without new sheds; Drained is terminal for the set's lifetime.
type HealthState int

const (
	// HealthHealthy: beating, consuming, not shedding.
	HealthHealthy HealthState = iota
	// HealthDegraded: alive but shedding — some full edge refused work
	// since the last check.
	HealthDegraded
	// HealthSick: the watchdog detected a frozen clock or a consumer
	// that stopped making progress; a drain is due.
	HealthSick
	// HealthDrained: the shard's connections were failed over to the
	// survivors; the shard is decommissioned.
	HealthDrained
)

// String names the state for reports.
func (h HealthState) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthSick:
		return "sick"
	case HealthDrained:
		return "drained"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// FaultVerdict is what a fault function decrees for one shard at one
// instant. The zero verdict is "no fault".
type FaultVerdict struct {
	// Crash freezes the shard: no Tick (so its timer wheel and heartbeat
	// stop), no consumption. Frames steered at it queue until the inbox
	// fills, then shed.
	Crash bool
	// Stall keeps the clock running but stops the consumer: heartbeats
	// continue, the inbox backlog ages.
	Stall bool
	// Wedge makes the shard's rings (inbox and inbound handoffs) refuse
	// pushes.
	Wedge bool
	// MaxConsume > 0 caps how many frames the shard pops per delivery —
	// a slow consumer rather than a dead one.
	MaxConsume int
}

// FaultFunc is the injection point: consulted per shard per event under
// virtual time. internal/chaos builds these from scheduled rules; tests
// may use literal closures. Evaluated from the set's single control
// goroutine only.
type FaultFunc func(shard int, now float64) FaultVerdict

// Watchdog defaults, overridable via Config. Values are virtual seconds.
const (
	// DefaultHeartbeatInterval is how often each shard's wheel proves the
	// clock is advancing.
	DefaultHeartbeatInterval = 0.05
	// DefaultStallThreshold is how stale a heartbeat (crash) or a
	// progress mark (stall) may go before the shard is declared sick. It
	// is sized like an RTO: long enough that an idle-but-healthy shard
	// never trips it, short enough that connections ride out the outage
	// on their retransmission timers.
	DefaultStallThreshold = 0.5
	// DefaultHandoffRetries bounds how many times a full handoff or
	// inbox ring is re-offered (with forced draining in between) before
	// the work is shed or downgraded to a direct adopt.
	DefaultHandoffRetries = 3
)

// shardHealth is the watchdog's per-shard ledger. All fields are
// touched only from the set's single control goroutine (the Deliver /
// Tick / control-plane caller); the heartbeat callback also runs there,
// inside the shard's own Tick.
type shardHealth struct {
	state HealthState
	// hbTimer records that the real heartbeat is armed on the shard's
	// wheel; lastBeat is the newest beat (baselined to the first time
	// the watchdog saw the shard, so a set whose clock starts late does
	// not instantly condemn every shard).
	hbTimer  bool
	lastBeat float64
	// consumed counts frames this shard popped and delivered; the
	// watchdog compares it against progressMark to detect a consumer
	// that stopped while its inbox is non-empty.
	consumed     uint64
	progressMark uint64
	lastProgress float64
	// sheds vs shedMark drives the Degraded transition; backlogMark is
	// the high-water fold of the shard's engine-level backlog drops into
	// the set's shed ledger.
	sheds       uint64
	shedMark    uint64
	backlogMark uint64
	// detectedAt is when the shard went sick (for recovery-latency
	// reporting).
	detectedAt float64
}

// SetFaultFunc installs (or clears, with nil) the fault injection
// function. Like Rekey, a control-plane call: not concurrent with
// Deliver.
func (set *StackSet) SetFaultFunc(f FaultFunc) { set.fault = f }

// Health returns shard i's current health state.
func (set *StackSet) Health(i int) HealthState { return set.health[i].state }

// Drained reports whether shard i has been decommissioned by a drain.
func (set *StackSet) Drained(i int) bool { return set.health[i].state == HealthDrained }

// verdict evaluates the fault function for shard i at the set's current
// virtual time.
func (set *StackSet) verdict(i int) FaultVerdict {
	if set.fault == nil {
		return FaultVerdict{}
	}
	return set.fault(i, set.now)
}

// alive reports whether shard i can still accept work: sick and drained
// shards cannot.
func (set *StackSet) alive(i int) bool {
	return set.health[i].state != HealthSick && set.health[i].state != HealthDrained
}

// liveCount counts shards that can still accept work.
func (set *StackSet) liveCount() int {
	n := 0
	for i := range set.health {
		if set.alive(i) {
			n++
		}
	}
	return n
}

func (set *StackSet) heartbeatInterval() float64 {
	if set.hbInterval > 0 {
		return set.hbInterval
	}
	return DefaultHeartbeatInterval
}

func (set *StackSet) stallThreshold() float64 {
	if set.stallThresh > 0 {
		return set.stallThresh
	}
	return DefaultStallThreshold
}

func (set *StackSet) handoffRetries() int {
	if set.retryBudget > 0 {
		return set.retryBudget
	}
	return DefaultHandoffRetries
}

// ensureHeartbeat arms shard i's liveness beat on its own timer wheel.
// The beat lives on the shard's wheel precisely so that a frozen clock
// stops beating; the callback runs inside the shard's Tick and only
// stamps the ledger.
func (set *StackSet) ensureHeartbeat(i int, now float64) {
	h := &set.health[i]
	if h.hbTimer {
		return
	}
	h.hbTimer = true
	if now > h.lastBeat {
		h.lastBeat = now
	}
	set.shards[i].Heartbeat(set.heartbeatInterval(), func(at float64) {
		h.lastBeat = at
	})
}

// rescueShard picks the surviving shard for a tuple by folding the
// steering hash over the live shards. Deliver's re-route and FailOver's
// drain both use this fold, so a retransmitted frame arriving after the
// drain lands exactly where the drain put its connection — no shared
// rendezvous state beyond the health ledger itself.
func (set *StackSet) rescueShard(tup wire.Tuple) (int, bool) {
	live := make([]int, 0, len(set.shards))
	for i := range set.shards {
		if set.alive(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return 0, false
	}
	return live[hashfn.ChainIndex(set.steer.Load().key.Hash(tup), len(live))], true
}

// shedInboxFrame records one frame lost at shard idx's inbox edge.
func (set *StackSet) shedInboxFrame(idx int) {
	set.ShedInboxFull++
	set.m.ShedInboxFull.Inc()
	set.health[idx].sheds++
}

// checkHealth is the watchdog pass, run at the end of every Tick: fold
// engine-level backlog drops into the shed ledger, detect frozen clocks
// (stale heartbeat) and stuck consumers (non-empty inbox with no
// consumption progress), drain what is sick, and walk the Degraded
// transition off shards that stopped shedding.
func (set *StackSet) checkHealth(now float64) {
	for i := range set.shards {
		h := &set.health[i]
		// The engine already counted these drops by reason; mirroring the
		// delta into shard_shed_total{reason="backlog-full"} puts the whole
		// degradation ladder on one metric family.
		st := set.shards[i].Stats()
		if d := st.DroppedBacklogFull; d > h.backlogMark {
			delta := d - h.backlogMark
			h.backlogMark = d
			set.ShedBacklogFull += delta
			set.m.ShedBacklogFull.Add(delta)
			h.sheds += delta
		}
		if h.state == HealthDrained {
			continue
		}
		sick := false
		if h.lastBeat > 0 && now-h.lastBeat > set.stallThreshold() {
			sick = true // clock frozen: crash
		}
		if set.inbox[i].Len() > 0 && h.consumed == h.progressMark &&
			now-h.lastProgress > set.stallThreshold() {
			sick = true // clock beats, consumer does not
		}
		if h.consumed != h.progressMark || set.inbox[i].Len() == 0 {
			h.progressMark = h.consumed
			h.lastProgress = now
		}
		if sick {
			set.FailOver(i)
			continue
		}
		if h.sheds > h.shedMark {
			h.shedMark = h.sheds
			if h.state != HealthDegraded {
				h.state = HealthDegraded
				set.m.SetHealth(i, float64(HealthDegraded))
			}
		} else if h.state == HealthDegraded {
			h.state = HealthHealthy
			set.m.SetHealth(i, float64(HealthHealthy))
		}
	}
	degraded := 0
	for i := range set.health {
		if set.health[i].state != HealthHealthy {
			degraded++
		}
	}
	set.m.Degraded.Set(float64(degraded))
}

// FailOver drains every connection off shard sick into the survivors:
// salvage the frames still queued on its inbox, walk its PCBs in
// netstat order, authorize each move through the generation-checked
// directory, hand the PCB across the SPSC handoff ring (bounded retry,
// draining the destination between attempts; a ring that stays wedged
// downgrades to a direct Adopt — the handoff transport is shed, never
// the connection), then re-deliver the salvaged frames to the
// connections' new homes. The watchdog calls this when a shard goes
// sick; an operator may call it directly to decommission a shard.
//
// Like Rekey, FailOver is a control-plane quiesce point: not concurrent
// with Deliver. It returns the number of connections rehomed. A set
// with no surviving shard stays Sick — there is nowhere to drain to.
func (set *StackSet) FailOver(sick int) int {
	h := &set.health[sick]
	if h.state == HealthDrained {
		return 0
	}
	if h.state != HealthSick {
		h.state = HealthSick
		h.detectedAt = set.now
		set.m.SetHealth(sick, float64(HealthSick))
	}
	if set.liveCount() == 0 {
		return 0
	}
	set.Drains++
	set.m.Drains.Inc()

	// Salvage the queued frames first, FIFO: they re-deliver only after
	// their connections land on the survivors.
	var salvage [][]byte
	for {
		f, ok := set.inbox[sick].Pop()
		if !ok {
			break
		}
		salvage = append(salvage, f)
	}

	moved := 0
	for _, ci := range set.shards[sick].Netstat() {
		if ci.Key.IsWildcard() {
			continue // the listener stays; steering routes around the corpse
		}
		k := ci.Key
		to, ok := set.rescueShard(k.Tuple())
		if !ok {
			break
		}
		set.claimMu.Lock()
		cl, claimed := set.claims[k]
		set.claimMu.Unlock()
		pcb, ok := set.shards[sick].Extract(k)
		if !ok {
			continue // raced a timer teardown inside Extract's walk
		}
		if !claimed || cl.id < 0 {
			// No directory slot: a handshake still in SYN_RCVD (claims are
			// stamped at accept) or a connection accepted while the
			// directory was full. Rehome it directly; frames find it via
			// the claims entry, or — pre-accept — via the rescue fold.
			_ = set.shards[to].Adopt(pcb)
			set.claimMu.Lock()
			if claimed {
				set.claims[k] = claim{id: -1, owner: to}
			}
			set.claimMu.Unlock()
			moved++
			continue
		}
		newGen, ok := set.dir.Move(cl.id, cl.gen, cl.owner, to)
		if !ok {
			// Defensive: the claim was overtaken. Never lose the
			// connection — rehome it without a slot.
			set.StaleHandoffs++
			set.m.StaleHandoffs.Inc()
			_ = set.shards[to].Adopt(pcb)
			set.claimMu.Lock()
			set.claims[k] = claim{id: -1, owner: to}
			set.claimMu.Unlock()
			moved++
			continue
		}
		pushed := false
		for attempt := 0; attempt < set.handoffRetries(); attempt++ {
			if set.pushHandoff(sick, to, Handoff{PCB: pcb, ID: cl.id, Gen: newGen}) {
				pushed = true
				break
			}
			set.HandoffFullEvents++
			set.m.HandoffFull.Inc()
			set.adoptPending(to) // back off by making room, not by waiting
		}
		if !pushed {
			set.ShedHandoffFull++
			set.m.ShedHandoffFull.Inc()
			_ = set.shards[to].Adopt(pcb)
		}
		set.claimMu.Lock()
		set.claims[k] = claim{id: cl.id, gen: newGen, owner: to}
		set.claimMu.Unlock()
		moved++
	}
	for to := range set.shards {
		if set.alive(to) {
			set.adoptPending(to)
		}
	}
	h.state = HealthDrained
	set.m.SetHealth(sick, float64(HealthDrained))
	set.DrainedConns += uint64(moved)
	set.m.DrainedConns.Add(uint64(moved))

	for _, f := range salvage {
		set.SalvagedFrames++
		set.m.Salvaged.Inc()
		set.redeliver(f)
	}

	set.LastDrainAt = set.now
	set.LastDrainRecovery = set.now - h.lastProgress
	set.m.DrainRecovery.Set(set.LastDrainRecovery)
	return moved
}

// Accounting is the set-level conservation ledger. Every frame handed
// to Deliver ends in exactly one bucket: absorbed (a fragment of a
// still-incomplete datagram), consumed (popped from an inbox into a
// shard's Stack, whose own per-reason counters take over from there),
// shed (lost at a full or wedged inbox edge, attributed to a reason),
// or still queued on an inbox ring.
type Accounting struct {
	FramesIn uint64
	Absorbed uint64
	Consumed uint64
	Shed     uint64
	Queued   uint64
}

// Balanced reports whether the ledger conserves frames — the "zero
// unaccounted packet losses" acceptance check.
func (a Accounting) Balanced() bool {
	return a.FramesIn == a.Absorbed+a.Consumed+a.Shed+a.Queued
}

// Accounting captures the conservation ledger. Control-plane: quiesced
// with respect to Deliver, like Rekey.
func (set *StackSet) Accounting() Accounting {
	a := Accounting{
		FramesIn: set.FramesIn,
		Absorbed: set.Absorbed,
		Shed:     set.ShedInboxFull,
	}
	for i := range set.shards {
		a.Consumed += set.health[i].consumed
		a.Queued += uint64(set.inbox[i].Len())
	}
	return a
}
