package shard

import (
	"sync"
	"sync/atomic"
)

// Directory is the generation-checked connection-ID table that makes
// cross-shard migration safe. It extends the DirectIndex / connid idiom
// — a dense array indexed by a small integer the server chose at accept
// time — with one packed atomic word per slot:
//
//	bits 32..63  generation (bumped on every assign, move, and release)
//	bits  0..31  owner shard + 1 (0 means the slot is free)
//
// The hot path (a shard deciding whether a handed-off or stale-steered
// frame still belongs to it) is a single atomic load and compare. The
// control plane (assign/release and the free list) takes a mutex — those
// run at connection-arrival rate, not packet rate. Because the
// generation bumps on every transition, a handoff message or a cached
// (id, gen) pair from before a migration can never validate against the
// slot again: stale resolution fails closed.
type Directory struct {
	// slots needs no //demux:atomic marker: the element type is
	// atomic.Uint64, so every slot access is atomic by construction, and
	// the slice header itself is immutable after NewDirectory (fixed
	// capacity — growth would race the hot-path loads).
	slots []atomic.Uint64

	mu   sync.Mutex
	free []int
}

const (
	dirGenShift  = 32
	dirOwnerMask = (uint64(1) << dirGenShift) - 1
)

func dirPack(gen uint32, owner int) uint64 {
	return uint64(gen)<<dirGenShift | uint64(owner+1)&dirOwnerMask
}

// NewDirectory returns a directory with a fixed capacity of connection
// IDs. Capacity is fixed so the hot-path slot loads never race a table
// growth; size it to the engine's connection budget.
func NewDirectory(capacity int) *Directory {
	d := &Directory{slots: make([]atomic.Uint64, capacity)}
	d.free = make([]int, capacity)
	// Hand out low IDs first so dense workloads stay dense.
	for i := range d.free {
		d.free[i] = capacity - 1 - i
	}
	return d
}

// Cap returns the fixed connection-ID capacity.
func (d *Directory) Cap() int { return len(d.slots) }

// Len returns the number of assigned IDs.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.slots) - len(d.free)
}

// Assign allocates a fresh connection ID owned by the given shard and
// returns it with the slot's new generation. ok is false when the
// directory is full. The generation continues from the slot's previous
// life, so an ID released and reassigned never revalidates old frames.
func (d *Directory) Assign(owner int) (id int, gen uint32, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.free) == 0 {
		return 0, 0, false
	}
	id = d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	prev := d.slots[id].Load()
	gen = uint32(prev>>dirGenShift) + 1
	d.slots[id].Store(dirPack(gen, owner))
	return id, gen, true
}

// Owner returns the shard currently owning id and the slot's generation.
// ok is false for a free or out-of-range slot.
//
//demux:hotpath
func (d *Directory) Owner(id int) (owner int, gen uint32, ok bool) {
	if id < 0 || id >= len(d.slots) {
		return 0, 0, false
	}
	v := d.slots[id].Load()
	if v&dirOwnerMask == 0 {
		return 0, 0, false
	}
	return int(v&dirOwnerMask) - 1, uint32(v >> dirGenShift), true
}

// OwnedBy reports whether slot id is currently owned by shard owner at
// exactly generation gen — the one-load check a shard runs before
// resolving a handed-off frame. Any intervening move or release bumped
// the generation, so a stale claim fails.
//
//demux:hotpath
func (d *Directory) OwnedBy(id int, gen uint32, owner int) bool {
	if id < 0 || id >= len(d.slots) {
		return false
	}
	return d.slots[id].Load() == dirPack(gen, owner)
}

// Move transfers ownership of id from shard `from` to shard `to`,
// bumping the generation, and returns the new generation. It fails
// (ok=false) when the slot is not currently owned by `from` at
// generation gen — meaning the caller's view was already stale and it
// must not migrate the connection.
func (d *Directory) Move(id int, gen uint32, from, to int) (newGen uint32, ok bool) {
	if id < 0 || id >= len(d.slots) {
		return 0, false
	}
	old := dirPack(gen, from)
	newGen = gen + 1
	if !d.slots[id].CompareAndSwap(old, dirPack(newGen, to)) {
		return 0, false
	}
	return newGen, true
}

// Release frees id, which must be owned by shard owner at generation
// gen. The generation bumps so late frames carrying the dead (id, gen)
// cannot match a future tenant. ok is false on a stale claim, in which
// case the slot is untouched.
func (d *Directory) Release(id int, gen uint32, owner int) bool {
	if id < 0 || id >= len(d.slots) {
		return false
	}
	old := dirPack(gen, owner)
	// Free marker keeps the bumped generation with owner bits zero.
	if !d.slots[id].CompareAndSwap(old, uint64(gen+1)<<dirGenShift) {
		return false
	}
	d.mu.Lock()
	d.free = append(d.free, id)
	d.mu.Unlock()
	return true
}
