// Package shard is the multi-queue demultiplexing engine: RSS-style flow
// steering with the keyed tuple hash spreads inbound packets across N
// independent shards, each owning its own demuxer discipline, its own
// timer wheel, and its own single-writer telemetry observer — no shared
// mutable state on the packet path. Cross-shard traffic (listener
// registration fan-out, connection migration after a steering rekey, and
// stale-steered frame forwarding) moves over lock-free single-producer /
// single-consumer handoff rings, with a generation-checked connection-ID
// directory extending the DirectIndex / connid idiom so a migrated PCB
// can never be resolved against a stale shard.
//
// This is the [Dov90]/EXP-PAR endgame the ROADMAP names: the paper
// demultiplexes on a uniprocessor, and the hashed table's second virtue —
// partitionability — is what lets lookup throughput scale with cores
// instead of serializing on one stack. The same decomposition pays even
// on one core: each shard's table holds 1/N of the connection
// population, so its chain walks (and its cache working set) shrink
// proportionally, which is the paper's C(N) argument applied per shard.
package shard

import "sync/atomic"

// Ring is a lock-free single-producer / single-consumer queue over a
// power-of-two buffer. Exactly one goroutine may Push and exactly one
// may Pop; under that contract every operation is wait-free and the
// only coherence traffic on the fast path is the occasional refresh of
// the cached peer index (the classic SPSC optimization: the producer
// re-reads the consumer's position only when the ring looks full, the
// consumer re-reads the producer's only when it looks empty).
//
// Slot contents are handed off through the release/acquire ordering of
// the index stores: a Pop that observes tail > i happens-after the Push
// that filled slot i.
//
//demux:spsc(producer=Push, consumer=Pop)
type Ring[T any] struct {
	buf  []T
	mask uint64

	// Consumer-owned line: head is the next slot to pop; cachedTail is
	// the consumer's last view of the producer's position.
	_          [64]byte
	head       atomic.Uint64 //demux:atomic
	cachedTail uint64        //demux:owned(consumer, peer=tail)

	// Producer-owned line: tail is the next slot to fill; cachedHead is
	// the producer's last view of the consumer's position.
	_          [64]byte
	tail       atomic.Uint64 //demux:atomic
	cachedHead uint64        //demux:owned(producer, peer=head)
	_          [64]byte
}

// NewRing returns an SPSC ring holding at least capacity elements
// (rounded up to a power of two, minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the approximate number of queued elements. It is exact
// when called by the producer or the consumer between their own
// operations.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push enqueues v, reporting false when the ring is full. Producer side
// only.
//
//demux:hotpath
func (r *Ring[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop dequeues the oldest element, reporting false when the ring is
// empty. Consumer side only.
//
//demux:hotpath
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // release the reference for GC
	r.head.Store(h + 1)
	return v, true
}
