package shard

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingFIFOAndWrap(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4 (rounded up)", r.Cap())
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring succeeded")
	}
	// Several laps around the buffer to exercise index wrap.
	next := 0
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.Push(lap*10 + i) {
				t.Fatalf("Push failed with %d queued", r.Len())
			}
		}
		if r.Push(-1) {
			t.Fatal("Push succeeded on a full ring")
		}
		if r.Len() != r.Cap() {
			t.Fatalf("Len = %d, want %d", r.Len(), r.Cap())
		}
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.Pop()
			if !ok || v != lap*10+i {
				t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, lap*10+i)
			}
		}
		_ = next
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("ring not empty after draining")
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing[string](1)
	if r.Cap() != 2 {
		t.Fatalf("Cap() = %d, want minimum 2", r.Cap())
	}
	r.Push("a")
	if v, ok := r.Pop(); !ok || v != "a" {
		t.Fatalf("Pop = (%q, %v)", v, ok)
	}
}

// TestRingSPSCConcurrent streams a long in-order sequence through a
// small ring with a producer and a consumer on separate goroutines,
// checking order and completeness. The ring is deliberately tiny so
// both the full path (producer refreshing cachedHead) and the empty
// path (consumer refreshing cachedTail) run constantly. Run with -race:
// the slot handoff and the cached-index scheme are exactly what the
// detector would catch if misordered.
func TestRingSPSCConcurrent(t *testing.T) {
	const n = 50_000
	r := NewRing[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if r.Push(i) {
				i++
			} else {
				// Yield on full so the test finishes promptly on a
				// single-CPU host; the ring itself never blocks.
				runtime.Gosched()
			}
		}
	}()
	for want := 0; want < n; {
		v, ok := r.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != want {
			t.Fatalf("popped %d, want %d (reorder or loss)", v, want)
		}
		want++
	}
	wg.Wait()
	if _, ok := r.Pop(); ok {
		t.Fatal("ring not empty after the full stream")
	}
}
