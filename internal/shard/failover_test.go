package shard

import (
	"bytes"
	"fmt"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/engine"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/telemetry"
	"tcpdemux/internal/wire"
)

// probeLossy runs the unfaulted lossy conformance exchange against a
// fresh n-shard set and returns both, so a failure test built on the
// same seeds can pick a victim shard that demonstrably owns traffic and
// a fault time that demonstrably lands mid-run. Both runs are fully
// deterministic, so the probe's steering matches the faulted run's
// steering exactly up to the fault.
func probeLossy(t *testing.T, n int, seed uint64) (*StackSet, *engine.LossyResult) {
	t.Helper()
	set := newSet(t, n, seed)
	res, err := engine.RunLossyExchange(nil, lossyCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("probe exchange did not complete (t=%v)", res.VirtualTime)
	}
	return set, res
}

func busiest(steered []uint64) int {
	best := 0
	for i, n := range steered {
		if n > steered[best] {
			best = i
		}
	}
	_ = steered[best]
	return best
}

// faultOn builds a FaultFunc applying v to one shard from time at on.
func faultOn(victim int, at float64, v FaultVerdict) FaultFunc {
	return func(sh int, now float64) FaultVerdict {
		if sh == victim && now >= at {
			return v
		}
		return FaultVerdict{}
	}
}

// TestCrashFailoverConformanceLossy is the failure-domain acceptance
// gate: crash 1 of 4 shards mid-run under the 20% drop / 10% dup link.
// The watchdog must detect the frozen clock, drain the victim's
// connections into the survivors, and every client — surviving and
// drained alike — must still collect byte-identical responses to the
// unfaulted single-stack run, with the conservation ledger balanced.
func TestCrashFailoverConformanceLossy(t *testing.T) {
	single, err := engine.RunLossyExchange(
		core.NewSequentHash(0, hashfn.Multiplicative{}), lossyCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !single.Completed {
		t.Fatalf("single-shard exchange did not complete (t=%v)", single.VirtualTime)
	}

	probe, probeRes := probeLossy(t, 4, 77)
	victim := busiest(probe.Steered)
	crashAt := probeRes.VirtualTime * 0.4
	if crashAt < 0.3 {
		crashAt = 0.3
	}

	set := newSet(t, 4, 77)
	set.SetFaultFunc(faultOn(victim, crashAt, FaultVerdict{Crash: true}))
	sharded, err := engine.RunLossyExchange(nil, lossyCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Completed {
		t.Fatalf("faulted exchange did not complete (t=%v)", sharded.VirtualTime)
	}
	if sharded.VirtualTime <= crashAt {
		t.Fatalf("exchange finished at %v, before the crash at %v", sharded.VirtualTime, crashAt)
	}

	for i := range single.Responses {
		if !bytes.Equal(single.Responses[i], sharded.Responses[i]) {
			t.Fatalf("client %d responses differ after failover:\nsingle:  %q\nfaulted: %q",
				i, single.Responses[i], sharded.Responses[i])
		}
	}

	if set.Drains != 1 {
		t.Fatalf("Drains = %d, want exactly 1", set.Drains)
	}
	if !set.Drained(victim) || set.Health(victim) != HealthDrained {
		t.Fatalf("victim shard %d health = %v, want drained", victim, set.Health(victim))
	}
	if set.DrainedConns == 0 {
		t.Fatalf("drain rehomed no connections off the busiest shard (steered %v)", probe.Steered)
	}
	if set.LastDrainAt <= crashAt {
		t.Fatalf("LastDrainAt = %v, not after the crash at %v", set.LastDrainAt, crashAt)
	}
	// Recovery latency is bounded by the stall threshold plus detection
	// slack — the "bounded number of virtual-time ticks" acceptance bound.
	if set.LastDrainRecovery <= 0 || set.LastDrainRecovery > 2*DefaultStallThreshold {
		t.Fatalf("LastDrainRecovery = %v, want in (0, %v]", set.LastDrainRecovery, 2*DefaultStallThreshold)
	}
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}

// TestStallFailoverDetectsStuckConsumer covers the second detection
// path: the victim's clock keeps beating but its consumer stops, so the
// watchdog must catch it through the progress counter, salvage the
// frames aged on its inbox, and drain it — with conformance and
// conservation intact.
func TestStallFailoverDetectsStuckConsumer(t *testing.T) {
	probe, probeRes := probeLossy(t, 4, 77)
	victim := busiest(probe.Steered)
	stallAt := probeRes.VirtualTime * 0.4
	if stallAt < 0.3 {
		stallAt = 0.3
	}

	set := newSet(t, 4, 77)
	set.SetFaultFunc(faultOn(victim, stallAt, FaultVerdict{Stall: true}))
	res, err := engine.RunLossyExchange(nil, lossyCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("stalled exchange did not complete (t=%v)", res.VirtualTime)
	}
	if set.Drains != 1 || !set.Drained(victim) {
		t.Fatalf("stall not drained: drains=%d health=%v", set.Drains, set.Health(victim))
	}
	// A stalled consumer leaves its inbox backlog in place; the drain
	// must have salvaged it rather than dropping it on the floor.
	if set.SalvagedFrames == 0 {
		t.Fatal("no frames salvaged from the stalled shard's inbox")
	}
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}

// TestWedgeDegradesWithoutDrain checks the degradation ladder: a shard
// whose rings refuse pushes for a bounded window sheds (counted,
// attributed) and is marked Degraded, but its clock and consumer are
// fine, so the watchdog must NOT drain it — and once the wedge clears
// and the sheds stop, the shard must walk back to Healthy while the
// retransmission machinery recovers every lost frame.
func TestWedgeDegradesWithoutDrain(t *testing.T) {
	probe, probeRes := probeLossy(t, 4, 77)
	victim := busiest(probe.Steered)
	wedgeAt := probeRes.VirtualTime * 0.3
	if wedgeAt < 0.3 {
		wedgeAt = 0.3
	}
	wedgeEnd := wedgeAt + 0.3

	set := newSet(t, 4, 77)
	set.SetFaultFunc(func(sh int, now float64) FaultVerdict {
		if sh == victim && now >= wedgeAt && now < wedgeEnd {
			return FaultVerdict{Wedge: true}
		}
		return FaultVerdict{}
	})
	res, err := engine.RunLossyExchange(nil, lossyCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("wedged exchange did not complete (t=%v)", res.VirtualTime)
	}
	if set.Drains != 0 {
		t.Fatalf("a transient wedge must degrade, not drain: drains=%d", set.Drains)
	}
	if set.InboxFullEvents == 0 || set.ShedInboxFull == 0 {
		t.Fatalf("wedge shed nothing: events=%d shed=%d (steered %v)",
			set.InboxFullEvents, set.ShedInboxFull, probe.Steered)
	}
	if set.Health(victim) != HealthHealthy {
		t.Fatalf("victim health = %v after the wedge cleared, want healthy", set.Health(victim))
	}
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}

// TestSlowConsumerCapsThroughput checks the mildest fault: a shard
// capped at one frame per delivery keeps working — the exchange
// completes conformantly with no sheds and no drains, just slower.
func TestSlowConsumerCapsThroughput(t *testing.T) {
	probe, _ := probeLossy(t, 4, 77)
	victim := busiest(probe.Steered)

	set := newSet(t, 4, 77)
	set.SetFaultFunc(faultOn(victim, 0, FaultVerdict{MaxConsume: 1}))
	res, err := engine.RunLossyExchange(nil, lossyCfg(set))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("slow-consumer exchange did not complete (t=%v)", res.VirtualTime)
	}
	if set.Drains != 0 {
		t.Fatalf("a slow consumer must not be drained: drains=%d", set.Drains)
	}
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}

// TestInboxBackpressurePreservesOrder is the regression test for the
// old inbox-full fallback, which delivered the overflowing frame
// directly — bypassing the single-writer inbox path and reordering it
// ahead of everything still queued. The backpressure path must instead
// drain queued frames first: five consecutive data segments pushed
// through a cap-4 inbox must reach the application in sequence order.
func TestInboxBackpressurePreservesOrder(t *testing.T) {
	const port = uint16(1521)
	set, err := NewStackSet(wire.MakeAddr(10, 0, 0, 1), Config{
		Shards: 1,
		NewDemuxer: func(int) core.Demuxer {
			return core.NewSequentHash(0, hashfn.Multiplicative{})
		},
		Seed:     7,
		InboxCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if err := set.Listen(port, func(_ *engine.Conn, p []byte) []byte {
		got = append(got, append([]byte(nil), p...))
		return []byte("ok")
	}); err != nil {
		t.Fatal(err)
	}
	client := engine.NewStack(wire.MakeAddr(10, 0, 0, 2), core.NewMapDemux(), 9)
	conn, err := client.ConnectEphemeral(set.Addr(), port, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("handshake did not complete: %v", conn.State())
	}

	// One real data segment gives us the connection's live header; the
	// next four are crafted at consecutive sequence numbers so all five
	// are in-order, in-window payloads.
	if err := conn.Send([]byte("p0")); err != nil {
		t.Fatal(err)
	}
	frames := client.Drain()
	if len(frames) != 1 {
		t.Fatalf("expected 1 data frame, got %d", len(frames))
	}
	seg, err := wire.ParseSegment(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	segs := [][]byte{frames[0]}
	for i := 1; i < 5; i++ {
		tcp := seg.TCP
		tcp.Seq = seg.TCP.Seq + uint32(i*len(seg.Payload))
		f, err := wire.BuildSegment(seg.IP, tcp, []byte(fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, f)
	}

	// Stall the consumer while the first four segments arrive: they
	// queue and exactly fill the cap-4 ring.
	set.SetFaultFunc(func(int, float64) FaultVerdict { return FaultVerdict{Stall: true} })
	for _, f := range segs[:4] {
		if _, err := set.Deliver(f); err != nil {
			t.Fatal(err)
		}
	}
	if n := set.inbox[0].Len(); n != 4 {
		t.Fatalf("inbox holds %d frames, want a full ring of 4", n)
	}
	if len(got) != 0 {
		t.Fatalf("stalled consumer delivered %d payloads", len(got))
	}

	// Consumer recovers; the fifth segment hits a full ring. The old
	// code would deliver it directly — out of order, a future segment
	// the receiver stashes or drops. The backpressure path must drain
	// the queue first and keep the application order intact.
	set.SetFaultFunc(nil)
	if _, err := set.Deliver(segs[4]); err != nil {
		t.Fatal(err)
	}
	if set.InboxFullEvents == 0 {
		t.Fatal("full inbox not counted")
	}
	if set.ShedInboxFull != 0 {
		t.Fatalf("backpressure shed %d frames with a live consumer", set.ShedInboxFull)
	}
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	if len(got) != len(want) {
		t.Fatalf("delivered %d payloads, want %d: %q", len(got), len(want), got)
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("payload %d = %q, want %q (reordered delivery): %q", i, got[i], w, got)
		}
	}
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}

// TestHandoffWedgeRevertsRekey drives the handoff ring-full fallback: a
// rekey that tries to migrate connections into a shard whose rings are
// wedged must exhaust its bounded retries, revert each move through the
// directory, and leave every connection answering on its original
// shard — migration capability shed, connections never lost.
func TestHandoffWedgeRevertsRekey(t *testing.T) {
	const (
		port    = uint16(1521)
		clients = 8
	)
	set := newSet(t, 2, 13)
	if err := set.Listen(port, func(_ *engine.Conn, p []byte) []byte {
		return append(append([]byte("ok<"), p...), '>')
	}); err != nil {
		t.Fatal(err)
	}
	set.SetBacklog(clients)

	client := engine.NewStack(wire.MakeAddr(10, 0, 0, 2), core.NewMapDemux(), 8)
	conns := make([]*engine.Conn, clients)
	for i := range conns {
		c, err := client.ConnectEphemeral(set.Addr(), port, nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		if c.State() != core.StateEstablished {
			t.Fatalf("conn %d handshake did not complete: %v", i, c.State())
		}
	}

	// Wedge shard 1's rings, then rekey until some mover aims at it and
	// has to revert. Movers toward shard 0 still succeed — the wedge is
	// a property of the destination, not of the rekey.
	set.SetFaultFunc(func(sh int, _ float64) FaultVerdict {
		if sh == 1 {
			return FaultVerdict{Wedge: true}
		}
		return FaultVerdict{}
	})
	for tries := 0; tries < 16 && set.ShedHandoffFull == 0; tries++ {
		set.Rekey()
	}
	if set.ShedHandoffFull == 0 {
		t.Fatal("no rekey tried to move a connection into the wedged shard")
	}
	if set.HandoffFullEvents == 0 {
		t.Fatal("wedged handoff ring not counted as full")
	}
	if set.StaleHandoffs != 0 {
		t.Fatalf("StaleHandoffs = %d during quiesced rekeys", set.StaleHandoffs)
	}
	set.SetFaultFunc(nil)

	// The claims table must agree with where the PCBs actually live.
	owned := make([]map[core.Key]bool, set.Shards())
	for i := range owned {
		owned[i] = make(map[core.Key]bool)
		for _, ci := range set.Shard(i).Netstat() {
			if !ci.Key.IsWildcard() {
				owned[i][ci.Key] = true
			}
		}
	}
	set.claimMu.Lock()
	for k, cl := range set.claims {
		if !owned[cl.owner][k] {
			set.claimMu.Unlock()
			t.Fatalf("claim for %v names shard %d but the PCB is not there", k, cl.owner)
		}
	}
	set.claimMu.Unlock()

	// Every connection — reverted movers included, despite the steering
	// function now pointing elsewhere — must still answer.
	for i, c := range conns {
		if err := c.Send([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		want := []byte{'o', 'k', '<', byte('a' + i), '>'}
		if got := c.Receive(); !bytes.Equal(got, want) {
			t.Fatalf("conn %d after reverted rekey: got %q want %q", i, got, want)
		}
	}
}

// TestStaleGenerationHandoffDropped pins the generation check on the
// adopt side: a handoff overtaken in flight by a later directory move
// carries a stale generation and must be discarded — counted, not
// adopted — because whoever bumped the generation owns the PCB now.
func TestStaleGenerationHandoffDropped(t *testing.T) {
	const port = uint16(1521)
	set := newSet(t, 2, 11)
	if err := set.Listen(port, func(_ *engine.Conn, p []byte) []byte {
		return append(append([]byte("ok<"), p...), '>')
	}); err != nil {
		t.Fatal(err)
	}
	client := engine.NewStack(wire.MakeAddr(10, 0, 0, 2), core.NewMapDemux(), 8)
	conn, err := client.ConnectEphemeral(set.Addr(), port, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	if conn.State() != core.StateEstablished {
		t.Fatalf("handshake did not complete: %v", conn.State())
	}

	var k core.Key
	var cl claim
	set.claimMu.Lock()
	for key, c := range set.claims {
		k, cl = key, c
	}
	set.claimMu.Unlock()
	if cl.id < 0 {
		t.Fatalf("connection got no directory slot: %+v", cl)
	}
	home, other := cl.owner, 1-cl.owner

	// Launch a handoff toward the other shard, then overtake it: a
	// second move brings the slot home before the message is adopted.
	pcb, ok := set.Shard(home).Extract(k)
	if !ok {
		t.Fatal("extract failed")
	}
	g1, ok := set.dir.Move(cl.id, cl.gen, home, other)
	if !ok {
		t.Fatal("first directory move refused")
	}
	if !set.handoff[home][other].Push(Handoff{PCB: pcb, ID: cl.id, Gen: g1}) {
		t.Fatal("handoff ring refused the push")
	}
	g2, ok := set.dir.Move(cl.id, g1, other, home)
	if !ok {
		t.Fatal("overtaking directory move refused")
	}

	before := set.StaleHandoffs
	if n := set.adoptPending(other); n != 0 {
		t.Fatalf("adopted %d stale handoffs", n)
	}
	if set.StaleHandoffs != before+1 {
		t.Fatalf("StaleHandoffs = %d, want %d", set.StaleHandoffs, before+1)
	}

	// The overtaking mover owns the PCB: land it home, restore the
	// claim, and prove the connection survived the whole episode.
	if err := set.Shard(home).Adopt(pcb); err != nil {
		t.Fatal(err)
	}
	set.claimMu.Lock()
	set.claims[k] = claim{id: cl.id, gen: g2, owner: home}
	set.claimMu.Unlock()

	if err := conn.Send([]byte("zz")); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}
	if got := conn.Receive(); !bytes.Equal(got, []byte("ok<zz>")) {
		t.Fatalf("post-episode response %q", got)
	}
}

// TestDirectoryFullStillServes pins the directory-full contract: a
// connection accepted with no free directory slot still works — it is
// pinned where it landed, lookups succeed, and the forgone migration
// capability is what gets counted — and a later rekey must route its
// frames to the pin, not to wherever the new steering function points.
func TestDirectoryFullStillServes(t *testing.T) {
	const (
		port    = uint16(1521)
		clients = 6
		dirCap  = 2
	)
	set, err := NewStackSet(wire.MakeAddr(10, 0, 0, 1), Config{
		Shards: 2,
		NewDemuxer: func(int) core.Demuxer {
			return core.NewSequentHash(0, hashfn.Multiplicative{})
		},
		Seed:         3,
		DirectoryCap: dirCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	set.SetTelemetry(reg)
	if err := set.Listen(port, func(_ *engine.Conn, p []byte) []byte {
		return append(append([]byte("ok<"), p...), '>')
	}); err != nil {
		t.Fatal(err)
	}
	set.SetBacklog(clients)

	client := engine.NewStack(wire.MakeAddr(10, 0, 0, 2), core.NewMapDemux(), 8)
	conns := make([]*engine.Conn, clients)
	for i := range conns {
		c, err := client.ConnectEphemeral(set.Addr(), port, nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	if _, err := engine.Pump(client, set); err != nil {
		t.Fatal(err)
	}

	exchange := func(round byte) {
		t.Helper()
		for i, c := range conns {
			if c.State() != core.StateEstablished {
				t.Fatalf("conn %d not established: %v", i, c.State())
			}
			if err := c.Send([]byte{round, byte('a' + i)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := engine.Pump(client, set); err != nil {
			t.Fatal(err)
		}
		for i, c := range conns {
			want := []byte{'o', 'k', '<', round, byte('a' + i), '>'}
			if got := c.Receive(); !bytes.Equal(got, want) {
				t.Fatalf("conn %d round %c: got %q want %q", i, round, got, want)
			}
		}
	}
	exchange('1')

	wantPinned := uint64(clients - dirCap)
	if set.DirExhausted != wantPinned {
		t.Fatalf("DirExhausted = %d, want %d", set.DirExhausted, wantPinned)
	}
	if set.ShedDirectoryFull != wantPinned {
		t.Fatalf("ShedDirectoryFull = %d, want %d", set.ShedDirectoryFull, wantPinned)
	}
	pinned := 0
	set.claimMu.Lock()
	for _, cl := range set.claims {
		if cl.id < 0 {
			pinned++
		}
	}
	set.claimMu.Unlock()
	if uint64(pinned) != wantPinned {
		t.Fatalf("%d slotless claims, want %d", pinned, wantPinned)
	}

	// The condition must be visible on telemetry, not just in test-only
	// counters: both the dedicated counter and the shed-reason family.
	snap := reg.Snapshot()
	counters := make(map[string]uint64)
	for _, c := range snap.Counters {
		id := c.Name
		for _, l := range c.Labels {
			id += "{" + l.Key + "=" + l.Value + "}"
		}
		counters[id] = c.Value
	}
	if counters["shard_directory_full_total"] != wantPinned {
		t.Fatalf("shard_directory_full_total = %d, want %d", counters["shard_directory_full_total"], wantPinned)
	}
	if counters["shard_shed_total{reason=directory-full}"] != wantPinned {
		t.Fatalf("shard_shed_total{reason=directory-full} = %d, want %d",
			counters["shard_shed_total{reason=directory-full}"], wantPinned)
	}

	// Rekey swaps the steering function. Pinned connections cannot
	// migrate, so for them the new function may now point at the wrong
	// shard — the claims table must keep routing their frames home.
	set.Rekey()
	exchange('2')
	if acc := set.Accounting(); !acc.Balanced() {
		t.Fatalf("unaccounted packet losses: %+v", acc)
	}
}
