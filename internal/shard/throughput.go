package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
	"tcpdemux/internal/parallel"
	"tcpdemux/internal/telemetry"
)

// privateDemux adapts a plain single-goroutine core.Demuxer to the
// telemetry.ConcurrentDemuxer shape so it can sit under a
// telemetry.LocalDemux observer. No locking is added — that is the
// point: in the sharded model each demuxer is owned by exactly one
// worker, so the whole synchronization budget of the parallel
// disciplines (chain locks, RCU epochs, reader-writer locks) simply
// disappears from the packet path.
type privateDemux struct {
	d core.Demuxer
}

// Name implements telemetry.ConcurrentDemuxer.
func (p privateDemux) Name() string { return p.d.Name() }

// Insert implements telemetry.ConcurrentDemuxer.
func (p privateDemux) Insert(q *core.PCB) error { return p.d.Insert(q) }

// Remove implements telemetry.ConcurrentDemuxer.
func (p privateDemux) Remove(k core.Key) bool { return p.d.Remove(k) }

// Lookup implements telemetry.ConcurrentDemuxer.
//
//demux:hotpath
func (p privateDemux) Lookup(k core.Key, dir core.Direction) core.Result {
	return p.d.Lookup(k, dir)
}

// LookupBatch implements telemetry.ConcurrentDemuxer by per-key lookup:
// a private table needs no lock amortization, so a train is just a loop.
//
//demux:hotpath
func (p privateDemux) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	if cap(out) < len(keys) {
		out = make([]core.Result, len(keys)) //demux:allowalloc amortized: grows the caller-owned result buffer once, then reused across trains
	}
	out = out[:len(keys)]
	for i, k := range keys {
		out[i] = p.d.Lookup(k, dir)
	}
	return out
}

// NotifySend implements telemetry.ConcurrentDemuxer.
func (p privateDemux) NotifySend(q *core.PCB) { p.d.NotifySend(q) }

// Len implements telemetry.ConcurrentDemuxer.
func (p privateDemux) Len() int { return p.d.Len() }

// Snapshot implements telemetry.ConcurrentDemuxer.
func (p privateDemux) Snapshot() core.Stats { return *p.d.Stats() }

// Walk implements telemetry.ConcurrentDemuxer.
func (p privateDemux) Walk(fn func(*core.PCB) bool) { p.d.Walk(fn) }

// ThroughputConfig parameterizes one MeasureSharded run.
type ThroughputConfig struct {
	// Shards is the number of queues (>= 1; 1 is the single-queue
	// baseline every speedup is measured against).
	Shards int
	// TotalOps is the number of lookup operations across all shards; each
	// shard performs its steering-weighted share.
	TotalOps int
	// Stream is the recorded TPC/A lookup sequence (parallel.TPCAStream).
	Stream []parallel.Op
	// Keys is the full connection population to insert; each shard
	// receives only the keys that steer to it.
	Keys []core.Key
	// NewDemuxer builds one shard's private discipline. Required.
	NewDemuxer func(shard int) core.Demuxer
	// Batch > 1 drives lookups in trains of this size.
	Batch int
	// SteerKey is the RSS steering secret (DefaultKeyed if zero-valued
	// keys are fine for a bench; pass hashfn.DefaultKeyed).
	SteerKey hashfn.Keyed
	// Metrics, when non-nil, receives each worker's LocalDemux
	// observations (flushed at worker exit, the single-writer contract).
	Metrics *telemetry.DemuxMetrics
}

// ThroughputResult reports one measured sharded run.
type ThroughputResult struct {
	// Ops, Elapsed, NsPerOp, OpsPerSec describe the aggregate rate: total
	// operations across every shard over the wall-clock window.
	Ops       int
	Elapsed   time.Duration
	NsPerOp   float64
	OpsPerSec float64
	// Stats is the merged demuxer statistics across shards.
	Stats core.Stats
	// PerShardOps and PerShardPCBs record the steering split, so reports
	// can show the partition balance.
	PerShardOps  []int
	PerShardPCBs []int
}

// MeasureSharded measures the multi-queue configuration the way a NIC
// with RSS would run it: the inbound stream is pre-partitioned by the
// keyed steering hash (that work happens in silicon on real hardware, so
// it is untimed here), each shard's private demuxer is populated with
// exactly the connections that steer to it, and then N workers drain
// their private sub-streams concurrently — no locks, no shared mutable
// state, per-worker LocalDemux observation flushed at exit.
//
// The Shards=1 run of the same configuration is the single-queue
// baseline. The speedup at N has two independent sources: core
// parallelism (N workers on N cores), and the paper's C(N) partitioning
// effect — each shard's table holds ~1/N of the PCBs, so every chained
// lookup walks a proportionally shorter chain. The second source pays
// even on a single core, which is what makes the sweep meaningful on
// small hosts.
func MeasureSharded(cfg ThroughputConfig) (ThroughputResult, error) {
	switch {
	case cfg.Shards < 1:
		return ThroughputResult{}, errors.New("shard: need at least one shard")
	case cfg.TotalOps < 1:
		return ThroughputResult{}, errors.New("shard: need at least one op")
	case len(cfg.Stream) == 0:
		return ThroughputResult{}, errors.New("shard: empty lookup stream")
	case cfg.NewDemuxer == nil:
		return ThroughputResult{}, errors.New("shard: NewDemuxer is required")
	}
	steer := NewSteering(cfg.Shards, cfg.SteerKey)

	// Untimed RSS model: split the recorded stream and the connection
	// population by steering hash.
	subStream := make([][]parallel.Op, cfg.Shards)
	for _, op := range cfg.Stream {
		i := steer.Shard(op.Key.Tuple())
		subStream[i] = append(subStream[i], op)
	}
	demux := make([]telemetry.ConcurrentDemuxer, cfg.Shards)
	pcbs := make([]int, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		demux[i] = privateDemux{d: cfg.NewDemuxer(i)}
	}
	for _, k := range cfg.Keys {
		i := steer.Shard(k.Tuple())
		if err := demux[i].Insert(core.NewPCB(k)); err != nil {
			return ThroughputResult{}, fmt.Errorf("shard %d: %w", i, err)
		}
		pcbs[i]++
	}

	// Each shard's op quota is its steering-weighted share of TotalOps —
	// the load a NIC would actually hand it.
	shardOps := make([]int, cfg.Shards)
	assigned := 0
	for i := range shardOps {
		shardOps[i] = cfg.TotalOps * len(subStream[i]) / len(cfg.Stream)
		assigned += shardOps[i]
	}
	shardOps[0] += cfg.TotalOps - assigned // rounding remainder

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	for i := 0; i < cfg.Shards; i++ {
		if shardOps[i] == 0 || len(subStream[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := demux[i]
			if cfg.Metrics != nil {
				l := telemetry.InstrumentLocal(demux[i], cfg.Metrics)
				defer l.Flush()
				d = l
			}
			stream := subStream[i]
			pos := 0
			var (
				keys    []core.Key
				dir     core.Direction
				results []core.Result
			)
			flush := func() {
				if len(keys) > 0 {
					results = d.LookupBatch(keys, dir, results)
					keys = keys[:0]
				}
			}
			<-start
			for n := 0; n < shardOps[i]; n++ {
				op := stream[pos]
				pos++
				if pos == len(stream) {
					pos = 0
				}
				if cfg.Batch > 1 {
					dir = op.Dir
					keys = append(keys, op.Key)
					if len(keys) >= cfg.Batch {
						flush()
					}
				} else {
					d.Lookup(op.Key, op.Dir)
				}
			}
			flush()
		}(i)
	}
	t0 := time.Now() //demux:wallclock throughput measurement is the one legitimate wall-clock consumer: it reports real elapsed time, not virtual time
	close(start)
	wg.Wait()
	elapsed := time.Since(t0) //demux:wallclock closes the measured section opened at t0 above

	res := ThroughputResult{
		Ops:          cfg.TotalOps,
		Elapsed:      elapsed,
		PerShardOps:  shardOps,
		PerShardPCBs: pcbs,
	}
	for i := range demux {
		st := demux[i].Snapshot()
		res.Stats.Lookups += st.Lookups
		res.Stats.Hits += st.Hits
		res.Stats.Misses += st.Misses
		res.Stats.WildcardHits += st.WildcardHits
		res.Stats.Examined += st.Examined
		if st.MaxExamined > res.Stats.MaxExamined {
			res.Stats.MaxExamined = st.MaxExamined
		}
	}
	if elapsed > 0 {
		res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(cfg.TotalOps)
		res.OpsPerSec = float64(cfg.TotalOps) / elapsed.Seconds()
	}
	return res, nil
}
