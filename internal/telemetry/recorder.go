package telemetry

import (
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tcpdemux/internal/trace"
	"tcpdemux/internal/wire"
)

// DropReason classifies why a delivered frame produced no connection
// progress — the engine's per-reason drop taxonomy, carried on flight
// events so a drop's tuple and timing survive next to its counter.
type DropReason uint8

// Drop reasons, mirroring engine.StackStats.
const (
	DropNone DropReason = iota
	DropBadChecksum
	DropBadFrame
	DropNoRoute
	DropNoListener
	DropRST
	DropBacklogFull
	DropBadCookie
)

// String names the reason.
func (d DropReason) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropBadChecksum:
		return "bad-checksum"
	case DropBadFrame:
		return "bad-frame"
	case DropNoRoute:
		return "no-route"
	case DropNoListener:
		return "no-listener"
	case DropRST:
		return "rst"
	case DropBacklogFull:
		return "backlog-full"
	case DropBadCookie:
		return "bad-cookie"
	}
	return "unknown"
}

// Event is one demultiplexing event in the flight recorder: what a
// kernel's packet-trace ring would capture about the lookup step.
type Event struct {
	// Time is the event's virtual timestamp; Seq is the recorder-assigned
	// global sequence number. (Time, Seq) totally orders a drained run.
	Time float64
	Seq  uint64
	// Tuple identifies the packet's connection (inbound orientation).
	Tuple wire.Tuple
	// Discipline names the demuxer that served the lookup.
	Discipline string
	// Chain is the hash chain probed, or -1 when the structure has no
	// chain notion (or the wrapper cannot see it).
	Chain int32
	// Examined is the PCBs-touched count for the lookup.
	Examined int32
	// Hit marks a one-entry-cache hit; Wildcard a listener match; Miss a
	// lookup that found no PCB; Ack a pure-acknowledgement lookup.
	Hit      bool
	Wildcard bool
	Miss     bool
	Ack      bool
	// Drop is the disposition of the packet after the lookup (DropNone
	// when it progressed a connection).
	Drop DropReason
}

// recShard is one fixed-capacity ring of events. The trailing pad keeps
// neighbouring shards' mutexes off one cache line.
type recShard struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	_    [32]byte
}

// FlightRecorder keeps the most recent demux events in per-shard ring
// buffers. Record is zero-alloc (the rings are pre-allocated) and
// contention-striped; Drain merges every shard into one deterministic
// (time, seq)-ordered slice and resets the rings.
type FlightRecorder struct {
	shards []recShard
	mask   uint32
	seq    atomic.Uint64 //demux:atomic
}

// maxRecShards caps the shard count; each shard costs perShard copies
// of Event.
const maxRecShards = 8

// NewFlightRecorder builds a recorder keeping up to perShard events in
// each of its shards (shard count: next power of two covering
// GOMAXPROCS, capped at maxRecShards). perShard below 16 is raised
// to 16.
func NewFlightRecorder(perShard int) *FlightRecorder {
	if perShard < 16 {
		perShard = 16
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxRecShards {
		n <<= 1
	}
	fr := &FlightRecorder{shards: make([]recShard, n), mask: uint32(n - 1)}
	for i := range fr.shards {
		fr.shards[i].buf = make([]Event, perShard)
	}
	return fr
}

// Record appends one event, assigning its global sequence number. When a
// shard's ring is full the oldest event in that shard is overwritten —
// flight-recorder semantics: the recent past is what matters.
//
//demux:hotpath
func (fr *FlightRecorder) Record(e Event) {
	e.Seq = fr.seq.Add(1) - 1
	sh := &fr.shards[stripeIdx(fr.mask)]
	sh.mu.Lock()
	sh.buf[sh.next] = e
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
		sh.full = true
	}
	sh.mu.Unlock()
}

// Drain collects every retained event, sorted by (Time, Seq), and
// resets the rings. Seq is unique per event, so the order is total and
// the output deterministic for a deterministic event stream.
func (fr *FlightRecorder) Drain() []Event {
	var out []Event
	for i := range fr.shards {
		sh := &fr.shards[i]
		sh.mu.Lock()
		if sh.full {
			out = append(out, sh.buf[sh.next:]...)
		}
		out = append(out, sh.buf[:sh.next]...)
		sh.next = 0
		sh.full = false
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ExportTrace writes drained events in the internal/trace binary format,
// so a flight-recorder capture replays through trace.Replay exactly like
// a recorded workload stream. Only the fields the trace format carries
// (time, tuple, ack) survive the export.
func ExportTrace(w io.Writer, events []Event) error {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return err
	}
	for _, e := range events {
		if err := tw.Write(trace.Event{Time: e.Time, Tuple: e.Tuple, Ack: e.Ack}); err != nil {
			return err
		}
	}
	return tw.Flush()
}
