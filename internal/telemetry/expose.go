// Exposition writers: Prometheus text format, JSON, and the human
// summary table. All three operate on a Snapshot, never on live
// metrics, so writing is lock-free and deterministic.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// promLabels renders a label set in Prometheus series syntax, with
// extra appended after the metric's own labels (used for the
// histogram "le" label).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histograms
// as cumulative _bucket series with le bounds plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	family := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, c := range s.Counters {
		family(c.Name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels), c.Value)
	}
	for _, g := range s.Gauges {
		family(g.Name, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", g.Name, promLabels(g.Labels), g.Value)
	}
	for _, h := range s.Histograms {
		family(h.Name, "histogram")
		var cum uint64
		for i, c := range h.Bucket {
			cum += c
			// Skip interior empty buckets to keep the series compact; the
			// first, any populated, and the +Inf buckets always appear.
			if c == 0 && i > 0 && i < len(h.Bucket)-1 {
				continue
			}
			le := L("le", fmt.Sprintf("%d", BucketUpper(i)))
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, le), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, L("le", "+Inf")), h.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", h.Name, promLabels(h.Labels), h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels), h.Count)
	}
	return nil
}

// histDerived is the derived-statistics block attached to each histogram
// in the JSON exposition.
type histDerived struct {
	HistogramSnapshot
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// jsonSnapshot is the JSON exposition document.
type jsonSnapshot struct {
	Counters   []CounterSnapshot `json:"counters"`
	Gauges     []GaugeSnapshot   `json:"gauges"`
	Histograms []histDerived     `json:"histograms"`
}

// WriteJSON renders the snapshot as an indented JSON document, each
// histogram augmented with its mean and p50/p90/p99 estimates.
func (s Snapshot) WriteJSON(w io.Writer) error {
	doc := jsonSnapshot{Counters: s.Counters, Gauges: s.Gauges}
	for _, h := range s.Histograms {
		doc.Histograms = append(doc.Histograms, histDerived{
			HistogramSnapshot: h,
			Mean:              h.Mean(),
			P50:               h.Quantile(0.50),
			P90:               h.Quantile(0.90),
			P99:               h.Quantile(0.99),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// labelSuffix renders a label set for the summary table.
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteSummary renders the snapshot as an aligned human-readable table:
// counters and gauges as name/value rows, histograms with count, mean,
// p50/p90/p99 estimates, and max.
func (s Snapshot) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "COUNTER\tVALUE")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s%s\t%d\n", c.Name, labelSuffix(c.Labels), c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "GAUGE\tVALUE")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s%s\t%.3f\n", g.Name, labelSuffix(g.Labels), g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "HISTOGRAM\tCOUNT\tMEAN\tP50\tP90\tP99\tMAX")
		for _, h := range s.Histograms {
			fmt.Fprintf(tw, "%s%s\t%d\t%.3f\t%.1f\t%.1f\t%.1f\t%d\n",
				h.Name, labelSuffix(h.Labels), h.Count, h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
		}
	}
	return tw.Flush()
}
