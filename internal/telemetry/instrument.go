// Instrumentation wrappers and metric bundles: the glue between the
// registry and the structures under internal/core, internal/rcu,
// internal/parallel, internal/overload, and internal/engine.
//
// The demuxers themselves stay untouched — instrumentation is a wrapper
// that observes each lookup's core.Result into a DemuxMetrics bundle
// (and optionally the flight recorder), so an uninstrumented table pays
// nothing and an instrumented one pays a couple of uncontended atomic
// adds per lookup.
package telemetry

import (
	"fmt"

	"tcpdemux/internal/core"
)

// DemuxMetrics is the per-discipline lookup instrument bundle: one
// examined-PCBs histogram per lookup outcome, labeled by discipline and
// outcome. Fusing the hit/miss classification into the histogram choice
// means Observe pays exactly one atomic add per lookup (the histogram's
// packed bucket word) instead of a histogram update plus a separate
// classification counter — that second uncontended RMW alone was worth
// ~7ns/op on BenchmarkParallelTPCA, well over the 5% overhead budget.
// The per-outcome counts (cache hits, misses, wildcard matches) fall out
// of the histogram counts for free, and the conditional distributions
// tell the paper's story directly: misses walk the whole chain, cache
// hits stop at the head.
type DemuxMetrics struct {
	hit      *Histogram
	found    *Histogram
	miss     *Histogram
	wildcard *Histogram
}

// NewDemuxMetrics registers (or finds) the demux metric family for one
// discipline label.
func NewDemuxMetrics(r *Registry, discipline string) *DemuxMetrics {
	h := func(outcome string) *Histogram {
		return r.Histogram("demux_examined_pcbs",
			L("discipline", discipline), L("outcome", outcome))
	}
	return &DemuxMetrics{
		hit:      h("hit"),
		found:    h("found"),
		miss:     h("miss"),
		wildcard: h("wildcard"),
	}
}

// Observe folds one lookup result into the bundle. Unlike
// core.Stats.Record, which keeps overlapping tallies, the outcome
// classes here are mutually exclusive (miss, else wildcard match, else
// cache hit, else plain chain hit) so the per-outcome counts sum to the
// lookup count.
//
//demux:hotpath
func (m *DemuxMetrics) Observe(r core.Result) {
	h := m.found
	switch {
	case r.PCB == nil:
		h = m.miss
	case r.Wildcard:
		h = m.wildcard
	case r.CacheHit:
		h = m.hit
	}
	h.Observe(uint64(r.Examined))
}

// ExaminedSnapshot merges the per-outcome histograms into the overall
// examined-PCBs distribution for the discipline.
func (m *DemuxMetrics) ExaminedSnapshot() HistogramSnapshot {
	merged := HistogramSnapshot{
		Name:   "demux_examined_pcbs",
		Labels: m.found.labels[:1:1], // discipline only
		Bucket: make([]uint64, histBuckets),
	}
	for _, h := range []*Histogram{m.hit, m.found, m.miss, m.wildcard} {
		s := h.Snapshot()
		merged.Count += s.Count
		merged.Sum += s.Sum
		if s.Max > merged.Max {
			merged.Max = s.Max
		}
		for i, c := range s.Bucket {
			merged.Bucket[i] += c
		}
	}
	return merged
}

// Lookups returns the total observed lookup count.
func (m *DemuxMetrics) Lookups() uint64 {
	return m.hit.Snapshot().Count + m.found.Snapshot().Count +
		m.miss.Snapshot().Count + m.wildcard.Snapshot().Count
}

// Hits returns the observed cache-hit count.
func (m *DemuxMetrics) Hits() uint64 { return m.hit.Snapshot().Count }

// Misses returns the observed miss count.
func (m *DemuxMetrics) Misses() uint64 { return m.miss.Snapshot().Count }

// WildcardHits returns the observed wildcard-match count.
func (m *DemuxMetrics) WildcardHits() uint64 { return m.wildcard.Snapshot().Count }

// chainIndexer is implemented by chain-hashed demuxers that can name the
// chain a key maps to (core.SequentHash, rcu.Demuxer); the wrappers use
// it to fill flight events' Chain field.
type chainIndexer interface {
	ChainIndexOf(core.Key) int
}

// Demux wraps a core.Demuxer, recording every lookup into a
// DemuxMetrics bundle and (optionally) a FlightRecorder. All other
// methods delegate, so the wrapper is behaviourally transparent: the
// inner demuxer's own Stats are untouched and remain the source of
// truth for existing reports.
type Demux struct {
	inner  core.Demuxer
	m      *DemuxMetrics
	rec    *FlightRecorder
	now    func() float64
	chains chainIndexer // nil when inner has no chain notion
}

// InstrumentDemuxer wraps inner. m is required; rec may be nil to skip
// flight recording; now supplies flight events' virtual timestamps (nil
// records Time 0, leaving ordering to Seq).
func InstrumentDemuxer(inner core.Demuxer, m *DemuxMetrics, rec *FlightRecorder, now func() float64) *Demux {
	ci, _ := inner.(chainIndexer)
	return &Demux{inner: inner, m: m, rec: rec, now: now, chains: ci}
}

// Name implements core.Demuxer.
func (d *Demux) Name() string { return d.inner.Name() }

// Insert implements core.Demuxer.
func (d *Demux) Insert(p *core.PCB) error { return d.inner.Insert(p) }

// Remove implements core.Demuxer.
func (d *Demux) Remove(k core.Key) bool { return d.inner.Remove(k) }

// NotifySend implements core.Demuxer.
func (d *Demux) NotifySend(p *core.PCB) { d.inner.NotifySend(p) }

// Len implements core.Demuxer.
func (d *Demux) Len() int { return d.inner.Len() }

// Stats implements core.Demuxer (the inner demuxer's live counters).
func (d *Demux) Stats() *core.Stats { return d.inner.Stats() }

// Walk implements core.Demuxer.
func (d *Demux) Walk(fn func(*core.PCB) bool) { d.inner.Walk(fn) }

// Lookup implements core.Demuxer, observing the result on the way out.
//
//demux:hotpath
func (d *Demux) Lookup(k core.Key, dir core.Direction) core.Result {
	r := d.inner.Lookup(k, dir)
	d.m.Observe(r)
	if d.rec != nil {
		d.recordEvent(k, dir, r)
	}
	return r
}

// batcher is implemented by single-goroutine demuxers with a native
// batched lookup path (the flat open-addressing tables); the wrapper
// delegates to it so instrumentation doesn't cost the batch its
// prefetch pipeline.
type batcher interface {
	LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result
}

// LookupBatch resolves a train through the inner demuxer's native batch
// path when it has one (falling back to per-key Lookup delegation
// otherwise) and observes every result, so batched and per-packet
// lookups land in the same metric bundle. out is reused when it has
// capacity.
//
//demux:hotpath
func (d *Demux) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	if b, ok := d.inner.(batcher); ok {
		out = b.LookupBatch(keys, dir, out)
		for i := range out {
			d.m.Observe(out[i])
			if d.rec != nil {
				d.recordEvent(keys[i], dir, out[i])
			}
		}
		return out
	}
	if cap(out) < len(keys) {
		out = make([]core.Result, len(keys)) //demux:allowalloc amortized: grows the caller-owned result buffer once, then reused across trains
	}
	out = out[:len(keys)]
	for i, k := range keys {
		out[i] = d.Lookup(k, dir)
	}
	return out
}

// recordEvent builds and records the flight event for one lookup.
//
//demux:hotpath
func (d *Demux) recordEvent(k core.Key, dir core.Direction, r core.Result) {
	t := 0.0
	if d.now != nil {
		t = d.now()
	}
	chain := int32(-1)
	if d.chains != nil {
		chain = int32(d.chains.ChainIndexOf(k))
	}
	d.rec.Record(Event{
		Time:       t,
		Tuple:      k.Tuple(),
		Discipline: d.inner.Name(),
		Chain:      chain,
		Examined:   int32(r.Examined),
		Hit:        r.CacheHit,
		Wildcard:   r.PCB != nil && r.Wildcard,
		Miss:       r.PCB == nil,
		Ack:        dir == core.DirAck,
	})
}

var _ core.Demuxer = (*Demux)(nil)

// ConcurrentDemuxer mirrors parallel.ConcurrentDemuxer structurally
// (declared here rather than imported so telemetry stays below parallel
// in the dependency order; any parallel.ConcurrentDemuxer satisfies it,
// and Concurrent satisfies parallel's interface in turn).
type ConcurrentDemuxer interface {
	Name() string
	Insert(p *core.PCB) error
	Remove(k core.Key) bool
	Lookup(k core.Key, dir core.Direction) core.Result
	LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result
	NotifySend(p *core.PCB)
	Len() int
	Snapshot() core.Stats
	Walk(fn func(*core.PCB) bool)
}

// Concurrent wraps a concurrent demuxer the way Demux wraps a
// single-goroutine one. Safe for concurrent use when the inner demuxer
// is: the metric bundle and recorder are striped.
type Concurrent struct {
	inner  ConcurrentDemuxer
	m      *DemuxMetrics
	rec    *FlightRecorder
	now    func() float64
	chains chainIndexer
}

// InstrumentConcurrent wraps inner; rec and now are optional as in
// InstrumentDemuxer.
func InstrumentConcurrent(inner ConcurrentDemuxer, m *DemuxMetrics, rec *FlightRecorder, now func() float64) *Concurrent {
	ci, _ := inner.(chainIndexer)
	return &Concurrent{inner: inner, m: m, rec: rec, now: now, chains: ci}
}

// Name implements ConcurrentDemuxer.
func (c *Concurrent) Name() string { return c.inner.Name() }

// Insert implements ConcurrentDemuxer.
func (c *Concurrent) Insert(p *core.PCB) error { return c.inner.Insert(p) }

// Remove implements ConcurrentDemuxer.
func (c *Concurrent) Remove(k core.Key) bool { return c.inner.Remove(k) }

// NotifySend implements ConcurrentDemuxer.
func (c *Concurrent) NotifySend(p *core.PCB) { c.inner.NotifySend(p) }

// Len implements ConcurrentDemuxer.
func (c *Concurrent) Len() int { return c.inner.Len() }

// Snapshot implements ConcurrentDemuxer (the inner demuxer's own
// statistics).
func (c *Concurrent) Snapshot() core.Stats { return c.inner.Snapshot() }

// Walk implements ConcurrentDemuxer.
func (c *Concurrent) Walk(fn func(*core.PCB) bool) { c.inner.Walk(fn) }

// Lookup implements ConcurrentDemuxer, observing the result.
//
//demux:hotpath
func (c *Concurrent) Lookup(k core.Key, dir core.Direction) core.Result {
	r := c.inner.Lookup(k, dir)
	c.m.Observe(r)
	if c.rec != nil {
		c.recordEvent(k, dir, r)
	}
	return r
}

// LookupBatch implements ConcurrentDemuxer, observing each result.
//
//demux:hotpath
func (c *Concurrent) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out = c.inner.LookupBatch(keys, dir, out)
	for i := range out {
		c.m.Observe(out[i])
		if c.rec != nil {
			c.recordEvent(keys[i], dir, out[i])
		}
	}
	return out
}

// recordEvent builds and records the flight event for one lookup.
//
//demux:hotpath
func (c *Concurrent) recordEvent(k core.Key, dir core.Direction, r core.Result) {
	t := 0.0
	if c.now != nil {
		t = c.now()
	}
	chain := int32(-1)
	if c.chains != nil {
		chain = int32(c.chains.ChainIndexOf(k))
	}
	c.rec.Record(Event{
		Time:       t,
		Tuple:      k.Tuple(),
		Discipline: c.inner.Name(),
		Chain:      chain,
		Examined:   int32(r.Examined),
		Hit:        r.CacheHit,
		Wildcard:   r.PCB != nil && r.Wildcard,
		Miss:       r.PCB == nil,
		Ack:        dir == core.DirAck,
	})
}

// StackMetrics is the engine.Stack instrument bundle: per-reason drop
// counters, the SYN-cookie handshake counters, and the lifecycle-timer
// counters, all homed on one registry so they appear in the same
// snapshot as the demux histograms.
type StackMetrics struct {
	reg *Registry

	DroppedBadChecksum *Counter
	DroppedBadFrame    *Counter
	DroppedNoRoute     *Counter
	DroppedNoListener  *Counter
	DroppedRST         *Counter
	DroppedBacklogFull *Counter
	DroppedBadCookie   *Counter

	CookiesSent     *Counter
	CookiesAccepted *Counter
	SynDrops        *Counter

	Retransmits     *Counter
	Aborts          *Counter
	SynExpired      *Counter
	TimeWaitExpired *Counter
	TimerFires      *Counter
}

// NewStackMetrics registers the engine metric family on r.
func NewStackMetrics(r *Registry) *StackMetrics {
	drop := func(reason string) *Counter {
		return r.Counter("engine_dropped_total", L("reason", reason))
	}
	return &StackMetrics{
		reg:                r,
		DroppedBadChecksum: drop("bad-checksum"),
		DroppedBadFrame:    drop("bad-frame"),
		DroppedNoRoute:     drop("no-route"),
		DroppedNoListener:  drop("no-listener"),
		DroppedRST:         drop("rst"),
		DroppedBacklogFull: drop("backlog-full"),
		DroppedBadCookie:   drop("bad-cookie"),
		CookiesSent:        r.Counter("engine_cookies_sent_total"),
		CookiesAccepted:    r.Counter("engine_cookies_accepted_total"),
		SynDrops:           r.Counter("engine_syn_drops_total"),
		Retransmits:        r.Counter("engine_timer_retransmits_total"),
		Aborts:             r.Counter("engine_timer_aborts_total"),
		SynExpired:         r.Counter("engine_timer_syn_expired_total"),
		TimeWaitExpired:    r.Counter("engine_timer_time_wait_expired_total"),
		TimerFires:         r.Counter("engine_timer_fires_total"),
	}
}

// Registry returns the registry the bundle is homed on.
func (m *StackMetrics) Registry() *Registry { return m.reg }

// ShardSetMetrics is the sharded-engine instrument bundle: the
// full-edge event counters (inbox ring, handoff ring, connection-ID
// directory), the per-reason shed ledger behind the graceful-degradation
// contract ("every lost packet is attributed to exactly one reason"),
// the failure-domain counters (drains, drained connections, salvaged
// frames, stale handoffs), and the watchdog's per-shard health gauges.
type ShardSetMetrics struct {
	// Full-edge events: how often each bounded structure refused work.
	InboxFull     *Counter
	HandoffFull   *Counter
	DirectoryFull *Counter

	// Per-reason shed ledger (shard_shed_total{reason=...}). InboxFull
	// sheds are frames actually lost (TCP's retransmission recovers
	// them); HandoffFull and DirectoryFull sheds are migrations forgone
	// (the connection keeps working where it is); BacklogFull mirrors the
	// shards' engine-level backlog drops into the same family so the
	// degradation ladder reads off one metric.
	ShedInboxFull     *Counter
	ShedHandoffFull   *Counter
	ShedDirectoryFull *Counter
	ShedBacklogFull   *Counter

	// Failure-domain counters.
	Drains        *Counter
	DrainedConns  *Counter
	Salvaged      *Counter
	StaleHandoffs *Counter

	// Health is one gauge per shard (shard_health_state{shard="i"}),
	// carrying the numeric HealthState; Degraded counts shards currently
	// limping (degraded or worse), the operator's one-look signal; and
	// DrainRecovery records the latest drain's recovery latency in
	// virtual seconds (last observed progress on the sick shard to drain
	// completion).
	Health        []*Gauge
	Degraded      *Gauge
	DrainRecovery *Gauge
}

// NewShardSetMetrics registers the sharded-engine metric family for a
// set of `shards` queues on r.
func NewShardSetMetrics(r *Registry, shards int) *ShardSetMetrics {
	shed := func(reason string) *Counter {
		return r.Counter("shard_shed_total", L("reason", reason))
	}
	m := &ShardSetMetrics{
		InboxFull:         r.Counter("shard_inbox_full_total"),
		HandoffFull:       r.Counter("shard_handoff_full_total"),
		DirectoryFull:     r.Counter("shard_directory_full_total"),
		ShedInboxFull:     shed("inbox-full"),
		ShedHandoffFull:   shed("handoff-full"),
		ShedDirectoryFull: shed("directory-full"),
		ShedBacklogFull:   shed("backlog-full"),
		Drains:            r.Counter("shard_drains_total"),
		DrainedConns:      r.Counter("shard_drained_connections_total"),
		Salvaged:          r.Counter("shard_salvaged_frames_total"),
		StaleHandoffs:     r.Counter("shard_stale_handoffs_total"),
		Degraded:          r.Gauge("shard_degraded_shards"),
		DrainRecovery:     r.Gauge("shard_drain_recovery_seconds"),
	}
	for i := 0; i < shards; i++ {
		m.Health = append(m.Health,
			r.Gauge("shard_health_state", L("shard", fmt.Sprintf("%d", i))))
	}
	return m
}

// SetHealth publishes shard i's health state (as its numeric code).
func (m *ShardSetMetrics) SetHealth(i int, state float64) {
	if m == nil || i < 0 || i >= len(m.Health) {
		return
	}
	m.Health[i].Set(state)
}

// OverloadMetrics is the overload-guard instrument bundle: rekey and
// migration counters plus the watchdog's chain-skew and chain-count
// gauges, labeled by table.
type OverloadMetrics struct {
	Rekeys    *Counter
	Migrated  *Counter
	ChainSkew *Gauge
	Chains    *Gauge
}

// NewOverloadMetrics registers the overload metric family for one table
// label on r.
func NewOverloadMetrics(r *Registry, table string) *OverloadMetrics {
	l := L("table", table)
	return &OverloadMetrics{
		Rekeys:    r.Counter("overload_rekeys_total", l),
		Migrated:  r.Counter("overload_migrated_pcbs_total", l),
		ChainSkew: r.Gauge("overload_chain_skew", l),
		Chains:    r.Gauge("overload_chains", l),
	}
}

// ObserveChains publishes one watchdog sample: the live chain count and
// the skew ratio (fullest chain over mean chain length; 0 for an empty
// table).
func (m *OverloadMetrics) ObserveChains(lengths []int64) {
	if m == nil {
		return
	}
	m.Chains.Set(float64(len(lengths)))
	if len(lengths) == 0 {
		m.ChainSkew.Set(0)
		return
	}
	var pop, max int64
	for _, n := range lengths {
		pop += n
		if n > max {
			max = n
		}
	}
	if pop == 0 {
		m.ChainSkew.Set(0)
		return
	}
	mean := float64(pop) / float64(len(lengths))
	m.ChainSkew.Set(float64(max) / mean)
}

// ServerMetrics is the real-socket frontend's instrument bundle: the
// connection conservation ledger (every accepted kernel connection ends
// in exactly one of served, shed, or shutdown-drained, so
// server_accepted_total == served + shed + drained once the server has
// stopped), the live-connection gauge, and the transaction/byte volume
// counters. Shed is per-reason, mirroring the shard layer's
// shard_shed_total{reason} family one level up: the frontend sheds
// connections (a slow consumer's write queue overflowing, a socket
// error, a protocol violation) where the shard layer sheds frames.
type ServerMetrics struct {
	Accepted *Counter
	Active   *Gauge
	Served   *Counter
	Drained  *Counter

	// Per-reason connection sheds (server_shed_total{reason=...}).
	ShedWriteBacklog *Counter
	ShedSocketError  *Counter
	ShedProtocol     *Counter
	ShedHandshake    *Counter
	ShedEngineReset  *Counter

	Txns     *Counter
	BadTxns  *Counter
	BytesIn  *Counter
	BytesOut *Counter
	// FramesSynth counts wire frames the frontend synthesized into the
	// StackSet (SYN/ACK/data/FIN/RST) — the bridge's ingress volume.
	FramesSynth *Counter
}

// NewServerMetrics registers the frontend metric family on r.
func NewServerMetrics(r *Registry) *ServerMetrics {
	shed := func(reason string) *Counter {
		return r.Counter("server_shed_total", L("reason", reason))
	}
	return &ServerMetrics{
		Accepted:         r.Counter("server_accepted_total"),
		Active:           r.Gauge("server_active_connections"),
		Served:           r.Counter("server_served_total"),
		Drained:          r.Counter("server_drained_total"),
		ShedWriteBacklog: shed("write-backlog"),
		ShedSocketError:  shed("socket-error"),
		ShedProtocol:     shed("protocol"),
		ShedHandshake:    shed("handshake"),
		ShedEngineReset:  shed("engine-reset"),
		Txns:             r.Counter("server_txns_total"),
		BadTxns:          r.Counter("server_bad_txns_total"),
		BytesIn:          r.Counter("server_bytes_in_total"),
		BytesOut:         r.Counter("server_bytes_out_total"),
		FramesSynth:      r.Counter("server_frames_synthesized_total"),
	}
}
