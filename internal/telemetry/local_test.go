package telemetry

import (
	"sync"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/hashfn"
)

// TestLocalDemuxMatchesShared drives the same lookups through the
// single-writer local tier and the shared wrapper, and checks the
// flushed metrics agree exactly — the two instrumentation paths must be
// observationally equivalent.
func TestLocalDemuxMatchesShared(t *testing.T) {
	build := func() (ConcurrentDemuxer, error) {
		inner := core.NewSequentHash(19, hashfn.Multiplicative{})
		return lockedDemux{inner: inner, mu: &sync.Mutex{}}, nil
	}

	drive := func(d ConcurrentDemuxer) {
		for i := uint32(0); i < 50; i++ {
			_ = d.Insert(core.NewPCB(testKey(i)))
		}
		for i := uint32(0); i < 200; i++ {
			d.Lookup(testKey(i%60), core.DirData) // mix of hits and misses
		}
	}

	sharedInner, err := build()
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRegistry()
	ms := NewDemuxMetrics(rs, "x")
	drive(InstrumentConcurrent(sharedInner, ms, nil, nil))

	localInner, err := build()
	if err != nil {
		t.Fatal(err)
	}
	rl := NewRegistry()
	ml := NewDemuxMetrics(rl, "x")
	ld := InstrumentLocal(localInner, ml)
	drive(ld)
	ld.Flush()

	s, l := ms.ExaminedSnapshot(), ml.ExaminedSnapshot()
	if s.Count != l.Count || s.Sum != l.Sum || s.Max != l.Max {
		t.Fatalf("local and shared tiers disagree: shared %+v local %+v", s, l)
	}
	for i := range s.Bucket {
		if s.Bucket[i] != l.Bucket[i] {
			t.Fatalf("bucket %d: shared %d local %d", i, s.Bucket[i], l.Bucket[i])
		}
	}
	if ms.Hits() != ml.Hits() || ms.Misses() != ml.Misses() {
		t.Fatalf("outcome counts disagree: shared hit=%d miss=%d, local hit=%d miss=%d",
			ms.Hits(), ms.Misses(), ml.Hits(), ml.Misses())
	}
	if ml.Lookups() != 200 {
		t.Fatalf("lookups %d, want 200", ml.Lookups())
	}
}

// TestLocalDemuxFlushClears checks Flush both publishes and resets the
// private buffer, so double-flushing never double-counts.
func TestLocalDemuxFlushClears(t *testing.T) {
	inner := core.NewSequentHash(7, nil)
	r := NewRegistry()
	m := NewDemuxMetrics(r, "x")
	ld := InstrumentLocal(lockedDemux{inner: inner, mu: &sync.Mutex{}}, m)
	_ = ld.Insert(core.NewPCB(testKey(1)))
	ld.Lookup(testKey(1), core.DirData)
	ld.Flush()
	ld.Flush()
	if got := m.Lookups(); got != 1 {
		t.Fatalf("double flush double-counted: lookups %d, want 1", got)
	}
	ld.Lookup(testKey(1), core.DirData)
	ld.Flush()
	if got := m.Lookups(); got != 2 {
		t.Fatalf("buffer not reusable after flush: lookups %d, want 2", got)
	}
}

// TestLocalDemuxConcurrentFlush runs one LocalDemux per goroutine over a
// shared inner demuxer (the intended deployment) under the race
// detector, and checks the flushed totals are exact.
func TestLocalDemuxConcurrentFlush(t *testing.T) {
	inner := lockedDemux{inner: core.NewSequentHash(19, hashfn.Multiplicative{}), mu: &sync.Mutex{}}
	for i := uint32(0); i < 20; i++ {
		if err := inner.Insert(core.NewPCB(testKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	r := NewRegistry()
	m := NewDemuxMetrics(r, "x")

	const workers = 8
	const each = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ld := InstrumentLocal(inner, m)
			defer ld.Flush()
			for i := 0; i < each; i++ {
				ld.Lookup(testKey(uint32((w+i)%25)), core.DirData)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Lookups(); got != workers*each {
		t.Fatalf("lookups %d, want %d", got, workers*each)
	}
}

// lockedDemux adapts a plain core.Demuxer into a ConcurrentDemuxer for
// the tests above (coarse lock; correctness only).
type lockedDemux struct {
	inner *core.SequentHash
	mu    *sync.Mutex
}

func (d lockedDemux) Name() string { return d.inner.Name() }
func (d lockedDemux) Insert(p *core.PCB) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Insert(p)
}
func (d lockedDemux) Remove(k core.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Remove(k)
}
func (d lockedDemux) Lookup(k core.Key, dir core.Direction) core.Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Lookup(k, dir)
}
func (d lockedDemux) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out = out[:0]
	for _, k := range keys {
		out = append(out, d.Lookup(k, dir))
	}
	return out
}
func (d lockedDemux) NotifySend(p *core.PCB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.NotifySend(p)
}
func (d lockedDemux) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Len()
}
func (d lockedDemux) Snapshot() core.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return *d.inner.Stats()
}
func (d lockedDemux) Walk(fn func(*core.PCB) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.Walk(fn)
}
