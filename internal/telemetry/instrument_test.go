package telemetry

import (
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/flat"
	"tcpdemux/internal/hashfn"
)

func testKey(n uint32) core.Key {
	return core.KeyFromTuple(tupleN(n))
}

func TestDemuxMetricsClassification(t *testing.T) {
	r := NewRegistry()
	m := NewDemuxMetrics(r, "test")
	pcb := core.NewPCB(testKey(1))
	m.Observe(core.Result{PCB: nil, Examined: 3})
	m.Observe(core.Result{PCB: pcb, Examined: 1, CacheHit: true})
	m.Observe(core.Result{PCB: pcb, Examined: 5, Wildcard: true})
	m.Observe(core.Result{PCB: pcb, Examined: 7})
	if m.Misses() != 1 || m.Hits() != 1 || m.WildcardHits() != 1 || m.Lookups() != 4 {
		t.Fatalf("classification off: miss=%d hit=%d wild=%d lookups=%d",
			m.Misses(), m.Hits(), m.WildcardHits(), m.Lookups())
	}
	snap := m.ExaminedSnapshot()
	if snap.Count != 4 || snap.Sum != 16 {
		t.Fatalf("examined histogram count=%d sum=%d, want 4/16", snap.Count, snap.Sum)
	}
	if len(snap.Labels) != 1 || snap.Labels[0].Key != "discipline" {
		t.Fatalf("merged snapshot should carry only the discipline label: %+v", snap.Labels)
	}
	// The per-outcome series are plain registry histograms, so they show
	// up individually in the snapshot too.
	outcomes := map[string]uint64{}
	for _, h := range r.Snapshot().Histograms {
		if h.Name == "demux_examined_pcbs" {
			for _, l := range h.Labels {
				if l.Key == "outcome" {
					outcomes[l.Value] = h.Count
				}
			}
		}
	}
	for _, o := range []string{"hit", "found", "miss", "wildcard"} {
		if outcomes[o] != 1 {
			t.Fatalf("outcome %q count %d, want 1 (%v)", o, outcomes[o], outcomes)
		}
	}
}

// TestInstrumentDemuxerTransparent checks the wrapper returns exactly
// what the inner demuxer returns while observing each lookup, and fills
// the flight recorder with real chain indices for chain-hashed inners.
func TestInstrumentDemuxerTransparent(t *testing.T) {
	inner := core.NewSequentHash(19, hashfn.Multiplicative{})
	r := NewRegistry()
	m := NewDemuxMetrics(r, inner.Name())
	fr := NewFlightRecorder(64)
	vt := 0.0
	d := InstrumentDemuxer(inner, m, fr, func() float64 { vt += 1; return vt })

	for i := uint32(0); i < 10; i++ {
		if err := d.Insert(core.NewPCB(testKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 10 || d.Name() != inner.Name() {
		t.Fatalf("delegation broken: len=%d name=%q", d.Len(), d.Name())
	}
	hit := d.Lookup(testKey(3), core.DirData)
	if hit.PCB == nil {
		t.Fatalf("lookup through wrapper missed an inserted key")
	}
	miss := d.Lookup(testKey(999), core.DirAck)
	if miss.PCB != nil {
		t.Fatalf("lookup through wrapper fabricated a PCB")
	}
	if m.ExaminedSnapshot().Count != 2 || m.Misses() != 1 {
		t.Fatalf("wrapper did not observe both lookups")
	}

	evs := fr.Drain()
	if len(evs) != 2 {
		t.Fatalf("flight recorder captured %d events, want 2", len(evs))
	}
	if evs[0].Chain < 0 || evs[0].Discipline != inner.Name() {
		t.Fatalf("chain index not captured from chainIndexer: %+v", evs[0])
	}
	if evs[0].Chain != int32(inner.ChainIndexOf(testKey(3))) {
		t.Fatalf("chain %d != ChainIndexOf %d", evs[0].Chain, inner.ChainIndexOf(testKey(3)))
	}
	if !evs[1].Miss || !evs[1].Ack {
		t.Fatalf("second event should be an ack miss: %+v", evs[1])
	}
	if evs[0].Time != 1 || evs[1].Time != 2 {
		t.Fatalf("virtual timestamps not threaded: %g, %g", evs[0].Time, evs[1].Time)
	}

	if !d.Remove(testKey(3)) || d.Len() != 9 {
		t.Fatalf("Remove delegation broken")
	}
	n := 0
	d.Walk(func(*core.PCB) bool { n++; return true })
	if n != 9 {
		t.Fatalf("Walk visited %d, want 9", n)
	}
}

// TestInstrumentDemuxerBatch checks the wrapper's batched path on both
// shapes of inner demuxer: one with a native LookupBatch (a flat table,
// which the wrapper must delegate to) and one without (chained Sequent,
// which falls back to per-key delegation). Metrics must come out
// identical to observing each lookup individually.
func TestInstrumentDemuxerBatch(t *testing.T) {
	inners := []core.Demuxer{
		core.NewSequentHash(19, nil),
		flat.NewHopscotch(0, nil),
	}
	for _, inner := range inners {
		r := NewRegistry()
		m := NewDemuxMetrics(r, inner.Name())
		fr := NewFlightRecorder(64)
		d := InstrumentDemuxer(inner, m, fr, nil)
		for i := uint32(0); i < 10; i++ {
			if err := d.Insert(core.NewPCB(testKey(i))); err != nil {
				t.Fatal(err)
			}
		}
		keys := []core.Key{testKey(3), testKey(999), testKey(7)}
		out := d.LookupBatch(keys, core.DirData, nil)
		if len(out) != 3 || out[0].PCB == nil || out[1].PCB != nil || out[2].PCB == nil {
			t.Fatalf("%s: batch results wrong: %+v", inner.Name(), out)
		}
		if m.ExaminedSnapshot().Count != 3 || m.Misses() != 1 {
			t.Fatalf("%s: batch not observed: count=%d misses=%d",
				inner.Name(), m.ExaminedSnapshot().Count, m.Misses())
		}
		if evs := fr.Drain(); len(evs) != 3 || !evs[1].Miss {
			t.Fatalf("%s: flight events wrong: %+v", inner.Name(), evs)
		}
		// out reuse: capacity suffices, no reallocation.
		again := d.LookupBatch(keys[:1], core.DirAck, out)
		if &again[0] != &out[:1][0] {
			t.Fatalf("%s: batch did not reuse caller's buffer", inner.Name())
		}
	}
}

func TestInstrumentDemuxerNilRecorder(t *testing.T) {
	inner := core.NewSequentHash(7, nil)
	r := NewRegistry()
	d := InstrumentDemuxer(inner, NewDemuxMetrics(r, "x"), nil, nil)
	d.Lookup(testKey(1), core.DirData) // must not panic without recorder/clock
}

func TestStackMetricsRegistersDropReasons(t *testing.T) {
	r := NewRegistry()
	m := NewStackMetrics(r)
	m.DroppedNoListener.Inc()
	m.CookiesSent.Add(2)
	if m.Registry() != r {
		t.Fatalf("Registry accessor broken")
	}
	snap := r.Snapshot()
	var found bool
	for _, c := range snap.Counters {
		if c.Name == "engine_dropped_total" && len(c.Labels) == 1 &&
			c.Labels[0].Value == "no-listener" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-reason drop counter missing from snapshot")
	}
}

func TestOverloadMetricsChainSkew(t *testing.T) {
	r := NewRegistry()
	m := NewOverloadMetrics(r, "t")
	m.ObserveChains([]int64{1, 1, 1, 5})
	if got := m.Chains.Value(); got != 4 {
		t.Fatalf("chains gauge %g, want 4", got)
	}
	if got := m.ChainSkew.Value(); got != 2.5 { // max 5 / mean 2
		t.Fatalf("skew gauge %g, want 2.5", got)
	}
	m.ObserveChains(nil)
	if m.ChainSkew.Value() != 0 {
		t.Fatalf("empty table should zero the skew gauge")
	}
	var nilM *OverloadMetrics
	nilM.ObserveChains([]int64{1}) // nil bundle is a no-op, not a panic
}

func TestShardSetMetricsRegistration(t *testing.T) {
	r := NewRegistry()
	m := NewShardSetMetrics(r, 2)
	m.InboxFull.Inc()
	m.ShedHandoffFull.Add(3)
	m.SetHealth(1, 3)
	m.SetHealth(-1, 1) // out of range: no-op, not a panic
	m.SetHealth(5, 1)
	m.Degraded.Set(2)

	snap := r.Snapshot()
	counters := make(map[string]uint64)
	for _, c := range snap.Counters {
		id := c.Name
		for _, l := range c.Labels {
			id += "{" + l.Key + "=" + l.Value + "}"
		}
		counters[id] = c.Value
	}
	for id, want := range map[string]uint64{
		"shard_inbox_full_total":                  1,
		"shard_handoff_full_total":                0,
		"shard_directory_full_total":              0,
		"shard_shed_total{reason=inbox-full}":     0,
		"shard_shed_total{reason=handoff-full}":   3,
		"shard_shed_total{reason=directory-full}": 0,
		"shard_shed_total{reason=backlog-full}":   0,
		"shard_drains_total":                      0,
		"shard_drained_connections_total":         0,
		"shard_salvaged_frames_total":             0,
		"shard_stale_handoffs_total":              0,
	} {
		got, ok := counters[id]
		if !ok {
			t.Fatalf("counter %s not registered; snapshot has %v", id, counters)
		}
		if got != want {
			t.Fatalf("counter %s = %d, want %d", id, got, want)
		}
	}

	gauges := make(map[string]float64)
	for _, g := range snap.Gauges {
		id := g.Name
		for _, l := range g.Labels {
			id += "{" + l.Key + "=" + l.Value + "}"
		}
		gauges[id] = g.Value
	}
	for id, want := range map[string]float64{
		"shard_health_state{shard=0}":  0,
		"shard_health_state{shard=1}":  3,
		"shard_degraded_shards":        2,
		"shard_drain_recovery_seconds": 0,
	} {
		got, ok := gauges[id]
		if !ok {
			t.Fatalf("gauge %s not registered; snapshot has %v", id, gauges)
		}
		if got != want {
			t.Fatalf("gauge %s = %g, want %g", id, got, want)
		}
	}
}
