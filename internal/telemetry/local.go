package telemetry

import (
	"tcpdemux/internal/core"
)

// Outcome indices into DemuxMetrics' per-outcome histograms, shared by
// the shared-wrapper and local-observer paths.
const (
	outcomeHit = iota
	outcomeFound
	outcomeMiss
	outcomeWildcard
	outcomeCount
)

// localCells flattens the (outcome, bucket) grid and pads it to a power
// of two, so the hot path can mask the cell index instead of paying a
// bounds check.
const localCells = 128

// LocalDemux is the single-writer instrumentation tier: a per-goroutine
// wrapper that accumulates lookup observations with plain (non-atomic)
// adds into private memory and folds them into the shared DemuxMetrics
// histograms on Flush. This is the per-CPU-counter idiom: even an
// uncontended LOCK-prefixed add costs ~10ns on commodity hardware —
// more than the whole 5% overhead budget for a ~120ns lookup — while a
// plain add into a private cache line costs under a nanosecond.
//
// The contract is exactly single-writer: each LocalDemux belongs to one
// goroutine, and Flush must be called by that same goroutine (typically
// deferred at worker exit) before anyone reads the shared histograms.
// The wrapped inner demuxer may still be shared; only the observation
// state is private. For cross-goroutine wrappers or flight recording,
// use InstrumentConcurrent instead.
type LocalDemux struct {
	inner ConcurrentDemuxer
	m     *DemuxMetrics
	// The observation buffers belong to the owning goroutine's localtier
	// role: only observe (the accumulate path) and Flush (the drain path)
	// may touch them, which demuxvet's singlewriter analyzer enforces.
	counts [localCells]uint64   //demux:singlewriter(owner=localtier)
	sums   [localCells]uint64   //demux:singlewriter(owner=localtier)
	max    [outcomeCount]uint64 //demux:singlewriter(owner=localtier)
}

// InstrumentLocal wraps inner with a private observation buffer folding
// into m on Flush.
func InstrumentLocal(inner ConcurrentDemuxer, m *DemuxMetrics) *LocalDemux {
	return &LocalDemux{inner: inner, m: m}
}

// observe folds one result into the private buffer: three plain adds,
// no atomics, no allocation.
//
//demux:hotpath
//demux:owner(localtier)
func (l *LocalDemux) observe(r core.Result) {
	o := outcomeFound
	switch {
	case r.PCB == nil:
		o = outcomeMiss
	case r.Wildcard:
		o = outcomeWildcard
	case r.CacheHit:
		o = outcomeHit
	}
	v := uint64(r.Examined)
	if v > histMaxObserve {
		v = histMaxObserve
	}
	c := uint32(o*histBuckets+bucketOf(v)) % localCells
	l.counts[c]++
	l.sums[c] += v
	if v > l.max[o] {
		l.max[o] = v
	}
}

// Flush folds the private buffer into the shared histograms (via their
// spill counters, which Snapshot already sums) and clears it. Totals
// are exact after every owner has flushed.
//
//demux:owner(localtier)
func (l *LocalDemux) Flush() {
	hs := [outcomeCount]*Histogram{
		outcomeHit:      l.m.hit,
		outcomeFound:    l.m.found,
		outcomeMiss:     l.m.miss,
		outcomeWildcard: l.m.wildcard,
	}
	for o, h := range hs {
		sl := &h.slots[stripeIdx(h.mask)]
		for b := 0; b < histBuckets; b++ {
			c := o*histBuckets + b
			if n := l.counts[c]; n != 0 {
				sl.spillCount[b].Add(n)
				sl.spillSum[b].Add(l.sums[c])
				l.counts[c], l.sums[c] = 0, 0
			}
		}
		if m := l.max[o]; m != 0 {
			sl.bumpMax(int64(m))
			l.max[o] = 0
		}
	}
}

// Name implements ConcurrentDemuxer.
func (l *LocalDemux) Name() string { return l.inner.Name() }

// Insert implements ConcurrentDemuxer.
func (l *LocalDemux) Insert(p *core.PCB) error { return l.inner.Insert(p) }

// Remove implements ConcurrentDemuxer.
func (l *LocalDemux) Remove(k core.Key) bool { return l.inner.Remove(k) }

// NotifySend implements ConcurrentDemuxer.
func (l *LocalDemux) NotifySend(p *core.PCB) { l.inner.NotifySend(p) }

// Len implements ConcurrentDemuxer.
func (l *LocalDemux) Len() int { return l.inner.Len() }

// Snapshot implements ConcurrentDemuxer (the inner demuxer's own
// statistics).
func (l *LocalDemux) Snapshot() core.Stats { return l.inner.Snapshot() }

// Walk implements ConcurrentDemuxer.
func (l *LocalDemux) Walk(fn func(*core.PCB) bool) { l.inner.Walk(fn) }

// Lookup implements ConcurrentDemuxer, observing into the private
// buffer.
//
//demux:hotpath
func (l *LocalDemux) Lookup(k core.Key, dir core.Direction) core.Result {
	r := l.inner.Lookup(k, dir)
	l.observe(r)
	return r
}

// LookupBatch implements ConcurrentDemuxer, observing each result.
//
//demux:hotpath
func (l *LocalDemux) LookupBatch(keys []core.Key, dir core.Direction, out []core.Result) []core.Result {
	out = l.inner.LookupBatch(keys, dir, out)
	for i := range out {
		l.observe(out[i])
	}
	return out
}
