package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"tcpdemux/internal/rng"
	"tcpdemux/internal/stats"
)

func TestMetricIDCanonical(t *testing.T) {
	a := metricID("m", []Label{L("b", "2"), L("a", "1")})
	b := metricID("m", []Label{L("a", "1"), L("b", "2")})
	if a != b {
		t.Fatalf("label order changed identity: %q vs %q", a, b)
	}
	if want := `m{a="1",b="2"}`; a != want {
		t.Fatalf("metricID = %q, want %q", a, want)
	}
	if metricID("bare", nil) != "bare" {
		t.Fatalf("unlabeled metricID should be the bare name")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits", L("d", "x"))
	c2 := r.Counter("hits", L("d", "x"))
	if c1 != c2 {
		t.Fatalf("same identity returned distinct counters")
	}
	if r.Counter("hits", L("d", "y")) == c1 {
		t.Fatalf("distinct label sets shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind collision did not panic")
		}
	}()
	r.Gauge("hits", L("d", "x"))
}

func TestCounterFoldsStripes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Value = %d, want %d", got, workers*each)
	}
}

func TestGaugeLastValueWins(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("skew")
	g.Set(1.5)
	g.Set(-3.25)
	if got := g.Value(); got != -3.25 {
		t.Fatalf("Value = %g, want -3.25", got)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if bucketOf(lo) != i {
			t.Fatalf("bucketOf(lower %d) = %d, want %d", lo, bucketOf(lo), i)
		}
		if i < histBuckets-1 && bucketOf(hi) != i {
			t.Fatalf("bucketOf(upper %d) = %d, want %d", hi, bucketOf(hi), i)
		}
	}
	if bucketOf(histMaxObserve) != histBuckets-1 {
		t.Fatalf("clamp limit not in last bucket")
	}
}

// TestHistogramMatchesStats feeds an identical observation stream to a
// telemetry histogram and to internal/stats, then cross-validates: the
// mean must agree exactly (the histogram tracks the exact sum) and every
// quantile estimate must land within the log2 bucket containing the
// exact percentile.
func TestHistogramMatchesStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("examined")
	var sum stats.Summary
	var raw []float64
	src := rng.New(42)
	for i := 0; i < 20000; i++ {
		// Mimic examined-per-packet counts: mostly small, heavy tail.
		v := uint64(src.TruncExp(8, 4000))
		h.Observe(v)
		sum.Add(float64(v))
		raw = append(raw, float64(v))
	}
	snap := h.Snapshot()
	if snap.Count != uint64(sum.N()) {
		t.Fatalf("count %d != %d", snap.Count, sum.N())
	}
	if math.Abs(snap.Mean()-sum.Mean()) > 1e-9 {
		t.Fatalf("mean %g != exact %g", snap.Mean(), sum.Mean())
	}
	if snap.Max != uint64(sum.Max()) {
		t.Fatalf("max %d != exact %g", snap.Max, sum.Max())
	}
	sort.Float64s(raw)
	for _, p := range []float64{50, 90, 99} {
		exact := stats.Percentile(raw, p)
		est := snap.Percentile(p)
		// The estimate must be inside the bucket containing the exact
		// percentile, or an adjacent one (ties at bucket edges).
		b := bucketOf(uint64(exact))
		lo := float64(BucketLower(max(0, b-1)))
		hi := float64(BucketUpper(min(histBuckets-1, b+1)))
		if est < lo || est > hi {
			t.Fatalf("p%.0f estimate %g outside buckets around exact %g [%g,%g]",
				p, est, exact, lo, hi)
		}
	}
}

func TestHistogramPackedDrain(t *testing.T) {
	// Force the count-field drain path by raising one bucket's packed word
	// close to the threshold, then observing into that bucket; the snapshot
	// must still account for every observation exactly.
	h := newHistogram("x", nil, 1)
	sl := &h.slots[0]
	b := bucketOf(100)
	sl.buckets[b].Store(histDrainAt - (1 << histPackShift)) // one observation from draining
	start := h.Snapshot()
	h.Observe(100)
	h.Observe(100)
	snap := h.Snapshot()
	if snap.Count != start.Count+2 {
		t.Fatalf("count %d, want %d", snap.Count, start.Count+2)
	}
	if snap.Sum != start.Sum+200 {
		t.Fatalf("sum %d, want %d", snap.Sum, start.Sum+200)
	}
	if sl.spillCount[b].Load() == 0 {
		t.Fatalf("count-drain path never transferred to spill counters")
	}
}

func TestHistogramSumDrain(t *testing.T) {
	// Large clamped values overflow the 40-bit sum field long before the
	// count field fills; the sum-threshold drain must fire so totals stay
	// exact. 2^39 / (2^32-1) is ~128, so 400 max-value observations cross
	// the sum threshold several times over.
	h := newHistogram("x", nil, 1)
	const n = 400
	for i := 0; i < n; i++ {
		h.Observe(histMaxObserve)
	}
	snap := h.Snapshot()
	if snap.Count != n {
		t.Fatalf("count %d, want %d", snap.Count, n)
	}
	if snap.Sum != n*histMaxObserve {
		t.Fatalf("sum %d, want %d", snap.Sum, n*histMaxObserve)
	}
	b := bucketOf(histMaxObserve)
	if h.slots[0].spillSum[b].Load() == 0 {
		t.Fatalf("sum-drain path never transferred to spill counters")
	}
}

func TestHistogramClampsLargeValues(t *testing.T) {
	h := newHistogram("x", nil, 1)
	h.Observe(1 << 40)
	snap := h.Snapshot()
	if snap.Sum != histMaxObserve || snap.Max != histMaxObserve {
		t.Fatalf("clamp failed: sum %d max %d", snap.Sum, snap.Max)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("z_total").Inc()
		r.Counter("a_total", L("d", "two")).Add(2)
		r.Counter("a_total", L("d", "one")).Add(1)
		r.Gauge("skew").Set(1.25)
		r.Histogram("h", L("d", "one")).Observe(5)
		r.Histogram("h", L("d", "one")).Observe(9)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two identical builds rendered differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Label-set ordering inside one name must be canonical.
	one := strings.Index(b1.String(), `a_total{d="one"}`)
	two := strings.Index(b1.String(), `a_total{d="two"}`)
	if one == -1 || two == -1 || one > two {
		t.Fatalf("counter series out of canonical order:\n%s", b1.String())
	}
}

// parsePromText is a minimal Prometheus text-format check: every
// non-comment line must be `series value` with a numeric value, every
// comment must be a well-formed # TYPE line, and histogram _count must
// equal the +Inf bucket.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	return series
}

func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("demux_misses_total", L("discipline", "sequent")).Add(7)
	r.Gauge("overload_chain_skew", L("table", "t")).Set(2.5)
	h := r.Histogram("demux_examined_pcbs", L("discipline", "sequent"))
	for v := uint64(0); v < 100; v++ {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	series := parsePromText(t, b.String())
	if series[`demux_misses_total{discipline="sequent"}`] != 7 {
		t.Fatalf("counter sample missing:\n%s", b.String())
	}
	inf := series[`demux_examined_pcbs_bucket{discipline="sequent",le="+Inf"}`]
	count := series[`demux_examined_pcbs_count{discipline="sequent"}`]
	if inf != 100 || count != 100 {
		t.Fatalf("+Inf bucket %g and _count %g must both be 100", inf, count)
	}
}

func TestWriteJSONIncludesPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for v := uint64(1); v <= 64; v++ {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p50"`, `"p90"`, `"p99"`, `"mean"`} {
		if !strings.Contains(b.String(), key) {
			t.Fatalf("JSON missing %s:\n%s", key, b.String())
		}
	}
}

func TestWriteSummaryTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_cookies_sent_total").Add(3)
	r.Histogram("demux_examined_pcbs", L("discipline", "x")).Observe(4)
	var b bytes.Buffer
	if err := r.Snapshot().WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"COUNTER", "HISTOGRAM", "engine_cookies_sent_total", "P99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrentSnapshot exercises concurrent writers against a
// concurrent snapshotter under -race, and checks the final fold is
// exact once the writers drain.
func TestRegistryConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h")
	g := r.Gauge("g")
	const workers, each = 8, 5000
	var writers, snapper sync.WaitGroup
	stop := make(chan struct{})
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(uint64(i & 1023))
				g.Set(float64(w))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	snapper.Wait()
	snap := r.Snapshot()
	wantN := uint64(workers * each)
	if got := c.Value(); got != wantN {
		t.Fatalf("counter %d, want %d", got, wantN)
	}
	if snap.Histograms[0].Count != wantN {
		t.Fatalf("hist count %d, want %d", snap.Histograms[0].Count, wantN)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
