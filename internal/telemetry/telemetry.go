// Package telemetry is the repository's observability subsystem: a
// stdlib-only metrics registry (counters, gauges, log2-bucketed
// histograms), a flight recorder of recent demultiplexing events, and
// exposition writers (Prometheus text format, JSON, and a human summary
// table).
//
// The paper's entire argument rests on one observable — PCBs examined
// per inbound packet — and the packages under internal/ each kept their
// own ad-hoc counters for it (core.Stats, the RCU stripe bundle, the
// engine's drop counters). This package gives those counters one home so
// a single registry snapshot correlates them: examined-per-packet
// histograms per discipline next to chain-skew gauges, rekey counts,
// SYN-cookie issuance, and per-reason drops.
//
// # Hot-path contract
//
// Counter.Inc/Add and Histogram.Observe are zero-alloc and effectively
// contention-free: every metric is striped across a power-of-two array
// of cache-line-padded slots, and the calling goroutine picks a slot by
// hashing a stack-local address (the idiom internal/rcu's statistics
// stripes established). A hot-path update is one or two uncontended
// atomic adds; folding the stripes into a total happens only at snapshot
// time. The demuxvet hotalloc analyzer enforces the no-allocation claim
// on every function marked //demux:hotpath, and atomicpub guards the
// //demux:atomic slot words.
//
// # Determinism contract
//
// Snapshot output is deterministic for deterministic input: metrics are
// sorted by name (then by canonical label encoding), histogram buckets
// have fixed bounds, and FlightRecorder.Drain merges its shards in
// (time, seq) order — two equal-seed runs produce byte-identical
// exposition output and byte-identical exported traces. The stripe/shard
// spreading is a performance heuristic only; totals and drained event
// sets never depend on it.
package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension of a metric (e.g. discipline of a
// demux histogram). Labels distinguish metrics sharing a name; a metric
// is identified by its name plus its sorted label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricID builds the canonical identity string for a name + label set:
// name{k1="v1",k2="v2"} with keys sorted. It doubles as the sort key that
// makes snapshots deterministic and as (most of) the Prometheus series
// name.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns a sorted copy of a label set.
func sortLabels(labels []Label) []Label {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Registry holds named metrics. Metric registration (Counter, Gauge,
// Histogram) is get-or-create and safe for concurrent use; the returned
// metric handles are the hot-path objects and should be cached by the
// instrumented code, not re-looked-up per packet.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stripes  int
}

// maxStripes caps the per-metric stripe count: past a few dozen slots
// the collision probability of the goroutine hash is negligible and the
// memory cost (one or two cache lines per slot per metric) dominates.
const maxStripes = 32

// NewRegistry returns an empty registry. Stripe counts are sized to the
// next power of two covering 4×GOMAXPROCS (capped at maxStripes), the
// same operating point as the RCU statistics stripes.
func NewRegistry() *Registry {
	n := 1
	for n < 4*runtime.GOMAXPROCS(0) && n < maxStripes {
		n <<= 1
	}
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		stripes:  n,
	}
}

// Counter returns the counter with this name and label set, creating it
// on first use. A name registered as a different metric kind panics:
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	r.checkKind(id, "counter")
	c := newCounter(name, sortLabels(labels), r.stripes)
	r.counters[id] = c
	return c
}

// Gauge returns the gauge with this name and label set, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	r.checkKind(id, "gauge")
	g := &Gauge{name: name, labels: sortLabels(labels)}
	r.gauges[id] = g
	return g
}

// Histogram returns the log2-bucketed histogram with this name and label
// set, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	r.checkKind(id, "histogram")
	h := newHistogram(name, sortLabels(labels), r.stripes)
	r.hists[id] = h
	return h
}

// checkKind panics if id is already registered under another kind. The
// caller holds r.mu.
func (r *Registry) checkKind(id, want string) {
	if _, ok := r.counters[id]; ok && want != "counter" {
		panic("telemetry: " + id + " already registered as a counter")
	}
	if _, ok := r.gauges[id]; ok && want != "gauge" {
		panic("telemetry: " + id + " already registered as a gauge")
	}
	if _, ok := r.hists[id]; ok && want != "histogram" {
		panic("telemetry: " + id + " already registered as a histogram")
	}
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeSnapshot is one gauge's value at snapshot time.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot is a consistent-per-metric capture of every registered
// metric, sorted by canonical metric identity. Like the parallel
// package's statistics snapshots, each metric's total counts every
// completed update exactly once, but a snapshot taken during concurrent
// traffic may straddle updates across metrics.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric, deterministically ordered.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot

	var cids []string
	for id := range r.counters {
		cids = append(cids, id)
	}
	sort.Strings(cids)
	for _, id := range cids {
		c := r.counters[id]
		snap.Counters = append(snap.Counters, CounterSnapshot{
			Name: c.name, Labels: c.labels, Value: c.Value(),
		})
	}

	var gids []string
	for id := range r.gauges {
		gids = append(gids, id)
	}
	sort.Strings(gids)
	for _, id := range gids {
		g := r.gauges[id]
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{
			Name: g.name, Labels: g.labels, Value: g.Value(),
		})
	}

	var hids []string
	for id := range r.hists {
		hids = append(hids, id)
	}
	sort.Strings(hids)
	for _, id := range hids {
		snap.Histograms = append(snap.Histograms, r.hists[id].Snapshot())
	}
	return snap
}
