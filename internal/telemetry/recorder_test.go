package telemetry

import (
	"bytes"
	"sync"
	"testing"

	"tcpdemux/internal/core"
	"tcpdemux/internal/trace"
	"tcpdemux/internal/wire"
)

func tupleN(n uint32) wire.Tuple {
	return wire.Tuple{
		SrcAddr: wire.MakeAddr(10, 0, byte(n>>8), byte(n)), SrcPort: uint16(1024 + n%1000),
		DstAddr: wire.MakeAddr(192, 168, 0, 1), DstPort: 80,
	}
}

func TestRecorderKeepsRecent(t *testing.T) {
	fr := NewFlightRecorder(16)
	total := 16*len(fr.shards) + 64 // guaranteed to overflow the rings
	for i := 0; i < total; i++ {
		fr.Record(Event{Time: float64(i), Tuple: tupleN(uint32(i))})
	}
	out := fr.Drain()
	if len(out) == 0 || len(out) > 16*len(fr.shards) {
		t.Fatalf("drained %d events, want 1..%d", len(out), 16*len(fr.shards))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time ||
			(out[i].Time == out[i-1].Time && out[i].Seq <= out[i-1].Seq) {
			t.Fatalf("drain out of (time, seq) order at %d", i)
		}
	}
	if again := fr.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(again))
	}
}

// TestDrainDeterministic runs the same single-goroutine event stream
// through two recorders and requires byte-identical exported traces —
// the ISSUE's determinism acceptance for the flight recorder.
func TestDrainDeterministic(t *testing.T) {
	record := func() []byte {
		fr := NewFlightRecorder(64)
		for i := 0; i < 500; i++ {
			fr.Record(Event{
				Time:  float64(i) * 0.25,
				Tuple: tupleN(uint32(i % 37)),
				Ack:   i%3 == 0,
			})
		}
		var b bytes.Buffer
		if err := ExportTrace(&b, fr.Drain()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(record(), record()) {
		t.Fatalf("two identical runs exported different trace bytes")
	}
}

func TestExportTraceRoundTrips(t *testing.T) {
	fr := NewFlightRecorder(64)
	fr.Record(Event{Time: 1.5, Tuple: tupleN(7), Ack: true})
	fr.Record(Event{Time: 2.5, Tuple: tupleN(9)})
	var b bytes.Buffer
	if err := ExportTrace(&b, fr.Drain()); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	for {
		ev, err := rd.Next()
		if err != nil {
			break
		}
		evs = append(evs, ev)
	}
	if len(evs) != 2 {
		t.Fatalf("round trip lost events: %d", len(evs))
	}
	if evs[0].Time != 1.5 || !evs[0].Ack || evs[0].Tuple != tupleN(7) {
		t.Fatalf("first event mangled: %+v", evs[0])
	}
	if evs[1].Dir() != core.DirData {
		t.Fatalf("non-ack event read back as ack")
	}
}

// TestRecorderConcurrent exercises Record against Drain under -race and
// verifies sequence numbers stay unique.
func TestRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(256)
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				fr.Record(Event{Time: float64(i), Tuple: tupleN(uint32(w))})
			}
		}(w)
	}
	stop := make(chan struct{})
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fr.Drain()
			}
		}
	}()
	wg.Wait()
	close(stop)
	drains.Wait()
	out := fr.Drain()
	seen := make(map[uint64]bool, len(out))
	for _, e := range out {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDropReasonStrings(t *testing.T) {
	cases := map[DropReason]string{
		DropNone:        "none",
		DropBadChecksum: "bad-checksum",
		DropBadFrame:    "bad-frame",
		DropNoRoute:     "no-route",
		DropNoListener:  "no-listener",
		DropRST:         "rst",
		DropBacklogFull: "backlog-full",
		DropBadCookie:   "bad-cookie",
		DropReason(200): "unknown",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Fatalf("DropReason(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}
