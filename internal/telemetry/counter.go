package telemetry

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// counterSlot is one cache-line-padded stripe of a counter. Padding to
// 64 bytes keeps concurrent writers on different slots from bouncing a
// line between CPUs — the same false-sharing guard the RCU statistics
// stripes apply.
type counterSlot struct {
	v atomic.Uint64 //demux:atomic
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. Inc and Add
// are zero-alloc and safe for concurrent use; Value folds the stripes.
type Counter struct {
	name   string
	labels []Label
	slots  []counterSlot
	mask   uint32
}

// newCounter builds a counter with stripes slots (rounded up to a power
// of two by the registry).
func newCounter(name string, labels []Label, stripes int) *Counter {
	return &Counter{
		name:   name,
		labels: labels,
		slots:  make([]counterSlot, stripes),
		mask:   uint32(stripes - 1),
	}
}

// Name returns the counter's metric name.
func (c *Counter) Name() string { return c.name }

// stripeIdx picks the stripe for the calling goroutine. Go offers no
// portable P or goroutine identifier, so this hashes the address of a
// stack-local marker byte: goroutines occupy distinct stacks, which
// spreads concurrent recorders across slots. The uintptr is used only as
// hash input, never converted back to a pointer. Correctness never
// depends on the spreading — any goroutine may fold into any slot —
// only contention does.
//
//demux:hotpath
func stripeIdx(mask uint32) uint32 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return uint32((p>>6)^(p>>16)) & mask
}

// Inc adds one.
//
//demux:hotpath
func (c *Counter) Inc() {
	c.slots[stripeIdx(c.mask)].v.Add(1)
}

// Add adds n.
//
//demux:hotpath
func (c *Counter) Add(n uint64) {
	c.slots[stripeIdx(c.mask)].v.Add(n)
}

// Value folds every stripe into the counter's total.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.slots {
		total += c.slots[i].v.Load()
	}
	return total
}

// Gauge is a last-value-wins float64 metric (chain skew ratio, live
// chain count). A gauge is a single atomic word — it is written on rare
// watchdog samples, not per packet, so striping would buy nothing.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64 //demux:atomic
}

// Name returns the gauge's metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
//
//demux:hotpath
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}
