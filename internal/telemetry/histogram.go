package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram layout constants.
const (
	// histBuckets is the fixed bucket count: bucket 0 holds the value 0,
	// bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. 28 buckets cover values
	// up to 2^27-1 exactly, with everything above clamped into the last
	// bucket — orders of magnitude beyond any examined-PCBs count this
	// repo produces.
	histBuckets = 28

	// histPackShift packs each bucket's observation count above its value
	// sum in one atomic word, so the hot path pays exactly one atomic add
	// for count, sum, and bucket placement together (the internal/rcu
	// stripe idiom, applied per bucket). The drain thresholds transfer the
	// word to the 64-bit spill counters long before either field can wrap:
	// the count field at 2^22 observations, the sum field at half its
	// 40-bit capacity.
	histPackShift = 40
	histPackMask  = 1<<histPackShift - 1
	histDrainAt   = uint64(1) << 62
	histSumDrain  = uint64(1) << 39

	// histMaxObserve clamps observations so a single value cannot
	// overflow the packed sum field.
	histMaxObserve = uint64(1)<<32 - 1
)

// histSlot is one stripe of a histogram: per-bucket packed count/sum
// words, their spill counters, and a running maximum. The arrays are
// atomic by construction (every element is only touched through
// atomic.Uint64 methods) but deliberately unmarked: the atomicfield
// analyzer recognizes direct field access, not indexed element access.
// The trailing pad rounds the slot to whole cache lines so neighbouring
// stripes never share one.
type histSlot struct {
	buckets    [histBuckets]atomic.Uint64
	spillCount [histBuckets]atomic.Uint64
	spillSum   [histBuckets]atomic.Uint64
	max        atomic.Int64 //demux:atomic
	_          [3]uint64
}

// Histogram is a striped log2-bucketed histogram of uint64 observations
// (PCBs examined per packet, chain lengths). Observe is zero-alloc and
// pays a single uncontended atomic add on the hot path.
type Histogram struct {
	name   string
	labels []Label
	slots  []histSlot
	mask   uint32
}

// newHistogram builds a histogram with stripes slots.
func newHistogram(name string, labels []Label, stripes int) *Histogram {
	return &Histogram{
		name:   name,
		labels: labels,
		slots:  make([]histSlot, stripes),
		mask:   uint32(stripes - 1),
	}
}

// Name returns the histogram's metric name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a value to its log2 bucket index.
//
//demux:hotpath
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i (the
// Prometheus "le" value); the final bucket reports the clamp limit.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return histMaxObserve
	}
	return 1<<uint(i) - 1
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Observe records one value: one atomic add on the bucket's packed
// count/sum word, plus a (rarely-written) running-max check.
//
//demux:hotpath
func (h *Histogram) Observe(v uint64) {
	if v > histMaxObserve {
		v = histMaxObserve
	}
	sl := &h.slots[stripeIdx(h.mask)]
	b := bucketOf(v)
	p := sl.buckets[b].Add(1<<histPackShift + v)
	if p >= histDrainAt || p&histPackMask >= histSumDrain {
		// Only the CAS winner transfers p; a racer's CAS fails harmlessly
		// and the next observation re-triggers the drain.
		if sl.buckets[b].CompareAndSwap(p, 0) {
			sl.spillCount[b].Add(p >> histPackShift)
			sl.spillSum[b].Add(p & histPackMask)
		}
	}
	sl.bumpMax(int64(v))
}

// bumpMax raises the slot's running maximum to at least v. The common
// case is a single atomic load and a not-taken branch.
//
//demux:hotpath
func (sl *histSlot) bumpMax(v int64) {
	for {
		cur := sl.max.Load()
		if v <= cur || sl.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistogramSnapshot is one histogram's folded state at snapshot time.
type HistogramSnapshot struct {
	Name   string   `json:"name"`
	Labels []Label  `json:"labels,omitempty"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
	Bucket []uint64 `json:"buckets"`
}

// Snapshot folds every stripe into one snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Labels: h.labels,
		Bucket: make([]uint64, histBuckets),
	}
	for i := range h.slots {
		sl := &h.slots[i]
		for b := 0; b < histBuckets; b++ {
			p := sl.buckets[b].Load()
			c := sl.spillCount[b].Load() + p>>histPackShift
			s.Bucket[b] += c
			s.Count += c
			s.Sum += sl.spillSum[b].Load() + p&histPackMask
		}
		if m := uint64(sl.max.Load()); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Mean returns the exact mean of all observations (the sum is tracked
// exactly, not reconstructed from buckets).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing log2 bucket. The estimate is
// always inside that bucket's [lower, upper] bounds, so its error is
// bounded by the bucket's factor-of-two width.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Bucket {
		next := cum + float64(c)
		if c > 0 && target <= next {
			lo, hi := float64(BucketLower(i)), float64(BucketUpper(i))
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.Max)
}

// Percentile is Quantile on the 0-100 scale.
func (s HistogramSnapshot) Percentile(p float64) float64 { return s.Quantile(p / 100) }
