// Runtime exposition over HTTP: a handler serving the Prometheus and
// JSON writers from a snapshot source, and a tiny server wrapper for
// demuxsim's -metrics flag.
//
// This file deliberately touches no virtual time — net/http lives on
// the wall clock, and the telemetry package sits outside the simulator's
// virtual-time boundary (it is not in demuxvet's VirtualTimePackages).
package telemetry

import (
	"net"
	"net/http"
)

// Handler serves metrics from src, which is called once per request so
// scrapes always see current values:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  JSON snapshot with derived percentiles
func Handler(src func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		src().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		src().WriteJSON(w)
	})
	return mux
}

// Serve starts an HTTP exposition server on addr (host:port; port 0
// picks a free port). It returns the bound address and a close function
// that shuts the listener down.
func Serve(addr string, src func() Snapshot) (bound string, close func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
