// Runtime exposition over HTTP: a handler serving the Prometheus and
// JSON writers from a snapshot source, and a small server wrapper with
// graceful shutdown for the long-running binaries' -metrics flags.
//
// This file deliberately touches no virtual time — net/http lives on
// the wall clock, and the telemetry package sits outside the simulator's
// virtual-time boundary (it is not in demuxvet's VirtualTimePackages).
package telemetry

import (
	"context"
	"net"
	"net/http"
)

// Handler serves metrics from src, which is called once per request so
// scrapes always see current values:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  JSON snapshot with derived percentiles
func Handler(src func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		src().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		src().WriteJSON(w)
	})
	return mux
}

// MetricsServer is a running HTTP exposition endpoint. Unlike the
// original Serve helper, whose close function abruptly dropped in-flight
// scrapes (http.Server.Close), a MetricsServer shuts down gracefully:
// Shutdown stops accepting, lets in-flight scrapes finish writing, and
// only then returns — so a SIGTERM during a Prometheus scrape does not
// truncate the exposition mid-body.
type MetricsServer struct {
	srv  *http.Server
	addr string
}

// StartServer begins serving the exposition endpoint on addr (host:port;
// port 0 picks a free port).
func StartServer(addr string, src func() Snapshot) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go srv.Serve(ln)
	return &MetricsServer{srv: srv, addr: ln.Addr().String()}, nil
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.addr }

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight scrapes run to completion, and the call returns when all
// handlers have finished or ctx expires (in which case the remaining
// connections are dropped, and ctx's error is returned).
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	return m.srv.Shutdown(ctx)
}

// Close abruptly stops the server, dropping in-flight scrapes. Prefer
// Shutdown outside tests.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP exposition server on addr and returns the bound
// address and a close function that abruptly shuts the listener down.
// It remains for callers that hold the endpoint open until process exit
// (demuxsim's -metrics); long-running servers should use StartServer and
// Shutdown for a graceful stop.
func Serve(addr string, src func() Snapshot) (bound string, close func() error, err error) {
	m, err := StartServer(addr, src)
	if err != nil {
		return "", nil, err
	}
	return m.Addr(), m.Close, nil
}
