package hashfn

import (
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// Avalanche analysis: a good tuple hash flips each output bit with
// probability 1/2 when any single input bit flips. OLTP tuple populations
// differ in exactly one or two low-order input bits between neighbouring
// connections, so poor avalanche translates directly into correlated chain
// indices and lumpy chains. This is the structural half of the [Jai89]
// quality story; ChainCounts measures the consequence, this file measures
// the cause.

// tupleBits is the number of input bits in the demultiplexing tuple.
const tupleBits = 96

// flipTupleBit returns t with input bit i (0..95) inverted. Bit layout:
// srcAddr[0..31], dstAddr[32..63], srcPort[64..79], dstPort[80..95].
func flipTupleBit(t wire.Tuple, i int) wire.Tuple {
	switch {
	case i < 32:
		t.SrcAddr[i/8] ^= 1 << (7 - i%8)
	case i < 64:
		j := i - 32
		t.DstAddr[j/8] ^= 1 << (7 - j%8)
	case i < 80:
		t.SrcPort ^= 1 << (15 - (i - 64))
	default:
		t.DstPort ^= 1 << (15 - (i - 80))
	}
	return t
}

// AvalancheReport summarizes how an output reacts to single-bit input
// flips over a sample of random tuples.
type AvalancheReport struct {
	// MeanFlipProb is the average probability, over all input/output bit
	// pairs, that flipping the input bit flips the output bit. Ideal: 0.5.
	MeanFlipProb float64
	// WorstBias is the largest |p - 0.5| over all input/output bit pairs.
	// Ideal: 0; 0.5 means some output bit ignores (or copies) an input
	// bit entirely.
	WorstBias float64
	// DeadInputBits counts input bits whose flip never changes the output
	// at all — catastrophic for populations that vary only in those bits.
	DeadInputBits int
}

// Avalanche measures f's avalanche behaviour over `samples` random base
// tuples (seeded deterministically).
func Avalanche(f Func, samples int, seed uint64) AvalancheReport {
	src := rng.New(seed)
	var flipCounts [tupleBits][32]int
	for s := 0; s < samples; s++ {
		base := wire.Tuple{
			SrcAddr: wire.Addr{byte(src.Uint64()), byte(src.Uint64()), byte(src.Uint64()), byte(src.Uint64())},
			DstAddr: wire.Addr{byte(src.Uint64()), byte(src.Uint64()), byte(src.Uint64()), byte(src.Uint64())},
			SrcPort: uint16(src.Uint64()),
			DstPort: uint16(src.Uint64()),
		}
		h0 := f.Hash(base)
		for i := 0; i < tupleBits; i++ {
			diff := h0 ^ f.Hash(flipTupleBit(base, i))
			for b := 0; b < 32; b++ {
				if diff>>b&1 == 1 {
					flipCounts[i][b]++
				}
			}
		}
	}
	var rep AvalancheReport
	total := 0.0
	for i := 0; i < tupleBits; i++ {
		anyFlip := false
		for b := 0; b < 32; b++ {
			p := float64(flipCounts[i][b]) / float64(samples)
			total += p
			if bias := abs(p - 0.5); bias > rep.WorstBias {
				rep.WorstBias = bias
			}
			if flipCounts[i][b] > 0 {
				anyFlip = true
			}
		}
		if !anyFlip {
			rep.DeadInputBits++
		}
	}
	rep.MeanFlipProb = total / float64(tupleBits*32)
	return rep
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
