package hashfn

import (
	"math/bits"

	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// Keyed is a SipHash-2-4 keyed hash over the demultiplexing tuple. Unlike
// every other Func in this package it is parameterized by a 128-bit secret
// key: an adversary who can choose (srcAddr, srcPort) cannot predict chain
// indices without the key, which defeats the collision-attack populations
// AttackPopulation synthesizes against the unkeyed functions. This is the
// same fix modern kernels applied to their flow tables after the 2011/2012
// hash-flooding disclosures — the paper's 1992 analysis assumed benign
// address populations and never modeled a tuple-choosing adversary.
//
// The key is drawn from the repo's seeded rng so runs remain deterministic:
// the defense rests on the attacker not knowing the key, not on the key
// being nondeterministic within a simulation.
type Keyed struct {
	k0, k1 uint64
}

// NewKeyed returns a keyed hash with the given 128-bit secret.
func NewKeyed(k0, k1 uint64) Keyed { return Keyed{k0: k0, k1: k1} }

// KeyedFromRNG draws a fresh 128-bit secret from the seeded source.
func KeyedFromRNG(src *rng.Source) Keyed {
	return Keyed{k0: src.Uint64(), k1: src.Uint64()}
}

// DefaultKeyed is the fixed-key instance registered in All()/ByName for
// benchmarks and CLI selection. Simulations that need an unpredictable key
// should draw their own with KeyedFromRNG.
var DefaultKeyed = NewKeyed(0x736f6d6570736575, 0x646f72616e646f6d)

// Name implements Func.
func (Keyed) Name() string { return "siphash" }

// sipround is one SipHash ARX round over the four state words.
func sipround(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = bits.RotateLeft64(v1, 13) ^ v0
	v0 = bits.RotateLeft64(v0, 32)
	v2 += v3
	v3 = bits.RotateLeft64(v3, 16) ^ v2
	v0 += v3
	v3 = bits.RotateLeft64(v3, 21) ^ v0
	v2 += v1
	v1 = bits.RotateLeft64(v1, 17) ^ v2
	v2 = bits.RotateLeft64(v2, 32)
	return v0, v1, v2, v3
}

// sip24 runs SipHash-2-4 over the message words. Each m is one 8-byte
// little-endian block; the caller is responsible for folding the message
// length into the final block per the SipHash padding rule.
func (k Keyed) sip24(ms ...uint64) uint64 {
	v0 := k.k0 ^ 0x736f6d6570736575
	v1 := k.k1 ^ 0x646f72616e646f6d
	v2 := k.k0 ^ 0x6c7967656e657261
	v3 := k.k1 ^ 0x7465646279746573
	for _, m := range ms {
		v3 ^= m
		v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
		v0 ^= m
	}
	v2 ^= 0xff
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

// Sum64 returns the full 64-bit SipHash of the 12-byte tuple serialization
// (the three canonical tuple words, little-endian, length byte 12 folded
// into the final block).
func (k Keyed) Sum64(t wire.Tuple) uint64 {
	w0, w1, w2 := tupleWords(t)
	m0 := uint64(w0) | uint64(w1)<<32
	m1 := uint64(w2) | 12<<56
	return k.sip24(m0, m1)
}

// Sum64Salted hashes the tuple together with an extra 64-bit salt word —
// used by the engine's SYN cookies to bind the client's initial sequence
// number into the cookie. The message is 20 bytes (tuple words then salt),
// so salted and unsalted hashes of the same tuple never collide by
// construction of the length byte.
func (k Keyed) Sum64Salted(t wire.Tuple, salt uint64) uint64 {
	w0, w1, w2 := tupleWords(t)
	m0 := uint64(w0) | uint64(w1)<<32
	m2 := uint64(w2) | 20<<56
	return k.sip24(m0, salt, m2)
}

// Hash implements Func by folding the 64-bit SipHash to 32 bits.
func (k Keyed) Hash(t wire.Tuple) uint32 {
	s := k.Sum64(t)
	return uint32(s ^ s>>32)
}
