package hashfn

import (
	"testing"
	"testing/quick"

	"tcpdemux/internal/stats"
	"tcpdemux/internal/wire"
)

func sampleTuple() wire.Tuple {
	return wire.Tuple{
		SrcAddr: wire.MakeAddr(192, 168, 3, 7),
		DstAddr: wire.MakeAddr(10, 0, 0, 1),
		SrcPort: 40000,
		DstPort: 1521,
	}
}

func TestHashDeterministic(t *testing.T) {
	for _, f := range All() {
		tu := sampleTuple()
		if f.Hash(tu) != f.Hash(tu) {
			t.Errorf("%s: hash not deterministic", f.Name())
		}
	}
}

func TestHashDependsOnEachField(t *testing.T) {
	// Changing any single tuple field should change the hash for all
	// functions except the deliberately weak PortsOnly.
	base := sampleTuple()
	variants := map[string]wire.Tuple{
		"srcAddr": {SrcAddr: wire.MakeAddr(192, 168, 3, 8), DstAddr: base.DstAddr, SrcPort: base.SrcPort, DstPort: base.DstPort},
		"dstAddr": {SrcAddr: base.SrcAddr, DstAddr: wire.MakeAddr(10, 0, 0, 2), SrcPort: base.SrcPort, DstPort: base.DstPort},
		"srcPort": {SrcAddr: base.SrcAddr, DstAddr: base.DstAddr, SrcPort: base.SrcPort + 1, DstPort: base.DstPort},
		"dstPort": {SrcAddr: base.SrcAddr, DstAddr: base.DstAddr, SrcPort: base.SrcPort, DstPort: base.DstPort + 1},
	}
	for _, f := range All() {
		if f.Name() == "ports-only" {
			continue
		}
		h0 := f.Hash(base)
		for field, v := range variants {
			if f.Hash(v) == h0 {
				t.Errorf("%s: insensitive to %s", f.Name(), field)
			}
		}
	}
}

func TestChainIndexInRange(t *testing.T) {
	f := func(h uint32, chainsRaw uint8) bool {
		chains := int(chainsRaw)%100 + 1
		idx := ChainIndex(h, chains)
		return idx >= 0 && idx < chains
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32KnownValue(t *testing.T) {
	// Validate the table against the standard CRC-32 of "123456789",
	// which every conforming implementation yields as 0xCBF43926.
	crc := ^uint32(0)
	for _, b := range []byte("123456789") {
		crc = crcByte(crc, b)
	}
	if got := ^crc; got != 0xcbf43926 {
		t.Fatalf("crc32 check value = %#08x, want 0xcbf43926", got)
	}
}

func TestPearsonPermIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range pearsonPerm {
		if seen[v] {
			t.Fatalf("pearson table repeats %d", v)
		}
		seen[v] = true
	}
}

func TestChainCountsTotal(t *testing.T) {
	tuples := SequentialClients(500)
	for _, f := range All() {
		counts := ChainCounts(f, tuples, 19)
		var total int64
		for _, c := range counts {
			total += c
		}
		if total != 500 {
			t.Errorf("%s: counted %d of 500 tuples", f.Name(), total)
		}
	}
}

// TestStrongHashesBalanceStructuredPopulations is the EXP-HASH acceptance
// check: CRC32, multiplicative, and Pearson must keep chains balanced
// (CV below 0.5) on every structured OLTP population; the weak PortsOnly
// hash must fail the worst one badly.
func TestStrongHashesBalanceStructuredPopulations(t *testing.T) {
	const n, chains = 2000, 19
	strong := []Func{CRC32{}, Multiplicative{}, Pearson{}}
	for _, sc := range Scenarios() {
		tuples := sc.Gen(n)
		for _, f := range strong {
			counts := ChainCounts(f, tuples, chains)
			if cv := stats.CoefficientOfVariation(counts); cv > 0.5 {
				t.Errorf("%s on %s: CV = %v, want < 0.5", f.Name(), sc.Name, cv)
			}
		}
	}
	// PortsOnly sees a single port value under sequential-clients: all
	// 2000 connections land on one chain.
	counts := ChainCounts(PortsOnly{}, SequentialClients(n), chains)
	max := int64(0)
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max != n {
		t.Errorf("ports-only should collapse sequential clients onto one chain, max=%d", max)
	}
}

func TestRandomClientsDistinct(t *testing.T) {
	tuples := RandomClients(1000, 7)
	seen := make(map[wire.Tuple]bool)
	for _, tu := range tuples {
		if seen[tu] {
			t.Fatal("duplicate tuple in random population")
		}
		seen[tu] = true
	}
}

func TestPopulationSizes(t *testing.T) {
	for _, sc := range Scenarios() {
		if got := len(sc.Gen(123)); got != 123 {
			t.Errorf("%s generated %d tuples, want 123", sc.Name, got)
		}
	}
}

func TestXorFoldSymmetryHazard(t *testing.T) {
	// Documented weakness: xor-fold cannot distinguish a tuple from one
	// with src/dst addresses swapped when ports match. This test pins the
	// behaviour so the doc comment stays honest.
	a := wire.Tuple{SrcAddr: wire.MakeAddr(1, 2, 3, 4), DstAddr: wire.MakeAddr(5, 6, 7, 8), SrcPort: 9, DstPort: 9}
	b := wire.Tuple{SrcAddr: a.DstAddr, DstAddr: a.SrcAddr, SrcPort: 9, DstPort: 9}
	if (XorFold{}).Hash(a) != (XorFold{}).Hash(b) {
		t.Fatal("xor-fold unexpectedly broke its symmetry (update docs)")
	}
	if (Multiplicative{}).Hash(a) == (Multiplicative{}).Hash(b) {
		t.Fatal("multiplicative should not be symmetric")
	}
}

func BenchmarkHash(b *testing.B) {
	tu := sampleTuple()
	for _, f := range All() {
		b.Run(f.Name(), func(b *testing.B) {
			var sink uint32
			for i := 0; i < b.N; i++ {
				sink ^= f.Hash(tu)
			}
			_ = sink
		})
	}
}

func TestByName(t *testing.T) {
	for _, f := range All() {
		got, err := ByName(f.Name())
		if err != nil || got.Name() != f.Name() {
			t.Errorf("ByName(%s): %v, %v", f.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}
