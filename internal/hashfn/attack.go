package hashfn

import (
	"fmt"

	"tcpdemux/internal/wire"
)

// AttackPopulation synthesizes n distinct tuples that all land on chain
// target of a chains-slot table under the (unkeyed) hash f — the
// algorithmic-complexity attack the paper's benign-population analysis
// never modeled. The generator simply enumerates the (srcAddr, srcPort)
// space an off-path adversary controls, in a fixed deterministic order,
// keeping every tuple whose chain index matches; because every unkeyed
// Func in this package is a public deterministic function of the tuple,
// the attacker needs no more than this brute-force sieve, and with
// uniform mixing one candidate in `chains` survives, so the scan touches
// about n*chains candidates.
//
// The destination is the standard ServerEndpoint, matching what a server
// under attack would see. An error is returned if the candidate space is
// exhausted before n tuples are found (possible only for degenerate f,
// e.g. ports-only with chains > 65536).
func AttackPopulation(f Func, chains, target, n int) ([]wire.Tuple, error) {
	if chains <= 0 {
		return nil, fmt.Errorf("hashfn: AttackPopulation needs chains > 0, got %d", chains)
	}
	if target < 0 || target >= chains {
		return nil, fmt.Errorf("hashfn: AttackPopulation target %d out of range [0,%d)", target, chains)
	}
	out := make([]wire.Tuple, 0, n)
	// Sweep ephemeral ports for each client address before advancing the
	// address — a real flooder rotates source ports faster than it can
	// acquire addresses. 2^16 addresses x ~64k ports bounds the scan at
	// ~2^32 candidates; the cap below keeps degenerate hashes from
	// spinning that long.
	const maxCandidates = 1 << 28
	tried := 0
	for a := 0; a < 1<<16 && len(out) < n; a++ {
		for port := 1024; port < 1<<16 && len(out) < n; port++ {
			if tried++; tried > maxCandidates {
				return nil, fmt.Errorf("hashfn: AttackPopulation(%s) gave up after %d candidates with %d/%d found",
					f.Name(), maxCandidates, len(out), n)
			}
			t := wire.Tuple{
				SrcAddr: wire.MakeAddr(10, 9, byte(a>>8), byte(a)),
				DstAddr: ServerEndpoint.Addr,
				SrcPort: uint16(port),
				DstPort: ServerEndpoint.Port,
			}
			if ChainIndex(f.Hash(t), chains) == target {
				out = append(out, t)
			}
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("hashfn: AttackPopulation(%s) exhausted candidate space with %d/%d found",
			f.Name(), len(out), n)
	}
	return out, nil
}
