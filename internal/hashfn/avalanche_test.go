package hashfn

import (
	"testing"

	"tcpdemux/internal/wire"
)

func TestFlipTupleBitRoundTrip(t *testing.T) {
	base := sampleTuple()
	for i := 0; i < tupleBits; i++ {
		once := flipTupleBit(base, i)
		if once == base {
			t.Fatalf("flip %d changed nothing", i)
		}
		if twice := flipTupleBit(once, i); twice != base {
			t.Fatalf("double flip %d is not identity", i)
		}
	}
}

func TestFlipTupleBitTouchesOnlyOneField(t *testing.T) {
	base := sampleTuple()
	cases := []struct {
		bit   int
		check func(a, b wire.Tuple) bool
	}{
		{0, func(a, b wire.Tuple) bool {
			return a.SrcAddr != b.SrcAddr && a.DstAddr == b.DstAddr && a.SrcPort == b.SrcPort && a.DstPort == b.DstPort
		}},
		{40, func(a, b wire.Tuple) bool { return a.DstAddr != b.DstAddr && a.SrcAddr == b.SrcAddr }},
		{70, func(a, b wire.Tuple) bool { return a.SrcPort != b.SrcPort && a.DstPort == b.DstPort }},
		{95, func(a, b wire.Tuple) bool { return a.DstPort != b.DstPort && a.SrcPort == b.SrcPort }},
	}
	for _, c := range cases {
		if !c.check(base, flipTupleBit(base, c.bit)) {
			t.Errorf("bit %d touched the wrong field", c.bit)
		}
	}
}

func TestAvalancheStrongHashes(t *testing.T) {
	// CRC-32 is linear, so each input flip toggles a *fixed* output
	// pattern (probability 0 or 1 per bit) — terrible bias but no dead
	// bits. Multiplicative and Pearson should both approximate 0.5 mean
	// flip probability; Pearson especially (random substitution).
	for _, f := range []Func{Multiplicative{}, Pearson{}} {
		rep := Avalanche(f, 300, 1)
		if rep.DeadInputBits != 0 {
			t.Errorf("%s: %d dead input bits", f.Name(), rep.DeadInputBits)
		}
		if rep.MeanFlipProb < 0.4 || rep.MeanFlipProb > 0.6 {
			t.Errorf("%s: mean flip probability %v", f.Name(), rep.MeanFlipProb)
		}
	}
}

func TestAvalancheCRCIsLinear(t *testing.T) {
	// Every input/output pair flips with probability exactly 0 or 1:
	// worst bias 0.5, yet no dead input bits (CRC-32 has full period over
	// 96 input bits).
	rep := Avalanche(CRC32{}, 200, 2)
	if rep.WorstBias != 0.5 {
		t.Fatalf("crc32 worst bias %v, expected exactly 0.5 (linearity)", rep.WorstBias)
	}
	if rep.DeadInputBits != 0 {
		t.Fatalf("crc32 dead bits %d", rep.DeadInputBits)
	}
}

func TestAvalancheXorFoldWeak(t *testing.T) {
	// xor-fold is linear too, and folds aligned bits together; its worst
	// bias must be 0.5 and its mean flip probability far below 0.5 (each
	// input bit touches at most 2 output bits).
	rep := Avalanche(XorFold{}, 200, 3)
	if rep.WorstBias != 0.5 {
		t.Fatalf("xor-fold worst bias %v", rep.WorstBias)
	}
	if rep.MeanFlipProb > 0.1 {
		t.Fatalf("xor-fold mean flip probability %v, expected sparse", rep.MeanFlipProb)
	}
}

func TestAvalanchePortsOnlyHasDeadBits(t *testing.T) {
	// ports-only ignores all 64 address bits and the destination port's
	// contribution to... actually it ignores 80 of 96 input bits.
	rep := Avalanche(PortsOnly{}, 100, 4)
	if rep.DeadInputBits != 80 {
		t.Fatalf("ports-only dead bits = %d, want 80", rep.DeadInputBits)
	}
}
