// Package hashfn implements and evaluates hash functions over the TCP
// demultiplexing tuple, in the spirit of Jain's comparison of hashing
// schemes for address lookup [Jai89] that the paper cites when asserting
// "efficient hash functions for protocol addresses are well known" (§3.5).
//
// Each function maps the 96-bit (srcIP, dstIP, srcPort, dstPort) tuple to a
// 32-bit value; the demultiplexer reduces that to a chain index. The
// evaluation half of the package measures chain balance for a tuple
// population, since an unbalanced hash silently re-lengthens the chains the
// Sequent algorithm worked to shorten.
package hashfn

import (
	"fmt"
	"strings"

	"tcpdemux/internal/wire"
)

// Func is a hash over the demultiplexing tuple.
type Func interface {
	// Name identifies the function in reports.
	Name() string
	// Hash maps the tuple to 32 bits.
	Hash(t wire.Tuple) uint32
}

// ChainIndex reduces a 32-bit hash to a chain index in [0, chains).
// A non-positive chain count is clamped to a single chain: callers that
// mis-size a table degrade to the BSD linear list rather than dividing
// by zero on the packet path.
func ChainIndex(h uint32, chains int) int {
	if chains <= 1 {
		return 0
	}
	return int(h % uint32(chains))
}

// tupleWords decomposes the tuple into three 32-bit words: both addresses
// and the packed ports. All functions hash these words, so they share one
// canonical serialization.
func tupleWords(t wire.Tuple) (w0, w1, w2 uint32) {
	w0 = uint32(t.SrcAddr[0])<<24 | uint32(t.SrcAddr[1])<<16 | uint32(t.SrcAddr[2])<<8 | uint32(t.SrcAddr[3])
	w1 = uint32(t.DstAddr[0])<<24 | uint32(t.DstAddr[1])<<16 | uint32(t.DstAddr[2])<<8 | uint32(t.DstAddr[3])
	w2 = uint32(t.SrcPort)<<16 | uint32(t.DstPort)
	return
}

// XorFold is the classic folding hash used by early hashed PCB tables
// (and by Sequent's installation defaults): xor the three tuple words and
// fold the halves together. Nearly free to compute, but sequential client
// addresses xor to sequential hashes, so its balance depends on the chain
// count being odd/prime.
type XorFold struct{}

// Name implements Func.
func (XorFold) Name() string { return "xor-fold" }

// Hash implements Func.
func (XorFold) Hash(t wire.Tuple) uint32 {
	w0, w1, w2 := tupleWords(t)
	h := w0 ^ w1 ^ w2
	return h ^ h>>16
}

// AddFold sums the tuple words with end-around carry, another of the
// folding schemes from [Jai89]. Slightly better mixing than xor at the same
// cost, still linear in the inputs.
type AddFold struct{}

// Name implements Func.
func (AddFold) Name() string { return "add-fold" }

// Hash implements Func.
func (AddFold) Hash(t wire.Tuple) uint32 {
	w0, w1, w2 := tupleWords(t)
	s := uint64(w0) + uint64(w1) + uint64(w2)
	return uint32(s) + uint32(s>>32)
}

// Multiplicative is Knuth's multiplicative hash: combine the words, then
// multiply by 2^32/φ and take the high bits. Cheap and mixes low-order
// port counters into high-order bits.
type Multiplicative struct{}

// Name implements Func.
func (Multiplicative) Name() string { return "multiplicative" }

// knuth32 is floor(2^32 / golden ratio), the classic odd multiplier.
const knuth32 = 2654435769

// Hash implements Func.
func (Multiplicative) Hash(t wire.Tuple) uint32 {
	w0, w1, w2 := tupleWords(t)
	h := w0 * knuth32
	h = (h ^ w1) * knuth32
	h = (h ^ w2) * knuth32
	// Murmur3-style finalizer: the plain multiply chain under-mixes the
	// last word's high bits (measured ~0.39 mean avalanche); two more
	// xorshift-multiply rounds restore ~0.5.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	return h ^ h>>16
}

// CRC32 is the CCITT-32 cyclic redundancy check (polynomial 0xEDB88320,
// reflected), computed over the 12 tuple bytes with a 256-entry table.
// [Jai89] found CRCs the most uniformly distributing of the practical
// choices.
type CRC32 struct{}

// Name implements Func.
func (CRC32) Name() string { return "crc32" }

var crcTable = makeCRCTable()

func makeCRCTable() *[256]uint32 {
	var tab [256]uint32
	for i := range tab {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ c>>1
			} else {
				c >>= 1
			}
		}
		tab[i] = c
	}
	return &tab
}

func crcByte(crc uint32, b byte) uint32 {
	return crcTable[byte(crc)^b] ^ crc>>8
}

// Hash implements Func.
func (CRC32) Hash(t wire.Tuple) uint32 {
	crc := ^uint32(0)
	for _, b := range t.SrcAddr {
		crc = crcByte(crc, b)
	}
	for _, b := range t.DstAddr {
		crc = crcByte(crc, b)
	}
	crc = crcByte(crc, byte(t.SrcPort>>8))
	crc = crcByte(crc, byte(t.SrcPort))
	crc = crcByte(crc, byte(t.DstPort>>8))
	crc = crcByte(crc, byte(t.DstPort))
	return ^crc
}

// Pearson is an 8-bit Pearson hash widened to 32 bits by running four
// passes with different initial values. Table-driven and byte-oriented like
// CRC but with a random permutation instead of polynomial structure.
type Pearson struct{}

// Name implements Func.
func (Pearson) Name() string { return "pearson" }

// pearsonPerm is a fixed pseudo-random permutation of 0..255 (generated
// once from a linear-congruential walk; any fixed permutation works).
var pearsonPerm = makePearsonPerm()

func makePearsonPerm() *[256]byte {
	var p [256]byte
	for i := range p {
		p[i] = byte(i)
	}
	// Deterministic Fisher-Yates using an LCG so the table is stable.
	state := uint32(0x2545f491)
	for i := 255; i > 0; i-- {
		state = state*1664525 + 1013904223
		j := int(state % uint32(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return &p
}

// Hash implements Func.
func (Pearson) Hash(t wire.Tuple) uint32 {
	var bytes [12]byte
	copy(bytes[0:4], t.SrcAddr[:])
	copy(bytes[4:8], t.DstAddr[:])
	bytes[8] = byte(t.SrcPort >> 8)
	bytes[9] = byte(t.SrcPort)
	bytes[10] = byte(t.DstPort >> 8)
	bytes[11] = byte(t.DstPort)
	var out uint32
	for lane := 0; lane < 4; lane++ {
		h := pearsonPerm[(int(bytes[0])+lane)%256]
		for _, b := range bytes[1:] {
			h = pearsonPerm[h^b]
		}
		out |= uint32(h) << (8 * lane)
	}
	return out
}

// PortsOnly hashes only the foreign port — a deliberately weak function
// included as the evaluation's lower bound: with clients behind a proxy or
// using a small ephemeral range it collapses chains badly.
type PortsOnly struct{}

// Name implements Func.
func (PortsOnly) Name() string { return "ports-only" }

// Hash implements Func.
func (PortsOnly) Hash(t wire.Tuple) uint32 { return uint32(t.SrcPort) }

// All returns the package's hash functions, strongest mixing first. The
// siphash entry is DefaultKeyed — the only keyed (attack-resistant)
// function in the set.
func All() []Func {
	return []Func{DefaultKeyed, CRC32{}, Multiplicative{}, Pearson{}, AddFold{}, XorFold{}, PortsOnly{}}
}

// ChainCounts hashes every tuple and returns the resulting population of
// each of the given number of chains.
func ChainCounts(f Func, tuples []wire.Tuple, chains int) []int64 {
	counts := make([]int64, chains)
	for _, t := range tuples {
		counts[ChainIndex(f.Hash(t), chains)]++
	}
	return counts
}

// ByName returns the hash function with the given Name, or an error
// listing the valid names.
func ByName(name string) (Func, error) {
	for _, f := range All() {
		if f.Name() == name {
			return f, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, f := range All() {
		names = append(names, f.Name())
	}
	return nil, fmt.Errorf("hashfn: unknown hash %q (have %s)", name, strings.Join(names, ", "))
}
