package hashfn

import (
	"math/bits"
	"testing"

	"tcpdemux/internal/rng"
	"tcpdemux/internal/stats"
	"tcpdemux/internal/wire"
)

// refSipHash24 is an independent, byte-oriented SipHash-2-4 written
// straight from the specification (including the length-byte padding
// rule). Keyed packs the tuple into 64-bit words directly; this reference
// checks that packing against the canonical byte-stream form.
func refSipHash24(k0, k1 uint64, data []byte) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573
	round := func() {
		v0 += v1
		v1 = bits.RotateLeft64(v1, 13) ^ v0
		v0 = bits.RotateLeft64(v0, 32)
		v2 += v3
		v3 = bits.RotateLeft64(v3, 16) ^ v2
		v0 += v3
		v3 = bits.RotateLeft64(v3, 21) ^ v0
		v2 += v1
		v1 = bits.RotateLeft64(v1, 17) ^ v2
		v2 = bits.RotateLeft64(v2, 32)
	}
	full := len(data) / 8
	for b := 0; b < full; b++ {
		var m uint64
		for i := 7; i >= 0; i-- {
			m = m<<8 | uint64(data[b*8+i])
		}
		v3 ^= m
		round()
		round()
		v0 ^= m
	}
	m := uint64(len(data)) << 56
	for i := full * 8; i < len(data); i++ {
		m |= uint64(data[i]) << (8 * (i - full*8))
	}
	v3 ^= m
	round()
	round()
	v0 ^= m
	v2 ^= 0xff
	round()
	round()
	round()
	round()
	return v0 ^ v1 ^ v2 ^ v3
}

func tupleBytes(t wire.Tuple) []byte {
	w0, w1, w2 := tupleWords(t)
	return []byte{
		byte(w0), byte(w0 >> 8), byte(w0 >> 16), byte(w0 >> 24),
		byte(w1), byte(w1 >> 8), byte(w1 >> 16), byte(w1 >> 24),
		byte(w2), byte(w2 >> 8), byte(w2 >> 16), byte(w2 >> 24),
	}
}

func TestKeyedMatchesReferenceSipHash(t *testing.T) {
	src := rng.New(11)
	for i := 0; i < 200; i++ {
		k := KeyedFromRNG(src)
		tu := RandomClients(1, src.Uint64())[0]
		if got, want := k.Sum64(tu), refSipHash24(k.k0, k.k1, tupleBytes(tu)); got != want {
			t.Fatalf("Sum64 = %#x, reference = %#x", got, want)
		}
		salt := src.Uint64()
		msg := tupleBytes(tu)
		salted := append(msg[:8:8],
			byte(salt), byte(salt>>8), byte(salt>>16), byte(salt>>24),
			byte(salt>>32), byte(salt>>40), byte(salt>>48), byte(salt>>56))
		salted = append(salted, msg[8:]...)
		if got, want := k.Sum64Salted(tu, salt), refSipHash24(k.k0, k.k1, salted); got != want {
			t.Fatalf("Sum64Salted = %#x, reference = %#x", got, want)
		}
	}
}

func TestKeyedAvalanche(t *testing.T) {
	rep := Avalanche(DefaultKeyed, 300, 5)
	if rep.DeadInputBits != 0 {
		t.Errorf("siphash: %d dead input bits", rep.DeadInputBits)
	}
	if rep.MeanFlipProb < 0.45 || rep.MeanFlipProb > 0.55 {
		t.Errorf("siphash: mean flip probability %v, want ~0.5", rep.MeanFlipProb)
	}
}

func TestKeyedKeyDependence(t *testing.T) {
	tu := sampleTuple()
	a, b := NewKeyed(1, 2), NewKeyed(3, 4)
	if a.Hash(tu) == b.Hash(tu) && a.Sum64(tu) == b.Sum64(tu) {
		t.Fatal("different keys produced identical hashes")
	}
	if s := NewKeyed(1, 2); s.Sum64(tu) == s.Sum64Salted(tu, 0) {
		t.Fatal("salted and unsalted hashes collide for salt 0")
	}
}

func TestKeyedBalanceBenignPopulations(t *testing.T) {
	const n, chains = 2000, 19
	for _, sc := range Scenarios() {
		counts := ChainCounts(DefaultKeyed, sc.Gen(n), chains)
		if cv := stats.CoefficientOfVariation(counts); cv > 0.5 {
			t.Errorf("siphash on %s: CV = %v, want < 0.5", sc.Name, cv)
		}
	}
}

// TestAttackPopulationSkewsUnkeyedButNotKeyed is the satellite keyed-hash
// quality check: tuples generated to collide under an unkeyed hash must
// all land on the target chain of that hash, and the same population must
// rebalance under a freshly keyed hash — the "after rekey" half of the
// attack/recovery story.
func TestAttackPopulationSkewsUnkeyedButNotKeyed(t *testing.T) {
	const n, chains, target = 1000, 64, 17
	for _, victim := range []Func{Multiplicative{}, CRC32{}, XorFold{}} {
		pop, err := AttackPopulation(victim, chains, target, n)
		if err != nil {
			t.Fatalf("AttackPopulation(%s): %v", victim.Name(), err)
		}
		seen := make(map[wire.Tuple]bool, n)
		for _, tu := range pop {
			if seen[tu] {
				t.Fatalf("%s: duplicate tuple in attack population", victim.Name())
			}
			seen[tu] = true
		}
		counts := ChainCounts(victim, pop, chains)
		if counts[target] != n {
			t.Fatalf("%s: only %d/%d attack tuples hit chain %d", victim.Name(), counts[target], n, target)
		}
		// Under an unpredictable key the same population spreads out:
		// the fullest chain must hold a small fraction of it, not 90%+.
		keyed := KeyedFromRNG(rng.New(99))
		kcounts := ChainCounts(keyed, pop, chains)
		max := int64(0)
		for _, c := range kcounts {
			if c > max {
				max = c
			}
		}
		if max > n/10 {
			t.Errorf("%s attack population still skewed under keyed hash: max chain %d of %d", victim.Name(), max, n)
		}
		if cv := stats.CoefficientOfVariation(kcounts); cv > 0.5 {
			t.Errorf("%s attack population under keyed hash: CV = %v", victim.Name(), cv)
		}
	}
}

func TestAttackPopulationArgErrors(t *testing.T) {
	if _, err := AttackPopulation(Multiplicative{}, 0, 0, 10); err == nil {
		t.Error("chains=0 accepted")
	}
	if _, err := AttackPopulation(Multiplicative{}, 8, 8, 10); err == nil {
		t.Error("target out of range accepted")
	}
	if _, err := AttackPopulation(Multiplicative{}, 8, -1, 10); err == nil {
		t.Error("negative target accepted")
	}
}

// TestChainIndexClamp pins the chains <= 0 guard: a mis-sized table must
// degrade to one chain, not divide by zero.
func TestChainIndexClamp(t *testing.T) {
	for _, chains := range []int{0, -1, -100} {
		if got := ChainIndex(0xdeadbeef, chains); got != 0 {
			t.Errorf("ChainIndex(_, %d) = %d, want 0", chains, got)
		}
	}
	if got := ChainIndex(7, 1); got != 0 {
		t.Errorf("ChainIndex(7, 1) = %d, want 0", got)
	}
}
