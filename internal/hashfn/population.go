package hashfn

import (
	"tcpdemux/internal/rng"
	"tcpdemux/internal/wire"
)

// Population generators for hash evaluation. OLTP address populations are
// highly structured — one server address/port, client addresses assigned
// sequentially within a few subnets, ephemeral ports drawn from a counter —
// and that structure is exactly what breaks weak hashes. Each generator
// returns n distinct tuples as seen by the server (src = client).

// ServerEndpoint is the fixed local endpoint used by the generators.
var ServerEndpoint = struct {
	Addr wire.Addr
	Port uint16
}{wire.MakeAddr(10, 0, 0, 1), 1521}

// SequentialClients models terminal concentrators: client addresses count
// up from 10.1.0.0 one by one, every connection from source port 1023
// (the classic rlogin-style reserved port). Hash quality must come from
// the address alone.
func SequentialClients(n int) []wire.Tuple {
	out := make([]wire.Tuple, n)
	for i := range out {
		out[i] = wire.Tuple{
			SrcAddr: wire.MakeAddr(10, 1, byte(i>>8), byte(i)),
			DstAddr: ServerEndpoint.Addr,
			SrcPort: 1023,
			DstPort: ServerEndpoint.Port,
		}
	}
	return out
}

// FewClientsManyPorts models a small bank of front-end machines each
// multiplexing hundreds of users over ephemeral ports: 8 client addresses,
// ports counting up from 32768. Hash quality must come from the port.
func FewClientsManyPorts(n int) []wire.Tuple {
	out := make([]wire.Tuple, n)
	for i := range out {
		out[i] = wire.Tuple{
			SrcAddr: wire.MakeAddr(10, 2, 0, byte(i%8)),
			DstAddr: ServerEndpoint.Addr,
			SrcPort: uint16(32768 + i/8),
			DstPort: ServerEndpoint.Port,
		}
	}
	return out
}

// RandomClients draws uniformly random client addresses and ephemeral
// ports — the friendliest possible population, included as the baseline
// any hash should handle.
func RandomClients(n int, seed uint64) []wire.Tuple {
	src := rng.New(seed)
	seen := make(map[wire.Tuple]bool, n)
	out := make([]wire.Tuple, 0, n)
	for len(out) < n {
		t := wire.Tuple{
			SrcAddr: wire.MakeAddr(byte(src.Intn(223)+1), byte(src.Intn(256)), byte(src.Intn(256)), byte(src.Intn(256))),
			DstAddr: ServerEndpoint.Addr,
			SrcPort: uint16(src.Intn(64512) + 1024),
			DstPort: ServerEndpoint.Port,
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Scenario pairs a population generator with a name for reports.
type Scenario struct {
	Name string
	Gen  func(n int) []wire.Tuple
}

// Scenarios returns the three standard populations.
func Scenarios() []Scenario {
	return []Scenario{
		{"sequential-clients", SequentialClients},
		{"few-clients-many-ports", FewClientsManyPorts},
		{"random-clients", func(n int) []wire.Tuple { return RandomClients(n, 1) }},
	}
}
