package trains

import (
	"math"
	"testing"

	"tcpdemux/internal/core"
)

func run(t *testing.T, algo string, cfg Config, dcfg core.Config) *Result {
	t.Helper()
	d, err := core.New(algo, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSingleStreamBSDCacheNearIdeal reproduces the paper's §1 claim: with
// bulk-data packet trains "a very simple one-PCB cache like those used in
// BSD systems yields very high cache hit rates."
func TestSingleStreamBSDCacheNearIdeal(t *testing.T) {
	cfg := Config{Connections: 1, MeanTrainLen: 20, Segments: 20000, Seed: 1}
	r := run(t, "bsd", cfg, core.Config{})
	if r.CacheHitRate < 0.95 {
		t.Fatalf("single-stream hit rate = %v, want near 1", r.CacheHitRate)
	}
	if r.Examined.Mean() > 1.1 {
		t.Fatalf("single-stream mean examined = %v", r.Examined.Mean())
	}
}

// TestFewStreamsBSDStillGood checks the moderate-concurrency regime: with a
// handful of interleaving transfers the hit rate tracks roughly (B-1)/B
// within each train.
func TestFewStreamsBSDStillGood(t *testing.T) {
	cfg := Config{Connections: 8, MeanTrainLen: 20, Segments: 40000, Seed: 2}
	r := run(t, "bsd", cfg, core.Config{})
	// Trains interleave, so inter-train switches and overlapping trains
	// miss; within-train segments are back-to-back (1.2 ms) against 0.5 s
	// inter-train gaps, so well over half the segments still hit.
	if r.CacheHitRate < 0.6 {
		t.Fatalf("8-stream hit rate = %v", r.CacheHitRate)
	}
}

// TestSequentGoodOnTrainsToo is the other half of the paper's claim: the
// hashed design must not regress on packet trains ("while still
// maintaining good performance for packet-train traffic", abstract).
func TestSequentGoodOnTrainsToo(t *testing.T) {
	cfg := Config{Connections: 8, MeanTrainLen: 20, Segments: 40000, Seed: 3}
	bsd := run(t, "bsd", cfg, core.Config{})
	seq := run(t, "sequent", cfg, core.Config{Chains: 19})
	if seq.Examined.Mean() > bsd.Examined.Mean()*1.2 {
		t.Fatalf("Sequent regressed on trains: %v vs BSD %v",
			seq.Examined.Mean(), bsd.Examined.Mean())
	}
	if seq.CacheHitRate < bsd.CacheHitRate*0.9 {
		t.Fatalf("Sequent hit rate %v well below BSD %v", seq.CacheHitRate, bsd.CacheHitRate)
	}
}

// TestManyStreamsErodeBSDCache shows the transition the paper pivots on:
// as concurrency rises toward OLTP-like interleaving, the single cache
// stops helping while Sequent's per-chain caches hold up.
func TestManyStreamsErodeBSDCache(t *testing.T) {
	// Back-to-back interleaving: zero inter-train gap and short trains.
	cfg := Config{Connections: 200, MeanTrainLen: 2, SegmentGap: 0.001,
		MeanInterTrain: 0.001, Segments: 60000, Seed: 4}
	bsd := run(t, "bsd", cfg, core.Config{})
	seq := run(t, "sequent", cfg, core.Config{Chains: 19})
	if bsd.CacheHitRate > 0.6 {
		t.Fatalf("expected eroded BSD hit rate, got %v", bsd.CacheHitRate)
	}
	if seq.Examined.Mean() > bsd.Examined.Mean()/3 {
		t.Fatalf("Sequent %v not clearly better than BSD %v under interleaving",
			seq.Examined.Mean(), bsd.Examined.Mean())
	}
}

func TestIdealHitRate(t *testing.T) {
	if IdealHitRate(20) != 0.95 {
		t.Fatalf("ideal(20) = %v", IdealHitRate(20))
	}
	if IdealHitRate(1) != 0 || IdealHitRate(0) != 0 {
		t.Fatal("degenerate ideal hit rates wrong")
	}
}

func TestRunValidation(t *testing.T) {
	for _, cfg := range []Config{{Connections: 0}, {Connections: 1, SegmentGap: -1}} {
		if _, err := Run(core.NewMapDemux(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Connections: 4, Segments: 5000, Seed: 9}
	a := run(t, "sr", cfg, core.Config{})
	b := run(t, "sr", cfg, core.Config{})
	if a.Examined.Mean() != b.Examined.Mean() || a.Segments != b.Segments {
		t.Fatal("same seed diverged")
	}
}

func TestSegmentBudgetRespected(t *testing.T) {
	cfg := Config{Connections: 3, Segments: 1234, Seed: 5}
	r := run(t, "map", cfg, core.Config{})
	if r.Segments != 1234 {
		t.Fatalf("measured %d segments", r.Segments)
	}
}

func TestMeanTrainLengthApproximatesConfig(t *testing.T) {
	cfg := Config{Connections: 1, MeanTrainLen: 10, Segments: 50000, Seed: 6}
	r := run(t, "bsd", cfg, core.Config{})
	got := float64(r.Segments) / float64(r.Trains)
	if math.Abs(got-10)/10 > 0.1 {
		t.Fatalf("realized mean train length %v, want ≈ 10", got)
	}
}

func TestSingleConnectionCacheNeverEvicted(t *testing.T) {
	// With exactly one PCB nothing can evict the cache: after the first
	// segment every lookup is a hit, regardless of the train structure.
	cfg := Config{Connections: 1, MeanTrainLen: 3, Segments: 10000, Seed: 8}
	r := run(t, "bsd", cfg, core.Config{})
	if r.CacheHitRate < 0.999 {
		t.Fatalf("single-PCB hit rate = %v", r.CacheHitRate)
	}
}
