// Package trains implements the packet-train workload of Jain & Routhier
// [JR86] that the paper contrasts with OLTP traffic (§1): bulk-data
// transfers deliver long bursts of back-to-back segments on one connection,
// so the next segment almost always uses the same PCB as the last. This is
// the regime the BSD one-entry cache was designed for, and the regime in
// which any replacement must not regress ("while still maintaining good
// performance for packet-train traffic").
//
// The generator interleaves trains from a configurable number of concurrent
// connections: a connection wakes, emits a geometric-length train of data
// segments (each prompting an inbound ack too, per the simple-ack model),
// then sleeps for an exponential inter-train gap.
package trains

import (
	"errors"
	"fmt"

	"tcpdemux/internal/core"
	"tcpdemux/internal/rng"
	"tcpdemux/internal/sim"
	"tcpdemux/internal/stats"
	"tcpdemux/internal/wire"
)

// Config parameterizes a packet-train run. The receiver under test is a
// bulk-data sink: inbound data segments dominate, with the receiver's
// window updates flowing out.
type Config struct {
	// Connections is the number of concurrent bulk transfers.
	Connections int
	// MeanTrainLen is the mean number of segments per train (geometric).
	MeanTrainLen float64
	// SegmentGap is the within-train inter-segment time in seconds
	// (back-to-back wire time for an MTU segment; ~1.2 ms on 10 Mb/s
	// Ethernet, the paper's era).
	SegmentGap float64
	// MeanInterTrain is the mean gap between a connection's trains.
	MeanInterTrain float64
	// Segments is the total number of inbound segments to measure.
	Segments int
	// Seed seeds the RNG.
	Seed uint64
}

// withDefaults fills zero fields with era-appropriate values.
func (c Config) withDefaults() Config {
	if c.MeanTrainLen == 0 {
		c.MeanTrainLen = 20
	}
	if c.SegmentGap == 0 {
		c.SegmentGap = 0.0012
	}
	if c.MeanInterTrain == 0 {
		c.MeanInterTrain = 0.5
	}
	if c.Segments == 0 {
		c.Segments = 20000
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Connections < 1 {
		return errors.New("trains: need at least one connection")
	}
	if c.MeanTrainLen < 0 || c.SegmentGap < 0 || c.MeanInterTrain < 0 {
		return errors.New("trains: negative timing parameter")
	}
	return nil
}

// Result carries the measured statistics.
type Result struct {
	Algorithm    string
	Config       Config
	Examined     stats.Summary
	CacheHitRate float64
	Segments     uint64
	// Trains is the number of trains started, so Segments/Trains estimates
	// the realized mean train length.
	Trains uint64
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s: conns=%d trainlen=%g mean=%.2f hit=%.1f%%",
		r.Algorithm, r.Config.Connections, r.Config.MeanTrainLen,
		r.Examined.Mean(), r.CacheHitRate*100)
}

// connKey returns the receiver-side key for bulk connection i.
func connKey(i int) core.Key {
	return core.Key{
		LocalAddr:  wire.MakeAddr(10, 0, 0, 1),
		LocalPort:  5001, // classic ttcp port
		RemoteAddr: wire.MakeAddr(10, 3, byte(i>>8), byte(i)),
		RemotePort: uint16(33000 + i),
	}
}

// Run drives the demuxer with the packet-train workload and returns the
// measured statistics.
func Run(d core.Demuxer, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)

	pcbs := make([]*core.PCB, cfg.Connections)
	for i := range pcbs {
		pcbs[i] = core.NewPCB(connKey(i))
		if err := d.Insert(pcbs[i]); err != nil {
			return nil, fmt.Errorf("trains: inserting PCB %d: %w", i, err)
		}
	}

	res := &Result{Algorithm: d.Name(), Config: cfg}
	d.Stats().Reset()
	var (
		kernel   sim.Sim
		received int
		schedErr error
	)
	schedule := func(delay float64, ev sim.Event) {
		if schedErr != nil {
			return
		}
		if _, err := kernel.After(delay, ev); err != nil {
			schedErr = err
		}
	}

	// trainLen draws a geometric train length with the configured mean.
	trainLen := func() int {
		n := 1
		p := 1 / cfg.MeanTrainLen
		for src.Float64() > p {
			n++
		}
		return n
	}

	var startTrain func(i int) sim.Event
	var segment func(i, remaining int) sim.Event

	segment = func(i, remaining int) sim.Event {
		return func(float64) {
			if received >= cfg.Segments {
				return
			}
			received++
			r := d.Lookup(pcbs[i].Key, core.DirData)
			if r.PCB != pcbs[i] {
				schedErr = fmt.Errorf("trains: wrong PCB for connection %d", i)
				return
			}
			res.Examined.Add(float64(r.Examined))
			// Window-update ack goes back out.
			d.NotifySend(pcbs[i])
			if remaining > 1 {
				schedule(cfg.SegmentGap, segment(i, remaining-1))
			} else {
				schedule(src.Exp(cfg.MeanInterTrain), startTrain(i))
			}
		}
	}
	startTrain = func(i int) sim.Event {
		return func(now float64) {
			if received >= cfg.Segments {
				return
			}
			res.Trains++
			segment(i, trainLen())(now)
		}
	}

	for i := range pcbs {
		schedule(src.Exp(cfg.MeanInterTrain), startTrain(i))
	}
	kernel.Run()
	if schedErr != nil {
		return nil, schedErr
	}
	res.Segments = uint64(res.Examined.N())
	if st := d.Stats(); st.Lookups > 0 {
		res.CacheHitRate = st.HitRate()
	}
	return res, nil
}

// IdealHitRate returns the best possible one-entry cache hit rate for a
// single connection sending geometric trains of the given mean length:
// every segment but the first of each train hits, (B-1)/B.
func IdealHitRate(meanTrainLen float64) float64 {
	if meanTrainLen <= 0 {
		return 0
	}
	return (meanTrainLen - 1) / meanTrainLen
}
