// The load generator behind cmd/demuxload and the loopback integration
// test: N concurrent real TCP connections driving the TPC/A protocol on
// a seeded mixed open/close/transaction schedule, with every response
// verified byte-for-byte against a client-side ledger oracle.
//
// Verification works because each worker's branch, teller, and account
// ids are private to that worker: the server serializes all transactions
// through one shared ledger, but balances only depend on the deltas that
// touched the same ids, so a worker can replay its own schedule against
// a private Ledger and predict every response byte exactly — regardless
// of how the server interleaves other connections' transactions.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"tcpdemux/internal/rng"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Addr is the server's kernel listen address. Required.
	Addr string
	// Conns is the number of concurrent connections (workers). Each
	// worker holds its connection open across its whole schedule segment,
	// so Conns is also the concurrency floor while the run is in flight.
	Conns int
	// TxnsPerConn is each worker's total transaction count across all of
	// its connections.
	TxnsPerConn int
	// Reopens is how many times each worker closes its connection
	// mid-schedule and dials a fresh one (the "mixed open/close" part of
	// the schedule); 0 means one connection per worker.
	Reopens int
	// Seed drives every worker's schedule (accounts, deltas, reopen
	// points) — same seed, same byte stream.
	Seed uint64
	// Barrier, when true, makes every worker dial and then wait until all
	// Conns connections are open before the first transaction is sent —
	// guaranteeing the server holds Conns live connections at once.
	Barrier bool
	// DialTimeout and IOTimeout bound each dial and each
	// request/response round trip (defaults 10s and 30s).
	DialTimeout time.Duration
	IOTimeout   time.Duration
}

// LoadReport is one run's outcome: volume, verification, and latency.
type LoadReport struct {
	Conns    int     // workers
	Opens    int     // connections dialed (== Conns * (Reopens+1) when clean)
	Txns     int     // transactions completed and verified
	Failures int     // byte mismatches, dial failures, IO errors
	Elapsed  float64 // seconds, first dial to last response
	TPS      float64 // Txns / Elapsed

	// Latency percentiles over per-transaction round trips, in
	// milliseconds.
	P50, P90, P99, Max float64

	BytesOut uint64 // request bytes written
	BytesIn  uint64 // response bytes read and verified

	// FirstError describes the first failure, for diagnostics.
	FirstError string
}

// String renders the human latency/throughput report demuxload prints.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "conns=%d opens=%d txns=%d failures=%d elapsed=%.2fs\n",
		r.Conns, r.Opens, r.Txns, r.Failures, r.Elapsed)
	fmt.Fprintf(&b, "throughput  %.0f txn/s   (%d B out, %d B in)\n", r.TPS, r.BytesOut, r.BytesIn)
	fmt.Fprintf(&b, "latency ms  p50=%.3f p90=%.3f p99=%.3f max=%.3f", r.P50, r.P90, r.P99, r.Max)
	if r.FirstError != "" {
		fmt.Fprintf(&b, "\nfirst error: %s", r.FirstError)
	}
	return b.String()
}

// loadWorker is one worker's accumulated outcome.
type loadWorker struct {
	opens     int
	txns      int
	failures  int
	bytesOut  uint64
	bytesIn   uint64
	latencies []float64 // milliseconds
	firstErr  string
}

func (w *loadWorker) fail(err string) {
	w.failures++
	if w.firstErr == "" {
		w.firstErr = err
	}
}

// RunLoad drives the full load schedule and returns the merged report.
// It only returns an error for an unusable configuration; transaction
// failures are reported, not fatal, so a partially-failing run still
// yields its latency picture.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: Addr is required")
	}
	if cfg.Conns <= 0 || cfg.TxnsPerConn <= 0 {
		return nil, fmt.Errorf("loadgen: Conns and TxnsPerConn must be positive")
	}
	if cfg.Reopens < 0 {
		cfg.Reopens = 0
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}

	workers := make([]loadWorker, cfg.Conns)
	var barrier sync.WaitGroup
	gate := make(chan struct{})
	if cfg.Barrier {
		barrier.Add(cfg.Conns)
		go func() {
			barrier.Wait()
			close(gate)
		}()
	} else {
		close(gate)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < cfg.Conns; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			runWorker(u, cfg, &workers[u], &barrier, gate)
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &LoadReport{Conns: cfg.Conns, Elapsed: elapsed}
	var lats []float64
	for i := range workers {
		w := &workers[i]
		rep.Opens += w.opens
		rep.Txns += w.txns
		rep.Failures += w.failures
		rep.BytesOut += w.bytesOut
		rep.BytesIn += w.bytesIn
		if rep.FirstError == "" && w.firstErr != "" {
			rep.FirstError = w.firstErr
		}
		lats = append(lats, w.latencies...)
	}
	if elapsed > 0 {
		rep.TPS = float64(rep.Txns) / elapsed
	}
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		q := func(p float64) float64 {
			i := int(p * float64(n))
			if i >= n {
				i = n - 1
			}
			return lats[i]
		}
		rep.P50, rep.P90, rep.P99, rep.Max = q(0.50), q(0.90), q(0.99), lats[n-1]
	}
	return rep, nil
}

// runWorker executes one worker's schedule: a private ledger oracle,
// ids derived from the worker index (disjoint across workers), and a
// seeded stream of transactions split across Reopens+1 connections.
func runWorker(u int, cfg LoadConfig, w *loadWorker, barrier *sync.WaitGroup, gate <-chan struct{}) {
	src := rng.New(cfg.Seed + uint64(u)*0x9e3779b97f4a7c15 + 1)
	oracle := NewLedger()
	branch := uint32(u)
	teller := uint32(u)
	const accountsPer = 8
	baseAccount := uint32(u) * accountsPer

	segments := cfg.Reopens + 1
	per := cfg.TxnsPerConn / segments
	extra := cfg.TxnsPerConn % segments

	released := false
	release := func() {
		if cfg.Barrier && !released {
			released = true
			barrier.Done()
		}
	}
	defer release()

	line := make([]byte, 0, MaxLineLen)
	for seg := 0; seg < segments; seg++ {
		txns := per
		if seg < extra {
			txns++
		}
		if txns == 0 {
			continue
		}
		conn, err := dialRetry(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			w.fail(fmt.Sprintf("worker %d dial: %v", u, err))
			release() // never hold the whole fleet hostage to one dial
			return
		}
		w.opens++
		if seg == 0 {
			release()
			<-gate // all Conns connections open before anyone transacts
		}
		rd := newLineReader(conn)
		for t := 0; t < txns; t++ {
			account := baseAccount + uint32(src.Intn(accountsPer))
			delta := int64(src.Intn(1999) - 999)
			req := FormatRequest(branch, teller, account, delta)
			want := oracle.Expected(Req{Branch: branch, Teller: teller, Account: account, Delta: delta})

			conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
			t0 := time.Now()
			if _, err := conn.Write(req); err != nil {
				w.fail(fmt.Sprintf("worker %d write: %v", u, err))
				conn.Close()
				return
			}
			line, err = rd.readLine(line[:0])
			if err != nil {
				w.fail(fmt.Sprintf("worker %d read: %v", u, err))
				conn.Close()
				return
			}
			w.latencies = append(w.latencies, float64(time.Since(t0).Microseconds())/1000)
			w.bytesOut += uint64(len(req))
			w.bytesIn += uint64(len(line))
			if !bytes.Equal(line, want) {
				w.fail(fmt.Sprintf("worker %d txn %d: got %q want %q", u, t, line, want))
				conn.Close()
				return
			}
			w.txns++
		}
		conn.Close()
	}
}

// dialRetry dials with bounded retries: a synchronized 1000-connection
// open can transiently overflow the kernel accept queue, which is
// exactly the burst the retry absorbs.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		var c net.Conn
		c, err = net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return c, nil
		}
		time.Sleep(time.Duration(10*(1<<attempt)) * time.Millisecond)
	}
	return nil, err
}

// lineReader reads newline-terminated responses without over-reading:
// the protocol is strictly request/response per worker, so buffering
// past the current line could swallow a later response's bytes into a
// buffer a deadline reset would discard. One byte at a time over a
// bufio-free loop would be slow; instead keep a private carry buffer.
type lineReader struct {
	c     net.Conn
	carry []byte
}

func newLineReader(c net.Conn) *lineReader {
	return &lineReader{c: c, carry: make([]byte, 0, 256)}
}

// readLine appends one full line (newline included) to dst and returns
// it. Bytes beyond the newline are carried to the next call.
func (r *lineReader) readLine(dst []byte) ([]byte, error) {
	buf := make([]byte, 256)
	for {
		if i := bytes.IndexByte(r.carry, '\n'); i >= 0 {
			dst = append(dst, r.carry[:i+1]...)
			r.carry = append(r.carry[:0], r.carry[i+1:]...)
			return dst, nil
		}
		n, err := r.c.Read(buf)
		if n > 0 {
			r.carry = append(r.carry, buf[:n]...)
		}
		if err != nil {
			if err == io.EOF && bytes.IndexByte(r.carry, '\n') >= 0 {
				continue
			}
			return dst, err
		}
	}
}
